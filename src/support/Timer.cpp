//===- support/Timer.cpp - Wall-clock timing -------------------------------===//
// Timer is header-only; this file anchors the translation unit.

#include "support/Timer.h"
