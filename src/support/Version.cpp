//===- support/Version.cpp - Build provenance ---------------------------------===//

#include "support/Version.h"

#include "semantics/Fingerprint.h"

#ifndef ISQ_GIT_SHA
#define ISQ_GIT_SHA "unknown"
#endif
#ifndef ISQ_BUILD_TYPE
#define ISQ_BUILD_TYPE "unknown"
#endif

const char *isq::gitSha() { return ISQ_GIT_SHA; }

const char *isq::buildType() { return ISQ_BUILD_TYPE; }

std::string isq::versionLine() {
  return std::string("isq ") + gitSha() + " (" + buildType() +
         ", fingerprint format " + std::to_string(FpFormatVersion) + ")";
}
