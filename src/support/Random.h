//===- support/Random.h - Deterministic RNG ---------------------*- C++ -*-===//
///
/// \file
/// A tiny deterministic xorshift RNG used for execution sampling in tests
/// and benchmarks. Deliberately not std::mt19937 so results are stable
/// across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SUPPORT_RANDOM_H
#define ISQ_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace isq {

/// xorshift64* generator with a fixed default seed.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x853c49e6748fea9bULL)
      : State(Seed ? Seed : 1) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform value in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

private:
  uint64_t State;
};

} // namespace isq

#endif // ISQ_SUPPORT_RANDOM_H
