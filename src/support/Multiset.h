//===- support/Multiset.h - Canonical multiset ------------------*- C++ -*-===//
///
/// \file
/// A canonical (sorted, run-length encoded) multiset over an ordered element
/// type. Pending-async multisets and bag-valued channels (§3 of the paper)
/// are represented with this container; canonical form makes equality,
/// ordering and hashing of configurations structural.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SUPPORT_MULTISET_H
#define ISQ_SUPPORT_MULTISET_H

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace isq {

/// A multiset stored as a sorted vector of (element, multiplicity) pairs
/// with strictly positive multiplicities. Elements must define operator<
/// and operator==.
template <typename T> class Multiset {
public:
  using Entry = std::pair<T, uint64_t>;

  Multiset() = default;

  /// Builds a multiset from an arbitrary (unsorted, repeating) sequence.
  static Multiset fromSequence(const std::vector<T> &Elems) {
    Multiset M;
    for (const T &E : Elems)
      M.insert(E);
    return M;
  }

  /// Number of distinct elements.
  size_t distinctSize() const { return Entries.size(); }

  /// Total number of elements counting multiplicity.
  uint64_t size() const {
    uint64_t N = 0;
    for (const Entry &E : Entries)
      N += E.second;
    return N;
  }

  bool empty() const { return Entries.empty(); }

  /// Multiplicity of \p Elem (0 if absent).
  uint64_t count(const T &Elem) const {
    auto It = lowerBound(Elem);
    if (It != Entries.end() && It->first == Elem)
      return It->second;
    return 0;
  }

  bool contains(const T &Elem) const { return count(Elem) > 0; }

  /// Inserts \p Count copies of \p Elem.
  void insert(const T &Elem, uint64_t Count = 1) {
    if (Count == 0)
      return;
    auto It = lowerBound(Elem);
    if (It != Entries.end() && It->first == Elem) {
      It->second += Count;
      return;
    }
    Entries.insert(It, {Elem, Count});
  }

  /// Removes \p Count copies of \p Elem; asserts that enough copies exist.
  void erase(const T &Elem, uint64_t Count = 1) {
    auto It = lowerBound(Elem);
    assert(It != Entries.end() && It->first == Elem && It->second >= Count &&
           "erasing more copies than present");
    It->second -= Count;
    if (It->second == 0)
      Entries.erase(It);
  }

  /// Removes up to \p Count copies; returns the number actually removed.
  uint64_t eraseUpTo(const T &Elem, uint64_t Count) {
    auto It = lowerBound(Elem);
    if (It == Entries.end() || !(It->first == Elem))
      return 0;
    uint64_t Removed = std::min(Count, It->second);
    It->second -= Removed;
    if (It->second == 0)
      Entries.erase(It);
    return Removed;
  }

  /// Multiset union (sum of multiplicities), the ⊎ of the paper.
  Multiset unionWith(const Multiset &Other) const {
    Multiset Result = *this;
    for (const Entry &E : Other.Entries)
      Result.insert(E.first, E.second);
    return Result;
  }

  /// Multiset difference; asserts Other ⊆ this.
  Multiset differenceWith(const Multiset &Other) const {
    Multiset Result = *this;
    for (const Entry &E : Other.Entries)
      Result.erase(E.first, E.second);
    return Result;
  }

  /// Returns true if this is a sub-multiset of \p Other.
  bool isSubsetOf(const Multiset &Other) const {
    for (const Entry &E : Entries)
      if (Other.count(E.first) < E.second)
        return false;
    return true;
  }

  /// Read-only access to the canonical entries (sorted by element).
  const std::vector<Entry> &entries() const { return Entries; }

  /// Flattens to a vector with elements repeated per multiplicity.
  std::vector<T> flatten() const {
    std::vector<T> Out;
    Out.reserve(size());
    for (const Entry &E : Entries)
      for (uint64_t I = 0; I < E.second; ++I)
        Out.push_back(E.first);
    return Out;
  }

  friend bool operator==(const Multiset &A, const Multiset &B) {
    return A.Entries == B.Entries;
  }
  friend bool operator!=(const Multiset &A, const Multiset &B) {
    return !(A == B);
  }
  friend bool operator<(const Multiset &A, const Multiset &B) {
    return A.Entries < B.Entries;
  }

  size_t hash() const {
    size_t Seed = 0x811c9dc5;
    for (const Entry &E : Entries) {
      hashCombineValue(Seed, E.first);
      hashCombine(Seed, static_cast<size_t>(E.second));
    }
    return Seed;
  }

private:
  typename std::vector<Entry>::iterator lowerBound(const T &Elem) {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Elem,
        [](const Entry &E, const T &V) { return E.first < V; });
  }
  typename std::vector<Entry>::const_iterator lowerBound(const T &Elem) const {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Elem,
        [](const Entry &E, const T &V) { return E.first < V; });
  }

  std::vector<Entry> Entries;
};

} // namespace isq

#endif // ISQ_SUPPORT_MULTISET_H
