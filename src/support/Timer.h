//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
///
/// \file
/// A monotonic wall-clock stopwatch used by the verification pipeline and
/// the benchmark harness to report per-check times (Table 1 column "Time").
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SUPPORT_TIMER_H
#define ISQ_SUPPORT_TIMER_H

#include <chrono>

namespace isq {

/// Starts on construction; elapsed() reports seconds since construction or
/// the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace isq

#endif // ISQ_SUPPORT_TIMER_H
