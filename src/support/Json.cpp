//===- support/Json.cpp - Minimal JSON emission -------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace isq;
using namespace isq::json;

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JsonWriter::pre() {
  if (PendingKey) {
    PendingKey = false;
    return; // the value belongs to the key just written
  }
  if (!HasSibling.empty()) {
    if (HasSibling.back())
      Out += ',';
    HasSibling.back() = true;
  }
}

JsonWriter &JsonWriter::beginObject() {
  pre();
  Out += '{';
  HasSibling.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!HasSibling.empty() && "endObject without beginObject");
  HasSibling.pop_back();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  pre();
  Out += '[';
  HasSibling.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!HasSibling.empty() && "endArray without beginArray");
  HasSibling.pop_back();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &Name) {
  pre();
  Out += '"';
  Out += escape(Name);
  Out += "\":";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &S) {
  pre();
  Out += '"';
  Out += escape(S);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *S) {
  return value(std::string(S));
}

JsonWriter &JsonWriter::value(int64_t N) {
  pre();
  Out += std::to_string(N);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  pre();
  Out += std::to_string(N);
  return *this;
}

JsonWriter &JsonWriter::value(double D) {
  pre();
  if (!std::isfinite(D)) {
    Out += "null"; // JSON has no NaN/Inf literals
    return *this;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", D);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  pre();
  Out += B ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::null() {
  pre();
  Out += "null";
  return *this;
}

std::string JsonWriter::take() {
  assert(HasSibling.empty() && "unbalanced JSON document");
  assert(!PendingKey && "key without value");
  return std::move(Out);
}
