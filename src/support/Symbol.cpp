//===- support/Symbol.cpp - Interned identifiers --------------------------===//

#include "support/Symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

using namespace isq;

namespace {
// Names live in a deque so str() can hand out references that stay valid
// while other threads intern new symbols. All table access is serialized;
// hot paths (comparison, hashing, store lookups) never touch the table.
struct SymbolTable {
  std::mutex M;
  std::unordered_map<std::string, uint32_t> Indices;
  std::deque<std::string> Names;
};

SymbolTable &table() {
  static SymbolTable Table;
  return Table;
}
} // namespace

Symbol Symbol::get(const std::string &Name) {
  SymbolTable &T = table();
  std::lock_guard<std::mutex> Lock(T.M);
  auto It = T.Indices.find(Name);
  if (It != T.Indices.end())
    return Symbol(It->second);
  uint32_t Index = static_cast<uint32_t>(T.Names.size());
  T.Names.push_back(Name);
  T.Indices.emplace(Name, Index);
  return Symbol(Index);
}

const std::string &Symbol::str() const {
  assert(isValid() && "querying name of invalid symbol");
  SymbolTable &T = table();
  std::lock_guard<std::mutex> Lock(T.M);
  return T.Names[Index];
}
