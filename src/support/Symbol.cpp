//===- support/Symbol.cpp - Interned identifiers --------------------------===//

#include "support/Symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

using namespace isq;

namespace {
// Names live in a deque so str() can hand out references that stay valid
// while other threads intern new symbols. All table access is serialized;
// hot paths (comparison, hashing, store lookups) never touch the table.
struct SymbolTable {
  std::mutex M;
  std::unordered_map<std::string, uint32_t> Indices;
  std::deque<std::string> Names;
};

SymbolTable &table() {
  static SymbolTable Table;
  return Table;
}
} // namespace

Symbol Symbol::get(const std::string &Name) {
  // Hot path: a per-thread memo of resolved names. The compiled-ASL
  // evaluator resolves variable and action names on every expression
  // evaluation, so concurrent checker jobs would otherwise serialize on
  // the table mutex. Symbols are immortal, so cached entries never
  // invalidate; the global table is only consulted on a thread's first
  // sighting of a name.
  thread_local std::unordered_map<std::string, uint32_t> Resolved;
  auto Cached = Resolved.find(Name);
  if (Cached != Resolved.end())
    return Symbol(Cached->second);

  SymbolTable &T = table();
  uint32_t Index;
  {
    std::lock_guard<std::mutex> Lock(T.M);
    auto It = T.Indices.find(Name);
    if (It != T.Indices.end()) {
      Index = It->second;
    } else {
      Index = static_cast<uint32_t>(T.Names.size());
      T.Names.push_back(Name);
      T.Indices.emplace(Name, Index);
    }
  }
  Resolved.emplace(Name, Index);
  return Symbol(Index);
}

const std::string &Symbol::str() const {
  assert(isValid() && "querying name of invalid symbol");
  SymbolTable &T = table();
  std::lock_guard<std::mutex> Lock(T.M);
  return T.Names[Index];
}
