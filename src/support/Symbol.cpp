//===- support/Symbol.cpp - Interned identifiers --------------------------===//

#include "support/Symbol.h"

#include <unordered_map>
#include <vector>

using namespace isq;

namespace {
struct SymbolTable {
  std::unordered_map<std::string, uint32_t> Indices;
  std::vector<std::string> Names;
};

SymbolTable &table() {
  static SymbolTable Table;
  return Table;
}
} // namespace

Symbol Symbol::get(const std::string &Name) {
  SymbolTable &T = table();
  auto It = T.Indices.find(Name);
  if (It != T.Indices.end())
    return Symbol(It->second);
  uint32_t Index = static_cast<uint32_t>(T.Names.size());
  T.Names.push_back(Name);
  T.Indices.emplace(Name, Index);
  return Symbol(Index);
}

const std::string &Symbol::str() const {
  assert(isValid() && "querying name of invalid symbol");
  return table().Names[Index];
}
