//===- support/Hashing.h - Hash combinators ---------------------*- C++ -*-===//
///
/// \file
/// Small hash-combination utilities used to hash stores, values and
/// configurations for explicit-state deduplication.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SUPPORT_HASHING_H
#define ISQ_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace isq {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine style,
/// with a 64-bit multiplier for better dispersion).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes \p V with std::hash and mixes it into \p Seed.
template <typename T> void hashCombineValue(size_t &Seed, const T &V) {
  hashCombine(Seed, std::hash<T>{}(V));
}

/// Hashes a range of hashable elements.
template <typename It> size_t hashRange(It First, It Last) {
  size_t Seed = 0xcbf29ce484222325ULL;
  for (; First != Last; ++First)
    hashCombineValue(Seed, *First);
  return Seed;
}

} // namespace isq

#endif // ISQ_SUPPORT_HASHING_H
