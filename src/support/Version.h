//===- support/Version.h - Build provenance ----------------------*- C++ -*-===//
///
/// \file
/// Build provenance baked in at configure time: the git sha and build type
/// of the binary. Powers `isq-verify --version` and the obligation cache's
/// on-disk header — a persisted verdict is only trusted by the exact build
/// that wrote it (semantics can change without a format-version bump).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SUPPORT_VERSION_H
#define ISQ_SUPPORT_VERSION_H

#include <string>

namespace isq {

/// Short git sha of the source tree at configure time; "unknown" when the
/// build was configured outside a git checkout.
const char *gitSha();

/// CMake build type ("RelWithDebInfo", "Release", ...).
const char *buildType();

/// The one-line provenance banner shared by `--version` and tool headers,
/// e.g. "isq abc123def456 (RelWithDebInfo, fingerprint format 1)".
std::string versionLine();

} // namespace isq

#endif // ISQ_SUPPORT_VERSION_H
