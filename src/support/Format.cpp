//===- support/Format.cpp - Lightweight string formatting -----------------===//

#include "support/Format.h"

#include <algorithm>
#include <cstdio>

using namespace isq;

std::string isq::join(const std::vector<std::string> &Parts,
                      const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string isq::padTo(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string isq::formatSeconds(double Seconds) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Seconds);
  return Buf;
}

std::string isq::formatTable(const std::vector<std::string> &Header,
                             const std::vector<std::vector<std::string>> &Rows) {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size() && C < Widths.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C < Row.size(); ++C) {
      Line += padTo(Row[C], Widths[C]);
      if (C + 1 != Row.size())
        Line += "  ";
    }
    // Trim trailing spaces from padding of the last column.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  std::string Out = renderRow(Header);
  size_t RuleWidth = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    RuleWidth += Widths[C] + (C + 1 != Widths.size() ? 2 : 0);
  Out += std::string(RuleWidth, '-') + "\n";
  for (const auto &Row : Rows)
    Out += renderRow(Row);
  return Out;
}
