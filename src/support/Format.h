//===- support/Format.h - Lightweight string formatting ---------*- C++ -*-===//
///
/// \file
/// Small string-building helpers used for diagnostics, counterexample
/// printing and the benchmark tables. Deliberately minimal: the library
/// never throws and never uses <iostream>-style global state.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SUPPORT_FORMAT_H
#define ISQ_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace isq {

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Left-pads or truncates \p S to exactly \p Width columns.
std::string padTo(const std::string &S, size_t Width);

/// Renders a fixed-point seconds value like "1.234".
std::string formatSeconds(double Seconds);

/// Renders a simple aligned ASCII table. \p Header and every row must have
/// the same number of columns.
std::string formatTable(const std::vector<std::string> &Header,
                        const std::vector<std::vector<std::string>> &Rows);

} // namespace isq

#endif // ISQ_SUPPORT_FORMAT_H
