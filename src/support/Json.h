//===- support/Json.h - Minimal JSON emission --------------------*- C++ -*-===//
///
/// \file
/// A small streaming JSON writer for the machine-readable verdict report
/// (isq-verify --format json). Handles comma placement, nesting, string
/// escaping, and non-finite doubles (emitted as null, which JSON requires).
/// Writing only — the repo never needs to parse JSON.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SUPPORT_JSON_H
#define ISQ_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace isq {
namespace json {

/// Escapes \p S for inclusion in a JSON string literal (quotes excluded).
std::string escape(const std::string &S);

/// A streaming writer. Calls must form a well-nested document:
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("accepted").value(true);
///   W.key("conditions").beginArray();
///   ...
///   W.endArray();
///   W.endObject();
///   std::string Doc = W.take();
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; the next call must emit its value.
  JsonWriter &key(const std::string &Name);

  JsonWriter &value(const std::string &S);
  JsonWriter &value(const char *S);
  JsonWriter &value(int64_t N);
  JsonWriter &value(uint64_t N);
  JsonWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JsonWriter &value(unsigned N) { return value(static_cast<uint64_t>(N)); }
  JsonWriter &value(double D);
  JsonWriter &value(bool B);
  JsonWriter &null();

  /// The finished document. The writer must be back at nesting depth 0.
  std::string take();

private:
  /// Emits the separating comma when a sibling value precedes this one.
  void pre();

  std::string Out;
  /// One entry per open container: whether a value was already emitted at
  /// this level (so the next sibling needs a comma).
  std::vector<bool> HasSibling;
  /// True directly after key(): the next value is a member value, not a
  /// sibling.
  bool PendingKey = false;
};

} // namespace json
} // namespace isq

#endif // ISQ_SUPPORT_JSON_H
