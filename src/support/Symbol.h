//===- support/Symbol.h - Interned identifiers ------------------*- C++ -*-===//
//
// Part of the inductive-sequentialization project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned strings used for variable and action names. A Symbol is a small
/// integer index into a global table, so symbol comparison and hashing are
/// O(1) and stores can be kept as sorted vectors keyed by Symbol.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SUPPORT_SYMBOL_H
#define ISQ_SUPPORT_SYMBOL_H

#include <cassert>
#include <cstdint>
#include <string>

namespace isq {

/// An interned identifier. Default-constructed symbols are invalid.
class Symbol {
public:
  Symbol() = default;

  /// Interns \p Name and returns its symbol. Repeated calls with the same
  /// name return the same symbol.
  static Symbol get(const std::string &Name);

  /// Returns the interned name. The symbol must be valid.
  const std::string &str() const;

  /// Rebuilds a symbol from a previously obtained index() — e.g. when
  /// decoding a compact store encoding. The index must have been issued
  /// by get() in this process.
  static Symbol fromIndex(uint32_t Index) { return Symbol(Index); }

  bool isValid() const { return Index != InvalidIndex; }
  uint32_t index() const {
    assert(isValid() && "querying index of invalid symbol");
    return Index;
  }

  friend bool operator==(Symbol A, Symbol B) { return A.Index == B.Index; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Index != B.Index; }
  friend bool operator<(Symbol A, Symbol B) { return A.Index < B.Index; }

private:
  static constexpr uint32_t InvalidIndex = UINT32_MAX;
  explicit Symbol(uint32_t Index) : Index(Index) {}

  uint32_t Index = InvalidIndex;
};

} // namespace isq

namespace std {
template <> struct hash<isq::Symbol> {
  size_t operator()(isq::Symbol S) const noexcept {
    return S.isValid() ? static_cast<size_t>(S.index()) + 1 : 0;
  }
};
} // namespace std

#endif // ISQ_SUPPORT_SYMBOL_H
