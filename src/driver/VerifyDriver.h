//===- driver/VerifyDriver.h - End-to-end ASL verification ---------*- C++ -*-===//
///
/// \file
/// The push-button pipeline behind the `isq-verify` tool: compile an ASL
/// module, derive the IS artifacts from a declared sequentialization
/// order (schedule invariant + minimum-rank choice function), attach
/// ASL-declared abstractions, check every IS condition, and — on
/// acceptance — summarize the sequential reduction and empirically
/// cross-check P ≼ P'.
///
/// This mirrors the paper's CIVL integration (§5.1): the user supplies
/// the program and the proof artifacts; the tool compiles the rule's
/// conditions to discharged obligations and produces targeted error
/// messages per condition.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_DRIVER_VERIFYDRIVER_H
#define ISQ_DRIVER_VERIFYDRIVER_H

#include "is/ISCheck.h"
#include "lang/Compile.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace isq {
namespace driver {

/// One verification request.
struct VerifyOptions {
  /// ASL module text.
  std::string Source;
  /// Bindings for the module's integer constants.
  std::map<std::string, int64_t> Consts;
  /// The action to rewrite (defaults to Main).
  std::string RewriteAction = "Main";
  /// The eliminated actions in sequentialization order. This determines
  /// the schedule invariant and choice function.
  std::vector<std::string> Eliminate;
  /// How pending asyncs are ranked within the schedule:
  ///  - ActionMajor (default): all PAs of the first eliminated action run
  ///    before any of the second, ...; ties order by argument tuple.
  ///    Fits phase-structured protocols (broadcast: all Broadcasts, then
  ///    all Collects).
  ///  - ArgMajor: PAs order by their first integer argument first, then
  ///    by elimination position. Fits alternating protocols
  ///    (Ping(1), Pong(1), Ping(2), ...).
  enum class RankOrder { ActionMajor, ArgMajor };
  RankOrder Order = RankOrder::ActionMajor;
  /// Optional left-mover abstractions: eliminated action name → name of
  /// an action declared in the same module (e.g. using pending()-gates).
  std::map<std::string, std::string> Abstractions;
  /// Optional cooperation weights per action name (default 1 each). The
  /// measure is the lexicographic pair (weighted pending-async count,
  /// remaining schedule work), so a task chain that re-creates its
  /// successor (constant count) still decreases via the second component,
  /// while fan-out phases need weights that dominate what they spawn.
  std::map<std::string, uint64_t> Weights;
  /// Also explore P' and cross-check refinement when the proof is
  /// accepted.
  bool CrossCheck = true;
  /// Worker threads for the state-space explorations (universe build and
  /// cross-check). Results are bit-identical for any thread count.
  unsigned NumThreads = 1;
};

/// The verification verdict.
struct VerifyResult {
  bool CompileOk = false;
  bool Accepted = false;
  /// Per-condition report (valid when CompileOk).
  ISCheckReport Report;
  /// Human-readable summary of the whole run.
  std::string Summary;
  /// Compiler/driver diagnostics.
  std::vector<asl::Diagnostic> Diags;
  /// Aggregated engine statistics across every exploration the run
  /// performed (universe build plus cross-check explorations).
  engine::EngineStats Engine;
};

/// Runs the pipeline.
VerifyResult verifyModule(const VerifyOptions &Options);

} // namespace driver
} // namespace isq

#endif // ISQ_DRIVER_VERIFYDRIVER_H
