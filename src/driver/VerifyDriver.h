//===- driver/VerifyDriver.h - End-to-end ASL verification ---------*- C++ -*-===//
///
/// \file
/// The push-button pipeline behind the `isq-verify` tool: compile an ASL
/// module, derive the IS artifacts from a declared sequentialization
/// order (schedule invariant + minimum-rank choice function), attach
/// ASL-declared abstractions, check every IS condition, and — on
/// acceptance — summarize the sequential reduction and empirically
/// cross-check P ≼ P'.
///
/// This mirrors the paper's CIVL integration (§5.1): the user supplies
/// the program and the proof artifacts; the tool compiles the rule's
/// conditions to discharged obligations and produces targeted error
/// messages per condition.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_DRIVER_VERIFYDRIVER_H
#define ISQ_DRIVER_VERIFYDRIVER_H

#include "engine/ObligationCache.h"
#include "is/ISCheck.h"
#include "lang/Frontend.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace isq {
namespace driver {

/// One verification request.
struct VerifyOptions {
  /// ASL module text.
  std::string Source;
  /// Path the source was read from. Display name of the main input in
  /// diagnostics and the base directory for resolving its imports; empty
  /// for sources without a file (imports are then unavailable).
  std::string SourcePath;
  /// Bindings for the module's integer constants and parameters
  /// (--const and --param contribute here alike).
  std::map<std::string, int64_t> Consts;
  /// Which frontend pipeline compiles the source. V2 (staged, default)
  /// and V1 (legacy tree-walk, the differential oracle) produce
  /// bit-identical Programs.
  asl::frontend::FrontendVersion Frontend =
      asl::frontend::FrontendVersion::V2;
  /// The action to rewrite (defaults to Main).
  std::string RewriteAction = "Main";
  /// The eliminated actions in sequentialization order. This determines
  /// the schedule invariant and choice function.
  std::vector<std::string> Eliminate;
  /// How pending asyncs are ranked within the schedule:
  ///  - ActionMajor (default): all PAs of the first eliminated action run
  ///    before any of the second, ...; ties order by argument tuple.
  ///    Fits phase-structured protocols (broadcast: all Broadcasts, then
  ///    all Collects).
  ///  - ArgMajor: PAs order by their first integer argument first, then
  ///    by elimination position. Fits alternating protocols
  ///    (Ping(1), Pong(1), Ping(2), ...).
  enum class RankOrder { ActionMajor, ArgMajor };
  RankOrder Order = RankOrder::ActionMajor;
  /// Optional left-mover abstractions: eliminated action name → name of
  /// an action declared in the same module (e.g. using pending()-gates).
  std::map<std::string, std::string> Abstractions;
  /// Optional cooperation weights per action name (default 1 each). The
  /// measure is the lexicographic pair (weighted pending-async count,
  /// remaining schedule work), so a task chain that re-creates its
  /// successor (constant count) still decreases via the second component,
  /// while fan-out phases need weights that dominate what they spawn.
  std::map<std::string, uint64_t> Weights;
  /// Also explore P' and cross-check refinement when the proof is
  /// accepted.
  bool CrossCheck = true;
  /// The unified engine configuration: thread budget, checker
  /// parallelism, symmetry reduction, work-stealing frontier, and store
  /// shape. Every engine knob flows through here — the explorations, the
  /// obligation scheduler, and the IS checker read no thread/symmetry/
  /// steal settings from anywhere else. Results are bit-identical for
  /// every setting (see engine/EngineConfig.h).
  engine::EngineConfig Engine;
  /// Externally owned obligation verdict cache shared across requests
  /// (isq-serve plugs its process-wide instance here). Null makes the
  /// driver create a request-local cache from Engine.CacheDir (persisted
  /// after checking) or a memory-only one. The caller owns persistence of
  /// a shared cache; the driver never save()s it. Ignored when
  /// Engine.Incremental is false.
  engine::ObligationCache *SharedCache = nullptr;
};

/// Outcome of the empirical P ≼ P' cross-check.
struct CrossCheckInfo {
  /// True when the cross-check actually ran (proof accepted and
  /// VerifyOptions::CrossCheck set).
  bool Ran = false;
  /// The program-refinement result.
  CheckResult Refines;
  /// Explored configuration counts of P and of the sequentialization P'.
  size_t ConfigsP = 0;
  size_t ConfigsPPrime = 0;
  /// Wall-clock of the cross-check phase (explorations + comparison).
  double Seconds = 0;
};

/// The verification verdict. This is the stable, versioned surface the
/// renderers (driver/ReportRender.h) serialize: text and JSON output are
/// both pure functions of this struct.
struct VerifyResult {
  bool CompileOk = false;
  /// True when the request validated against the compiled module (action
  /// names exist, no duplicate eliminations, abstractions well-formed).
  /// Validation failures land in Diags — verifyModule never asserts on
  /// bad driver input.
  bool InputOk = false;
  bool Accepted = false;
  /// Per-condition report (valid when CompileOk && InputOk). Carries the
  /// obligation-scheduler statistics of the checking phase.
  ISCheckReport Report;
  /// Human-readable summary of the whole run; equals
  /// renderText(*this) (kept as a field for convenience).
  std::string Summary;
  /// Compiler and driver-input diagnostics. Compiler diagnostics carry
  /// source locations; driver-input diagnostics use line 0.
  std::vector<asl::Diagnostic> Diags;
  /// Aggregated engine statistics across every exploration the run
  /// performed (universe build plus cross-check explorations).
  engine::EngineStats Engine;
  /// Empirical P ≼ P' cross-check outcome.
  CrossCheckInfo CrossCheck;
  /// Wall-clock of the whole pipeline.
  double TotalSeconds = 0;

  /// The documented process exit code: 0 proof accepted, 1 proof
  /// rejected, 2 compilation or driver-input error.
  int exitCode() const {
    if (!CompileOk || !InputOk)
      return 2;
    return Accepted ? 0 : 1;
  }
};

/// Runs the pipeline.
VerifyResult verifyModule(const VerifyOptions &Options);

} // namespace driver
} // namespace isq

#endif // ISQ_DRIVER_VERIFYDRIVER_H
