//===- driver/CliOptions.cpp - isq-verify command line ------------------------===//

#include "driver/CliOptions.h"

#include <charconv>
#include <sstream>

using namespace isq;
using namespace isq::driver;

namespace {

/// Parses all of \p S as a decimal integer of type T. Rejects empty
/// strings, trailing junk ("3x"), and out-of-range values — std::atol's
/// silent-zero failure modes.
template <typename T> bool parseNumber(const std::string &S, T &Out) {
  const char *First = S.data();
  const char *Last = S.data() + S.size();
  auto [Ptr, Ec] = std::from_chars(First, Last, Out);
  return Ec == std::errc() && Ptr == Last && !S.empty();
}

/// Splits a comma-separated list. An empty item between commas (or a
/// leading/trailing comma) is a usage error, not silently dropped: \p
/// Error names the malformed list and the function returns false.
bool splitList(const std::string &S, std::vector<std::string> &Out,
               std::string &Error) {
  Out.clear();
  size_t Pos = 0;
  while (true) {
    size_t Comma = S.find(',', Pos);
    std::string Item = S.substr(Pos, Comma == std::string::npos
                                         ? std::string::npos
                                         : Comma - Pos);
    if (Item.empty()) {
      Error = "empty item in list '" + S + "'";
      return false;
    }
    Out.push_back(Item);
    if (Comma == std::string::npos)
      return true;
    Pos = Comma + 1;
  }
}

bool splitKeyValue(const std::string &S, std::string &Key,
                   std::string &Value) {
  size_t Eq = S.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 == S.size())
    return false;
  Key = S.substr(0, Eq);
  Value = S.substr(Eq + 1);
  return true;
}

} // namespace

const char *driver::usageText() {
  return "usage: isq-verify FILE.asl --eliminate A,B,C [options]\n"
         "\n"
         "Compiles an ASL protocol, derives the Inductive\n"
         "Sequentialization artifacts from the declared elimination\n"
         "order, and discharges every condition of the IS rule.\n"
         "\n"
         "options:\n"
         "  --const NAME=VALUE    bind a module constant (repeatable)\n"
         "  --param NAME=VALUE    bind a module parameter (repeatable;\n"
         "                        alias of --const — parameters declared\n"
         "                        `param n: int := 2;` may also be left\n"
         "                        to their default)\n"
         "  --frontend v1|v2      frontend pipeline (default: v2; v1 is\n"
         "                        the legacy tree-walk kept as a\n"
         "                        differential oracle — same Programs)\n"
         "  --eliminate A,B,C     eliminated actions in schedule order\n"
         "  --rewrite NAME        the action to rewrite (default: Main)\n"
         "  --abstract ACT=ABS    use module action ABS as α(ACT)\n"
         "  --weight ACT=K        cooperation weight (default 1)\n"
         "  --arg-major           rank pending asyncs by first argument\n"
         "                        before elimination position\n"
         "  --engine K=V[,K=V...] exploration/checking engine knobs; every\n"
         "                        knob preserves verdicts, counts and\n"
         "                        diagnostics bit-for-bit. Keys:\n"
         "                          threads=N            worker threads (default 1)\n"
         "                          work-stealing=BOOL   work-stealing frontier\n"
         "                                               (default true; false runs\n"
         "                                               the level-synchronous\n"
         "                                               differential oracle)\n"
         "                          steal-chunk=N        frontier chunk size\n"
         "                                               (default 64)\n"
         "                          shards=N             state-store shards, power\n"
         "                                               of two <= 16 (default 16)\n"
         "                          compress=BOOL        delta/varint-compressed\n"
         "                                               state store (default false)\n"
         "                          parallel-check=BOOL  scheduled obligation\n"
         "                                               checking (default true;\n"
         "                                               false runs the serial\n"
         "                                               reference loops)\n"
         "                          symmetry=BOOL        orbit-canonical symmetry\n"
         "                                               reduction (default true)\n"
         "                          incremental=BOOL     content-addressed obligation\n"
         "                                               verdict cache (default true;\n"
         "                                               false re-checks everything —\n"
         "                                               the differential oracle)\n"
         "                          cache-dir=PATH       persist obligation verdicts\n"
         "                                               in PATH across runs (warm\n"
         "                                               re-verification); corrupt or\n"
         "                                               stale caches degrade to cold\n"
         "                          spill=BOOL           spill sealed compact-store\n"
         "                                               blocks to an mmap-backed\n"
         "                                               cold tier (default false;\n"
         "                                               requires compress=true,\n"
         "                                               spill-dir and mem-budget)\n"
         "                          spill-dir=PATH       cold-tier segment directory\n"
         "                                               (per-run scratch; stale\n"
         "                                               segments cleaned at startup)\n"
         "                          mem-budget=BYTES     hot-tier byte budget that\n"
         "                                               triggers eviction; accepts\n"
         "                                               K/M/G suffixes (e.g. 64M)\n"
         "  --threads N           deprecated alias of --engine threads=N\n"
         "  --no-parallel-check   deprecated alias of --engine parallel-check=false\n"
         "  --no-symmetry         deprecated alias of --engine symmetry=false\n"
         "  --no-work-stealing    deprecated alias of --engine work-stealing=false\n"
         "  --no-cross-check      skip exploring P' / empirical refinement\n"
         "  --format text|json    verdict report format (default: text);\n"
         "                        json emits the schema-versioned report\n"
         "  --version             print build provenance (git sha, build\n"
         "                        type, fingerprint format) and exit\n"
         "  --help, -h            show this help\n"
         "\n"
         "exit codes:\n"
         "  0  proof accepted\n"
         "  1  proof rejected (some IS condition failed)\n"
         "  2  usage, compilation, or input error\n";
}

CliParse driver::parseCommandLine(const std::vector<std::string> &Args) {
  CliParse Parse;
  CliOptions &Cli = Parse.Options;

  // One warning per deprecated flag per invocation: scripted callers
  // often repeat a flag (base command + per-target overrides), and a
  // warning column per repetition buries real diagnostics.
  auto Deprecated = [&Parse](const char *Flag, const char *Replacement) {
    std::string Warning = std::string(Flag) + " is deprecated; use " +
                          Replacement;
    for (const std::string &Existing : Parse.Warnings)
      if (Existing == Warning)
        return;
    Parse.Warnings.push_back(std::move(Warning));
  };

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto NeedValue = [&](const std::string &&ErrIfMissing,
                         std::string &Out) -> bool {
      if (I + 1 >= Args.size()) {
        Parse.Error = ErrIfMissing;
        return false;
      }
      Out = Args[++I];
      return true;
    };
    if (Arg == "--help" || Arg == "-h") {
      Cli.ShowHelp = true;
      Parse.Ok = true;
      return Parse;
    }
    if (Arg == "--version") {
      Cli.ShowVersion = true;
      Parse.Ok = true;
      return Parse;
    }
    if (Arg == "--no-cross-check") {
      Cli.Verify.CrossCheck = false;
      continue;
    }
    // Deprecated aliases of --engine KEY=VALUE (kept for one release; see
    // usageText()).
    if (Arg == "--no-parallel-check") {
      Deprecated("--no-parallel-check", "--engine parallel-check=false");
      Cli.Verify.Engine.ParallelCheck = false;
      continue;
    }
    if (Arg == "--no-symmetry") {
      Deprecated("--no-symmetry", "--engine symmetry=false");
      Cli.Verify.Engine.Symmetry = false;
      continue;
    }
    if (Arg == "--no-work-stealing") {
      Deprecated("--no-work-stealing", "--engine work-stealing=false");
      Cli.Verify.Engine.WorkStealing = false;
      continue;
    }
    if (Arg == "--engine") {
      std::string V;
      if (!NeedValue("--engine needs a KEY=VALUE[,KEY=VALUE...] argument",
                     V))
        return Parse;
      std::string Error;
      if (!Cli.Verify.Engine.setList(V, Error)) {
        Parse.Error = "--engine: " + Error;
        return Parse;
      }
      continue;
    }
    if (Arg == "--arg-major") {
      Cli.Verify.Order = VerifyOptions::RankOrder::ArgMajor;
      continue;
    }
    if (Arg == "--format") {
      std::string V;
      if (!NeedValue("--format needs a value (text or json)", V))
        return Parse;
      if (V == "text")
        Cli.Format = OutputFormat::Text;
      else if (V == "json")
        Cli.Format = OutputFormat::Json;
      else {
        Parse.Error = "--format expects 'text' or 'json', got '" + V + "'";
        return Parse;
      }
      continue;
    }
    if (Arg == "--eliminate") {
      std::string V;
      if (!NeedValue("--eliminate needs a value", V))
        return Parse;
      std::string Error;
      if (!splitList(V, Cli.Verify.Eliminate, Error)) {
        Parse.Error = "--eliminate: " + Error;
        return Parse;
      }
      continue;
    }
    if (Arg == "--rewrite") {
      std::string V;
      if (!NeedValue("--rewrite needs a value", V))
        return Parse;
      Cli.Verify.RewriteAction = V;
      continue;
    }
    if (Arg == "--threads") {
      Deprecated("--threads", "--engine threads=N");
      std::string V;
      if (!NeedValue("--threads needs a value", V))
        return Parse;
      unsigned N = 0;
      if (!parseNumber(V, N) || N < 1) {
        Parse.Error = "--threads expects a positive integer, got '" + V + "'";
        return Parse;
      }
      Cli.Verify.Engine.NumThreads = N;
      continue;
    }
    if (Arg == "--frontend") {
      std::string V;
      if (!NeedValue("--frontend needs a value (v1 or v2)", V))
        return Parse;
      if (V == "v1")
        Cli.Verify.Frontend = asl::frontend::FrontendVersion::V1;
      else if (V == "v2")
        Cli.Verify.Frontend = asl::frontend::FrontendVersion::V2;
      else {
        Parse.Error = "--frontend expects 'v1' or 'v2', got '" + V + "'";
        return Parse;
      }
      continue;
    }
    if (Arg == "--const" || Arg == "--param" || Arg == "--abstract" ||
        Arg == "--weight") {
      std::string V;
      if (!NeedValue(Arg + " needs a NAME=VALUE argument", V))
        return Parse;
      std::string Key, Value;
      if (!splitKeyValue(V, Key, Value)) {
        Parse.Error = Arg + " expects NAME=VALUE, got '" + V + "'";
        return Parse;
      }
      if (Arg == "--const" || Arg == "--param") {
        int64_t N = 0;
        if (!parseNumber(Value, N)) {
          Parse.Error = Arg + " " + Key + " expects an integer, got '" +
                        Value + "'";
          return Parse;
        }
        Cli.Verify.Consts[Key] = N;
      } else if (Arg == "--abstract") {
        Cli.Verify.Abstractions[Key] = Value;
      } else {
        uint64_t N = 0;
        if (!parseNumber(Value, N)) {
          Parse.Error = "--weight " + Key +
                        " expects a non-negative integer, got '" + Value +
                        "'";
          return Parse;
        }
        Cli.Verify.Weights[Key] = N;
      }
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      Parse.Error = "unknown option '" + Arg + "'";
      return Parse;
    }
    if (!Cli.InputPath.empty()) {
      Parse.Error = "multiple input files ('" + Cli.InputPath + "' and '" +
                    Arg + "')";
      return Parse;
    }
    Cli.InputPath = Arg;
  }

  if (Cli.InputPath.empty()) {
    Parse.Error = "no input file given";
    return Parse;
  }
  // Cross-knob coherence (spill=true needs compress/spill-dir/mem-budget,
  // and so on) can only be judged once the whole command line is parsed.
  std::string Error;
  if (!Cli.Verify.Engine.validate(Error)) {
    Parse.Error = "--engine: " + Error;
    return Parse;
  }
  Parse.Ok = true;
  return Parse;
}
