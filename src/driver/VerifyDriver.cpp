//===- driver/VerifyDriver.cpp - End-to-end ASL verification -----------------------===//

#include "driver/VerifyDriver.h"

#include "driver/ReportRender.h"
#include "explorer/Explorer.h"
#include "is/Sequentialize.h"
#include "protocols/ScheduleInvariant.h"
#include "refine/Refinement.h"
#include "semantics/Symmetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <unordered_set>

using namespace isq;
using namespace isq::driver;

namespace {

/// Validates the request against the compiled module. Every problem is
/// reported (no first-failure bailout) as a driver diagnostic; the
/// pipeline never asserts or silently ignores bad input.
std::vector<asl::Diagnostic> validateRequest(const VerifyOptions &Options,
                                             const Program &P) {
  std::vector<asl::Diagnostic> Diags;
  auto Bad = [&](const std::string &Message) {
    Diags.push_back({Message, 0, 0});
  };
  if (!P.hasAction(Options.RewriteAction))
    Bad("rewrite action '" + Options.RewriteAction + "' is not declared");
  if (Options.Eliminate.empty())
    Bad("no eliminated actions given");
  std::unordered_set<std::string> Eliminated;
  for (const std::string &Name : Options.Eliminate) {
    if (!P.hasAction(Name))
      Bad("eliminated action '" + Name + "' is not declared");
    if (!Eliminated.insert(Name).second)
      Bad("eliminated action '" + Name + "' listed more than once");
  }
  for (const auto &[Target, AbsName] : Options.Abstractions) {
    if (!Eliminated.count(Target))
      Bad("abstraction given for '" + Target + "', which is not eliminated");
    if (!P.hasAction(AbsName)) {
      Bad("abstraction action '" + AbsName + "' is not declared");
      continue; // arity comparison needs the action
    }
    if (P.hasAction(Target) &&
        P.action(AbsName).arity() != P.action(Target).arity())
      Bad("abstraction '" + AbsName + "' has different arity than '" +
          Target + "'");
  }
  for (const auto &[Name, Weight] : Options.Weights) {
    (void)Weight;
    if (!P.hasAction(Name))
      Bad("weight given for '" + Name + "', which is not declared");
  }
  return Diags;
}

} // namespace

VerifyResult driver::verifyModule(const VerifyOptions &Options) {
  VerifyResult Result;
  Timer Total;

  // 1. Compile the module.
  std::optional<asl::CompiledModule> Compiled = asl::frontend::compileSource(
      Options.Source, Options.SourcePath, Options.Consts, Options.Frontend,
      Result.Diags);
  if (!Compiled) {
    Result.TotalSeconds = Total.elapsed();
    Result.Summary = renderText(Result);
    return Result;
  }
  Result.CompileOk = true;

  // 2. Validate the request against the module.
  std::vector<asl::Diagnostic> InputDiags =
      validateRequest(Options, Compiled->P);
  if (!InputDiags.empty()) {
    Result.Diags.insert(Result.Diags.end(), InputDiags.begin(),
                        InputDiags.end());
    Result.TotalSeconds = Total.elapsed();
    Result.Summary = renderText(Result);
    return Result;
  }
  Result.InputOk = true;

  // 3. Derive the IS artifacts from the declared sequentialization order.
  std::vector<Symbol> Order;
  for (const std::string &Name : Options.Eliminate)
    Order.push_back(Symbol::get(Name));
  bool ArgMajor = Options.Order == VerifyOptions::RankOrder::ArgMajor;
  protocols::RankFn Rank =
      [Order, ArgMajor](const PendingAsync &PA)
      -> std::optional<std::vector<int64_t>> {
    for (size_t I = 0; I < Order.size(); ++I) {
      if (PA.Action != Order[I])
        continue;
      std::vector<int64_t> R;
      if (ArgMajor && !PA.Args.empty() &&
          PA.Args[0].kind() == ValueKind::Int)
        R.push_back(PA.Args[0].getInt());
      R.push_back(static_cast<int64_t>(I));
      for (const Value &Arg : PA.Args)
        if (Arg.kind() == ValueKind::Int)
          R.push_back(Arg.getInt());
      return R;
    }
    return std::nullopt;
  };

  ISApplication App;
  App.P = Compiled->P;
  App.M = Symbol::get(Options.RewriteAction);
  App.E = Order;
  App.Invariant = protocols::makeScheduleInvariant(
      Options.RewriteAction + "Inv", App.P, App.M, Rank);
  App.Choice = protocols::chooseMinRank(Rank);
  for (const auto &[Target, AbsName] : Options.Abstractions)
    App.Abstractions.emplace(Symbol::get(Target),
                             Compiled->P.action(AbsName));
  std::map<std::string, uint64_t> Weights = Options.Weights;
  // The cooperation measure must be orbit-invariant when the module
  // declares a symmetric sort: node IDs are interchangeable, so a rank
  // component drawn from a node-typed argument would distinguish members
  // of one orbit. Those components are masked to 0 — unconditionally, not
  // only under --symmetry, so the identical measure is used by both the
  // reduced run and the --no-symmetry oracle (identical verdicts by
  // construction). The full rank is kept for the schedule invariant and
  // the choice function, which only order PAs within one schedule.
  std::shared_ptr<const SymmetrySpec> ModuleSym = Compiled->P.symmetry();
  protocols::RankFn MeasureRank =
      [Order, ArgMajor, ModuleSym](const PendingAsync &PA)
      -> std::optional<std::vector<int64_t>> {
    for (size_t I = 0; I < Order.size(); ++I) {
      if (PA.Action != Order[I])
        continue;
      const std::vector<ValueShape> *Shapes =
          ModuleSym ? ModuleSym->actionShapes(PA.Action) : nullptr;
      auto Component = [&](size_t Arg) -> int64_t {
        if (Shapes && Arg < Shapes->size() &&
            (*Shapes)[Arg].kind() == ValueShape::Kind::Id)
          return 0;
        return PA.Args[Arg].getInt();
      };
      std::vector<int64_t> R;
      if (ArgMajor && !PA.Args.empty() &&
          PA.Args[0].kind() == ValueKind::Int)
        R.push_back(Component(0));
      R.push_back(static_cast<int64_t>(I));
      for (size_t Arg = 0; Arg < PA.Args.size(); ++Arg)
        if (PA.Args[Arg].kind() == ValueKind::Int)
          R.push_back(Component(Arg));
      return R;
    }
    return std::nullopt;
  };
  // Behavior fingerprints of the derived proof artifacts, for the
  // obligation verdict cache. Each is a pure function of its actual
  // inputs — never of unrelated actions, so editing one concrete body
  // invalidates only the obligations that execute it:
  //  - the schedule invariant executes P(M) and the *ranked* (E) actions;
  //  - the choice function only compares ranks (elimination positions and
  //    integer arguments), never runs bodies;
  //  - the measure reads weights, ranks and the symmetry masking pattern,
  //    never bodies — cooperation verdicts survive body edits.
  // With an unstamped frontend the absorbed action fingerprints are zero
  // and checkIS's eligibility gate keeps the cache detached.
  {
    FpHasher HI("sched-inv/v1");
    HI.boolean(ArgMajor);
    HI.fp(App.P.action(App.M).fp());
    for (size_t I = 0; I < Order.size(); ++I) {
      HI.u64(I).str(Order[I].str());
      HI.fp(App.P.action(Order[I]).fp());
    }
    App.Invariant.setFp(HI.finish());

    FpHasher HC("choice-min-rank/v1");
    HC.boolean(ArgMajor);
    for (size_t I = 0; I < Order.size(); ++I)
      HC.u64(I).str(Order[I].str());
    App.ChoiceFp = HC.finish();
  }

  App.WfMeasure = Measure(
      "(Σ weighted |Ω|, Σ rank-remaining-work)",
      [Weights, Rank = MeasureRank](const Configuration &C) {
        if (C.isFailure())
          return std::vector<uint64_t>{0, 0};
        // First component: weighted PA count — strict decrease for
        // phases that consume more weight than they spawn. Second
        // component: remaining schedule work — a chain re-creating its
        // successor keeps the count but strictly advances its rank.
        constexpr uint64_t Base = 1 << 14;
        constexpr size_t MaxComponents = 4;
        uint64_t Counts = 0, Work = 0;
        for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
          auto It = Weights.find(PA.Action.str());
          Counts += (It != Weights.end() ? It->second : 1) * Count;
          std::optional<std::vector<int64_t>> R = Rank(PA);
          if (!R)
            continue;
          uint64_t Scalar = 0;
          for (size_t I = 0; I < MaxComponents; ++I) {
            int64_t Component = I < R->size() ? (*R)[I] : 0;
            uint64_t Clamped = Component < 0
                                   ? 0
                                   : std::min<uint64_t>(
                                         static_cast<uint64_t>(Component),
                                         Base - 1);
            Scalar = Scalar * Base + Clamped;
          }
          uint64_t MaxScalar = Base * Base * Base * Base;
          Work += (MaxScalar - Scalar) * Count;
        }
        return std::vector<uint64_t>{Counts, Work};
      });
  {
    // The measure's behavior inputs: the rank structure, the weights, and
    // per action the symmetry masking pattern (which argument positions
    // read as 0). Action bodies are deliberately absent — the measure
    // never runs them, so cooperation verdicts survive body edits.
    FpHasher HM("measure-weighted-rank/v1");
    HM.boolean(ArgMajor);
    for (size_t I = 0; I < Order.size(); ++I)
      HM.u64(I).str(Order[I].str());
    HM.u64(Weights.size());
    for (const auto &[Name, W] : Weights) // std::map: name-sorted
      HM.str(Name).u64(W);
    for (Symbol A : Order) {
      const std::vector<ValueShape> *Shapes =
          ModuleSym ? ModuleSym->actionShapes(A) : nullptr;
      HM.boolean(Shapes != nullptr);
      if (!Shapes)
        continue;
      HM.u64(Shapes->size());
      for (const ValueShape &S : *Shapes)
        HM.boolean(S.kind() == ValueShape::Kind::Id);
    }
    App.WfMeasure.setFp(HM.finish());
  }

  // 4. Discharge the IS conditions. The universe is built explicitly so
  // its engine statistics can be surfaced in the summary; obligations run
  // on the scheduler unless the serial reference path was requested.
  ExploreOptions Explore;
  Explore.Config = Options.Engine;
  InitialCondition Init{Compiled->InitialStore, {}};
  ISUniverse Universe = ISUniverse::build(App, {Init}, Explore);
  Result.Engine.accumulate(Universe.Stats);
  ISCheckOptions CheckOpts;
  CheckOpts.Config = Options.Engine;
  // Obligation verdict cache: a shared one (isq-serve) is attached as-is
  // and persisted by its owner; otherwise the request gets its own,
  // disk-backed when --engine cache-dir= was given.
  std::optional<engine::ObligationCache> LocalCache;
  if (Options.Engine.Incremental) {
    if (Options.SharedCache) {
      CheckOpts.Cache = Options.SharedCache;
    } else {
      engine::ObligationCache::Options CacheOpts;
      CacheOpts.Dir = Options.Engine.CacheDir;
      LocalCache.emplace(std::move(CacheOpts));
      CheckOpts.Cache = &*LocalCache;
    }
  }
  ISCheckReport Report = checkIS(App, Universe, CheckOpts);
  Result.Report = Report;
  Result.Accepted = Report.ok();
  if (LocalCache && LocalCache->persistent()) {
    // A writeback failure degrades the next run to cold; it never affects
    // this run's verdict, so it surfaces as a warning, not an error.
    std::string SaveError;
    if (!LocalCache->save(SaveError))
      Result.Diags.push_back({"obligation cache not saved: " + SaveError, 0,
                              0, asl::Severity::Warning});
  }

  // 5. Cross-check the conclusion on the instance.
  if (Report.ok() && Options.CrossCheck) {
    Timer CrossTimer;
    Program PPrime = applyIS(App);
    ExploreResult RP =
        exploreAll(Compiled->P, {initialConfiguration(Init.Global)}, Explore);
    ExploreResult RS =
        exploreAll(PPrime, {initialConfiguration(Init.Global)}, Explore);
    Result.Engine.accumulate(RP.Engine);
    Result.Engine.accumulate(RS.Engine);
    Result.CrossCheck.Ran = true;
    Result.CrossCheck.ConfigsP = RP.Stats.NumConfigurations;
    Result.CrossCheck.ConfigsPPrime = RS.Stats.NumConfigurations;
    Result.CrossCheck.Refines =
        checkProgramRefinement(Compiled->P, PPrime, {Init}, Explore);
    Result.CrossCheck.Seconds = CrossTimer.elapsed();
    Result.Accepted = Result.Accepted && Result.CrossCheck.Refines.ok();
  }
  Result.TotalSeconds = Total.elapsed();
  Result.Summary = renderText(Result);
  return Result;
}
