//===- driver/VerifyDriver.cpp - End-to-end ASL verification -----------------------===//

#include "driver/VerifyDriver.h"

#include "explorer/Explorer.h"
#include "is/Sequentialize.h"
#include "protocols/ScheduleInvariant.h"
#include "refine/Refinement.h"
#include "support/Timer.h"

#include <algorithm>

using namespace isq;
using namespace isq::driver;

VerifyResult driver::verifyModule(const VerifyOptions &Options) {
  VerifyResult Result;
  Timer Total;

  auto Fail = [&](const std::string &Message) {
    Result.Diags.push_back({Message, 0, 0});
    Result.Summary += "error: " + Message + "\n";
    return Result;
  };

  // 1. Compile the module.
  std::optional<asl::CompiledModule> Compiled =
      asl::compileModule(Options.Source, Options.Consts, Result.Diags);
  if (!Compiled) {
    Result.Summary = "compilation failed:\n";
    for (const asl::Diagnostic &D : Result.Diags)
      Result.Summary += "  " + D.str() + "\n";
    return Result;
  }
  Result.CompileOk = true;

  // 2. Validate the request against the module.
  if (!Compiled->P.hasAction(Options.RewriteAction))
    return Fail("rewrite action '" + Options.RewriteAction +
                "' is not declared");
  if (Options.Eliminate.empty())
    return Fail("no eliminated actions given");
  for (const std::string &Name : Options.Eliminate)
    if (!Compiled->P.hasAction(Name))
      return Fail("eliminated action '" + Name + "' is not declared");
  for (const auto &[Target, AbsName] : Options.Abstractions) {
    if (std::find(Options.Eliminate.begin(), Options.Eliminate.end(),
                  Target) == Options.Eliminate.end())
      return Fail("abstraction given for '" + Target +
                  "', which is not eliminated");
    if (!Compiled->P.hasAction(AbsName))
      return Fail("abstraction action '" + AbsName + "' is not declared");
    if (Compiled->P.action(AbsName).arity() !=
        Compiled->P.action(Target).arity())
      return Fail("abstraction '" + AbsName + "' has different arity than '" +
                  Target + "'");
  }

  // 3. Derive the IS artifacts from the declared sequentialization order.
  std::vector<Symbol> Order;
  for (const std::string &Name : Options.Eliminate)
    Order.push_back(Symbol::get(Name));
  bool ArgMajor = Options.Order == VerifyOptions::RankOrder::ArgMajor;
  protocols::RankFn Rank =
      [Order, ArgMajor](const PendingAsync &PA)
      -> std::optional<std::vector<int64_t>> {
    for (size_t I = 0; I < Order.size(); ++I) {
      if (PA.Action != Order[I])
        continue;
      std::vector<int64_t> R;
      if (ArgMajor && !PA.Args.empty() &&
          PA.Args[0].kind() == ValueKind::Int)
        R.push_back(PA.Args[0].getInt());
      R.push_back(static_cast<int64_t>(I));
      for (const Value &Arg : PA.Args)
        if (Arg.kind() == ValueKind::Int)
          R.push_back(Arg.getInt());
      return R;
    }
    return std::nullopt;
  };

  ISApplication App;
  App.P = Compiled->P;
  App.M = Symbol::get(Options.RewriteAction);
  App.E = Order;
  App.Invariant = protocols::makeScheduleInvariant(
      Options.RewriteAction + "Inv", App.P, App.M, Rank);
  App.Choice = protocols::chooseMinRank(Rank);
  for (const auto &[Target, AbsName] : Options.Abstractions)
    App.Abstractions.emplace(Symbol::get(Target),
                             Compiled->P.action(AbsName));
  std::map<std::string, uint64_t> Weights = Options.Weights;
  App.WfMeasure = Measure(
      "(Σ weighted |Ω|, Σ rank-remaining-work)",
      [Weights, Rank](const Configuration &C) {
        if (C.isFailure())
          return std::vector<uint64_t>{0, 0};
        // First component: weighted PA count — strict decrease for
        // phases that consume more weight than they spawn. Second
        // component: remaining schedule work — a chain re-creating its
        // successor keeps the count but strictly advances its rank.
        constexpr uint64_t Base = 1 << 14;
        constexpr size_t MaxComponents = 4;
        uint64_t Counts = 0, Work = 0;
        for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
          auto It = Weights.find(PA.Action.str());
          Counts += (It != Weights.end() ? It->second : 1) * Count;
          std::optional<std::vector<int64_t>> R = Rank(PA);
          if (!R)
            continue;
          uint64_t Scalar = 0;
          for (size_t I = 0; I < MaxComponents; ++I) {
            int64_t Component = I < R->size() ? (*R)[I] : 0;
            uint64_t Clamped = Component < 0
                                   ? 0
                                   : std::min<uint64_t>(
                                         static_cast<uint64_t>(Component),
                                         Base - 1);
            Scalar = Scalar * Base + Clamped;
          }
          uint64_t MaxScalar = Base * Base * Base * Base;
          Work += (MaxScalar - Scalar) * Count;
        }
        return std::vector<uint64_t>{Counts, Work};
      });

  // 4. Discharge the IS conditions. The universe is built explicitly so
  // its engine statistics can be surfaced in the summary.
  ExploreOptions Explore;
  Explore.NumThreads = Options.NumThreads;
  InitialCondition Init{Compiled->InitialStore, {}};
  ISUniverse Universe = ISUniverse::build(App, {Init}, Explore);
  Result.Engine.accumulate(Universe.Stats);
  ISCheckReport Report = checkIS(App, Universe);
  Result.Report = Report;
  Result.Accepted = Report.ok();
  Result.Summary += Report.str();

  // 5. Cross-check the conclusion on the instance.
  if (Report.ok() && Options.CrossCheck) {
    Program PPrime = applyIS(App);
    ExploreResult RP =
        exploreAll(Compiled->P, {initialConfiguration(Init.Global)}, Explore);
    ExploreResult RS =
        exploreAll(PPrime, {initialConfiguration(Init.Global)}, Explore);
    Result.Engine.accumulate(RP.Engine);
    Result.Engine.accumulate(RS.Engine);
    Result.Summary +=
        "sequential reduction: " + std::to_string(RP.Stats.NumConfigurations) +
        " configurations -> " + std::to_string(RS.Stats.NumConfigurations) +
        "\n";
    CheckResult Refines =
        checkProgramRefinement(Compiled->P, PPrime, {Init}, Explore);
    Result.Summary += "P ≼ P' (empirical): " + Refines.str() + "\n";
    Result.Accepted = Result.Accepted && Refines.ok();
  }
  Result.Summary += "engine: " + Result.Engine.str() + "\n";
  Result.Summary +=
      "total time: " + std::to_string(Total.elapsed()) + "s\n";
  return Result;
}
