//===- driver/ReportRender.h - Verdict report renderers ----------*- C++ -*-===//
///
/// \file
/// Rendering of the structured verification verdict (VerifyResult) for
/// the isq-verify surface. Both renderers are pure functions of the
/// verdict struct: the text form is the human-readable summary the tool
/// has always printed, the JSON form is the machine-readable report
/// behind `isq-verify --format json`.
///
/// JSON schema (version 6):
///   {
///     "schema_version": 6,
///     "tool": "isq-verify",
///     "exit_code": 0|1|2,
///     "compile_ok": bool, "input_ok": bool, "accepted": bool,
///     "conditions": [ { "name", "label", "ok", "obligations",
///                       "failures", "issues": [string], "jobs",
///                       "orbit_configs", "orbit_states",
///                       "seconds" } ],           // one per IS condition
///     "cross_check": { "ran", "ok", "obligations", "failures",
///                      "issues": [string], "configs_p",
///                      "configs_p_prime", "seconds" },
///     "engine":  { exploration statistics incl. "symmetry_reduced",
///                  "canon_calls", "canon_cache_hits",
///                  "orbit_states_represented", "work_stealing",
///                  "steal_chunk", "steals", "shards",
///                  "shard_occupancy", "compressed_bytes",
///                  "spill_enabled", "mem_budget", "bytes_hot",
///                  "bytes_cold", "blocks_evicted", "blocks_faulted",
///                  "fault_stall_ns" },
///     "scheduler": { "threads", "jobs", "units", "dedup_discarded",
///                    "cpu_seconds", "wall_seconds" },
///     "obligations": { "total", "cache_enabled", "cache_hits",
///                      "cache_misses", "disk_hits" },
///     "diagnostics": [ { "severity", "message", "file", "line", "col",
///                        "end_line", "end_col", "note" } ],
///     "total_seconds": number
///   }
/// The schema_version field only changes on breaking changes; adding
/// fields is not breaking. Version 2 added the symmetry-reduction
/// observability: per-condition "orbit_configs"/"orbit_states" (the
/// condition's quantifier universe in orbit representatives and the
/// unreduced states those stand for) and the engine's symmetry counters.
/// Version 3 restructured "diagnostics": every entry now carries the
/// severity, the owning file, a location span and an optional note, and
/// the "column" key was renamed to "col" (the breaking part).
/// Version 4 added the work-stealing/compact-store observability to
/// "engine": "work_stealing", "steal_chunk", "steals" (scheduling; the
/// steal count is nondeterministic), "shards", "shard_occupancy" (state
/// sharding; both deterministic), and "compressed_bytes" (total encoded
/// bytes interned under --engine compress=true; 0 when off). Consumers
/// that treated unknown engine keys as errors must opt in, hence the
/// version bump.
/// Version 5 added the top-level "obligations" object — the incremental
/// re-verification observability: "total" (discharged obligations across
/// all conditions, always), and the obligation-weighted verdict-cache
/// counters "cache_hits"/"cache_misses"/"disk_hits" with "cache_enabled"
/// saying whether a cache was attached (all zero when disabled or on the
/// serial path). Counters are obligation-weighted, not slice-weighted,
/// so hits+misses equals the obligations the scheduler would discharge
/// before dedup. Verdict fields are unchanged; the bump marks that two
/// reports differing only under "obligations" are the same verdict.
/// Version 6 added the tiered-store observability to "engine":
/// "spill_enabled" and "mem_budget" echo the resolved configuration;
/// "bytes_hot"/"bytes_cold" are the hot encoded bytes and cold segment
/// bytes at end of run; "blocks_evicted"/"blocks_faulted" and
/// "fault_stall_ns" count evictions, cold-tier decode faults and the
/// wall time spent in them. The eviction/fault counters are telemetry
/// (eviction timing depends on cross-thread allocation order); verdict
/// fields are unchanged — spilling is bit-identical to the hot-only
/// store.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_DRIVER_REPORTRENDER_H
#define ISQ_DRIVER_REPORTRENDER_H

#include "driver/VerifyDriver.h"

#include <string>

namespace isq {
namespace driver {

/// The version of the JSON report schema emitted by renderJson.
constexpr int JsonSchemaVersion = 6;

/// Renders the human-readable summary (the `--format text` output).
std::string renderText(const VerifyResult &Result);

/// Renders the schema-versioned JSON report (the `--format json`
/// output), terminated by a newline.
std::string renderJson(const VerifyResult &Result);

} // namespace driver
} // namespace isq

#endif // ISQ_DRIVER_REPORTRENDER_H
