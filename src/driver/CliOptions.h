//===- driver/CliOptions.h - isq-verify command line -------------*- C++ -*-===//
///
/// \file
/// The isq-verify command-line surface, parsed into VerifyOptions plus
/// tool-level settings. Lives in the library (not the tool) so the parser
/// is unit-testable: numeric arguments are validated with std::from_chars
/// and every malformed input produces a targeted error string instead of
/// silently parsing as zero.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_DRIVER_CLIOPTIONS_H
#define ISQ_DRIVER_CLIOPTIONS_H

#include "driver/VerifyDriver.h"

#include <string>
#include <vector>

namespace isq {
namespace driver {

/// Output format of the verdict report.
enum class OutputFormat { Text, Json };

/// The parsed command line.
struct CliOptions {
  VerifyOptions Verify;
  std::string InputPath;
  OutputFormat Format = OutputFormat::Text;
  bool ShowHelp = false;
  /// --version: print the build-provenance banner (support/Version.h) and
  /// exit 0. Parsed like --help: wins over everything else on the line.
  bool ShowVersion = false;
};

/// Result of parseCommandLine. When !Ok, Error holds a one-line message
/// (the tool prints it and exits 2 — a usage error).
struct CliParse {
  bool Ok = false;
  CliOptions Options;
  std::string Error;
  /// Non-fatal usage notes (deprecated-alias warnings). Deduplicated:
  /// each deprecated flag warns once per invocation no matter how often
  /// it repeats. The tool prints these to stderr; parsing succeeded.
  std::vector<std::string> Warnings;
};

/// Parses the argument vector (argv[1..argc-1], no program name).
CliParse parseCommandLine(const std::vector<std::string> &Args);

/// The --help text, including the option reference and the documented
/// exit codes (0 proof accepted, 1 proof rejected, 2 usage, compile or
/// input error).
const char *usageText();

} // namespace driver
} // namespace isq

#endif // ISQ_DRIVER_CLIOPTIONS_H
