//===- driver/ReportRender.cpp - Verdict report renderers ---------------------===//

#include "driver/ReportRender.h"

#include "support/Json.h"

using namespace isq;
using namespace isq::driver;
using namespace isq::engine;

std::string driver::renderText(const VerifyResult &Result) {
  std::string Out;
  if (!Result.CompileOk) {
    Out = "compilation failed:\n";
    for (const asl::Diagnostic &D : Result.Diags)
      Out += "  " + D.str() + "\n";
    return Out;
  }
  if (!Result.InputOk) {
    for (const asl::Diagnostic &D : Result.Diags)
      Out += "error: " + D.Message + "\n";
    return Out;
  }
  Out += Result.Report.str();
  if (Result.CrossCheck.Ran) {
    Out += "sequential reduction: " +
           std::to_string(Result.CrossCheck.ConfigsP) +
           " configurations -> " +
           std::to_string(Result.CrossCheck.ConfigsPPrime) + "\n";
    Out += "P ≼ P' (empirical): " + Result.CrossCheck.Refines.str() + "\n";
  }
  Out += "engine: " + Result.Engine.str() + "\n";
  // The serial reference path never runs the scheduler; suppress the
  // all-zero line so the two modes render their own shapes.
  if (Result.Report.Scheduler.totals().Jobs)
    Out += "checker: " + Result.Report.Scheduler.str() + "\n";
  Out += "total time: " + std::to_string(Result.TotalSeconds) + "s\n";
  return Out;
}

namespace {

/// Emits one member of the "conditions" array.
void emitCondition(json::JsonWriter &W, ObCondition Cond,
                   const CheckResult &R, const ObligationStats &Sched) {
  const ObligationStats::Bucket &B =
      Sched.PerCondition[static_cast<size_t>(Cond)];
  W.beginObject();
  W.key("name").value(obConditionName(Cond));
  W.key("label").value(obConditionLabel(Cond));
  W.key("ok").value(R.ok());
  W.key("obligations").value(R.obligations());
  W.key("failures").value(R.failures());
  W.key("issues").beginArray();
  for (const std::string &Issue : R.issues())
    W.value(Issue);
  W.endArray();
  W.key("jobs").value(B.Jobs);
  W.key("orbit_configs").value(B.OrbitConfigs);
  W.key("orbit_states").value(B.OrbitStates);
  W.key("seconds").value(B.JobSeconds);
  W.endObject();
}

} // namespace

std::string driver::renderJson(const VerifyResult &Result) {
  json::JsonWriter W;
  W.beginObject();
  W.key("schema_version").value(JsonSchemaVersion);
  W.key("tool").value("isq-verify");
  W.key("exit_code").value(Result.exitCode());
  W.key("compile_ok").value(Result.CompileOk);
  W.key("input_ok").value(Result.InputOk);
  W.key("accepted").value(Result.Accepted);

  const ISCheckReport &Rep = Result.Report;
  const ObligationStats &Sched = Rep.Scheduler;
  W.key("conditions").beginArray();
  if (Result.CompileOk && Result.InputOk) {
    emitCondition(W, ObCondition::SideConditions, Rep.SideConditions, Sched);
    emitCondition(W, ObCondition::AbstractionRefinement,
                  Rep.AbstractionRefinement, Sched);
    emitCondition(W, ObCondition::BaseCase, Rep.BaseCase, Sched);
    emitCondition(W, ObCondition::Conclusion, Rep.Conclusion, Sched);
    emitCondition(W, ObCondition::InductiveStep, Rep.InductiveStep, Sched);
    emitCondition(W, ObCondition::LeftMovers, Rep.LeftMovers, Sched);
    emitCondition(W, ObCondition::Cooperation, Rep.Cooperation, Sched);
  }
  W.endArray();

  W.key("cross_check").beginObject();
  W.key("ran").value(Result.CrossCheck.Ran);
  W.key("ok").value(Result.CrossCheck.Refines.ok());
  W.key("obligations").value(Result.CrossCheck.Refines.obligations());
  W.key("failures").value(Result.CrossCheck.Refines.failures());
  W.key("issues").beginArray();
  for (const std::string &Issue : Result.CrossCheck.Refines.issues())
    W.value(Issue);
  W.endArray();
  W.key("configs_p").value(Result.CrossCheck.ConfigsP);
  W.key("configs_p_prime").value(Result.CrossCheck.ConfigsPPrime);
  W.key("seconds").value(Result.CrossCheck.Seconds);
  W.endObject();

  const EngineStats &E = Result.Engine;
  W.key("engine").beginObject();
  W.key("configurations").value(E.NumConfigurations);
  W.key("transitions").value(E.NumTransitions);
  W.key("truncated").value(E.Truncated);
  W.key("interned_stores").value(E.InternedStores);
  W.key("interned_pas").value(E.InternedPas);
  W.key("interned_pa_sets").value(E.InternedPaSets);
  W.key("interned_configs").value(E.InternedConfigs);
  W.key("hash_cons_lookups").value(E.HashConsLookups);
  W.key("hash_cons_hits").value(E.HashConsHits);
  W.key("transition_cache_lookups").value(E.TransitionCacheLookups);
  W.key("transition_cache_hits").value(E.TransitionCacheHits);
  W.key("symmetry_reduced").value(E.SymmetryReduced);
  W.key("canon_calls").value(E.CanonCalls);
  W.key("canon_cache_hits").value(E.CanonCacheHits);
  W.key("orbit_states_represented").value(E.OrbitStatesRepresented);
  W.key("frontier_peak").value(E.FrontierPeak);
  W.key("threads").value(E.Threads);
  W.key("work_stealing").value(E.WorkStealing);
  W.key("steal_chunk").value(E.StealChunk);
  W.key("steals").value(E.Steals);
  W.key("shards").value(E.Shards);
  W.key("shard_occupancy").value(E.ShardOccupancy);
  W.key("compressed_bytes").value(E.CompressedBytes);
  W.key("spill_enabled").value(E.SpillEnabled);
  W.key("mem_budget").value(E.MemBudget);
  W.key("bytes_hot").value(E.BytesHot);
  W.key("bytes_cold").value(E.BytesCold);
  W.key("blocks_evicted").value(E.BlocksEvicted);
  W.key("blocks_faulted").value(E.BlocksFaulted);
  W.key("fault_stall_ns").value(E.FaultStallNanos);
  W.key("expand_seconds").value(E.ExpandSeconds);
  W.key("merge_seconds").value(E.MergeSeconds);
  W.key("total_seconds").value(E.TotalSeconds);
  W.endObject();

  ObligationStats::Bucket T = Sched.totals();
  W.key("scheduler").beginObject();
  W.key("threads").value(Sched.Threads);
  W.key("jobs").value(T.Jobs);
  W.key("units").value(T.Units);
  W.key("dedup_discarded").value(T.UnitsDeduped);
  W.key("cpu_seconds").value(T.JobSeconds);
  W.key("wall_seconds").value(Sched.WallSeconds);
  W.endObject();

  W.key("obligations").beginObject();
  W.key("total").value(Rep.totalObligations());
  W.key("cache_enabled").value(Sched.Cache.Enabled);
  W.key("cache_hits").value(Sched.Cache.Hits);
  W.key("cache_misses").value(Sched.Cache.Misses);
  W.key("disk_hits").value(Sched.Cache.DiskHits);
  W.endObject();

  W.key("diagnostics").beginArray();
  for (const asl::Diagnostic &D : Result.Diags) {
    W.beginObject();
    W.key("severity").value(asl::severityName(D.Sev));
    W.key("message").value(D.Message);
    W.key("file").value(D.FileName);
    W.key("line").value(D.Line);
    W.key("col").value(D.Column);
    W.key("end_line").value(D.EndLine);
    W.key("end_col").value(D.EndColumn);
    W.key("note").value(D.Note);
    W.endObject();
  }
  W.endArray();

  W.key("total_seconds").value(Result.TotalSeconds);
  W.endObject();
  return W.take() + "\n";
}
