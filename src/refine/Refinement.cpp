//===- refine/Refinement.cpp - Refinement checking ---------------------------===//

#include "refine/Refinement.h"

#include "semantics/ActionCache.h"
#include "support/Hashing.h"

#include <algorithm>
#include <unordered_set>

using namespace isq;

void CheckResult::fail(const std::string &Message) {
  ++NumFailures;
  if (Issues.size() < MaxIssues)
    Issues.push_back(Message);
}

void CheckResult::merge(const CheckResult &Other) {
  NumObligations += Other.NumObligations;
  NumFailures += Other.NumFailures;
  for (const std::string &Issue : Other.Issues)
    if (Issues.size() < MaxIssues)
      Issues.push_back(Issue);
}

std::string CheckResult::str() const {
  if (ok())
    return "OK (" + std::to_string(NumObligations) + " obligations)";
  std::string Out = "FAILED (" + std::to_string(NumFailures) + "/" +
                    std::to_string(NumObligations) + " obligations):";
  for (const std::string &Issue : Issues)
    Out += "\n  - " + Issue;
  return Out;
}

ContextUniverse
isq::collectContexts(const std::vector<Configuration> &Configs, Symbol Name) {
  // Configurations are already distinct, so only PAs repeated within one
  // configuration need deduplication — handled by iterating the canonical
  // multiset entries (one context per distinct PA).
  ContextUniverse Universe;
  for (const Configuration &C : Configs) {
    if (C.isFailure())
      continue;
    for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
      (void)Count;
      if (PA.Action != Name)
        continue;
      Universe.push_back({C.global(), PA.Args, C.pendingAsyncs()});
    }
  }
  return Universe;
}

namespace {

/// A (store, args) quantifier point with full-key equality, used to
/// deduplicate Ω-independent obligations without hash-collision risk.
struct StorePoint {
  Store G;
  std::vector<Value> Args;

  bool operator==(const StorePoint &O) const {
    return G == O.G && Args == O.Args;
  }
};
struct StorePointHash {
  size_t operator()(const StorePoint &P) const {
    size_t Seed = P.G.hash();
    for (const Value &V : P.Args)
      hashCombine(Seed, V.hash());
    return Seed;
  }
};

/// Transition-set membership: is \p T contained in \p Set (comparing global
/// store and created-PA multiset)?
bool containsTransition(const std::vector<Transition> &Set,
                        const Transition &T) {
  PaMultiset Created = T.createdMultiset();
  for (const Transition &Candidate : Set)
    if (Candidate.Global == T.Global &&
        Candidate.createdMultiset() == Created)
      return true;
  return false;
}

std::string describeContext(const ActionContext &Ctx) {
  std::string Out = "store=" + Ctx.Global.str() + " args=(";
  for (size_t I = 0; I < Ctx.Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Ctx.Args[I].str();
  }
  return Out + ")";
}

} // namespace

CheckResult isq::checkActionRefinement(const Action &A1, const Action &A2,
                                       const ContextUniverse &Universe) {
  CheckResult Result;
  assert(A1.arity() == A2.arity() && "refinement requires equal arity");
  TransitionCache Cache;
  // Condition (2) does not read Ω: check each (store, args) point once.
  std::unordered_set<StorePoint, StorePointHash> SimulationDone;
  for (const ActionContext &Ctx : Universe) {
    bool Gate2 = A2.evalGate(Ctx.Global, Ctx.Args, Ctx.Omega);
    // (1) ρ2 ⊆ ρ1: whenever the abstract gate holds, the concrete gate
    // holds (the abstraction preserves failures of the concrete action).
    Result.countObligation();
    bool Gate1 = A1.evalGate(Ctx.Global, Ctx.Args, Ctx.Omega);
    if (Gate2 && !Gate1)
      Result.fail("gate inclusion violated (ρ2 ⊄ ρ1) at " +
                  describeContext(Ctx));
    if (!Gate2)
      continue; // (2) only constrains stores in ρ2
    if (!SimulationDone.insert({Ctx.Global, Ctx.Args}).second)
      continue;
    // (2) ρ2 ∘ τ1 ⊆ τ2: every concrete transition is an abstract one.
    const std::vector<Transition> &Abstract =
        Cache.get(A2, Ctx.Global, Ctx.Args);
    for (const Transition &T : Cache.get(A1, Ctx.Global, Ctx.Args)) {
      Result.countObligation();
      if (!containsTransition(Abstract, T))
        Result.fail("transition not simulated (ρ2 ∘ τ1 ⊄ τ2) at " +
                    describeContext(Ctx) + " transition " + T.str());
    }
  }
  return Result;
}

CheckResult
isq::checkProgramRefinement(const Program &P1, const Program &P2,
                            const std::vector<InitialCondition> &Inits,
                            const ExploreOptions &Opts) {
  CheckResult Result;
  for (const InitialCondition &Init : Inits) {
    auto [Good2, Trans2] = summarize(P2, Init.Global, Init.MainArgs, Opts);
    Result.countObligation();
    if (!Good2)
      continue; // P2 fails from this initial store: both conditions vacuous
    auto [Good1, Trans1] = summarize(P1, Init.Global, Init.MainArgs, Opts);
    // (1) Good(P2) ⊆ Good(P1).
    if (!Good1) {
      Result.fail("P1 can fail where P2 cannot, from " + Init.Global.str());
      continue;
    }
    // (2) Good(P2) ∘ Trans(P1) ⊆ Trans(P2).
    std::unordered_set<Store> Allowed(Trans2.begin(), Trans2.end());
    for (const Store &Final : Trans1) {
      Result.countObligation();
      if (!Allowed.count(Final))
        Result.fail("terminal store of P1 unreachable in P2: " +
                    Final.str() + " from " + Init.Global.str());
    }
  }
  return Result;
}
