//===- refine/Refinement.cpp - Refinement checking ---------------------------===//

#include "refine/Refinement.h"

#include "engine/ActionCaches.h"
#include "engine/ArenaFingerprints.h"
#include "semantics/Symmetry.h"
#include "support/Hashing.h"

#include <algorithm>
#include <unordered_set>

using namespace isq;
using namespace isq::engine;

void CheckResult::fail(const std::string &Message) {
  ++NumFailures;
  if (Issues.size() < MaxIssues)
    Issues.push_back(Message);
}

void CheckResult::merge(const CheckResult &Other) {
  NumObligations += Other.NumObligations;
  NumFailures += Other.NumFailures;
  for (const std::string &Issue : Other.Issues)
    if (Issues.size() < MaxIssues)
      Issues.push_back(Issue);
}

std::string CheckResult::str() const {
  if (ok())
    return "OK (" + std::to_string(NumObligations) + " obligations)";
  std::string Out = "FAILED (" + std::to_string(NumFailures) + "/" +
                    std::to_string(NumObligations) + " obligations):";
  for (const std::string &Issue : Issues)
    Out += "\n  - " + Issue;
  return Out;
}

InternedContextUniverse isq::collectContexts(const StateSpace &Space,
                                             Symbol Name) {
  InternedContextUniverse Universe;
  Universe.Arena = Space.Arena;
  StateArena &Arena = *Space.Arena;
  for (ConfigId Cid : Space.Configs) {
    auto [G, OmegaId] = Arena.config(Cid);
    // Value order, not PaId order: context order stays deterministic even
    // when the universe was interned by concurrent workers.
    for (PaId Pa : Arena.paOrder(OmegaId)) {
      if (Arena.pa(Pa).Action != Name)
        continue;
      Universe.Items.push_back({G, Pa, OmegaId});
    }
  }
  return Universe;
}

ContextUniverse
isq::collectContexts(const std::vector<Configuration> &Configs, Symbol Name) {
  // Configurations are already distinct, so only PAs repeated within one
  // configuration need deduplication — handled by iterating the canonical
  // multiset entries (one context per distinct PA).
  ContextUniverse Universe;
  for (const Configuration &C : Configs) {
    if (C.isFailure())
      continue;
    for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
      (void)Count;
      if (PA.Action != Name)
        continue;
      Universe.push_back({C.global(), PA.Args, C.pendingAsyncs()});
    }
  }
  return Universe;
}

namespace {

std::string describeContext(const ActionContext &Ctx) {
  std::string Out = "store=" + Ctx.Global.str() + " args=(";
  for (size_t I = 0; I < Ctx.Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Ctx.Args[I].str();
  }
  return Out + ")";
}

} // namespace

CheckResult isq::checkActionRefinement(const Action &A1, const Action &A2,
                                       const InternedContextUniverse &Universe) {
  CheckResult Result;
  assert(A1.arity() == A2.arity() && "refinement requires equal arity");
  StateArena &Arena = *Universe.Arena;
  InternedTransitionCache Cache(Arena);
  // Condition (2) does not read Ω: check each (store, args) point once.
  // The interned pair (StoreId, ArgsPa) identifies the point exactly.
  std::unordered_set<uint64_t> SimulationDone;
  auto describe = [&](const InternedActionContext &Ctx) {
    return describeContext({Arena.store(Ctx.Global), Arena.pa(Ctx.ArgsPa).Args,
                            Arena.paSet(Ctx.Omega)});
  };
  for (const InternedActionContext &Ctx : Universe.Items) {
    const Store &G = Arena.store(Ctx.Global);
    const std::vector<Value> &Args = Arena.pa(Ctx.ArgsPa).Args;
    const PaMultiset &Omega = Arena.paSet(Ctx.Omega);
    bool Gate2 = A2.evalGate(G, Args, Omega);
    // (1) ρ2 ⊆ ρ1: whenever the abstract gate holds, the concrete gate
    // holds (the abstraction preserves failures of the concrete action).
    Result.countObligation();
    bool Gate1 = A1.evalGate(G, Args, Omega);
    if (Gate2 && !Gate1)
      Result.fail("gate inclusion violated (ρ2 ⊄ ρ1) at " + describe(Ctx));
    if (!Gate2)
      continue; // (2) only constrains stores in ρ2
    uint64_t Point = (static_cast<uint64_t>(Ctx.Global) << 32) | Ctx.ArgsPa;
    if (!SimulationDone.insert(Point).second)
      continue;
    // (2) ρ2 ∘ τ1 ⊆ τ2: every concrete transition is an abstract one.
    const std::vector<InternedTransition> &Abstract =
        Cache.get(A2, Ctx.Global, Ctx.ArgsPa);
    for (const InternedTransition &T : Cache.get(A1, Ctx.Global, Ctx.ArgsPa)) {
      Result.countObligation();
      bool Found = false;
      for (const InternedTransition &Candidate : Abstract)
        if (Candidate.Global == T.Global &&
            Candidate.CreatedSet == T.CreatedSet) {
          Found = true;
          break;
        }
      if (!Found)
        Result.fail("transition not simulated (ρ2 ∘ τ1 ⊄ τ2) at " +
                    describe(Ctx) + " transition " +
                    Transition(Arena.store(T.Global),
                               Arena.paSet(T.CreatedSet).flatten())
                        .str());
    }
  }
  return Result;
}

ObligationScheduler::Group *
isq::scheduleActionRefinement(ObligationScheduler &Sched, ObCondition Cond,
                              const Action &A1, const Action &A2,
                              const InternedContextUniverse &Universe,
                              InternedTransitionCache &Cache, GateCache &Gates,
                              OmegaGateCache &OmegaGates,
                              ArenaFingerprints *Fps) {
  assert(A1.arity() == A2.arity() && "refinement requires equal arity");
  assert((!Fps || (!A1.fp().isZero() && !A2.fp().isZero())) &&
         "cacheable refinement requires stamped behavior fingerprints");
  ObligationScheduler::Group *Group = Sched.group(Cond);
  // Slice size is thread-count independent so unit/dedup statistics are
  // identical for any --threads value, not just the verdicts. 4096 keeps
  // job dispatch well under 1% of refinement work on the large
  // context universes (Paxos/3 has hundreds of thousands of contexts).
  constexpr size_t ChunkSize = 4096;
  // Dedup namespace of the condition-(2) simulation units.
  constexpr uint32_t TagSim = 1;
  // Jobs run after this function returns: capture the referents as
  // pointers by value, never the reference parameters themselves.
  const Action *A1P = &A1;
  const Action *A2P = &A2;
  const InternedContextUniverse *UniP = &Universe;
  InternedTransitionCache *CacheP = &Cache;
  GateCache *GatesP = &Gates;
  OmegaGateCache *OmegaGatesP = &OmegaGates;
  size_t N = Universe.Items.size();
  for (size_t Begin = 0; Begin < N; Begin += ChunkSize) {
    size_t End = std::min(N, Begin + ChunkSize);
    // With a fingerprint memo the slice is cacheable: its verdict depends
    // on the two behaviors and on the slice's contexts, nothing else.
    std::function<Fingerprint()> KeyFn;
    if (Fps) {
      Fingerprint F1 = A1.fp(), F2 = A2.fp();
      KeyFn = [=]() {
        FpHasher H("refine-slice/v1");
        H.fp(F1).fp(F2).u64(End - Begin);
        for (size_t I = Begin; I < End; ++I) {
          const InternedActionContext &Ctx = UniP->Items[I];
          H.fp(Fps->store(Ctx.Global));
          H.fp(Fps->pa(Ctx.ArgsPa));
          H.fp(Fps->paSet(Ctx.Omega));
        }
        return H.finish();
      };
    }
    Sched.add(Group, std::move(KeyFn), [=](ObSink &Sink) {
      StateArena &Arena = *UniP->Arena;
      std::unordered_set<uint64_t> SimulationDone;
      // Gate results are pure functions of the interned point, so every
      // evaluation goes through the shared caches: Ω-observing gates key
      // on (store, args, Ω), Ω-independent ones on (store, args) alone.
      auto gateAt = [&](const Action &A, const InternedActionContext &Ctx) {
        return A.gateReadsOmega()
                   ? OmegaGatesP->get(A, Ctx.Global, Ctx.ArgsPa, Ctx.Omega)
                   : GatesP->get(A, Ctx.Global, Ctx.ArgsPa,
                                 Arena.paSet(Ctx.Omega));
      };
      auto describe = [&](const InternedActionContext &Ctx) {
        return describeContext({Arena.store(Ctx.Global),
                                Arena.pa(Ctx.ArgsPa).Args,
                                Arena.paSet(Ctx.Omega)});
      };
      for (size_t I = Begin; I < End; ++I) {
        const InternedActionContext &Ctx = UniP->Items[I];
        bool Gate2 = gateAt(*A2P, Ctx);
        // (1) ρ2 ⊆ ρ1 — evaluated at every context, never deduplicated.
        Sink.begin();
        Sink.countObligation();
        bool Gate1 = gateAt(*A1P, Ctx);
        if (Gate2 && !Gate1)
          Sink.fail("gate inclusion violated (ρ2 ⊄ ρ1) at " + describe(Ctx));
        if (!Gate2)
          continue; // (2) only constrains stores in ρ2
        uint64_t Point = (static_cast<uint64_t>(Ctx.Global) << 32) | Ctx.ArgsPa;
        if (!SimulationDone.insert(Point).second)
          continue;
        // (2) ρ2 ∘ τ1 ⊆ τ2 — one unit per (store, args) point; the
        // reconciliation keeps the first gate-passing occurrence. Under
        // the verdict cache the key is the point's *content* (see ObKey).
        ObKey SimKey =
            Fps ? ObKey{TagSim, fp64(Fps->store(Ctx.Global)),
                        fp64(Fps->pa(Ctx.ArgsPa)), 0}
                : ObKey{TagSim, Ctx.Global, Ctx.ArgsPa, 0};
        Sink.begin(SimKey);
        const std::vector<InternedTransition> &Abstract =
            CacheP->get(*A2P, Ctx.Global, Ctx.ArgsPa);
        for (const InternedTransition &T :
             CacheP->get(*A1P, Ctx.Global, Ctx.ArgsPa)) {
          Sink.countObligation();
          bool Found = false;
          for (const InternedTransition &Candidate : Abstract)
            if (Candidate.Global == T.Global &&
                Candidate.CreatedSet == T.CreatedSet) {
              Found = true;
              break;
            }
          if (!Found)
            Sink.fail("transition not simulated (ρ2 ∘ τ1 ⊄ τ2) at " +
                      describe(Ctx) + " transition " +
                      Transition(Arena.store(T.Global),
                                 Arena.paSet(T.CreatedSet).flatten())
                          .str());
        }
      }
    });
  }
  return Group;
}

CheckResult isq::checkActionRefinement(const Action &A1, const Action &A2,
                                       const ContextUniverse &Universe) {
  // Intern the value-level contexts into a fresh arena. The carrier symbol
  // fixes the interning identity of each argument tuple; dedup classes are
  // unchanged, so obligation counts match the value-level evaluation.
  InternedContextUniverse Interned;
  Interned.Arena = std::make_shared<StateArena>();
  Interned.Items.reserve(Universe.size());
  Symbol Carrier = Symbol::get("<refine-args>");
  for (const ActionContext &Ctx : Universe)
    Interned.Items.push_back(
        {Interned.Arena->internStore(Ctx.Global),
         Interned.Arena->internPa(PendingAsync(Carrier, Ctx.Args)),
         Interned.Arena->internPaSet(Ctx.Omega)});
  return checkActionRefinement(A1, A2, Interned);
}

CheckResult
isq::checkProgramRefinement(const Program &P1, const Program &P2,
                            const std::vector<InitialCondition> &Inits,
                            const ExploreOptions &Opts) {
  CheckResult Result;
  // Symmetry: when P1 explores reduced but P2 does not (applyIS strips the
  // symmetry spec, so the sequentialization always runs unreduced), P1's
  // terminal stores are orbit representatives while P2's terminal set need
  // not be orbit-closed. Soundness then requires expanding every
  // representative back to its full orbit before the membership check —
  // which also makes the obligation count match the unreduced run exactly.
  // When both sides run reduced (or both unreduced), representatives
  // compare directly.
  const SymmetrySpec *Sym =
      Opts.Config.Symmetry ? P1.symmetry().get() : nullptr;
  bool Expand = Sym && !(Opts.Config.Symmetry && P2.symmetry());
  for (const InitialCondition &Init : Inits) {
    auto [Good2, Trans2] = summarize(P2, Init.Global, Init.MainArgs, Opts);
    Result.countObligation();
    if (!Good2)
      continue; // P2 fails from this initial store: both conditions vacuous
    auto [Good1, Trans1] = summarize(P1, Init.Global, Init.MainArgs, Opts);
    // (1) Good(P2) ⊆ Good(P1).
    if (!Good1) {
      Result.fail("P1 can fail where P2 cannot, from " + Init.Global.str());
      continue;
    }
    // (2) Good(P2) ∘ Trans(P1) ⊆ Trans(P2).
    std::unordered_set<Store> Allowed(Trans2.begin(), Trans2.end());
    for (const Store &Final : Trans1) {
      if (Expand) {
        for (const Store &Image : Sym->storeOrbit(Final)) {
          Result.countObligation();
          if (!Allowed.count(Image))
            Result.fail("terminal store of P1 unreachable in P2: " +
                        Image.str() + " from " + Init.Global.str());
        }
        continue;
      }
      Result.countObligation();
      if (!Allowed.count(Final))
        Result.fail("terminal store of P1 unreachable in P2: " +
                    Final.str() + " from " + Init.Global.str());
    }
  }
  return Result;
}
