//===- refine/Refinement.h - Refinement checking -----------------*- C++ -*-===//
///
/// \file
/// Refinement between actions (Definition 3.1) and between programs
/// (Definition 3.2). Action refinement is a universally quantified
/// condition over stores; we evaluate it over an explicit *context
/// universe* — the finite-instance analogue of the paper's SMT discharge
/// (see DESIGN.md). Program refinement compares Good/Trans summaries
/// computed by the explorer.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_REFINE_REFINEMENT_H
#define ISQ_REFINE_REFINEMENT_H

#include "engine/ActionCaches.h"
#include "engine/ObligationScheduler.h"
#include "explorer/Explorer.h"
#include "semantics/Action.h"
#include "semantics/Program.h"

#include <string>
#include <vector>

namespace isq {

namespace engine {
class ArenaFingerprints; // engine/ArenaFingerprints.h
}

/// Outcome of a universally quantified check. Collects up to MaxIssues
/// human-readable counterexamples and counts the obligations evaluated
/// (the analogue of the number of SMT queries).
class CheckResult {
public:
  bool ok() const { return NumFailures == 0; }
  size_t obligations() const { return NumObligations; }
  size_t failures() const { return NumFailures; }
  const std::vector<std::string> &issues() const { return Issues; }

  /// Records one evaluated obligation.
  void countObligation() { ++NumObligations; }
  /// Records \p N evaluated obligations at once (scheduler reconciliation).
  void addObligations(size_t N) { NumObligations += N; }
  /// Records a failed obligation with a diagnostic.
  void fail(const std::string &Message);
  /// Merges \p Other into this result.
  void merge(const CheckResult &Other);

  /// Renders "OK (n obligations)" or the list of issues.
  std::string str() const;

  /// Cap on retained diagnostics.
  static constexpr size_t MaxIssues = 8;

private:
  size_t NumObligations = 0;
  size_t NumFailures = 0;
  std::vector<std::string> Issues;
};

/// One point of the quantifier domain for action-level checks: a global
/// store, parameter values for the action under check, and the ambient
/// pending-async multiset visible to Ω-observing gates.
struct ActionContext {
  Store Global;
  std::vector<Value> Args;
  PaMultiset Omega;
};

/// A finite quantifier domain.
using ContextUniverse = std::vector<ActionContext>;

/// The interned form of one quantifier point: handles into a shared
/// arena. ArgsPa carries the argument tuple (its action symbol is
/// irrelevant to the check and only fixes the args' interning identity).
struct InternedActionContext {
  engine::StoreId Global;
  engine::PaId ArgsPa;
  engine::PaSetId Omega;
};

/// An interned quantifier domain over a shared arena.
struct InternedContextUniverse {
  std::shared_ptr<engine::StateArena> Arena;
  std::vector<InternedActionContext> Items;
};

/// Extracts contexts for action \p Name from explored configurations: one
/// context per PA to \p Name per configuration.
ContextUniverse collectContexts(const std::vector<Configuration> &Configs,
                                Symbol Name);

/// Interned form: extracts contexts for \p Name directly from an explored
/// state space, without materializing configurations.
InternedContextUniverse collectContexts(const engine::StateSpace &Space,
                                        Symbol Name);

/// Checks Definition 3.1, a1 ≼ a2, over \p Universe:
///  (1) ρ2 ⊆ ρ1 and (2) ρ2 ∘ τ1 ⊆ τ2.
CheckResult checkActionRefinement(const Action &A1, const Action &A2,
                                  const ContextUniverse &Universe);

/// Interned form: same obligations with (store, args) dedup and
/// transition-set membership as integer compares.
CheckResult checkActionRefinement(const Action &A1, const Action &A2,
                                  const InternedContextUniverse &Universe);

/// Obligation-scheduler form: submits the same obligations as sliced jobs
/// into \p Sched under \p Cond and returns the group handle; after
/// Sched.run(), Sched.result(group) is bit-identical to the serial
/// checkActionRefinement above for any thread count. \p A1, \p A2,
/// \p Universe and the caches must outlive the run. The caches may be
/// shared across groups — gates and transition relations are pure, so
/// sharing only changes who computes an entry, never any outcome.
///
/// When \p Fps is non-null the slices become verdict-cacheable: each job
/// gets a content-fingerprint KeyFn (over both action behaviors and every
/// context in the slice) and the dedup keys switch from interned handles
/// to content fingerprints so cached units from other runs reconcile
/// correctly. Requires A1.fp() and A2.fp() to be stamped; with a null
/// \p Fps the legacy handle keys are used and nothing is cacheable.
engine::ObligationScheduler::Group *
scheduleActionRefinement(engine::ObligationScheduler &Sched,
                         engine::ObCondition Cond, const Action &A1,
                         const Action &A2,
                         const InternedContextUniverse &Universe,
                         engine::InternedTransitionCache &Cache,
                         engine::GateCache &Gates,
                         engine::OmegaGateCache &OmegaGates,
                         engine::ArenaFingerprints *Fps = nullptr);

/// An initial condition for program-level checks: a global store plus
/// arguments for Main.
struct InitialCondition {
  Store Global;
  std::vector<Value> MainArgs;
};

/// Checks Definition 3.2, P1 ≼ P2, over the given initial conditions:
///  (1) Good(P2) ⊆ Good(P1) and (2) Good(P2) ∘ Trans(P1) ⊆ Trans(P2).
CheckResult checkProgramRefinement(const Program &P1, const Program &P2,
                                   const std::vector<InitialCondition> &Inits,
                                   const ExploreOptions &Opts =
                                       ExploreOptions());

} // namespace isq

#endif // ISQ_REFINE_REFINEMENT_H
