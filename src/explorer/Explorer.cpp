//===- explorer/Explorer.cpp - Explicit-state exploration --------------------===//

#include "explorer/Explorer.h"

#include "semantics/Symmetry.h"

#include <algorithm>
#include <iterator>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace isq;

namespace {

/// Canonical orders promised by the ExploreResult contract.
void sortResults(ExploreResult &R) {
  std::sort(R.TerminalStores.begin(), R.TerminalStores.end());
  std::sort(R.Deadlocks.begin(), R.Deadlocks.end());
}

/// Reconstructs the failing execution ending at \p NodeIdx + \p FailVia
/// from the graph's parent links (the engine-side mirror of Bfs::traceTo).
Execution traceFromLinks(engine::StateGraph &G,
                         const std::vector<Configuration> &Reachable,
                         uint32_t NodeIdx, engine::PaId FailVia) {
  const std::vector<engine::StateGraph::Link> &Links = G.links();
  std::vector<uint32_t> Chain;
  for (uint32_t I = NodeIdx; I != UINT32_MAX; I = Links[I].Parent)
    Chain.push_back(I);
  Execution E;
  E.Initial = Reachable[Chain.back()];
  for (size_t I = Chain.size() - 1; I > 0; --I) {
    uint32_t Node = Chain[I - 1];
    E.Steps.push_back({G.arena().pa(Links[Node].Via), Reachable[Node]});
  }
  E.Steps.push_back({G.arena().pa(FailVia), Configuration::failure()});
  return E;
}

/// Materializes an engine StateGraph into the value-level ExploreResult.
ExploreResult fromGraph(engine::StateGraph G, const ExploreOptions &Opts) {
  ExploreResult R;
  engine::StateArena &A = G.arena();
  R.Reachable.reserve(G.nodes().size());
  for (engine::ConfigId Cid : G.nodes())
    R.Reachable.push_back(A.configuration(Cid));
  R.FailureReachable = G.failureReachable();
  if (G.failureAt() && Opts.RecordParents)
    R.FailureTrace = traceFromLinks(G, R.Reachable, G.failureAt()->first,
                                    G.failureAt()->second);
  R.TerminalStores.reserve(G.terminalStores().size());
  for (engine::StoreId S : G.terminalStores())
    R.TerminalStores.push_back(A.store(S));
  R.Deadlocks.reserve(G.deadlockNodes().size());
  for (uint32_t Node : G.deadlockNodes())
    R.Deadlocks.push_back(R.Reachable[Node]);
  R.Engine = G.stats();
  R.Stats.NumConfigurations = R.Engine.NumConfigurations;
  R.Stats.NumTransitions = R.Engine.NumTransitions;
  R.Stats.Truncated = R.Engine.Truncated;
  sortResults(R);
  return R;
}

/// Internal BFS state of the legacy value-level exploration.
struct Bfs {
  const Program &P;
  const ExploreOptions &Opts;
  ExploreResult Result;

  // Configuration -> index into Result.Reachable.
  std::unordered_map<Configuration, size_t> Seen;
  // Parent index and executed PA per reachable configuration (index-aligned
  // with Result.Reachable); parent == SIZE_MAX for roots.
  std::vector<std::pair<size_t, PendingAsync>> Parents;
  std::unordered_set<Store> TerminalSeen;
  std::deque<size_t> Worklist;

  Bfs(const Program &P, const ExploreOptions &Opts) : P(P), Opts(Opts) {}

  /// Registers \p C if new; returns its index or SIZE_MAX when capped.
  size_t add(const Configuration &C, size_t Parent, const PendingAsync &Via) {
    auto It = Seen.find(C);
    if (It != Seen.end())
      return It->second;
    if (Result.Reachable.size() >= Opts.MaxConfigurations) {
      Result.Stats.Truncated = true;
      return SIZE_MAX;
    }
    size_t Index = Result.Reachable.size();
    Seen.emplace(C, Index);
    Result.Reachable.push_back(C);
    if (Opts.RecordParents)
      Parents.emplace_back(Parent, Via);
    Worklist.push_back(Index);
    if (C.isTerminating() && TerminalSeen.insert(C.global()).second)
      Result.TerminalStores.push_back(C.global());
    return Index;
  }

  /// Reconstructs the execution ending at reachable index \p Index,
  /// optionally appending a final failing step via \p FailVia.
  Execution traceTo(size_t Index, const PendingAsync *FailVia) {
    std::vector<size_t> Chain;
    for (size_t I = Index; I != SIZE_MAX; I = Parents[I].first)
      Chain.push_back(I);
    Execution E;
    E.Initial = Result.Reachable[Chain.back()];
    for (size_t I = Chain.size() - 1; I > 0; --I) {
      size_t Node = Chain[I - 1];
      E.Steps.push_back({Parents[Node].second, Result.Reachable[Node]});
    }
    if (FailVia)
      E.Steps.push_back({*FailVia, Configuration::failure()});
    return E;
  }

  void run() {
    while (!Worklist.empty()) {
      size_t Index = Worklist.front();
      Worklist.pop_front();
      // Copy: Result.Reachable may reallocate while expanding.
      Configuration C = Result.Reachable[Index];
      bool AnyMove = false;
      for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
        (void)Count;
        const Action &A = P.action(PA.Action);
        if (!A.evalGate(C.global(), PA.Args, C.pendingAsyncs())) {
          Result.Stats.NumTransitions++;
          AnyMove = true;
          if (!Result.FailureReachable) {
            Result.FailureReachable = true;
            if (Opts.RecordParents)
              Result.FailureTrace = traceTo(Index, &PA);
          }
          if (Opts.StopAtFirstFailure)
            return;
          continue;
        }
        PaMultiset Rest = C.pendingAsyncs();
        Rest.erase(PA);
        for (const Transition &T : A.transitions(C.global(), PA.Args)) {
          Result.Stats.NumTransitions++;
          AnyMove = true;
          PaMultiset Omega = Rest;
          for (const PendingAsync &New : T.Created)
            Omega.insert(New);
          add(Configuration(T.Global, std::move(Omega)), Index, PA);
        }
      }
      if (!AnyMove && !C.isTerminating())
        Result.Deadlocks.push_back(C);
    }
  }
};

} // namespace

ExploreResult isq::explore(const Program &P, const Configuration &Init,
                           const ExploreOptions &Opts) {
  return exploreAll(P, {Init}, Opts);
}

ExploreResult isq::exploreAll(const Program &P,
                              const std::vector<Configuration> &Inits,
                              const ExploreOptions &Opts) {
  engine::EngineOptions EO;
  EO.MaxConfigurations = Opts.MaxConfigurations;
  EO.StopAtFirstFailure = Opts.StopAtFirstFailure;
  EO.RecordParents = Opts.RecordParents;
  EO.Config = Opts.Config;
  return fromGraph(engine::exploreGraph(P, Inits, nullptr, EO), Opts);
}

ExploreResult isq::exploreAllLegacy(const Program &P,
                                    const std::vector<Configuration> &Inits,
                                    const ExploreOptions &Opts) {
  Bfs B(P, Opts);
  for (const Configuration &Init : Inits) {
    assert(!Init.isFailure() && "initial configuration cannot be failure");
    B.add(Init, SIZE_MAX, PendingAsync());
  }
  B.run();
  B.Result.Stats.NumConfigurations = B.Result.Reachable.size();
  sortResults(B.Result);
  return std::move(B.Result);
}

std::pair<bool, std::vector<Store>>
isq::summarize(const Program &P, const Store &Init,
               std::vector<Value> MainArgs, const ExploreOptions &Opts) {
  ExploreResult R =
      explore(P, initialConfiguration(Init, std::move(MainArgs)), Opts);
  // Definition 3.2's Trans set is a semantic object: when the exploration ran
  // on the symmetry quotient, expand each canonical terminal store back to its
  // full orbit. Orbits of distinct representatives are disjoint, so the
  // concatenation is exactly the unreduced terminal-store set.
  const std::shared_ptr<const SymmetrySpec> &Sym = P.symmetry();
  if (Opts.Config.Symmetry && Sym && Sym->numPermutations() > 1) {
    std::vector<Store> Expanded;
    for (const Store &S : R.TerminalStores) {
      std::vector<Store> Orbit = Sym->storeOrbit(S);
      Expanded.insert(Expanded.end(), std::make_move_iterator(Orbit.begin()),
                      std::make_move_iterator(Orbit.end()));
    }
    std::sort(Expanded.begin(), Expanded.end());
    R.TerminalStores = std::move(Expanded);
  }
  return {!R.FailureReachable, R.TerminalStores};
}
