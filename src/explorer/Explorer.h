//===- explorer/Explorer.h - Explicit-state exploration ----------*- C++ -*-===//
///
/// \file
/// Breadth-first exploration of a program's configuration graph. Computes
/// the reachable configurations, whether the failure configuration is
/// reachable (the complement of Good(P) for the given initial store), the
/// terminal stores (the Trans(P) image), deadlocks, and counterexample
/// traces. This is the finite-instance substitute for the paper's SMT
/// discharge (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_EXPLORER_EXPLORER_H
#define ISQ_EXPLORER_EXPLORER_H

#include "engine/EngineConfig.h"
#include "engine/StateGraph.h"
#include "explorer/Trace.h"
#include "semantics/Program.h"

#include <optional>
#include <vector>

namespace isq {

/// Knobs for explore().
struct ExploreOptions {
  /// Hard cap on distinct configurations; exploration reports truncation
  /// when hit.
  size_t MaxConfigurations = 2'000'000;
  /// Stop as soon as a failure is found (cheaper counterexamples).
  bool StopAtFirstFailure = false;
  /// Keep parent pointers for counterexample extraction.
  bool RecordParents = true;
  /// All engine knobs (threads, symmetry, work stealing, store shape).
  /// Results are bit-identical for every setting; see
  /// engine/EngineConfig.h.
  engine::EngineConfig Config;
};

/// Exploration statistics.
struct ExploreStats {
  size_t NumConfigurations = 0;
  size_t NumTransitions = 0;
  bool Truncated = false;
};

/// Result of explore().
struct ExploreResult {
  /// All distinct reachable non-failure configurations (BFS order).
  std::vector<Configuration> Reachable;
  /// Whether the failure configuration is reachable.
  bool FailureReachable = false;
  /// Distinct final stores of terminating executions (g' with Ω = ∅).
  std::vector<Store> TerminalStores;
  /// Reachable non-terminating configurations with no successor (every PA
  /// blocked).
  std::vector<Configuration> Deadlocks;
  /// A shortest failing execution, if failures are reachable and parents
  /// were recorded.
  std::optional<Execution> FailureTrace;
  ExploreStats Stats;
  /// Detailed engine observability (interning, caching, phase times).
  engine::EngineStats Engine;

  /// True iff the program can fail from the explored initial
  /// configuration: ¬Good.
  bool canFail() const { return FailureReachable; }
};

/// Explores all configurations reachable from \p Init under \p P.
/// Implemented on the hash-consed engine (engine/StateGraph.h); Reachable
/// is in deterministic BFS order, TerminalStores and Deadlocks are sorted
/// canonically.
ExploreResult explore(const Program &P, const Configuration &Init,
                      const ExploreOptions &Opts = ExploreOptions());

/// Explores from multiple initial configurations, merging results.
ExploreResult exploreAll(const Program &P,
                         const std::vector<Configuration> &Inits,
                         const ExploreOptions &Opts = ExploreOptions());

/// The pre-engine value-level BFS, kept as a differential-testing oracle
/// and benchmark baseline for the interned engine. Semantically identical
/// to exploreAll() (modulo NumTransitions under StopAtFirstFailure, where
/// the engine finishes counting the failing node's level).
ExploreResult exploreAllLegacy(const Program &P,
                               const std::vector<Configuration> &Inits,
                               const ExploreOptions &Opts = ExploreOptions());

/// Computes the pair (Good, Trans) of Definition 3.2 restricted to the
/// initialized configuration with global store \p Init and Main arguments
/// \p MainArgs: .first is "cannot fail", .second the set of terminal
/// stores.
std::pair<bool, std::vector<Store>>
summarize(const Program &P, const Store &Init,
          std::vector<Value> MainArgs = {},
          const ExploreOptions &Opts = ExploreOptions());

} // namespace isq

#endif // ISQ_EXPLORER_EXPLORER_H
