//===- explorer/Trace.h - Executions and traces ------------------*- C++ -*-===//
///
/// \file
/// Executions π = c0 → c1 → ... of §3, recorded with the pending async
/// scheduled at each step. Used for counterexample reporting and as the
/// input/output representation of the execution rewriter that implements
/// the soundness construction of Lemmas 4.2/4.3.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_EXPLORER_TRACE_H
#define ISQ_EXPLORER_TRACE_H

#include "semantics/Program.h"
#include "support/Random.h"

#include <optional>
#include <string>
#include <vector>

namespace isq {

/// One transition of an execution: which PA was scheduled and the resulting
/// configuration.
struct ExecStep {
  PendingAsync Executed;
  Configuration Successor;
};

/// A finite execution. Steps[i].Successor follows from the previous
/// configuration by executing Steps[i].Executed.
struct Execution {
  Configuration Initial;
  std::vector<ExecStep> Steps;

  const Configuration &finalConfiguration() const {
    return Steps.empty() ? Initial : Steps.back().Successor;
  }
  bool isFailing() const { return finalConfiguration().isFailure(); }
  bool isTerminating() const { return finalConfiguration().isTerminating(); }
  size_t length() const { return Steps.size(); }

  /// Checks that every step is justified by \p P's semantics.
  bool isValid(const Program &P) const;

  /// Renders the schedule, e.g. "Main; Broadcast(1); Collect(1)".
  std::string scheduleStr() const;
  /// Renders the full configuration sequence (verbose).
  std::string str() const;
};

/// Enumerates maximal executions (terminating, failing, or reaching
/// MaxDepth/deadlock) from \p Init by DFS, up to \p MaxExecutions.
std::vector<Execution> enumerateExecutions(const Program &P,
                                           const Configuration &Init,
                                           size_t MaxExecutions,
                                           size_t MaxDepth);

/// Samples one maximal execution with uniformly random scheduling and
/// branch choices. Returns std::nullopt if MaxDepth is exceeded.
std::optional<Execution> sampleExecution(const Program &P,
                                         const Configuration &Init, Rng &R,
                                         size_t MaxDepth);

} // namespace isq

#endif // ISQ_EXPLORER_TRACE_H
