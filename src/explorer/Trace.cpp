//===- explorer/Trace.cpp - Executions and traces ---------------------------===//

#include "explorer/Trace.h"

#include <functional>

using namespace isq;

bool Execution::isValid(const Program &P) const {
  Configuration Current = Initial;
  for (const ExecStep &Step : Steps) {
    if (Current.isFailure())
      return false; // nothing executes after failure
    if (!Current.pendingAsyncs().contains(Step.Executed))
      return false;
    std::vector<Configuration> Succs =
        stepPendingAsync(P, Current, Step.Executed);
    bool Found = false;
    for (const Configuration &S : Succs)
      if (S == Step.Successor) {
        Found = true;
        break;
      }
    if (!Found)
      return false;
    Current = Step.Successor;
  }
  return true;
}

std::string Execution::scheduleStr() const {
  std::string Out;
  for (size_t I = 0; I < Steps.size(); ++I) {
    if (I)
      Out += "; ";
    Out += Steps[I].Executed.str();
  }
  return Out;
}

std::string Execution::str() const {
  std::string Out = Initial.str() + "\n";
  for (const ExecStep &Step : Steps)
    Out += "  --[" + Step.Executed.str() + "]--> " + Step.Successor.str() +
           "\n";
  return Out;
}

std::vector<Execution> isq::enumerateExecutions(const Program &P,
                                                const Configuration &Init,
                                                size_t MaxExecutions,
                                                size_t MaxDepth) {
  std::vector<Execution> Result;
  Execution Current;
  Current.Initial = Init;

  // Explicit DFS over schedules.
  std::function<void(const Configuration &)> Go =
      [&](const Configuration &C) {
        if (Result.size() >= MaxExecutions)
          return;
        if (C.isFailure() || C.isTerminating() ||
            Current.Steps.size() >= MaxDepth) {
          Result.push_back(Current);
          return;
        }
        bool AnyStep = false;
        for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
          (void)Count;
          std::vector<Configuration> Succs = stepPendingAsync(P, C, PA);
          for (const Configuration &S : Succs) {
            AnyStep = true;
            Current.Steps.push_back({PA, S});
            Go(S);
            Current.Steps.pop_back();
            if (Result.size() >= MaxExecutions)
              return;
          }
        }
        // Deadlock: every PA blocked. Record as a maximal execution.
        if (!AnyStep)
          Result.push_back(Current);
      };
  Go(Init);
  return Result;
}

std::optional<Execution> isq::sampleExecution(const Program &P,
                                              const Configuration &Init,
                                              Rng &R, size_t MaxDepth) {
  Execution E;
  E.Initial = Init;
  Configuration Current = Init;
  while (!Current.isFailure() && !Current.isTerminating()) {
    if (E.Steps.size() >= MaxDepth)
      return std::nullopt;
    // Collect all (PA, successor) moves.
    std::vector<std::pair<PendingAsync, Configuration>> Moves;
    for (const auto &[PA, Count] : Current.pendingAsyncs().entries()) {
      (void)Count;
      for (Configuration &S : stepPendingAsync(P, Current, PA))
        Moves.emplace_back(PA, std::move(S));
    }
    if (Moves.empty())
      return std::nullopt; // deadlock: not a terminating execution
    auto &[PA, Next] = Moves[R.below(Moves.size())];
    E.Steps.push_back({PA, Next});
    Current = Next;
  }
  return E;
}
