//===- movers/MoverCheck.cpp - Mover-type engine ------------------------------===//

#include "movers/MoverCheck.h"

#include "engine/ActionCaches.h"
#include "engine/ArenaFingerprints.h"

#include <algorithm>
#include <unordered_set>

using namespace isq;
using namespace isq::engine;

const char *isq::moverTypeName(MoverType M) {
  switch (M) {
  case MoverType::Both:
    return "both";
  case MoverType::Left:
    return "left";
  case MoverType::Right:
    return "right";
  case MoverType::None:
    return "none";
  }
  return "<invalid>";
}

namespace {

/// Looks for an interned transition in \p Set with successor store
/// \p Global and created multiset \p Created — two integer compares per
/// element.
bool hasTransition(const std::vector<InternedTransition> &Set, StoreId Global,
                   PaSetId Created) {
  for (const InternedTransition &T : Set)
    if (T.Global == Global && T.CreatedSet == Created)
      return true;
  return false;
}

std::string describePair(StateArena &Arena, ConfigId Cid, PaId Subject,
                         PaId Other) {
  return "subject=" + Arena.pa(Subject).str() +
         " other=" + Arena.pa(Other).str() + " in " +
         Arena.configuration(Cid).str();
}

/// Multiplicity of \p Id in sorted \p Entries (which must contain it).
uint64_t countOf(const PaCountVec &Entries, PaId Id) {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Id,
      [](const std::pair<PaId, uint64_t> &E, PaId I) { return E.first < I; });
  return It->second;
}

/// Invokes \p Body for every ordered pair of distinct PA occurrences
/// (SubjectPa, OtherPa) in the multiset where SubjectPa has action
/// \p Subject. Pairs are enumerated in canonical value order — the order
/// is intrinsic to the PAs, so diagnostics are deterministic even when
/// the universe was interned by concurrent workers.
template <typename Pred, typename Fn>
void forEachPair(StateArena &Arena, PaSetId OmegaId, Symbol Subject,
                 Pred SubjectEnabled, Fn Body) {
  const PaCountVec &Entries = Arena.paVec(OmegaId);
  const std::vector<PaId> &Order = Arena.paOrder(OmegaId);
  for (PaId SubjectPa : Order) {
    if (Arena.pa(SubjectPa).Action != Subject)
      continue;
    // Every pair condition requires the subject's gate, so a disabled
    // subject occurrence contributes no obligations; skipping it here
    // skips the whole partner enumeration.
    if (!SubjectEnabled(SubjectPa))
      continue;
    uint64_t SubjectCount = countOf(Entries, SubjectPa);
    for (PaId OtherPa : Order) {
      if (OtherPa == SubjectPa && SubjectCount < 2)
        continue; // the same single occurrence cannot pair with itself
      Body(SubjectPa, OtherPa);
    }
  }
}

template <typename Fn>
void forEachPair(StateArena &Arena, PaSetId OmegaId, Symbol Subject,
                 Fn Body) {
  forEachPair(Arena, OmegaId, Subject, [](PaId) { return true; }, Body);
}

/// Dedup key for obligations that do not depend on Ω: the interned store
/// plus the participating interned PAs. Three machine words.
struct Key3 {
  StoreId G;
  PaId A;
  PaId B;

  bool operator==(const Key3 &O) const {
    return G == O.G && A == O.A && B == O.B;
  }
};
struct Key3Hash {
  size_t operator()(const Key3 &K) const {
    size_t Seed = K.G;
    hashCombine(Seed, K.A);
    hashCombine(Seed, K.B);
    return Seed;
  }
};

/// Shared engine for both directions, evaluated over the interned
/// universe. Direction == true checks left-mover commutation
/// (other-then-subject reorders to subject-then-other); false checks the
/// mirrored right-mover commutation.
CheckResult checkMover(Symbol Subject, const Action &SubjectAction,
                       const Program &P, const StateSpace &Universe,
                       bool LeftDirection, bool RequireNonBlocking) {
  CheckResult Result;
  StateArena &Arena = *Universe.Arena;
  InternedTransitionCache Cache(Arena);
  GateCache Gates(Arena);
  // Commutation and non-blocking do not read Ω: check each distinct
  // (store, subject, other) point once across the universe.
  std::unordered_set<Key3, Key3Hash> CommuteDone;
  std::unordered_set<Key3, Key3Hash> NonBlockDone;
  std::unordered_set<Key3, Key3Hash> ForwardDone;
  std::unordered_set<Key3, Key3Hash> BackwardDone;

  // Evaluates a gate at an interned point; Ω-independent gates hit the
  // gate cache.
  auto gateAt = [&](const Action &A, StoreId G, PaId Pa,
                    const PaMultiset &Omega) {
    return A.gateReadsOmega()
               ? A.evalGate(Arena.store(G), Arena.pa(Pa).Args, Omega)
               : Gates.get(A, G, Pa, Omega);
  };
  // Interns Ω − Executed ⊎ Created and returns its value form (for gates
  // that observe Ω after a step).
  auto omegaAfter = [&](const PaCountVec &Entries, PaId Executed,
                        const InternedTransition &T) -> const PaMultiset & {
    PaCountVec Rest(Entries);
    paCountVecErase(Rest, Executed);
    return Arena.paSet(Arena.internPaVec(paCountVecUnion(Rest, T.Created)));
  };

  for (ConfigId Cid : Universe.Configs) {
    auto [G, OmegaId] = Arena.config(Cid);
    const PaCountVec &Entries = Arena.paVec(OmegaId);
    const PaMultiset &Omega = Arena.paSet(OmegaId);

    // (4) Non-blocking, checked once per subject occurrence.
    if (RequireNonBlocking) {
      for (PaId SubjectPa : Arena.paOrder(OmegaId)) {
        if (Arena.pa(SubjectPa).Action != Subject)
          continue;
        if (!gateAt(SubjectAction, G, SubjectPa, Omega))
          continue;
        if (!NonBlockDone.insert({G, SubjectPa, SubjectPa}).second)
          continue;
        Result.countObligation();
        if (Cache.get(SubjectAction, G, SubjectPa).empty())
          Result.fail("non-blocking violated: " + Arena.pa(SubjectPa).str() +
                      " enabled but has no transition in " +
                      Arena.configuration(Cid).str());
      }
    }

    forEachPair(Arena, OmegaId, Subject, [&](PaId SubjectPa, PaId OtherPa) {
      const Action &Other = P.action(Arena.pa(OtherPa).Action);
      bool SubjectGate = gateAt(SubjectAction, G, SubjectPa, Omega);
      bool OtherGate = gateAt(Other, G, OtherPa, Omega);

      // (1) Gate of the subject is forward-preserved by the other action.
      // When the subject's gate does not read Ω, the obligation only
      // depends on the store point and is deduplicated across Ω's.
      if (SubjectGate && OtherGate &&
          (SubjectAction.gateReadsOmega() ||
           ForwardDone.insert({G, SubjectPa, OtherPa}).second)) {
        for (const InternedTransition &TO : Cache.get(Other, G, OtherPa)) {
          Result.countObligation();
          bool Preserved =
              SubjectAction.gateReadsOmega()
                  ? gateAt(SubjectAction, TO.Global, SubjectPa,
                           omegaAfter(Entries, OtherPa, TO))
                  : gateAt(SubjectAction, TO.Global, SubjectPa, Omega);
          if (!Preserved)
            Result.fail("gate not forward-preserved: " +
                        describePair(Arena, Cid, SubjectPa, OtherPa));
        }
      }

      // (2) Gate of the other action is backward-preserved by the subject.
      if (SubjectGate &&
          (Other.gateReadsOmega() ||
           BackwardDone.insert({G, SubjectPa, OtherPa}).second)) {
        for (const InternedTransition &TS :
             Cache.get(SubjectAction, G, SubjectPa)) {
          Result.countObligation();
          bool GateAfter =
              Other.gateReadsOmega()
                  ? gateAt(Other, TS.Global, OtherPa,
                           omegaAfter(Entries, SubjectPa, TS))
                  : gateAt(Other, TS.Global, OtherPa, Omega);
          if (GateAfter && !OtherGate)
            Result.fail("gate not backward-preserved: " +
                        describePair(Arena, Cid, SubjectPa, OtherPa));
        }
      }

      // (3) Commutation (Ω-independent: deduplicated across Ω's).
      if (SubjectGate && OtherGate &&
          CommuteDone.insert({G, SubjectPa, OtherPa}).second) {
        if (LeftDirection) {
          // other;subject must be reorderable to subject;other.
          for (const InternedTransition &TO : Cache.get(Other, G, OtherPa)) {
            for (const InternedTransition &TS :
                 Cache.get(SubjectAction, TO.Global, SubjectPa)) {
              Result.countObligation();
              bool Found = false;
              for (const InternedTransition &TS2 :
                   Cache.get(SubjectAction, G, SubjectPa)) {
                if (TS2.CreatedSet != TS.CreatedSet)
                  continue;
                if (hasTransition(Cache.get(Other, TS2.Global, OtherPa),
                                  TS.Global, TO.CreatedSet)) {
                  Found = true;
                  break;
                }
              }
              if (!Found)
                Result.fail("does not commute left: " +
                            describePair(Arena, Cid, SubjectPa, OtherPa));
            }
          }
        } else {
          // subject;other must be reorderable to other;subject.
          for (const InternedTransition &TS :
               Cache.get(SubjectAction, G, SubjectPa)) {
            for (const InternedTransition &TO :
                 Cache.get(Other, TS.Global, OtherPa)) {
              Result.countObligation();
              bool Found = false;
              for (const InternedTransition &TO2 :
                   Cache.get(Other, G, OtherPa)) {
                if (TO2.CreatedSet != TO.CreatedSet)
                  continue;
                if (hasTransition(
                        Cache.get(SubjectAction, TO2.Global, SubjectPa),
                        TO.Global, TS.CreatedSet)) {
                  Found = true;
                  break;
                }
              }
              if (!Found)
                Result.fail("does not commute right: " +
                            describePair(Arena, Cid, SubjectPa, OtherPa));
            }
          }
        }
      }
    });
  }
  return Result;
}

/// Dedup namespaces of the mover obligation units. Keys mirror the serial
/// Key3 sets: (tag, StoreId, SubjectPa, OtherPa).
constexpr uint32_t TagNonBlock = 1;
constexpr uint32_t TagForward = 2;
constexpr uint32_t TagBackward = 3;
constexpr uint32_t TagCommute = 4;

/// Obligation-scheduler form of checkMover. Deliberately a separate copy
/// of the serial loop (not a shared template): the serial path survives
/// as an independent differential oracle behind --no-parallel-check, so
/// the two implementations must not share obligation-emission code. Each
/// job processes a contiguous slice of the universe with job-local dedup
/// sets; the reconciliation replays units in order so the surviving unit
/// per key is the serial loop's (see engine/ObligationScheduler.h).
ObligationScheduler::Group *
scheduleMover(ObligationScheduler &Sched, ObCondition Cond, Symbol Subject,
              const Action &SubjectAction, const Program &P,
              const StateSpace &Universe, bool LeftDirection,
              bool RequireNonBlocking, InternedTransitionCache &Cache,
              GateCache &Gates, OmegaGateCache &OmegaGates,
              SuccessorOmegaCache &SuccOmega, ArenaFingerprints *Fps) {
  assert((!Fps || !SubjectAction.fp().isZero()) &&
         "cacheable mover check requires a stamped subject fingerprint");
  ObligationScheduler::Group *Group = Sched.group(Cond);
  // Slice size is thread-count independent so unit/dedup statistics are
  // identical for any --threads value, not just the verdicts. Mover
  // obligations are cheap individually; a large slice keeps scheduler
  // dispatch off the profile on big universes (Paxos/3+).
  constexpr size_t ChunkSize = 2048;
  // Jobs run after this function returns: capture the referents as
  // pointers by value, never the reference parameters themselves.
  const Action *SubjectActionP = &SubjectAction;
  const Program *ProgP = &P;
  const StateSpace *UniverseP = &Universe;
  InternedTransitionCache *CacheP = &Cache;
  GateCache *GatesP = &Gates;
  OmegaGateCache *OmegaGatesP = &OmegaGates;
  SuccessorOmegaCache *SuccOmegaP = &SuccOmega;
  size_t N = Universe.Configs.size();
  for (size_t Begin = 0; Begin < N; Begin += ChunkSize) {
    size_t End = std::min(N, Begin + ChunkSize);
    // With a fingerprint memo the slice is cacheable. The key covers the
    // check parameters, the subject behavior, and every configuration in
    // the slice; configurations holding at least one subject PA
    // additionally absorb the concrete behavior of every co-pending
    // action (the pair enumeration executes those behaviors), while
    // subject-free configurations contribute no pairs and so stay
    // insensitive to partner-action edits — the precision that keeps a
    // one-action edit from invalidating every mover slice.
    std::function<Fingerprint()> KeyFn;
    if (Fps) {
      Fingerprint SubjectFp = SubjectAction.fp();
      KeyFn = [=]() {
        StateArena &Arena = *UniverseP->Arena;
        FpHasher H("mover-slice/v1");
        H.boolean(LeftDirection).boolean(RequireNonBlocking);
        H.str(Subject.str()).fp(SubjectFp).u64(End - Begin);
        for (size_t CI = Begin; CI < End; ++CI) {
          ConfigId Cid = UniverseP->Configs[CI];
          H.fp(Fps->config(Cid));
          PaSetId OmegaId = Arena.config(Cid).second;
          const std::vector<PaId> &Order = Arena.paOrder(OmegaId);
          bool HasSubject = false;
          for (PaId Pa : Order)
            if (Arena.pa(Pa).Action == Subject) {
              HasSubject = true;
              break;
            }
          if (!HasSubject)
            continue;
          // Canonical PA order is intrinsic to the PAs' values (see
          // forEachPair), so sequential absorption is stable.
          for (PaId Pa : Order)
            H.fp(ProgP->action(Arena.pa(Pa).Action).fp());
        }
        return H.finish();
      };
    }
    Sched.add(Group, std::move(KeyFn), [=](ObSink &Sink) {
      const Action &SubjectAction = *SubjectActionP;
      const Program &P = *ProgP;
      const StateSpace &Universe = *UniverseP;
      InternedTransitionCache &Cache = *CacheP;
      GateCache &Gates = *GatesP;
      OmegaGateCache &OmegaGates = *OmegaGatesP;
      SuccessorOmegaCache &SuccOmega = *SuccOmegaP;
      StateArena &Arena = *Universe.Arena;
      std::unordered_set<Key3, Key3Hash> CommuteDone;
      std::unordered_set<Key3, Key3Hash> NonBlockDone;
      std::unordered_set<Key3, Key3Hash> ForwardDone;
      std::unordered_set<Key3, Key3Hash> BackwardDone;

      // Reconciliation dedup keys: content fingerprints under the verdict
      // cache (cross-run stable), interned handles otherwise (see ObKey).
      // The job-local Done sets above always use handles — they never
      // leave this job.
      auto obKey = [=](uint32_t Tag, StoreId G, PaId A, PaId B) {
        return Fps ? ObKey{Tag, fp64(Fps->store(G)), fp64(Fps->pa(A)),
                           fp64(Fps->pa(B))}
                   : ObKey{Tag, G, A, B};
      };

      // Gate results are pure functions of the interned point, so every
      // evaluation goes through the shared caches: Ω-observing gates key
      // on (store, args, Ω), Ω-independent ones on (store, args) alone.
      auto gateAt = [&](const Action &A, StoreId G, PaId Pa, PaSetId Omega) {
        return A.gateReadsOmega()
                   ? OmegaGates.get(A, G, Pa, Omega)
                   : Gates.get(A, G, Pa, Arena.paSet(Omega));
      };
      // Per-configuration memo. Pre-state gate verdicts, transition
      // lists, and successor-Ω ids (Ω − Pa ⊎ Created) are functions of
      // the PA alone once (g, Ω) are fixed, but the pair enumeration
      // below would otherwise consult the sharded shared caches once per
      // *pair* — the dominant cost on large universes. Post-transition
      // lookups key on successor stores and still go to the shared
      // caches. Configurations hold few distinct PAs, so linear scan.
      // Keyed by (action, PA): a subject-action PA is consulted under the
      // *checked* subject action when it plays the subject role but under
      // the program's action when it plays the other role, and the two
      // need not agree (the subject may be an abstraction).
      struct PaLocal {
        const Action *A;
        PaId Pa;
        bool Gate;
        const std::vector<InternedTransition> *Trans;
        bool AfterReady;
        std::vector<PaSetId> After; // aligned with *Trans
      };
      std::vector<PaLocal> Locals;

      for (size_t CI = Begin; CI < End; ++CI) {
        ConfigId Cid = Universe.Configs[CI];
        auto [G, OmegaId] = Arena.config(Cid);
        Locals.clear();
        // Each PA contributes at most two entries (its own action as the
        // other role, the checked action as the subject role); reserving
        // keeps references into Locals stable across inserts.
        Locals.reserve(2 * Arena.paOrder(OmegaId).size());
        auto localAt = [&](const Action &A, PaId Pa) -> PaLocal & {
          for (PaLocal &L : Locals)
            if (L.Pa == Pa && L.A == &A)
              return L;
          Locals.push_back(
              {&A, Pa, gateAt(A, G, Pa, OmegaId), nullptr, false, {}});
          return Locals.back();
        };
        // The accessors below take the memo entry itself: the pair body
        // resolves each side's entry once and reuses the reference, so
        // the linear scan runs twice per pair instead of per access.
        auto transOf = [&](PaLocal &L) -> const std::vector<InternedTransition> & {
          if (!L.Trans)
            L.Trans = &Cache.get(*L.A, G, L.Pa);
          return *L.Trans;
        };
        // Interned Ω − Pa ⊎ T.Created per transition (for gates that
        // observe Ω after a step), aligned with transOf(L).
        auto afterOf = [&](PaLocal &L) -> const std::vector<PaSetId> & {
          const std::vector<InternedTransition> &Ts = transOf(L);
          if (!L.AfterReady) {
            L.AfterReady = true;
            L.After.reserve(Ts.size());
            for (const InternedTransition &T : Ts)
              L.After.push_back(SuccOmega.get(OmegaId, L.Pa, T));
          }
          return L.After;
        };

        // (4) Non-blocking, checked once per subject occurrence.
        if (RequireNonBlocking) {
          for (PaId SubjectPa : Arena.paOrder(OmegaId)) {
            if (Arena.pa(SubjectPa).Action != Subject)
              continue;
            PaLocal &SubjL = localAt(SubjectAction, SubjectPa);
            if (!SubjL.Gate)
              continue;
            if (!NonBlockDone.insert({G, SubjectPa, SubjectPa}).second)
              continue;
            Sink.begin(obKey(TagNonBlock, G, SubjectPa, SubjectPa));
            Sink.countObligation();
            if (transOf(SubjL).empty())
              Sink.fail("non-blocking violated: " + Arena.pa(SubjectPa).str() +
                        " enabled but has no transition in " +
                        Arena.configuration(Cid).str());
          }
        }

        forEachPair(
            Arena, OmegaId, Subject,
            [&](PaId SubjectPa) {
              return localAt(SubjectAction, SubjectPa).Gate;
            },
            [&](PaId SubjectPa, PaId OtherPa) {
          const Action &Other = P.action(Arena.pa(OtherPa).Action);
          PaLocal &OtherL = localAt(Other, OtherPa);
          PaLocal &SubjL = localAt(SubjectAction, SubjectPa);
          bool OtherGate = OtherL.Gate;

          // (1) Gate of the subject is forward-preserved by the other
          // action; Ω-observing subject gates skip dedup (keyless unit).
          // The subject's own gate holds by construction (see the filter
          // above).
          if (OtherGate &&
              (SubjectAction.gateReadsOmega() ||
               ForwardDone.insert({G, SubjectPa, OtherPa}).second)) {
            if (SubjectAction.gateReadsOmega())
              Sink.begin();
            else
              Sink.begin(obKey(TagForward, G, SubjectPa, OtherPa));
            const std::vector<InternedTransition> &TOs = transOf(OtherL);
            const std::vector<PaSetId> *AfterO =
                SubjectAction.gateReadsOmega() ? &afterOf(OtherL) : nullptr;
            for (size_t TI = 0; TI < TOs.size(); ++TI) {
              const InternedTransition &TO = TOs[TI];
              Sink.countObligation();
              bool Preserved =
                  AfterO ? gateAt(SubjectAction, TO.Global, SubjectPa,
                                  (*AfterO)[TI])
                         : gateAt(SubjectAction, TO.Global, SubjectPa,
                                  OmegaId);
              if (!Preserved)
                Sink.fail("gate not forward-preserved: " +
                          describePair(Arena, Cid, SubjectPa, OtherPa));
            }
          }

          // (2) Gate of the other action is backward-preserved by the
          // subject.
          if (Other.gateReadsOmega() ||
              BackwardDone.insert({G, SubjectPa, OtherPa}).second) {
            if (Other.gateReadsOmega())
              Sink.begin();
            else
              Sink.begin(obKey(TagBackward, G, SubjectPa, OtherPa));
            const std::vector<InternedTransition> &TSs = transOf(SubjL);
            const std::vector<PaSetId> *AfterS =
                Other.gateReadsOmega() ? &afterOf(SubjL) : nullptr;
            for (size_t TI = 0; TI < TSs.size(); ++TI) {
              const InternedTransition &TS = TSs[TI];
              Sink.countObligation();
              bool GateAfter =
                  AfterS ? gateAt(Other, TS.Global, OtherPa, (*AfterS)[TI])
                         : gateAt(Other, TS.Global, OtherPa, OmegaId);
              if (GateAfter && !OtherGate)
                Sink.fail("gate not backward-preserved: " +
                          describePair(Arena, Cid, SubjectPa, OtherPa));
            }
          }

          // (3) Commutation (Ω-independent: deduplicated across Ω's).
          if (OtherGate && CommuteDone.insert({G, SubjectPa, OtherPa}).second) {
            Sink.begin(obKey(TagCommute, G, SubjectPa, OtherPa));
            if (LeftDirection) {
              // other;subject must be reorderable to subject;other.
              for (const InternedTransition &TO : transOf(OtherL)) {
                for (const InternedTransition &TS :
                     Cache.get(SubjectAction, TO.Global, SubjectPa)) {
                  Sink.countObligation();
                  bool Found = false;
                  for (const InternedTransition &TS2 : transOf(SubjL)) {
                    if (TS2.CreatedSet != TS.CreatedSet)
                      continue;
                    if (hasTransition(Cache.get(Other, TS2.Global, OtherPa),
                                      TS.Global, TO.CreatedSet)) {
                      Found = true;
                      break;
                    }
                  }
                  if (!Found)
                    Sink.fail("does not commute left: " +
                              describePair(Arena, Cid, SubjectPa, OtherPa));
                }
              }
            } else {
              // subject;other must be reorderable to other;subject.
              for (const InternedTransition &TS : transOf(SubjL)) {
                for (const InternedTransition &TO :
                     Cache.get(Other, TS.Global, OtherPa)) {
                  Sink.countObligation();
                  bool Found = false;
                  for (const InternedTransition &TO2 : transOf(OtherL)) {
                    if (TO2.CreatedSet != TO.CreatedSet)
                      continue;
                    if (hasTransition(
                            Cache.get(SubjectAction, TO2.Global, SubjectPa),
                            TO.Global, TS.CreatedSet)) {
                      Found = true;
                      break;
                    }
                  }
                  if (!Found)
                    Sink.fail("does not commute right: " +
                              describePair(Arena, Cid, SubjectPa, OtherPa));
                }
              }
            }
          }
        });
      }
    });
  }
  return Group;
}

/// Interns a value-level universe into a fresh arena, preserving order
/// and multiplicity (failure configurations are skipped, as before).
StateSpace internUniverse(const std::vector<Configuration> &Universe) {
  StateSpace S;
  S.Arena = std::make_shared<StateArena>();
  S.Configs.reserve(Universe.size());
  for (const Configuration &C : Universe)
    if (!C.isFailure())
      S.Configs.push_back(S.Arena->internConfig(C));
  return S;
}

} // namespace

CheckResult isq::checkLeftMover(Symbol Subject, const Action &LAction,
                                const Program &P,
                                const StateSpace &Universe) {
  return checkMover(Subject, LAction, P, Universe, /*LeftDirection=*/true,
                    /*RequireNonBlocking=*/true);
}

CheckResult isq::checkLeftMover(Symbol Subject, const Action &LAction,
                                const Program &P,
                                const std::vector<Configuration> &Universe) {
  return checkLeftMover(Subject, LAction, P, internUniverse(Universe));
}

CheckResult isq::checkRightMover(Symbol Subject, const Action &RAction,
                                 const Program &P,
                                 const StateSpace &Universe) {
  return checkMover(Subject, RAction, P, Universe, /*LeftDirection=*/false,
                    /*RequireNonBlocking=*/false);
}

CheckResult isq::checkRightMover(Symbol Subject, const Action &RAction,
                                 const Program &P,
                                 const std::vector<Configuration> &Universe) {
  return checkRightMover(Subject, RAction, P, internUniverse(Universe));
}

ObligationScheduler::Group *
isq::scheduleLeftMover(ObligationScheduler &Sched, ObCondition Cond,
                       Symbol Subject, const Action &LAction, const Program &P,
                       const StateSpace &Universe,
                       InternedTransitionCache &Cache, GateCache &Gates,
                       OmegaGateCache &OmegaGates,
                       SuccessorOmegaCache &SuccOmega, ArenaFingerprints *Fps) {
  return scheduleMover(Sched, Cond, Subject, LAction, P, Universe,
                       /*LeftDirection=*/true, /*RequireNonBlocking=*/true,
                       Cache, Gates, OmegaGates, SuccOmega, Fps);
}

ObligationScheduler::Group *
isq::scheduleRightMover(ObligationScheduler &Sched, ObCondition Cond,
                        Symbol Subject, const Action &RAction, const Program &P,
                        const StateSpace &Universe,
                        InternedTransitionCache &Cache, GateCache &Gates,
                        OmegaGateCache &OmegaGates,
                        SuccessorOmegaCache &SuccOmega, ArenaFingerprints *Fps) {
  return scheduleMover(Sched, Cond, Subject, RAction, P, Universe,
                       /*LeftDirection=*/false, /*RequireNonBlocking=*/false,
                       Cache, Gates, OmegaGates, SuccOmega, Fps);
}

MoverType isq::classifyMover(Symbol Subject, const Program &P,
                             const StateSpace &Universe) {
  const Action &A = P.action(Subject);
  bool Left = checkLeftMover(Subject, A, P, Universe).ok();
  bool Right = checkRightMover(Subject, A, P, Universe).ok();
  if (Left && Right)
    return MoverType::Both;
  if (Left)
    return MoverType::Left;
  if (Right)
    return MoverType::Right;
  return MoverType::None;
}

MoverType isq::classifyMover(Symbol Subject, const Program &P,
                             const std::vector<Configuration> &Universe) {
  return classifyMover(Subject, P, internUniverse(Universe));
}
