//===- movers/MoverCheck.cpp - Mover-type engine ------------------------------===//

#include "movers/MoverCheck.h"

#include "semantics/ActionCache.h"

#include <unordered_set>

using namespace isq;

const char *isq::moverTypeName(MoverType M) {
  switch (M) {
  case MoverType::Both:
    return "both";
  case MoverType::Left:
    return "left";
  case MoverType::Right:
    return "right";
  case MoverType::None:
    return "none";
  }
  return "<invalid>";
}

namespace {

/// Looks for a transition in \p Set with global store \p Global and created
/// multiset \p Created.
bool hasTransition(const std::vector<Transition> &Set, const Store &Global,
                   const PaMultiset &Created) {
  for (const Transition &T : Set)
    if (T.Global == Global && T.createdMultiset() == Created)
      return true;
  return false;
}

std::string describePair(const Configuration &C, const PendingAsync &Subject,
                         const PendingAsync &Other) {
  return "subject=" + Subject.str() + " other=" + Other.str() + " in " +
         C.str();
}

/// Invokes \p Body for every ordered pair of distinct PA occurrences
/// (SubjectPa, OtherPa) in \p C where SubjectPa has action \p Subject.
template <typename Fn>
void forEachPair(const Configuration &C, Symbol Subject, Fn Body) {
  const PaMultiset &Omega = C.pendingAsyncs();
  for (const auto &[SubjectPa, SubjectCount] : Omega.entries()) {
    if (SubjectPa.Action != Subject)
      continue;
    for (const auto &[OtherPa, OtherCount] : Omega.entries()) {
      (void)OtherCount;
      if (OtherPa == SubjectPa && SubjectCount < 2)
        continue; // the same single occurrence cannot pair with itself
      Body(SubjectPa, OtherPa);
    }
  }
}

/// Dedup key for obligations that do not depend on Ω: the store plus the
/// participating PA instances.
struct StorePaKey {
  Store G;
  PendingAsync A;
  PendingAsync B;

  bool operator==(const StorePaKey &O) const {
    return G == O.G && A == O.A && B == O.B;
  }
};
struct StorePaKeyHash {
  size_t operator()(const StorePaKey &K) const {
    size_t Seed = K.G.hash();
    hashCombine(Seed, K.A.hash());
    hashCombine(Seed, K.B.hash());
    return Seed;
  }
};

/// Shared engine for both directions. Direction == true checks left-mover
/// commutation (other-then-subject reorders to subject-then-other);
/// false checks the mirrored right-mover commutation.
CheckResult checkMover(Symbol Subject, const Action &SubjectAction,
                       const Program &P,
                       const std::vector<Configuration> &Universe,
                       bool LeftDirection, bool RequireNonBlocking) {
  CheckResult Result;
  TransitionCache Cache;
  // Commutation and non-blocking do not read Ω: check each distinct
  // (store, subject, other) point once across the universe.
  std::unordered_set<StorePaKey, StorePaKeyHash> CommuteDone;
  std::unordered_set<StorePaKey, StorePaKeyHash> NonBlockDone;
  std::unordered_set<StorePaKey, StorePaKeyHash> ForwardDone;
  std::unordered_set<StorePaKey, StorePaKeyHash> BackwardDone;
  for (const Configuration &C : Universe) {
    if (C.isFailure())
      continue;
    const Store &G = C.global();
    const PaMultiset &Omega = C.pendingAsyncs();

    // (4) Non-blocking, checked once per subject occurrence.
    if (RequireNonBlocking) {
      for (const auto &[SubjectPa, Count] : Omega.entries()) {
        (void)Count;
        if (SubjectPa.Action != Subject)
          continue;
        if (!SubjectAction.evalGate(G, SubjectPa.Args, Omega))
          continue;
        if (!NonBlockDone.insert({G, SubjectPa, SubjectPa}).second)
          continue;
        Result.countObligation();
        if (Cache.get(SubjectAction, G, SubjectPa.Args).empty())
          Result.fail("non-blocking violated: " + SubjectPa.str() +
                      " enabled but has no transition in " + C.str());
      }
    }

    forEachPair(C, Subject, [&](const PendingAsync &SubjectPa,
                                const PendingAsync &OtherPa) {
      const Action &Other = P.action(OtherPa.Action);
      bool SubjectGate = SubjectAction.evalGate(G, SubjectPa.Args, Omega);
      bool OtherGate = Other.evalGate(G, OtherPa.Args, Omega);

      // (1) Gate of the subject is forward-preserved by the other action.
      // When the subject's gate does not read Ω, the obligation only
      // depends on the store point and is deduplicated across Ω's.
      if (SubjectGate && OtherGate &&
          (SubjectAction.gateReadsOmega() ||
           ForwardDone.insert({G, SubjectPa, OtherPa}).second)) {
        for (const Transition &TO : Cache.get(Other, G, OtherPa.Args)) {
          Result.countObligation();
          bool Preserved;
          if (SubjectAction.gateReadsOmega()) {
            PaMultiset OmegaAfter = Omega;
            OmegaAfter.erase(OtherPa);
            for (const PendingAsync &New : TO.Created)
              OmegaAfter.insert(New);
            Preserved =
                SubjectAction.evalGate(TO.Global, SubjectPa.Args, OmegaAfter);
          } else {
            Preserved =
                SubjectAction.evalGate(TO.Global, SubjectPa.Args, Omega);
          }
          if (!Preserved)
            Result.fail("gate not forward-preserved: " +
                        describePair(C, SubjectPa, OtherPa));
        }
      }

      // (2) Gate of the other action is backward-preserved by the subject.
      if (SubjectGate &&
          (Other.gateReadsOmega() ||
           BackwardDone.insert({G, SubjectPa, OtherPa}).second)) {
        for (const Transition &TS :
             Cache.get(SubjectAction, G, SubjectPa.Args)) {
          Result.countObligation();
          bool GateAfter;
          if (Other.gateReadsOmega()) {
            PaMultiset OmegaAfter = Omega;
            OmegaAfter.erase(SubjectPa);
            for (const PendingAsync &New : TS.Created)
              OmegaAfter.insert(New);
            GateAfter = Other.evalGate(TS.Global, OtherPa.Args, OmegaAfter);
          } else {
            GateAfter = Other.evalGate(TS.Global, OtherPa.Args, Omega);
          }
          if (GateAfter && !OtherGate)
            Result.fail("gate not backward-preserved: " +
                        describePair(C, SubjectPa, OtherPa));
        }
      }

      // (3) Commutation (Ω-independent: deduplicated across Ω's).
      if (SubjectGate && OtherGate &&
          CommuteDone.insert({G, SubjectPa, OtherPa}).second) {
        if (LeftDirection) {
          // other;subject must be reorderable to subject;other.
          for (const Transition &TO : Cache.get(Other, G, OtherPa.Args)) {
            PaMultiset CreatedO = TO.createdMultiset();
            for (const Transition &TS : Cache.get(
                     SubjectAction, TO.Global, SubjectPa.Args)) {
              Result.countObligation();
              PaMultiset CreatedS = TS.createdMultiset();
              bool Found = false;
              for (const Transition &TS2 :
                   Cache.get(SubjectAction, G, SubjectPa.Args)) {
                if (TS2.createdMultiset() != CreatedS)
                  continue;
                if (hasTransition(
                        Cache.get(Other, TS2.Global, OtherPa.Args),
                        TS.Global, CreatedO)) {
                  Found = true;
                  break;
                }
              }
              if (!Found)
                Result.fail("does not commute left: " +
                            describePair(C, SubjectPa, OtherPa));
            }
          }
        } else {
          // subject;other must be reorderable to other;subject.
          for (const Transition &TS :
               Cache.get(SubjectAction, G, SubjectPa.Args)) {
            PaMultiset CreatedS = TS.createdMultiset();
            for (const Transition &TO :
                 Cache.get(Other, TS.Global, OtherPa.Args)) {
              Result.countObligation();
              PaMultiset CreatedO = TO.createdMultiset();
              bool Found = false;
              for (const Transition &TO2 :
                   Cache.get(Other, G, OtherPa.Args)) {
                if (TO2.createdMultiset() != CreatedO)
                  continue;
                if (hasTransition(
                        Cache.get(SubjectAction, TO2.Global, SubjectPa.Args),
                        TO.Global, CreatedS)) {
                  Found = true;
                  break;
                }
              }
              if (!Found)
                Result.fail("does not commute right: " +
                            describePair(C, SubjectPa, OtherPa));
            }
          }
        }
      }
    });
  }
  return Result;
}

} // namespace

CheckResult isq::checkLeftMover(Symbol Subject, const Action &LAction,
                                const Program &P,
                                const std::vector<Configuration> &Universe) {
  return checkMover(Subject, LAction, P, Universe, /*LeftDirection=*/true,
                    /*RequireNonBlocking=*/true);
}

CheckResult isq::checkRightMover(Symbol Subject, const Action &RAction,
                                 const Program &P,
                                 const std::vector<Configuration> &Universe) {
  return checkMover(Subject, RAction, P, Universe, /*LeftDirection=*/false,
                    /*RequireNonBlocking=*/false);
}

MoverType isq::classifyMover(Symbol Subject, const Program &P,
                             const std::vector<Configuration> &Universe) {
  const Action &A = P.action(Subject);
  bool Left = checkLeftMover(Subject, A, P, Universe).ok();
  bool Right = checkRightMover(Subject, A, P, Universe).ok();
  if (Left && Right)
    return MoverType::Both;
  if (Left)
    return MoverType::Left;
  if (Right)
    return MoverType::Right;
  return MoverType::None;
}
