//===- movers/MoverCheck.h - Mover-type engine -------------------*- C++ -*-===//
///
/// \file
/// The mover-type engine (§3 "Left movers" and Lipton's reduction theory).
/// An action l is a *left mover* w.r.t. an action x if
///   (1) the gate of l is forward-preserved by x,
///   (2) the gate of x is backward-preserved by l,
///   (3) l commutes to the left of x (preserving created-PA multisets), and
///   (4) l is non-blocking.
/// Right movers satisfy the mirrored commutation/gate conditions (without
/// non-blocking); they are used by the reduction module.
///
/// All conditions are universally quantified over stores; we evaluate them
/// over pairs of co-pending PAs in a finite configuration universe,
/// which covers exactly the commuting steps performed by the soundness
/// construction of §4.1 for the explored instances (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_MOVERS_MOVERCHECK_H
#define ISQ_MOVERS_MOVERCHECK_H

#include "engine/StateArena.h"
#include "refine/Refinement.h"
#include "semantics/Program.h"

#include <string>
#include <vector>

namespace isq {

/// Lipton mover types for annotated primitive operations.
enum class MoverType : uint8_t { Both, Left, Right, None };

const char *moverTypeName(MoverType M);

/// Checks that PAs named \p Subject, when executed with behavior
/// \p LAction (the identity or an abstraction α(A)), are left movers with
/// respect to every co-pending PA in \p Universe executed with \p P's
/// original actions. This is LeftMover(α(A), P) of §3 evaluated over the
/// universe.
CheckResult checkLeftMover(Symbol Subject, const Action &LAction,
                           const Program &P,
                           const std::vector<Configuration> &Universe);

/// Interned form: evaluates the same obligations over a universe of
/// ConfigIds in a shared arena. Dedup keys and transition-set membership
/// are integer compares; value-level configurations are only materialized
/// for failure messages.
CheckResult checkLeftMover(Symbol Subject, const Action &LAction,
                           const Program &P,
                           const engine::StateSpace &Universe);

/// Mirrored check: PAs named \p Subject are right movers w.r.t. every
/// co-pending PA (commute to the right; gates preserved in the mirrored
/// directions). Non-blocking is not required of right movers.
CheckResult checkRightMover(Symbol Subject, const Action &RAction,
                            const Program &P,
                            const std::vector<Configuration> &Universe);

/// Interned form of checkRightMover (see checkLeftMover above).
CheckResult checkRightMover(Symbol Subject, const Action &RAction,
                            const Program &P,
                            const engine::StateSpace &Universe);

/// Obligation-scheduler form of checkLeftMover: submits the same
/// obligations as sliced jobs under \p Cond and returns the group handle;
/// after Sched.run(), Sched.result(group) is bit-identical to the serial
/// check for any thread count. \p LAction, \p P, \p Universe and the
/// caches must outlive the run. The caches may be shared across groups —
/// gates and transition relations are pure, so sharing only changes who
/// computes an entry, never any obligation outcome.
///
/// When \p Fps is non-null the slices become verdict-cacheable: each job
/// gets a content-fingerprint KeyFn and the dedup keys switch from
/// interned handles to content fingerprints (see ObKey). A slice's key
/// covers the subject behavior, every configuration in the slice, and —
/// for configurations actually holding a subject PA — the concrete
/// behavior of every co-pending partner action, so editing one action
/// only invalidates the slices whose pair enumeration executes it.
engine::ObligationScheduler::Group *
scheduleLeftMover(engine::ObligationScheduler &Sched, engine::ObCondition Cond,
                  Symbol Subject, const Action &LAction, const Program &P,
                  const engine::StateSpace &Universe,
                  engine::InternedTransitionCache &Cache,
                  engine::GateCache &Gates, engine::OmegaGateCache &OmegaGates,
                  engine::SuccessorOmegaCache &SuccOmega,
                  engine::ArenaFingerprints *Fps = nullptr);

/// Obligation-scheduler form of checkRightMover (see scheduleLeftMover).
engine::ObligationScheduler::Group *
scheduleRightMover(engine::ObligationScheduler &Sched, engine::ObCondition Cond,
                   Symbol Subject, const Action &RAction, const Program &P,
                   const engine::StateSpace &Universe,
                   engine::InternedTransitionCache &Cache,
                   engine::GateCache &Gates,
                   engine::OmegaGateCache &OmegaGates,
                   engine::SuccessorOmegaCache &SuccOmega,
                   engine::ArenaFingerprints *Fps = nullptr);

/// Classifies \p Subject (executed with its own program action) over
/// \p Universe as Both/Left/Right/None by running both directed checks.
MoverType classifyMover(Symbol Subject, const Program &P,
                        const std::vector<Configuration> &Universe);

/// Interned form of classifyMover.
MoverType classifyMover(Symbol Subject, const Program &P,
                        const engine::StateSpace &Universe);

} // namespace isq

#endif // ISQ_MOVERS_MOVERCHECK_H
