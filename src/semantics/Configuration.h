//===- semantics/Configuration.h - Program configurations -------*- C++ -*-===//
///
/// \file
/// A configuration is a pair (g, Ω) of a global store and a finite multiset
/// of pending asyncs, or the unique failure configuration ↯ (§3).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SEMANTICS_CONFIGURATION_H
#define ISQ_SEMANTICS_CONFIGURATION_H

#include "semantics/PendingAsync.h"
#include "semantics/Store.h"

#include <string>

namespace isq {

/// A (g, Ω) pair or the failure configuration.
class Configuration {
public:
  Configuration() = default;
  Configuration(Store Global, PaMultiset Pas)
      : Global(std::move(Global)), Pas(std::move(Pas)) {}

  /// The unique failure configuration.
  static Configuration failure() {
    Configuration C;
    C.IsFailure = true;
    return C;
  }

  bool isFailure() const { return IsFailure; }

  const Store &global() const {
    assert(!IsFailure && "failure configuration has no store");
    return Global;
  }
  const PaMultiset &pendingAsyncs() const {
    assert(!IsFailure && "failure configuration has no PAs");
    return Pas;
  }

  /// Terminating configurations have an empty PA multiset.
  bool isTerminating() const { return !IsFailure && Pas.empty(); }

  /// Returns a copy with the global store replaced.
  Configuration withGlobal(Store G) const {
    assert(!IsFailure && "cannot modify the failure configuration");
    return Configuration(std::move(G), Pas);
  }
  /// Returns a copy with the PA multiset replaced.
  Configuration withPendingAsyncs(PaMultiset Omega) const {
    assert(!IsFailure && "cannot modify the failure configuration");
    return Configuration(Global, std::move(Omega));
  }

  friend bool operator==(const Configuration &A, const Configuration &B) {
    if (A.IsFailure != B.IsFailure)
      return false;
    if (A.IsFailure)
      return true;
    return A.Global == B.Global && A.Pas == B.Pas;
  }
  friend bool operator!=(const Configuration &A, const Configuration &B) {
    return !(A == B);
  }
  friend bool operator<(const Configuration &A, const Configuration &B);

  size_t hash() const;

  /// Renders "(store, Ω)" or "FAIL".
  std::string str() const;

private:
  Store Global;
  PaMultiset Pas;
  bool IsFailure = false;
};

} // namespace isq

namespace std {
template <> struct hash<isq::Configuration> {
  size_t operator()(const isq::Configuration &C) const noexcept {
    return C.hash();
  }
};
} // namespace std

#endif // ISQ_SEMANTICS_CONFIGURATION_H
