//===- semantics/Symmetry.cpp - Orbit-canonical symmetry reduction -----------===//

#include "semantics/Symmetry.h"

#include <algorithm>

using namespace isq;

ValueShape ValueShape::id() {
  return ValueShape(Kind::Id, /*Fixed=*/false, nullptr);
}

ValueShape ValueShape::tuple(std::vector<ValueShape> Elems) {
  bool Fixed = true;
  for (const ValueShape &S : Elems)
    Fixed = Fixed && S.fixed();
  return ValueShape(Kind::Tuple, Fixed,
                    std::make_shared<const std::vector<ValueShape>>(
                        std::move(Elems)));
}

ValueShape ValueShape::option(ValueShape Payload) {
  bool Fixed = Payload.fixed();
  return ValueShape(Kind::Option, Fixed,
                    std::make_shared<const std::vector<ValueShape>>(
                        std::vector<ValueShape>{std::move(Payload)}));
}

ValueShape ValueShape::setOf(ValueShape Elem) {
  bool Fixed = Elem.fixed();
  return ValueShape(Kind::Set, Fixed,
                    std::make_shared<const std::vector<ValueShape>>(
                        std::vector<ValueShape>{std::move(Elem)}));
}

ValueShape ValueShape::bagOf(ValueShape Elem) {
  bool Fixed = Elem.fixed();
  return ValueShape(Kind::Bag, Fixed,
                    std::make_shared<const std::vector<ValueShape>>(
                        std::vector<ValueShape>{std::move(Elem)}));
}

ValueShape ValueShape::seqOf(ValueShape Elem) {
  bool Fixed = Elem.fixed();
  return ValueShape(Kind::Seq, Fixed,
                    std::make_shared<const std::vector<ValueShape>>(
                        std::vector<ValueShape>{std::move(Elem)}));
}

ValueShape ValueShape::mapOf(ValueShape Key, ValueShape Val) {
  bool Fixed = Key.fixed() && Val.fixed();
  return ValueShape(Kind::Map, Fixed,
                    std::make_shared<const std::vector<ValueShape>>(
                        std::vector<ValueShape>{std::move(Key),
                                                std::move(Val)}));
}

SymmetrySpec::SymmetrySpec(std::string SortName, std::vector<int64_t> Domain)
    : SortName(std::move(SortName)), Domain(std::move(Domain)) {
  std::sort(this->Domain.begin(), this->Domain.end());
  this->Domain.erase(std::unique(this->Domain.begin(), this->Domain.end()),
                     this->Domain.end());
  assert(!this->Domain.empty() && "symmetric sort needs a non-empty domain");
  assert(this->Domain.size() <= MaxDomainSize &&
         "symmetric domain exceeds the enumerable-group cap");
  // std::next_permutation enumerates from the sorted vector, so the
  // identity comes first.
  std::vector<int64_t> Image = this->Domain;
  do {
    Perms.push_back(Image);
  } while (std::next_permutation(Image.begin(), Image.end()));
}

void SymmetrySpec::setGlobalShape(Symbol Var, ValueShape Shape) {
  GlobalShapes[Var] = std::move(Shape);
}

void SymmetrySpec::setActionShape(Symbol Name,
                                  std::vector<ValueShape> ArgShapes) {
  ActionShapes[Name] = std::move(ArgShapes);
}

int64_t SymmetrySpec::mapId(const std::vector<int64_t> &Image,
                            int64_t N) const {
  auto It = std::lower_bound(Domain.begin(), Domain.end(), N);
  if (It == Domain.end() || *It != N)
    return N; // out-of-domain IDs are fixed points
  return Image[static_cast<size_t>(It - Domain.begin())];
}

Value SymmetrySpec::permuteValue(const Value &V, const ValueShape &Shape,
                                 const std::vector<int64_t> &Image) const {
  if (Shape.fixed())
    return V;
  switch (Shape.kind()) {
  case ValueShape::Kind::Plain:
    return V;
  case ValueShape::Kind::Id:
    if (V.kind() != ValueKind::Int)
      return V;
    return Value::integer(mapId(Image, V.getInt()));
  case ValueShape::Kind::Tuple: {
    assert(V.kind() == ValueKind::Tuple && "shape/value kind mismatch");
    assert(V.size() == Shape.numChildren() && "tuple arity mismatch");
    std::vector<Value> Elems;
    Elems.reserve(V.size());
    for (size_t I = 0; I < V.size(); ++I)
      Elems.push_back(permuteValue(V.elem(I), Shape.child(I), Image));
    return Value::tuple(std::move(Elems));
  }
  case ValueShape::Kind::Option: {
    assert(V.kind() == ValueKind::Option && "shape/value kind mismatch");
    if (V.isNone())
      return V;
    return Value::some(permuteValue(V.getSome(), Shape.child(0), Image));
  }
  case ValueShape::Kind::Set: {
    assert(V.kind() == ValueKind::Set && "shape/value kind mismatch");
    std::vector<Value> Elems;
    Elems.reserve(V.size());
    for (const Value &Elem : V.elems())
      Elems.push_back(permuteValue(Elem, Shape.child(0), Image));
    // Value::set re-sorts, restoring the canonical form.
    return Value::set(std::move(Elems));
  }
  case ValueShape::Kind::Bag: {
    assert(V.kind() == ValueKind::Bag && "shape/value kind mismatch");
    Value Out = Value::bag({});
    for (const auto &[Elem, Count] : V.bagEntries())
      Out = Out.bagInsert(permuteValue(Elem, Shape.child(0), Image),
                          static_cast<uint64_t>(Count.getInt()));
    return Out;
  }
  case ValueShape::Kind::Seq: {
    assert(V.kind() == ValueKind::Seq && "shape/value kind mismatch");
    std::vector<Value> Elems;
    Elems.reserve(V.size());
    for (const Value &Elem : V.elems())
      Elems.push_back(permuteValue(Elem, Shape.child(0), Image));
    return Value::seq(std::move(Elems));
  }
  case ValueShape::Kind::Map: {
    assert(V.kind() == ValueKind::Map && "shape/value kind mismatch");
    std::vector<std::pair<Value, Value>> Pairs;
    Pairs.reserve(V.mapSize());
    // π is injective, so permuted keys stay distinct; Value::map re-sorts.
    for (const auto &[Key, Val] : V.mapEntries())
      Pairs.emplace_back(permuteValue(Key, Shape.child(0), Image),
                         permuteValue(Val, Shape.child(1), Image));
    return Value::map(std::move(Pairs));
  }
  }
  assert(false && "unknown shape kind");
  return V;
}

Store SymmetrySpec::permuteStore(const Store &G,
                                 const std::vector<int64_t> &Image) const {
  // Rebuild the (already sorted) entry vector in one pass rather than
  // paying a full-store copy per shaped variable via Store::set.
  std::vector<std::pair<Symbol, Value>> Vars;
  Vars.reserve(G.size());
  bool Changed = false;
  for (const auto &[Var, Val] : G.entries()) {
    auto It = GlobalShapes.find(Var);
    if (It == GlobalShapes.end() || It->second.fixed()) {
      Vars.emplace_back(Var, Val);
      continue;
    }
    Vars.emplace_back(Var, permuteValue(Val, It->second, Image));
    Changed = Changed || Vars.back().second != Val;
  }
  if (!Changed)
    return G;
  return Store::make(std::move(Vars));
}

PendingAsync
SymmetrySpec::permutePendingAsync(const PendingAsync &PA,
                                  const std::vector<int64_t> &Image) const {
  auto It = ActionShapes.find(PA.Action);
  if (It == ActionShapes.end())
    return PA;
  const std::vector<ValueShape> &Shapes = It->second;
  assert(Shapes.size() == PA.Args.size() &&
         "action argument shape arity mismatch");
  std::vector<Value> Args;
  Args.reserve(PA.Args.size());
  bool Changed = false;
  for (size_t I = 0; I < PA.Args.size(); ++I) {
    Args.push_back(permuteValue(PA.Args[I], Shapes[I], Image));
    Changed = Changed || Args.back() != PA.Args[I];
  }
  if (!Changed)
    return PA;
  return PendingAsync(PA.Action, std::move(Args));
}

PaMultiset
SymmetrySpec::permuteOmega(const PaMultiset &Omega,
                           const std::vector<int64_t> &Image) const {
  PaMultiset Out;
  for (const auto &[PA, Count] : Omega.entries())
    Out.insert(permutePendingAsync(PA, Image), Count);
  return Out;
}

Configuration
SymmetrySpec::permuteConfiguration(const Configuration &C,
                                   const std::vector<int64_t> &Image) const {
  if (C.isFailure())
    return C;
  return Configuration(permuteStore(C.global(), Image),
                       permuteOmega(C.pendingAsyncs(), Image));
}

Store SymmetrySpec::canonicalStore(const Store &G,
                                   std::vector<uint32_t> *MinPerms) const {
  Store Best = G; // Perms[0] is the identity
  if (MinPerms) {
    MinPerms->clear();
    MinPerms->push_back(0);
  }
  for (size_t I = 1; I < Perms.size(); ++I) {
    Store Img = permuteStore(G, Perms[I]);
    if (Img < Best) {
      Best = std::move(Img);
      if (MinPerms) {
        MinPerms->clear();
        MinPerms->push_back(static_cast<uint32_t>(I));
      }
    } else if (MinPerms && Img == Best) {
      MinPerms->push_back(static_cast<uint32_t>(I));
    }
  }
  return Best;
}

Configuration SymmetrySpec::canonical(const Configuration &C,
                                      uint64_t *OrbitSize) const {
  if (C.isFailure()) {
    if (OrbitSize)
      *OrbitSize = 1;
    return C;
  }
  // Configurations compare store-first, so the minimizing permutation is
  // drawn from the (usually singleton) set minimizing the store; only
  // those need to touch Ω. Writing MinPerms = Stab(canonical store)∘π₀,
  // the Ω images below are exactly the Stab-orbit of π₀·Ω, so the number
  // of images equal to the least one is |Stab(canonical configuration)|
  // and orbit-stabilizer gives the true orbit size without enumerating
  // (or sorting) all |G| configuration images.
  std::vector<uint32_t> MinPerms;
  Store CanonStore = canonicalStore(C.global(), &MinPerms);
  PaMultiset BestOmega;
  uint64_t Ties = 0;
  for (uint32_t I : MinPerms) {
    PaMultiset Img = I == 0 ? C.pendingAsyncs()
                            : permuteOmega(C.pendingAsyncs(), Perms[I]);
    if (Ties == 0 || Img < BestOmega) {
      BestOmega = std::move(Img);
      Ties = 1;
    } else if (Img == BestOmega) {
      ++Ties;
    }
  }
  if (OrbitSize)
    *OrbitSize = static_cast<uint64_t>(Perms.size()) / Ties;
  return Configuration(std::move(CanonStore), std::move(BestOmega));
}

std::vector<Store>
SymmetrySpec::storeOrbit(const Store &G) const {
  std::vector<Store> Images;
  Images.reserve(Perms.size());
  Images.push_back(G);
  for (size_t I = 1; I < Perms.size(); ++I)
    Images.push_back(permuteStore(G, Perms[I]));
  std::sort(Images.begin(), Images.end());
  Images.erase(std::unique(Images.begin(), Images.end()), Images.end());
  return Images;
}

bool SymmetrySpec::isInvariantStore(const Store &G) const {
  // The adjacent transpositions generate the full symmetric group, so a
  // store fixed by each of them is fixed by every permutation.
  for (size_t I = 0; I + 1 < Domain.size(); ++I) {
    std::vector<int64_t> Image = Domain;
    std::swap(Image[I], Image[I + 1]);
    if (permuteStore(G, Image) != G)
      return false;
  }
  return true;
}
