//===- semantics/Program.cpp - Programs over atomic actions -----------------===//

#include "semantics/Program.h"

using namespace isq;

void Program::addAction(Action A) {
  assert(A.isValid() && "adding invalid action");
  auto It = Index.find(A.name());
  if (It != Index.end()) {
    Actions[It->second] = std::move(A);
    return;
  }
  Index.emplace(A.name(), Actions.size());
  Actions.push_back(std::move(A));
}

const Action &Program::action(Symbol Name) const {
  auto It = Index.find(Name);
  assert(It != Index.end() && "unknown action name");
  return Actions[It->second];
}

std::vector<Symbol> Program::actionNames() const {
  std::vector<Symbol> Names;
  Names.reserve(Actions.size());
  for (const Action &A : Actions)
    Names.push_back(A.name());
  return Names;
}

Program Program::withAction(Action A) const {
  assert(hasAction(A.name()) && "withAction expects an existing action name");
  Program P = *this;
  // The substituted action may not be equivariant under the declared
  // symmetry (schedule invariants rank by node ID); the substituted
  // program is conservatively treated as asymmetric.
  P.Sym.reset();
  P.addAction(std::move(A));
  return P;
}

Configuration isq::initialConfiguration(Store Global,
                                        std::vector<Value> MainArgs) {
  PaMultiset Omega;
  Omega.insert(PendingAsync(Program::mainSymbol(), std::move(MainArgs)));
  return Configuration(std::move(Global), std::move(Omega));
}

std::vector<Configuration> isq::stepPendingAsync(const Program &P,
                                                 const Configuration &C,
                                                 const PendingAsync &PA) {
  assert(!C.isFailure() && "cannot step the failure configuration");
  assert(C.pendingAsyncs().contains(PA) && "PA not schedulable here");
  const Action &A = P.action(PA.Action);

  if (!A.evalGate(C.global(), PA.Args, C.pendingAsyncs()))
    return {Configuration::failure()};

  std::vector<Configuration> Result;
  PaMultiset Rest = C.pendingAsyncs();
  Rest.erase(PA);
  for (const Transition &T : A.transitions(C.global(), PA.Args)) {
    PaMultiset Omega = Rest;
    for (const PendingAsync &New : T.Created)
      Omega.insert(New);
    Result.emplace_back(T.Global, std::move(Omega));
  }
  return Result;
}

std::vector<Configuration> isq::successors(const Program &P,
                                           const Configuration &C) {
  std::vector<Configuration> Result;
  if (C.isFailure())
    return Result;
  for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
    (void)Count; // scheduling one of several identical PAs is symmetric
    std::vector<Configuration> Succs = stepPendingAsync(P, C, PA);
    Result.insert(Result.end(), Succs.begin(), Succs.end());
  }
  return Result;
}

bool isq::hasBlockedPendingAsync(const Program &P, const Configuration &C) {
  if (C.isFailure())
    return false;
  for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
    (void)Count;
    const Action &A = P.action(PA.Action);
    if (A.evalGate(C.global(), PA.Args, C.pendingAsyncs()) &&
        A.transitions(C.global(), PA.Args).empty())
      return true;
  }
  return false;
}
