//===- semantics/Store.h - Global stores ------------------------*- C++ -*-===//
///
/// \file
/// A store σ : V → D (§3 of the paper), mapping interned variable symbols to
/// values. Stores are value types kept in canonical (sorted) order so they
/// can be compared, hashed, and deduplicated during exploration. Local
/// stores (action parameters) are represented separately as argument
/// vectors; this class models the *global* store g.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SEMANTICS_STORE_H
#define ISQ_SEMANTICS_STORE_H

#include "semantics/Value.h"
#include "support/Symbol.h"

#include <string>
#include <utility>
#include <vector>

namespace isq {

/// A finite mapping from variable symbols to values.
class Store {
public:
  Store() = default;

  /// Builds a store from (name, value) pairs; names must be distinct.
  static Store make(std::vector<std::pair<Symbol, Value>> Vars);

  bool contains(Symbol Var) const;

  /// Reads \p Var; asserts that the variable exists.
  const Value &get(Symbol Var) const;
  /// Convenience overload interning \p Name.
  const Value &get(const std::string &Name) const {
    return get(Symbol::get(Name));
  }

  /// Returns a new store with \p Var set to \p V (inserted if absent).
  Store set(Symbol Var, Value V) const;
  Store set(const std::string &Name, Value V) const {
    return set(Symbol::get(Name), std::move(V));
  }

  size_t size() const { return Vars.size(); }
  const std::vector<std::pair<Symbol, Value>> &entries() const {
    return Vars;
  }

  friend bool operator==(const Store &A, const Store &B) {
    return A.Vars == B.Vars;
  }
  friend bool operator!=(const Store &A, const Store &B) { return !(A == B); }
  friend bool operator<(const Store &A, const Store &B);

  size_t hash() const;

  /// Renders "{x = 1, CH = map{...}}" for diagnostics.
  std::string str() const;

private:
  // Sorted by symbol index.
  std::vector<std::pair<Symbol, Value>> Vars;
  /// Lazily memoized hash (0 = not yet computed); reset on mutation.
  mutable size_t HashMemo = 0;
};

} // namespace isq

namespace std {
template <> struct hash<isq::Store> {
  size_t operator()(const isq::Store &S) const noexcept { return S.hash(); }
};
} // namespace std

#endif // ISQ_SEMANTICS_STORE_H
