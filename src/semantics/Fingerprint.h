//===- semantics/Fingerprint.h - Stable semantic fingerprints ----*- C++ -*-===//
///
/// \file
/// Canonical 128-bit fingerprints for the semantic objects a verification
/// obligation can depend on: values, stores, pending-async multisets,
/// configurations, symmetry specs, and (via the frontend) action bodies.
/// Fingerprints are the keys of the content-addressed obligation verdict
/// cache (engine/ObligationCache.h): a warm re-verification replays a
/// slice's recorded verdict exactly when every input the slice consumed
/// fingerprints identically, so the fingerprint must be a pure function of
/// *content* — stable across process restarts, interning orders, and
/// incidental edits.
///
/// Two stability rules follow, and every fingerprinter in this file obeys
/// them:
///
///  - Never hash an interned index. Symbol::index(), TypeId, and arena
///    handles (StoreId/PaId/...) depend on interning order, which depends
///    on compilation order and on which requests a process served first.
///    Symbols hash by their string; types by their rendered form; interned
///    state by its value content.
///  - Never hash an order that is itself index-derived. Store entries and
///    PA multiset entries sort by Symbol index, so collections keyed by
///    symbols fold with the commutative combineUnordered() instead of
///    sequential absorption.
///
/// The mixing is fixed explicitly (no std::hash, no platform-dependent
/// widths), so fingerprints are portable across builds of the same format
/// version. FpFormatVersion salts every hasher: bump it whenever the byte
/// stream fed for any object changes, and every cache key changes with it.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SEMANTICS_FINGERPRINT_H
#define ISQ_SEMANTICS_FINGERPRINT_H

#include "semantics/PendingAsync.h" // PaMultiset is a using-alias, not fwd-declarable

#include <cstdint>
#include <string>
#include <string_view>

namespace isq {

class Value;
class Store;
class Configuration;
class SymmetrySpec;

/// Version of the fingerprint byte streams. Part of every hasher's seed
/// and of the on-disk cache header: bumping it invalidates every
/// previously recorded verdict.
constexpr uint32_t FpFormatVersion = 1;

/// A 128-bit content fingerprint. Value-semantic and totally ordered so it
/// can key maps and be serialized directly.
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Fingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
  bool operator<(const Fingerprint &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }

  /// True for a default-constructed (never-assigned) fingerprint. The
  /// zero fingerprint is reserved as "absent": the hasher never produces
  /// it (finish() remaps it).
  bool isZero() const { return Hi == 0 && Lo == 0; }

  /// 32 lowercase hex digits, Hi first.
  std::string str() const;
};

/// Incremental fingerprint hasher. Deterministic across platforms and
/// process runs: absorbs explicit 64-bit words with fixed multipliers, no
/// std::hash anywhere. Not cryptographic — collision resistance is
/// "build-system grade" (the same bar content-addressed build caches
/// meet).
class FpHasher {
public:
  FpHasher() { u32(FpFormatVersion); }

  /// Seeds the stream with a domain-separation tag ("mover/v1", ...).
  explicit FpHasher(std::string_view Domain) : FpHasher() { str(Domain); }

  FpHasher &u64(uint64_t W) {
    absorb(W);
    return *this;
  }
  FpHasher &u32(uint32_t W) { return u64(W); }
  FpHasher &i64(int64_t W) { return u64(static_cast<uint64_t>(W)); }
  FpHasher &boolean(bool B) { return u64(B ? 1 : 0); }

  /// Absorbs length-prefixed bytes (no ambiguity between "ab","c" and
  /// "a","bc").
  FpHasher &str(std::string_view S);

  /// Absorbs a previously finished fingerprint.
  FpHasher &fp(const Fingerprint &F) { return u64(F.Hi).u64(F.Lo); }

  Fingerprint finish() const;

private:
  void absorb(uint64_t W);

  uint64_t A = 0x9e3779b97f4a7c15ULL;
  uint64_t B = 0xc6a4a7935bd1e995ULL;
  uint64_t Len = 0;
};

/// Folds a 128-bit fingerprint into one 64-bit word, for the three-word
/// ObKey dedup keys (engine/ObligationScheduler.h). Not a new hash — just
/// a mix of the two already-avalanched halves.
inline uint64_t fp64(const Fingerprint &F) {
  return F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL);
}

/// Commutative, associative fold of item fingerprints: the accumulator for
/// collections whose iteration order is interning-dependent (stores, PA
/// multisets, symbol-keyed maps). Items must themselves be finished
/// fingerprints (already well mixed).
inline Fingerprint combineUnordered(Fingerprint Acc, const Fingerprint &F) {
  Acc.Hi += F.Hi * 0x9ddfea08eb382d69ULL + 0x2545f4914f6cdd1dULL;
  Acc.Lo += F.Lo * 0xff51afd7ed558ccdULL + 0x9e3779b97f4a7c15ULL;
  return Acc;
}

// Fingerprinters for the semantic value domain. All are pure functions of
// content (see the file comment for the stability rules).
Fingerprint fingerprintValue(const Value &V);
Fingerprint fingerprintStore(const Store &G);
Fingerprint fingerprintPendingAsync(const PendingAsync &PA);
Fingerprint fingerprintPaMultiset(const PaMultiset &Omega);
Fingerprint fingerprintConfiguration(const Configuration &C);
/// Null spec fingerprints as a distinct constant (absent ≠ any real spec).
Fingerprint fingerprintSymmetry(const SymmetrySpec *Spec);

} // namespace isq

#endif // ISQ_SEMANTICS_FINGERPRINT_H
