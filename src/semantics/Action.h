//===- semantics/Action.h - Gated atomic actions ----------------*- C++ -*-===//
///
/// \file
/// A gated atomic action (ρ, τ) from §3 of the paper. The gate ρ is a
/// predicate over the combined store (global store + action parameters);
/// the transition relation τ is a *finitely branching* enumerator producing
/// all possible (g', Ω') successors. Executing an action whose gate does
/// not hold drives the program to the failure configuration; an action
/// whose gate holds but which has no transitions from the current state is
/// *blocked* (e.g. a receive on an empty channel).
///
/// Following CIVL's `pendingAsyncs` mirror variable (Fig. 4(b) of the
/// paper), gates may additionally observe the configuration's pending-async
/// multiset Ω (including the executing PA). Transition relations never
/// read Ω, so the formal model is unchanged up to this encoding.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SEMANTICS_ACTION_H
#define ISQ_SEMANTICS_ACTION_H

#include "semantics/Fingerprint.h"
#include "semantics/PendingAsync.h"
#include "semantics/Store.h"

#include <functional>
#include <string>
#include <vector>

namespace isq {

/// One element of a transition relation: the successor global store and the
/// pending asyncs created by the step.
struct Transition {
  Store Global;
  std::vector<PendingAsync> Created;

  Transition() = default;
  Transition(Store Global, std::vector<PendingAsync> Created = {})
      : Global(std::move(Global)), Created(std::move(Created)) {}

  /// The created PAs as a canonical multiset Ω'.
  PaMultiset createdMultiset() const {
    return PaMultiset::fromSequence(Created);
  }

  friend bool operator==(const Transition &A, const Transition &B) {
    return A.Global == B.Global &&
           A.createdMultiset() == B.createdMultiset();
  }

  std::string str() const;
};

/// Everything a gate may observe: the global store, the action's parameter
/// values, and the pending-async multiset of the current configuration
/// (CIVL mirror convention: Omega includes the executing PA itself).
struct GateContext {
  const Store &Global;
  const std::vector<Value> &Args;
  const PaMultiset &Omega;
};

/// A gated atomic action.
class Action {
public:
  /// ρ: returns true iff the action does not fail from this context.
  using GateFn = std::function<bool(const GateContext &)>;
  /// τ: enumerates every possible transition from (g, args). An empty
  /// result means the action is blocked in this state.
  using TransitionsFn = std::function<std::vector<Transition>(
      const Store &, const std::vector<Value> &)>;

  Action() = default;
  /// \p GateReadsOmega declares whether the gate observes the pending-async
  /// multiset; Ω-independent gates (the default) allow the checkers to
  /// deduplicate obligations across configurations sharing a store.
  /// Gates that DO read Ctx.Omega must pass true — the checkers would
  /// otherwise be unsound.
  /// \p TransitionsThreadSafe declares that the transition enumerator may
  /// be invoked from several threads concurrently (it is pure, or its
  /// internal memoization is synchronized). Gates are always required to
  /// be concurrently evaluable — the parallel engine evaluates them from
  /// worker threads — but enumerators default to not-thread-safe and are
  /// serialized behind the interned transition cache's compute mutex
  /// unless this flag is set (see engine/ActionCaches.h).
  Action(const std::string &Name, size_t Arity, GateFn Gate,
         TransitionsFn Transitions, bool GateReadsOmega = false,
         bool TransitionsThreadSafe = false)
      : Name(Symbol::get(Name)), Arity(Arity), Gate(std::move(Gate)),
        Transitions(std::move(Transitions)), GateReadsOmega(GateReadsOmega),
        TransitionsThreadSafe(TransitionsThreadSafe) {}

  /// Whether the gate may observe Ω.
  bool gateReadsOmega() const { return GateReadsOmega; }

  /// Whether the transition enumerator may run concurrently.
  bool transitionsThreadSafe() const { return TransitionsThreadSafe; }

  Symbol name() const { return Name; }
  size_t arity() const { return Arity; }
  bool isValid() const { return Name.isValid(); }

  /// Evaluates the gate ρ.
  bool evalGate(const Store &Global, const std::vector<Value> &Args,
                const PaMultiset &Omega) const {
    assert(Args.size() == Arity && "gate arity mismatch");
    GateContext Ctx{Global, Args, Omega};
    return Gate(Ctx);
  }

  /// Enumerates the transition relation τ from (g, args).
  std::vector<Transition> transitions(const Store &Global,
                                      const std::vector<Value> &Args) const {
    assert(Args.size() == Arity && "transition arity mismatch");
    return Transitions(Global, Args);
  }

  /// The trivially true gate (total actions).
  static GateFn alwaysEnabled() {
    return [](const GateContext &) { return true; };
  }

  /// Returns a copy of this action registered under \p NewName. Used to
  /// substitute an invariant or sequentialized action for M in P[M ↦ a].
  /// The behavior fingerprint carries over: renaming does not change what
  /// the gate/transition closures compute.
  Action withName(const std::string &NewName) const {
    Action Renamed(NewName, Arity, Gate, Transitions, GateReadsOmega,
                   TransitionsThreadSafe);
    Renamed.Fp = Fp;
    return Renamed;
  }

  /// Content fingerprint of the action's *behavior* (gate + transition
  /// relation), when known. The frontend stamps it from the optimized HIR
  /// it lowered the closures from; natively constructed actions leave it
  /// zero ("unknown"), which makes any obligation depending on them
  /// ineligible for the verdict cache. Deliberately excludes the name:
  /// obligations depend on what an action does, and the name is hashed
  /// separately where identity matters (e.g. PA fingerprints).
  const Fingerprint &fp() const { return Fp; }
  void setFp(const Fingerprint &F) { Fp = F; }

private:
  Symbol Name;
  size_t Arity = 0;
  GateFn Gate;
  TransitionsFn Transitions;
  bool GateReadsOmega = false;
  bool TransitionsThreadSafe = false;
  Fingerprint Fp;
};

} // namespace isq

#endif // ISQ_SEMANTICS_ACTION_H
