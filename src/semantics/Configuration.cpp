//===- semantics/Configuration.cpp - Program configurations ----------------===//

#include "semantics/Configuration.h"

#include "support/Hashing.h"

using namespace isq;

namespace isq {
bool operator<(const Configuration &A, const Configuration &B) {
  if (A.IsFailure != B.IsFailure)
    return B.IsFailure; // non-failure sorts before failure
  if (A.IsFailure)
    return false;
  if (A.Global != B.Global)
    return A.Global < B.Global;
  return A.Pas < B.Pas;
}
} // namespace isq

size_t Configuration::hash() const {
  if (IsFailure)
    return 0xdeadULL;
  size_t Seed = Global.hash();
  hashCombine(Seed, Pas.hash());
  return Seed;
}

std::string Configuration::str() const {
  if (IsFailure)
    return "FAIL";
  return "(" + Global.str() + ", " + toString(Pas) + ")";
}
