//===- semantics/Store.cpp - Global stores ---------------------------------===//

#include "semantics/Store.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace isq;

Store Store::make(std::vector<std::pair<Symbol, Value>> Vars) {
  std::sort(Vars.begin(), Vars.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
#ifndef NDEBUG
  for (size_t I = 1; I < Vars.size(); ++I)
    assert(Vars[I - 1].first != Vars[I].first && "duplicate store variables");
#endif
  Store S;
  S.Vars = std::move(Vars);
  return S;
}

bool Store::contains(Symbol Var) const {
  auto It = std::lower_bound(
      Vars.begin(), Vars.end(), Var,
      [](const auto &E, Symbol V) { return E.first < V; });
  return It != Vars.end() && It->first == Var;
}

const Value &Store::get(Symbol Var) const {
  auto It = std::lower_bound(
      Vars.begin(), Vars.end(), Var,
      [](const auto &E, Symbol V) { return E.first < V; });
  assert(It != Vars.end() && It->first == Var && "store variable missing");
  return It->second;
}

Store Store::set(Symbol Var, Value V) const {
  Store S = *this;
  S.HashMemo = 0;
  auto It = std::lower_bound(
      S.Vars.begin(), S.Vars.end(), Var,
      [](const auto &E, Symbol Sym) { return E.first < Sym; });
  if (It != S.Vars.end() && It->first == Var)
    It->second = std::move(V);
  else
    S.Vars.insert(It, {Var, std::move(V)});
  return S;
}

namespace isq {
bool operator<(const Store &A, const Store &B) {
  size_t N = std::min(A.Vars.size(), B.Vars.size());
  for (size_t I = 0; I < N; ++I) {
    if (A.Vars[I].first != B.Vars[I].first)
      return A.Vars[I].first < B.Vars[I].first;
    if (A.Vars[I].second != B.Vars[I].second)
      return A.Vars[I].second < B.Vars[I].second;
  }
  return A.Vars.size() < B.Vars.size();
}
} // namespace isq

size_t Store::hash() const {
  if (HashMemo != 0)
    return HashMemo;
  size_t Seed = 0x517cc1b727220a95ULL;
  for (const auto &[Var, Val] : Vars) {
    hashCombine(Seed, Var.index());
    hashCombine(Seed, Val.hash());
  }
  // 0 is the "not computed" sentinel; remap it without losing bits.
  HashMemo = Seed ? Seed : 0x9e3779b97f4a7c15ULL;
  return HashMemo;
}

std::string Store::str() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Var, Val] : Vars) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Var.str() + " = " + Val.str();
  }
  return Out + "}";
}
