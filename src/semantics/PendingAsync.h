//===- semantics/PendingAsync.h - Pending asynchronous calls ----*- C++ -*-===//
///
/// \file
/// A pending async (PA) is a pair (ℓ, A) of a local store ℓ and an action
/// name A (§3). We represent the local store as a positional argument
/// vector. Configurations carry finite multisets of PAs.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SEMANTICS_PENDINGASYNC_H
#define ISQ_SEMANTICS_PENDINGASYNC_H

#include "semantics/Value.h"
#include "support/Multiset.h"
#include "support/Symbol.h"

#include <string>
#include <vector>

namespace isq {

/// An action name together with its parameter values: a not-yet-executed
/// asynchronous call.
struct PendingAsync {
  Symbol Action;
  std::vector<Value> Args;

  PendingAsync() = default;
  PendingAsync(Symbol Action, std::vector<Value> Args)
      : Action(Action), Args(std::move(Args)) {}
  PendingAsync(const std::string &Name, std::vector<Value> Args)
      : Action(Symbol::get(Name)), Args(std::move(Args)) {}

  friend bool operator==(const PendingAsync &A, const PendingAsync &B) {
    return A.Action == B.Action && A.Args == B.Args;
  }
  friend bool operator!=(const PendingAsync &A, const PendingAsync &B) {
    return !(A == B);
  }
  friend bool operator<(const PendingAsync &A, const PendingAsync &B) {
    if (A.Action != B.Action)
      return A.Action < B.Action;
    return A.Args < B.Args;
  }

  size_t hash() const;

  /// Renders "Broadcast(2)" for diagnostics.
  std::string str() const;
};

/// The multiset Ω of pending asyncs.
using PaMultiset = Multiset<PendingAsync>;

/// Renders "{Broadcast(1), Collect(1):x2}".
std::string toString(const PaMultiset &Omega);

} // namespace isq

namespace std {
template <> struct hash<isq::PendingAsync> {
  size_t operator()(const isq::PendingAsync &PA) const noexcept {
    return PA.hash();
  }
};
} // namespace std

#endif // ISQ_SEMANTICS_PENDINGASYNC_H
