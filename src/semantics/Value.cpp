//===- semantics/Value.cpp - Dynamic protocol values -----------------------===//

#include "semantics/Value.h"

#include "support/Hashing.h"

#include <algorithm>
#include <functional>

using namespace isq;

const char *isq::valueKindName(ValueKind K) {
  switch (K) {
  case ValueKind::Unit:
    return "unit";
  case ValueKind::Bool:
    return "bool";
  case ValueKind::Int:
    return "int";
  case ValueKind::Tuple:
    return "tuple";
  case ValueKind::Option:
    return "option";
  case ValueKind::Set:
    return "set";
  case ValueKind::Bag:
    return "bag";
  case ValueKind::Map:
    return "map";
  case ValueKind::Seq:
    return "seq";
  }
  return "<invalid>";
}

// Construction ---------------------------------------------------------------

Value Value::boolean(bool B) {
  Value V;
  V.Kind = ValueKind::Bool;
  V.Scalar = B ? 1 : 0;
  return V;
}

Value Value::integer(int64_t N) {
  Value V;
  V.Kind = ValueKind::Int;
  V.Scalar = N;
  return V;
}

Value Value::tuple(std::vector<Value> Elems) {
  Value V;
  V.Kind = ValueKind::Tuple;
  auto P = std::make_shared<Payload>();
  P->Elems = std::move(Elems);
  V.Data = std::move(P);
  return V;
}

Value Value::none() {
  Value V;
  V.Kind = ValueKind::Option;
  V.Data = std::make_shared<Payload>();
  return V;
}

Value Value::some(Value Inner) {
  Value V;
  V.Kind = ValueKind::Option;
  auto P = std::make_shared<Payload>();
  P->Elems.push_back(std::move(Inner));
  V.Data = std::move(P);
  return V;
}

Value Value::set(std::vector<Value> Elems) {
  std::sort(Elems.begin(), Elems.end());
  Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
  Value V;
  V.Kind = ValueKind::Set;
  auto P = std::make_shared<Payload>();
  P->Elems = std::move(Elems);
  V.Data = std::move(P);
  return V;
}

Value Value::bag(const std::vector<Value> &Elems) {
  Value V;
  V.Kind = ValueKind::Bag;
  V.Data = std::make_shared<Payload>();
  for (const Value &E : Elems)
    V = V.bagInsert(E);
  return V;
}

Value Value::map(std::vector<std::pair<Value, Value>> Pairs) {
  std::sort(Pairs.begin(), Pairs.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
#ifndef NDEBUG
  for (size_t I = 1; I < Pairs.size(); ++I)
    assert(Pairs[I - 1].first != Pairs[I].first && "duplicate map keys");
#endif
  Value V;
  V.Kind = ValueKind::Map;
  auto P = std::make_shared<Payload>();
  P->Pairs = std::move(Pairs);
  V.Data = std::move(P);
  return V;
}

Value Value::seq(std::vector<Value> Elems) {
  Value V;
  V.Kind = ValueKind::Seq;
  auto P = std::make_shared<Payload>();
  P->Elems = std::move(Elems);
  V.Data = std::move(P);
  return V;
}

// Element access --------------------------------------------------------------

static const std::vector<Value> &emptyElems() {
  static const std::vector<Value> Empty;
  return Empty;
}

static const std::vector<std::pair<Value, Value>> &emptyPairs() {
  static const std::vector<std::pair<Value, Value>> Empty;
  return Empty;
}

size_t Value::size() const {
  assert((Kind == ValueKind::Tuple || Kind == ValueKind::Set ||
          Kind == ValueKind::Seq || Kind == ValueKind::Option) &&
         "size() requires an element-carrying kind");
  return Data ? Data->Elems.size() : 0;
}

const Value &Value::elem(size_t I) const {
  assert(Data && I < Data->Elems.size() && "element index out of range");
  return Data->Elems[I];
}

const std::vector<Value> &Value::elems() const {
  return Data ? Data->Elems : emptyElems();
}

bool Value::isNone() const {
  assert(Kind == ValueKind::Option && "not an option");
  return !Data || Data->Elems.empty();
}

bool Value::isSome() const { return !isNone(); }

const Value &Value::getSome() const {
  assert(isSome() && "getSome() on none");
  return Data->Elems[0];
}

// Set operations ---------------------------------------------------------------

bool Value::setContains(const Value &Elem) const {
  assert(Kind == ValueKind::Set && "not a set");
  const auto &Es = elems();
  return std::binary_search(Es.begin(), Es.end(), Elem);
}

Value Value::setInsert(const Value &Elem) const {
  assert(Kind == ValueKind::Set && "not a set");
  if (setContains(Elem))
    return *this;
  std::vector<Value> Es = elems();
  Es.insert(std::lower_bound(Es.begin(), Es.end(), Elem), Elem);
  Value V;
  V.Kind = ValueKind::Set;
  auto P = std::make_shared<Payload>();
  P->Elems = std::move(Es);
  V.Data = std::move(P);
  return V;
}

Value Value::setErase(const Value &Elem) const {
  assert(Kind == ValueKind::Set && "not a set");
  if (!setContains(Elem))
    return *this;
  std::vector<Value> Es = elems();
  Es.erase(std::lower_bound(Es.begin(), Es.end(), Elem));
  Value V;
  V.Kind = ValueKind::Set;
  auto P = std::make_shared<Payload>();
  P->Elems = std::move(Es);
  V.Data = std::move(P);
  return V;
}

bool Value::setIsSubsetOf(const Value &Other) const {
  assert(Kind == ValueKind::Set && Other.Kind == ValueKind::Set &&
         "subset check requires sets");
  for (const Value &E : elems())
    if (!Other.setContains(E))
      return false;
  return true;
}

// Bag operations ----------------------------------------------------------------

const std::vector<std::pair<Value, Value>> &Value::bagEntries() const {
  assert(Kind == ValueKind::Bag && "not a bag");
  return Data ? Data->Pairs : emptyPairs();
}

uint64_t Value::bagSize() const {
  uint64_t N = 0;
  for (const auto &[Elem, Count] : bagEntries())
    N += static_cast<uint64_t>(Count.getInt());
  return N;
}

uint64_t Value::bagCount(const Value &Elem) const {
  for (const auto &[E, Count] : bagEntries())
    if (E == Elem)
      return static_cast<uint64_t>(Count.getInt());
  return 0;
}

Value Value::bagInsert(const Value &Elem, uint64_t Count) const {
  assert(Kind == ValueKind::Bag && "not a bag");
  if (Count == 0)
    return *this;
  std::vector<std::pair<Value, Value>> Entries = bagEntries();
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Elem,
      [](const auto &E, const Value &V) { return E.first < V; });
  if (It != Entries.end() && It->first == Elem)
    It->second = Value::integer(It->second.getInt() +
                                static_cast<int64_t>(Count));
  else
    Entries.insert(It, {Elem, Value::integer(static_cast<int64_t>(Count))});
  Value V;
  V.Kind = ValueKind::Bag;
  auto P = std::make_shared<Payload>();
  P->Pairs = std::move(Entries);
  V.Data = std::move(P);
  return V;
}

Value Value::bagErase(const Value &Elem, uint64_t Count) const {
  assert(Kind == ValueKind::Bag && "not a bag");
  std::vector<std::pair<Value, Value>> Entries = bagEntries();
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Elem,
      [](const auto &E, const Value &V) { return E.first < V; });
  assert(It != Entries.end() && It->first == Elem &&
         static_cast<uint64_t>(It->second.getInt()) >= Count &&
         "bagErase: not enough copies");
  int64_t Remaining = It->second.getInt() - static_cast<int64_t>(Count);
  if (Remaining == 0)
    Entries.erase(It);
  else
    It->second = Value::integer(Remaining);
  Value V;
  V.Kind = ValueKind::Bag;
  auto P = std::make_shared<Payload>();
  P->Pairs = std::move(Entries);
  V.Data = std::move(P);
  return V;
}

std::vector<Value> Value::bagFlatten() const {
  std::vector<Value> Out;
  for (const auto &[Elem, Count] : bagEntries())
    for (int64_t I = 0; I < Count.getInt(); ++I)
      Out.push_back(Elem);
  return Out;
}

std::vector<Value> Value::bagSubBagsOfSize(uint64_t K) const {
  assert(Kind == ValueKind::Bag && "not a bag");
  std::vector<Value> Result;
  if (K > bagSize())
    return Result;

  // Enumerate multiplicity choices per distinct element, recursively.
  const auto &Entries = bagEntries();
  std::vector<uint64_t> Chosen(Entries.size(), 0);
  std::function<void(size_t, uint64_t)> Go = [&](size_t Idx,
                                                 uint64_t Remaining) {
    if (Idx == Entries.size()) {
      if (Remaining != 0)
        return;
      Value Sub;
      Sub.Kind = ValueKind::Bag;
      auto P = std::make_shared<Payload>();
      for (size_t I = 0; I < Entries.size(); ++I)
        if (Chosen[I] > 0)
          P->Pairs.push_back(
              {Entries[I].first,
               Value::integer(static_cast<int64_t>(Chosen[I]))});
      Sub.Data = std::move(P);
      Result.push_back(std::move(Sub));
      return;
    }
    uint64_t Avail = static_cast<uint64_t>(Entries[Idx].second.getInt());
    uint64_t Max = std::min(Avail, Remaining);
    for (uint64_t C = 0; C <= Max; ++C) {
      Chosen[Idx] = C;
      Go(Idx + 1, Remaining - C);
    }
    Chosen[Idx] = 0;
  };
  Go(0, K);
  return Result;
}

// Map operations -----------------------------------------------------------------

const std::vector<std::pair<Value, Value>> &Value::mapEntries() const {
  assert(Kind == ValueKind::Map && "not a map");
  return Data ? Data->Pairs : emptyPairs();
}

std::optional<Value> Value::mapGet(const Value &Key) const {
  const auto &Entries = mapEntries();
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Key,
      [](const auto &E, const Value &V) { return E.first < V; });
  if (It != Entries.end() && It->first == Key)
    return It->second;
  return std::nullopt;
}

const Value &Value::mapAt(const Value &Key) const {
  const auto &Entries = mapEntries();
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Key,
      [](const auto &E, const Value &V) { return E.first < V; });
  assert(It != Entries.end() && It->first == Key && "mapAt: missing key");
  return It->second;
}

bool Value::mapContains(const Value &Key) const {
  return mapGet(Key).has_value();
}

Value Value::mapSet(const Value &Key, const Value &Val) const {
  assert(Kind == ValueKind::Map && "not a map");
  std::vector<std::pair<Value, Value>> Entries = mapEntries();
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Key,
      [](const auto &E, const Value &V) { return E.first < V; });
  if (It != Entries.end() && It->first == Key)
    It->second = Val;
  else
    Entries.insert(It, {Key, Val});
  Value V;
  V.Kind = ValueKind::Map;
  auto P = std::make_shared<Payload>();
  P->Pairs = std::move(Entries);
  V.Data = std::move(P);
  return V;
}

Value Value::mapErase(const Value &Key) const {
  assert(Kind == ValueKind::Map && "not a map");
  std::vector<std::pair<Value, Value>> Entries = mapEntries();
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Key,
      [](const auto &E, const Value &V) { return E.first < V; });
  if (It == Entries.end() || It->first != Key)
    return *this;
  Entries.erase(It);
  Value V;
  V.Kind = ValueKind::Map;
  auto P = std::make_shared<Payload>();
  P->Pairs = std::move(Entries);
  V.Data = std::move(P);
  return V;
}

uint64_t Value::mapSize() const { return mapEntries().size(); }

std::vector<Value> Value::mapKeys() const {
  std::vector<Value> Keys;
  for (const auto &[K, V] : mapEntries())
    Keys.push_back(K);
  return Keys;
}

// Seq operations -------------------------------------------------------------------

const Value &Value::seqFront() const {
  assert(Kind == ValueKind::Seq && Data && !Data->Elems.empty() &&
         "seqFront on empty seq");
  return Data->Elems.front();
}

Value Value::seqPushBack(const Value &Elem) const {
  assert(Kind == ValueKind::Seq && "not a seq");
  std::vector<Value> Es = elems();
  Es.push_back(Elem);
  return Value::seq(std::move(Es));
}

Value Value::seqPopFront() const {
  assert(Kind == ValueKind::Seq && Data && !Data->Elems.empty() &&
         "seqPopFront on empty seq");
  std::vector<Value> Es(Data->Elems.begin() + 1, Data->Elems.end());
  return Value::seq(std::move(Es));
}

// Comparison / hashing ----------------------------------------------------------------

int Value::compare(const Value &A, const Value &B) {
  if (A.Kind != B.Kind)
    return A.Kind < B.Kind ? -1 : 1;
  switch (A.Kind) {
  case ValueKind::Unit:
    return 0;
  case ValueKind::Bool:
  case ValueKind::Int:
    if (A.Scalar != B.Scalar)
      return A.Scalar < B.Scalar ? -1 : 1;
    return 0;
  case ValueKind::Tuple:
  case ValueKind::Option:
  case ValueKind::Set:
  case ValueKind::Seq: {
    const auto &AE = A.elems();
    const auto &BE = B.elems();
    size_t N = std::min(AE.size(), BE.size());
    for (size_t I = 0; I < N; ++I)
      if (int C = compare(AE[I], BE[I]))
        return C;
    if (AE.size() != BE.size())
      return AE.size() < BE.size() ? -1 : 1;
    return 0;
  }
  case ValueKind::Bag:
  case ValueKind::Map: {
    const auto &AP = A.Data ? A.Data->Pairs : emptyPairs();
    const auto &BP = B.Data ? B.Data->Pairs : emptyPairs();
    size_t N = std::min(AP.size(), BP.size());
    for (size_t I = 0; I < N; ++I) {
      if (int C = compare(AP[I].first, BP[I].first))
        return C;
      if (int C = compare(AP[I].second, BP[I].second))
        return C;
    }
    if (AP.size() != BP.size())
      return AP.size() < BP.size() ? -1 : 1;
    return 0;
  }
  }
  return 0;
}

namespace isq {
bool operator==(const Value &A, const Value &B) {
  return Value::compare(A, B) == 0;
}

bool operator<(const Value &A, const Value &B) {
  return Value::compare(A, B) < 0;
}
} // namespace isq

size_t Value::hash() const {
  if (Data && Data->HashMemo != 0)
    return Data->HashMemo;
  size_t Seed = static_cast<size_t>(Kind) * 0x9e3779b97f4a7c15ULL + 1;
  switch (Kind) {
  case ValueKind::Unit:
    break;
  case ValueKind::Bool:
  case ValueKind::Int:
    hashCombine(Seed, static_cast<size_t>(Scalar));
    break;
  case ValueKind::Tuple:
  case ValueKind::Option:
  case ValueKind::Set:
  case ValueKind::Seq:
    for (const Value &E : elems())
      hashCombine(Seed, E.hash());
    break;
  case ValueKind::Bag:
  case ValueKind::Map:
    for (const auto &[K, V] : (Data ? Data->Pairs : emptyPairs())) {
      hashCombine(Seed, K.hash());
      hashCombine(Seed, V.hash());
    }
    break;
  }
  if (Data) // 0 is the "not computed" sentinel; remap it without bit loss
    Data->HashMemo = Seed ? Seed : 0x9e3779b97f4a7c15ULL;
  return Data ? Data->HashMemo : Seed;
}

// Printing ---------------------------------------------------------------------------

std::string Value::str() const {
  switch (Kind) {
  case ValueKind::Unit:
    return "()";
  case ValueKind::Bool:
    return Scalar ? "true" : "false";
  case ValueKind::Int:
    return std::to_string(Scalar);
  case ValueKind::Tuple: {
    std::string Out = "(";
    for (size_t I = 0; I < elems().size(); ++I) {
      if (I)
        Out += ", ";
      Out += elems()[I].str();
    }
    return Out + ")";
  }
  case ValueKind::Option:
    return isNone() ? "none" : "some(" + getSome().str() + ")";
  case ValueKind::Set: {
    std::string Out = "set{";
    for (size_t I = 0; I < elems().size(); ++I) {
      if (I)
        Out += ", ";
      Out += elems()[I].str();
    }
    return Out + "}";
  }
  case ValueKind::Bag: {
    std::string Out = "bag{";
    bool First = true;
    for (const auto &[E, C] : bagEntries()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += E.str();
      if (C.getInt() != 1)
        Out += ":x" + std::to_string(C.getInt());
    }
    return Out + "}";
  }
  case ValueKind::Map: {
    std::string Out = "map{";
    bool First = true;
    for (const auto &[K, V] : mapEntries()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += K.str() + " -> " + V.str();
    }
    return Out + "}";
  }
  case ValueKind::Seq: {
    std::string Out = "seq[";
    for (size_t I = 0; I < elems().size(); ++I) {
      if (I)
        Out += ", ";
      Out += elems()[I].str();
    }
    return Out + "]";
  }
  }
  return "<invalid>";
}
