//===- semantics/Value.h - Dynamic protocol values --------------*- C++ -*-===//
///
/// \file
/// The value domain D of the paper's stores (§3). Values are immutable,
/// canonical (sets/bags/maps are kept sorted), totally ordered and hashable,
/// so stores and configurations can be deduplicated structurally during
/// explicit-state exploration. Compound values share their payload via
/// shared_ptr; "mutating" operations return new values.
///
/// Supported kinds: unit, bool, int, tuple, option, set, bag (multiset),
/// map (finite function), seq (FIFO list). Bags model the paper's
/// out-of-order channels; seqs model FIFO queues (Producer-Consumer).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SEMANTICS_VALUE_H
#define ISQ_SEMANTICS_VALUE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace isq {

/// Discriminator for Value. Used as a type tag; values of different kinds
/// compare by kind first.
enum class ValueKind : uint8_t {
  Unit,
  Bool,
  Int,
  Tuple,
  Option,
  Set,
  Bag,
  Map,
  Seq,
};

/// Returns a printable name for \p K ("int", "bag", ...).
const char *valueKindName(ValueKind K);

/// An immutable dynamic value.
class Value {
public:
  /// Default-constructs the unit value.
  Value() : Kind(ValueKind::Unit) {}

  // Constructors ----------------------------------------------------------

  static Value unit() { return Value(); }
  static Value boolean(bool B);
  static Value integer(int64_t N);
  /// An ordered, fixed-arity product.
  static Value tuple(std::vector<Value> Elems);
  /// The empty option.
  static Value none();
  /// An option holding \p Payload.
  static Value some(Value Payload);
  /// Builds a set; duplicates are collapsed.
  static Value set(std::vector<Value> Elems);
  /// Builds a bag (multiset); duplicates accumulate multiplicity.
  static Value bag(const std::vector<Value> &Elems);
  /// Builds a map; keys must be distinct.
  static Value map(std::vector<std::pair<Value, Value>> Pairs);
  /// Builds a FIFO sequence preserving order.
  static Value seq(std::vector<Value> Elems);

  // Inspectors ------------------------------------------------------------

  ValueKind kind() const { return Kind; }
  bool isUnit() const { return Kind == ValueKind::Unit; }

  bool getBool() const {
    assert(Kind == ValueKind::Bool && "not a bool");
    return Scalar != 0;
  }
  int64_t getInt() const {
    assert(Kind == ValueKind::Int && "not an int");
    return Scalar;
  }

  /// Tuple/seq/set element access (sets are in sorted order).
  size_t size() const;
  const Value &elem(size_t I) const;
  const std::vector<Value> &elems() const;

  /// Option access.
  bool isNone() const;
  bool isSome() const;
  const Value &getSome() const;

  // Set operations (value must be a set) -----------------------------------

  bool setContains(const Value &Elem) const;
  Value setInsert(const Value &Elem) const;
  Value setErase(const Value &Elem) const;
  uint64_t setSize() const { return size(); }
  /// True if this set is a subset of \p Other.
  bool setIsSubsetOf(const Value &Other) const;

  // Bag operations (value must be a bag) ------------------------------------

  /// Total number of elements counting multiplicity.
  uint64_t bagSize() const;
  uint64_t bagCount(const Value &Elem) const;
  Value bagInsert(const Value &Elem, uint64_t Count = 1) const;
  /// Removes \p Count copies; asserts enough copies exist.
  Value bagErase(const Value &Elem, uint64_t Count = 1) const;
  /// Distinct elements with their multiplicities, sorted.
  const std::vector<std::pair<Value, Value>> &bagEntries() const;
  /// Flattens to elements repeated per multiplicity.
  std::vector<Value> bagFlatten() const;
  /// Enumerates all sub-bags of exactly \p K elements (as bags). Used for
  /// nondeterministic receive of K messages from a channel.
  std::vector<Value> bagSubBagsOfSize(uint64_t K) const;

  // Map operations (value must be a map) ------------------------------------

  std::optional<Value> mapGet(const Value &Key) const;
  /// Lookup that asserts presence.
  const Value &mapAt(const Value &Key) const;
  bool mapContains(const Value &Key) const;
  Value mapSet(const Value &Key, const Value &Val) const;
  Value mapErase(const Value &Key) const;
  uint64_t mapSize() const;
  std::vector<Value> mapKeys() const;
  const std::vector<std::pair<Value, Value>> &mapEntries() const;

  // Seq operations (value must be a seq) -------------------------------------

  uint64_t seqSize() const { return size(); }
  const Value &seqFront() const;
  Value seqPushBack(const Value &Elem) const;
  Value seqPopFront() const;

  // Structural operations ----------------------------------------------------

  friend bool operator==(const Value &A, const Value &B);
  friend bool operator!=(const Value &A, const Value &B) { return !(A == B); }
  friend bool operator<(const Value &A, const Value &B);

  size_t hash() const;

  /// Renders the value for diagnostics, e.g. "bag{1, 2:x3}" or "(1, true)".
  std::string str() const;

private:
  struct Payload {
    /// Tuple/Option/Set/Seq elements (sets sorted).
    std::vector<Value> Elems;
    /// Map entries sorted by key; for bags, value is the Int multiplicity.
    std::vector<std::pair<Value, Value>> Pairs;
    /// Lazily memoized structural hash of the whole value (0 = not yet
    /// computed). Payloads are immutable after construction, so the memo
    /// is safe to share across copies.
    mutable size_t HashMemo = 0;
  };

  static int compare(const Value &A, const Value &B);

  ValueKind Kind;
  int64_t Scalar = 0;
  std::shared_ptr<const Payload> Data;
};

} // namespace isq

namespace std {
template <> struct hash<isq::Value> {
  size_t operator()(const isq::Value &V) const noexcept { return V.hash(); }
};
} // namespace std

#endif // ISQ_SEMANTICS_VALUE_H
