//===- semantics/Action.cpp - Gated atomic actions --------------------------===//

#include "semantics/Action.h"

using namespace isq;

std::string Transition::str() const {
  std::string Out = "-> " + Global.str() + " creating {";
  for (size_t I = 0; I < Created.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Created[I].str();
  }
  return Out + "}";
}
