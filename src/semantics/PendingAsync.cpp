//===- semantics/PendingAsync.cpp - Pending asynchronous calls -------------===//

#include "semantics/PendingAsync.h"

#include "support/Hashing.h"

using namespace isq;

size_t PendingAsync::hash() const {
  size_t Seed = Action.isValid() ? Action.index() + 0x9e3779b9ULL : 0;
  for (const Value &V : Args)
    hashCombine(Seed, V.hash());
  return Seed;
}

std::string PendingAsync::str() const {
  std::string Out = Action.isValid() ? Action.str() : "<invalid>";
  Out += "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Args[I].str();
  }
  return Out + ")";
}

std::string isq::toString(const PaMultiset &Omega) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[PA, Count] : Omega.entries()) {
    if (!First)
      Out += ", ";
    First = false;
    Out += PA.str();
    if (Count != 1)
      Out += ":x" + std::to_string(Count);
  }
  return Out + "}";
}
