//===- semantics/Symmetry.h - Orbit-canonical symmetry reduction -*- C++ -*-===//
///
/// \file
/// Scalarset-style symmetry reduction for the explicit-state engine. A
/// protocol built from interchangeable nodes declares one symmetric
/// node-ID sort (a finite integer domain); every permutation π of that
/// domain then acts on values, stores, pending asyncs and configurations,
/// and the engine explores the quotient graph by interning only the
/// lexicographically least image of each configuration (the *orbit
/// representative*).
///
/// Soundness rests on equivariance: if every action's gate and transition
/// relation commutes with π (succ(π·c) = π·succ(c)) and the initial store
/// is π-invariant, then the set of reachable orbits, the failure verdict,
/// and every π-invariant predicate (terminal-store membership up to π,
/// measure decrease with an orbit-invariant measure, commutation of
/// equivariant actions) coincide between the reduced and unreduced runs.
/// Equivariance is not checked statically; the `--no-symmetry` unreduced
/// path is kept as a differential oracle (see DESIGN.md "Symmetry
/// reduction").
///
/// A SymmetrySpec describes *where* node IDs live: a ValueShape per global
/// variable and per action-argument position marks the Id leaves inside
/// each value tree. Positions not covered by a shape are fixed points.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SEMANTICS_SYMMETRY_H
#define ISQ_SEMANTICS_SYMMETRY_H

#include "semantics/Configuration.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace isq {

/// A type skeleton locating symmetric node IDs inside a value. Shapes are
/// immutable and share their children; the `fixed` flag (no Id anywhere in
/// the subtree) lets the permutation short-circuit whole subtrees.
class ValueShape {
public:
  enum class Kind : uint8_t {
    Plain,  ///< No node IDs anywhere below (any value kind).
    Id,     ///< An Int drawn from the symmetric sort.
    Tuple,  ///< Per-element child shapes.
    Option, ///< One child: the payload shape.
    Set,    ///< One child: the element shape.
    Bag,    ///< One child: the element shape.
    Seq,    ///< One child: the element shape.
    Map,    ///< Two children: key shape, value shape.
  };

  /// Default: a plain (permutation-fixed) value.
  ValueShape() = default;

  static ValueShape plain() { return ValueShape(); }
  static ValueShape id();
  static ValueShape tuple(std::vector<ValueShape> Elems);
  static ValueShape option(ValueShape Payload);
  static ValueShape setOf(ValueShape Elem);
  static ValueShape bagOf(ValueShape Elem);
  static ValueShape seqOf(ValueShape Elem);
  static ValueShape mapOf(ValueShape Key, ValueShape Val);

  Kind kind() const { return K; }
  /// True when no Id occurs in this subtree: permutation is the identity.
  bool fixed() const { return Fixed; }
  size_t numChildren() const { return Children ? Children->size() : 0; }
  const ValueShape &child(size_t I) const {
    assert(Children && I < Children->size() && "shape child out of range");
    return (*Children)[I];
  }

private:
  ValueShape(Kind K, bool Fixed,
             std::shared_ptr<const std::vector<ValueShape>> Children)
      : K(K), Fixed(Fixed), Children(std::move(Children)) {}

  Kind K = Kind::Plain;
  bool Fixed = true;
  std::shared_ptr<const std::vector<ValueShape>> Children;
};

/// The declared symmetry of a program: one symmetric sort (name + finite
/// integer domain), the shapes of the global variables and action
/// arguments that mention it, and the induced group action on
/// configurations. Immutable once attached to a Program (the engine shares
/// it across threads).
class SymmetrySpec {
public:
  /// Domains are capped so the full permutation group stays enumerable
  /// (8! = 40320 images per canonicalization in the worst case).
  static constexpr size_t MaxDomainSize = 8;

  /// \p Domain is the set of node IDs (deduplicated and sorted here);
  /// must be non-empty and at most MaxDomainSize elements.
  SymmetrySpec(std::string SortName, std::vector<int64_t> Domain);

  /// Declares the shape of global variable \p Var. Unshaped variables are
  /// fixed points.
  void setGlobalShape(Symbol Var, ValueShape Shape);
  /// Declares the per-argument shapes of action \p Name. Unshaped actions
  /// have all-plain arguments.
  void setActionShape(Symbol Name, std::vector<ValueShape> ArgShapes);

  const std::string &sortName() const { return SortName; }
  const std::vector<int64_t> &domain() const { return Domain; }
  size_t numPermutations() const { return Perms.size(); }
  /// The \p I-th permutation as an image vector; perm(0) is the identity.
  const std::vector<int64_t> &perm(size_t I) const { return Perms[I]; }

  /// The declared argument shapes of action \p Name, or null when the
  /// action carries no node IDs. Consumers (e.g. the driver's measure)
  /// use this to keep their own functions orbit-invariant.
  const std::vector<ValueShape> *actionShapes(Symbol Name) const {
    auto It = ActionShapes.find(Name);
    return It == ActionShapes.end() ? nullptr : &It->second;
  }
  /// The declared shape of global variable \p Var, or null when unshaped.
  const ValueShape *globalShape(Symbol Var) const {
    auto It = GlobalShapes.find(Var);
    return It == GlobalShapes.end() ? nullptr : &It->second;
  }

  /// Applies the permutation Domain[i] → Image[i] to \p V along \p Shape.
  /// Ints at Id positions outside the domain are fixed points (the action
  /// remains a group action on all values).
  Value permuteValue(const Value &V, const ValueShape &Shape,
                     const std::vector<int64_t> &Image) const;
  Store permuteStore(const Store &G, const std::vector<int64_t> &Image) const;
  PendingAsync permutePendingAsync(const PendingAsync &PA,
                                   const std::vector<int64_t> &Image) const;
  /// Applies the permutation to every pending async in \p Omega.
  PaMultiset permuteOmega(const PaMultiset &Omega,
                          const std::vector<int64_t> &Image) const;
  Configuration
  permuteConfiguration(const Configuration &C,
                       const std::vector<int64_t> &Image) const;

  /// The lexicographically least image of \p G over the full group. When
  /// \p MinPerms is non-null it receives the indices of every permutation
  /// achieving that minimum (the coset of the canonical store's
  /// stabilizer, never empty). Configurations compare store-first, so
  /// canonicalizing a configuration only has to permute Ω under these
  /// permutations — the engine caches this per interned store, which is
  /// what makes the quotient cheaper than the space it saves.
  Store canonicalStore(const Store &G,
                       std::vector<uint32_t> *MinPerms = nullptr) const;

  /// The orbit representative of \p C: the lexicographically least image
  /// over the full permutation group. When \p OrbitSize is non-null it
  /// receives the number of *distinct* images (the true orbit size, by
  /// orbit-stabilizer). Failure configurations are their own orbit.
  Configuration canonical(const Configuration &C,
                          uint64_t *OrbitSize = nullptr) const;

  /// All distinct images of \p G, sorted. Used by the refinement
  /// cross-check to expand a canonical terminal store back to its orbit.
  std::vector<Store> storeOrbit(const Store &G) const;

  /// True iff every permutation fixes \p G. Checked via the adjacent
  /// transpositions (which generate the full group).
  bool isInvariantStore(const Store &G) const;

private:
  int64_t mapId(const std::vector<int64_t> &Image, int64_t N) const;

  std::string SortName;
  /// Sorted, distinct node IDs.
  std::vector<int64_t> Domain;
  /// Every permutation as an image vector (Domain[i] → Perms[p][i]);
  /// Perms[0] is the identity.
  std::vector<std::vector<int64_t>> Perms;
  std::unordered_map<Symbol, ValueShape> GlobalShapes;
  std::unordered_map<Symbol, std::vector<ValueShape>> ActionShapes;
};

} // namespace isq

#endif // ISQ_SEMANTICS_SYMMETRY_H
