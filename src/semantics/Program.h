//===- semantics/Program.h - Programs over atomic actions -------*- C++ -*-===//
///
/// \file
/// A program is a finite mapping from action names to gated atomic actions,
/// containing the dedicated name Main (§3). This header also provides the
/// operational semantics: the transition relation between configurations,
/// where any pending async may be scheduled next.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SEMANTICS_PROGRAM_H
#define ISQ_SEMANTICS_PROGRAM_H

#include "semantics/Action.h"
#include "semantics/Configuration.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace isq {

class SymmetrySpec;

/// A finite mapping from action names to actions. Value type; the
/// substitution P[A ↦ a] of the paper is withAction().
class Program {
public:
  /// The dedicated entry-point name.
  static Symbol mainSymbol() { return Symbol::get("Main"); }

  /// Registers \p A; replaces any action with the same name.
  void addAction(Action A);

  bool hasAction(Symbol Name) const {
    return Index.find(Name) != Index.end();
  }
  bool hasAction(const std::string &Name) const {
    return hasAction(Symbol::get(Name));
  }

  /// Looks up an action; asserts that it exists.
  const Action &action(Symbol Name) const;
  const Action &action(const std::string &Name) const {
    return action(Symbol::get(Name));
  }

  /// All registered action names, in registration order.
  std::vector<Symbol> actionNames() const;

  /// P[A ↦ a]: returns a copy with \p A replacing the action of the same
  /// name (which must already exist, per Prop. 3.3's usage).
  Program withAction(Action A) const;

  /// True if the program declares Main.
  bool hasMain() const { return hasAction(mainSymbol()); }

  /// Declares the program symmetric under the given spec. Symmetry is a
  /// property of the *whole* action set (every action must be
  /// equivariant), so withAction() drops the spec: substituting an action
  /// — e.g. a rank-ordered schedule invariant for Main, or the
  /// sequentialization produced by applyIS — may break equivariance, and
  /// the substituted program then explores unreduced.
  void setSymmetry(std::shared_ptr<const SymmetrySpec> Spec) {
    Sym = std::move(Spec);
  }
  /// The declared symmetry, or null for asymmetric programs.
  const std::shared_ptr<const SymmetrySpec> &symmetry() const { return Sym; }

private:
  std::vector<Action> Actions;
  std::unordered_map<Symbol, size_t> Index;
  std::shared_ptr<const SymmetrySpec> Sym;
};

/// Builds the initialized configuration (g, {(ℓ, Main)}) of §3.
Configuration initialConfiguration(Store Global,
                                   std::vector<Value> MainArgs = {});

/// Executes one occurrence of \p PA (which must be contained in \p C's
/// pending asyncs) and returns all successor configurations. A failed gate
/// yields the single failure configuration; a blocked action yields no
/// successors.
std::vector<Configuration> stepPendingAsync(const Program &P,
                                            const Configuration &C,
                                            const PendingAsync &PA);

/// All successors of \p C across every schedulable pending async.
std::vector<Configuration> successors(const Program &P,
                                      const Configuration &C);

/// True if some pending async of \p C has a true gate but no transition
/// (i.e. \p C is a deadlock if additionally no other PA can run) — used by
/// diagnostics.
bool hasBlockedPendingAsync(const Program &P, const Configuration &C);

} // namespace isq

#endif // ISQ_SEMANTICS_PROGRAM_H
