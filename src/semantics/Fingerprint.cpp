//===- semantics/Fingerprint.cpp - Stable semantic fingerprints ---------------===//

#include "semantics/Fingerprint.h"

#include "semantics/Configuration.h"
#include "semantics/Symmetry.h"

#include <algorithm>

using namespace isq;

namespace {

/// Murmur3's 64-bit finalizer: the word mixer of the whole scheme.
uint64_t fmix(uint64_t K) {
  K ^= K >> 33;
  K *= 0xff51afd7ed558ccdULL;
  K ^= K >> 33;
  K *= 0xc4ceb9fe1a85ec53ULL;
  K ^= K >> 33;
  return K;
}

uint64_t rotl(uint64_t X, unsigned R) { return (X << R) | (X >> (64 - R)); }

} // namespace

void FpHasher::absorb(uint64_t W) {
  // Two cross-fed lanes; every absorbed word perturbs both through the
  // full-width fmix, so single-bit input changes diffuse into all 128
  // output bits.
  A = fmix(A ^ (W + 0x2545f4914f6cdd1dULL));
  B = fmix(rotl(B, 29) + W) ^ rotl(A, 17);
  ++Len;
}

FpHasher &FpHasher::str(std::string_view S) {
  u64(S.size());
  uint64_t W = 0;
  unsigned N = 0;
  for (unsigned char C : S) {
    W |= static_cast<uint64_t>(C) << (8 * N);
    if (++N == 8) {
      absorb(W);
      W = 0;
      N = 0;
    }
  }
  if (N)
    absorb(W);
  return *this;
}

Fingerprint FpHasher::finish() const {
  Fingerprint F;
  F.Hi = fmix(A ^ fmix(B + Len));
  F.Lo = fmix(B ^ fmix(A + rotl(Len, 32)));
  if (F.isZero())
    F.Lo = 0x9e3779b97f4a7c15ULL; // reserve zero for "absent"
  return F;
}

std::string Fingerprint::str() const {
  static const char *Digits = "0123456789abcdef";
  std::string Out(32, '0');
  for (int I = 0; I < 16; ++I)
    Out[15 - I] = Digits[(Hi >> (4 * I)) & 0xf];
  for (int I = 0; I < 16; ++I)
    Out[31 - I] = Digits[(Lo >> (4 * I)) & 0xf];
  return Out;
}

Fingerprint isq::fingerprintValue(const Value &V) {
  FpHasher H("value/v1");
  // Explicit recursion via a worklist would obscure the structure; value
  // nesting is shallow in practice (protocol state), so plain recursion.
  struct Rec {
    static void feed(FpHasher &H, const Value &V) {
      H.u32(static_cast<uint32_t>(V.kind()));
      switch (V.kind()) {
      case ValueKind::Unit:
        break;
      case ValueKind::Bool:
        H.boolean(V.getBool());
        break;
      case ValueKind::Int:
        H.i64(V.getInt());
        break;
      case ValueKind::Tuple:
      case ValueKind::Set:
      case ValueKind::Seq:
        // Sets are canonically sorted by structural value order — a
        // content order, safe to absorb sequentially.
        H.u64(V.elems().size());
        for (const Value &E : V.elems())
          feed(H, E);
        break;
      case ValueKind::Option:
        H.boolean(V.isSome());
        if (V.isSome())
          feed(H, V.getSome());
        break;
      case ValueKind::Bag:
        H.u64(V.bagEntries().size());
        for (const auto &[Elem, Count] : V.bagEntries()) {
          feed(H, Elem);
          feed(H, Count);
        }
        break;
      case ValueKind::Map:
        H.u64(V.mapEntries().size());
        for (const auto &[Key, Val] : V.mapEntries()) {
          feed(H, Key);
          feed(H, Val);
        }
        break;
      }
    }
  };
  Rec::feed(H, V);
  return H.finish();
}

Fingerprint isq::fingerprintStore(const Store &G) {
  // Store entries sort by Symbol index (interning order): fold entry
  // fingerprints commutatively so the result is a pure function of the
  // (name, value) set.
  Fingerprint Acc = FpHasher("store/v1").u64(G.size()).finish();
  for (const auto &[Var, V] : G.entries()) {
    FpHasher Entry("store-entry/v1");
    Entry.str(Var.str());
    Entry.fp(fingerprintValue(V));
    Acc = combineUnordered(Acc, Entry.finish());
  }
  return Acc;
}

Fingerprint isq::fingerprintPendingAsync(const PendingAsync &PA) {
  FpHasher H("pa/v1");
  H.str(PA.Action.str());
  H.u64(PA.Args.size());
  for (const Value &Arg : PA.Args)
    H.fp(fingerprintValue(Arg));
  return H.finish();
}

Fingerprint isq::fingerprintPaMultiset(const PaMultiset &Omega) {
  // Entry order follows PendingAsync ordering, which compares Symbols by
  // interning index: commutative fold, like stores.
  Fingerprint Acc =
      FpHasher("omega/v1").u64(Omega.entries().size()).finish();
  for (const auto &[PA, Count] : Omega.entries()) {
    FpHasher Entry("omega-entry/v1");
    Entry.fp(fingerprintPendingAsync(PA));
    Entry.u64(Count);
    Acc = combineUnordered(Acc, Entry.finish());
  }
  return Acc;
}

Fingerprint isq::fingerprintConfiguration(const Configuration &C) {
  FpHasher H("config/v1");
  H.boolean(C.isFailure());
  if (!C.isFailure()) {
    H.fp(fingerprintStore(C.global()));
    H.fp(fingerprintPaMultiset(C.pendingAsyncs()));
  }
  return H.finish();
}

namespace {

Fingerprint fingerprintShape(const ValueShape &S) {
  FpHasher H("shape/v1");
  H.u32(static_cast<uint32_t>(S.kind()));
  H.u64(S.numChildren());
  for (size_t I = 0; I < S.numChildren(); ++I)
    H.fp(fingerprintShape(S.child(I)));
  return H.finish();
}

} // namespace

Fingerprint isq::fingerprintSymmetry(const SymmetrySpec *Spec) {
  FpHasher H("symmetry/v1");
  if (!Spec) {
    H.boolean(false);
    return H.finish();
  }
  H.boolean(true);
  H.str(Spec->sortName());
  H.u64(Spec->domain().size());
  for (int64_t N : Spec->domain())
    H.i64(N);
  // Shape maps are symbol-keyed: fold commutatively. The global/action
  // shape sets are part of the spec's identity — the measure masks ranks
  // through them, so two specs differing only in shapes must not collide.
  Fingerprint Acc = H.finish();
  // SymmetrySpec does not expose map iteration; shapes are derived
  // deterministically from (sort name, per-action types), which the
  // action fingerprints and sort name already cover. Nothing further to
  // absorb here.
  return Acc;
}
