//===- semantics/ActionCache.h - Transition memoization -----------*- C++ -*-===//
///
/// \file
/// A memoization layer for transition enumeration. The finite-instance
/// checkers evaluate the same action from the same (store, args) point
/// many times — once per configuration containing a matching PA — so a
/// per-check cache keyed by (action identity, store, args) removes the
/// dominant cost. Transition relations never observe Ω, which is what
/// makes this caching sound.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SEMANTICS_ACTIONCACHE_H
#define ISQ_SEMANTICS_ACTIONCACHE_H

#include "semantics/Action.h"
#include "support/Hashing.h"

#include <unordered_map>
#include <vector>

namespace isq {

/// Memoizes Action::transitions per (action instance, store, args).
/// Intended to live for the duration of one check; the referenced actions
/// must outlive the cache.
class TransitionCache {
public:
  /// Returns (and memoizes) \p A's transitions from (\p G, \p Args).
  const std::vector<Transition> &get(const Action &A, const Store &G,
                                     const std::vector<Value> &Args) {
    Key K{&A, G, Args};
    auto It = Map.find(K);
    if (It != Map.end())
      return It->second;
    return Map.emplace(std::move(K), A.transitions(G, Args))
        .first->second;
  }

private:
  struct Key {
    const void *ActionId;
    Store G;
    std::vector<Value> Args;

    bool operator==(const Key &O) const {
      return ActionId == O.ActionId && G == O.G && Args == O.Args;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t Seed = reinterpret_cast<size_t>(K.ActionId);
      hashCombine(Seed, K.G.hash());
      for (const Value &V : K.Args)
        hashCombine(Seed, V.hash());
      return Seed;
    }
  };

  std::unordered_map<Key, std::vector<Transition>, KeyHash> Map;
};

} // namespace isq

#endif // ISQ_SEMANTICS_ACTIONCACHE_H
