//===- lang/Hir.cpp - HIR printing ---------------------------------------------===//

#include "lang/Hir.h"

#include <cassert>

using namespace isq;
using namespace isq::asl;

namespace {

std::string indentOf(unsigned Indent) { return std::string(2 * Indent, ' '); }

std::string printBlock(const std::vector<hir::StmtPtr> &Body,
                       unsigned Indent) {
  std::string Out = "{\n";
  for (const hir::StmtPtr &S : Body)
    Out += hir::print(*S, Indent + 1);
  Out += indentOf(Indent) + "}";
  return Out;
}

std::string slotName(uint32_t Slot) {
  if (Slot == hir::NoSlot)
    return "%_";
  return "%" + std::to_string(Slot);
}

} // namespace

std::string hir::print(const hir::Expr &E) {
  switch (E.Kind) {
  case hir::ExprKind::IntLit:
    return std::to_string(E.IntValue);
  case hir::ExprKind::BoolLit:
    return E.IntValue ? "true" : "false";
  case hir::ExprKind::NoneLit:
    return "none";
  case hir::ExprKind::EmptyLit:
    return "empty:" + std::to_string(E.Type);
  case hir::ExprKind::LocalRef:
    return slotName(E.Slot);
  case hir::ExprKind::ConstRef:
    return "const:" + E.Name;
  case hir::ExprKind::GlobalRef:
    return "@" + E.Name;
  case hir::ExprKind::Index:
    return print(*E.Children[0]) + "[" + print(*E.Children[1]) + "]";
  case hir::ExprKind::Unary:
    return "(" + E.Op + " " + print(*E.Children[0]) + ")";
  case hir::ExprKind::Binary:
    return "(" + print(*E.Children[0]) + " " + E.Op + " " +
           print(*E.Children[1]) + ")";
  case hir::ExprKind::Call: {
    std::string Out = E.Name + "(";
    if (!E.Callee.empty())
      Out += E.Callee;
    for (size_t I = 0; I < E.Children.size(); ++I) {
      if (I || !E.Callee.empty())
        Out += ", ";
      Out += print(*E.Children[I]);
    }
    return Out + ")";
  }
  case hir::ExprKind::Some:
    return "some(" + print(*E.Children[0]) + ")";
  case hir::ExprKind::MapCompr:
    return "map " + slotName(E.Slot) + " in " + print(*E.Children[0]) +
           " .. " + print(*E.Children[1]) + " : " + print(*E.Children[2]);
  }
  assert(false && "unhandled HIR expression kind");
  return "";
}

std::string hir::print(const hir::Stmt &S, unsigned Indent) {
  std::string Pad = indentOf(Indent);
  switch (S.Kind) {
  case hir::StmtKind::Skip:
    return Pad + "skip;\n";
  case hir::StmtKind::Assert:
    return Pad + "assert " + print(*S.Exprs[0]) + ";\n";
  case hir::StmtKind::Await:
    return Pad + "await " + print(*S.Exprs[0]) + ";\n";
  case hir::StmtKind::Assign: {
    std::string Out = Pad + "@" + S.Name;
    for (size_t I = 0; I + 1 < S.Exprs.size(); ++I)
      Out += "[" + print(*S.Exprs[I]) + "]";
    return Out + " := " + print(*S.Exprs.back()) + ";\n";
  }
  case hir::StmtKind::If: {
    std::string Out =
        Pad + "if " + print(*S.Exprs[0]) + " " + printBlock(S.Body, Indent);
    if (!S.ElseBody.empty())
      Out += " else " + printBlock(S.ElseBody, Indent);
    return Out + "\n";
  }
  case hir::StmtKind::For:
    return Pad + "for " + slotName(S.Slot) + " in " + print(*S.Exprs[0]) +
           " .. " + print(*S.Exprs[1]) + " " + printBlock(S.Body, Indent) +
           "\n";
  case hir::StmtKind::Async: {
    std::string Out = Pad + "async " + S.Name + "(";
    for (size_t I = 0; I < S.Exprs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += print(*S.Exprs[I]);
    }
    return Out + ");\n";
  }
  case hir::StmtKind::Choose:
    return Pad + "choose " + slotName(S.Slot) + " in " +
           print(*S.Exprs[0]) + ";\n";
  }
  assert(false && "unhandled HIR statement kind");
  return "";
}

std::string hir::print(const hir::Module &M) {
  std::string Out;
  for (const std::string &C : M.ConstNames)
    Out += "const " + C + ";\n";
  for (const hir::Symmetric &S : M.Symmetrics)
    Out += "symmetric " + S.Name + ": " + print(*S.Lo) + " .. " +
           print(*S.Hi) + ";\n";
  for (const hir::Global &G : M.Globals)
    Out += "global @" + G.Name + ": " + M.Types.get(G.Type).str() +
           " := " + print(*G.Init) + ";\n";
  for (const hir::Action &A : M.Actions) {
    Out += "action " + A.Name + "(";
    for (size_t I = 0; I < A.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += slotName(A.Params[I].Slot) + ": " +
             M.Types.get(A.Params[I].Type).str();
    }
    Out += ") slots=" + std::to_string(A.NumSlots) +
           (A.UsesPending ? " pending " : " ") + printBlock(A.Body, 0) +
           "\n";
  }
  return Out;
}
