//===- lang/HirBuilder.h - typed AST to HIR -----------------------*- C++ -*-===//
///
/// \file
/// Lowers a bound, type-checked AST module to HIR: resolves every name
/// reference to a local slot, a constant, or a global using the binder's
/// symbol table; assigns a fresh slot to each parameter and binder; and
/// interns all types. Must only be called on a module that passed
/// bindModule and typeCheck — structural problems assert here.
///
/// instantiate() then closes the HIR over one concrete parameter
/// binding, replacing every ConstRef by an integer literal. The result
/// is the per-(program, binding) HIR the optimizer folds.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_HIRBUILDER_H
#define ISQ_LANG_HIRBUILDER_H

#include "lang/Binder.h"
#include "lang/Hir.h"

#include <cstdint>
#include <map>

namespace isq {
namespace asl {

/// Builds the HIR of \p M (bound and type-checked).
hir::Module buildHir(const Module &M, const SymbolTable &Syms);

/// Substitutes the resolved constant values into \p M, eliminating every
/// ConstRef node. \p Consts must bind each constant the module mentions
/// (guaranteed by resolveConstBindings).
void instantiate(hir::Module &M,
                 const std::map<std::string, int64_t> &Consts);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_HIRBUILDER_H
