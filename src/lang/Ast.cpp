//===- lang/Ast.cpp - ASL abstract syntax --------------------------------------===//

#include "lang/Ast.h"

using namespace isq;
using namespace isq::asl;

std::string TypeRef::str() const {
  switch (K) {
  case Kind::Invalid:
    return "<invalid>";
  case Kind::Int:
    return Sort.empty() ? "int" : Sort;
  case Kind::Bool:
    return "bool";
  case Kind::Option:
    return "option<" + Params[0].str() + ">";
  case Kind::Set:
    return "set<" + Params[0].str() + ">";
  case Kind::Bag:
    return "bag<" + Params[0].str() + ">";
  case Kind::Map:
    return "map<" + Params[0].str() + ", " + Params[1].str() + ">";
  case Kind::Seq:
    return "seq<" + Params[0].str() + ">";
  }
  return "<invalid>";
}
