//===- lang/Compile.cpp - ASL to semantic objects ----------------------------------===//

#include "lang/Compile.h"

#include "lang/Eval.h"
#include "lang/TypeCheck.h"

#include <memory>

using namespace isq;
using namespace isq::asl;

namespace {

bool exprUsesPending(const Expr &E) {
  if (E.Kind == ExprKind::Call &&
      (E.Name == "pending" || E.Name == "pending_le" ||
       E.Name == "pending_le_at"))
    return true;
  for (const ExprPtr &C : E.Children)
    if (exprUsesPending(*C))
      return true;
  return false;
}

bool stmtsUsePending(const std::vector<StmtPtr> &Stmts) {
  for (const StmtPtr &S : Stmts) {
    for (const ExprPtr &E : S->Exprs)
      if (exprUsesPending(*E))
        return true;
    if (stmtsUsePending(S->Body) || stmtsUsePending(S->ElseBody))
      return true;
  }
  return false;
}

/// True if the action's gate may observe Ω through pending().
bool actionUsesPending(const ActionDecl &A) {
  return stmtsUsePending(A.Body);
}

} // namespace

std::optional<CompiledModule>
asl::compileModule(const std::string &Source,
                   const std::map<std::string, int64_t> &ConstBindings,
                   std::vector<Diagnostic> &Diags) {
  std::optional<Module> Parsed = parseModule(Source, Diags);
  if (!Parsed)
    return std::nullopt;
  if (!typeCheck(*Parsed, Diags))
    return std::nullopt;

  // Validate the constant bindings.
  for (const ConstDecl &C : Parsed->Consts)
    if (!ConstBindings.count(C.Name))
      Diags.push_back(
          {"no binding supplied for constant '" + C.Name + "'", C.Line, 0});
  for (const auto &[Name, V] : ConstBindings) {
    (void)V;
    bool Known = false;
    for (const ConstDecl &C : Parsed->Consts)
      Known = Known || C.Name == Name;
    if (!Known)
      Diags.push_back({"binding for undeclared constant '" + Name + "'",
                       0, 0});
  }
  if (!Diags.empty())
    return std::nullopt;

  // The compiled actions share ownership of the module AST.
  auto Shared = std::make_shared<Module>(std::move(*Parsed));

  // Constants become pre-bound locals of every evaluation.
  Locals ConstLocals;
  for (const auto &[Name, V] : ConstBindings)
    ConstLocals[Name] = Value::integer(V);

  // Initial store: evaluate initializers in declaration order; later
  // initializers may read earlier variables.
  Store Init;
  for (const VarDecl &V : Shared->Vars)
    Init = Init.set(V.Name, evalExpr(*V.Init, Init, ConstLocals));

  // Compile the actions.
  CompiledModule Result;
  Result.InitialStore = Init;
  for (const ActionDecl &A : Shared->Actions) {
    size_t Arity = A.Params.size();
    const ActionDecl *Decl = &A;
    bool UsesPending = actionUsesPending(A);
    auto BindLocals = [Shared, Decl,
                       ConstLocals](const std::vector<Value> &Args) {
      Locals L = ConstLocals;
      for (size_t I = 0; I < Decl->Params.size(); ++I)
        L[Decl->Params[I].Name] = Args[I];
      return L;
    };
    Action::GateFn Gate = [Shared, Decl, BindLocals,
                           UsesPending](const GateContext &Ctx) {
      Locals L = BindLocals(Ctx.Args);
      if (UsesPending) {
        // Expose Ω to the pending builtins: a bag of
        // (action-symbol index, args...) tuples.
        Value Mirror = Value::bag({});
        for (const auto &[PA, Count] : Ctx.Omega.entries()) {
          std::vector<Value> Tuple;
          Tuple.push_back(Value::integer(
              static_cast<int64_t>(PA.Action.index())));
          for (const Value &Arg : PA.Args)
            Tuple.push_back(Arg);
          Mirror = Mirror.bagInsert(Value::tuple(std::move(Tuple)),
                                    Count);
        }
        L["__pending"] = std::move(Mirror);
      }
      // The gate is false iff some path can violate an assert.
      return !runBody(Decl->Body, Ctx.Global, L).CanFail;
    };
    Action::TransitionsFn Transitions =
        [Shared, Decl, BindLocals](const Store &G,
                                   const std::vector<Value> &Args) {
          return runBody(Decl->Body, G, BindLocals(Args)).Transitions;
        };
    // The evaluator is a pure function of (AST, store, locals), so the
    // enumerator may run from concurrent checker jobs.
    Result.P.addAction(Action(A.Name, Arity, std::move(Gate),
                              std::move(Transitions), UsesPending,
                              /*TransitionsThreadSafe=*/true));
  }
  return Result;
}
