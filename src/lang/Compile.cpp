//===- lang/Compile.cpp - ASL to semantic objects ----------------------------------===//

#include "lang/Compile.h"

#include "lang/Eval.h"
#include "lang/TypeCheck.h"
#include "semantics/Symmetry.h"

#include <memory>

using namespace isq;
using namespace isq::asl;

namespace {

bool exprUsesPending(const Expr &E) {
  if (E.Kind == ExprKind::Call &&
      (E.Name == "pending" || E.Name == "pending_le" ||
       E.Name == "pending_le_at"))
    return true;
  for (const ExprPtr &C : E.Children)
    if (exprUsesPending(*C))
      return true;
  return false;
}

bool stmtsUsePending(const std::vector<StmtPtr> &Stmts) {
  for (const StmtPtr &S : Stmts) {
    for (const ExprPtr &E : S->Exprs)
      if (exprUsesPending(*E))
        return true;
    if (stmtsUsePending(S->Body) || stmtsUsePending(S->ElseBody))
      return true;
  }
  return false;
}

/// True if the action's gate may observe Ω through pending().
bool actionUsesPending(const ActionDecl &A) {
  return stmtsUsePending(A.Body);
}

/// The value shape induced by an ASL type: Id leaves exactly where the
/// declared symmetric sort \p Sort is named.
ValueShape shapeOf(const TypeRef &T, const std::string &Sort) {
  using TK = TypeRef::Kind;
  switch (T.K) {
  case TK::Int:
    return T.Sort == Sort ? ValueShape::id() : ValueShape::plain();
  case TK::Option:
    return ValueShape::option(shapeOf(T.Params[0], Sort));
  case TK::Set:
    return ValueShape::setOf(shapeOf(T.Params[0], Sort));
  case TK::Bag:
    return ValueShape::bagOf(shapeOf(T.Params[0], Sort));
  case TK::Seq:
    return ValueShape::seqOf(shapeOf(T.Params[0], Sort));
  case TK::Map:
    return ValueShape::mapOf(shapeOf(T.Params[0], Sort),
                             shapeOf(T.Params[1], Sort));
  default:
    return ValueShape::plain();
  }
}

/// Minimal compile-time integer evaluator for constant initializers.
/// Only literals, references to already-resolved constants, unary minus,
/// and integer arithmetic are permitted.
std::optional<int64_t>
evalConstExpr(const Expr &E, const std::map<std::string, int64_t> &Resolved,
              std::vector<Diagnostic> &Diags) {
  auto Fail = [&](const std::string &Msg) -> std::optional<int64_t> {
    Diags.push_back({Msg, E.Line, E.Column, Severity::Error, E.File});
    return std::nullopt;
  };
  switch (E.Kind) {
  case ExprKind::IntLit:
    return E.IntValue;
  case ExprKind::VarRef: {
    auto It = Resolved.find(E.Name);
    if (It == Resolved.end())
      return Fail("constant initializer references '" + E.Name +
                  "', which is not a previously declared constant");
    return It->second;
  }
  case ExprKind::Unary: {
    if (E.Op != "-")
      return Fail("constant initializer must be an integer expression");
    auto V = evalConstExpr(*E.Children[0], Resolved, Diags);
    if (!V)
      return std::nullopt;
    return -*V;
  }
  case ExprKind::Binary: {
    auto L = evalConstExpr(*E.Children[0], Resolved, Diags);
    auto R = evalConstExpr(*E.Children[1], Resolved, Diags);
    if (!L || !R)
      return std::nullopt;
    if (E.Op == "+")
      return *L + *R;
    if (E.Op == "-")
      return *L - *R;
    if (E.Op == "*")
      return *L * *R;
    if (E.Op == "/" || E.Op == "%") {
      if (*R == 0)
        return Fail("division by zero in constant initializer");
      return E.Op == "/" ? *L / *R : *L % *R;
    }
    return Fail("constant initializer must be an integer expression");
  }
  default:
    return Fail(
        "constant initializer must be a compile-time integer expression");
  }
}

} // namespace

bool asl::resolveConstBindings(const Module &M,
                               const std::map<std::string, int64_t> &Bindings,
                               std::map<std::string, int64_t> &Resolved,
                               std::vector<Diagnostic> &Diags) {
  size_t Before = Diags.size();
  for (const ConstDecl &C : M.Consts) {
    auto It = Bindings.find(C.Name);
    if (It != Bindings.end()) {
      if (!C.IsParam && C.Init) {
        Diags.push_back({"constant '" + C.Name +
                             "' is derived and cannot be bound externally",
                         C.Line, C.Column, Severity::Error, C.File});
        continue;
      }
      Resolved[C.Name] = It->second;
      continue;
    }
    if (C.Init) {
      if (auto V = evalConstExpr(*C.Init, Resolved, Diags))
        Resolved[C.Name] = *V;
      continue;
    }
    Diags.push_back({"no binding supplied for constant '" + C.Name + "'",
                     C.Line, C.Column, Severity::Error, C.File});
  }
  for (const auto &[Name, V] : Bindings) {
    (void)V;
    bool Known = false;
    for (const ConstDecl &C : M.Consts)
      Known = Known || C.Name == Name;
    if (!Known)
      Diags.push_back(
          {"binding for undeclared constant '" + Name + "'", 0, 0});
  }
  return Diags.size() == Before;
}

std::optional<CompiledModule>
asl::compileModule(const std::string &Source,
                   const std::map<std::string, int64_t> &ConstBindings,
                   std::vector<Diagnostic> &Diags) {
  std::optional<Module> Parsed = parseModule(Source, Diags);
  if (!Parsed)
    return std::nullopt;
  for (const ImportDecl &I : Parsed->Imports)
    Diags.push_back({"imports require a module-resolving frontend (use "
                     "frontend::compileSource)",
                     I.Line, I.Column, Severity::Error, I.File});
  if (!Diags.empty())
    return std::nullopt;
  if (!typeCheck(*Parsed, Diags))
    return std::nullopt;
  std::map<std::string, int64_t> Resolved;
  if (!resolveConstBindings(*Parsed, ConstBindings, Resolved, Diags))
    return std::nullopt;
  return compileParsedModule(std::move(*Parsed), Resolved, Diags);
}

std::optional<CompiledModule>
asl::compileParsedModule(Module &&Parsed,
                         const std::map<std::string, int64_t> &ResolvedConsts,
                         std::vector<Diagnostic> &Diags) {
  // The compiled actions share ownership of the module AST.
  auto Shared = std::make_shared<Module>(std::move(Parsed));

  // Constants become pre-bound locals of every evaluation.
  Locals ConstLocals;
  for (const auto &[Name, V] : ResolvedConsts)
    ConstLocals[Name] = Value::integer(V);

  // Initial store: evaluate initializers in declaration order; later
  // initializers may read earlier variables.
  Store Init;
  for (const VarDecl &V : Shared->Vars)
    Init = Init.set(V.Name, evalExpr(*V.Init, Init, ConstLocals));

  // The declared symmetric sort, if any. The bounds are constant
  // expressions; the resulting domain must stay small enough for the
  // full permutation group to be enumerated, and the initial store must
  // be invariant under it (otherwise the quotient exploration would be
  // unsound and the declaration is rejected here).
  std::shared_ptr<SymmetrySpec> Sym;
  for (const SymmetricDecl &D : Shared->Symmetrics) {
    int64_t Lo = evalExpr(*D.Lo, Init, ConstLocals).getInt();
    int64_t Hi = evalExpr(*D.Hi, Init, ConstLocals).getInt();
    if (Lo > Hi) {
      Diags.push_back({"symmetric sort '" + D.Name + "' has empty domain " +
                           std::to_string(Lo) + " .. " + std::to_string(Hi),
                       D.Line, D.Column, Severity::Error, D.File});
      continue;
    }
    size_t Size = static_cast<size_t>(Hi - Lo + 1);
    if (Size > SymmetrySpec::MaxDomainSize) {
      Diags.push_back(
          {"symmetric sort '" + D.Name + "' has " + std::to_string(Size) +
               " members; at most " +
               std::to_string(SymmetrySpec::MaxDomainSize) + " supported",
           D.Line, D.Column, Severity::Error, D.File});
      continue;
    }
    std::vector<int64_t> Domain;
    for (int64_t N = Lo; N <= Hi; ++N)
      Domain.push_back(N);
    Sym = std::make_shared<SymmetrySpec>(D.Name, std::move(Domain));
    for (const VarDecl &V : Shared->Vars) {
      ValueShape Shape = shapeOf(V.Type, D.Name);
      if (!Shape.fixed())
        Sym->setGlobalShape(Symbol::get(V.Name), Shape);
    }
    for (const ActionDecl &A : Shared->Actions) {
      std::vector<ValueShape> ArgShapes;
      bool AnyId = false;
      for (const ParamDecl &P : A.Params) {
        ArgShapes.push_back(shapeOf(P.Type, D.Name));
        AnyId = AnyId || !ArgShapes.back().fixed();
      }
      if (AnyId)
        Sym->setActionShape(Symbol::get(A.Name), std::move(ArgShapes));
    }
    if (!Sym->isInvariantStore(Init)) {
      Diags.push_back(
          {"initial store is not invariant under permutations of "
           "symmetric sort '" +
               D.Name + "'",
           D.Line, D.Column, Severity::Error, D.File});
      Sym.reset();
    }
  }
  if (!Diags.empty())
    return std::nullopt;

  // Compile the actions.
  CompiledModule Result;
  Result.InitialStore = Init;
  for (const ActionDecl &A : Shared->Actions) {
    size_t Arity = A.Params.size();
    const ActionDecl *Decl = &A;
    bool UsesPending = actionUsesPending(A);
    auto BindLocals = [Shared, Decl,
                       ConstLocals](const std::vector<Value> &Args) {
      Locals L = ConstLocals;
      for (size_t I = 0; I < Decl->Params.size(); ++I)
        L[Decl->Params[I].Name] = Args[I];
      return L;
    };
    Action::GateFn Gate = [Shared, Decl, BindLocals,
                           UsesPending](const GateContext &Ctx) {
      Locals L = BindLocals(Ctx.Args);
      if (UsesPending) {
        // Expose Ω to the pending builtins: a bag of
        // (action-symbol index, args...) tuples.
        Value Mirror = Value::bag({});
        for (const auto &[PA, Count] : Ctx.Omega.entries()) {
          std::vector<Value> Tuple;
          Tuple.push_back(Value::integer(
              static_cast<int64_t>(PA.Action.index())));
          for (const Value &Arg : PA.Args)
            Tuple.push_back(Arg);
          Mirror = Mirror.bagInsert(Value::tuple(std::move(Tuple)),
                                    Count);
        }
        L["__pending"] = std::move(Mirror);
      }
      // The gate is false iff some path can violate an assert.
      return !runBody(Decl->Body, Ctx.Global, L).CanFail;
    };
    Action::TransitionsFn Transitions =
        [Shared, Decl, BindLocals](const Store &G,
                                   const std::vector<Value> &Args) {
          return runBody(Decl->Body, G, BindLocals(Args)).Transitions;
        };
    // The evaluator is a pure function of (AST, store, locals), so the
    // enumerator may run from concurrent checker jobs.
    Result.P.addAction(Action(A.Name, Arity, std::move(Gate),
                              std::move(Transitions), UsesPending,
                              /*TransitionsThreadSafe=*/true));
  }
  if (Sym)
    Result.P.setSymmetry(std::move(Sym));
  return Result;
}
