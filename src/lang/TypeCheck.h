//===- lang/TypeCheck.h - ASL type checker ------------------------*- C++ -*-===//
///
/// \file
/// Bidirectional type checker for ASL modules. Annotates every expression
/// with its resolved type (Expr::Type); empty collection literals `{}` /
/// `[]` receive their type from context (variable initializers and
/// assignment right-hand sides). Locals (parameters, loop and choose
/// variables) are immutable; only globals are assignable.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_TYPECHECK_H
#define ISQ_LANG_TYPECHECK_H

#include "lang/Ast.h"
#include "lang/Lexer.h"

namespace isq {
namespace asl {

/// Type-checks \p M in place (filling Expr::Type). Returns true when no
/// diagnostics were produced.
bool typeCheck(Module &M, std::vector<Diagnostic> &Diags);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_TYPECHECK_H
