//===- lang/Frontend.h - staged ASL frontend ----------------------*- C++ -*-===//
///
/// \file
/// The top-level frontend entry point. Two pipelines compile the same
/// surface language to the same CompiledModule:
///
///   v1 (legacy, differential oracle):
///     parse+imports -> typecheck -> resolve consts -> tree-walk compile
///   v2 (staged, default):
///     parse+imports -> bind -> typecheck -> resolve consts ->
///     build HIR -> instantiate -> optimize -> lower
///
/// Both share the lexer/parser, the module resolver, the type checker and
/// constant resolution, and both must produce bit-identical Programs for
/// every input (tested differentially over the example corpus). The
/// pipeline stops at the first failing stage; diagnostics leave this
/// entry with their file names resolved (FrontendDiagnostic::FileName).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_FRONTEND_H
#define ISQ_LANG_FRONTEND_H

#include "lang/Compile.h"

namespace isq {
namespace asl {
namespace frontend {

/// Which pipeline compiles the source. V2 is the default; V1 is kept as
/// the differential oracle (--frontend=v1).
enum class FrontendVersion { V1, V2 };

/// Compiles \p Source, binding constants and parameters from
/// \p ConstBindings. \p SourcePath is the display name of the main input
/// and the base for resolving its imports; when empty (e.g. a source
/// submitted over the wire), imports are unavailable and diagnostics name
/// the file "<input>". Returns std::nullopt on any error.
std::optional<CompiledModule>
compileSource(const std::string &Source, const std::string &SourcePath,
              const std::map<std::string, int64_t> &ConstBindings,
              FrontendVersion Version, std::vector<Diagnostic> &Diags);

} // namespace frontend
} // namespace asl
} // namespace isq

#endif // ISQ_LANG_FRONTEND_H
