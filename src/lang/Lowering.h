//===- lang/Lowering.h - HIR to semantic objects ------------------*- C++ -*-===//
///
/// \file
/// Lowers an instantiated (and usually optimized) HIR module into the
/// semantic framework, producing the same CompiledModule shape as the v1
/// compiler: one gated atomic Action per action declaration, the initial
/// store from the global initializers, and the symmetry specification
/// from the symmetric sort declaration. The lowering mirrors
/// compileParsedModule step for step — same evaluation order, same
/// diagnostics, same Action construction — so a source compiled through
/// HIR yields a Program bit-identical to its v1 compile.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_LOWERING_H
#define ISQ_LANG_LOWERING_H

#include "lang/Compile.h"
#include "lang/Hir.h"

namespace isq {
namespace asl {

/// Lowers \p M (which must be instantiated: no ConstRef nodes remain)
/// into a compiled module. Takes ownership; the compiled actions share
/// the HIR. Returns std::nullopt when a symmetric sort declaration is
/// rejected (empty or oversized domain, or non-invariant initial store).
std::optional<CompiledModule> lowerHir(hir::Module &&M,
                                       std::vector<Diagnostic> &Diags);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_LOWERING_H
