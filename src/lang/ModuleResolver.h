//===- lang/ModuleResolver.h - ASL import resolution --------------*- C++ -*-===//
///
/// \file
/// Resolves `import "file.asl";` declarations into a single merged
/// module. Imports are loaded depth-first and merged in post-order, so
/// the declarations of an imported file always precede the declarations
/// of its importer — an importer may reference imported constants, sorts,
/// variables, and actions, never the other way around. Import paths are
/// resolved relative to the directory of the importing file; a file
/// reached through several routes (diamond imports) is merged exactly
/// once, and an import cycle is a diagnosed error.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_MODULERESOLVER_H
#define ISQ_LANG_MODULERESOLVER_H

#include "lang/Ast.h"

#include <functional>
#include <optional>
#include <string>

namespace isq {
namespace asl {

/// Loads the text of an imported module by path (as resolved against the
/// importing file's directory). Returns std::nullopt when the file cannot
/// be read. An empty function disables imports entirely (e.g. for sources
/// submitted over the wire, which have no directory to resolve against).
using ModuleLoader =
    std::function<std::optional<std::string>(const std::string &Path)>;

/// A loader that reads files from disk.
ModuleLoader diskLoader();

/// Parses \p Source (registered in \p SM as file 0 under \p SourcePath,
/// or "<input>" when the path is empty) and resolves its imports
/// recursively through \p Loader. Returns the merged module, or
/// std::nullopt with diagnostics on any lexical, syntactic, or import
/// error.
std::optional<Module> resolveModules(const std::string &Source,
                                     const std::string &SourcePath,
                                     const ModuleLoader &Loader,
                                     SourceManager &SM,
                                     std::vector<Diagnostic> &Diags);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_MODULERESOLVER_H
