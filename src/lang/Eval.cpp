//===- lang/Eval.cpp - ASL evaluator ---------------------------------------------===//

#include "lang/Eval.h"

#include "support/Symbol.h"

#include <functional>
#include <optional>

using namespace isq;
using namespace isq::asl;

namespace {

using TK = TypeRef::Kind;

/// Builds the empty value of ASL type \p T.
Value emptyValueOf(const TypeRef &T) {
  switch (T.K) {
  case TK::Int:
    return Value::integer(0);
  case TK::Bool:
    return Value::boolean(false);
  case TK::Option:
    return Value::none();
  case TK::Set:
    return Value::set({});
  case TK::Bag:
    return Value::bag({});
  case TK::Map:
    return Value::map({});
  case TK::Seq:
    return Value::seq({});
  case TK::Invalid:
    break;
  }
  assert(false && "empty value of invalid type");
  return Value::unit();
}

Value evalCall(const Expr &E, const Store &G, const Locals &L) {
  auto Arg = [&](size_t I) { return evalExpr(*E.Children[I], G, L); };

  if (E.Name == "pending" || E.Name == "pending_le" ||
      E.Name == "pending_le_at") {
    // The pending-async mirror is provided by the compiler under the
    // reserved local "__pending": a bag of tuples (action-symbol index,
    // args...). Absent when evaluating transition relations, where all
    // pending counts are 0.
    auto It = L.find("__pending");
    if (It == L.end())
      return Value::integer(0);
    int64_t WantIdx = static_cast<int64_t>(
        Symbol::get(E.Children[0]->Name).index());
    std::optional<int64_t> MaxFirst, ExactSecond;
    if (E.Children.size() >= 2)
      MaxFirst = evalExpr(*E.Children[1], G, L).getInt();
    if (E.Children.size() >= 3)
      ExactSecond = evalExpr(*E.Children[2], G, L).getInt();
    int64_t Total = 0;
    for (const auto &[PaTuple, Count] : It->second.bagEntries()) {
      if (PaTuple.elem(0).getInt() != WantIdx)
        continue;
      if (MaxFirst &&
          (PaTuple.size() < 2 || PaTuple.elem(1).getInt() > *MaxFirst))
        continue;
      if (ExactSecond &&
          (PaTuple.size() < 3 || PaTuple.elem(2).getInt() != *ExactSecond))
        continue;
      Total += Count.getInt();
    }
    return Value::integer(Total);
  }

  if (E.Name == "size") {
    Value C = Arg(0);
    switch (C.kind()) {
    case ValueKind::Set:
      return Value::integer(static_cast<int64_t>(C.setSize()));
    case ValueKind::Bag:
      return Value::integer(static_cast<int64_t>(C.bagSize()));
    case ValueKind::Seq:
      return Value::integer(static_cast<int64_t>(C.seqSize()));
    case ValueKind::Map:
      return Value::integer(static_cast<int64_t>(C.mapSize()));
    default:
      assert(false && "size() on non-collection");
      return Value::integer(0);
    }
  }
  if (E.Name == "contains") {
    Value C = Arg(0), Elem = Arg(1);
    if (C.kind() == ValueKind::Set)
      return Value::boolean(C.setContains(Elem));
    return Value::boolean(C.bagCount(Elem) > 0);
  }
  if (E.Name == "has_key")
    return Value::boolean(Arg(0).mapContains(Arg(1)));
  if (E.Name == "insert") {
    Value C = Arg(0), Elem = Arg(1);
    return C.kind() == ValueKind::Set ? C.setInsert(Elem)
                                      : C.bagInsert(Elem);
  }
  if (E.Name == "erase") {
    Value C = Arg(0), Elem = Arg(1);
    return C.kind() == ValueKind::Set ? C.setErase(Elem)
                                      : C.bagErase(Elem);
  }
  if (E.Name == "is_some")
    return Value::boolean(Arg(0).isSome());
  if (E.Name == "the")
    return Arg(0).getSome();
  if (E.Name == "max" || E.Name == "min") {
    Value C = Arg(0);
    std::vector<Value> Elems = C.kind() == ValueKind::Set
                                   ? C.elems()
                                   : C.bagFlatten();
    assert(!Elems.empty() && "max/min of empty collection");
    int64_t Best = Elems[0].getInt();
    for (const Value &V : Elems)
      Best = E.Name == "max" ? std::max(Best, V.getInt())
                             : std::min(Best, V.getInt());
    return Value::integer(Best);
  }
  if (E.Name == "front")
    return Arg(0).seqFront();
  if (E.Name == "push_back")
    return Arg(0).seqPushBack(Arg(1));
  if (E.Name == "pop_front")
    return Arg(0).seqPopFront();
  if (E.Name == "sub_bags") {
    Value C = Arg(0);
    int64_t K = Arg(1).getInt();
    assert(K >= 0 && "sub_bags with negative size");
    return Value::set(C.bagSubBagsOfSize(static_cast<uint64_t>(K)));
  }
  if (E.Name == "subsets") {
    const Value C = Arg(0);
    const std::vector<Value> &Elems = C.elems();
    assert(Elems.size() <= 16 && "subsets() limited to 16 elements");
    std::vector<Value> Out;
    for (uint64_t Mask = 0; Mask < (uint64_t(1) << Elems.size()); ++Mask) {
      std::vector<Value> Sub;
      for (size_t I = 0; I < Elems.size(); ++I)
        if (Mask & (uint64_t(1) << I))
          Sub.push_back(Elems[I]);
      Out.push_back(Value::set(std::move(Sub)));
    }
    return Value::set(std::move(Out));
  }
  if (E.Name == "diff") {
    Value A = Arg(0), B = Arg(1);
    if (A.kind() == ValueKind::Set) {
      for (const Value &Elem : B.elems())
        A = A.setErase(Elem);
      return A;
    }
    for (const auto &[Elem, Count] : B.bagEntries())
      A = A.bagErase(Elem, static_cast<uint64_t>(Count.getInt()));
    return A;
  }
  if (E.Name == "keys")
    return Value::set(Arg(0).mapKeys());
  assert(false && "unknown builtin survived type checking");
  return Value::unit();
}

} // namespace

Value asl::evalExpr(const Expr &E, const Store &G, const Locals &L) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return Value::integer(E.IntValue);
  case ExprKind::BoolLit:
    return Value::boolean(E.IntValue != 0);
  case ExprKind::NoneLit:
    return Value::none();
  case ExprKind::EmptyLit:
    return emptyValueOf(E.Type);
  case ExprKind::VarRef: {
    auto It = L.find(E.Name);
    if (It != L.end())
      return It->second;
    return G.get(E.Name);
  }
  case ExprKind::Index: {
    Value Base = evalExpr(*E.Children[0], G, L);
    Value Key = evalExpr(*E.Children[1], G, L);
    return Base.mapAt(Key);
  }
  case ExprKind::Unary: {
    Value V = evalExpr(*E.Children[0], G, L);
    if (E.Op == "-")
      return Value::integer(-V.getInt());
    return Value::boolean(!V.getBool());
  }
  case ExprKind::Binary: {
    // Short-circuit booleans first.
    if (E.Op == "&&") {
      if (!evalExpr(*E.Children[0], G, L).getBool())
        return Value::boolean(false);
      return evalExpr(*E.Children[1], G, L);
    }
    if (E.Op == "||") {
      if (evalExpr(*E.Children[0], G, L).getBool())
        return Value::boolean(true);
      return evalExpr(*E.Children[1], G, L);
    }
    Value A = evalExpr(*E.Children[0], G, L);
    Value B = evalExpr(*E.Children[1], G, L);
    if (E.Op == "==")
      return Value::boolean(A == B);
    if (E.Op == "!=")
      return Value::boolean(A != B);
    if (E.Op == "<")
      return Value::boolean(A.getInt() < B.getInt());
    if (E.Op == "<=")
      return Value::boolean(A.getInt() <= B.getInt());
    if (E.Op == ">")
      return Value::boolean(A.getInt() > B.getInt());
    if (E.Op == ">=")
      return Value::boolean(A.getInt() >= B.getInt());
    if (E.Op == "+")
      return Value::integer(A.getInt() + B.getInt());
    if (E.Op == "-")
      return Value::integer(A.getInt() - B.getInt());
    if (E.Op == "*")
      return Value::integer(A.getInt() * B.getInt());
    if (E.Op == "/") {
      assert(B.getInt() != 0 && "division by zero");
      return Value::integer(A.getInt() / B.getInt());
    }
    assert(E.Op == "%" && "unknown binary operator");
    assert(B.getInt() != 0 && "modulo by zero");
    return Value::integer(A.getInt() % B.getInt());
  }
  case ExprKind::Call:
    return evalCall(E, G, L);
  case ExprKind::SomeExpr:
    return Value::some(evalExpr(*E.Children[0], G, L));
  case ExprKind::MapCompr: {
    int64_t Lo = evalExpr(*E.Children[0], G, L).getInt();
    int64_t Hi = evalExpr(*E.Children[1], G, L).getInt();
    std::vector<std::pair<Value, Value>> Pairs;
    Locals Inner = L;
    for (int64_t I = Lo; I <= Hi; ++I) {
      Inner[E.Name] = Value::integer(I);
      Pairs.push_back({Value::integer(I), evalExpr(*E.Children[2], G,
                                                   Inner)});
    }
    return Value::map(std::move(Pairs));
  }
  }
  assert(false && "unhandled expression kind");
  return Value::unit();
}

namespace {

/// One control path being executed.
struct PathState {
  Store G;
  Locals L;
  std::vector<PendingAsync> Created;
};

/// Path enumeration engine (continuation-passing over statement lists).
struct Runner {
  BodyOutcome Outcome;

  /// Writes \p Rhs through the index chain of an assignment.
  static Value updateNested(const Value &Base,
                            const std::vector<Value> &Indices, size_t Depth,
                            const Value &Rhs) {
    if (Depth == Indices.size())
      return Rhs;
    return Base.mapSet(
        Indices[Depth],
        updateNested(Base.mapAt(Indices[Depth]), Indices, Depth + 1, Rhs));
  }

  void runList(const std::vector<StmtPtr> &Stmts, size_t Index,
               PathState State) {
    if (Index == Stmts.size()) {
      Outcome.Transitions.emplace_back(std::move(State.G),
                                       std::move(State.Created));
      return;
    }
    const Stmt &S = *Stmts[Index];
    switch (S.Kind) {
    case StmtKind::Skip:
      runList(Stmts, Index + 1, std::move(State));
      return;
    case StmtKind::Assert:
      if (!evalExpr(*S.Exprs[0], State.G, State.L).getBool()) {
        Outcome.CanFail = true;
        return; // the path fails; no transition
      }
      runList(Stmts, Index + 1, std::move(State));
      return;
    case StmtKind::Await:
      if (!evalExpr(*S.Exprs[0], State.G, State.L).getBool())
        return; // the path blocks; no transition, no failure
      runList(Stmts, Index + 1, std::move(State));
      return;
    case StmtKind::Assign: {
      std::vector<Value> Indices;
      for (size_t I = 0; I + 1 < S.Exprs.size(); ++I)
        Indices.push_back(evalExpr(*S.Exprs[I], State.G, State.L));
      Value Rhs = evalExpr(*S.Exprs.back(), State.G, State.L);
      Value NewValue =
          Indices.empty()
              ? Rhs
              : updateNested(State.G.get(S.Name), Indices, 0, Rhs);
      State.G = State.G.set(S.Name, std::move(NewValue));
      runList(Stmts, Index + 1, std::move(State));
      return;
    }
    case StmtKind::Async: {
      std::vector<Value> Args;
      for (const ExprPtr &E : S.Exprs)
        Args.push_back(evalExpr(*E, State.G, State.L));
      State.Created.emplace_back(S.Name, std::move(Args));
      runList(Stmts, Index + 1, std::move(State));
      return;
    }
    case StmtKind::If: {
      bool Cond = evalExpr(*S.Exprs[0], State.G, State.L).getBool();
      const std::vector<StmtPtr> &Branch = Cond ? S.Body : S.ElseBody;
      // Run the branch, then continue with the remaining statements.
      runNested(Branch, std::move(State), Stmts, Index + 1);
      return;
    }
    case StmtKind::For: {
      int64_t Lo = evalExpr(*S.Exprs[0], State.G, State.L).getInt();
      int64_t Hi = evalExpr(*S.Exprs[1], State.G, State.L).getInt();
      runForIteration(S, Lo, Hi, std::move(State), Stmts, Index + 1);
      return;
    }
    case StmtKind::Choose: {
      Value C = evalExpr(*S.Exprs[0], State.G, State.L);
      std::vector<Value> Elems;
      switch (C.kind()) {
      case ValueKind::Set:
      case ValueKind::Seq:
        Elems = C.elems();
        break;
      case ValueKind::Bag:
        for (const auto &[Elem, Count] : C.bagEntries()) {
          (void)Count;
          Elems.push_back(Elem);
        }
        break;
      default:
        assert(false && "choose over non-collection");
      }
      // An empty collection blocks the path (no choice possible).
      for (const Value &Elem : Elems) {
        PathState Branch = State;
        Branch.L[S.Name] = Elem;
        runList(Stmts, Index + 1, std::move(Branch));
      }
      return;
    }
    }
  }

private:
  /// Runs \p Inner to completion, then resumes (\p Outer, \p OuterIndex).
  void runNested(const std::vector<StmtPtr> &Inner, PathState State,
                 const std::vector<StmtPtr> &Outer, size_t OuterIndex) {
    // Collect the inner block's endpoints by recursing with a sub-runner,
    // then continue each endpoint in the outer list. Locals flowing out of
    // the block (choose bindings) are intentionally block-scoped: restore
    // the outer locals.
    Runner Sub;
    Locals OuterLocals = State.L;
    Sub.runList(Inner, 0, std::move(State));
    Outcome.CanFail = Outcome.CanFail || Sub.Outcome.CanFail;
    for (Transition &T : Sub.Outcome.Transitions) {
      PathState Resumed;
      Resumed.G = std::move(T.Global);
      Resumed.L = OuterLocals;
      Resumed.Created = std::move(T.Created);
      runList(Outer, OuterIndex, std::move(Resumed));
    }
  }

  void runForIteration(const Stmt &S, int64_t I, int64_t Hi,
                       PathState State, const std::vector<StmtPtr> &Outer,
                       size_t OuterIndex) {
    if (I > Hi) {
      runList(Outer, OuterIndex, std::move(State));
      return;
    }
    // Bind the loop variable and run the body, then iterate.
    Runner Sub;
    Locals SavedLocals = State.L;
    State.L[S.Name] = Value::integer(I);
    Sub.runList(S.Body, 0, std::move(State));
    Outcome.CanFail = Outcome.CanFail || Sub.Outcome.CanFail;
    for (Transition &T : Sub.Outcome.Transitions) {
      PathState Next;
      Next.G = std::move(T.Global);
      Next.L = SavedLocals;
      Next.Created = std::move(T.Created);
      runForIteration(S, I + 1, Hi, std::move(Next), Outer, OuterIndex);
    }
  }
};

} // namespace

BodyOutcome asl::runBody(const std::vector<StmtPtr> &Body, const Store &G,
                         const Locals &L) {
  Runner R;
  R.runList(Body, 0, PathState{G, L, {}});
  return std::move(R.Outcome);
}
