//===- lang/ModuleResolver.cpp - ASL import resolution -------------------------===//

#include "lang/ModuleResolver.h"

#include "lang/Parser.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace isq;
using namespace isq::asl;

namespace {

/// Lexically normalized form of \p Path, used as the identity of a file
/// for diamond deduplication and cycle detection. Purely textual: two
/// spellings that normalize differently (e.g. via symlinks) count as
/// distinct files.
std::string normalized(const std::string &Path) {
  if (Path.empty())
    return Path;
  return std::filesystem::path(Path).lexically_normal().generic_string();
}

/// Resolves \p ImportPath against the directory of \p ImporterPath.
std::string joinRelative(const std::string &ImporterPath,
                         const std::string &ImportPath) {
  std::filesystem::path P(ImportPath);
  if (P.is_absolute() || ImporterPath.empty())
    return normalized(ImportPath);
  std::filesystem::path Dir =
      std::filesystem::path(ImporterPath).parent_path();
  return normalized((Dir / P).generic_string());
}

class Resolver {
public:
  Resolver(const ModuleLoader &Loader, SourceManager &SM,
           std::vector<Diagnostic> &Diags)
      : Loader(Loader), SM(SM), Diags(Diags) {}

  /// Resolves the imports of \p M (parsed from \p Path), then merges M's
  /// own declarations. Post-order: imported declarations come first.
  void resolve(Module &&M, const std::string &Path);

  bool failed() const { return Failed; }
  Module take() { return std::move(Merged); }

private:
  void error(const ImportDecl &At, std::string Message,
             std::string Note = "") {
    Diags.push_back({std::move(Message), At.Line, At.Column,
                     Severity::Error, At.File, 0, 0, "", std::move(Note)});
    Failed = true;
  }

  const ModuleLoader &Loader;
  SourceManager &SM;
  std::vector<Diagnostic> &Diags;
  /// Normalized paths of the files currently being resolved, outermost
  /// first; an import that names one of these closes a cycle.
  std::vector<std::string> Stack;
  std::set<std::string> Done;
  Module Merged;
  bool Failed = false;
};

void Resolver::resolve(Module &&M, const std::string &Path) {
  Stack.push_back(normalized(Path));
  for (const ImportDecl &I : M.Imports) {
    std::string Full = joinRelative(Path, I.Path);
    if (std::find(Stack.begin(), Stack.end(), Full) != Stack.end()) {
      std::string Chain;
      for (const std::string &S : Stack) {
        if (!Chain.empty())
          Chain += " -> ";
        Chain += S.empty() ? "<input>" : S;
      }
      error(I, "circular import of '" + I.Path + "'",
            "import chain: " + Chain + " -> " + Full);
      continue;
    }
    if (Done.count(Full))
      continue;
    Done.insert(Full);
    if (!Loader) {
      error(I, "imports are unavailable in this context (the source has "
               "no on-disk path to resolve '" +
                   I.Path + "' against)");
      continue;
    }
    std::optional<std::string> Text = Loader(Full);
    if (!Text) {
      error(I, "cannot open imported module '" + I.Path + "'",
            "resolved to '" + Full + "'");
      continue;
    }
    uint32_t FileId = SM.add(Full);
    std::optional<Module> Sub = parseModule(*Text, Diags, FileId);
    if (!Sub) {
      Failed = true;
      continue;
    }
    resolve(std::move(*Sub), Full);
  }
  Stack.pop_back();
  for (ConstDecl &C : M.Consts)
    Merged.Consts.push_back(std::move(C));
  for (SymmetricDecl &S : M.Symmetrics)
    Merged.Symmetrics.push_back(std::move(S));
  for (VarDecl &V : M.Vars)
    Merged.Vars.push_back(std::move(V));
  for (ActionDecl &A : M.Actions)
    Merged.Actions.push_back(std::move(A));
}

} // namespace

ModuleLoader asl::diskLoader() {
  return [](const std::string &Path) -> std::optional<std::string> {
    std::ifstream In(Path, std::ios::binary);
    if (!In)
      return std::nullopt;
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    return Buffer.str();
  };
}

std::optional<Module> asl::resolveModules(const std::string &Source,
                                          const std::string &SourcePath,
                                          const ModuleLoader &Loader,
                                          SourceManager &SM,
                                          std::vector<Diagnostic> &Diags) {
  if (SM.size() == 0)
    SM.add(SourcePath.empty() ? "<input>" : normalized(SourcePath));
  std::optional<Module> Main = parseModule(Source, Diags, /*FileId=*/0);
  if (!Main)
    return std::nullopt;
  if (Main->Imports.empty())
    return Main;
  Resolver R(Loader, SM, Diags);
  R.resolve(std::move(*Main), SourcePath);
  if (R.failed())
    return std::nullopt;
  return R.take();
}
