//===- lang/Printer.cpp - ASL pretty-printer -----------------------------------===//

#include "lang/Printer.h"

#include <cassert>

using namespace isq;
using namespace isq::asl;

namespace {

/// Precedence used for minimal parenthesization; mirrors the parser.
int precedenceOf(const std::string &Op) {
  if (Op == "||")
    return 1;
  if (Op == "&&")
    return 2;
  if (Op == "==" || Op == "!=")
    return 3;
  if (Op == "<" || Op == "<=" || Op == ">" || Op == ">=")
    return 4;
  if (Op == "+" || Op == "-")
    return 5;
  return 6; // * / %
}

/// Prints \p E, parenthesizing when its precedence is below \p MinPrec.
std::string printPrec(const Expr &E, int MinPrec) {
  if (E.Kind != ExprKind::Binary)
    return printExpr(E);
  int Prec = precedenceOf(E.Op);
  // Left-associative operators: the right operand needs one level more.
  std::string Body = printPrec(*E.Children[0], Prec) + " " + E.Op + " " +
                     printPrec(*E.Children[1], Prec + 1);
  if (Prec < MinPrec)
    return "(" + Body + ")";
  return Body;
}

std::string indentOf(unsigned Indent) {
  return std::string(2 * Indent, ' ');
}

std::string printBlock(const std::vector<StmtPtr> &Body, unsigned Indent) {
  std::string Out = "{\n";
  for (const StmtPtr &S : Body)
    Out += printStmt(*S, Indent + 1);
  Out += indentOf(Indent) + "}";
  return Out;
}

std::string printType(const TypeRef &T) { return T.str(); }

} // namespace

std::string asl::printExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return std::to_string(E.IntValue);
  case ExprKind::BoolLit:
    return E.IntValue ? "true" : "false";
  case ExprKind::NoneLit:
    return "none";
  case ExprKind::EmptyLit:
    return E.IntValue || E.Type.K == TypeRef::Kind::Seq ? "[]" : "{}";
  case ExprKind::VarRef:
    return E.Name;
  case ExprKind::Index:
    return printExpr(*E.Children[0]) + "[" + printExpr(*E.Children[1]) +
           "]";
  case ExprKind::Unary:
    return E.Op + printPrec(*E.Children[0], 7);
  case ExprKind::Binary:
    return printPrec(E, 0);
  case ExprKind::Call: {
    std::string Out = E.Name + "(";
    for (size_t I = 0; I < E.Children.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(*E.Children[I]);
    }
    return Out + ")";
  }
  case ExprKind::SomeExpr:
    return "some(" + printExpr(*E.Children[0]) + ")";
  case ExprKind::MapCompr:
    return "map " + E.Name + " in " + printExpr(*E.Children[0]) + " .. " +
           printExpr(*E.Children[1]) + " : " + printExpr(*E.Children[2]);
  }
  assert(false && "unhandled expression kind");
  return "";
}

std::string asl::printStmt(const Stmt &S, unsigned Indent) {
  std::string Pad = indentOf(Indent);
  switch (S.Kind) {
  case StmtKind::Skip:
    return Pad + "skip;\n";
  case StmtKind::Assert:
    return Pad + "assert " + printExpr(*S.Exprs[0]) + ";\n";
  case StmtKind::Await:
    return Pad + "await " + printExpr(*S.Exprs[0]) + ";\n";
  case StmtKind::Assign: {
    std::string Out = Pad + S.Name;
    for (size_t I = 0; I + 1 < S.Exprs.size(); ++I)
      Out += "[" + printExpr(*S.Exprs[I]) + "]";
    return Out + " := " + printExpr(*S.Exprs.back()) + ";\n";
  }
  case StmtKind::If: {
    std::string Out = Pad + "if " + printExpr(*S.Exprs[0]) + " " +
                      printBlock(S.Body, Indent);
    if (!S.ElseBody.empty())
      Out += " else " + printBlock(S.ElseBody, Indent);
    return Out + "\n";
  }
  case StmtKind::For:
    return Pad + "for " + S.Name + " in " + printExpr(*S.Exprs[0]) +
           " .. " + printExpr(*S.Exprs[1]) + " " +
           printBlock(S.Body, Indent) + "\n";
  case StmtKind::Async: {
    std::string Out = Pad + "async " + S.Name + "(";
    for (size_t I = 0; I < S.Exprs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(*S.Exprs[I]);
    }
    return Out + ");\n";
  }
  case StmtKind::Choose:
    return Pad + "choose " + S.Name + " in " + printExpr(*S.Exprs[0]) +
           ";\n";
  }
  assert(false && "unhandled statement kind");
  return "";
}

std::string asl::printModule(const Module &M) {
  std::string Out;
  for (const ImportDecl &I : M.Imports)
    Out += "import \"" + I.Path + "\";\n";
  if (!M.Imports.empty())
    Out += "\n";
  for (const ConstDecl &C : M.Consts) {
    Out += (C.IsParam ? "param " : "const ") + C.Name + ": int";
    if (C.Init)
      Out += " := " + printExpr(*C.Init);
    Out += ";\n";
  }
  for (const SymmetricDecl &D : M.Symmetrics)
    Out += "symmetric " + D.Name + ": " + printExpr(*D.Lo) + " .. " +
           printExpr(*D.Hi) + ";\n";
  if (!M.Consts.empty() || !M.Symmetrics.empty())
    Out += "\n";
  for (const VarDecl &V : M.Vars)
    Out += "var " + V.Name + ": " + printType(V.Type) + " := " +
           printExpr(*V.Init) + ";\n";
  if (!M.Vars.empty())
    Out += "\n";
  for (const ActionDecl &A : M.Actions) {
    Out += "action " + A.Name + "(";
    for (size_t I = 0; I < A.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += A.Params[I].Name + ": " + printType(A.Params[I].Type);
    }
    Out += ") " + printBlock(A.Body, 0) + "\n\n";
  }
  return Out;
}
