//===- lang/Compile.h - ASL to semantic objects -------------------*- C++ -*-===//
///
/// \file
/// Compiles a type-checked ASL module into the semantic framework: one
/// gated atomic Action per action declaration (gate = no path reaches a
/// violated assert; transitions = all complete paths) and the initial
/// store from the variable initializers. Integer constants (e.g. the
/// instance size n) are bound by the host at compile time.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_COMPILE_H
#define ISQ_LANG_COMPILE_H

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "semantics/Program.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace isq {
namespace asl {

/// A compiled module: the program and its initial store.
struct CompiledModule {
  Program P;
  Store InitialStore;
};

/// Parses, type-checks and compiles \p Source, binding the module's
/// constants from \p ConstBindings. Missing or extra bindings are
/// diagnosed. Returns std::nullopt on any error.
std::optional<CompiledModule>
compileModule(const std::string &Source,
              const std::map<std::string, int64_t> &ConstBindings,
              std::vector<Diagnostic> &Diags);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_COMPILE_H
