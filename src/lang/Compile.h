//===- lang/Compile.h - ASL to semantic objects -------------------*- C++ -*-===//
///
/// \file
/// Compiles a type-checked ASL module into the semantic framework: one
/// gated atomic Action per action declaration (gate = no path reaches a
/// violated assert; transitions = all complete paths) and the initial
/// store from the variable initializers. Integer constants (e.g. the
/// instance size n) are bound by the host at compile time.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_COMPILE_H
#define ISQ_LANG_COMPILE_H

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "semantics/Program.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace isq {
namespace asl {

/// A compiled module: the program and its initial store.
struct CompiledModule {
  Program P;
  Store InitialStore;
};

/// Parses, type-checks and compiles \p Source, binding the module's
/// constants from \p ConstBindings. Missing or extra bindings are
/// diagnosed. Returns std::nullopt on any error. This is the classic
/// single-file entry point; sources with imports must go through
/// frontend::compileSource, which resolves modules first.
std::optional<CompiledModule>
compileModule(const std::string &Source,
              const std::map<std::string, int64_t> &ConstBindings,
              std::vector<Diagnostic> &Diags);

/// Resolves every constant of \p M to a concrete value, in declaration
/// order: an external binding wins for host-bound consts and params, a
/// param default or derived-const initializer is folded otherwise (it may
/// reference constants declared before it). Diagnoses missing bindings,
/// bindings for undeclared or derived constants, and non-constant or
/// division-by-zero initializers. Returns false when diagnostics were
/// appended.
bool resolveConstBindings(const Module &M,
                          const std::map<std::string, int64_t> &Bindings,
                          std::map<std::string, int64_t> &Resolved,
                          std::vector<Diagnostic> &Diags);

/// Compiles an already parsed and type-checked module whose constants
/// have been resolved (see resolveConstBindings). Takes ownership of the
/// AST; the compiled actions share it.
std::optional<CompiledModule>
compileParsedModule(Module &&Parsed,
                    const std::map<std::string, int64_t> &ResolvedConsts,
                    std::vector<Diagnostic> &Diags);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_COMPILE_H
