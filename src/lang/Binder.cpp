//===- lang/Binder.cpp - ASL symbol binding ------------------------------------===//

#include "lang/Binder.h"

using namespace isq;
using namespace isq::asl;

namespace {

class Binder {
public:
  Binder(const Module &M, SymbolTable &Syms, std::vector<Diagnostic> &Diags)
      : M(M), Syms(Syms), Diags(Diags) {}

  bool run();

private:
  void error(SourceLoc At, std::string Message, std::string Note = "") {
    Diags.push_back({std::move(Message), At.Line, At.Column,
                     Severity::Error, At.File, 0, 0, "", std::move(Note)});
  }

  static std::string firstDeclaredNote(SourceLoc At) {
    return "first declared at line " + std::to_string(At.Line);
  }

  /// Reports globals referenced by \p E that are not in \p DeclaredSoFar.
  /// \p Bound holds comprehension binders currently in scope.
  void checkInitRefs(const Expr &E, const VarDecl &V,
                     const std::set<std::string> &DeclaredSoFar,
                     std::set<std::string> &Bound);

  const Module &M;
  SymbolTable &Syms;
  std::vector<Diagnostic> &Diags;
  /// Declaration site of every known name, for "first declared" notes.
  std::map<std::string, SourceLoc> DeclSites;
  bool Failed = false;
};

void Binder::checkInitRefs(const Expr &E, const VarDecl &V,
                           const std::set<std::string> &DeclaredSoFar,
                           std::set<std::string> &Bound) {
  if (E.Kind == ExprKind::VarRef && !Bound.count(E.Name) &&
      !Syms.Consts.count(E.Name) && !DeclaredSoFar.count(E.Name)) {
    if (Syms.Globals.count(E.Name)) {
      error(E.loc(),
            "initializer of '" + V.Name + "' reads '" + E.Name +
                "' before its declaration",
            "global initializers run in declaration order");
      Failed = true;
    }
    // Unknown names fall through to the type checker's resolution.
    return;
  }
  if (E.Kind == ExprKind::MapCompr) {
    checkInitRefs(*E.Children[0], V, DeclaredSoFar, Bound);
    checkInitRefs(*E.Children[1], V, DeclaredSoFar, Bound);
    bool Fresh = Bound.insert(E.Name).second;
    checkInitRefs(*E.Children[2], V, DeclaredSoFar, Bound);
    if (Fresh)
      Bound.erase(E.Name);
    return;
  }
  for (const ExprPtr &C : E.Children)
    checkInitRefs(*C, V, DeclaredSoFar, Bound);
}

bool Binder::run() {
  // Constants, in declaration order.
  for (const ConstDecl &C : M.Consts) {
    SourceLoc At{C.File, C.Line, C.Column};
    if (!Syms.Consts.insert(C.Name).second) {
      error(At, "duplicate constant '" + C.Name + "'",
            firstDeclaredNote(DeclSites[C.Name]));
      Failed = true;
      continue;
    }
    Syms.ConstOrder.push_back(C.Name);
    DeclSites.emplace(C.Name, At);
  }
  // Symmetric sorts.
  for (const SymmetricDecl &D : M.Symmetrics) {
    SourceLoc At{D.File, D.Line, D.Column};
    if (!Syms.Sorts.insert(D.Name).second) {
      error(At, "duplicate symmetric sort '" + D.Name + "'",
            firstDeclaredNote(DeclSites[D.Name]));
      Failed = true;
    } else if (Syms.Consts.count(D.Name)) {
      error(At, "symmetric sort '" + D.Name + "' shadows a constant",
            firstDeclaredNote(DeclSites[D.Name]));
      Failed = true;
    } else {
      DeclSites.emplace(D.Name, At);
    }
  }
  if (M.Symmetrics.size() > 1) {
    error(SourceLoc{M.Symmetrics[1].File, M.Symmetrics[1].Line,
                    M.Symmetrics[1].Column},
          "at most one symmetric sort may be declared per module");
    Failed = true;
  }
  // Globals.
  for (const VarDecl &V : M.Vars) {
    SourceLoc At{V.File, V.Line, V.Column};
    if (Syms.Consts.count(V.Name) ||
        !Syms.Globals.emplace(V.Name, V.Type).second) {
      error(At, "duplicate variable '" + V.Name + "'",
            firstDeclaredNote(DeclSites[V.Name]));
      Failed = true;
      continue;
    }
    DeclSites.emplace(V.Name, At);
  }
  // Actions.
  for (const ActionDecl &A : M.Actions) {
    SourceLoc At{A.File, A.Line, A.Column};
    if (!Syms.ActionArity.emplace(A.Name, A.Params.size()).second) {
      error(At, "duplicate action '" + A.Name + "'",
            firstDeclaredNote(DeclSites["action " + A.Name]));
      Failed = true;
      continue;
    }
    DeclSites.emplace("action " + A.Name, At);
    std::set<std::string> ParamNames;
    for (const ParamDecl &P : A.Params)
      if (!ParamNames.insert(P.Name).second) {
        error(At, "duplicate parameter '" + P.Name + "' in action '" +
                      A.Name + "'");
        Failed = true;
      }
  }
  // Initializer ordering: later initializers may read earlier globals
  // only (the initial store is built in declaration order).
  std::set<std::string> DeclaredSoFar;
  for (const VarDecl &V : M.Vars) {
    std::set<std::string> Bound;
    checkInitRefs(*V.Init, V, DeclaredSoFar, Bound);
    DeclaredSoFar.insert(V.Name);
  }
  return !Failed;
}

} // namespace

bool asl::bindModule(const Module &M, SymbolTable &Syms,
                     std::vector<Diagnostic> &Diags) {
  return Binder(M, Syms, Diags).run();
}
