//===- lang/HirEval.h - HIR evaluator -----------------------------*- C++ -*-===//
///
/// \file
/// Concrete evaluation of HIR expressions and action bodies. A structural
/// mirror of the AST evaluator (lang/Eval.h): the same short-circuiting,
/// the same builtin semantics, and the same continuation-passing path
/// enumeration with the same branch order — so an action lowered from
/// HIR produces the same transition list, in the same order, as the v1
/// compile of the same source. Locals live in a flat slot vector instead
/// of a name map, and the pending-async mirror is a dedicated
/// environment field instead of the reserved "__pending" local.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_HIREVAL_H
#define ISQ_LANG_HIREVAL_H

#include "lang/Eval.h"
#include "lang/Hir.h"

namespace isq {
namespace asl {

/// The evaluation environment of one HIR slot space. Plain pointers plus
/// a value vector: environments are copied per control path, and
/// evaluation itself holds no shared mutable state, so compiled actions
/// stay safe to run from concurrent checker jobs.
struct HirEnv {
  std::vector<Value> Slots;
  /// Type table of the owning module (EmptyLit materialization).
  const hir::TypeTable *Types = nullptr;
  /// The pending-async mirror: a bag of (action-symbol index, args...)
  /// tuples, or nullptr outside gate evaluation (all counts read 0).
  const Value *Pending = nullptr;
};

/// Evaluates \p E under global store \p G and environment \p Env. The
/// environment is taken mutably for map-comprehension binders (written
/// and restored); it is otherwise unchanged on return.
Value evalHirExpr(const hir::Expr &E, const Store &G, HirEnv &Env);

/// Runs an action body from (\p G, \p Env), enumerating all control
/// paths. Same outcome contract as runBody.
BodyOutcome runHirBody(const std::vector<hir::StmtPtr> &Body,
                       const Store &G, const HirEnv &Env);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_HIREVAL_H
