//===- lang/Eval.h - ASL evaluator --------------------------------*- C++ -*-===//
///
/// \file
/// Concrete evaluation of ASL expressions and action bodies over the
/// semantic framework's values and stores. Running a body enumerates all
/// control paths (choose/if branching, await blocking) and yields
///
///  - CanFail: some path reaches a violated assert — the gate ρ of the
///    compiled action is the negation;
///  - Transitions: the (store, created PAs) endpoint of every complete
///    path — the transition relation τ.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_EVAL_H
#define ISQ_LANG_EVAL_H

#include "lang/Ast.h"
#include "semantics/Action.h"
#include "semantics/Store.h"

#include <map>
#include <string>

namespace isq {
namespace asl {

/// Local bindings: parameters, constants, loop and choose variables.
using Locals = std::map<std::string, Value>;

/// Evaluates \p E under global store \p G and \p L. Expression evaluation
/// is total for type-correct programs except for partial builtins
/// (the(none), front([]), max({}), missing map keys), which assert.
Value evalExpr(const Expr &E, const Store &G, const Locals &L);

/// The result of running an action body from one (store, locals) point.
struct BodyOutcome {
  /// Some path violated an assert: the action's gate is false here.
  bool CanFail = false;
  /// Endpoints of all complete paths.
  std::vector<Transition> Transitions;
};

/// Runs \p Body (an action's statement list) from (\p G, \p L).
BodyOutcome runBody(const std::vector<StmtPtr> &Body, const Store &G,
                    const Locals &L);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_EVAL_H
