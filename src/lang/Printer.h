//===- lang/Printer.h - ASL pretty-printer ------------------------*- C++ -*-===//
///
/// \file
/// Renders ASL abstract syntax back to concrete syntax. The output
/// round-trips: parsing the printed text yields a module that prints
/// identically (tested), which makes the printer usable for program
/// transformations that rewrite the AST and emit ASL again.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_PRINTER_H
#define ISQ_LANG_PRINTER_H

#include "lang/Ast.h"

#include <string>

namespace isq {
namespace asl {

/// Renders a whole module.
std::string printModule(const Module &M);

/// Renders one expression (minimal parentheses, per operator precedence).
std::string printExpr(const Expr &E);

/// Renders one statement at the given indentation depth (two spaces per
/// level), including the trailing newline.
std::string printStmt(const Stmt &S, unsigned Indent = 0);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_PRINTER_H
