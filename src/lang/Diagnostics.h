//===- lang/Diagnostics.h - Frontend diagnostics ------------------*- C++ -*-===//
///
/// \file
/// Source locations and the diagnostic type shared by every frontend
/// stage (lexer, parser, module resolver, binder, type checker, HIR
/// pipeline) and by the drivers that render them (isq-verify text/JSON,
/// isq-serve error marshalling).
///
/// A FrontendDiagnostic is an aggregate whose leading fields are the
/// historical {Message, Line, Column} triple, so stage code keeps pushing
/// `{"message", L, C}`; richer producers additionally fill the severity,
/// the owning file, an end position (turning the location into a span)
/// and an optional note. File identity travels as a SourceManager id
/// while the pipeline runs and is resolved to a display name once, at the
/// frontend boundary (frontend entry / driver), so inner stages never
/// carry path strings.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_DIAGNOSTICS_H
#define ISQ_LANG_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace isq {
namespace asl {

/// Diagnostic severity. Errors fail the compile; warnings and notes do
/// not (notes only occur attached to a primary diagnostic).
enum class Severity : uint8_t { Error, Warning, Note };

/// Renders "error" / "warning" / "note".
const char *severityName(Severity S);

/// A position in one source file: 1-based line/column plus the
/// SourceManager id of the file (0 is always the main input).
struct SourceLoc {
  uint32_t File = 0;
  unsigned Line = 0;
  unsigned Column = 0;

  bool valid() const { return Line != 0; }
};

/// A source-located diagnostic message.
struct FrontendDiagnostic {
  std::string Message;
  unsigned Line = 0;
  unsigned Column = 0;
  /// --- fields below are value-initialized by the historical
  /// {Message, Line, Column} aggregate spelling ---
  Severity Sev = Severity::Error;
  /// SourceManager file id of the owning file (0 = main input).
  uint32_t File = 0;
  /// End of the offending span; 0 when the diagnostic is a point.
  unsigned EndLine = 0;
  unsigned EndColumn = 0;
  /// Display name of the owning file, resolved from File by the frontend
  /// entry before diagnostics escape to a driver. Empty inside stages.
  std::string FileName;
  /// Optional secondary text ("first declared here", a fix hint, ...).
  std::string Note;

  SourceLoc loc() const { return {File, Line, Column}; }

  /// Renders "file.asl:3:7: error: message" when the file name is
  /// resolved, falling back to the historical "line 3:7: message" form
  /// used by stage-level tests; a note is appended as "; note: ...".
  std::string str() const {
    std::string Out;
    if (!FileName.empty())
      Out = FileName + ":" + std::to_string(Line) + ":" +
            std::to_string(Column) + ": " + severityName(Sev) + ": " +
            Message;
    else
      Out = "line " + std::to_string(Line) + ":" + std::to_string(Column) +
            ": " + Message;
    if (!Note.empty())
      Out += "; note: " + Note;
    return Out;
  }
};

/// Historical name, kept for the stage interfaces and their tests.
using Diagnostic = FrontendDiagnostic;

/// The file table of one frontend run: maps SourceLoc::File ids to
/// display names. Id 0 is the main input.
class SourceManager {
public:
  /// Registers a file and returns its id.
  uint32_t add(std::string Name) {
    Names.push_back(std::move(Name));
    return static_cast<uint32_t>(Names.size() - 1);
  }

  const std::string &name(uint32_t Id) const {
    static const std::string Unknown = "<input>";
    return Id < Names.size() ? Names[Id] : Unknown;
  }
  size_t size() const { return Names.size(); }

  /// Fills FrontendDiagnostic::FileName from the file id on every
  /// diagnostic in \p Diags that does not carry one yet (the frontend
  /// boundary step).
  void resolveFileNames(std::vector<FrontendDiagnostic> &Diags) const {
    for (FrontendDiagnostic &D : Diags)
      if (D.FileName.empty() && D.File < Names.size())
        D.FileName = Names[D.File];
  }

private:
  std::vector<std::string> Names;
};

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_DIAGNOSTICS_H
