//===- lang/Frontend.cpp - staged ASL frontend ---------------------------------===//

#include "lang/Frontend.h"

#include "lang/Binder.h"
#include "lang/HirBuilder.h"
#include "lang/HirOptimizer.h"
#include "lang/Lowering.h"
#include "lang/ModuleResolver.h"
#include "lang/TypeCheck.h"

using namespace isq;
using namespace isq::asl;

std::optional<CompiledModule> frontend::compileSource(
    const std::string &Source, const std::string &SourcePath,
    const std::map<std::string, int64_t> &ConstBindings,
    FrontendVersion Version, std::vector<Diagnostic> &Diags) {
  SourceManager SM;
  // Resolve display names on every exit path — diagnostics leave the
  // frontend boundary with FileName filled.
  struct NameResolver {
    const SourceManager &SM;
    std::vector<Diagnostic> &Diags;
    ~NameResolver() { SM.resolveFileNames(Diags); }
  } Resolve{SM, Diags};

  // Sources without a path (wire submissions) have no directory to
  // resolve imports against; an empty loader rejects them with a
  // diagnostic.
  ModuleLoader Loader = SourcePath.empty() ? ModuleLoader() : diskLoader();
  std::optional<Module> Merged =
      resolveModules(Source, SourcePath, Loader, SM, Diags);
  if (!Merged)
    return std::nullopt;

  if (Version == FrontendVersion::V2) {
    // Bind first: duplicate declarations and initializer-order errors are
    // reported here with notes; the pipeline stops so the type checker's
    // overlapping checks never double-report.
    SymbolTable Syms;
    if (!bindModule(*Merged, Syms, Diags))
      return std::nullopt;
    if (!typeCheck(*Merged, Diags))
      return std::nullopt;
    std::map<std::string, int64_t> Resolved;
    if (!resolveConstBindings(*Merged, ConstBindings, Resolved, Diags))
      return std::nullopt;
    hir::Module Hir = buildHir(*Merged, Syms);
    instantiate(Hir, Resolved);
    optimizeHir(Hir);
    return lowerHir(std::move(Hir), Diags);
  }

  // V1: the legacy tree-walking compile, kept as the differential oracle.
  if (!typeCheck(*Merged, Diags))
    return std::nullopt;
  std::map<std::string, int64_t> Resolved;
  if (!resolveConstBindings(*Merged, ConstBindings, Resolved, Diags))
    return std::nullopt;
  return compileParsedModule(std::move(*Merged), Resolved, Diags);
}
