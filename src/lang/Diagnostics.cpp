//===- lang/Diagnostics.cpp - Frontend diagnostics ----------------------------===//

#include "lang/Diagnostics.h"

using namespace isq;
using namespace isq::asl;

const char *asl::severityName(Severity S) {
  switch (S) {
  case Severity::Error:
    return "error";
  case Severity::Warning:
    return "warning";
  case Severity::Note:
    return "note";
  }
  return "error";
}
