//===- lang/Lexer.cpp - ASL lexer --------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace isq;
using namespace isq::asl;

const char *asl::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwAction:
    return "'action'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwAsync:
    return "'async'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::KwAwait:
    return "'await'";
  case TokenKind::KwChoose:
    return "'choose'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwNone:
    return "'none'";
  case TokenKind::KwSome:
    return "'some'";
  case TokenKind::KwMap:
    return "'map'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwOption:
    return "'option'";
  case TokenKind::KwSet:
    return "'set'";
  case TokenKind::KwBag:
    return "'bag'";
  case TokenKind::KwSeq:
    return "'seq'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::DotDot:
    return "'..'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Eof:
    return "end of input";
  }
  return "<invalid>";
}

namespace {

const std::unordered_map<std::string, TokenKind> &keywords() {
  static const std::unordered_map<std::string, TokenKind> Map = {
      {"const", TokenKind::KwConst},   {"var", TokenKind::KwVar},
      {"action", TokenKind::KwAction}, {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},     {"for", TokenKind::KwFor},
      {"in", TokenKind::KwIn},         {"async", TokenKind::KwAsync},
      {"assert", TokenKind::KwAssert}, {"await", TokenKind::KwAwait},
      {"choose", TokenKind::KwChoose}, {"skip", TokenKind::KwSkip},
      {"true", TokenKind::KwTrue},     {"false", TokenKind::KwFalse},
      {"none", TokenKind::KwNone},     {"some", TokenKind::KwSome},
      {"map", TokenKind::KwMap},       {"int", TokenKind::KwInt},
      {"bool", TokenKind::KwBool},     {"option", TokenKind::KwOption},
      {"set", TokenKind::KwSet},       {"bag", TokenKind::KwBag},
      {"seq", TokenKind::KwSeq},
  };
  return Map;
}

} // namespace

std::vector<Token> asl::lex(const std::string &Source,
                            std::vector<Diagnostic> &Diags,
                            uint32_t FileId) {
  std::vector<Token> Tokens;
  size_t I = 0;
  unsigned Line = 1, Column = 1;

  auto Advance = [&]() {
    if (I < Source.size() && Source[I] == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    ++I;
  };
  auto Peek = [&](size_t Ahead = 0) -> char {
    return I + Ahead < Source.size() ? Source[I + Ahead] : '\0';
  };
  auto Emit = [&](TokenKind Kind, std::string Text, unsigned L, unsigned C) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Line = L;
    T.Column = C;
    Tokens.push_back(std::move(T));
  };

  while (I < Source.size()) {
    char Ch = Peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(Ch))) {
      Advance();
      continue;
    }
    // Line comments.
    if (Ch == '/' && Peek(1) == '/') {
      while (I < Source.size() && Peek() != '\n')
        Advance();
      continue;
    }
    unsigned StartLine = Line, StartColumn = Column;
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
      std::string Text;
      while (I < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Peek())) ||
              Peek() == '_')) {
        Text += Peek();
        Advance();
      }
      auto It = keywords().find(Text);
      Emit(It != keywords().end() ? It->second : TokenKind::Identifier,
           Text, StartLine, StartColumn);
      continue;
    }
    // Integer literals.
    if (std::isdigit(static_cast<unsigned char>(Ch))) {
      std::string Text;
      while (I < Source.size() &&
             std::isdigit(static_cast<unsigned char>(Peek()))) {
        Text += Peek();
        Advance();
      }
      Token T;
      T.Kind = TokenKind::IntLiteral;
      T.Text = Text;
      T.IntValue = std::stoll(Text);
      T.Line = StartLine;
      T.Column = StartColumn;
      Tokens.push_back(std::move(T));
      continue;
    }
    // String literals (import paths). No escape sequences; a newline or
    // end of input before the closing quote is an error.
    if (Ch == '"') {
      Advance();
      std::string Text;
      bool Closed = false;
      while (I < Source.size()) {
        char C = Peek();
        if (C == '"') {
          Advance();
          Closed = true;
          break;
        }
        if (C == '\n')
          break;
        Text += C;
        Advance();
      }
      if (!Closed)
        Diags.push_back({"unterminated string literal", StartLine,
                         StartColumn, Severity::Error, FileId});
      Emit(TokenKind::StringLiteral, std::move(Text), StartLine,
           StartColumn);
      continue;
    }
    // Operators and punctuation.
    auto Two = [&](char A, char B, TokenKind Kind) {
      if (Ch == A && Peek(1) == B) {
        Advance();
        Advance();
        Emit(Kind, std::string{A, B}, StartLine, StartColumn);
        return true;
      }
      return false;
    };
    if (Two(':', '=', TokenKind::Assign) ||
        Two('.', '.', TokenKind::DotDot) ||
        Two('=', '=', TokenKind::EqEq) ||
        Two('!', '=', TokenKind::BangEq) ||
        Two('<', '=', TokenKind::LessEq) ||
        Two('>', '=', TokenKind::GreaterEq) ||
        Two('&', '&', TokenKind::AmpAmp) ||
        Two('|', '|', TokenKind::PipePipe))
      continue;

    TokenKind Kind;
    switch (Ch) {
    case '(':
      Kind = TokenKind::LParen;
      break;
    case ')':
      Kind = TokenKind::RParen;
      break;
    case '{':
      Kind = TokenKind::LBrace;
      break;
    case '}':
      Kind = TokenKind::RBrace;
      break;
    case '[':
      Kind = TokenKind::LBracket;
      break;
    case ']':
      Kind = TokenKind::RBracket;
      break;
    case ',':
      Kind = TokenKind::Comma;
      break;
    case ';':
      Kind = TokenKind::Semicolon;
      break;
    case ':':
      Kind = TokenKind::Colon;
      break;
    case '+':
      Kind = TokenKind::Plus;
      break;
    case '-':
      Kind = TokenKind::Minus;
      break;
    case '*':
      Kind = TokenKind::Star;
      break;
    case '/':
      Kind = TokenKind::Slash;
      break;
    case '%':
      Kind = TokenKind::Percent;
      break;
    case '<':
      Kind = TokenKind::Less;
      break;
    case '>':
      Kind = TokenKind::Greater;
      break;
    case '!':
      Kind = TokenKind::Bang;
      break;
    default:
      Diags.push_back({std::string("unexpected character '") + Ch + "'",
                       StartLine, StartColumn, Severity::Error, FileId});
      Advance();
      continue;
    }
    Advance();
    Emit(Kind, std::string(1, Ch), StartLine, StartColumn);
  }
  Emit(TokenKind::Eof, "", Line, Column);
  return Tokens;
}
