//===- lang/TypeCheck.cpp - ASL type checker -------------------------------------===//

#include "lang/TypeCheck.h"

#include <cassert>
#include <map>
#include <set>

using namespace isq;
using namespace isq::asl;

namespace {

using TK = TypeRef::Kind;

class Checker {
public:
  Checker(Module &M, std::vector<Diagnostic> &Diags) : M(M), Diags(Diags) {}

  bool run();

private:
  void error(const Expr &At, const std::string &Message) {
    Diags.push_back({Message, At.Line, At.Column, Severity::Error, At.File});
  }
  void error(const Stmt &At, const std::string &Message) {
    Diags.push_back({Message, At.Line, At.Column, Severity::Error, At.File});
  }
  void error(SourceLoc At, const std::string &Message) {
    Diags.push_back({Message, At.Line, At.Column, Severity::Error, At.File});
  }

  /// Infers the type of \p E (optionally against an expected type, which
  /// resolves empty literals). Returns an invalid type on error.
  TypeRef infer(Expr &E, const TypeRef *Expected = nullptr);
  /// Checks \p E against \p Expected.
  void check(Expr &E, const TypeRef &Expected);
  void checkStmts(std::vector<StmtPtr> &Stmts, size_t Begin,
                  std::map<std::string, TypeRef> &Locals);
  void checkStmt(Stmt &S, std::map<std::string, TypeRef> &Locals,
                 std::vector<StmtPtr> &Siblings, size_t MyIndex);

  TypeRef inferCall(Expr &E, const TypeRef *Expected);

  /// Verifies every named sort mentioned in \p T was declared.
  void checkTypeSorts(const TypeRef &T, SourceLoc At);

  Module &M;
  std::vector<Diagnostic> &Diags;
  std::map<std::string, TypeRef> Globals;
  std::set<std::string> Consts;
  std::set<std::string> Sorts;
  /// Locals of the action currently being checked (flow-scoped).
  std::map<std::string, TypeRef> *CurrentLocals = nullptr;
};

TypeRef Checker::inferCall(Expr &E, const TypeRef *Expected) {
  auto Arg = [&](size_t I) -> Expr & { return *E.Children[I]; };
  auto Arity = [&](size_t N) {
    if (E.Children.size() == N)
      return true;
    error(E, "builtin '" + E.Name + "' expects " + std::to_string(N) +
                 " argument(s), got " + std::to_string(E.Children.size()));
    return false;
  };

  if (E.Name == "pending" || E.Name == "pending_le" ||
      E.Name == "pending_le_at") {
    // The CIVL pendingAsyncs mirror (Fig. 4(b)):
    //   pending(A)            — number of pending asyncs to A;
    //   pending_le(A, k)      — those whose first argument is ≤ k;
    //   pending_le_at(A, k, x)— additionally second argument == x.
    // The round-indexed forms express the Fig. 4(c) abstraction gates
    // ("{StartRound(r') ∈ pendingAsyncs | r' ≤ r} = ∅").
    size_t Expected =
        E.Name == "pending" ? 1 : E.Name == "pending_le" ? 2 : 3;
    if (!Arity(Expected))
      return TypeRef::invalid();
    Expr &ArgE = Arg(0);
    if (ArgE.Kind != ExprKind::VarRef || !M.findAction(ArgE.Name))
      error(E, E.Name + "() expects an action name");
    ArgE.Type = TypeRef::intTy(); // marker; not a real variable reference
    for (size_t I = 1; I < Expected; ++I)
      check(Arg(I), TypeRef::intTy());
    return TypeRef::intTy();
  }
  if (E.Name == "size") {
    if (!Arity(1))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0));
    if (T.isValid() && T.K != TK::Set && T.K != TK::Bag &&
        T.K != TK::Seq && T.K != TK::Map)
      error(E, "size() requires a collection, got " + T.str());
    return TypeRef::intTy();
  }
  if (E.Name == "contains") {
    if (!Arity(2))
      return TypeRef::invalid();
    TypeRef C = infer(Arg(0));
    if (C.isValid() && C.K != TK::Set && C.K != TK::Bag) {
      error(E, "contains() requires a set or bag, got " + C.str());
      return TypeRef::boolTy();
    }
    if (C.isValid())
      check(Arg(1), C.Params[0]);
    return TypeRef::boolTy();
  }
  if (E.Name == "has_key") {
    if (!Arity(2))
      return TypeRef::invalid();
    TypeRef C = infer(Arg(0));
    if (C.isValid() && C.K != TK::Map) {
      error(E, "has_key() requires a map, got " + C.str());
      return TypeRef::boolTy();
    }
    if (C.isValid())
      check(Arg(1), C.Params[0]);
    return TypeRef::boolTy();
  }
  if (E.Name == "insert" || E.Name == "erase") {
    if (!Arity(2))
      return TypeRef::invalid();
    // These return their collection argument's type: propagate the
    // expected type inward so empty literals resolve.
    TypeRef C = infer(Arg(0), Expected);
    if (C.isValid() && C.K != TK::Set && C.K != TK::Bag) {
      error(E, E.Name + "() requires a set or bag, got " + C.str());
      return C;
    }
    if (C.isValid())
      check(Arg(1), C.Params[0]);
    return C;
  }
  if (E.Name == "is_some") {
    if (!Arity(1))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0));
    if (T.isValid() && T.K != TK::Option)
      error(E, "is_some() requires an option, got " + T.str());
    return TypeRef::boolTy();
  }
  if (E.Name == "the") {
    if (!Arity(1))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0));
    if (!T.isValid())
      return TypeRef::invalid();
    if (T.K != TK::Option) {
      error(E, "the() requires an option, got " + T.str());
      return TypeRef::invalid();
    }
    return T.Params[0];
  }
  if (E.Name == "max" || E.Name == "min") {
    if (!Arity(1))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0));
    if (T.isValid() &&
        !((T.K == TK::Set || T.K == TK::Bag) &&
          T.Params[0] == TypeRef::intTy()))
      error(E, E.Name + "() requires set<int> or bag<int>, got " + T.str());
    return TypeRef::intTy();
  }
  if (E.Name == "front") {
    if (!Arity(1))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0));
    if (!T.isValid())
      return TypeRef::invalid();
    if (T.K != TK::Seq) {
      error(E, "front() requires a seq, got " + T.str());
      return TypeRef::invalid();
    }
    return T.Params[0];
  }
  if (E.Name == "push_back") {
    if (!Arity(2))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0), Expected);
    if (T.isValid() && T.K != TK::Seq) {
      error(E, "push_back() requires a seq, got " + T.str());
      return T;
    }
    if (T.isValid())
      check(Arg(1), T.Params[0]);
    return T;
  }
  if (E.Name == "pop_front") {
    if (!Arity(1))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0), Expected);
    if (T.isValid() && T.K != TK::Seq)
      error(E, "pop_front() requires a seq, got " + T.str());
    return T;
  }
  if (E.Name == "sub_bags") {
    if (!Arity(2))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0));
    check(Arg(1), TypeRef::intTy());
    if (!T.isValid())
      return TypeRef::invalid();
    if (T.K != TK::Bag) {
      error(E, "sub_bags() requires a bag, got " + T.str());
      return TypeRef::invalid();
    }
    return TypeRef::setTy(T);
  }
  if (E.Name == "subsets") {
    if (!Arity(1))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0));
    if (!T.isValid())
      return TypeRef::invalid();
    if (T.K != TK::Set) {
      error(E, "subsets() requires a set, got " + T.str());
      return TypeRef::invalid();
    }
    return TypeRef::setTy(T);
  }
  if (E.Name == "diff") {
    if (!Arity(2))
      return TypeRef::invalid();
    TypeRef A = infer(Arg(0), Expected);
    if (A.isValid() && A.K != TK::Set && A.K != TK::Bag) {
      error(E, "diff() requires sets or bags, got " + A.str());
      return A;
    }
    if (A.isValid())
      check(Arg(1), A);
    return A;
  }
  if (E.Name == "keys") {
    if (!Arity(1))
      return TypeRef::invalid();
    TypeRef T = infer(Arg(0));
    if (!T.isValid())
      return TypeRef::invalid();
    if (T.K != TK::Map) {
      error(E, "keys() requires a map, got " + T.str());
      return TypeRef::invalid();
    }
    return TypeRef::setTy(T.Params[0]);
  }
  error(E, "unknown builtin '" + E.Name + "'");
  return TypeRef::invalid();
}

TypeRef Checker::infer(Expr &E, const TypeRef *Expected) {
  TypeRef Result = TypeRef::invalid();
  switch (E.Kind) {
  case ExprKind::IntLit:
    Result = TypeRef::intTy();
    break;
  case ExprKind::BoolLit:
    Result = TypeRef::boolTy();
    break;
  case ExprKind::NoneLit:
    if (Expected && Expected->K == TK::Option)
      Result = *Expected;
    else if (Expected)
      error(E, "'none' used where " + Expected->str() + " is expected");
    else
      error(E, "cannot infer the type of 'none' in this context");
    break;
  case ExprKind::EmptyLit:
    if (Expected && (Expected->K == TK::Set || Expected->K == TK::Bag ||
                     Expected->K == TK::Map || Expected->K == TK::Seq))
      Result = *Expected;
    else
      error(E, "cannot infer the type of an empty collection literal "
               "in this context");
    break;
  case ExprKind::VarRef: {
    if (CurrentLocals) {
      auto It = CurrentLocals->find(E.Name);
      if (It != CurrentLocals->end()) {
        Result = It->second;
        break;
      }
    }
    if (Consts.count(E.Name)) {
      Result = TypeRef::intTy();
      break;
    }
    auto It = Globals.find(E.Name);
    if (It != Globals.end()) {
      Result = It->second;
      break;
    }
    error(E, "unknown variable '" + E.Name + "'");
    break;
  }
  case ExprKind::Index: {
    TypeRef Base = infer(*E.Children[0]);
    if (!Base.isValid())
      break;
    if (Base.K != TK::Map) {
      error(E, "indexing requires a map, got " + Base.str());
      break;
    }
    check(*E.Children[1], Base.Params[0]);
    Result = Base.Params[1];
    break;
  }
  case ExprKind::Unary: {
    if (E.Op == "-") {
      check(*E.Children[0], TypeRef::intTy());
      Result = TypeRef::intTy();
    } else {
      check(*E.Children[0], TypeRef::boolTy());
      Result = TypeRef::boolTy();
    }
    break;
  }
  case ExprKind::Binary: {
    if (E.Op == "+" || E.Op == "-" || E.Op == "*" || E.Op == "/" ||
        E.Op == "%") {
      check(*E.Children[0], TypeRef::intTy());
      check(*E.Children[1], TypeRef::intTy());
      Result = TypeRef::intTy();
    } else if (E.Op == "<" || E.Op == "<=" || E.Op == ">" ||
               E.Op == ">=") {
      check(*E.Children[0], TypeRef::intTy());
      check(*E.Children[1], TypeRef::intTy());
      Result = TypeRef::boolTy();
    } else if (E.Op == "&&" || E.Op == "||") {
      check(*E.Children[0], TypeRef::boolTy());
      check(*E.Children[1], TypeRef::boolTy());
      Result = TypeRef::boolTy();
    } else { // == and !=
      TypeRef L = infer(*E.Children[0]);
      if (L.isValid())
        check(*E.Children[1], L);
      else
        infer(*E.Children[1]);
      Result = TypeRef::boolTy();
    }
    break;
  }
  case ExprKind::Call:
    Result = inferCall(E, Expected);
    break;
  case ExprKind::SomeExpr: {
    if (Expected && Expected->K == TK::Option) {
      check(*E.Children[0], Expected->Params[0]);
      Result = *Expected;
    } else {
      TypeRef Inner = infer(*E.Children[0]);
      if (Inner.isValid())
        Result = TypeRef::optionTy(Inner);
    }
    break;
  }
  case ExprKind::MapCompr: {
    check(*E.Children[0], TypeRef::intTy());
    check(*E.Children[1], TypeRef::intTy());
    assert(CurrentLocals && "comprehension outside checking context");
    auto Saved = CurrentLocals->find(E.Name);
    bool HadBinding = Saved != CurrentLocals->end();
    TypeRef Old = HadBinding ? Saved->second : TypeRef::invalid();
    (*CurrentLocals)[E.Name] = TypeRef::intTy();
    TypeRef BodyTy;
    if (Expected && Expected->K == TK::Map &&
        Expected->Params[0] == TypeRef::intTy()) {
      check(*E.Children[2], Expected->Params[1]);
      BodyTy = Expected->Params[1];
    } else {
      BodyTy = infer(*E.Children[2]);
    }
    if (HadBinding)
      (*CurrentLocals)[E.Name] = Old;
    else
      CurrentLocals->erase(E.Name);
    if (BodyTy.isValid())
      Result = TypeRef::mapTy(TypeRef::intTy(), BodyTy);
    break;
  }
  }
  E.Type = Result;
  return Result;
}

void Checker::check(Expr &E, const TypeRef &Expected) {
  TypeRef Actual = infer(E, &Expected);
  if (Actual.isValid() && Actual != Expected)
    error(E, "expected " + Expected.str() + ", got " + Actual.str());
}

void Checker::checkStmt(Stmt &S, std::map<std::string, TypeRef> &Locals,
                        std::vector<StmtPtr> &Siblings, size_t MyIndex) {
  switch (S.Kind) {
  case StmtKind::Skip:
    return;
  case StmtKind::Assert:
  case StmtKind::Await:
    check(*S.Exprs[0], TypeRef::boolTy());
    return;
  case StmtKind::Assign: {
    if (Locals.count(S.Name)) {
      error(S, "locals are immutable; cannot assign '" + S.Name + "'");
      return;
    }
    auto It = Globals.find(S.Name);
    if (It == Globals.end()) {
      error(S, "unknown variable '" + S.Name + "'");
      return;
    }
    // Peel map layers per index.
    TypeRef Target = It->second;
    for (size_t I = 0; I + 1 < S.Exprs.size(); ++I) {
      if (Target.K != TK::Map) {
        error(S, "too many indices on '" + S.Name + "'");
        return;
      }
      check(*S.Exprs[I], Target.Params[0]);
      Target = Target.Params[1];
    }
    check(*S.Exprs.back(), Target);
    return;
  }
  case StmtKind::If: {
    check(*S.Exprs[0], TypeRef::boolTy());
    checkStmts(S.Body, 0, Locals);
    checkStmts(S.ElseBody, 0, Locals);
    return;
  }
  case StmtKind::For: {
    check(*S.Exprs[0], TypeRef::intTy());
    check(*S.Exprs[1], TypeRef::intTy());
    auto Saved = Locals.find(S.Name);
    bool Had = Saved != Locals.end();
    TypeRef Old = Had ? Saved->second : TypeRef::invalid();
    Locals[S.Name] = TypeRef::intTy();
    checkStmts(S.Body, 0, Locals);
    if (Had)
      Locals[S.Name] = Old;
    else
      Locals.erase(S.Name);
    return;
  }
  case StmtKind::Async: {
    const ActionDecl *Target = M.findAction(S.Name);
    if (!Target) {
      error(S, "async call to unknown action '" + S.Name + "'");
      return;
    }
    if (Target->Params.size() != S.Exprs.size()) {
      error(S, "async call to '" + S.Name + "' with " +
                   std::to_string(S.Exprs.size()) + " argument(s); " +
                   std::to_string(Target->Params.size()) + " expected");
      return;
    }
    for (size_t I = 0; I < S.Exprs.size(); ++I)
      check(*S.Exprs[I], Target->Params[I].Type);
    return;
  }
  case StmtKind::Choose: {
    TypeRef C = infer(*S.Exprs[0]);
    TypeRef ElemTy = TypeRef::invalid();
    if (C.isValid()) {
      if (C.K == TK::Set || C.K == TK::Bag || C.K == TK::Seq)
        ElemTy = C.Params[0];
      else
        error(S, "choose requires a set, bag, or seq, got " + C.str());
    }
    if (Locals.count(S.Name) || Globals.count(S.Name) ||
        Consts.count(S.Name)) {
      error(S, "choose variable '" + S.Name + "' shadows an existing name");
      return;
    }
    // The chosen variable scopes over the remaining statements.
    Locals[S.Name] = ElemTy;
    checkStmts(Siblings, MyIndex + 1, Locals);
    Locals.erase(S.Name);
    // Mark the rest as handled by truncating the caller's loop: the caller
    // checks this via the return convention below (handled in checkStmts).
    return;
  }
  }
}

void Checker::checkStmts(std::vector<StmtPtr> &Stmts, size_t Begin,
                         std::map<std::string, TypeRef> &Locals) {
  for (size_t I = Begin; I < Stmts.size(); ++I) {
    checkStmt(*Stmts[I], Locals, Stmts, I);
    // A choose statement checks its own continuation (it introduces a
    // binding over the remaining statements).
    if (Stmts[I]->Kind == StmtKind::Choose)
      return;
  }
}

void Checker::checkTypeSorts(const TypeRef &T, SourceLoc At) {
  if (!T.Sort.empty() && !Sorts.count(T.Sort))
    error(At, "unknown type '" + T.Sort + "'");
  for (const TypeRef &P : T.Params)
    checkTypeSorts(P, At);
}

bool Checker::run() {
  size_t Before = Diags.size();
  // Declarations first. Constant initializers (param defaults and derived
  // consts) are checked in declaration order, so an initializer may only
  // reference constants declared before it — the same order the binding
  // resolver evaluates them in.
  for (ConstDecl &C : M.Consts) {
    if (C.Init) {
      std::map<std::string, TypeRef> NoLocals;
      CurrentLocals = &NoLocals;
      check(*C.Init, TypeRef::intTy());
      CurrentLocals = nullptr;
    }
    if (!Consts.insert(C.Name).second)
      error(SourceLoc{C.File, C.Line, C.Column},
            "duplicate constant '" + C.Name + "'");
  }
  // Symmetric sorts: one per module (the reduction enumerates the full
  // permutation group of a single sort), with int constant bounds.
  for (SymmetricDecl &D : M.Symmetrics) {
    if (!Sorts.insert(D.Name).second)
      error(SourceLoc{D.File, D.Line, D.Column},
            "duplicate symmetric sort '" + D.Name + "'");
    else if (Consts.count(D.Name))
      error(SourceLoc{D.File, D.Line, D.Column},
            "symmetric sort '" + D.Name + "' shadows a constant");
    std::map<std::string, TypeRef> NoLocals;
    CurrentLocals = &NoLocals;
    check(*D.Lo, TypeRef::intTy());
    check(*D.Hi, TypeRef::intTy());
    CurrentLocals = nullptr;
  }
  if (M.Symmetrics.size() > 1)
    error(SourceLoc{M.Symmetrics[1].File, M.Symmetrics[1].Line,
                    M.Symmetrics[1].Column},
          "at most one symmetric sort may be declared per module");
  for (VarDecl &V : M.Vars) {
    checkTypeSorts(V.Type, SourceLoc{V.File, V.Line, V.Column});
    if (Consts.count(V.Name) || !Globals.emplace(V.Name, V.Type).second)
      error(SourceLoc{V.File, V.Line, V.Column},
            "duplicate variable '" + V.Name + "'");
  }
  // Initializers (may reference constants and earlier globals; checked
  // with an empty locals scope plus the comprehension machinery).
  for (VarDecl &V : M.Vars) {
    std::map<std::string, TypeRef> NoLocals;
    CurrentLocals = &NoLocals;
    check(*V.Init, V.Type);
    CurrentLocals = nullptr;
  }
  // Action bodies.
  std::set<std::string> ActionNames;
  for (ActionDecl &A : M.Actions) {
    if (!ActionNames.insert(A.Name).second)
      error(SourceLoc{A.File, A.Line, A.Column},
            "duplicate action '" + A.Name + "'");
    std::map<std::string, TypeRef> Locals;
    for (const ParamDecl &P : A.Params) {
      checkTypeSorts(P.Type, SourceLoc{A.File, A.Line, A.Column});
      if (!Locals.emplace(P.Name, P.Type).second)
        error(SourceLoc{A.File, A.Line, A.Column},
              "duplicate parameter '" + P.Name + "' in action '" + A.Name +
                  "'");
    }
    CurrentLocals = &Locals;
    checkStmts(A.Body, 0, Locals);
    CurrentLocals = nullptr;
  }
  return Diags.size() == Before;
}

} // namespace

bool asl::typeCheck(Module &M, std::vector<Diagnostic> &Diags) {
  return Checker(M, Diags).run();
}
