//===- lang/Parser.h - ASL parser ---------------------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for ASL with operator-precedence expression
/// parsing. Produces a Module or diagnostics; never throws.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_PARSER_H
#define ISQ_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"

#include <optional>

namespace isq {
namespace asl {

/// Parses \p Source into a module. Returns std::nullopt (with diagnostics
/// in \p Diags) on any lexical or syntactic error. \p FileId is the
/// SourceManager id stamped into every node and diagnostic (0 = main
/// input).
std::optional<Module> parseModule(const std::string &Source,
                                  std::vector<Diagnostic> &Diags,
                                  uint32_t FileId = 0);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_PARSER_H
