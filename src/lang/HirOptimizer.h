//===- lang/HirOptimizer.h - HIR simplification -------------------*- C++ -*-===//
///
/// \file
/// Semantics-preserving simplification of instantiated HIR. Every rule
/// preserves the *transition list* of each action — not just the set of
/// reachable stores, but their enumeration order and multiplicity — so
/// the optimized module still lowers to a Program bit-identical to the
/// unoptimized one. The admitted rules:
///
///  - constant folding of integer arithmetic and comparisons on literals
///    (never division or modulo by a zero or non-literal divisor);
///  - gate simplification: `true && g -> g`, `g && true -> g`,
///    `false && g -> false`, `false || g -> g`, `g || false -> g`,
///    `true || g -> true`. `g && false` and `g || true` are NOT folded:
///    dropping g would skip its evaluation, which may be partial;
///  - `assert true` and `await true` removal; contradiction pruning of
///    the statements following an `assert false` or `await false` (the
///    path always fails resp. blocks there);
///  - inlining of `if` on a literal condition (order-preserving: slots
///    make splicing the branch into the enclosing list scope-safe);
///  - removal of `skip`, of empty `if`, and of empty `for`, when any
///    condition/bound expressions they would still evaluate are
///    syntactically total;
///  - dead-binding elimination: a for/choose/map binder whose slot is
///    never read is marked NoSlot, so evaluation skips the write. The
///    choose statement itself is never touched (its branching structure
///    is the transition relation).
///
/// Runs to a fixpoint, so optimize(optimize(M)) == optimize(M) (tested).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_HIROPTIMIZER_H
#define ISQ_LANG_HIROPTIMIZER_H

#include "lang/Hir.h"

namespace isq {
namespace asl {

/// Optimizes \p M in place.
void optimizeHir(hir::Module &M);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_HIROPTIMIZER_H
