//===- lang/HirEval.cpp - HIR evaluator ----------------------------------------===//

#include "lang/HirEval.h"

#include "support/Symbol.h"

#include <cassert>
#include <optional>

using namespace isq;
using namespace isq::asl;

namespace {

using TK = TypeRef::Kind;

/// Builds the empty value of ASL type \p T (mirror of Eval.cpp).
Value emptyValueOf(const TypeRef &T) {
  switch (T.K) {
  case TK::Int:
    return Value::integer(0);
  case TK::Bool:
    return Value::boolean(false);
  case TK::Option:
    return Value::none();
  case TK::Set:
    return Value::set({});
  case TK::Bag:
    return Value::bag({});
  case TK::Map:
    return Value::map({});
  case TK::Seq:
    return Value::seq({});
  case TK::Invalid:
    break;
  }
  assert(false && "empty value of invalid type");
  return Value::unit();
}

Value evalCall(const hir::Expr &E, const Store &G, HirEnv &Env) {
  auto Arg = [&](size_t I) { return evalHirExpr(*E.Children[I], G, Env); };

  if (E.Name == "pending" || E.Name == "pending_le" ||
      E.Name == "pending_le_at") {
    if (!Env.Pending)
      return Value::integer(0);
    int64_t WantIdx =
        static_cast<int64_t>(Symbol::get(E.Callee).index());
    std::optional<int64_t> MaxFirst, ExactSecond;
    if (E.Children.size() >= 1)
      MaxFirst = Arg(0).getInt();
    if (E.Children.size() >= 2)
      ExactSecond = Arg(1).getInt();
    int64_t Total = 0;
    for (const auto &[PaTuple, Count] : Env.Pending->bagEntries()) {
      if (PaTuple.elem(0).getInt() != WantIdx)
        continue;
      if (MaxFirst &&
          (PaTuple.size() < 2 || PaTuple.elem(1).getInt() > *MaxFirst))
        continue;
      if (ExactSecond &&
          (PaTuple.size() < 3 || PaTuple.elem(2).getInt() != *ExactSecond))
        continue;
      Total += Count.getInt();
    }
    return Value::integer(Total);
  }

  if (E.Name == "size") {
    Value C = Arg(0);
    switch (C.kind()) {
    case ValueKind::Set:
      return Value::integer(static_cast<int64_t>(C.setSize()));
    case ValueKind::Bag:
      return Value::integer(static_cast<int64_t>(C.bagSize()));
    case ValueKind::Seq:
      return Value::integer(static_cast<int64_t>(C.seqSize()));
    case ValueKind::Map:
      return Value::integer(static_cast<int64_t>(C.mapSize()));
    default:
      assert(false && "size() on non-collection");
      return Value::integer(0);
    }
  }
  if (E.Name == "contains") {
    Value C = Arg(0), Elem = Arg(1);
    if (C.kind() == ValueKind::Set)
      return Value::boolean(C.setContains(Elem));
    return Value::boolean(C.bagCount(Elem) > 0);
  }
  if (E.Name == "has_key")
    return Value::boolean(Arg(0).mapContains(Arg(1)));
  if (E.Name == "insert") {
    Value C = Arg(0), Elem = Arg(1);
    return C.kind() == ValueKind::Set ? C.setInsert(Elem)
                                      : C.bagInsert(Elem);
  }
  if (E.Name == "erase") {
    Value C = Arg(0), Elem = Arg(1);
    return C.kind() == ValueKind::Set ? C.setErase(Elem)
                                      : C.bagErase(Elem);
  }
  if (E.Name == "is_some")
    return Value::boolean(Arg(0).isSome());
  if (E.Name == "the")
    return Arg(0).getSome();
  if (E.Name == "max" || E.Name == "min") {
    Value C = Arg(0);
    std::vector<Value> Elems =
        C.kind() == ValueKind::Set ? C.elems() : C.bagFlatten();
    assert(!Elems.empty() && "max/min of empty collection");
    int64_t Best = Elems[0].getInt();
    for (const Value &V : Elems)
      Best = E.Name == "max" ? std::max(Best, V.getInt())
                             : std::min(Best, V.getInt());
    return Value::integer(Best);
  }
  if (E.Name == "front")
    return Arg(0).seqFront();
  if (E.Name == "push_back")
    return Arg(0).seqPushBack(Arg(1));
  if (E.Name == "pop_front")
    return Arg(0).seqPopFront();
  if (E.Name == "sub_bags") {
    Value C = Arg(0);
    int64_t K = Arg(1).getInt();
    assert(K >= 0 && "sub_bags with negative size");
    return Value::set(C.bagSubBagsOfSize(static_cast<uint64_t>(K)));
  }
  if (E.Name == "subsets") {
    const Value C = Arg(0);
    const std::vector<Value> &Elems = C.elems();
    assert(Elems.size() <= 16 && "subsets() limited to 16 elements");
    std::vector<Value> Out;
    for (uint64_t Mask = 0; Mask < (uint64_t(1) << Elems.size()); ++Mask) {
      std::vector<Value> Sub;
      for (size_t I = 0; I < Elems.size(); ++I)
        if (Mask & (uint64_t(1) << I))
          Sub.push_back(Elems[I]);
      Out.push_back(Value::set(std::move(Sub)));
    }
    return Value::set(std::move(Out));
  }
  if (E.Name == "diff") {
    Value A = Arg(0), B = Arg(1);
    if (A.kind() == ValueKind::Set) {
      for (const Value &Elem : B.elems())
        A = A.setErase(Elem);
      return A;
    }
    for (const auto &[Elem, Count] : B.bagEntries())
      A = A.bagErase(Elem, static_cast<uint64_t>(Count.getInt()));
    return A;
  }
  if (E.Name == "keys")
    return Value::set(Arg(0).mapKeys());
  assert(false && "unknown builtin survived type checking");
  return Value::unit();
}

} // namespace

Value asl::evalHirExpr(const hir::Expr &E, const Store &G, HirEnv &Env) {
  switch (E.Kind) {
  case hir::ExprKind::IntLit:
    return Value::integer(E.IntValue);
  case hir::ExprKind::BoolLit:
    return Value::boolean(E.IntValue != 0);
  case hir::ExprKind::NoneLit:
    return Value::none();
  case hir::ExprKind::EmptyLit:
    assert(Env.Types && "HIR evaluation without a type table");
    return emptyValueOf(Env.Types->get(E.Type));
  case hir::ExprKind::LocalRef:
    return Env.Slots[E.Slot];
  case hir::ExprKind::ConstRef:
    assert(false && "ConstRef survived instantiation");
    return Value::unit();
  case hir::ExprKind::GlobalRef:
    return G.get(E.Name);
  case hir::ExprKind::Index: {
    Value Base = evalHirExpr(*E.Children[0], G, Env);
    Value Key = evalHirExpr(*E.Children[1], G, Env);
    return Base.mapAt(Key);
  }
  case hir::ExprKind::Unary: {
    Value V = evalHirExpr(*E.Children[0], G, Env);
    if (E.Op == "-")
      return Value::integer(-V.getInt());
    return Value::boolean(!V.getBool());
  }
  case hir::ExprKind::Binary: {
    // Short-circuit booleans first (mirror of Eval.cpp).
    if (E.Op == "&&") {
      if (!evalHirExpr(*E.Children[0], G, Env).getBool())
        return Value::boolean(false);
      return evalHirExpr(*E.Children[1], G, Env);
    }
    if (E.Op == "||") {
      if (evalHirExpr(*E.Children[0], G, Env).getBool())
        return Value::boolean(true);
      return evalHirExpr(*E.Children[1], G, Env);
    }
    Value A = evalHirExpr(*E.Children[0], G, Env);
    Value B = evalHirExpr(*E.Children[1], G, Env);
    if (E.Op == "==")
      return Value::boolean(A == B);
    if (E.Op == "!=")
      return Value::boolean(A != B);
    if (E.Op == "<")
      return Value::boolean(A.getInt() < B.getInt());
    if (E.Op == "<=")
      return Value::boolean(A.getInt() <= B.getInt());
    if (E.Op == ">")
      return Value::boolean(A.getInt() > B.getInt());
    if (E.Op == ">=")
      return Value::boolean(A.getInt() >= B.getInt());
    if (E.Op == "+")
      return Value::integer(A.getInt() + B.getInt());
    if (E.Op == "-")
      return Value::integer(A.getInt() - B.getInt());
    if (E.Op == "*")
      return Value::integer(A.getInt() * B.getInt());
    if (E.Op == "/") {
      assert(B.getInt() != 0 && "division by zero");
      return Value::integer(A.getInt() / B.getInt());
    }
    assert(E.Op == "%" && "unknown binary operator");
    assert(B.getInt() != 0 && "modulo by zero");
    return Value::integer(A.getInt() % B.getInt());
  }
  case hir::ExprKind::Call:
    return evalCall(E, G, Env);
  case hir::ExprKind::Some:
    return Value::some(evalHirExpr(*E.Children[0], G, Env));
  case hir::ExprKind::MapCompr: {
    int64_t Lo = evalHirExpr(*E.Children[0], G, Env).getInt();
    int64_t Hi = evalHirExpr(*E.Children[1], G, Env).getInt();
    std::vector<std::pair<Value, Value>> Pairs;
    bool Bind = E.Slot != hir::NoSlot;
    Value Saved = Bind ? Env.Slots[E.Slot] : Value::unit();
    for (int64_t I = Lo; I <= Hi; ++I) {
      if (Bind)
        Env.Slots[E.Slot] = Value::integer(I);
      Pairs.push_back(
          {Value::integer(I), evalHirExpr(*E.Children[2], G, Env)});
    }
    if (Bind)
      Env.Slots[E.Slot] = std::move(Saved);
    return Value::map(std::move(Pairs));
  }
  }
  assert(false && "unhandled HIR expression kind");
  return Value::unit();
}

namespace {

/// One control path being executed (mirror of Eval.cpp's PathState, with
/// a slot vector for locals).
struct PathState {
  Store G;
  std::vector<Value> Slots;
  std::vector<PendingAsync> Created;
};

/// Path enumeration engine; structurally identical to Eval.cpp's Runner
/// so both frontends enumerate transitions in the same order.
struct Runner {
  BodyOutcome Outcome;
  const hir::TypeTable *Types = nullptr;
  const Value *Pending = nullptr;

  static Value updateNested(const Value &Base,
                            const std::vector<Value> &Indices, size_t Depth,
                            const Value &Rhs) {
    if (Depth == Indices.size())
      return Rhs;
    return Base.mapSet(
        Indices[Depth],
        updateNested(Base.mapAt(Indices[Depth]), Indices, Depth + 1, Rhs));
  }

  Value eval(const hir::Expr &E, PathState &State) {
    HirEnv Env;
    Env.Slots = std::move(State.Slots);
    Env.Types = Types;
    Env.Pending = Pending;
    Value V = evalHirExpr(E, State.G, Env);
    State.Slots = std::move(Env.Slots);
    return V;
  }

  void runList(const std::vector<hir::StmtPtr> &Stmts, size_t Index,
               PathState State) {
    if (Index == Stmts.size()) {
      Outcome.Transitions.emplace_back(std::move(State.G),
                                       std::move(State.Created));
      return;
    }
    const hir::Stmt &S = *Stmts[Index];
    switch (S.Kind) {
    case hir::StmtKind::Skip:
      runList(Stmts, Index + 1, std::move(State));
      return;
    case hir::StmtKind::Assert:
      if (!eval(*S.Exprs[0], State).getBool()) {
        Outcome.CanFail = true;
        return; // the path fails; no transition
      }
      runList(Stmts, Index + 1, std::move(State));
      return;
    case hir::StmtKind::Await:
      if (!eval(*S.Exprs[0], State).getBool())
        return; // the path blocks; no transition, no failure
      runList(Stmts, Index + 1, std::move(State));
      return;
    case hir::StmtKind::Assign: {
      std::vector<Value> Indices;
      for (size_t I = 0; I + 1 < S.Exprs.size(); ++I)
        Indices.push_back(eval(*S.Exprs[I], State));
      Value Rhs = eval(*S.Exprs.back(), State);
      Value NewValue =
          Indices.empty()
              ? Rhs
              : updateNested(State.G.get(S.Name), Indices, 0, Rhs);
      State.G = State.G.set(S.Name, std::move(NewValue));
      runList(Stmts, Index + 1, std::move(State));
      return;
    }
    case hir::StmtKind::Async: {
      std::vector<Value> Args;
      for (const hir::ExprPtr &E : S.Exprs)
        Args.push_back(eval(*E, State));
      State.Created.emplace_back(S.Name, std::move(Args));
      runList(Stmts, Index + 1, std::move(State));
      return;
    }
    case hir::StmtKind::If: {
      bool Cond = eval(*S.Exprs[0], State).getBool();
      const std::vector<hir::StmtPtr> &Branch =
          Cond ? S.Body : S.ElseBody;
      runNested(Branch, std::move(State), Stmts, Index + 1);
      return;
    }
    case hir::StmtKind::For: {
      int64_t Lo = eval(*S.Exprs[0], State).getInt();
      int64_t Hi = eval(*S.Exprs[1], State).getInt();
      runForIteration(S, Lo, Hi, std::move(State), Stmts, Index + 1);
      return;
    }
    case hir::StmtKind::Choose: {
      Value C = eval(*S.Exprs[0], State);
      std::vector<Value> Elems;
      switch (C.kind()) {
      case ValueKind::Set:
      case ValueKind::Seq:
        Elems = C.elems();
        break;
      case ValueKind::Bag:
        for (const auto &[Elem, Count] : C.bagEntries()) {
          (void)Count;
          Elems.push_back(Elem);
        }
        break;
      default:
        assert(false && "choose over non-collection");
      }
      // An empty collection blocks the path (no choice possible).
      for (const Value &Elem : Elems) {
        PathState Branch = State;
        if (S.Slot != hir::NoSlot)
          Branch.Slots[S.Slot] = Elem;
        runList(Stmts, Index + 1, std::move(Branch));
      }
      return;
    }
    }
  }

private:
  /// Runs \p Inner to completion, then resumes (\p Outer, \p OuterIndex).
  /// Slots flowing out of the block are intentionally block-scoped:
  /// restore the outer slot vector (mirror of Eval.cpp's runNested).
  void runNested(const std::vector<hir::StmtPtr> &Inner, PathState State,
                 const std::vector<hir::StmtPtr> &Outer,
                 size_t OuterIndex) {
    Runner Sub;
    Sub.Types = Types;
    Sub.Pending = Pending;
    std::vector<Value> OuterSlots = State.Slots;
    Sub.runList(Inner, 0, std::move(State));
    Outcome.CanFail = Outcome.CanFail || Sub.Outcome.CanFail;
    for (Transition &T : Sub.Outcome.Transitions) {
      PathState Resumed;
      Resumed.G = std::move(T.Global);
      Resumed.Slots = OuterSlots;
      Resumed.Created = std::move(T.Created);
      runList(Outer, OuterIndex, std::move(Resumed));
    }
  }

  void runForIteration(const hir::Stmt &S, int64_t I, int64_t Hi,
                       PathState State,
                       const std::vector<hir::StmtPtr> &Outer,
                       size_t OuterIndex) {
    if (I > Hi) {
      runList(Outer, OuterIndex, std::move(State));
      return;
    }
    // Bind the loop variable and run the body, then iterate.
    Runner Sub;
    Sub.Types = Types;
    Sub.Pending = Pending;
    std::vector<Value> SavedSlots = State.Slots;
    if (S.Slot != hir::NoSlot)
      State.Slots[S.Slot] = Value::integer(I);
    Sub.runList(S.Body, 0, std::move(State));
    Outcome.CanFail = Outcome.CanFail || Sub.Outcome.CanFail;
    for (Transition &T : Sub.Outcome.Transitions) {
      PathState Next;
      Next.G = std::move(T.Global);
      Next.Slots = SavedSlots;
      Next.Created = std::move(T.Created);
      runForIteration(S, I + 1, Hi, std::move(Next), Outer, OuterIndex);
    }
  }
};

} // namespace

BodyOutcome asl::runHirBody(const std::vector<hir::StmtPtr> &Body,
                            const Store &G, const HirEnv &Env) {
  Runner R;
  R.Types = Env.Types;
  R.Pending = Env.Pending;
  R.runList(Body, 0, PathState{G, Env.Slots, {}});
  return std::move(R.Outcome);
}
