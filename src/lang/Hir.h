//===- lang/Hir.h - ASL high-level IR -----------------------------*- C++ -*-===//
///
/// \file
/// The typed high-level IR produced by the v2 frontend. HIR is the AST
/// after name resolution and type checking, with three structural
/// changes that make optimization and lowering mechanical:
///
///  - types are interned in a TypeTable (every node carries a TypeId);
///  - locals are slot-indexed: each action parameter and each for /
///    choose / map-comprehension binding owns a fresh slot, so name
///    shadowing is resolved statically and environments are flat
///    vectors;
///  - constants are a distinct expression kind (ConstRef) which the
///    instantiation step replaces by integer literals, making one HIR
///    module per (program, parameter binding) pair and enabling constant
///    folding across gates.
///
/// Statement structure is deliberately kept parallel to the AST
/// (including flat `choose` scoping over the remaining statements of its
/// block) so the HIR evaluator can mirror the AST evaluator's path
/// enumeration order exactly — the v1/v2 bit-identical-Program invariant
/// rests on that.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_HIR_H
#define ISQ_LANG_HIR_H

#include "lang/Ast.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace isq {
namespace asl {
namespace hir {

/// Index into TypeTable.
using TypeId = uint32_t;

/// Slot value marking an eliminated (never-read) binding: the evaluator
/// skips the write entirely.
constexpr uint32_t NoSlot = ~uint32_t(0);

/// Interned structural types. Keys on TypeRef::str(), which renders
/// symmetric sort names, so `node` and plain `int` intern to different
/// ids even though TypeRef::operator== ignores sorts — the lowering needs
/// the sort names to rebuild value shapes for the symmetry reduction.
class TypeTable {
public:
  TypeId intern(const TypeRef &T) {
    std::string Key = T.str();
    auto It = Ids.find(Key);
    if (It != Ids.end())
      return It->second;
    Types.push_back(T);
    TypeId Id = static_cast<TypeId>(Types.size() - 1);
    Ids.emplace(std::move(Key), Id);
    return Id;
  }

  const TypeRef &get(TypeId Id) const { return Types[Id]; }
  size_t size() const { return Types.size(); }

private:
  std::vector<TypeRef> Types;
  std::map<std::string, TypeId> Ids;
};

/// HIR expression kinds. VarRef splits into LocalRef / ConstRef /
/// GlobalRef; everything else parallels ExprKind.
enum class ExprKind : uint8_t {
  IntLit,    ///< IntValue
  BoolLit,   ///< IntValue (0/1)
  NoneLit,   ///< none
  EmptyLit,  ///< empty collection of type Type
  LocalRef,  ///< Slot
  ConstRef,  ///< Name — eliminated by instantiation
  GlobalRef, ///< Name
  Index,     ///< Children[0] [ Children[1] ]
  Unary,     ///< Op Children[0]
  Binary,    ///< Children[0] Op Children[1]
  Call,      ///< builtin Name(Children...); pending builtins keep the
             ///< target action's name in Callee
  Some,      ///< some(Children[0])
  MapCompr,  ///< map <Slot> in Children[0] .. Children[1] : Children[2]
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind Kind;
  SourceLoc Loc;
  TypeId Type = 0;
  int64_t IntValue = 0;
  uint32_t Slot = 0;  ///< LocalRef target / MapCompr binder
  std::string Name;   ///< builtin name (Call), const/global name
  std::string Callee; ///< pending builtins: target action name
  std::string Op;     ///< unary/binary operator spelling
  std::vector<ExprPtr> Children;
};

enum class StmtKind : uint8_t {
  Assign, ///< Name[e1]...[ek] := e — Exprs = indices + rhs (last)
  If,     ///< if Exprs[0] Body else ElseBody
  For,    ///< for <Slot> in Exprs[0] .. Exprs[1] Body
  Async,  ///< async Name(Exprs...)
  Assert, ///< assert Exprs[0]
  Await,  ///< await Exprs[0]
  Choose, ///< choose <Slot> in Exprs[0] — scopes to rest of block
  Skip,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;
  std::string Name;   ///< Assign target global / Async target action
  uint32_t Slot = 0;  ///< For/Choose binder (NoSlot when eliminated)
  std::vector<ExprPtr> Exprs;
  std::vector<StmtPtr> Body;
  std::vector<StmtPtr> ElseBody;
};

struct Param {
  std::string Name; ///< for printing only; references use the slot
  TypeId Type = 0;
  uint32_t Slot = 0;
};

struct Action {
  std::string Name;
  SourceLoc Loc;
  std::vector<Param> Params;
  std::vector<StmtPtr> Body;
  /// Total slot count (parameters + every binder), sizing the evaluation
  /// environment.
  uint32_t NumSlots = 0;
  /// The body mentions a pending builtin (the gate observes Ω).
  bool UsesPending = false;
};

struct Global {
  std::string Name;
  SourceLoc Loc;
  TypeId Type = 0;
  ExprPtr Init;
};

struct Symmetric {
  std::string Name;
  SourceLoc Loc;
  ExprPtr Lo;
  ExprPtr Hi;
};

/// One HIR module. After instantiation, ConstNames records the names the
/// instantiation substituted (for documentation/printing); no ConstRef
/// nodes remain.
struct Module {
  TypeTable Types;
  std::vector<std::string> ConstNames;
  std::vector<Global> Globals;
  std::vector<Symmetric> Symmetrics;
  std::vector<Action> Actions;
  /// Slot count shared by all global initializers and symmetric bounds
  /// (map-comprehension binders may occur there).
  uint32_t NumInitSlots = 0;
};

/// Renders the module in a stable textual form (used by tests for
/// optimizer idempotence and by --dump-hir style debugging).
std::string print(const Module &M);
std::string print(const Expr &E);
std::string print(const Stmt &S, unsigned Indent = 0);

} // namespace hir
} // namespace asl
} // namespace isq

#endif // ISQ_LANG_HIR_H
