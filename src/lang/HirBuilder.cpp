//===- lang/HirBuilder.cpp - typed AST to HIR ----------------------------------===//

#include "lang/HirBuilder.h"

#include <cassert>

using namespace isq;
using namespace isq::asl;

namespace {

/// Builds the HIR of one slot space: an action (parameters + body) or
/// the module's shared initializer space.
class Builder {
public:
  Builder(const SymbolTable &Syms, hir::TypeTable &Types)
      : Syms(Syms), Types(Types) {}

  uint32_t freshSlot() { return NextSlot++; }
  uint32_t numSlots() const { return NextSlot; }
  bool usesPending() const { return UsesPending; }

  void bindParam(const std::string &Name, uint32_t Slot) {
    Scope[Name] = Slot;
  }

  hir::ExprPtr buildExpr(const Expr &E);
  std::vector<hir::StmtPtr> buildStmts(const std::vector<StmtPtr> &Stmts,
                                       size_t Begin);

private:
  hir::StmtPtr buildStmt(const Stmt &S);

  const SymbolTable &Syms;
  hir::TypeTable &Types;
  /// Innermost slot for each visible local name.
  std::map<std::string, uint32_t> Scope;
  uint32_t NextSlot = 0;
  bool UsesPending = false;
};

hir::ExprPtr Builder::buildExpr(const Expr &E) {
  auto Out = std::make_unique<hir::Expr>();
  Out->Loc = E.loc();
  Out->Type = Types.intern(E.Type);
  switch (E.Kind) {
  case ExprKind::IntLit:
    Out->Kind = hir::ExprKind::IntLit;
    Out->IntValue = E.IntValue;
    break;
  case ExprKind::BoolLit:
    Out->Kind = hir::ExprKind::BoolLit;
    Out->IntValue = E.IntValue;
    break;
  case ExprKind::NoneLit:
    Out->Kind = hir::ExprKind::NoneLit;
    break;
  case ExprKind::EmptyLit:
    Out->Kind = hir::ExprKind::EmptyLit;
    break;
  case ExprKind::VarRef: {
    auto It = Scope.find(E.Name);
    if (It != Scope.end()) {
      Out->Kind = hir::ExprKind::LocalRef;
      Out->Slot = It->second;
      break;
    }
    if (Syms.Consts.count(E.Name)) {
      Out->Kind = hir::ExprKind::ConstRef;
      Out->Name = E.Name;
      break;
    }
    assert(Syms.Globals.count(E.Name) &&
           "unresolved name survived type checking");
    Out->Kind = hir::ExprKind::GlobalRef;
    Out->Name = E.Name;
    break;
  }
  case ExprKind::Index:
    Out->Kind = hir::ExprKind::Index;
    Out->Children.push_back(buildExpr(*E.Children[0]));
    Out->Children.push_back(buildExpr(*E.Children[1]));
    break;
  case ExprKind::Unary:
    Out->Kind = hir::ExprKind::Unary;
    Out->Op = E.Op;
    Out->Children.push_back(buildExpr(*E.Children[0]));
    break;
  case ExprKind::Binary:
    Out->Kind = hir::ExprKind::Binary;
    Out->Op = E.Op;
    Out->Children.push_back(buildExpr(*E.Children[0]));
    Out->Children.push_back(buildExpr(*E.Children[1]));
    break;
  case ExprKind::Call: {
    Out->Kind = hir::ExprKind::Call;
    Out->Name = E.Name;
    size_t FirstArg = 0;
    if (E.Name == "pending" || E.Name == "pending_le" ||
        E.Name == "pending_le_at") {
      // The first argument is the target action's name, not a value.
      Out->Callee = E.Children[0]->Name;
      FirstArg = 1;
      UsesPending = true;
    }
    for (size_t I = FirstArg; I < E.Children.size(); ++I)
      Out->Children.push_back(buildExpr(*E.Children[I]));
    break;
  }
  case ExprKind::SomeExpr:
    Out->Kind = hir::ExprKind::Some;
    Out->Children.push_back(buildExpr(*E.Children[0]));
    break;
  case ExprKind::MapCompr: {
    Out->Kind = hir::ExprKind::MapCompr;
    Out->Children.push_back(buildExpr(*E.Children[0]));
    Out->Children.push_back(buildExpr(*E.Children[1]));
    uint32_t Slot = freshSlot();
    Out->Slot = Slot;
    auto Saved = Scope.find(E.Name);
    bool Had = Saved != Scope.end();
    uint32_t Old = Had ? Saved->second : 0;
    Scope[E.Name] = Slot;
    Out->Children.push_back(buildExpr(*E.Children[2]));
    if (Had)
      Scope[E.Name] = Old;
    else
      Scope.erase(E.Name);
    break;
  }
  }
  return Out;
}

hir::StmtPtr Builder::buildStmt(const Stmt &S) {
  auto Out = std::make_unique<hir::Stmt>();
  Out->Loc = S.loc();
  switch (S.Kind) {
  case StmtKind::Skip:
    Out->Kind = hir::StmtKind::Skip;
    break;
  case StmtKind::Assert:
    Out->Kind = hir::StmtKind::Assert;
    Out->Exprs.push_back(buildExpr(*S.Exprs[0]));
    break;
  case StmtKind::Await:
    Out->Kind = hir::StmtKind::Await;
    Out->Exprs.push_back(buildExpr(*S.Exprs[0]));
    break;
  case StmtKind::Assign:
    Out->Kind = hir::StmtKind::Assign;
    Out->Name = S.Name;
    for (const ExprPtr &E : S.Exprs)
      Out->Exprs.push_back(buildExpr(*E));
    break;
  case StmtKind::Async:
    Out->Kind = hir::StmtKind::Async;
    Out->Name = S.Name;
    for (const ExprPtr &E : S.Exprs)
      Out->Exprs.push_back(buildExpr(*E));
    break;
  case StmtKind::If:
    Out->Kind = hir::StmtKind::If;
    Out->Exprs.push_back(buildExpr(*S.Exprs[0]));
    Out->Body = buildStmts(S.Body, 0);
    Out->ElseBody = buildStmts(S.ElseBody, 0);
    break;
  case StmtKind::For: {
    Out->Kind = hir::StmtKind::For;
    Out->Exprs.push_back(buildExpr(*S.Exprs[0]));
    Out->Exprs.push_back(buildExpr(*S.Exprs[1]));
    uint32_t Slot = freshSlot();
    Out->Slot = Slot;
    auto Saved = Scope.find(S.Name);
    bool Had = Saved != Scope.end();
    uint32_t Old = Had ? Saved->second : 0;
    Scope[S.Name] = Slot;
    Out->Body = buildStmts(S.Body, 0);
    if (Had)
      Scope[S.Name] = Old;
    else
      Scope.erase(S.Name);
    break;
  }
  case StmtKind::Choose:
    // Handled in buildStmts (the binding scopes over the remaining
    // statements of the enclosing list).
    Out->Kind = hir::StmtKind::Choose;
    Out->Exprs.push_back(buildExpr(*S.Exprs[0]));
    break;
  }
  return Out;
}

std::vector<hir::StmtPtr>
Builder::buildStmts(const std::vector<StmtPtr> &Stmts, size_t Begin) {
  std::vector<hir::StmtPtr> Out;
  /// Choose bindings opened in this list, undone on exit (the type
  /// checker guarantees they shadow nothing).
  std::vector<std::string> ChooseBindings;
  for (size_t I = Begin; I < Stmts.size(); ++I) {
    hir::StmtPtr S = buildStmt(*Stmts[I]);
    if (Stmts[I]->Kind == StmtKind::Choose) {
      uint32_t Slot = freshSlot();
      S->Slot = Slot;
      Scope[Stmts[I]->Name] = Slot;
      ChooseBindings.push_back(Stmts[I]->Name);
    }
    Out.push_back(std::move(S));
  }
  for (const std::string &Name : ChooseBindings)
    Scope.erase(Name);
  return Out;
}

void instantiateExpr(hir::ExprPtr &E,
                     const std::map<std::string, int64_t> &Consts) {
  if (E->Kind == hir::ExprKind::ConstRef) {
    auto It = Consts.find(E->Name);
    assert(It != Consts.end() && "unresolved constant at instantiation");
    auto Lit = std::make_unique<hir::Expr>();
    Lit->Kind = hir::ExprKind::IntLit;
    Lit->Loc = E->Loc;
    Lit->Type = E->Type;
    Lit->IntValue = It->second;
    E = std::move(Lit);
    return;
  }
  for (hir::ExprPtr &C : E->Children)
    instantiateExpr(C, Consts);
}

void instantiateStmts(std::vector<hir::StmtPtr> &Stmts,
                      const std::map<std::string, int64_t> &Consts) {
  for (hir::StmtPtr &S : Stmts) {
    for (hir::ExprPtr &E : S->Exprs)
      instantiateExpr(E, Consts);
    instantiateStmts(S->Body, Consts);
    instantiateStmts(S->ElseBody, Consts);
  }
}

} // namespace

hir::Module asl::buildHir(const Module &M, const SymbolTable &Syms) {
  hir::Module Out;
  for (const std::string &Name : Syms.ConstOrder)
    Out.ConstNames.push_back(Name);

  // Globals and symmetric bounds share one initializer slot space.
  Builder Init(Syms, Out.Types);
  for (const VarDecl &V : M.Vars) {
    hir::Global G;
    G.Name = V.Name;
    G.Loc = {V.File, V.Line, V.Column};
    G.Type = Out.Types.intern(V.Type);
    G.Init = Init.buildExpr(*V.Init);
    Out.Globals.push_back(std::move(G));
  }
  for (const SymmetricDecl &D : M.Symmetrics) {
    hir::Symmetric S;
    S.Name = D.Name;
    S.Loc = {D.File, D.Line, D.Column};
    S.Lo = Init.buildExpr(*D.Lo);
    S.Hi = Init.buildExpr(*D.Hi);
    Out.Symmetrics.push_back(std::move(S));
  }
  Out.NumInitSlots = Init.numSlots();

  for (const ActionDecl &A : M.Actions) {
    hir::Action Act;
    Act.Name = A.Name;
    Act.Loc = {A.File, A.Line, A.Column};
    Builder B(Syms, Out.Types);
    for (const ParamDecl &P : A.Params) {
      hir::Param Param;
      Param.Name = P.Name;
      Param.Type = Out.Types.intern(P.Type);
      Param.Slot = B.freshSlot();
      B.bindParam(P.Name, Param.Slot);
      Act.Params.push_back(std::move(Param));
    }
    Act.Body = B.buildStmts(A.Body, 0);
    Act.NumSlots = B.numSlots();
    Act.UsesPending = B.usesPending();
    Out.Actions.push_back(std::move(Act));
  }
  return Out;
}

void asl::instantiate(hir::Module &M,
                      const std::map<std::string, int64_t> &Consts) {
  for (hir::Global &G : M.Globals)
    instantiateExpr(G.Init, Consts);
  for (hir::Symmetric &S : M.Symmetrics) {
    instantiateExpr(S.Lo, Consts);
    instantiateExpr(S.Hi, Consts);
  }
  for (hir::Action &A : M.Actions)
    instantiateStmts(A.Body, Consts);
}
