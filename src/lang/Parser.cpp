//===- lang/Parser.cpp - ASL parser --------------------------------------------===//

#include "lang/Parser.h"

using namespace isq;
using namespace isq::asl;

namespace {

/// The parser state: a token cursor with diagnostics.
class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<Diagnostic> &Diags,
         uint32_t FileId)
      : Tokens(std::move(Tokens)), Diags(Diags), FileId(FileId) {}

  std::optional<Module> parseModule();

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t Index = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[Index];
  }
  const Token &advance() { return Tokens[std::min(Pos++, Tokens.size() - 1)]; }
  bool check(TokenKind K) const { return peek().is(K); }
  bool match(TokenKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokenKind K, const char *Context) {
    if (match(K))
      return true;
    error(std::string("expected ") + tokenKindName(K) + " " + Context +
          ", found " + tokenKindName(peek().Kind));
    return false;
  }
  void error(const std::string &Message) {
    Diags.push_back(
        {Message, peek().Line, peek().Column, Severity::Error, FileId});
    Failed = true;
  }
  ExprPtr makeExpr(ExprKind Kind, const Token &At) const {
    auto E = std::make_unique<Expr>();
    E->Kind = Kind;
    E->Line = At.Line;
    E->Column = At.Column;
    E->File = FileId;
    return E;
  }

  std::optional<TypeRef> parseType();
  ExprPtr parseExpr();
  ExprPtr parseBinaryRhs(int MinPrec, ExprPtr Lhs);
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  StmtPtr parseStmt();
  bool parseBlock(std::vector<StmtPtr> &Out);

  std::vector<Token> Tokens;
  std::vector<Diagnostic> &Diags;
  uint32_t FileId = 0;
  size_t Pos = 0;
  bool Failed = false;
};

/// Binary operator precedence (higher binds tighter); -1 for non-operators.
int precedenceOf(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::EqEq:
  case TokenKind::BangEq:
    return 3;
  case TokenKind::Less:
  case TokenKind::LessEq:
  case TokenKind::Greater:
  case TokenKind::GreaterEq:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return -1;
  }
}

} // namespace

std::optional<TypeRef> Parser::parseType() {
  const Token &T = advance();
  auto Param = [&]() -> std::optional<TypeRef> {
    if (!expect(TokenKind::Less, "in type"))
      return std::nullopt;
    auto Inner = parseType();
    if (!Inner)
      return std::nullopt;
    if (!expect(TokenKind::Greater, "closing type parameter"))
      return std::nullopt;
    return Inner;
  };
  switch (T.Kind) {
  case TokenKind::KwInt:
    return TypeRef::intTy();
  case TokenKind::KwBool:
    return TypeRef::boolTy();
  case TokenKind::KwOption: {
    auto Inner = Param();
    return Inner ? std::optional<TypeRef>(TypeRef::optionTy(*Inner))
                 : std::nullopt;
  }
  case TokenKind::KwSet: {
    auto Inner = Param();
    return Inner ? std::optional<TypeRef>(TypeRef::setTy(*Inner))
                 : std::nullopt;
  }
  case TokenKind::KwBag: {
    auto Inner = Param();
    return Inner ? std::optional<TypeRef>(TypeRef::bagTy(*Inner))
                 : std::nullopt;
  }
  case TokenKind::KwSeq: {
    auto Inner = Param();
    return Inner ? std::optional<TypeRef>(TypeRef::seqTy(*Inner))
                 : std::nullopt;
  }
  case TokenKind::KwMap: {
    if (!expect(TokenKind::Less, "in map type"))
      return std::nullopt;
    auto Key = parseType();
    if (!Key || !expect(TokenKind::Comma, "between map type parameters"))
      return std::nullopt;
    auto Val = parseType();
    if (!Val || !expect(TokenKind::Greater, "closing map type"))
      return std::nullopt;
    return TypeRef::mapTy(*Key, *Val);
  }
  case TokenKind::Identifier:
    // A named symmetric sort (structurally int). The type checker
    // verifies the name is actually declared.
    return TypeRef::sortTy(T.Text);
  default:
    error(std::string("expected a type, found ") + tokenKindName(T.Kind));
    return std::nullopt;
  }
}

ExprPtr Parser::parsePrimary() {
  const Token &T = peek();
  switch (T.Kind) {
  case TokenKind::IntLiteral: {
    ExprPtr E = makeExpr(ExprKind::IntLit, T);
    E->IntValue = T.IntValue;
    advance();
    return E;
  }
  case TokenKind::KwTrue:
  case TokenKind::KwFalse: {
    ExprPtr E = makeExpr(ExprKind::BoolLit, T);
    E->IntValue = T.Kind == TokenKind::KwTrue ? 1 : 0;
    advance();
    return E;
  }
  case TokenKind::KwNone: {
    advance();
    return makeExpr(ExprKind::NoneLit, T);
  }
  case TokenKind::LBrace: {
    // {} — empty set/bag/map literal, typed from context.
    ExprPtr E = makeExpr(ExprKind::EmptyLit, T);
    advance();
    expect(TokenKind::RBrace, "closing empty collection literal");
    return E;
  }
  case TokenKind::LBracket: {
    // [] — empty sequence literal (IntValue marks the bracket spelling
    // so the printer can round-trip before type checking).
    ExprPtr E = makeExpr(ExprKind::EmptyLit, T);
    E->IntValue = 1;
    advance();
    expect(TokenKind::RBracket, "closing empty sequence literal");
    return E;
  }
  case TokenKind::KwSome: {
    ExprPtr E = makeExpr(ExprKind::SomeExpr, T);
    advance();
    expect(TokenKind::LParen, "after 'some'");
    E->Children.push_back(parseExpr());
    expect(TokenKind::RParen, "closing 'some'");
    return E;
  }
  case TokenKind::KwMap: {
    // map i in lo .. hi : body
    ExprPtr E = makeExpr(ExprKind::MapCompr, T);
    advance();
    if (check(TokenKind::Identifier)) {
      E->Name = peek().Text;
      advance();
    } else {
      error("expected comprehension variable after 'map'");
    }
    expect(TokenKind::KwIn, "in map comprehension");
    E->Children.push_back(parseExpr());
    expect(TokenKind::DotDot, "in map comprehension range");
    E->Children.push_back(parseExpr());
    expect(TokenKind::Colon, "before map comprehension body");
    E->Children.push_back(parseExpr());
    return E;
  }
  case TokenKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "closing parenthesis");
    return E;
  }
  case TokenKind::Identifier: {
    Token Id = advance();
    if (match(TokenKind::LParen)) {
      // Builtin call.
      ExprPtr E = makeExpr(ExprKind::Call, Id);
      E->Name = Id.Text;
      if (!check(TokenKind::RParen)) {
        do {
          E->Children.push_back(parseExpr());
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "closing call");
      return E;
    }
    ExprPtr E = makeExpr(ExprKind::VarRef, Id);
    E->Name = Id.Text;
    // Indexing chains: a[i][j].
    while (match(TokenKind::LBracket)) {
      ExprPtr Index = makeExpr(ExprKind::Index, Id);
      Index->Children.push_back(std::move(E));
      Index->Children.push_back(parseExpr());
      expect(TokenKind::RBracket, "closing index");
      E = std::move(Index);
    }
    return E;
  }
  default:
    error(std::string("expected an expression, found ") +
          tokenKindName(T.Kind));
    advance();
    return makeExpr(ExprKind::IntLit, T);
  }
}

ExprPtr Parser::parseUnary() {
  const Token &T = peek();
  if (T.is(TokenKind::Minus) || T.is(TokenKind::Bang)) {
    advance();
    ExprPtr E = makeExpr(ExprKind::Unary, T);
    E->Op = T.is(TokenKind::Minus) ? "-" : "!";
    E->Children.push_back(parseUnary());
    return E;
  }
  return parsePrimary();
}

ExprPtr Parser::parseBinaryRhs(int MinPrec, ExprPtr Lhs) {
  while (true) {
    int Prec = precedenceOf(peek().Kind);
    if (Prec < MinPrec)
      return Lhs;
    Token Op = advance();
    ExprPtr Rhs = parseUnary();
    int NextPrec = precedenceOf(peek().Kind);
    if (NextPrec > Prec)
      Rhs = parseBinaryRhs(Prec + 1, std::move(Rhs));
    ExprPtr Bin = makeExpr(ExprKind::Binary, Op);
    Bin->Op = Op.Text;
    Bin->Children.push_back(std::move(Lhs));
    Bin->Children.push_back(std::move(Rhs));
    Lhs = std::move(Bin);
  }
}

ExprPtr Parser::parseExpr() { return parseBinaryRhs(1, parseUnary()); }

bool Parser::parseBlock(std::vector<StmtPtr> &Out) {
  if (!expect(TokenKind::LBrace, "to open block"))
    return false;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    StmtPtr S = parseStmt();
    if (!S)
      return false;
    Out.push_back(std::move(S));
  }
  return expect(TokenKind::RBrace, "to close block");
}

StmtPtr Parser::parseStmt() {
  const Token &T = peek();
  auto S = std::make_unique<Stmt>();
  S->Line = T.Line;
  S->Column = T.Column;
  S->File = FileId;
  switch (T.Kind) {
  case TokenKind::KwSkip:
    advance();
    S->Kind = StmtKind::Skip;
    expect(TokenKind::Semicolon, "after 'skip'");
    return S;
  case TokenKind::KwAssert:
    advance();
    S->Kind = StmtKind::Assert;
    S->Exprs.push_back(parseExpr());
    expect(TokenKind::Semicolon, "after 'assert'");
    return S;
  case TokenKind::KwAwait:
    advance();
    S->Kind = StmtKind::Await;
    S->Exprs.push_back(parseExpr());
    expect(TokenKind::Semicolon, "after 'await'");
    return S;
  case TokenKind::KwAsync: {
    advance();
    S->Kind = StmtKind::Async;
    if (check(TokenKind::Identifier)) {
      S->Name = peek().Text;
      advance();
    } else {
      error("expected action name after 'async'");
    }
    expect(TokenKind::LParen, "after async action name");
    if (!check(TokenKind::RParen)) {
      do {
        S->Exprs.push_back(parseExpr());
      } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "closing async arguments");
    expect(TokenKind::Semicolon, "after async call");
    return S;
  }
  case TokenKind::KwChoose: {
    advance();
    S->Kind = StmtKind::Choose;
    if (check(TokenKind::Identifier)) {
      S->Name = peek().Text;
      advance();
    } else {
      error("expected variable name after 'choose'");
    }
    expect(TokenKind::KwIn, "in choose statement");
    S->Exprs.push_back(parseExpr());
    expect(TokenKind::Semicolon, "after choose");
    return S;
  }
  case TokenKind::KwIf: {
    advance();
    S->Kind = StmtKind::If;
    S->Exprs.push_back(parseExpr());
    if (!parseBlock(S->Body))
      return nullptr;
    if (match(TokenKind::KwElse))
      if (!parseBlock(S->ElseBody))
        return nullptr;
    return S;
  }
  case TokenKind::KwFor: {
    advance();
    S->Kind = StmtKind::For;
    if (check(TokenKind::Identifier)) {
      S->Name = peek().Text;
      advance();
    } else {
      error("expected loop variable after 'for'");
    }
    expect(TokenKind::KwIn, "in for statement");
    S->Exprs.push_back(parseExpr());
    expect(TokenKind::DotDot, "in for range");
    S->Exprs.push_back(parseExpr());
    if (!parseBlock(S->Body))
      return nullptr;
    return S;
  }
  case TokenKind::Identifier: {
    // Assignment: name[idx]* := expr ;
    S->Kind = StmtKind::Assign;
    S->Name = T.Text;
    advance();
    while (match(TokenKind::LBracket)) {
      S->Exprs.push_back(parseExpr());
      expect(TokenKind::RBracket, "closing index in assignment");
    }
    expect(TokenKind::Assign, "in assignment");
    S->Exprs.push_back(parseExpr());
    expect(TokenKind::Semicolon, "after assignment");
    return S;
  }
  default:
    error(std::string("expected a statement, found ") +
          tokenKindName(T.Kind));
    advance();
    return nullptr;
  }
}

std::optional<Module> Parser::parseModule() {
  Module M;
  while (!check(TokenKind::Eof)) {
    // `symmetric`, `import`, and `param` are context-sensitive keywords:
    // only an identifier with that spelling in declaration position opens
    // the corresponding declaration, so existing modules may keep using
    // the names elsewhere (e.g. as action parameters).
    if (check(TokenKind::Identifier) && peek().Text == "import") {
      ImportDecl D;
      D.Line = peek().Line;
      D.Column = peek().Column;
      D.File = FileId;
      advance();
      if (check(TokenKind::StringLiteral)) {
        D.Path = peek().Text;
        advance();
        if (D.Path.empty())
          error("import path must not be empty");
      } else {
        error("expected a quoted path after 'import'");
      }
      expect(TokenKind::Semicolon, "after import declaration");
      M.Imports.push_back(std::move(D));
      continue;
    }
    if (check(TokenKind::Identifier) && peek().Text == "param") {
      ConstDecl D;
      D.Line = peek().Line;
      D.Column = peek().Column;
      D.File = FileId;
      D.IsParam = true;
      advance();
      if (check(TokenKind::Identifier)) {
        D.Name = peek().Text;
        advance();
      } else {
        error("expected parameter name after 'param'");
      }
      expect(TokenKind::Colon, "in param declaration");
      auto Ty = parseType();
      if (Ty && *Ty != TypeRef::intTy())
        error("parameters must have type int");
      if (match(TokenKind::Assign))
        D.Init = parseExpr();
      expect(TokenKind::Semicolon, "after param declaration");
      M.Consts.push_back(std::move(D));
      continue;
    }
    if (check(TokenKind::Identifier) && peek().Text == "symmetric") {
      SymmetricDecl D;
      D.Line = peek().Line;
      D.Column = peek().Column;
      D.File = FileId;
      advance();
      if (check(TokenKind::Identifier)) {
        D.Name = peek().Text;
        advance();
      } else {
        error("expected sort name after 'symmetric'");
      }
      expect(TokenKind::Colon, "in symmetric declaration");
      D.Lo = parseExpr();
      expect(TokenKind::DotDot, "in symmetric sort range");
      D.Hi = parseExpr();
      expect(TokenKind::Semicolon, "after symmetric declaration");
      M.Symmetrics.push_back(std::move(D));
      continue;
    }
    if (match(TokenKind::KwConst)) {
      ConstDecl D;
      D.Line = peek().Line;
      D.Column = peek().Column;
      D.File = FileId;
      if (check(TokenKind::Identifier)) {
        D.Name = peek().Text;
        advance();
      } else {
        error("expected constant name");
      }
      expect(TokenKind::Colon, "in const declaration");
      auto Ty = parseType();
      if (Ty && *Ty != TypeRef::intTy())
        error("constants must have type int");
      if (match(TokenKind::Assign))
        D.Init = parseExpr();
      expect(TokenKind::Semicolon, "after const declaration");
      M.Consts.push_back(std::move(D));
      continue;
    }
    if (match(TokenKind::KwVar)) {
      VarDecl D;
      D.Line = peek().Line;
      D.Column = peek().Column;
      D.File = FileId;
      if (check(TokenKind::Identifier)) {
        D.Name = peek().Text;
        advance();
      } else {
        error("expected variable name");
      }
      expect(TokenKind::Colon, "in var declaration");
      auto Ty = parseType();
      if (Ty)
        D.Type = *Ty;
      expect(TokenKind::Assign, "var declarations need an initializer");
      D.Init = parseExpr();
      expect(TokenKind::Semicolon, "after var declaration");
      M.Vars.push_back(std::move(D));
      continue;
    }
    if (match(TokenKind::KwAction)) {
      ActionDecl A;
      A.Line = peek().Line;
      A.Column = peek().Column;
      A.File = FileId;
      if (check(TokenKind::Identifier)) {
        A.Name = peek().Text;
        advance();
      } else {
        error("expected action name");
      }
      expect(TokenKind::LParen, "after action name");
      if (!check(TokenKind::RParen)) {
        do {
          ParamDecl P;
          if (check(TokenKind::Identifier)) {
            P.Name = peek().Text;
            advance();
          } else {
            error("expected parameter name");
          }
          expect(TokenKind::Colon, "in parameter declaration");
          auto Ty = parseType();
          if (Ty)
            P.Type = *Ty;
          A.Params.push_back(std::move(P));
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "closing parameter list");
      if (!parseBlock(A.Body))
        return std::nullopt;
      M.Actions.push_back(std::move(A));
      continue;
    }
    error(std::string("expected a declaration, found ") +
          tokenKindName(peek().Kind));
    advance();
  }
  if (Failed)
    return std::nullopt;
  return M;
}

std::optional<Module> asl::parseModule(const std::string &Source,
                                       std::vector<Diagnostic> &Diags,
                                       uint32_t FileId) {
  std::vector<Token> Tokens = lex(Source, Diags, FileId);
  if (!Diags.empty())
    return std::nullopt;
  Parser P(std::move(Tokens), Diags, FileId);
  return P.parseModule();
}
