//===- lang/Ast.h - ASL abstract syntax ---------------------------*- C++ -*-===//
///
/// \file
/// The abstract syntax of ASL. A module declares integer constants
/// (bound at compile time, e.g. the instance size n), initialized global
/// variables, and actions. An action body is a statement list whose
/// operational reading produces the gate and the finitely branching
/// transition relation of a gated atomic action:
///
///  - `assert e;` contributes to the gate (a reachable violation makes the
///    gate false, i.e. the action can fail);
///  - `await e;` blocks the current path (no transition) when e is false;
///  - `choose x in e;` branches over the elements of a finite collection;
///  - `async A(e...);` records a pending async;
///  - assignments, `if`, and bounded `for` are standard.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_AST_H
#define ISQ_LANG_AST_H

#include "lang/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace isq {
namespace asl {

/// A structural ASL type.
struct TypeRef {
  enum class Kind : uint8_t {
    Invalid,
    Int,
    Bool,
    Option,
    Set,
    Bag,
    Map,
    Seq,
  };

  Kind K = Kind::Invalid;
  /// Element types: one for option/set/bag/seq, two (key, value) for map.
  std::vector<TypeRef> Params;
  /// Non-empty when this is a named symmetric sort (structurally an int
  /// drawn from the declared domain). The sort name is a refinement
  /// annotation only: it does not participate in type equality, so a
  /// node-typed value flows freely where an int is expected.
  std::string Sort;

  static TypeRef invalid() { return TypeRef(); }
  static TypeRef intTy() { return TypeRef{Kind::Int, {}, {}}; }
  static TypeRef boolTy() { return TypeRef{Kind::Bool, {}, {}}; }
  static TypeRef sortTy(std::string Name) {
    return TypeRef{Kind::Int, {}, std::move(Name)};
  }
  static TypeRef optionTy(TypeRef Elem) {
    return TypeRef{Kind::Option, {std::move(Elem)}, {}};
  }
  static TypeRef setTy(TypeRef Elem) {
    return TypeRef{Kind::Set, {std::move(Elem)}, {}};
  }
  static TypeRef bagTy(TypeRef Elem) {
    return TypeRef{Kind::Bag, {std::move(Elem)}, {}};
  }
  static TypeRef mapTy(TypeRef Key, TypeRef Val) {
    return TypeRef{Kind::Map, {std::move(Key), std::move(Val)}, {}};
  }
  static TypeRef seqTy(TypeRef Elem) {
    return TypeRef{Kind::Seq, {std::move(Elem)}, {}};
  }

  bool isValid() const { return K != Kind::Invalid; }
  /// Structural equality; Sort is deliberately ignored (see above).
  bool operator==(const TypeRef &O) const {
    return K == O.K && Params == O.Params;
  }
  bool operator!=(const TypeRef &O) const { return !(*this == O); }

  /// Renders "map<int, bag<int>>".
  std::string str() const;
};

/// Expression node kinds.
enum class ExprKind : uint8_t {
  IntLit,   ///< IntValue
  BoolLit,  ///< IntValue (0/1)
  NoneLit,  ///< none
  EmptyLit, ///< {} or [] — collection type inferred from context
  VarRef,   ///< Name
  Index,    ///< Children[0] [ Children[1] ]
  Unary,    ///< Op Children[0]
  Binary,   ///< Children[0] Op Children[1]
  Call,     ///< builtin Name(Children...)
  SomeExpr, ///< some(Children[0])
  MapCompr, ///< map Name in Children[0] .. Children[1] : Children[2]
};

/// A uniform expression node (kind-tagged).
struct Expr {
  ExprKind Kind;
  unsigned Line = 0;
  unsigned Column = 0;
  /// SourceManager id of the owning file (0 = main input).
  uint32_t File = 0;

  SourceLoc loc() const { return {File, Line, Column}; }
  int64_t IntValue = 0;
  std::string Name; ///< variable / builtin / bound comprehension variable
  std::string Op;   ///< unary/binary operator spelling
  std::vector<std::unique_ptr<Expr>> Children;
  /// Resolved type, filled in by the type checker (used by the evaluator
  /// to construct correctly typed empty collections).
  TypeRef Type;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Statement node kinds.
enum class StmtKind : uint8_t {
  Assign, ///< Name[e1]...[ek] := e — Exprs = indices + rhs (last)
  If,     ///< if Exprs[0] Body else ElseBody
  For,    ///< for Name in Exprs[0] .. Exprs[1] Body
  Async,  ///< async Name(Exprs...)
  Assert, ///< assert Exprs[0]
  Await,  ///< await Exprs[0]
  Choose, ///< choose Name in Exprs[0] — Name scopes to the rest of block
  Skip,
};

struct Stmt {
  StmtKind Kind;
  unsigned Line = 0;
  unsigned Column = 0;
  uint32_t File = 0;
  std::string Name;

  SourceLoc loc() const { return {File, Line, Column}; }
  std::vector<ExprPtr> Exprs;
  std::vector<std::unique_ptr<Stmt>> Body;
  std::vector<std::unique_ptr<Stmt>> ElseBody;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// An action parameter.
struct ParamDecl {
  std::string Name;
  TypeRef Type;
};

/// An action declaration.
struct ActionDecl {
  std::string Name;
  std::vector<ParamDecl> Params;
  std::vector<StmtPtr> Body;
  unsigned Line = 0;
  unsigned Column = 0;
  uint32_t File = 0;
};

/// A compile-time integer constant. Three spellings:
///
///   const x: int;          host-bound (a --const binding is required)
///   param n: int;          instantiation parameter, no default
///                          (a --param/--const binding is required)
///   param n: int := 2;     instantiation parameter with a default
///   const q: int := e;     derived: folded from parameters and earlier
///                          constants; never externally bindable
struct ConstDecl {
  std::string Name;
  unsigned Line = 0;
  unsigned Column = 0;
  uint32_t File = 0;
  /// Declared with `param` (externally bindable, may carry a default).
  bool IsParam = false;
  /// Default (param) or derived-value (const) initializer expression;
  /// null for host-bound constants and defaultless parameters.
  ExprPtr Init;
};

/// An initialized global variable.
struct VarDecl {
  std::string Name;
  TypeRef Type;
  ExprPtr Init;
  unsigned Line = 0;
  unsigned Column = 0;
  uint32_t File = 0;
};

/// A declared symmetric node-ID sort: `symmetric node: lo .. hi;`. The
/// bounds are constant expressions (they may reference module constants);
/// variables and parameters typed with the sort's name hold IDs that are
/// interchangeable under permutation.
struct SymmetricDecl {
  std::string Name;
  ExprPtr Lo;
  ExprPtr Hi;
  unsigned Line = 0;
  unsigned Column = 0;
  uint32_t File = 0;
};

/// An `import "path.asl";` declaration. Kept on the parsed module so the
/// printer round-trips; the module resolver consumes and clears them when
/// it merges the imported declarations in.
struct ImportDecl {
  std::string Path;
  unsigned Line = 0;
  unsigned Column = 0;
  uint32_t File = 0;
};

/// A parsed ASL module.
struct Module {
  std::vector<ImportDecl> Imports;
  std::vector<ConstDecl> Consts;
  std::vector<SymmetricDecl> Symmetrics;
  std::vector<VarDecl> Vars;
  std::vector<ActionDecl> Actions;

  const ActionDecl *findAction(const std::string &Name) const {
    for (const ActionDecl &A : Actions)
      if (A.Name == Name)
        return &A;
    return nullptr;
  }
};

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_AST_H
