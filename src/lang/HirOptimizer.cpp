//===- lang/HirOptimizer.cpp - HIR simplification ------------------------------===//

#include "lang/HirOptimizer.h"

#include <cassert>
#include <set>

using namespace isq;
using namespace isq::asl;



namespace {

bool isIntLit(const hir::Expr &E) {
  return E.Kind == hir::ExprKind::IntLit;
}
bool isBoolLit(const hir::Expr &E) {
  return E.Kind == hir::ExprKind::BoolLit;
}
bool isTrue(const hir::Expr &E) { return isBoolLit(E) && E.IntValue != 0; }
bool isFalse(const hir::Expr &E) { return isBoolLit(E) && E.IntValue == 0; }

/// True when evaluating \p E can neither fail nor diverge for any store
/// and environment: no calls (several builtins are partial), no map
/// indexing (missing keys fail), no division or modulo unless the
/// divisor is a nonzero literal. Such expressions may be dropped.
bool isTotal(const hir::Expr &E) {
  switch (E.Kind) {
  case hir::ExprKind::Call:
  case hir::ExprKind::Index:
    return false;
  case hir::ExprKind::Binary:
    if ((E.Op == "/" || E.Op == "%") &&
        !(isIntLit(*E.Children[1]) && E.Children[1]->IntValue != 0))
      return false;
    break;
  default:
    break;
  }
  for (const hir::ExprPtr &C : E.Children)
    if (!isTotal(*C))
      return false;
  return true;
}

class Optimizer {
public:
  bool Changed = false;

  void foldExpr(hir::ExprPtr &E);
  /// Returns the optimized replacement of \p Stmts.
  std::vector<hir::StmtPtr> simplifyStmts(std::vector<hir::StmtPtr> Stmts);

private:
  hir::ExprPtr makeIntLit(const hir::Expr &At, int64_t V) {
    auto Out = std::make_unique<hir::Expr>();
    Out->Kind = hir::ExprKind::IntLit;
    Out->Loc = At.Loc;
    Out->Type = At.Type;
    Out->IntValue = V;
    return Out;
  }
  hir::ExprPtr makeBoolLit(const hir::Expr &At, bool V) {
    auto Out = std::make_unique<hir::Expr>();
    Out->Kind = hir::ExprKind::BoolLit;
    Out->Loc = At.Loc;
    Out->Type = At.Type;
    Out->IntValue = V ? 1 : 0;
    return Out;
  }
};

void Optimizer::foldExpr(hir::ExprPtr &E) {
  for (hir::ExprPtr &C : E->Children)
    foldExpr(C);

  if (E->Kind == hir::ExprKind::Unary) {
    const hir::Expr &A = *E->Children[0];
    if (E->Op == "-" && isIntLit(A)) {
      E = makeIntLit(*E, -A.IntValue);
      Changed = true;
    } else if (E->Op == "!" && isBoolLit(A)) {
      E = makeBoolLit(*E, A.IntValue == 0);
      Changed = true;
    }
    return;
  }
  if (E->Kind != hir::ExprKind::Binary)
    return;

  const hir::Expr &A = *E->Children[0];
  const hir::Expr &B = *E->Children[1];
  const std::string &Op = E->Op;

  if (Op == "&&") {
    // `g && false` is NOT folded: g must still be evaluated.
    if (isTrue(A))
      E = std::move(E->Children[1]);
    else if (isFalse(A))
      E = makeBoolLit(*E, false);
    else if (isTrue(B))
      E = std::move(E->Children[0]);
    else
      return;
    Changed = true;
    return;
  }
  if (Op == "||") {
    // `g || true` is NOT folded, symmetrically.
    if (isFalse(A))
      E = std::move(E->Children[1]);
    else if (isTrue(A))
      E = makeBoolLit(*E, true);
    else if (isFalse(B))
      E = std::move(E->Children[0]);
    else
      return;
    Changed = true;
    return;
  }

  if (isIntLit(A) && isIntLit(B)) {
    int64_t X = A.IntValue, Y = B.IntValue;
    if (Op == "+")
      E = makeIntLit(*E, X + Y);
    else if (Op == "-")
      E = makeIntLit(*E, X - Y);
    else if (Op == "*")
      E = makeIntLit(*E, X * Y);
    else if (Op == "/" && Y != 0)
      E = makeIntLit(*E, X / Y);
    else if (Op == "%" && Y != 0)
      E = makeIntLit(*E, X % Y);
    else if (Op == "<")
      E = makeBoolLit(*E, X < Y);
    else if (Op == "<=")
      E = makeBoolLit(*E, X <= Y);
    else if (Op == ">")
      E = makeBoolLit(*E, X > Y);
    else if (Op == ">=")
      E = makeBoolLit(*E, X >= Y);
    else if (Op == "==")
      E = makeBoolLit(*E, X == Y);
    else if (Op == "!=")
      E = makeBoolLit(*E, X != Y);
    else
      return; // division/modulo by literal zero: left for evaluation
    Changed = true;
    return;
  }
  if (isBoolLit(A) && isBoolLit(B) && (Op == "==" || Op == "!=")) {
    bool Equal = (A.IntValue != 0) == (B.IntValue != 0);
    E = makeBoolLit(*E, Op == "==" ? Equal : !Equal);
    Changed = true;
  }
}

std::vector<hir::StmtPtr> Optimizer::simplifyStmts(std::vector<hir::StmtPtr> Stmts) {
  std::vector<hir::StmtPtr> Out;
  for (size_t I = 0; I < Stmts.size(); ++I) {
    hir::StmtPtr S = std::move(Stmts[I]);
    for (hir::ExprPtr &E : S->Exprs)
      foldExpr(E);
    S->Body = simplifyStmts(std::move(S->Body));
    S->ElseBody = simplifyStmts(std::move(S->ElseBody));

    switch (S->Kind) {
    case hir::StmtKind::Skip:
      Changed = true;
      continue;
    case hir::StmtKind::Assert:
      if (isTrue(*S->Exprs[0])) {
        Changed = true;
        continue;
      }
      if (isFalse(*S->Exprs[0])) {
        // The path unconditionally fails here; everything after is
        // unreachable.
        Out.push_back(std::move(S));
        if (I + 1 < Stmts.size())
          Changed = true;
        return Out;
      }
      break;
    case hir::StmtKind::Await:
      if (isTrue(*S->Exprs[0])) {
        Changed = true;
        continue;
      }
      if (isFalse(*S->Exprs[0])) {
        // The path unconditionally blocks here.
        Out.push_back(std::move(S));
        if (I + 1 < Stmts.size())
          Changed = true;
        return Out;
      }
      break;
    case hir::StmtKind::If: {
      if (isBoolLit(*S->Exprs[0])) {
        // Inline the taken branch. Scope-safe: bindings are slots, and
        // the statements after the if never read the branch's slots.
        std::vector<hir::StmtPtr> &Taken =
            isTrue(*S->Exprs[0]) ? S->Body : S->ElseBody;
        for (hir::StmtPtr &Inner : Taken)
          Out.push_back(std::move(Inner));
        Changed = true;
        continue;
      }
      if (S->Body.empty() && S->ElseBody.empty() &&
          isTotal(*S->Exprs[0])) {
        Changed = true;
        continue;
      }
      break;
    }
    case hir::StmtKind::For:
      if (S->Body.empty() && isTotal(*S->Exprs[0]) &&
          isTotal(*S->Exprs[1])) {
        Changed = true;
        continue;
      }
      break;
    case hir::StmtKind::Assign:
    case hir::StmtKind::Async:
    case hir::StmtKind::Choose:
      // Never touched: assignments and asyncs are the transition payload,
      // and a choose's branching *is* the transition relation.
      break;
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

/// Collects every slot read by a LocalRef.
void collectUsedSlots(const hir::Expr &E, std::set<uint32_t> &Used) {
  if (E.Kind == hir::ExprKind::LocalRef)
    Used.insert(E.Slot);
  for (const hir::ExprPtr &C : E.Children)
    collectUsedSlots(*C, Used);
}

void collectUsedSlots(const std::vector<hir::StmtPtr> &Stmts,
                      std::set<uint32_t> &Used) {
  for (const hir::StmtPtr &S : Stmts) {
    for (const hir::ExprPtr &E : S->Exprs)
      collectUsedSlots(*E, Used);
    collectUsedSlots(S->Body, Used);
    collectUsedSlots(S->ElseBody, Used);
  }
}

/// Marks binder slots that are never read as NoSlot.
bool elideDeadBindingsExpr(hir::Expr &E, const std::set<uint32_t> &Used) {
  bool Changed = false;
  if (E.Kind == hir::ExprKind::MapCompr && E.Slot != hir::NoSlot &&
      !Used.count(E.Slot)) {
    E.Slot = hir::NoSlot;
    Changed = true;
  }
  for (hir::ExprPtr &C : E.Children)
    Changed = elideDeadBindingsExpr(*C, Used) || Changed;
  return Changed;
}

bool elideDeadBindingsStmts(std::vector<hir::StmtPtr> &Stmts,
                            const std::set<uint32_t> &Used) {
  bool Changed = false;
  for (hir::StmtPtr &S : Stmts) {
    if ((S->Kind == hir::StmtKind::For ||
         S->Kind == hir::StmtKind::Choose) &&
        S->Slot != hir::NoSlot && !Used.count(S->Slot)) {
      S->Slot = hir::NoSlot;
      Changed = true;
    }
    for (hir::ExprPtr &E : S->Exprs)
      Changed = elideDeadBindingsExpr(*E, Used) || Changed;
    Changed = elideDeadBindingsStmts(S->Body, Used) || Changed;
    Changed = elideDeadBindingsStmts(S->ElseBody, Used) || Changed;
  }
  return Changed;
}

} // namespace

void asl::optimizeHir(hir::Module &M) {
  // Fold the initializer expressions once (they are evaluated a single
  // time to build the initial store; statement rules do not apply).
  Optimizer Init;
  for (hir::Global &G : M.Globals)
    Init.foldExpr(G.Init);
  for (hir::Symmetric &S : M.Symmetrics) {
    Init.foldExpr(S.Lo);
    Init.foldExpr(S.Hi);
  }

  for (hir::Action &A : M.Actions) {
    // Simplify to a fixpoint, so the pass is idempotent by construction.
    while (true) {
      Optimizer Pass;
      A.Body = Pass.simplifyStmts(std::move(A.Body));
      std::set<uint32_t> Used;
      collectUsedSlots(A.Body, Used);
      bool Elided = elideDeadBindingsStmts(A.Body, Used);
      if (!Pass.Changed && !Elided)
        break;
    }
  }
  // Dead map-comprehension binders in initializers.
  for (hir::Global &G : M.Globals) {
    std::set<uint32_t> Used;
    collectUsedSlots(*G.Init, Used);
    elideDeadBindingsExpr(*G.Init, Used);
  }
}
