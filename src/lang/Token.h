//===- lang/Token.h - ASL tokens ----------------------------------*- C++ -*-===//
///
/// \file
/// Token definitions for ASL, the atomic-action specification language —
/// this project's textual frontend for defining programs of gated atomic
/// actions (the analogue of CIVL's input language for the IS rule).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_TOKEN_H
#define ISQ_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace isq {
namespace asl {

enum class TokenKind : uint8_t {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  StringLiteral, ///< "path.asl" — import paths only; no escape sequences
  // Keywords.
  KwConst,
  KwVar,
  KwAction,
  KwIf,
  KwElse,
  KwFor,
  KwIn,
  KwAsync,
  KwAssert,
  KwAwait,
  KwChoose,
  KwSkip,
  KwTrue,
  KwFalse,
  KwNone,
  KwSome,
  KwMap,
  KwInt,
  KwBool,
  KwOption,
  KwSet,
  KwBag,
  KwSeq,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Assign,    // :=
  DotDot,    // ..
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  BangEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang,
  Eof,
};

/// Printable token-kind name for diagnostics.
const char *tokenKindName(TokenKind K);

/// A lexed token with its source location (1-based line/column).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  unsigned Line = 0;
  unsigned Column = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_TOKEN_H
