//===- lang/Lowering.cpp - HIR to semantic objects -----------------------------===//

#include "lang/Lowering.h"

#include "lang/HirEval.h"
#include "semantics/Fingerprint.h"
#include "semantics/Symmetry.h"

#include <memory>

using namespace isq;
using namespace isq::asl;

namespace {

/// The value shape induced by an ASL type: Id leaves exactly where the
/// declared symmetric sort \p Sort is named (mirror of Compile.cpp).
ValueShape shapeOf(const TypeRef &T, const std::string &Sort) {
  using TK = TypeRef::Kind;
  switch (T.K) {
  case TK::Int:
    return T.Sort == Sort ? ValueShape::id() : ValueShape::plain();
  case TK::Option:
    return ValueShape::option(shapeOf(T.Params[0], Sort));
  case TK::Set:
    return ValueShape::setOf(shapeOf(T.Params[0], Sort));
  case TK::Bag:
    return ValueShape::bagOf(shapeOf(T.Params[0], Sort));
  case TK::Seq:
    return ValueShape::seqOf(shapeOf(T.Params[0], Sort));
  case TK::Map:
    return ValueShape::mapOf(shapeOf(T.Params[0], Sort),
                             shapeOf(T.Params[1], Sort));
  default:
    return ValueShape::plain();
  }
}

/// Structural fingerprint of an optimized HIR action body — the behavior
/// fingerprint stamped on the lowered Action for the obligation verdict
/// cache. Two deliberate exclusions keep it α-invariant: SourceLocs
/// (moving code or editing comments must not shift it) and binder names
/// (Param::Name is print-only; every reference resolves through slots,
/// and slot numbering is structural). Types hash by their rendered form,
/// never by TypeId — interning order differs across modules. Runs on the
/// *optimized* HIR, so optimizer-equivalent sources fingerprint
/// identically.
void hashHirExpr(FpHasher &H, const hir::Expr &E,
                 const hir::TypeTable &Types) {
  H.u32(static_cast<uint32_t>(E.Kind));
  H.str(Types.get(E.Type).str());
  H.i64(E.IntValue);
  H.u32(E.Slot);
  H.str(E.Name);
  H.str(E.Callee);
  H.str(E.Op);
  H.u64(E.Children.size());
  for (const hir::ExprPtr &C : E.Children)
    hashHirExpr(H, *C, Types);
}

void hashHirStmts(FpHasher &H, const std::vector<hir::StmtPtr> &Body,
                  const hir::TypeTable &Types);

void hashHirStmt(FpHasher &H, const hir::Stmt &S,
                 const hir::TypeTable &Types) {
  H.u32(static_cast<uint32_t>(S.Kind));
  H.str(S.Name);
  H.u32(S.Slot);
  H.u64(S.Exprs.size());
  for (const hir::ExprPtr &E : S.Exprs)
    hashHirExpr(H, *E, Types);
  hashHirStmts(H, S.Body, Types);
  hashHirStmts(H, S.ElseBody, Types);
}

void hashHirStmts(FpHasher &H, const std::vector<hir::StmtPtr> &Body,
                  const hir::TypeTable &Types) {
  H.u64(Body.size());
  for (const hir::StmtPtr &S : Body)
    hashHirStmt(H, *S, Types);
}

Fingerprint fingerprintHirAction(const hir::Action &A,
                                 const hir::TypeTable &Types) {
  FpHasher H("hir-action/v1");
  H.u64(A.Params.size());
  for (const hir::Param &P : A.Params) {
    H.str(Types.get(P.Type).str()); // not P.Name: binder names are print-only
    H.u32(P.Slot);
  }
  H.u32(A.NumSlots);
  H.boolean(A.UsesPending);
  hashHirStmts(H, A.Body, Types);
  return H.finish();
}

} // namespace

std::optional<CompiledModule> asl::lowerHir(hir::Module &&M,
                                            std::vector<Diagnostic> &Diags) {
  // The compiled actions share ownership of the HIR.
  auto Shared = std::make_shared<hir::Module>(std::move(M));

  // Initial store: evaluate initializers in declaration order; later
  // initializers may read earlier variables. Global initializers and
  // symmetric bounds share one slot space (map-comprehension binders).
  HirEnv InitEnv;
  InitEnv.Slots.assign(Shared->NumInitSlots, Value::unit());
  InitEnv.Types = &Shared->Types;
  Store Init;
  for (const hir::Global &G : Shared->Globals)
    Init = Init.set(G.Name, evalHirExpr(*G.Init, Init, InitEnv));

  // The declared symmetric sort, if any — same admission checks and
  // diagnostics as the v1 compile.
  std::shared_ptr<SymmetrySpec> Sym;
  for (const hir::Symmetric &D : Shared->Symmetrics) {
    int64_t Lo = evalHirExpr(*D.Lo, Init, InitEnv).getInt();
    int64_t Hi = evalHirExpr(*D.Hi, Init, InitEnv).getInt();
    if (Lo > Hi) {
      Diags.push_back({"symmetric sort '" + D.Name + "' has empty domain " +
                           std::to_string(Lo) + " .. " + std::to_string(Hi),
                       D.Loc.Line, D.Loc.Column, Severity::Error,
                       D.Loc.File});
      continue;
    }
    size_t Size = static_cast<size_t>(Hi - Lo + 1);
    if (Size > SymmetrySpec::MaxDomainSize) {
      Diags.push_back(
          {"symmetric sort '" + D.Name + "' has " + std::to_string(Size) +
               " members; at most " +
               std::to_string(SymmetrySpec::MaxDomainSize) + " supported",
           D.Loc.Line, D.Loc.Column, Severity::Error, D.Loc.File});
      continue;
    }
    std::vector<int64_t> Domain;
    for (int64_t N = Lo; N <= Hi; ++N)
      Domain.push_back(N);
    Sym = std::make_shared<SymmetrySpec>(D.Name, std::move(Domain));
    for (const hir::Global &G : Shared->Globals) {
      ValueShape Shape = shapeOf(Shared->Types.get(G.Type), D.Name);
      if (!Shape.fixed())
        Sym->setGlobalShape(Symbol::get(G.Name), Shape);
    }
    for (const hir::Action &A : Shared->Actions) {
      std::vector<ValueShape> ArgShapes;
      bool AnyId = false;
      for (const hir::Param &P : A.Params) {
        ArgShapes.push_back(shapeOf(Shared->Types.get(P.Type), D.Name));
        AnyId = AnyId || !ArgShapes.back().fixed();
      }
      if (AnyId)
        Sym->setActionShape(Symbol::get(A.Name), std::move(ArgShapes));
    }
    if (!Sym->isInvariantStore(Init)) {
      Diags.push_back(
          {"initial store is not invariant under permutations of "
           "symmetric sort '" +
               D.Name + "'",
           D.Loc.Line, D.Loc.Column, Severity::Error, D.Loc.File});
      Sym.reset();
    }
  }
  if (!Diags.empty())
    return std::nullopt;

  // Lower the actions.
  CompiledModule Result;
  Result.InitialStore = Init;
  for (const hir::Action &A : Shared->Actions) {
    size_t Arity = A.Params.size();
    const hir::Action *Decl = &A;
    auto BindSlots = [Shared, Decl](const std::vector<Value> &Args) {
      std::vector<Value> Slots(Decl->NumSlots, Value::unit());
      for (size_t I = 0; I < Decl->Params.size(); ++I)
        Slots[Decl->Params[I].Slot] = Args[I];
      return Slots;
    };
    Action::GateFn Gate = [Shared, Decl, BindSlots](const GateContext &Ctx) {
      HirEnv Env;
      Env.Slots = BindSlots(Ctx.Args);
      Env.Types = &Shared->Types;
      Value Mirror = Value::unit();
      if (Decl->UsesPending) {
        // Expose Ω to the pending builtins: a bag of
        // (action-symbol index, args...) tuples.
        Mirror = Value::bag({});
        for (const auto &[PA, Count] : Ctx.Omega.entries()) {
          std::vector<Value> Tuple;
          Tuple.push_back(
              Value::integer(static_cast<int64_t>(PA.Action.index())));
          for (const Value &Arg : PA.Args)
            Tuple.push_back(Arg);
          Mirror = Mirror.bagInsert(Value::tuple(std::move(Tuple)), Count);
        }
        Env.Pending = &Mirror;
      }
      // The gate is false iff some path can violate an assert.
      return !runHirBody(Decl->Body, Ctx.Global, Env).CanFail;
    };
    Action::TransitionsFn Transitions =
        [Shared, Decl, BindSlots](const Store &G,
                                  const std::vector<Value> &Args) {
          HirEnv Env;
          Env.Slots = BindSlots(Args);
          Env.Types = &Shared->Types;
          return runHirBody(Decl->Body, G, Env).Transitions;
        };
    // The evaluator is a pure function of (HIR, store, slots), so the
    // enumerator may run from concurrent checker jobs.
    Action Lowered(A.Name, Arity, std::move(Gate), std::move(Transitions),
                   A.UsesPending,
                   /*TransitionsThreadSafe=*/true);
    Lowered.setFp(fingerprintHirAction(A, Shared->Types));
    Result.P.addAction(std::move(Lowered));
  }
  if (Sym)
    Result.P.setSymmetry(std::move(Sym));
  return Result;
}
