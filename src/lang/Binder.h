//===- lang/Binder.h - ASL symbol binding -------------------------*- C++ -*-===//
///
/// \file
/// The v2 frontend's symbol-resolution stage. Builds the module-level
/// symbol table (constants in declaration order, symmetric sorts, global
/// variables, action arities) and diagnoses declaration-level problems
/// with richer messages than the later stages produce: duplicate
/// declarations carry a "first declared at ..." note, and a variable
/// initializer that reads a global declared after it is rejected here
/// (the v1 pipeline would only fail when evaluating the initial store).
///
/// The pipeline stops after a failing bind, so the type checker's
/// overlapping duplicate checks never double-report.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_BINDER_H
#define ISQ_LANG_BINDER_H

#include "lang/Ast.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace isq {
namespace asl {

/// The module-level symbol table produced by binding; consumed by the
/// HIR builder to classify name references without re-walking the
/// declarations.
struct SymbolTable {
  /// Constant names in declaration order (the resolution/evaluation
  /// order of param defaults and derived initializers).
  std::vector<std::string> ConstOrder;
  std::set<std::string> Consts;
  std::set<std::string> Sorts;
  std::map<std::string, TypeRef> Globals;
  std::map<std::string, size_t> ActionArity;
};

/// Binds \p M: fills \p Syms and appends diagnostics. Returns false when
/// any error was diagnosed.
bool bindModule(const Module &M, SymbolTable &Syms,
                std::vector<Diagnostic> &Diags);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_BINDER_H
