//===- lang/Lexer.h - ASL lexer -----------------------------------*- C++ -*-===//
///
/// \file
/// Hand-written lexer for ASL. Supports `//` line comments, decimal
/// integer literals, and the keyword/operator set of Token.h. Errors are
/// reported through a diagnostic list (no exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_LEXER_H
#define ISQ_LANG_LEXER_H

#include "lang/Token.h"

#include <string>
#include <vector>

namespace isq {
namespace asl {

/// A source-located diagnostic message.
struct Diagnostic {
  std::string Message;
  unsigned Line = 0;
  unsigned Column = 0;

  std::string str() const {
    return "line " + std::to_string(Line) + ":" + std::to_string(Column) +
           ": " + Message;
  }
};

/// Tokenizes \p Source completely. On errors, diagnostics are appended to
/// \p Diags and lexing continues past the offending character.
std::vector<Token> lex(const std::string &Source,
                       std::vector<Diagnostic> &Diags);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_LEXER_H
