//===- lang/Lexer.h - ASL lexer -----------------------------------*- C++ -*-===//
///
/// \file
/// Hand-written lexer for ASL. Supports `//` line comments, decimal
/// integer literals, and the keyword/operator set of Token.h. Errors are
/// reported through a diagnostic list (no exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_LANG_LEXER_H
#define ISQ_LANG_LEXER_H

#include "lang/Diagnostics.h"
#include "lang/Token.h"

#include <string>
#include <vector>

namespace isq {
namespace asl {

/// Tokenizes \p Source completely. On errors, diagnostics are appended to
/// \p Diags and lexing continues past the offending character. \p FileId
/// is stamped into every diagnostic (the token stream itself is
/// file-agnostic; the parser knows which file it is consuming).
std::vector<Token> lex(const std::string &Source,
                       std::vector<Diagnostic> &Diags, uint32_t FileId = 0);

} // namespace asl
} // namespace isq

#endif // ISQ_LANG_LEXER_H
