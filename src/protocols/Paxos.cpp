//===- protocols/Paxos.cpp - Single-decree Paxos (§5.2, Fig. 4) -------------------===//

#include "protocols/Paxos.h"

#include "protocols/ProtocolUtil.h"
#include "protocols/ScheduleInvariant.h"
#include "semantics/Symmetry.h"

#include <algorithm>
#include <memory>

using namespace isq;
using namespace isq::protocols;

namespace {

const char *VarR = "R";
const char *VarN = "N";
const char *VarLastJoined = "lastJoined";   ///< node -> highest round heard
const char *VarJoinedNodes = "joinedNodes"; ///< round -> set of nodes
const char *VarVoteInfo = "voteInfo"; ///< round -> option (value, voters)
const char *VarDecision = "decision"; ///< round -> option value

int64_t numRounds(const Store &G) { return G.get(VarR).getInt(); }
int64_t numNodes(const Store &G) { return G.get(VarN).getInt(); }

bool isQuorum(const Store &G, uint64_t Size) {
  return 2 * Size > static_cast<uint64_t>(numNodes(G));
}

/// The proposer's own value for round r (a fresh value per round, so
/// conflicts are real).
int64_t ownValue(int64_t Round) { return Round; }

/// voteInfo accessors.
bool hasVoteInfo(const Store &G, int64_t Round) {
  return G.get(VarVoteInfo).mapAt(intV(Round)).isSome();
}
int64_t voteValue(const Store &G, int64_t Round) {
  return G.get(VarVoteInfo).mapAt(intV(Round)).getSome().elem(0).getInt();
}
Value voteNodes(const Store &G, int64_t Round) {
  return G.get(VarVoteInfo).mapAt(intV(Round)).getSome().elem(1);
}

Store setVoteInfo(const Store &G, int64_t Round, int64_t Val,
                  const Value &Nodes) {
  return G.set(VarVoteInfo,
               G.get(VarVoteInfo)
                   .mapSet(intV(Round),
                           Value::some(Value::tuple({intV(Val), Nodes}))));
}

Action makeMain() {
  return Action("Main", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  Transition T(G);
                  for (int64_t R = 1; R <= numRounds(G); ++R)
                    T.Created.emplace_back("StartRound", args({R}));
                  return std::vector<Transition>{std::move(T)};
                });
}

Action makeStartRound() {
  return Action("StartRound", 1, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &Args) {
                  int64_t R = Args[0].getInt();
                  Transition T(G);
                  for (int64_t Node = 1; Node <= numNodes(G); ++Node)
                    T.Created.emplace_back("Join", args({R, Node}));
                  T.Created.emplace_back("Propose", args({R}));
                  return std::vector<Transition>{std::move(T)};
                });
}

/// Join(r, n): acceptor n promises round r if it has not heard a higher
/// one; the message may also be dropped (the `if (*)` of Fig. 4(b)).
std::vector<Transition> joinTransitions(const Store &G,
                                        const std::vector<Value> &Args) {
  int64_t R = Args[0].getInt();
  int64_t Node = Args[1].getInt();
  std::vector<Transition> Out;
  if (G.get(VarLastJoined).mapAt(intV(Node)).getInt() < R) {
    Store NG =
        G.set(VarLastJoined,
              G.get(VarLastJoined).mapSet(intV(Node), intV(R)))
            .set(VarJoinedNodes,
                 G.get(VarJoinedNodes)
                     .mapSet(intV(R), G.get(VarJoinedNodes)
                                          .mapAt(intV(R))
                                          .setInsert(intV(Node))));
    Out.emplace_back(std::move(NG));
  }
  Out.emplace_back(G); // dropped / stale
  return Out;
}

/// Propose(r): with a join quorum ns, propose the value of the highest
/// round < r that some member of ns voted in (or the proposer's own
/// value); the round may also fail (no quorum collected in time).
std::vector<Transition> proposeTransitions(const Store &G,
                                           const std::vector<Value> &Args) {
  int64_t R = Args[0].getInt();
  std::vector<Transition> Out;
  const Value &Joined = G.get(VarJoinedNodes).mapAt(intV(R));

  // Enumerate quorum subsets ns of joinedNodes[r]; distinct subsets can
  // select distinct values, so collect the distinct proposals.
  std::vector<int64_t> Members;
  for (const Value &MemberV : Joined.elems())
    Members.push_back(MemberV.getInt());
  std::vector<int64_t> ProposedValues;
  for (uint64_t Mask = 0; Mask < (uint64_t(1) << Members.size()); ++Mask) {
    uint64_t Size = 0;
    for (size_t I = 0; I < Members.size(); ++I)
      if (Mask & (uint64_t(1) << I))
        ++Size;
    if (!isQuorum(G, Size))
      continue;
    // v := value of the highest round r' < r visible through ns.
    int64_t V = ownValue(R);
    for (int64_t Prev = R - 1; Prev >= 1; --Prev) {
      if (!hasVoteInfo(G, Prev))
        continue;
      Value Voters = voteNodes(G, Prev);
      bool Visible = false;
      for (size_t I = 0; I < Members.size(); ++I)
        if ((Mask & (uint64_t(1) << I)) &&
            Voters.setContains(intV(Members[I])))
          Visible = true;
      if (Visible) {
        V = voteValue(G, Prev);
        break;
      }
    }
    if (std::find(ProposedValues.begin(), ProposedValues.end(), V) ==
        ProposedValues.end())
      ProposedValues.push_back(V);
  }
  for (int64_t V : ProposedValues) {
    Transition T(setVoteInfo(G, R, V, emptySet()));
    for (int64_t Node = 1; Node <= numNodes(G); ++Node)
      T.Created.emplace_back("Vote", args({R, Node, V}));
    T.Created.emplace_back("Conclude", args({R, V}));
    Out.push_back(std::move(T));
  }
  Out.emplace_back(G); // round fails: no quorum reached
  return Out;
}

/// Vote(r, n, v): acceptor n accepts the proposal if it has not promised
/// a higher round; may also be dropped.
std::vector<Transition> voteTransitions(const Store &G,
                                        const std::vector<Value> &Args) {
  int64_t R = Args[0].getInt();
  int64_t Node = Args[1].getInt();
  std::vector<Transition> Out;
  if (G.get(VarLastJoined).mapAt(intV(Node)).getInt() <= R &&
      hasVoteInfo(G, R)) {
    Store NG = G.set(VarLastJoined,
                     G.get(VarLastJoined).mapSet(intV(Node), intV(R)));
    NG = setVoteInfo(NG, R, voteValue(G, R),
                     voteNodes(G, R).setInsert(intV(Node)));
    Out.emplace_back(std::move(NG));
  }
  Out.emplace_back(G); // dropped / stale
  return Out;
}

/// Conclude(r, v): decide v if a vote quorum materialized; may also fail.
std::vector<Transition>
concludeTransitions(const Store &G, const std::vector<Value> &Args) {
  int64_t R = Args[0].getInt();
  int64_t V = Args[1].getInt();
  std::vector<Transition> Out;
  if (hasVoteInfo(G, R) && voteValue(G, R) == V &&
      isQuorum(G, voteNodes(G, R).setSize())) {
    Store NG = G.set(
        VarDecision,
        G.get(VarDecision).mapSet(intV(R), Value::some(intV(V))));
    Out.emplace_back(std::move(NG));
  }
  Out.emplace_back(G); // no quorum heard from
  return Out;
}

// --- Pending-async inspection helpers for the abstraction gates ----------------

bool anyPending(const PaMultiset &Omega, Symbol Action,
                const std::function<bool(const PendingAsync &)> &Pred) {
  for (const auto &[PA, Count] : Omega.entries()) {
    (void)Count;
    if (PA.Action == Action && Pred(PA))
      return true;
  }
  return false;
}

int64_t paRound(const PendingAsync &PA) { return PA.Args[0].getInt(); }

/// Gate of JoinAbs(r, n): nothing that could interfere with this join is
/// pending at lower rounds — no StartRound(r' < r), no Propose(r' < r),
/// and for the same acceptor no Join/Vote at a lower round.
bool joinAbsGate(const GateContext &Ctx) {
  int64_t R = Ctx.Args[0].getInt();
  const Value &Node = Ctx.Args[1];
  auto LowerRound = [R](const PendingAsync &PA) { return paRound(PA) < R; };
  auto LowerSameNode = [R, &Node](const PendingAsync &PA) {
    return paRound(PA) < R && PA.Args[1] == Node;
  };
  return !anyPending(Ctx.Omega, Symbol::get("StartRound"), LowerRound) &&
         !anyPending(Ctx.Omega, Symbol::get("Propose"), LowerRound) &&
         !anyPending(Ctx.Omega, Symbol::get("Join"), LowerSameNode) &&
         !anyPending(Ctx.Omega, Symbol::get("Vote"), LowerSameNode);
}

/// Gate of ProposeAbs(r) (Fig. 4(c) lines 23-24): no StartRound(r' ≤ r)
/// and no Join(r' ≤ r, ·) still pending — in the sequentialization, all
/// joining at or below round r is finished when round r proposes.
bool proposeAbsGate(const GateContext &Ctx) {
  int64_t R = Ctx.Args[0].getInt();
  auto AtOrBelow = [R](const PendingAsync &PA) { return paRound(PA) <= R; };
  return !anyPending(Ctx.Omega, Symbol::get("StartRound"), AtOrBelow) &&
         !anyPending(Ctx.Omega, Symbol::get("Join"), AtOrBelow) &&
         !hasVoteInfo(Ctx.Global, R);
}

/// Gate of VoteAbs(r, n, v): joining at or below r is finished for this
/// acceptor, and no lower-round activity can still reach it.
bool voteAbsGate(const GateContext &Ctx) {
  int64_t R = Ctx.Args[0].getInt();
  const Value &Node = Ctx.Args[1];
  auto AtOrBelow = [R](const PendingAsync &PA) { return paRound(PA) <= R; };
  auto Below = [R](const PendingAsync &PA) { return paRound(PA) < R; };
  auto AtOrBelowSameNode = [R, &Node](const PendingAsync &PA) {
    return paRound(PA) <= R && PA.Args[1] == Node;
  };
  auto BelowSameNode = [R, &Node](const PendingAsync &PA) {
    return paRound(PA) < R && PA.Args[1] == Node;
  };
  return !anyPending(Ctx.Omega, Symbol::get("StartRound"), AtOrBelow) &&
         !anyPending(Ctx.Omega, Symbol::get("Propose"), Below) &&
         !anyPending(Ctx.Omega, Symbol::get("Join"), AtOrBelowSameNode) &&
         !anyPending(Ctx.Omega, Symbol::get("Vote"), BelowSameNode);
}

/// Gate of ConcludeAbs(r, v): all round-r voting is finished.
bool concludeAbsGate(const GateContext &Ctx) {
  int64_t R = Ctx.Args[0].getInt();
  return !anyPending(Ctx.Omega, Symbol::get("Vote"),
                     [R](const PendingAsync &PA) {
                       return paRound(PA) == R;
                     });
}

/// Sequentialization rank (§5.2): rounds in increasing order; within a
/// round S < J(·) < P < V(·) < C.
std::optional<std::vector<int64_t>> paxosRank(const PendingAsync &PA) {
  if (PA.Action == Symbol::get("StartRound"))
    return std::vector<int64_t>{paRound(PA), 0, 0};
  if (PA.Action == Symbol::get("Join"))
    return std::vector<int64_t>{paRound(PA), 1, PA.Args[1].getInt()};
  if (PA.Action == Symbol::get("Propose"))
    return std::vector<int64_t>{paRound(PA), 2, 0};
  if (PA.Action == Symbol::get("Vote"))
    return std::vector<int64_t>{paRound(PA), 3, PA.Args[1].getInt()};
  if (PA.Action == Symbol::get("Conclude"))
    return std::vector<int64_t>{paRound(PA), 4, 0};
  return std::nullopt;
}

} // namespace

Program protocols::makePaxosProgram(const PaxosParams &Params) {
  Program P;
  P.addAction(makeMain());
  P.addAction(makeStartRound());
  P.addAction(Action("Join", 2, Action::alwaysEnabled(), joinTransitions));
  P.addAction(Action("Propose", 1,
                     [](const GateContext &Ctx) {
                       // Fig. 4(b) line 15: round r proposes at most once.
                       return !hasVoteInfo(Ctx.Global,
                                           Ctx.Args[0].getInt());
                     },
                     proposeTransitions));
  P.addAction(Action("Vote", 3, Action::alwaysEnabled(), voteTransitions));
  P.addAction(
      Action("Conclude", 2, Action::alwaysEnabled(), concludeTransitions));

  // Acceptors 1..N are interchangeable: every action treats node IDs
  // uniformly (quorums are counted, never enumerated by identity), so the
  // engine may explore the quotient under node permutations. Rounds and
  // values are NOT symmetric (ownValue(r) = r ties values to rounds).
  int64_t N = Params.NumNodes;
  if (N >= 1 && static_cast<size_t>(N) <= SymmetrySpec::MaxDomainSize) {
    std::vector<int64_t> Domain;
    for (int64_t Node = 1; Node <= N; ++Node)
      Domain.push_back(Node);
    auto Sym = std::make_shared<SymmetrySpec>("node", std::move(Domain));
    Sym->setGlobalShape(
        Symbol::get(VarLastJoined),
        ValueShape::mapOf(ValueShape::id(), ValueShape::plain()));
    Sym->setGlobalShape(
        Symbol::get(VarJoinedNodes),
        ValueShape::mapOf(ValueShape::plain(),
                          ValueShape::setOf(ValueShape::id())));
    Sym->setGlobalShape(
        Symbol::get(VarVoteInfo),
        ValueShape::mapOf(
            ValueShape::plain(),
            ValueShape::option(ValueShape::tuple(
                {ValueShape::plain(),
                 ValueShape::setOf(ValueShape::id())}))));
    Sym->setActionShape(Symbol::get("Join"),
                        {ValueShape::plain(), ValueShape::id()});
    Sym->setActionShape(
        Symbol::get("Vote"),
        {ValueShape::plain(), ValueShape::id(), ValueShape::plain()});
    P.setSymmetry(std::move(Sym));
  }
  return P;
}

Store protocols::makePaxosInitialStore(const PaxosParams &Params) {
  int64_t R = Params.NumRounds;
  int64_t N = Params.NumNodes;
  return Store::make(
      {{Symbol::get(VarR), intV(R)},
       {Symbol::get(VarN), intV(N)},
       {Symbol::get(VarLastJoined),
        mapOfRange(1, N, [](int64_t) { return intV(0); })},
       {Symbol::get(VarJoinedNodes),
        mapOfRange(1, R, [](int64_t) { return emptySet(); })},
       {Symbol::get(VarVoteInfo),
        mapOfRange(1, R, [](int64_t) { return Value::none(); })},
       {Symbol::get(VarDecision),
        mapOfRange(1, R, [](int64_t) { return Value::none(); })}});
}

ISApplication protocols::makePaxosIS(const PaxosParams &Params) {
  ISApplication App;
  App.P = makePaxosProgram(Params);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("StartRound"), Symbol::get("Join"),
           Symbol::get("Propose"), Symbol::get("Vote"),
           Symbol::get("Conclude")};
  App.Invariant =
      makeScheduleInvariant("PaxosInv", App.P, App.M, paxosRank);
  App.Choice = chooseMinRank(paxosRank);

  // The Fig. 4(c)-style abstractions: gates assert the lower-round
  // quiescence that holds along the sequentialization and makes every
  // eliminated action a non-blocking left mover. StartRound only creates
  // PAs and needs no abstraction.
  App.Abstractions.emplace(
      Symbol::get("Join"), Action("JoinAbs", 2, joinAbsGate,
                                  joinTransitions, /*GateReadsOmega=*/true));
  App.Abstractions.emplace(
      Symbol::get("Propose"),
      Action("ProposeAbs", 1, proposeAbsGate, proposeTransitions,
             /*GateReadsOmega=*/true));
  App.Abstractions.emplace(
      Symbol::get("Vote"), Action("VoteAbs", 3, voteAbsGate,
                                  voteTransitions, /*GateReadsOmega=*/true));
  App.Abstractions.emplace(
      Symbol::get("Conclude"),
      Action("ConcludeAbs", 2, concludeAbsGate, concludeTransitions,
             /*GateReadsOmega=*/true));

  // Phase-weight measure: every action strictly decreases the weighted
  // pending sum even when it spawns the next phase's PAs.
  int64_t N = Params.NumNodes;
  App.WfMeasure = Measure("Σ phase-weight", [N](const Configuration &C) {
    if (C.isFailure())
      return std::vector<uint64_t>{0};
    uint64_t Total = 0;
    for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
      uint64_t W = 0;
      if (PA.Action == Symbol::get("StartRound"))
        W = static_cast<uint64_t>(2 * N + 5);
      else if (PA.Action == Symbol::get("Join"))
        W = 1;
      else if (PA.Action == Symbol::get("Propose"))
        W = static_cast<uint64_t>(N + 3);
      else if (PA.Action == Symbol::get("Vote"))
        W = 1;
      else if (PA.Action == Symbol::get("Conclude"))
        W = 2;
      Total += W * Count;
    }
    return std::vector<uint64_t>{Total};
  });
  return App;
}

bool protocols::checkPaxosSpec(const Store &Final,
                               const PaxosParams &Params) {
  // Paxos' (Fig. 4(c)): any two decisions agree.
  std::optional<int64_t> Decided;
  for (int64_t R = 1; R <= Params.NumRounds; ++R) {
    const Value &D = Final.get(VarDecision).mapAt(intV(R));
    if (D.isNone())
      continue;
    int64_t V = D.getSome().getInt();
    if (Decided && *Decided != V)
      return false;
    Decided = V;
  }
  return true;
}

bool protocols::paxosDecided(const Store &Final) {
  for (const auto &[Round, D] : Final.get(VarDecision).mapEntries()) {
    (void)Round;
    if (D.isSome())
      return true;
  }
  return false;
}
