//===- protocols/ProducerConsumer.h - Producer-Consumer (§5.3) ----*- C++ -*-===//
///
/// \file
/// The paper's Producer-Consumer example: a producer enqueues increasing
/// numbers 1..T into a shared FIFO queue, a consumer dequeues and checks
/// that they arrive in order. Unlike Ping-Pong, the producer may run
/// arbitrarily far ahead, so the queue can grow up to T elements and the
/// program has many more interleavings. The IS reduction produces the
/// alternating schedule in which the queue never holds more than one
/// element. One IS application (Table 1 row "Producer-Consumer", #IS = 1).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_PRODUCERCONSUMER_H
#define ISQ_PROTOCOLS_PRODUCERCONSUMER_H

#include "is/ISApplication.h"
#include "semantics/Program.h"

namespace isq {
namespace protocols {

/// Instance parameter: number of items.
struct ProducerConsumerParams {
  int64_t NumItems = 3;
};

/// Actions Main, Producer(k), Consumer(k) over a FIFO queue, with
/// progress counters produced / consumed.
Program makeProducerConsumerProgram(const ProducerConsumerParams &Params);

/// Initial store: empty queue, zeroed counters.
Store
makeProducerConsumerInitialStore(const ProducerConsumerParams &Params);

/// The single IS application: E = {Producer, Consumer}; Producer is a left
/// mover as-is (push-back commutes past pop-front on non-empty queues);
/// Consumer needs a non-empty-queue abstraction.
ISApplication makeProducerConsumerIS(const ProducerConsumerParams &Params);

/// Spec: all items produced and consumed in order, queue drained.
bool checkProducerConsumerSpec(const Store &Final,
                               const ProducerConsumerParams &Params);

/// Maximum queue length over a set of stores — used to demonstrate that
/// the sequentialized program keeps the queue at ≤ 1 element while the
/// original grows it to T.
uint64_t maxQueueLength(const std::vector<Store> &Stores);

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_PRODUCERCONSUMER_H
