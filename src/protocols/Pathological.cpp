//===- protocols/Pathological.cpp - Cooperation counterexample -------------------===//

#include "protocols/Pathological.h"

#include "protocols/ProtocolUtil.h"

using namespace isq;
using namespace isq::protocols;

Store protocols::makeCooperationCounterexampleStore() {
  return Store::make({{Symbol::get("dummy"), intV(0)}});
}

Program protocols::makeCooperationCounterexampleProgram() {
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       T.Created.emplace_back("Rec", std::vector<Value>{});
                       T.Created.emplace_back("Fail", std::vector<Value>{});
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(Action("Rec", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       T.Created.emplace_back("Rec", std::vector<Value>{});
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(Action("Fail", 0,
                     [](const GateContext &) { return false; },
                     [](const Store &, const std::vector<Value> &) {
                       return std::vector<Transition>{};
                     }));
  return P;
}

ISApplication protocols::makeCooperationCounterexampleIS() {
  ISApplication App;
  App.P = makeCooperationCounterexampleProgram();
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Rec")};
  // I = Main, as in the paper's discussion.
  App.Invariant = App.P.action("Main").withName("Inv");
  App.Choice = ISApplication::chooseInOrder({Symbol::get("Rec")});
  App.WfMeasure = Measure::pendingAsyncCount();
  return App;
}
