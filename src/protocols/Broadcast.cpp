//===- protocols/Broadcast.cpp - Broadcast consensus (Fig. 1) -------------------===//

#include "protocols/Broadcast.h"

#include "protocols/ProtocolUtil.h"

#include <algorithm>

using namespace isq;
using namespace isq::protocols;

namespace {

const char *VarN = "n";
const char *VarValue = "value";
const char *VarDecision = "decision";
const char *VarChannels = "CH";

int64_t numNodes(const Store &G) { return G.get(VarN).getInt(); }

int64_t maxValue(const Store &G) {
  int64_t Max = INT64_MIN;
  for (const auto &[Node, Val] : G.get(VarValue).mapEntries()) {
    (void)Node;
    Max = std::max(Max, Val.getInt());
  }
  return Max;
}

/// Counts pending Broadcast PAs in Ω (the ∀j. Broadcast(j) ∉ Ω gate).
bool hasPendingBroadcast(const PaMultiset &Omega) {
  Symbol Broadcast = Symbol::get("Broadcast");
  for (const auto &[PA, Count] : Omega.entries()) {
    (void)Count;
    if (PA.Action == Broadcast)
      return true;
  }
  return false;
}

/// Fig. 1-②: Main atomically creates 2n threads.
Action makeMain(const BroadcastParams &) {
  return Action(
      "Main", 0, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &) {
        Transition T(G);
        int64_t N = numNodes(G);
        for (int64_t I = 1; I <= N; ++I) {
          T.Created.emplace_back("Broadcast", args({I}));
          T.Created.emplace_back("Collect", args({I}));
        }
        return std::vector<Transition>{std::move(T)};
      });
}

/// Fig. 1-②: Broadcast(i) atomically sends value[i] to every channel.
Action makeBroadcast(const BroadcastParams &) {
  return Action(
      "Broadcast", 1, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &Args) {
        int64_t I = Args[0].getInt();
        int64_t N = numNodes(G);
        Value Val = G.get(VarValue).mapAt(intV(I));
        Value Channels = G.get(VarChannels);
        for (int64_t J = 1; J <= N; ++J)
          Channels = Channels.mapSet(
              intV(J), Channels.mapAt(intV(J)).bagInsert(Val));
        return std::vector<Transition>{
            Transition(G.set(VarChannels, Channels))};
      });
}

/// Shared transition relation of Collect(i) and its abstractions:
/// atomically receive n values from CH[i] and decide their maximum. Blocks
/// (no transitions) while fewer than n messages are available.
std::vector<Transition> collectTransitions(const Store &G,
                                           const std::vector<Value> &Args) {
  int64_t I = Args[0].getInt();
  int64_t N = numNodes(G);
  Value Channel = G.get(VarChannels).mapAt(intV(I));
  std::vector<Transition> Out;
  if (Channel.bagSize() < static_cast<uint64_t>(N))
    return Out;
  for (const Value &Sub : Channel.bagSubBagsOfSize(static_cast<uint64_t>(N))) {
    int64_t Max = INT64_MIN;
    for (const auto &[Elem, Count] : Sub.bagEntries()) {
      (void)Count;
      Max = std::max(Max, Elem.getInt());
    }
    Value Rest = Channel;
    for (const auto &[Elem, Count] : Sub.bagEntries())
      Rest = Rest.bagErase(Elem, static_cast<uint64_t>(Count.getInt()));
    Store NG = G.set(VarChannels,
                     G.get(VarChannels).mapSet(intV(I), Rest));
    NG = NG.set(VarDecision,
                NG.get(VarDecision).mapSet(intV(I),
                                           Value::some(intV(Max))));
    Out.emplace_back(std::move(NG));
  }
  return Out;
}

Action makeCollect(const BroadcastParams &) {
  return Action("Collect", 1, Action::alwaysEnabled(), collectTransitions);
}

/// Fig. 1-④: CollectAbs strengthens the gate with the sequential-context
/// facts, which makes it non-blocking and a left mover.
Action makeCollectAbs(const BroadcastParams &, bool RequireNoBroadcasts) {
  return Action(
      "CollectAbs", 1,
      [RequireNoBroadcasts](const GateContext &Ctx) {
        if (RequireNoBroadcasts && hasPendingBroadcast(Ctx.Omega))
          return false;
        int64_t I = Ctx.Args[0].getInt();
        int64_t N = numNodes(Ctx.Global);
        return Ctx.Global.get(VarChannels).mapAt(intV(I)).bagSize() >=
               static_cast<uint64_t>(N);
      },
      collectTransitions, /*GateReadsOmega=*/RequireNoBroadcasts);
}

/// The store after the sequential prefix "Broadcast 1..K; Collect 1..L"
/// starting from \p G.
Store prefixStore(const Store &G, int64_t K, int64_t L) {
  int64_t N = numNodes(G);
  int64_t Max = maxValue(G);
  Value Channels = G.get(VarChannels);
  for (int64_t J = 1; J <= N; ++J) {
    std::vector<Value> Msgs;
    for (int64_t I = 1; I <= K; ++I)
      Msgs.push_back(G.get(VarValue).mapAt(intV(I)));
    // Collect(j) for j <= L drained channel j entirely (it held exactly n
    // messages in the sequential schedule, which requires K = n).
    Channels = Channels.mapSet(intV(J), J <= L ? emptyBag()
                                               : Value::bag(Msgs));
  }
  Value Decision = G.get(VarDecision);
  for (int64_t I = 1; I <= L; ++I)
    Decision = Decision.mapSet(intV(I), Value::some(intV(Max)));
  return G.set(VarChannels, Channels).set(VarDecision, Decision);
}

/// Fig. 1-⑤: the invariant action Inv summarizing every prefix of the
/// round-robin schedule (k Broadcasts, then — only when k = n — l
/// Collects); the not-yet-summarized operations stay pending.
Action makeInv(Symbol BroadcastName, Symbol CollectName) {
  return Action(
      "Inv", 0, Action::alwaysEnabled(),
      [BroadcastName, CollectName](const Store &G,
                                   const std::vector<Value> &) {
        int64_t N = numNodes(G);
        std::vector<Transition> Out;
        auto Emit = [&](int64_t K, int64_t L) {
          Transition T(prefixStore(G, K, L));
          for (int64_t I = K + 1; I <= N; ++I)
            T.Created.emplace_back(BroadcastName, args({I}));
          for (int64_t I = L + 1; I <= N; ++I)
            T.Created.emplace_back(CollectName, args({I}));
          Out.push_back(std::move(T));
        };
        for (int64_t K = 0; K <= N; ++K)
          Emit(K, 0);
        for (int64_t L = 1; L <= N; ++L)
          Emit(N, L);
        return Out;
      });
}

/// Stage-2 invariant: Broadcast is already sequentialized, only Collect
/// prefixes remain (k is pinned to n).
Action makeInvStage2(Symbol CollectName) {
  return Action(
      "InvCollect", 0, Action::alwaysEnabled(),
      [CollectName](const Store &G, const std::vector<Value> &) {
        int64_t N = numNodes(G);
        std::vector<Transition> Out;
        for (int64_t L = 0; L <= N; ++L) {
          Transition T(prefixStore(G, N, L));
          for (int64_t I = L + 1; I <= N; ++I)
            T.Created.emplace_back(CollectName, args({I}));
          Out.push_back(std::move(T));
        }
        return Out;
      });
}

} // namespace

Program protocols::makeBroadcastProgram(const BroadcastParams &Params) {
  Program P;
  P.addAction(makeMain(Params));
  P.addAction(makeBroadcast(Params));
  P.addAction(makeCollect(Params));
  return P;
}

Store protocols::makeBroadcastInitialStore(const BroadcastParams &Params) {
  int64_t N = Params.NumNodes;
  return Store::make(
      {{Symbol::get(VarN), intV(N)},
       {Symbol::get(VarValue),
        mapOfRange(1, N, [&](int64_t I) { return intV(Params.value(I)); })},
       {Symbol::get(VarDecision),
        mapOfRange(1, N, [](int64_t) { return Value::none(); })},
       {Symbol::get(VarChannels),
        mapOfRange(1, N, [](int64_t) { return emptyBag(); })}});
}

Action protocols::makeBroadcastSeqSpec(const BroadcastParams &Params) {
  (void)Params;
  return Action(
      "MainSeq", 0, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &) {
        // Fig. 1-③ run to completion: all broadcasts then all collects.
        return std::vector<Transition>{
            Transition(prefixStore(G, numNodes(G), numNodes(G)))};
      });
}

ISApplication protocols::makeBroadcastIS(const BroadcastParams &Params) {
  ISApplication App;
  App.P = makeBroadcastProgram(Params);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Broadcast"), Symbol::get("Collect")};
  App.Invariant = makeInv(Symbol::get("Broadcast"), Symbol::get("Collect"));
  App.Choice = ISApplication::chooseInOrder(
      {Symbol::get("Broadcast"), Symbol::get("Collect")});
  App.Abstractions.emplace(
      Symbol::get("Collect"),
      makeCollectAbs(Params, /*RequireNoBroadcasts=*/true));
  App.WfMeasure = Measure::pendingAsyncCount();
  App.SeqAction = makeBroadcastSeqSpec(Params);
  return App;
}

ISApplication
protocols::makeBroadcastStage1IS(const BroadcastParams &Params) {
  ISApplication App;
  App.P = makeBroadcastProgram(Params);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Broadcast")};
  App.Invariant = makeInv(Symbol::get("Broadcast"), Symbol::get("Collect"));
  App.Choice = ISApplication::chooseInOrder({Symbol::get("Broadcast")});
  App.WfMeasure = Measure::pendingAsyncCount();
  return App;
}

ISApplication
protocols::makeBroadcastStage2IS(const BroadcastParams &Params,
                                 const Program &AfterStage1) {
  ISApplication App;
  App.P = AfterStage1;
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Collect")};
  App.Invariant = makeInvStage2(Symbol::get("Collect"));
  App.Choice = ISApplication::chooseInOrder({Symbol::get("Collect")});
  // §5.3: after Broadcast is gone, CollectAbs no longer needs the
  // no-pending-Broadcast conjunct (Fig. 1-④ line 33).
  App.Abstractions.emplace(
      Symbol::get("Collect"),
      makeCollectAbs(Params, /*RequireNoBroadcasts=*/false));
  App.WfMeasure = Measure::pendingAsyncCount();
  App.SeqAction = makeBroadcastSeqSpec(Params);
  return App;
}

bool protocols::checkBroadcastSpec(const Store &Final,
                                   const BroadcastParams &Params) {
  int64_t Max = INT64_MIN;
  for (int64_t I = 1; I <= Params.NumNodes; ++I)
    Max = std::max(Max, Params.value(I));
  const Value &Decision = Final.get(VarDecision);
  for (int64_t I = 1; I <= Params.NumNodes; ++I) {
    const Value &D = Decision.mapAt(intV(I));
    if (D.isNone() || D.getSome().getInt() != Max)
      return false;
  }
  return true;
}
