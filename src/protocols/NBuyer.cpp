//===- protocols/NBuyer.cpp - N-Buyer coordination (§5.3) -------------------------===//

#include "protocols/NBuyer.h"

#include "protocols/ProtocolUtil.h"
#include "protocols/ScheduleInvariant.h"

using namespace isq;
using namespace isq::protocols;

namespace {

const char *VarN = "n";
const char *VarPrice = "price";
const char *VarQuoteCh = "quoteCh";     ///< request tokens, buyer 1 -> seller
const char *VarPriceCh = "priceCh";     ///< per-buyer price quotes
const char *VarContribCh = "contribCh"; ///< (buyer, amount) tuples
const char *VarContrib = "contrib";     ///< recorded promises
const char *VarOrder = "order";

int64_t numBuyers(const Store &G) { return G.get(VarN).getInt(); }

Action makeMain() {
  return Action("Main", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  Transition T(G);
                  T.Created.emplace_back("Request", std::vector<Value>{});
                  return std::vector<Transition>{std::move(T)};
                });
}

/// Request: buyer 1 asks the seller for a quote.
Action makeRequest() {
  return Action("Request", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  Transition T(G.set(
                      VarQuoteCh, G.get(VarQuoteCh).bagInsert(intV(1))));
                  T.Created.emplace_back("Quote", std::vector<Value>{});
                  return std::vector<Transition>{std::move(T)};
                });
}

/// Quote: the seller receives the request (blocking) and broadcasts the
/// price to every buyer; buyers and the aggregator start concurrently.
Action makeQuote() {
  return Action(
      "Quote", 0, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &) {
        std::vector<Transition> Out;
        const Value &Tokens = G.get(VarQuoteCh);
        if (Tokens.bagSize() == 0)
          return Out; // blocked until the request arrives
        Store NG = G.set(VarQuoteCh, Tokens.bagErase(intV(1)));
        Value Prices = NG.get(VarPriceCh);
        int64_t Price = G.get(VarPrice).getInt();
        for (int64_t I = 1; I <= numBuyers(G); ++I)
          Prices = Prices.mapSet(
              intV(I), Prices.mapAt(intV(I)).bagInsert(intV(Price)));
        Transition T(NG.set(VarPriceCh, Prices));
        for (int64_t I = 1; I <= numBuyers(G); ++I)
          T.Created.emplace_back("Contribute", args({I}));
        T.Created.emplace_back("Place", std::vector<Value>{});
        Out.push_back(std::move(T));
        return Out;
      });
}

/// Contribute(i): buyer i receives the price (blocking), promises one of
/// the allowed amounts, records it, and reports it to the aggregator.
Action makeContribute(std::vector<int64_t> Choices) {
  return Action(
      "Contribute", 1, Action::alwaysEnabled(),
      [Choices](const Store &G, const std::vector<Value> &Args) {
        int64_t I = Args[0].getInt();
        std::vector<Transition> Out;
        const Value &MyPrices = G.get(VarPriceCh).mapAt(intV(I));
        for (const auto &[Quoted, Count] : MyPrices.bagEntries()) {
          (void)Count;
          Store Received = G.set(
              VarPriceCh,
              G.get(VarPriceCh).mapSet(intV(I), MyPrices.bagErase(Quoted)));
          for (int64_t C : Choices) {
            Store NG =
                Received
                    .set(VarContrib, Received.get(VarContrib)
                                         .mapSet(intV(I),
                                                 Value::some(intV(C))))
                    .set(VarContribCh,
                         Received.get(VarContribCh)
                             .bagInsert(Value::tuple({intV(I), intV(C)})));
            Out.emplace_back(std::move(NG));
          }
        }
        return Out;
      });
}

/// Place: the aggregator receives all n promises (blocking) and places the
/// order iff they cover the price.
Action makePlace() {
  return Action(
      "Place", 0, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &) {
        std::vector<Transition> Out;
        const Value &Reports = G.get(VarContribCh);
        uint64_t N = static_cast<uint64_t>(numBuyers(G));
        if (Reports.bagSize() < N)
          return Out; // blocked until every buyer reported
        for (const Value &Sub : Reports.bagSubBagsOfSize(N)) {
          int64_t Sum = 0;
          for (const auto &[Tuple, Count] : Sub.bagEntries())
            Sum += Tuple.elem(1).getInt() * Count.getInt();
          Value Rest = Reports;
          for (const auto &[Tuple, Count] : Sub.bagEntries())
            Rest = Rest.bagErase(Tuple,
                                 static_cast<uint64_t>(Count.getInt()));
          Store NG = G.set(VarContribCh, Rest);
          if (Sum >= G.get(VarPrice).getInt())
            NG = NG.set(VarOrder, Value::some(intV(Sum)));
          Out.emplace_back(std::move(NG));
        }
        return Out;
      });
}

/// Per-stage rank: only the stage's action is scheduled; phases are
/// ordered Request < Quote < Contribute(1..n) < Place.
RankFn makeStageRank(Symbol Target) {
  return [Target](const PendingAsync &PA)
             -> std::optional<std::vector<int64_t>> {
    if (PA.Action != Target)
      return std::nullopt;
    int64_t Sub = PA.Args.empty() ? 0 : PA.Args[0].getInt();
    return std::vector<int64_t>{Sub};
  };
}

/// One measure shared by all four stages: weights ordered so that every
/// phase strictly decreases the pending sum even when it spawns the next
/// phase's PAs.
Measure makeNBuyerMeasure(const NBuyerParams &Params) {
  int64_t N = Params.NumBuyers;
  return Measure("Σ phase-weight", [N](const Configuration &C) {
    if (C.isFailure())
      return std::vector<uint64_t>{0};
    uint64_t Total = 0;
    for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
      uint64_t W = 0;
      if (PA.Action == Symbol::get("Request"))
        W = static_cast<uint64_t>(N + 4);
      else if (PA.Action == Symbol::get("Quote"))
        W = static_cast<uint64_t>(N + 3);
      else if (PA.Action == Symbol::get("Contribute"))
        W = 1;
      else if (PA.Action == Symbol::get("Place"))
        W = 2;
      Total += W * Count;
    }
    return std::vector<uint64_t>{Total};
  });
}

} // namespace

Program protocols::makeNBuyerProgram(const NBuyerParams &Params) {
  Program P;
  P.addAction(makeMain());
  P.addAction(makeRequest());
  P.addAction(makeQuote());
  P.addAction(makeContribute(Params.ContributionChoices));
  P.addAction(makePlace());
  return P;
}

Store protocols::makeNBuyerInitialStore(const NBuyerParams &Params) {
  int64_t N = Params.NumBuyers;
  return Store::make(
      {{Symbol::get(VarN), intV(N)},
       {Symbol::get(VarPrice), intV(Params.Price)},
       {Symbol::get(VarQuoteCh), emptyBag()},
       {Symbol::get(VarPriceCh),
        mapOfRange(1, N, [](int64_t) { return emptyBag(); })},
       {Symbol::get(VarContribCh), emptyBag()},
       {Symbol::get(VarContrib),
        mapOfRange(1, N, [](int64_t) { return Value::none(); })},
       {Symbol::get(VarOrder), Value::none()}});
}

ISApplication protocols::makeNBuyerStageIS(const NBuyerParams &Params,
                                           size_t Stage,
                                           const Program &Current) {
  static const char *StageActions[kNBuyerStages] = {"Request", "Quote",
                                                    "Contribute", "Place"};
  assert(Stage < kNBuyerStages && "N-Buyer has exactly four stages");
  Symbol Target = Symbol::get(StageActions[Stage]);

  ISApplication App;
  App.P = Current;
  App.M = Program::mainSymbol();
  App.E = {Target};
  RankFn Rank = makeStageRank(Target);
  App.Invariant = makeScheduleInvariant(
      std::string("NBuyerInv") + StageActions[Stage], App.P, App.M, Rank);
  App.Choice = chooseMinRank(Rank);
  App.WfMeasure = makeNBuyerMeasure(Params);

  // Left-mover abstractions for the blocking receives: their gates assert
  // the message availability that holds in the sequential context.
  if (Target == Symbol::get("Quote")) {
    App.Abstractions.emplace(
        Target, Action("QuoteAbs", 0,
                       [](const GateContext &Ctx) {
                         return Ctx.Global.get(VarQuoteCh).bagSize() >= 1;
                       },
                       [P = App.P](const Store &G,
                                   const std::vector<Value> &Args) {
                         return P.action("Quote").transitions(G, Args);
                       }));
  } else if (Target == Symbol::get("Contribute")) {
    App.Abstractions.emplace(
        Target,
        Action("ContributeAbs", 1,
               [](const GateContext &Ctx) {
                 const Value &Mine = Ctx.Global.get(VarPriceCh)
                                         .mapAt(Ctx.Args[0]);
                 return Mine.bagSize() >= 1;
               },
               [P = App.P](const Store &G, const std::vector<Value> &Args) {
                 return P.action("Contribute").transitions(G, Args);
               }));
  } else if (Target == Symbol::get("Place")) {
    App.Abstractions.emplace(
        Target,
        Action("PlaceAbs", 0,
               [](const GateContext &Ctx) {
                 return Ctx.Global.get(VarContribCh).bagSize() >=
                        static_cast<uint64_t>(numBuyers(Ctx.Global));
               },
               [P = App.P](const Store &G, const std::vector<Value> &Args) {
                 return P.action("Place").transitions(G, Args);
               }));
  }
  return App;
}

ISApplication protocols::makeNBuyerOneShotIS(const NBuyerParams &Params) {
  ISApplication App;
  App.P = makeNBuyerProgram(Params);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Request"), Symbol::get("Quote"),
           Symbol::get("Contribute"), Symbol::get("Place")};
  RankFn Rank = [](const PendingAsync &PA)
      -> std::optional<std::vector<int64_t>> {
    if (PA.Action == Symbol::get("Request"))
      return std::vector<int64_t>{0, 0};
    if (PA.Action == Symbol::get("Quote"))
      return std::vector<int64_t>{1, 0};
    if (PA.Action == Symbol::get("Contribute"))
      return std::vector<int64_t>{2, PA.Args[0].getInt()};
    if (PA.Action == Symbol::get("Place"))
      return std::vector<int64_t>{3, 0};
    return std::nullopt;
  };
  App.Invariant =
      makeScheduleInvariant("NBuyerInv", App.P, App.M, Rank);
  App.Choice = chooseMinRank(Rank);
  App.WfMeasure = makeNBuyerMeasure(Params);
  // Only Place needs an abstraction: it is the one action that blocks
  // while other eliminated actions are still pending.
  App.Abstractions.emplace(
      Symbol::get("Place"),
      Action("PlaceAbs", 0,
             [](const GateContext &Ctx) {
               return Ctx.Global.get(VarContribCh).bagSize() >=
                      static_cast<uint64_t>(numBuyers(Ctx.Global));
             },
             [P = App.P](const Store &G, const std::vector<Value> &Args) {
               return P.action("Place").transitions(G, Args);
             }));
  return App;
}

bool protocols::checkNBuyerSpec(const Store &Final,
                                const NBuyerParams &Params) {
  int64_t Sum = 0;
  for (int64_t I = 1; I <= Params.NumBuyers; ++I) {
    const Value &C = Final.get(VarContrib).mapAt(intV(I));
    if (C.isNone())
      return false;
    Sum += C.getSome().getInt();
  }
  const Value &Order = Final.get(VarOrder);
  if (Sum >= Params.Price)
    return Order.isSome() && Order.getSome().getInt() == Sum;
  return Order.isNone();
}
