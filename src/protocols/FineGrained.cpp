//===- protocols/FineGrained.cpp - Low-level broadcast layer (§5.2) ----------------===//

#include "protocols/FineGrained.h"

#include "explorer/Explorer.h"
#include "movers/MoverCheck.h"
#include "protocols/ProtocolUtil.h"
#include "reduction/Reduction.h"

#include <algorithm>

using namespace isq;
using namespace isq::protocols;

namespace {

const char *VarN = "n";
const char *VarValue = "value";
const char *VarDecision = "decision";
const char *VarChannels = "CH";
const char *VarAcc = "acc"; ///< scratch accumulator of the fused receive loop

/// The -∞ seed of the running maximum (Fig. 1-① line 9).
constexpr int64_t AccSeed = INT64_MIN / 4;

int64_t numNodes(const Store &G) { return G.get(VarN).getInt(); }

Store addMessage(const Store &G, int64_t To, const Value &Msg) {
  return G.set(VarChannels,
               G.get(VarChannels)
                   .mapSet(intV(To),
                           G.get(VarChannels).mapAt(intV(To)).bagInsert(
                               Msg)));
}

/// Main of the fine-grained layer: one send chain and one receive chain
/// per node.
Action makeFineMain() {
  return Action(
      "Main", 0, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &) {
        Transition T(G);
        for (int64_t I = 1; I <= numNodes(G); ++I) {
          T.Created.emplace_back("BSend", args({I, 1}));
          T.Created.emplace_back("CRecv",
                                 args({I, 1, AccSeed}));
        }
        return std::vector<Transition>{std::move(T)};
      });
}

/// BSend(i, j): one primitive send — value[i] to CH[j] — continuing the
/// loop of Fig. 1-① lines 6-7 as a pending async.
Action makeBSend() {
  return Action(
      "BSend", 2, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &Args) {
        int64_t I = Args[0].getInt();
        int64_t J = Args[1].getInt();
        Transition T(
            addMessage(G, J, G.get(VarValue).mapAt(intV(I))));
        if (J < numNodes(G))
          T.Created.emplace_back("BSend", args({I, J + 1}));
        return std::vector<Transition>{std::move(T)};
      });
}

/// CRecv(i, j, acc): one primitive blocking receive, folding the running
/// maximum through the PA arguments (Fig. 1-① lines 9-13); the final step
/// publishes the decision.
Action makeCRecv() {
  return Action(
      "CRecv", 3, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &Args) {
        int64_t I = Args[0].getInt();
        int64_t J = Args[1].getInt();
        int64_t Acc = Args[2].getInt();
        std::vector<Transition> Out;
        const Value &Chan = G.get(VarChannels).mapAt(intV(I));
        for (const auto &[Msg, Count] : Chan.bagEntries()) {
          (void)Count;
          int64_t NewAcc = std::max(Acc, Msg.getInt());
          Store NG = G.set(VarChannels, G.get(VarChannels)
                                            .mapSet(intV(I),
                                                    Chan.bagErase(Msg)));
          if (J < numNodes(G)) {
            Transition T(std::move(NG));
            T.Created.emplace_back("CRecv", args({I, J + 1, NewAcc}));
            Out.push_back(std::move(T));
          } else {
            Out.emplace_back(
                NG.set(VarDecision,
                       NG.get(VarDecision)
                           .mapSet(intV(I), Value::some(intV(NewAcc)))));
          }
        }
        return Out;
      });
}

/// One primitive send step of the fused broadcast loop: CH[j] += value[i]
/// (the loop index j is baked into the op; i is the action parameter).
Action makeSendStep(int64_t J) {
  return Action(
      "SendStep" + std::to_string(J), 1, Action::alwaysEnabled(),
      [J](const Store &G, const std::vector<Value> &Args) {
        return std::vector<Transition>{Transition(
            addMessage(G, J, G.get(VarValue).mapAt(Args[0])))};
      });
}

/// Seeds the scratch accumulator (decision[i] := -∞ of Fig. 1-① line 9).
Action makeAccBegin() {
  return Action("AccBegin", 1, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &Args) {
                  return std::vector<Transition>{Transition(G.set(
                      VarAcc, G.get(VarAcc).mapSet(Args[0],
                                                   intV(AccSeed))))};
                });
}

/// One primitive receive step of the fused collect loop: take any message
/// from CH[i] and fold it into acc[i].
Action makeRecvStep(int64_t StepIndex) {
  return Action(
      "RecvStep" + std::to_string(StepIndex), 1, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &Args) {
        std::vector<Transition> Out;
        const Value &Chan = G.get(VarChannels).mapAt(Args[0]);
        int64_t Acc = G.get(VarAcc).mapAt(Args[0]).getInt();
        for (const auto &[Msg, Count] : Chan.bagEntries()) {
          (void)Count;
          Store NG =
              G.set(VarChannels,
                    G.get(VarChannels).mapSet(Args[0], Chan.bagErase(Msg)))
                  .set(VarAcc,
                       G.get(VarAcc).mapSet(
                           Args[0],
                           intV(std::max(Acc, Msg.getInt()))));
          Out.emplace_back(std::move(NG));
        }
        return Out;
      });
}

/// Publishes the decision and resets the scratch accumulator so the fused
/// action leaves no trace of the intermediate state.
Action makeAccFinish() {
  return Action(
      "AccFinish", 1, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &Args) {
        Store NG =
            G.set(VarDecision,
                  G.get(VarDecision)
                      .mapSet(Args[0],
                              Value::some(G.get(VarAcc).mapAt(Args[0]))))
                .set(VarAcc, G.get(VarAcc).mapSet(Args[0], intV(0)));
        return std::vector<Transition>{Transition(std::move(NG))};
      });
}

} // namespace

Program protocols::makeFineBroadcastProgram(const BroadcastParams &) {
  Program P;
  P.addAction(makeFineMain());
  P.addAction(makeBSend());
  P.addAction(makeCRecv());
  return P;
}

Store
protocols::makeFineBroadcastInitialStore(const BroadcastParams &Params) {
  return makeBroadcastInitialStore(Params).set(
      VarAcc, mapOfRange(1, Params.NumNodes,
                         [](int64_t) { return intV(0); }));
}

Program
protocols::makeReducedBroadcastProgram(const BroadcastParams &Params) {
  int64_t N = Params.NumNodes;

  // The fused broadcast loop: n left-moving sends.
  std::vector<PrimitiveOp> SendOps;
  for (int64_t J = 1; J <= N; ++J)
    SendOps.push_back({makeSendStep(J), MoverType::Left});

  // The fused collect loop: seed, n right-moving receives, publish.
  std::vector<PrimitiveOp> RecvOps;
  RecvOps.push_back({makeAccBegin(), MoverType::Both});
  for (int64_t J = 1; J <= N; ++J)
    RecvOps.push_back({makeRecvStep(J), MoverType::Right});
  RecvOps.push_back({makeAccFinish(), MoverType::Both});

  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       for (int64_t I = 1; I <= numNodes(G); ++I) {
                         T.Created.emplace_back("Broadcast", args({I}));
                         T.Created.emplace_back("Collect", args({I}));
                       }
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(fuseSequence("Broadcast", 1, SendOps));
  P.addAction(fuseSequence("Collect", 1, RecvOps));
  return P;
}

CheckResult protocols::checkFineBroadcastMoverAnnotations(
    const BroadcastParams &Params) {
  Program P = makeFineBroadcastProgram(Params);
  ExploreResult R = explore(
      P, initialConfiguration(makeFineBroadcastInitialStore(Params)));
  CheckResult Result;
  // The per-message send is a left mover; the per-message receive is a
  // right mover (§2: over bag channels, "receive is a right mover and
  // send is a left mover"). This justifies the Lipton pattern of both
  // fused loops.
  CheckResult Send =
      checkLeftMover(Symbol::get("BSend"), P.action("BSend"), P,
                     R.Reachable);
  if (!Send.ok())
    Result.fail("BSend is not a left mover");
  Result.merge(Send);
  CheckResult Recv =
      checkRightMover(Symbol::get("CRecv"), P.action("CRecv"), P,
                      R.Reachable);
  if (!Recv.ok())
    Result.fail("CRecv is not a right mover");
  Result.merge(Recv);
  return Result;
}
