//===- protocols/PingPong.h - Ping-Pong protocol (§5.3) -----------*- C++ -*-===//
///
/// \file
/// The paper's Ping-Pong example: a Ping process sends increasing numbers
/// 1..T to a Pong process over a bag channel, and Pong acknowledges each
/// number back. The verified assertions state that Pong receives
/// increasing numbers and Ping receives correct acknowledgments; both are
/// encoded as action gates (a wrong in-flight message fails the gate).
/// The sequentialization makes the alternation Ping(1); Pong(1); Ping(2);
/// ... explicit. One IS application (Table 1 row "Ping-Pong", #IS = 1).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_PINGPONG_H
#define ISQ_PROTOCOLS_PINGPONG_H

#include "is/ISApplication.h"
#include "semantics/Program.h"

namespace isq {
namespace protocols {

/// Instance parameter: number of round trips.
struct PingPongParams {
  int64_t NumRounds = 3;
};

/// Actions Main, Ping(k), Pong(k) over channels chPing (acks) and chPong
/// (numbers), with progress counters pingAcked / pongSeen.
Program makePingPongProgram(const PingPongParams &Params);

/// Initial store: empty channels, zeroed counters.
Store makePingPongInitialStore(const PingPongParams &Params);

/// The single IS application: E = {Ping, Pong}, schedule-derived
/// invariant with rank Ping(k) < Pong(k) < Ping(k+1), abstractions that
/// strengthen gates with channel non-emptiness, and a remaining-work
/// measure.
ISApplication makePingPongIS(const PingPongParams &Params);

/// A faulty variant for negative testing: Pong acknowledges k+1 instead
/// of k, so Ping's assertion gate fails.
Program makeBuggyPingPongProgram(const PingPongParams &Params);

/// Spec: both processes completed all T rounds and the channels drained.
bool checkPingPongSpec(const Store &Final, const PingPongParams &Params);

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_PINGPONG_H
