//===- protocols/ChangRoberts.h - Chang-Roberts leader election ----*- C++ -*-===//
///
/// \file
/// The Chang-Roberts leader election protocol [Chang & Roberts 1979] on a
/// unidirectional ring of n nodes with unique IDs. Every node sends its ID
/// to its successor; a node forwards incoming IDs greater than its own,
/// drops smaller ones, and declares itself leader upon receiving its own
/// ID. We verify that exactly one node — the one with the maximum ID —
/// becomes leader.
///
/// Messages are modeled as pending asyncs (Handle(node, id)), following
/// the paper's asynchronous-procedure-call style. The sequentialization
/// follows §5.3: nodes run to completion starting with the successor of
/// the maximum-ID node m, going around the ring, and finally m's own ID
/// traverses the full ring. Table 1 row "Chang-Roberts": 2 IS
/// applications (first eliminate Init, then Handle); a one-shot variant is
/// also provided.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_CHANGROBERTS_H
#define ISQ_PROTOCOLS_CHANGROBERTS_H

#include "is/ISApplication.h"
#include "semantics/Program.h"

#include <vector>

namespace isq {
namespace protocols {

/// Ring instance: node i (1-based) has identifier Ids[i-1]; IDs must be
/// distinct. Defaults to the identity permutation when empty.
struct ChangRobertsParams {
  int64_t NumNodes = 3;
  std::vector<int64_t> Ids;

  int64_t id(int64_t Node) const {
    return Ids.empty() ? Node : Ids[static_cast<size_t>(Node - 1)];
  }
  /// The node holding the maximum ID.
  int64_t maxNode() const;
  /// Ring successor.
  int64_t next(int64_t Node) const {
    return Node % NumNodes + 1;
  }
};

/// Actions Main, Init(i), Handle(i, v).
Program makeChangRobertsProgram(const ChangRobertsParams &Params);

/// Initial store: the ID assignment and no leaders.
Store makeChangRobertsInitialStore(const ChangRobertsParams &Params);

/// Stage 1 of the iterated proof: eliminate the Init fan-out.
ISApplication makeChangRobertsStage1IS(const ChangRobertsParams &Params);

/// Stage 2: eliminate the message handlers from the stage-1 result.
ISApplication makeChangRobertsStage2IS(const ChangRobertsParams &Params,
                                       const Program &AfterStage1);

/// One-shot variant eliminating both Init and Handle at once.
ISApplication makeChangRobertsOneShotIS(const ChangRobertsParams &Params);

/// Spec: exactly one leader, and it is the maximum-ID node.
bool checkChangRobertsSpec(const Store &Final,
                           const ChangRobertsParams &Params);

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_CHANGROBERTS_H
