//===- protocols/Pathological.h - Cooperation counterexample ------*- C++ -*-===//
///
/// \file
/// The §4 "cooperation is necessary" program:
///
///     action Main: async Rec; async Fail
///     action Rec:  async Rec
///     action Fail: assert false
///
/// The program can fail in two steps (Main; Fail), yet without the
/// cooperation condition an IS application with M = Main, E = {Rec} and
/// I = Main would erase every transition of M' (all of Main's transitions
/// create a Rec PA), producing an unsoundly failure-free P'. The IS
/// checker must *reject* this application: Rec can never decrease any
/// well-founded measure because it reproduces itself.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_PATHOLOGICAL_H
#define ISQ_PROTOCOLS_PATHOLOGICAL_H

#include "is/ISApplication.h"
#include "semantics/Program.h"

namespace isq {
namespace protocols {

/// The three-action program above.
Program makeCooperationCounterexampleProgram();

/// Its (unsound) IS application: all conditions except (CO) hold.
ISApplication makeCooperationCounterexampleIS();

/// An initial store for the program (it has no variables; a dummy marker
/// variable keeps stores distinguishable).
Store makeCooperationCounterexampleStore();

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_PATHOLOGICAL_H
