//===- protocols/ScheduleInvariant.cpp - Schedule-derived invariants -------------===//

#include "protocols/ScheduleInvariant.h"

#include "support/Hashing.h"

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>

using namespace isq;
using namespace isq::protocols;

namespace {

/// A schedule-tree node: the store and pending PAs after some prefix of
/// the fixed-priority sequential schedule.
struct Node {
  Store G;
  PaMultiset Omega;

  bool operator==(const Node &O) const {
    return G == O.G && Omega == O.Omega;
  }
};

struct NodeHash {
  size_t operator()(const Node &N) const {
    size_t Seed = N.G.hash();
    hashCombine(Seed, N.Omega.hash());
    return Seed;
  }
};

/// The minimum-rank ranked PA in \p Omega, or nullopt when none is ranked.
std::optional<PendingAsync> minRankPending(const PaMultiset &Omega,
                                           const RankFn &Rank) {
  std::optional<PendingAsync> Best;
  std::optional<std::vector<int64_t>> BestRank;
  for (const auto &[PA, Count] : Omega.entries()) {
    (void)Count;
    std::optional<std::vector<int64_t>> R = Rank(PA);
    if (!R)
      continue;
    if (!BestRank || *R < *BestRank) {
      Best = PA;
      BestRank = R;
    }
  }
  return Best;
}

} // namespace

Action protocols::makeScheduleInvariant(const std::string &Name,
                                        const Program &P, Symbol M,
                                        RankFn Rank, size_t MaxNodes) {
  // The schedule tree is enumerated with P's own transition relations, so
  // the derived invariant may run from concurrent checker jobs exactly
  // when every action of P may (e.g. compiled ASL modules). Distinct
  // (store, args) points then expand their trees in parallel.
  bool ThreadSafe = true;
  for (Symbol A : P.actionNames())
    ThreadSafe = ThreadSafe && P.action(A).transitionsThreadSafe();
  // Memoized per (store, args); the cache is shared by all copies of the
  // returned action (captured shared_ptr). Guarded by a mutex: the same
  // action instance may be enumerated from concurrent explorer workers
  // (a racing double-compute is resolved by keeping the first result).
  using Key = std::pair<Store, std::vector<Value>>;
  struct KeyLess {
    bool operator()(const Key &A, const Key &B) const {
      if (A.first != B.first)
        return A.first < B.first;
      return A.second < B.second;
    }
  };
  auto Cache =
      std::make_shared<std::map<Key, std::vector<Transition>, KeyLess>>();
  auto CacheMutex = std::make_shared<std::mutex>();

  Action MAction = P.action(M);
  Action::TransitionsFn Transitions = [P, MAction, Rank, MaxNodes, Cache,
                                       CacheMutex](
                                          const Store &G,
                                          const std::vector<Value> &Args) {
    Key K{G, Args};
    {
      // Map nodes are stable and values immutable once inserted, so the
      // (potentially large) result copy happens outside the lock.
      const std::vector<Transition> *Found = nullptr;
      {
        std::lock_guard<std::mutex> Lock(*CacheMutex);
        auto It = Cache->find(K);
        if (It != Cache->end())
          Found = &It->second;
      }
      if (Found)
        return *Found;
    }

    std::unordered_set<Node, NodeHash> Seen;
    std::deque<Node> Worklist;
    std::vector<Transition> Out;

    auto Push = [&](Store NG, PaMultiset Omega) {
      Node N{std::move(NG), std::move(Omega)};
      if (Seen.size() >= MaxNodes)
        return;
      if (!Seen.insert(N).second)
        return;
      Out.emplace_back(N.G, N.Omega.flatten());
      Worklist.push_back(std::move(N));
    };

    // Roots: M's own transitions — the base case (I1) holds by
    // construction.
    for (const Transition &T : MAction.transitions(G, Args))
      Push(T.Global, T.createdMultiset());

    while (!Worklist.empty()) {
      Node N = std::move(Worklist.front());
      Worklist.pop_front();
      std::optional<PendingAsync> Next = minRankPending(N.Omega, Rank);
      if (!Next)
        continue; // schedule complete at this node
      const Action &A = P.action(Next->Action);
      // A failing or blocked scheduled PA means the declared order is not
      // a valid sequentialization; leave the node as a leaf — the (I3)
      // and (I2) conditions will then reject the application with a
      // diagnostic instead of crashing here.
      if (!A.evalGate(N.G, Next->Args, N.Omega))
        continue;
      std::vector<Transition> Steps = A.transitions(N.G, Next->Args);
      if (Steps.empty())
        continue;
      PaMultiset Rest = N.Omega;
      Rest.erase(*Next);
      for (const Transition &T : Steps) {
        PaMultiset Omega = Rest;
        for (const PendingAsync &New : T.Created)
          Omega.insert(New);
        Push(T.Global, std::move(Omega));
      }
    }

    const std::vector<Transition> *Inserted;
    {
      std::lock_guard<std::mutex> Lock(*CacheMutex);
      // A racing double-compute keeps the first result.
      Inserted = &Cache->emplace(std::move(K), std::move(Out)).first->second;
    }
    return *Inserted;
  };

  return Action(Name, MAction.arity(), Action::alwaysEnabled(),
                std::move(Transitions), /*GateReadsOmega=*/false,
                ThreadSafe);
}

ChoiceFn protocols::chooseMinRank(RankFn Rank) {
  return [Rank](const Store &, const std::vector<Value> &,
                const Transition &T) {
    std::optional<PendingAsync> Best;
    std::optional<std::vector<int64_t>> BestRank;
    for (const PendingAsync &PA : T.Created) {
      std::optional<std::vector<int64_t>> R = Rank(PA);
      if (!R)
        continue;
      if (!BestRank || *R < *BestRank) {
        Best = PA;
        BestRank = R;
      }
    }
    assert(Best && "chooseMinRank: no ranked PA among created PAs");
    return *Best;
  };
}
