//===- protocols/TwoPhaseCommit.h - 2PC with early abort ----------*- C++ -*-===//
///
/// \file
/// The paper's optimized two-phase commit (§5.3): a coordinator broadcasts
/// vote requests to n participants and collects their yes/no votes. The
/// realistic optimizations that complicate verification are modeled
/// faithfully:
///
///  - *early abort*: the coordinator decides "abort" as soon as one
///    negative vote arrives, without waiting for the remaining votes
///    (which stay in flight forever);
///  - *concurrent request/decision processing*: a participant may receive
///    and finalize the decision before it has processed the vote request.
///
/// Verified properties: all participants finalize the same decision as the
/// coordinator, and commit happens only if every participant voted yes.
///
/// Table 1 row "Two-phase commit": 4 IS applications (RequestVotes, Vote,
/// Decide, Finalize), each enlarging the sequentialized prefix; a one-shot
/// variant exercises the Decide/Finalize abstractions.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_TWOPHASECOMMIT_H
#define ISQ_PROTOCOLS_TWOPHASECOMMIT_H

#include "is/ISApplication.h"
#include "semantics/Program.h"

namespace isq {
namespace protocols {

/// Instance: number of participants. Votes are chosen
/// nondeterministically, so all 2^n vote combinations are covered.
struct TwoPhaseCommitParams {
  int64_t NumParticipants = 3;
};

/// Actions Main, RequestVotes, Vote(i), Decide, Finalize(i).
Program makeTwoPhaseCommitProgram(const TwoPhaseCommitParams &Params);

/// Initial store: empty channels, no votes, no decision.
Store makeTwoPhaseCommitInitialStore(const TwoPhaseCommitParams &Params);

/// The four IS applications of the iterated proof, in order; stage k
/// applies to the program produced by stage k-1.
ISApplication makeTwoPhaseCommitStageIS(const TwoPhaseCommitParams &Params,
                                        size_t Stage,
                                        const Program &Current);

constexpr size_t kTwoPhaseCommitStages = 4;

/// One-shot variant eliminating all phases at once (requires the
/// Decide/Finalize abstractions).
ISApplication makeTwoPhaseCommitOneShotIS(const TwoPhaseCommitParams &Params);

/// Spec: a decision was reached; every participant finalized it; commit
/// implies unanimous yes votes.
bool checkTwoPhaseCommitSpec(const Store &Final,
                             const TwoPhaseCommitParams &Params);

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_TWOPHASECOMMIT_H
