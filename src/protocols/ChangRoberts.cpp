//===- protocols/ChangRoberts.cpp - Chang-Roberts leader election ----------------===//

#include "protocols/ChangRoberts.h"

#include "protocols/ProtocolUtil.h"
#include "protocols/ScheduleInvariant.h"

using namespace isq;
using namespace isq::protocols;

namespace {

const char *VarN = "n";
const char *VarId = "id";
const char *VarLeader = "leader";

int64_t numNodes(const Store &G) { return G.get(VarN).getInt(); }

int64_t nextNode(const Store &G, int64_t Node) {
  return Node % numNodes(G) + 1;
}

int64_t idOf(const Store &G, int64_t Node) {
  return G.get(VarId).mapAt(intV(Node)).getInt();
}

Action makeMain() {
  return Action("Main", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  Transition T(G);
                  for (int64_t I = 1; I <= numNodes(G); ++I)
                    T.Created.emplace_back("Init", args({I}));
                  return std::vector<Transition>{std::move(T)};
                });
}

/// Init(i): node i starts the election by sending its ID to its successor.
Action makeInit() {
  return Action("Init", 1, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &Args) {
                  int64_t I = Args[0].getInt();
                  Transition T(G);
                  T.Created.emplace_back(
                      "Handle", args({nextNode(G, I), idOf(G, I)}));
                  return std::vector<Transition>{std::move(T)};
                });
}

/// Handle(i, v): node i processes ID v — forward if greater than its own,
/// declare leadership if equal, drop otherwise.
Action makeHandle() {
  return Action(
      "Handle", 2, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &Args) {
        int64_t I = Args[0].getInt();
        int64_t V = Args[1].getInt();
        int64_t Own = idOf(G, I);
        Transition T(G);
        if (V > Own)
          T.Created.emplace_back("Handle", args({nextNode(G, I), V}));
        else if (V == Own)
          T.Global = G.set(
              VarLeader, G.get(VarLeader).mapSet(intV(I), boolV(true)));
        return std::vector<Transition>{std::move(T)};
      });
}

/// Turn of node \p U in the sequential order starting at m's successor.
int64_t turnOf(const ChangRobertsParams &Params, int64_t U) {
  int64_t M = Params.maxNode();
  return ((U - (M + 1)) % Params.NumNodes + Params.NumNodes) %
         Params.NumNodes;
}

/// Ranks for the one-shot schedule: during node u's turn, Init(u) comes
/// first, then the messages pending at u (smaller IDs first). The maximum
/// ID's full-ring traversal naturally runs after the last turn (its
/// handles are only created then).
RankFn makeRank(const ChangRobertsParams &Params, bool RankInit,
                bool RankHandle) {
  return [Params, RankInit,
          RankHandle](const PendingAsync &PA)
             -> std::optional<std::vector<int64_t>> {
    if (RankInit && PA.Action == Symbol::get("Init"))
      return std::vector<int64_t>{turnOf(Params, PA.Args[0].getInt()), 0,
                                  0};
    if (RankHandle && PA.Action == Symbol::get("Handle"))
      return std::vector<int64_t>{turnOf(Params, PA.Args[0].getInt()), 1,
                                  PA.Args[1].getInt()};
    return std::nullopt;
  };
}

/// The well-founded measure: an Init is worth n+1; a message is worth its
/// remaining travel distance to the node owning its ID (inclusive).
/// Every action strictly decreases the sum.
Measure makeDistanceMeasure(const ChangRobertsParams &Params) {
  return Measure("Σ travel-distance", [Params](const Configuration &C) {
    if (C.isFailure())
      return std::vector<uint64_t>{0};
    uint64_t Total = 0;
    int64_t N = Params.NumNodes;
    for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
      uint64_t W = 0;
      if (PA.Action == Symbol::get("Init"))
        W = static_cast<uint64_t>(N + 1);
      else if (PA.Action == Symbol::get("Handle")) {
        int64_t I = PA.Args[0].getInt();
        int64_t V = PA.Args[1].getInt();
        // Owner of V in the fixed ID assignment.
        int64_t Owner = 0;
        for (int64_t U = 1; U <= N; ++U)
          if (Params.id(U) == V)
            Owner = U;
        W = static_cast<uint64_t>(((Owner - I) % N + N) % N + 1);
      }
      Total += W * Count;
    }
    return std::vector<uint64_t>{Total};
  });
}

} // namespace

int64_t ChangRobertsParams::maxNode() const {
  int64_t Best = 1;
  for (int64_t U = 2; U <= NumNodes; ++U)
    if (id(U) > id(Best))
      Best = U;
  return Best;
}

Program protocols::makeChangRobertsProgram(const ChangRobertsParams &) {
  Program P;
  P.addAction(makeMain());
  P.addAction(makeInit());
  P.addAction(makeHandle());
  return P;
}

Store
protocols::makeChangRobertsInitialStore(const ChangRobertsParams &Params) {
  int64_t N = Params.NumNodes;
  return Store::make(
      {{Symbol::get(VarN), intV(N)},
       {Symbol::get(VarId),
        mapOfRange(1, N, [&](int64_t I) { return intV(Params.id(I)); })},
       {Symbol::get(VarLeader),
        mapOfRange(1, N, [](int64_t) { return boolV(false); })}});
}

ISApplication
protocols::makeChangRobertsStage1IS(const ChangRobertsParams &Params) {
  ISApplication App;
  App.P = makeChangRobertsProgram(Params);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Init")};
  RankFn Rank = makeRank(Params, /*RankInit=*/true, /*RankHandle=*/false);
  App.Invariant =
      makeScheduleInvariant("ChangRobertsInitInv", App.P, App.M, Rank);
  App.Choice = chooseMinRank(Rank);
  App.WfMeasure = makeDistanceMeasure(Params);
  return App;
}

ISApplication
protocols::makeChangRobertsStage2IS(const ChangRobertsParams &Params,
                                    const Program &AfterStage1) {
  ISApplication App;
  App.P = AfterStage1;
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Handle")};
  RankFn Rank = makeRank(Params, /*RankInit=*/false, /*RankHandle=*/true);
  App.Invariant = makeScheduleInvariant("ChangRobertsHandleInv", App.P,
                                        App.M, Rank);
  App.Choice = chooseMinRank(Rank);
  App.WfMeasure = makeDistanceMeasure(Params);
  return App;
}

ISApplication
protocols::makeChangRobertsOneShotIS(const ChangRobertsParams &Params) {
  ISApplication App;
  App.P = makeChangRobertsProgram(Params);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Init"), Symbol::get("Handle")};
  RankFn Rank = makeRank(Params, /*RankInit=*/true, /*RankHandle=*/true);
  App.Invariant =
      makeScheduleInvariant("ChangRobertsInv", App.P, App.M, Rank);
  App.Choice = chooseMinRank(Rank);
  App.WfMeasure = makeDistanceMeasure(Params);
  return App;
}

bool protocols::checkChangRobertsSpec(const Store &Final,
                                      const ChangRobertsParams &Params) {
  int64_t M = Params.maxNode();
  for (int64_t U = 1; U <= Params.NumNodes; ++U) {
    bool IsLeader = Final.get(VarLeader).mapAt(intV(U)).getBool();
    if (IsLeader != (U == M))
      return false;
  }
  return true;
}
