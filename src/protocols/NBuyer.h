//===- protocols/NBuyer.h - N-Buyer coordination (§5.3) -----------*- C++ -*-===//
///
/// \file
/// The paper's N-Buyer example (adapted from the session-types literature):
/// n buyer processes coordinate the purchase of an item from a seller.
/// Buyer 1 requests a quote; the seller broadcasts the price to all
/// buyers; every buyer nondeterministically promises a contribution and
/// reports it; an aggregator places the order iff the contributions cover
/// the price. The functional specification: if an order is placed, its
/// amount equals the sum of the promised contributions.
///
/// Table 1 row "N-Buyer": 4 IS applications, each stage eliminating one
/// protocol phase (Request, Quote, Contribute, Place) and enlarging the
/// sequentialized prefix.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_NBUYER_H
#define ISQ_PROTOCOLS_NBUYER_H

#include "is/ISApplication.h"
#include "semantics/Program.h"

#include <vector>

namespace isq {
namespace protocols {

/// Instance: NumBuyers buyers, item price, and the contribution amounts
/// each buyer may nondeterministically promise.
struct NBuyerParams {
  int64_t NumBuyers = 3;
  int64_t Price = 2;
  std::vector<int64_t> ContributionChoices = {0, 1};
};

/// Actions Main, Request, Quote, Contribute(i), Place.
Program makeNBuyerProgram(const NBuyerParams &Params);

/// Initial store: empty channels, no promises, no order.
Store makeNBuyerInitialStore(const NBuyerParams &Params);

/// The four IS applications of the iterated proof, in order. Stage k
/// applies to the program produced by stage k-1 (stage 0 receives the
/// original program).
ISApplication makeNBuyerStageIS(const NBuyerParams &Params, size_t Stage,
                                const Program &Current);

/// Number of stages (4, matching the paper's #IS).
constexpr size_t kNBuyerStages = 4;

/// A one-shot variant eliminating all four phases at once. Unlike the
/// staged proof — where each fused Main pre-feeds the next receive, making
/// every eliminated action non-blocking — the one-shot proof has Place
/// genuinely co-pending with the Contributes, so it *requires* the
/// channel-fullness abstraction (used by the negative tests).
ISApplication makeNBuyerOneShotIS(const NBuyerParams &Params);

/// Spec: promises recorded for every buyer; the order is placed iff the
/// promised sum covers the price, and its amount equals that sum.
bool checkNBuyerSpec(const Store &Final, const NBuyerParams &Params);

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_NBUYER_H
