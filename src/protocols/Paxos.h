//===- protocols/Paxos.h - Single-decree Paxos (§5.2, Fig. 4) -----*- C++ -*-===//
///
/// \file
/// Single-decree Paxos [Lamport 1998], modeled after the paper's most
/// significant case study (§5.2, Fig. 4). The protocol runs R rounds over
/// N acceptors. Round r's proposer first collects a *join* quorum (phase
/// 1), then proposes a value — either learned from the highest visible
/// earlier vote or its own — and collects a *vote* quorum (phase 2) to
/// decide. Acceptors abandon lower rounds when they hear about higher
/// ones. Following §5.2, the effect of overlapping rounds and
/// out-of-order delivery is modeled by acceptors and the proposer
/// nondeterministically dropping messages (the `if (*)` branches of
/// Fig. 4(b)), so every round may fail but safety is unconditional:
///
///     no two rounds decide different values.
///
/// The sequentialization executes rounds one at a time, in increasing
/// order, with the fixed phase order of §5.2:
///     S(1) J(1,1..N) P(1) V(1,1..N) C(1) | S(2) J(2,1..N) ...
///
/// Table 1 row "Paxos": one IS application, with the Fig. 4(c)-style
/// left-mover abstractions whose gates assert that nothing at lower
/// rounds is still pending.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_PAXOS_H
#define ISQ_PROTOCOLS_PAXOS_H

#include "is/ISApplication.h"
#include "semantics/Program.h"

namespace isq {
namespace protocols {

/// Instance: rounds 1..NumRounds, acceptors 1..NumNodes. Round r proposes
/// its own value r when it has not learned an earlier one, so conflicting
/// proposals exist whenever NumRounds > 1.
struct PaxosParams {
  int64_t NumRounds = 2;
  int64_t NumNodes = 3;
};

/// Actions Main (= Paxos), StartRound(r), Join(r, n), Propose(r),
/// Vote(r, n, v), Conclude(r, v) over the abstract state of Fig. 4(b):
/// lastJoined, joinedNodes, voteInfo, decision.
Program makePaxosProgram(const PaxosParams &Params);

/// Initial store: nothing joined, voted, or decided.
Store makePaxosInitialStore(const PaxosParams &Params);

/// The single IS application of Fig. 4(c): round-by-round rank, the
/// schedule-derived invariant (PaxosInv), abstractions StartRound/Join/
/// Propose/Vote/Conclude with lower-round-free gates, and a phase-weight
/// measure.
ISApplication makePaxosIS(const PaxosParams &Params);

/// The explicit specification action Paxos' of Fig. 4(c): decisions are
/// consistent. Used as documentation and for spec-level tests.
bool checkPaxosSpec(const Store &Final, const PaxosParams &Params);

/// True if some round decided in \p Final.
bool paxosDecided(const Store &Final);

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_PAXOS_H
