//===- protocols/FineGrained.h - Low-level broadcast layer (§5.2) ---*- C++ -*-===//
///
/// \file
/// The paper's verification methodology starts from a *low-level*
/// concurrent program P1 that only uses primitive atomic actions — one
/// send or receive per step (§5.2 "Implementation"). An existing CIVL
/// transformation (reduction) summarizes the loops into the atomic
/// actions of P2, and only then is IS applied.
///
/// This module provides that bottom layer for broadcast consensus:
///
///  - `makeFineBroadcastProgram`: Main spawns, per node, a chain of
///    per-message send steps (BSend(i, j) sends value[i] to CH[j] and
///    continues with BSend(i, j+1)) and a chain of per-message receive
///    steps (CRecv(i, j, acc) receives one value, folds the maximum into
///    the accumulator carried in the PA arguments, and finally writes
///    decision[i]);
///  - `makeReducedBroadcastProgram`: the same program with each chain
///    fused into one atomic action by the reduction module (Lipton
///    pattern: the sends are left movers, the receives right movers),
///    using a scratch accumulator variable that is reset before the
///    action completes so terminal stores stay comparable;
///  - the store layout matches `makeBroadcastProgram`, so P1, the fused
///    P2, and the hand-written atomic P2 can be cross-checked by
///    terminal-store equality.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_FINEGRAINED_H
#define ISQ_PROTOCOLS_FINEGRAINED_H

#include "protocols/Broadcast.h"
#include "refine/Refinement.h"
#include "semantics/Program.h"

namespace isq {
namespace protocols {

/// The low-level program P1: Main, BSend(i, j), CRecv(i, j, acc).
Program makeFineBroadcastProgram(const BroadcastParams &Params);

/// Initial store for both layers: the Broadcast layout plus the scratch
/// accumulator map used by the fused receive loops (all zero, and reset
/// to zero by every fused action, so terminal stores coincide).
Store makeFineBroadcastInitialStore(const BroadcastParams &Params);

/// P2 by reduction: Main plus the fused per-node Broadcast/Collect
/// actions produced by fuseSequence over the primitive steps.
Program makeReducedBroadcastProgram(const BroadcastParams &Params);

/// Verifies the mover annotations that justify the fusion (sends are
/// left movers; the one-message receives are right movers) over P1's
/// reachable configurations.
CheckResult checkFineBroadcastMoverAnnotations(const BroadcastParams &Params);

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_FINEGRAINED_H
