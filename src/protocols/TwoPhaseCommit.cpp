//===- protocols/TwoPhaseCommit.cpp - 2PC with early abort -----------------------===//

#include "protocols/TwoPhaseCommit.h"

#include "protocols/ProtocolUtil.h"
#include "protocols/ScheduleInvariant.h"
#include "semantics/Symmetry.h"

#include <memory>

using namespace isq;
using namespace isq::protocols;

namespace {

const char *VarN = "n";
const char *VarReqCh = "reqCh";     ///< per-participant vote requests
const char *VarVoteCh = "voteCh";   ///< (participant, vote) tuples
const char *VarDecCh = "decCh";     ///< per-participant decisions
const char *VarVoted = "voted";     ///< vote each participant sent
const char *VarDecision = "decision";
const char *VarFinalized = "finalized";

int64_t numParticipants(const Store &G) { return G.get(VarN).getInt(); }

Action makeMain() {
  return Action("Main", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  Transition T(G);
                  T.Created.emplace_back("RequestVotes",
                                         std::vector<Value>{});
                  return std::vector<Transition>{std::move(T)};
                });
}

/// RequestVotes: the coordinator broadcasts a request to every participant
/// and starts the vote handlers plus its own collection task.
Action makeRequestVotes() {
  return Action(
      "RequestVotes", 0, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &) {
        Value Reqs = G.get(VarReqCh);
        for (int64_t I = 1; I <= numParticipants(G); ++I)
          Reqs = Reqs.mapSet(intV(I),
                             Reqs.mapAt(intV(I)).bagInsert(intV(1)));
        Transition T(G.set(VarReqCh, Reqs));
        for (int64_t I = 1; I <= numParticipants(G); ++I)
          T.Created.emplace_back("Vote", args({I}));
        T.Created.emplace_back("Decide", std::vector<Value>{});
        return std::vector<Transition>{std::move(T)};
      });
}

/// Vote(i): participant i receives the request (blocking) and votes yes
/// or no nondeterministically.
Action makeVote() {
  return Action(
      "Vote", 1, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &Args) {
        int64_t I = Args[0].getInt();
        std::vector<Transition> Out;
        const Value &MyReqs = G.get(VarReqCh).mapAt(intV(I));
        if (MyReqs.bagSize() == 0)
          return Out; // request not yet delivered
        Store Received = G.set(
            VarReqCh, G.get(VarReqCh).mapSet(intV(I),
                                             MyReqs.bagErase(intV(1))));
        for (bool Yes : {true, false}) {
          Store NG =
              Received
                  .set(VarVoted, Received.get(VarVoted)
                                     .mapSet(intV(I),
                                             Value::some(boolV(Yes))))
                  .set(VarVoteCh,
                       Received.get(VarVoteCh)
                           .bagInsert(Value::tuple({intV(I), boolV(Yes)})));
          Out.emplace_back(std::move(NG));
        }
        return Out;
      });
}

/// Shared transitions of Decide and its abstraction. Branch A: all n
/// votes arrived and all are yes — commit. Branch B (early abort): some
/// negative vote arrived — consume only that vote and abort immediately;
/// the remaining votes stay in flight forever.
std::vector<Transition> decideTransitions(const Store &G,
                                          const std::vector<Value> &) {
  std::vector<Transition> Out;
  int64_t N = numParticipants(G);
  const Value &Votes = G.get(VarVoteCh);

  auto Broadcast = [&](Store NG, bool Commit) {
    NG = NG.set(VarDecision, Value::some(boolV(Commit)));
    Value Decs = NG.get(VarDecCh);
    for (int64_t I = 1; I <= N; ++I)
      Decs = Decs.mapSet(intV(I),
                         Decs.mapAt(intV(I)).bagInsert(boolV(Commit)));
    Transition T(NG.set(VarDecCh, Decs));
    for (int64_t I = 1; I <= N; ++I)
      T.Created.emplace_back("Finalize", args({I}));
    return T;
  };

  // Branch A: unanimous commit.
  if (Votes.bagSize() == static_cast<uint64_t>(N)) {
    bool AllYes = true;
    for (const auto &[Tuple, Count] : Votes.bagEntries()) {
      (void)Count;
      AllYes = AllYes && Tuple.elem(1).getBool();
    }
    if (AllYes)
      Out.push_back(Broadcast(G.set(VarVoteCh, emptyBag()), true));
  }
  // Branch B: early abort on any negative vote.
  for (const auto &[Tuple, Count] : Votes.bagEntries()) {
    (void)Count;
    if (Tuple.elem(1).getBool())
      continue;
    Out.push_back(
        Broadcast(G.set(VarVoteCh, Votes.bagErase(Tuple)), false));
  }
  return Out;
}

Action makeDecide() {
  return Action("Decide", 0, Action::alwaysEnabled(), decideTransitions);
}

/// Finalize(i): participant i receives the decision (blocking) and
/// finalizes the transaction — possibly before processing the request.
std::vector<Transition> finalizeTransitions(const Store &G,
                                            const std::vector<Value> &Args) {
  int64_t I = Args[0].getInt();
  std::vector<Transition> Out;
  const Value &MyDecs = G.get(VarDecCh).mapAt(intV(I));
  for (const auto &[Dec, Count] : MyDecs.bagEntries()) {
    (void)Count;
    Store NG =
        G.set(VarDecCh,
              G.get(VarDecCh).mapSet(intV(I), MyDecs.bagErase(Dec)))
            .set(VarFinalized,
                 G.get(VarFinalized).mapSet(intV(I), Value::some(Dec)));
    Out.emplace_back(std::move(NG));
  }
  return Out;
}

Action makeFinalize() {
  return Action("Finalize", 1, Action::alwaysEnabled(),
                finalizeTransitions);
}

/// Phase order of the sequentialization (the "natural flow" of §5.3):
/// RequestVotes < Vote(1..n) < Decide < Finalize(1..n).
std::optional<std::vector<int64_t>> phaseRank(const PendingAsync &PA) {
  if (PA.Action == Symbol::get("RequestVotes"))
    return std::vector<int64_t>{0, 0};
  if (PA.Action == Symbol::get("Vote"))
    return std::vector<int64_t>{1, PA.Args[0].getInt()};
  if (PA.Action == Symbol::get("Decide"))
    return std::vector<int64_t>{2, 0};
  if (PA.Action == Symbol::get("Finalize"))
    return std::vector<int64_t>{3, PA.Args[0].getInt()};
  return std::nullopt;
}

Measure makeTwoPhaseCommitMeasure(const TwoPhaseCommitParams &Params) {
  int64_t N = Params.NumParticipants;
  return Measure("Σ phase-weight", [N](const Configuration &C) {
    if (C.isFailure())
      return std::vector<uint64_t>{0};
    uint64_t Total = 0;
    for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
      uint64_t W = 0;
      if (PA.Action == Symbol::get("RequestVotes"))
        W = static_cast<uint64_t>(3 * N + 4);
      else if (PA.Action == Symbol::get("Vote"))
        W = 1;
      else if (PA.Action == Symbol::get("Decide"))
        W = static_cast<uint64_t>(N + 2);
      else if (PA.Action == Symbol::get("Finalize"))
        W = 1;
      Total += W * Count;
    }
    return std::vector<uint64_t>{Total};
  });
}

/// The Decide abstraction: non-blocking in the sequential context where
/// all n votes have arrived.
Action makeDecideAbs(const Program &P) {
  return Action("DecideAbs", 0,
                [](const GateContext &Ctx) {
                  return Ctx.Global.get(VarVoteCh).bagSize() >=
                         static_cast<uint64_t>(
                             numParticipants(Ctx.Global));
                },
                [P](const Store &G, const std::vector<Value> &Args) {
                  return P.action("Decide").transitions(G, Args);
                });
}

/// The Finalize abstraction: the decision has been delivered.
Action makeFinalizeAbs(const Program &P) {
  return Action("FinalizeAbs", 1,
                [](const GateContext &Ctx) {
                  return Ctx.Global.get(VarDecCh)
                             .mapAt(Ctx.Args[0])
                             .bagSize() >= 1;
                },
                [P](const Store &G, const std::vector<Value> &Args) {
                  return P.action("Finalize").transitions(G, Args);
                });
}

} // namespace

Program
protocols::makeTwoPhaseCommitProgram(const TwoPhaseCommitParams &Params) {
  Program P;
  P.addAction(makeMain());
  P.addAction(makeRequestVotes());
  P.addAction(makeVote());
  P.addAction(makeDecide());
  P.addAction(makeFinalize());

  // Participants 1..n are interchangeable: votes and decisions flow
  // through per-participant channels addressed only by the ID itself, so
  // the engine may explore the quotient under participant permutations.
  int64_t N = Params.NumParticipants;
  if (N >= 1 && static_cast<size_t>(N) <= SymmetrySpec::MaxDomainSize) {
    std::vector<int64_t> Domain;
    for (int64_t I = 1; I <= N; ++I)
      Domain.push_back(I);
    auto Sym = std::make_shared<SymmetrySpec>("participant",
                                              std::move(Domain));
    ValueShape IdToBag =
        ValueShape::mapOf(ValueShape::id(), ValueShape::bagOf(ValueShape::plain()));
    ValueShape IdToOption =
        ValueShape::mapOf(ValueShape::id(),
                          ValueShape::option(ValueShape::plain()));
    Sym->setGlobalShape(Symbol::get(VarReqCh), IdToBag);
    Sym->setGlobalShape(
        Symbol::get(VarVoteCh),
        ValueShape::bagOf(
            ValueShape::tuple({ValueShape::id(), ValueShape::plain()})));
    Sym->setGlobalShape(Symbol::get(VarDecCh), IdToBag);
    Sym->setGlobalShape(Symbol::get(VarVoted), IdToOption);
    Sym->setGlobalShape(Symbol::get(VarFinalized), IdToOption);
    Sym->setActionShape(Symbol::get("Vote"), {ValueShape::id()});
    Sym->setActionShape(Symbol::get("Finalize"), {ValueShape::id()});
    P.setSymmetry(std::move(Sym));
  }
  return P;
}

Store protocols::makeTwoPhaseCommitInitialStore(
    const TwoPhaseCommitParams &Params) {
  int64_t N = Params.NumParticipants;
  auto EmptyBags = [](int64_t) { return emptyBag(); };
  auto Nones = [](int64_t) { return Value::none(); };
  return Store::make({{Symbol::get(VarN), intV(N)},
                      {Symbol::get(VarReqCh), mapOfRange(1, N, EmptyBags)},
                      {Symbol::get(VarVoteCh), emptyBag()},
                      {Symbol::get(VarDecCh), mapOfRange(1, N, EmptyBags)},
                      {Symbol::get(VarVoted), mapOfRange(1, N, Nones)},
                      {Symbol::get(VarDecision), Value::none()},
                      {Symbol::get(VarFinalized),
                       mapOfRange(1, N, Nones)}});
}

ISApplication
protocols::makeTwoPhaseCommitStageIS(const TwoPhaseCommitParams &Params,
                                     size_t Stage, const Program &Current) {
  static const char *StageActions[kTwoPhaseCommitStages] = {
      "RequestVotes", "Vote", "Decide", "Finalize"};
  assert(Stage < kTwoPhaseCommitStages && "2PC has exactly four stages");
  Symbol Target = Symbol::get(StageActions[Stage]);

  ISApplication App;
  App.P = Current;
  App.M = Program::mainSymbol();
  App.E = {Target};
  RankFn Rank = [Target](const PendingAsync &PA)
      -> std::optional<std::vector<int64_t>> {
    if (PA.Action != Target)
      return std::nullopt;
    return std::vector<int64_t>{PA.Args.empty() ? 0
                                                : PA.Args[0].getInt()};
  };
  App.Invariant = makeScheduleInvariant(
      std::string("TwoPhaseCommitInv") + StageActions[Stage], App.P, App.M,
      Rank);
  App.Choice = chooseMinRank(Rank);
  App.WfMeasure = makeTwoPhaseCommitMeasure(Params);
  if (Target == Symbol::get("Decide"))
    App.Abstractions.emplace(Target, makeDecideAbs(App.P));
  else if (Target == Symbol::get("Finalize"))
    App.Abstractions.emplace(Target, makeFinalizeAbs(App.P));
  return App;
}

ISApplication protocols::makeTwoPhaseCommitOneShotIS(
    const TwoPhaseCommitParams &Params) {
  ISApplication App;
  App.P = makeTwoPhaseCommitProgram(Params);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("RequestVotes"), Symbol::get("Vote"),
           Symbol::get("Decide"), Symbol::get("Finalize")};
  App.Invariant =
      makeScheduleInvariant("TwoPhaseCommitInv", App.P, App.M, phaseRank);
  App.Choice = chooseMinRank(phaseRank);
  App.WfMeasure = makeTwoPhaseCommitMeasure(Params);
  App.Abstractions.emplace(Symbol::get("Decide"), makeDecideAbs(App.P));
  App.Abstractions.emplace(Symbol::get("Finalize"),
                           makeFinalizeAbs(App.P));
  return App;
}

bool protocols::checkTwoPhaseCommitSpec(const Store &Final,
                                        const TwoPhaseCommitParams &Params) {
  const Value &Decision = Final.get(VarDecision);
  if (Decision.isNone())
    return false;
  bool Commit = Decision.getSome().getBool();
  for (int64_t I = 1; I <= Params.NumParticipants; ++I) {
    const Value &Fin = Final.get(VarFinalized).mapAt(intV(I));
    if (Fin.isNone() || Fin.getSome().getBool() != Commit)
      return false;
    if (Commit) {
      const Value &Voted = Final.get(VarVoted).mapAt(intV(I));
      if (Voted.isNone() || !Voted.getSome().getBool())
        return false;
    }
  }
  return true;
}
