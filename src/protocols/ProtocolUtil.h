//===- protocols/ProtocolUtil.h - Shared protocol helpers ---------*- C++ -*-===//
///
/// \file
/// Small helpers shared by the protocol builders: integer-value shorthand,
/// range-indexed maps, and argument-vector construction.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_PROTOCOLUTIL_H
#define ISQ_PROTOCOLS_PROTOCOLUTIL_H

#include "semantics/Value.h"

#include <functional>
#include <initializer_list>
#include <vector>

namespace isq {
namespace protocols {

inline Value intV(int64_t N) { return Value::integer(N); }
inline Value boolV(bool B) { return Value::boolean(B); }

/// Builds map{Lo -> F(Lo), ..., Hi -> F(Hi)} over integer keys.
inline Value mapOfRange(int64_t Lo, int64_t Hi,
                        const std::function<Value(int64_t)> &F) {
  std::vector<std::pair<Value, Value>> Pairs;
  for (int64_t I = Lo; I <= Hi; ++I)
    Pairs.push_back({intV(I), F(I)});
  return Value::map(std::move(Pairs));
}

/// Integer argument vector shorthand.
inline std::vector<Value> args(std::initializer_list<int64_t> Ns) {
  std::vector<Value> Out;
  for (int64_t N : Ns)
    Out.push_back(intV(N));
  return Out;
}

inline Value emptyBag() { return Value::bag({}); }
inline Value emptySet() { return Value::set({}); }
inline Value emptySeq() { return Value::seq({}); }

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_PROTOCOLUTIL_H
