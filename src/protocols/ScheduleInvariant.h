//===- protocols/ScheduleInvariant.h - Schedule-derived invariants -*- C++ -*-===//
///
/// \file
/// The paper observes (§5.2) that "the main creative task is the invention
/// of the sequentialization, while all required proof artifacts are derived
/// from it. In particular, the invariant action I and the choice function f
/// are determined from partial sequential executions." This header turns
/// that observation into a library facility: given a *rank function* that
/// fixes the sequential scheduling priority of pending asyncs, it derives
///
///  - the invariant action I whose transition relation consists of every
///    prefix of the fixed-priority sequential schedule (a tree when the
///    protocol branches nondeterministically, e.g. Paxos message drops),
///    rooted at M's own transitions — which makes the base case (I1) hold
///    by construction; and
///  - the matching choice function f selecting the minimum-rank created PA.
///
/// Protocols still supply the genuinely creative artifacts: the rank
/// function (the sequentialization idea), the left-mover abstractions α,
/// and the well-founded measure ≫.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_SCHEDULEINVARIANT_H
#define ISQ_PROTOCOLS_SCHEDULEINVARIANT_H

#include "is/ISApplication.h"
#include "semantics/Program.h"

#include <functional>
#include <optional>
#include <vector>

namespace isq {
namespace protocols {

/// Scheduling priority: lexicographically smaller ranks execute first.
/// PAs with no rank (std::nullopt) are not scheduled by the
/// sequentialization (they are left pending, e.g. actions outside E).
using RankFn =
    std::function<std::optional<std::vector<int64_t>>(const PendingAsync &)>;

/// Derives the invariant action: τI(g, args) enumerates, for every node of
/// the fixed-priority schedule tree rooted at P(M)'s transitions from
/// (g, args), the transition (node store, node pending PAs). Scheduling
/// repeatedly executes the minimum-rank pending PA (enumerating all of its
/// transitions) until no ranked PA remains. Gates of scheduled PAs must
/// hold along the schedule (asserted). Results are memoized per (g, args).
Action makeScheduleInvariant(const std::string &Name, const Program &P,
                             Symbol M, RankFn Rank,
                             size_t MaxNodes = 200000);

/// The matching choice function: among a transition's created PAs, select
/// the ranked one with the smallest rank.
ChoiceFn chooseMinRank(RankFn Rank);

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_SCHEDULEINVARIANT_H
