//===- protocols/PingPong.cpp - Ping-Pong protocol (§5.3) ------------------------===//

#include "protocols/PingPong.h"

#include "protocols/ProtocolUtil.h"
#include "protocols/ScheduleInvariant.h"

using namespace isq;
using namespace isq::protocols;

namespace {

const char *VarT = "T";
const char *VarChPing = "chPing"; ///< acknowledgments Pong -> Ping
const char *VarChPong = "chPong"; ///< numbers Ping -> Pong
const char *VarPingAcked = "pingAcked";
const char *VarPongSeen = "pongSeen";

int64_t rounds(const Store &G) { return G.get(VarT).getInt(); }

/// True iff every message in \p Channel equals \p Expected.
bool allMessagesEqual(const Value &Channel, int64_t Expected) {
  for (const auto &[Msg, Count] : Channel.bagEntries()) {
    (void)Count;
    if (Msg.getInt() != Expected)
      return false;
  }
  return true;
}

Action makeMain() {
  return Action("Main", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  Transition T(G);
                  T.Created.emplace_back("Ping", args({1}));
                  T.Created.emplace_back("Pong", args({1}));
                  return std::vector<Transition>{std::move(T)};
                });
}

/// Ping(k): for k > 1 receive (and check) the acknowledgment of k-1; for
/// k <= T send k and continue with Ping(k+1). Ping(T+1) only receives the
/// final acknowledgment.
Action makePing() {
  return Action(
      "Ping", 1,
      [](const GateContext &Ctx) {
        int64_t K = Ctx.Args[0].getInt();
        // Assertion: acknowledgments are correct (equal to k-1).
        return K == 1 ||
               allMessagesEqual(Ctx.Global.get(VarChPing), K - 1);
      },
      [](const Store &G, const std::vector<Value> &Args) {
        int64_t K = Args[0].getInt();
        int64_t T = rounds(G);
        auto SendAndContinue = [&](Store NG) {
          Transition Tr(NG.set(VarChPong,
                               NG.get(VarChPong).bagInsert(intV(K))));
          Tr.Created.emplace_back("Ping", args({K + 1}));
          return Tr;
        };
        std::vector<Transition> Out;
        if (K == 1) {
          Out.push_back(SendAndContinue(G));
          return Out;
        }
        // Blocking receive of one acknowledgment.
        const Value &Acks = G.get(VarChPing);
        for (const auto &[Msg, Count] : Acks.bagEntries()) {
          (void)Count;
          Store NG = G.set(VarChPing, Acks.bagErase(Msg))
                         .set(VarPingAcked, intV(K - 1));
          if (K <= T)
            Out.push_back(SendAndContinue(NG));
          else
            Out.emplace_back(std::move(NG));
        }
        return Out;
      });
}

/// Pong(k): receive (and check) number k, acknowledge it, continue while
/// k < T. The \p AckOffset parameterizes the buggy variant.
Action makePong(int64_t AckOffset) {
  return Action(
      "Pong", 1,
      [](const GateContext &Ctx) {
        int64_t K = Ctx.Args[0].getInt();
        // Assertion: Pong receives increasing numbers (the next is k).
        return allMessagesEqual(Ctx.Global.get(VarChPong), K);
      },
      [AckOffset](const Store &G, const std::vector<Value> &Args) {
        int64_t K = Args[0].getInt();
        int64_t T = rounds(G);
        std::vector<Transition> Out;
        const Value &Msgs = G.get(VarChPong);
        for (const auto &[Msg, Count] : Msgs.bagEntries()) {
          (void)Count;
          Store NG =
              G.set(VarChPong, Msgs.bagErase(Msg))
                  .set(VarPongSeen, intV(K))
                  .set(VarChPing,
                       G.get(VarChPing).bagInsert(intV(K + AckOffset)));
          Transition Tr(std::move(NG));
          if (K < T)
            Tr.Created.emplace_back("Pong", args({K + 1}));
          Out.push_back(std::move(Tr));
        }
        return Out;
      });
}

/// The sequentialization order: Ping(1) < Pong(1) < Ping(2) < ...
std::optional<std::vector<int64_t>> rankOf(const PendingAsync &PA) {
  int64_t K = PA.Args[0].getInt();
  if (PA.Action == Symbol::get("Ping"))
    return std::vector<int64_t>{2 * K};
  if (PA.Action == Symbol::get("Pong"))
    return std::vector<int64_t>{2 * K + 1};
  return std::nullopt;
}

} // namespace

Program protocols::makePingPongProgram(const PingPongParams &) {
  Program P;
  P.addAction(makeMain());
  P.addAction(makePing());
  P.addAction(makePong(/*AckOffset=*/0));
  return P;
}

Program protocols::makeBuggyPingPongProgram(const PingPongParams &) {
  Program P;
  P.addAction(makeMain());
  P.addAction(makePing());
  P.addAction(makePong(/*AckOffset=*/1));
  return P;
}

Store protocols::makePingPongInitialStore(const PingPongParams &Params) {
  return Store::make({{Symbol::get(VarT), intV(Params.NumRounds)},
                      {Symbol::get(VarChPing), emptyBag()},
                      {Symbol::get(VarChPong), emptyBag()},
                      {Symbol::get(VarPingAcked), intV(0)},
                      {Symbol::get(VarPongSeen), intV(0)}});
}

ISApplication protocols::makePingPongIS(const PingPongParams &Params) {
  ISApplication App;
  App.P = makePingPongProgram(Params);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Ping"), Symbol::get("Pong")};
  App.Invariant =
      makeScheduleInvariant("PingPongInv", App.P, App.M, rankOf);
  App.Choice = chooseMinRank(rankOf);

  // Left-mover abstractions: strengthen the receive gates with channel
  // non-emptiness, which holds in the sequential context and makes the
  // actions non-blocking.
  App.Abstractions.emplace(
      Symbol::get("Ping"),
      Action("PingAbs", 1,
             [](const GateContext &Ctx) {
               int64_t K = Ctx.Args[0].getInt();
               const Value &Acks = Ctx.Global.get(VarChPing);
               if (K > 1 && Acks.bagSize() < 1)
                 return false;
               return K == 1 || allMessagesEqual(Acks, K - 1);
             },
             [P = App.P](const Store &G, const std::vector<Value> &Args) {
               return P.action("Ping").transitions(G, Args);
             }));
  App.Abstractions.emplace(
      Symbol::get("Pong"),
      Action("PongAbs", 1,
             [](const GateContext &Ctx) {
               int64_t K = Ctx.Args[0].getInt();
               const Value &Msgs = Ctx.Global.get(VarChPong);
               return Msgs.bagSize() >= 1 && allMessagesEqual(Msgs, K);
             },
             [P = App.P](const Store &G, const std::vector<Value> &Args) {
               return P.action("Pong").transitions(G, Args);
             }));

  // Remaining-work measure: Ping(k)/Pong(k) weigh by how much of the
  // alternation is still ahead of them; every step strictly decreases.
  int64_t T = Params.NumRounds;
  App.WfMeasure = Measure(
      "Σ remaining-work", [T](const Configuration &C) {
        if (C.isFailure())
          return std::vector<uint64_t>{0};
        uint64_t Total = 0;
        for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
          int64_t K = PA.Args.empty() ? 0 : PA.Args[0].getInt();
          uint64_t W = 0;
          if (PA.Action == Symbol::get("Ping"))
            W = static_cast<uint64_t>(2 * (T + 2) - 2 * K);
          else if (PA.Action == Symbol::get("Pong"))
            W = static_cast<uint64_t>(2 * (T + 2) - 2 * K - 1);
          Total += W * Count;
        }
        return std::vector<uint64_t>{Total};
      });
  return App;
}

bool protocols::checkPingPongSpec(const Store &Final,
                                  const PingPongParams &Params) {
  return Final.get(VarPingAcked).getInt() == Params.NumRounds &&
         Final.get(VarPongSeen).getInt() == Params.NumRounds &&
         Final.get(VarChPing).bagSize() == 0 &&
         Final.get(VarChPong).bagSize() == 0;
}
