//===- protocols/Broadcast.h - Broadcast consensus (Fig. 1) -------*- C++ -*-===//
///
/// \file
/// The paper's running example (Fig. 1): n nodes broadcast their input
/// values over bag channels and each node decides the maximum of the n
/// values it receives. The correctness property is agreement:
/// ∀ i, j. decision[i] = decision[j] (property (1) of §2).
///
/// Provided artifacts:
///  - the atomic-action program of Fig. 1-② (Main, Broadcast, Collect);
///  - the one-shot IS application of Example 4.1 with invariant Inv
///    (Fig. 1-⑤), abstraction CollectAbs (Fig. 1-④), the smallest-index
///    choice function, and the |Ω| measure;
///  - the iterated two-stage proof of §5.3 (first eliminate Broadcast,
///    then Collect, where CollectAbs no longer needs the
///    no-pending-Broadcast gate);
///  - the sequential specification Main' of Fig. 1-③ and the agreement
///    spec predicate.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_PROTOCOLS_BROADCAST_H
#define ISQ_PROTOCOLS_BROADCAST_H

#include "is/ISApplication.h"
#include "semantics/Program.h"

#include <vector>

namespace isq {
namespace protocols {

/// Instance parameters: nodes 1..NumNodes with input Values[i-1].
struct BroadcastParams {
  int64_t NumNodes = 3;
  std::vector<int64_t> Values; ///< size NumNodes; defaults to i when empty

  int64_t value(int64_t Node) const {
    return Values.empty() ? Node : Values[static_cast<size_t>(Node - 1)];
  }
};

/// The program of Fig. 1-②: Main, Broadcast(i), Collect(i).
Program makeBroadcastProgram(const BroadcastParams &Params);

/// Initial store: value map, undecided decisions, empty channels.
Store makeBroadcastInitialStore(const BroadcastParams &Params);

/// The one-shot IS application of Example 4.1:
/// M = Main, E = {Broadcast, Collect}, I = Inv (Fig. 1-⑤),
/// α(Collect) = CollectAbs (Fig. 1-④), ≫ = |Ω|.
ISApplication makeBroadcastIS(const BroadcastParams &Params);

/// Stage 1 of the iterated proof of §5.3: E = {Broadcast} only.
ISApplication makeBroadcastStage1IS(const BroadcastParams &Params);

/// Stage 2: applied to applyIS(stage 1); E = {Collect}, with an
/// abstraction that only needs the channel-fullness gate (the
/// no-pending-Broadcast conjunct of Fig. 1-④ line 33 is unnecessary
/// because Broadcast is already eliminated).
ISApplication makeBroadcastStage2IS(const BroadcastParams &Params,
                                    const Program &AfterStage1);

/// The explicit sequential summary Main' of Fig. 1-③ (equivalent to the
/// derived M'; used to cross-check condition (I2)).
Action makeBroadcastSeqSpec(const BroadcastParams &Params);

/// Property (1): every node decided, and all decisions equal the maximum
/// input value.
bool checkBroadcastSpec(const Store &Final, const BroadcastParams &Params);

} // namespace protocols
} // namespace isq

#endif // ISQ_PROTOCOLS_BROADCAST_H
