//===- protocols/ProducerConsumer.cpp - Producer-Consumer (§5.3) ------------------===//

#include "protocols/ProducerConsumer.h"

#include "protocols/ProtocolUtil.h"
#include "protocols/ScheduleInvariant.h"

#include <algorithm>

using namespace isq;
using namespace isq::protocols;

namespace {

const char *VarT = "T";
const char *VarQueue = "queue";
const char *VarProduced = "produced";
const char *VarConsumed = "consumed";

Action makeMain() {
  return Action("Main", 0, Action::alwaysEnabled(),
                [](const Store &G, const std::vector<Value> &) {
                  Transition T(G);
                  T.Created.emplace_back("Producer", args({1}));
                  T.Created.emplace_back("Consumer", args({1}));
                  return std::vector<Transition>{std::move(T)};
                });
}

/// Producer(k): enqueue k; continue while k < T. Never blocks — this is
/// what lets the producer run arbitrarily far ahead of the consumer.
Action makeProducer() {
  return Action(
      "Producer", 1, Action::alwaysEnabled(),
      [](const Store &G, const std::vector<Value> &Args) {
        int64_t K = Args[0].getInt();
        Store NG = G.set(VarQueue, G.get(VarQueue).seqPushBack(intV(K)))
                       .set(VarProduced, intV(K));
        Transition T(std::move(NG));
        if (K < G.get(VarT).getInt())
          T.Created.emplace_back("Producer", args({K + 1}));
        return std::vector<Transition>{std::move(T)};
      });
}

/// Shared transition relation of Consumer and its abstraction: dequeue the
/// front element (blocking on an empty queue).
std::vector<Transition> consumerTransitions(const Store &G,
                                            const std::vector<Value> &Args) {
  int64_t K = Args[0].getInt();
  std::vector<Transition> Out;
  const Value &Q = G.get(VarQueue);
  if (Q.seqSize() == 0)
    return Out;
  Store NG = G.set(VarQueue, Q.seqPopFront()).set(VarConsumed, intV(K));
  Transition T(std::move(NG));
  if (K < G.get(VarT).getInt())
    T.Created.emplace_back("Consumer", args({K + 1}));
  Out.push_back(std::move(T));
  return Out;
}

/// Consumer(k): the gate asserts the FIFO order (front element, when
/// present, is exactly k).
Action makeConsumer() {
  return Action(
      "Consumer", 1,
      [](const GateContext &Ctx) {
        const Value &Q = Ctx.Global.get(VarQueue);
        return Q.seqSize() == 0 ||
               Q.seqFront().getInt() == Ctx.Args[0].getInt();
      },
      consumerTransitions);
}

std::optional<std::vector<int64_t>> rankOf(const PendingAsync &PA) {
  int64_t K = PA.Args[0].getInt();
  if (PA.Action == Symbol::get("Producer"))
    return std::vector<int64_t>{2 * K};
  if (PA.Action == Symbol::get("Consumer"))
    return std::vector<int64_t>{2 * K + 1};
  return std::nullopt;
}

} // namespace

Program
protocols::makeProducerConsumerProgram(const ProducerConsumerParams &) {
  Program P;
  P.addAction(makeMain());
  P.addAction(makeProducer());
  P.addAction(makeConsumer());
  return P;
}

Store protocols::makeProducerConsumerInitialStore(
    const ProducerConsumerParams &Params) {
  return Store::make({{Symbol::get(VarT), intV(Params.NumItems)},
                      {Symbol::get(VarQueue), emptySeq()},
                      {Symbol::get(VarProduced), intV(0)},
                      {Symbol::get(VarConsumed), intV(0)}});
}

ISApplication
protocols::makeProducerConsumerIS(const ProducerConsumerParams &Params) {
  ISApplication App;
  App.P = makeProducerConsumerProgram(Params);
  App.M = Program::mainSymbol();
  App.E = {Symbol::get("Producer"), Symbol::get("Consumer")};
  App.Invariant =
      makeScheduleInvariant("ProducerConsumerInv", App.P, App.M, rankOf);
  App.Choice = chooseMinRank(rankOf);

  // Producer is a left mover as-is: push-back commutes to the left of
  // pop-front on the queues reachable here. Only Consumer needs an
  // abstraction (non-blocking: the queue is non-empty with k in front in
  // the sequential context).
  App.Abstractions.emplace(
      Symbol::get("Consumer"),
      Action("ConsumerAbs", 1,
             [](const GateContext &Ctx) {
               const Value &Q = Ctx.Global.get(VarQueue);
               return Q.seqSize() >= 1 &&
                      Q.seqFront().getInt() == Ctx.Args[0].getInt();
             },
             consumerTransitions));

  int64_t T = Params.NumItems;
  App.WfMeasure =
      Measure("Σ remaining-work", [T](const Configuration &C) {
        if (C.isFailure())
          return std::vector<uint64_t>{0};
        uint64_t Total = 0;
        for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
          int64_t K = PA.Args.empty() ? 0 : PA.Args[0].getInt();
          uint64_t W = 0;
          if (PA.Action == Symbol::get("Producer"))
            W = static_cast<uint64_t>(2 * (T + 1) - 2 * K);
          else if (PA.Action == Symbol::get("Consumer"))
            W = static_cast<uint64_t>(2 * (T + 1) - 2 * K - 1);
          Total += W * Count;
        }
        return std::vector<uint64_t>{Total};
      });
  return App;
}

bool protocols::checkProducerConsumerSpec(
    const Store &Final, const ProducerConsumerParams &Params) {
  return Final.get(VarProduced).getInt() == Params.NumItems &&
         Final.get(VarConsumed).getInt() == Params.NumItems &&
         Final.get(VarQueue).seqSize() == 0;
}

uint64_t protocols::maxQueueLength(const std::vector<Store> &Stores) {
  uint64_t Max = 0;
  for (const Store &S : Stores)
    Max = std::max(Max, S.get(VarQueue).seqSize());
  return Max;
}
