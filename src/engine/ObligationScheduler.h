//===- engine/ObligationScheduler.h - Parallel obligation checking -*- C++ -*-===//
///
/// \file
/// The obligation scheduler: the parallel execution substrate for every
/// checker pass (IS conditions, mover checks, refinement, cooperation).
/// Checker passes enumerate their work as *jobs* — closures tagged with a
/// condition that emit ordered *obligation units* into a sink — and the
/// scheduler runs the jobs on a worker pool sharing the driver's thread
/// budget, then folds the units back together in canonical submission
/// order. Verdicts, obligation counts and counterexample diagnostics are
/// bit-identical for any thread count (the same determinism contract as
/// the frontier merge in engine/StateGraph.h).
///
/// Determinism under deduplication. The serial checker loops deduplicate
/// obligations whose outcome only depends on a store point (e.g. the
/// commutation checks of the mover engine) by consuming a key at the
/// first *gate-passing* occurrence in universe order. Whether a key is
/// consumed at an occurrence can depend on that occurrence's Ω, so the
/// consuming occurrence cannot be precomputed without evaluating gates —
/// the very work we want to parallelize. The scheduler instead runs
/// *speculative dedup with ordered reconciliation*: each job processes a
/// contiguous slice of the universe with a job-local dedup set, emitting
/// one unit per consumed key; the serial reconciliation then replays all
/// units in (job submission, within-job emission) order against a
/// group-wide dedup set and discards units whose key was already
/// consumed. Because job slices are contiguous and ordered, the surviving
/// unit for every key is exactly the one the serial loop would have
/// produced — at the cost of some duplicated (discarded) work when a key
/// spans slices.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_OBLIGATIONSCHEDULER_H
#define ISQ_ENGINE_OBLIGATIONSCHEDULER_H

#include "engine/EngineConfig.h"
#include "semantics/Fingerprint.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace isq {

class CheckResult; // refine/Refinement.h

namespace engine {

class ObligationCache;

/// The verification condition an obligation belongs to. Mirrors the
/// per-condition decomposition of ISCheckReport plus the program-level
/// cross-check; used to attribute counts and wall time per condition.
enum class ObCondition : uint8_t {
  SideConditions,
  AbstractionRefinement,
  BaseCase,      ///< (I1)
  Conclusion,    ///< (I2)
  InductiveStep, ///< (I3)
  LeftMovers,    ///< (LM)
  Cooperation,   ///< (CO)
  CrossCheck,    ///< empirical P ≼ P'
};
constexpr size_t NumObConditions = 8;

/// Stable machine name ("side_conditions", "base_case", ...).
const char *obConditionName(ObCondition C);
/// Human-readable report label ("side conditions", "(I1) base case", ...).
const char *obConditionLabel(ObCondition C);

/// Dedup key of an obligation unit: a small tag naming the dedup namespace
/// within the group (e.g. forward-preservation vs commutation) plus up to
/// three 64-bit *content* fingerprints identifying the store point.
/// Content — not interned handles — because units recorded by the
/// obligation cache in one run are replayed through reconciliation in
/// another: a cached unit and a freshly emitted one must dedup against
/// each other exactly when they denote the same semantic point, which
/// interning-order-dependent handles cannot guarantee across processes.
/// Keyless units are always applied by the reconciliation.
struct ObKey {
  static constexpr uint32_t NoDedup = UINT32_MAX;
  uint32_t Tag = NoDedup;
  uint64_t A = 0;
  uint64_t B = 0;
  uint64_t C = 0;

  bool keyless() const { return Tag == NoDedup; }
  bool operator==(const ObKey &O) const {
    return Tag == O.Tag && A == O.A && B == O.B && C == O.C;
  }
};

/// One reconciliation-atomic group of obligations: every obligation that
/// shares one dedup decision (or a keyless singleton). Jobs emit units in
/// the exact order the serial checker loop evaluates them.
struct ObUnit {
  /// Cap on diagnostics carried per unit. Equals CheckResult::MaxIssues
  /// (statically asserted in the .cpp): the reconciliation retains at
  /// most that many per channel, so carrying more would be waste.
  static constexpr size_t MaxIssues = 8;

  ObKey Key;
  /// Which result channel of the group this unit folds into (checker
  /// passes whose loop feeds several conditions — e.g. (I3) also
  /// discharging choice-function side conditions — use one channel per
  /// condition).
  uint8_t Channel = 0;
  uint32_t Obligations = 0;
  uint32_t Failures = 0;
  /// Diagnostics for the failures, capped at MaxIssues.
  std::vector<std::string> Issues;
};

/// The sink a job emits its units into. Not thread-safe; each job owns its
/// sink for the duration of the call.
class ObSink {
public:
  /// Opens a unit. Units are reconciliation-atomic: either every
  /// obligation recorded until the next begin() counts, or none does.
  void begin(ObKey Key = ObKey(), uint8_t Channel = 0) {
    Units.push_back({Key, Channel, 0, 0, {}});
  }
  /// Records one evaluated obligation in the current unit.
  void countObligation() {
    ensureOpen();
    ++Units.back().Obligations;
  }
  /// Records a failed obligation with a diagnostic.
  void fail(std::string Message) {
    ensureOpen();
    ObUnit &U = Units.back();
    ++U.Failures;
    if (U.Issues.size() < ObUnit::MaxIssues)
      U.Issues.push_back(std::move(Message));
  }

private:
  friend class ObligationScheduler;
  void ensureOpen() {
    if (Units.empty())
      Units.push_back({});
  }
  std::vector<ObUnit> Units;
};

/// Per-condition and aggregate observability of one scheduler run (or of
/// several runs accumulated by the driver).
struct ObligationStats {
  struct Bucket {
    size_t Jobs = 0;
    size_t Units = 0;
    /// Units discarded by the dedup reconciliation (speculative work).
    size_t UnitsDeduped = 0;
    size_t Obligations = 0;
    size_t Failures = 0;
    /// Orbit accounting under symmetry reduction: the condition's
    /// quantifier universe in orbit representatives, and the number of
    /// unreduced configurations those representatives stand for (Σ orbit
    /// sizes). Equal when no reduction applies; both zero when the checker
    /// did not annotate the condition.
    uint64_t OrbitConfigs = 0;
    uint64_t OrbitStates = 0;
    /// Summed per-job wall time (CPU-side cost of the condition).
    double JobSeconds = 0;
  };
  Bucket PerCondition[NumObConditions];
  /// Verdict-cache accounting, obligation-weighted: every obligation a
  /// keyed job would have evaluated counts as a hit (replayed from the
  /// cache) or a miss (evaluated, then recorded). Weighed *before* dedup
  /// reconciliation — the cache works at job granularity, so speculative
  /// units replay like everything else. Zero when no cache is attached.
  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    /// Subset of Hits served by first-touch decodes from the disk tier.
    uint64_t DiskHits = 0;
    bool Enabled = false;
  };
  CacheStats Cache;
  /// Wall-clock of the scheduler run()s (all conditions together).
  double WallSeconds = 0;
  unsigned Threads = 1;

  Bucket totals() const;
  /// Merges \p Other into this (sums counters, maxes threads).
  void accumulate(const ObligationStats &Other);
  /// One-line human-readable rendering.
  std::string str() const;
};

/// The scheduler. Typical use:
///
///   ObligationScheduler Sched(Threads);
///   auto *G = Sched.group(ObCondition::LeftMovers);
///   for (slice : universeSlices)
///     Sched.add(G, [=](ObSink &S) { ... emit units for slice ... });
///   ... more groups ...
///   Sched.run();
///   CheckResult R = Sched.result(G);
///
/// Jobs across all groups share one pool; groups reconcile independently.
/// run() may be called once per scheduler instance.
class ObligationScheduler {
public:
  /// A group: an ordered sequence of jobs sharing one dedup namespace and
  /// folding into per-channel CheckResults under one condition each.
  class Group;

  /// Takes its thread budget from \p Config.NumThreads (0 is treated as
  /// 1). Jobs run inline (no threads spawned) when the effective thread
  /// count is 1.
  explicit ObligationScheduler(const EngineConfig &Config);
  ~ObligationScheduler();
  ObligationScheduler(const ObligationScheduler &) = delete;
  ObligationScheduler &operator=(const ObligationScheduler &) = delete;

  /// Creates a group whose channel \p Channel folds under \p Conditions[Channel].
  /// Most groups have the single channel 0.
  Group *group(std::vector<ObCondition> Conditions);
  Group *group(ObCondition Condition) {
    return group(std::vector<ObCondition>{Condition});
  }

  /// Appends a job to \p G. Jobs must be safe to run concurrently with
  /// every other submitted job (shared arenas/caches are; job-local state
  /// must not be shared).
  void add(Group *G, std::function<void(ObSink &)> Job);

  /// Appends a cacheable job: \p KeyFn computes the job's content
  /// fingerprint — a pure function of every input the job's obligations
  /// depend on (see semantics/Fingerprint.h). When a cache is attached,
  /// the scheduler evaluates KeyFn on the worker (fingerprinting
  /// parallelizes with everything else), probes the cache, and on a hit
  /// replays the recorded unit sequence instead of running \p Job; on a
  /// miss it runs \p Job and records the emitted units. Without a cache,
  /// KeyFn is never called.
  void add(Group *G, std::function<Fingerprint()> KeyFn,
           std::function<void(ObSink &)> Job);

  /// Attaches the verdict cache consulted by run(). Must precede run();
  /// the cache must outlive the scheduler. Null detaches.
  void setCache(ObligationCache *C) { Cache = C; }

  /// Runs every submitted job on the pool, then reconciles each group.
  void run();

  /// Annotates \p Condition's bucket with its quantifier universe under
  /// symmetry reduction: \p Reps orbit representatives standing for
  /// \p States unreduced configurations. Purely observational (stats
  /// only); may be called before or after run().
  void noteOrbits(ObCondition Condition, uint64_t Reps, uint64_t States);

  /// After run(): the merged result of \p G's channel \p Channel.
  const CheckResult &result(const Group *G, uint8_t Channel = 0) const;

  /// After run(): counts, failures and timings per condition.
  const ObligationStats &stats() const { return Stats; }

  unsigned threads() const { return Threads; }

private:
  struct JobSlot;
  void reconcile(Group &G);

  unsigned Threads;
  std::deque<Group> Groups;
  std::vector<JobSlot> Jobs;
  ObligationStats Stats;
  ObligationCache *Cache = nullptr;
  bool Ran = false;
};

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_OBLIGATIONSCHEDULER_H
