//===- engine/EngineConfig.cpp - Unified engine configuration -----------------===//

#include "engine/EngineConfig.h"

#include <charconv>

using namespace isq;
using namespace isq::engine;

namespace {

bool parseUnsigned(const std::string &S, unsigned &Out) {
  const char *First = S.data();
  const char *Last = S.data() + S.size();
  auto [Ptr, Ec] = std::from_chars(First, Last, Out);
  return Ec == std::errc() && Ptr == Last && !S.empty();
}

bool parseBool(const std::string &S, bool &Out) {
  if (S == "true" || S == "on" || S == "1") {
    Out = true;
    return true;
  }
  if (S == "false" || S == "off" || S == "0") {
    Out = false;
    return true;
  }
  return false;
}

bool isPowerOfTwo(unsigned N) { return N != 0 && (N & (N - 1)) == 0; }

/// Parses a byte count with an optional K/M/G (binary) suffix:
/// "64M" → 64 MiB, "1073741824" → 1 GiB.
bool parseByteSize(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  std::string Digits = S;
  uint64_t Scale = 1;
  switch (S.back()) {
  case 'K':
  case 'k':
    Scale = 1024ULL;
    Digits.pop_back();
    break;
  case 'M':
  case 'm':
    Scale = 1024ULL * 1024;
    Digits.pop_back();
    break;
  case 'G':
  case 'g':
    Scale = 1024ULL * 1024 * 1024;
    Digits.pop_back();
    break;
  default:
    break;
  }
  if (Digits.empty())
    return false;
  uint64_t N = 0;
  const char *First = Digits.data();
  const char *Last = Digits.data() + Digits.size();
  auto [Ptr, Ec] = std::from_chars(First, Last, N);
  if (Ec != std::errc() || Ptr != Last)
    return false;
  if (Scale != 1 && N > UINT64_MAX / Scale)
    return false;
  Out = N * Scale;
  return true;
}

} // namespace

bool EngineConfig::set(const std::string &Key, const std::string &Value,
                       std::string &Error) {
  if (Key == "threads") {
    unsigned N = 0;
    if (!parseUnsigned(Value, N) || N < 1) {
      Error = "engine option 'threads' expects a positive integer, got '" +
              Value + "'";
      return false;
    }
    NumThreads = N;
    return true;
  }
  if (Key == "steal-chunk") {
    unsigned N = 0;
    if (!parseUnsigned(Value, N) || N < 1) {
      Error = "engine option 'steal-chunk' expects a positive integer, "
              "got '" +
              Value + "'";
      return false;
    }
    StealChunk = N;
    return true;
  }
  if (Key == "shards") {
    unsigned N = 0;
    if (!parseUnsigned(Value, N) || !isPowerOfTwo(N) || N > MaxShards) {
      Error = "engine option 'shards' expects a power of two in [1, " +
              std::to_string(MaxShards) + "], got '" + Value + "'";
      return false;
    }
    Shards = N;
    return true;
  }
  if (Key == "cache-dir") {
    if (Value.empty()) {
      Error = "engine option 'cache-dir' expects a directory path";
      return false;
    }
    CacheDir = Value;
    return true;
  }
  if (Key == "spill-dir") {
    if (Value.empty()) {
      Error = "engine option 'spill-dir' expects a directory path";
      return false;
    }
    SpillDir = Value;
    return true;
  }
  if (Key == "mem-budget") {
    uint64_t N = 0;
    if (!parseByteSize(Value, N) || N == 0) {
      Error = "engine option 'mem-budget' expects a positive byte count "
              "with an optional K/M/G suffix, got '" +
              Value + "'";
      return false;
    }
    MemBudget = N;
    return true;
  }
  bool *Flag = nullptr;
  if (Key == "parallel-check")
    Flag = &ParallelCheck;
  else if (Key == "symmetry")
    Flag = &Symmetry;
  else if (Key == "work-stealing")
    Flag = &WorkStealing;
  else if (Key == "compress")
    Flag = &Compress;
  else if (Key == "incremental")
    Flag = &Incremental;
  else if (Key == "spill")
    Flag = &Spill;
  if (Flag) {
    bool B = false;
    if (!parseBool(Value, B)) {
      Error = "engine option '" + Key +
              "' expects a boolean (true/false/on/off/1/0), got '" + Value +
              "'";
      return false;
    }
    *Flag = B;
    return true;
  }
  Error = "unknown engine option '" + Key +
          "' (valid: threads, parallel-check, symmetry, work-stealing, "
          "steal-chunk, shards, compress, incremental, cache-dir, spill, "
          "spill-dir, mem-budget)";
  return false;
}

bool EngineConfig::validate(std::string &Error) const {
  if (Spill) {
    if (!Compress) {
      Error = "engine option 'spill=true' requires 'compress=true': only "
              "compact encoded blocks can spill to the cold tier";
      return false;
    }
    if (SpillDir.empty()) {
      Error = "engine option 'spill=true' requires 'spill-dir=PATH' for "
              "the cold-tier segment files";
      return false;
    }
    if (MemBudget == 0) {
      Error = "engine option 'spill=true' requires 'mem-budget=BYTES' "
              "(eviction needs a hot-tier budget to enforce)";
      return false;
    }
  } else {
    if (!SpillDir.empty()) {
      Error = "engine option 'spill-dir' has no effect without "
              "'spill=true' (and a 'mem-budget')";
      return false;
    }
    if (MemBudget != 0) {
      Error = "engine option 'mem-budget' has no effect without "
              "'spill=true' (and a 'spill-dir')";
      return false;
    }
  }
  if (!CacheDir.empty() && CacheDir == SpillDir) {
    Error = "engine options 'cache-dir' and 'spill-dir' must name "
            "different directories: the spill dir is per-run scratch and "
            "is cleaned at startup, which would destroy the persistent "
            "obligation cache";
    return false;
  }
  return true;
}

bool EngineConfig::setList(const std::string &Spec, std::string &Error) {
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(Pos, Comma - Pos);
    if (Item.empty()) {
      Error = "empty item in engine option list '" + Spec + "'";
      return false;
    }
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Item.size()) {
      Error = "engine option '" + Item + "' is not of the form KEY=VALUE";
      return false;
    }
    if (!set(Item.substr(0, Eq), Item.substr(Eq + 1), Error))
      return false;
    Pos = Comma + 1;
    if (Comma == Spec.size())
      break;
  }
  return true;
}

std::map<std::string, std::string> EngineConfig::toKeyValues() const {
  const EngineConfig Defaults;
  std::map<std::string, std::string> Out;
  // `threads`, `incremental`, `cache-dir` and the spill knobs are
  // deliberately absent: verdicts are independent of all of them, so
  // they never travel with a request (see serve/VerdictCache.h).
  if (ParallelCheck != Defaults.ParallelCheck)
    Out["parallel-check"] = ParallelCheck ? "true" : "false";
  if (Symmetry != Defaults.Symmetry)
    Out["symmetry"] = Symmetry ? "true" : "false";
  if (WorkStealing != Defaults.WorkStealing)
    Out["work-stealing"] = WorkStealing ? "true" : "false";
  if (StealChunk != Defaults.StealChunk)
    Out["steal-chunk"] = std::to_string(StealChunk);
  if (Shards != Defaults.Shards)
    Out["shards"] = std::to_string(Shards);
  if (Compress != Defaults.Compress)
    Out["compress"] = Compress ? "true" : "false";
  return Out;
}

bool EngineConfig::applyKeyValues(
    const std::map<std::string, std::string> &KeyValues, std::string &Error) {
  for (const auto &[Key, Value] : KeyValues) {
    if (Key == "threads") {
      Error = "engine option 'threads' is not accepted over the wire: the "
              "thread budget is a server tuning knob (--job-threads)";
      return false;
    }
    if (Key == "incremental" || Key == "cache-dir") {
      Error = "engine option '" + Key +
              "' is not accepted over the wire: obligation caching is a "
              "server tuning knob (verdicts are identical either way)";
      return false;
    }
    if (Key == "spill" || Key == "spill-dir" || Key == "mem-budget") {
      Error = "engine option '" + Key +
              "' is not accepted over the wire: spilling is a server "
              "resource knob (--spill-dir/--mem-budget on isq-serve)";
      return false;
    }
    if (!set(Key, Value, Error))
      return false;
  }
  return true;
}

std::string EngineConfig::str() const {
  std::string Out;
  for (const auto &[Key, Value] : toKeyValues()) {
    if (!Out.empty())
      Out += ",";
    Out += Key + "=" + Value;
  }
  const EngineConfig Defaults;
  if (Spill) {
    std::string S = "spill=true,spill-dir=" + SpillDir +
                    ",mem-budget=" + std::to_string(MemBudget);
    Out = Out.empty() ? S : S + "," + Out;
  }
  if (!CacheDir.empty())
    Out = Out.empty() ? "cache-dir=" + CacheDir
                      : "cache-dir=" + CacheDir + "," + Out;
  if (Incremental != Defaults.Incremental)
    Out = Out.empty() ? std::string("incremental=false")
                      : "incremental=false," + Out;
  if (NumThreads != Defaults.NumThreads) {
    std::string T = "threads=" + std::to_string(NumThreads);
    Out = Out.empty() ? T : T + "," + Out;
  }
  return Out.empty() ? "defaults" : Out;
}
