//===- engine/StateGraph.cpp - Parallel frontier exploration -----------------===//
//
// Two scheduling modes produce the same graph bit for bit:
//
//  * Level-synchronous BFS (work-stealing=false, and the differential
//    oracle for the mode below): each level is expanded by a worker pool,
//    then a serial merge folds the level in frontier order.
//
//  * Work-stealing (default): the frontier is cut into chunks of
//    steal-chunk node indices; each chunk copies its ConfigIds out of the
//    merger-private node list at dispatch, is expanded by whichever
//    worker pops or steals it (per-worker deques: owner pops newest,
//    thieves take oldest), and publishes its results through a Done flag.
//    A single merger folds chunks strictly in node-index order — the
//    classical FIFO BFS order — so discovery order, counts, verdicts and
//    diagnostics are independent of which worker expanded what when. The
//    merger dispatches new full chunks as merging appends nodes, flushes
//    a partial chunk only when it has nothing left to merge (so no chunk
//    ever waits on nodes that cannot arrive), and helps expand while the
//    next chunk in merge order is still in flight.
//
// Workers never touch the node list; duplicate-pruning during expansion
// reads a lazily-allocated atomic seen-bitmap that the merger writes
// *after* interning, so the interned set — and every count derived from
// it — stays deterministic even though the pruning itself is racy (a
// missed prune only costs the merger a no-op fold).
//
//===----------------------------------------------------------------------===//

#include "engine/StateGraph.h"

#include "engine/ActionCaches.h"
#include "semantics/Symmetry.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

using namespace isq;
using namespace isq::engine;

namespace isq {
namespace engine {
/// Grants the exploration engine mutable access to StateGraph's results.
struct GraphAccess {
  static std::shared_ptr<StateArena> &arena(StateGraph &G) { return G.Arena; }
  static std::vector<ConfigId> &nodes(StateGraph &G) { return G.Nodes; }
  static std::vector<StateGraph::Link> &links(StateGraph &G) {
    return G.Links;
  }
  static std::optional<std::pair<uint32_t, PaId>> &failureAt(StateGraph &G) {
    return G.FailureAt;
  }
  static std::vector<StoreId> &terminals(StateGraph &G) {
    return G.Terminals;
  }
  static std::vector<uint32_t> &deadlocks(StateGraph &G) {
    return G.Deadlocks;
  }
  static std::vector<uint32_t> &orbitSizes(StateGraph &G) {
    return G.OrbitSizes;
  }
  static EngineStats &stats(StateGraph &G) { return G.Stats; }
};
} // namespace engine
} // namespace isq

static std::string percent(double Fraction) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", 100.0 * Fraction);
  return Buf;
}

void EngineStats::accumulate(const EngineStats &Other) {
  NumConfigurations += Other.NumConfigurations;
  NumTransitions += Other.NumTransitions;
  Truncated = Truncated || Other.Truncated;
  InternedStores = std::max(InternedStores, Other.InternedStores);
  InternedPas = std::max(InternedPas, Other.InternedPas);
  InternedPaSets = std::max(InternedPaSets, Other.InternedPaSets);
  InternedConfigs = std::max(InternedConfigs, Other.InternedConfigs);
  HashConsLookups += Other.HashConsLookups;
  HashConsHits += Other.HashConsHits;
  TransitionCacheLookups += Other.TransitionCacheLookups;
  TransitionCacheHits += Other.TransitionCacheHits;
  SymmetryReduced = SymmetryReduced || Other.SymmetryReduced;
  CanonCalls += Other.CanonCalls;
  CanonCacheHits += Other.CanonCacheHits;
  OrbitStatesRepresented += Other.OrbitStatesRepresented;
  FrontierPeak = std::max(FrontierPeak, Other.FrontierPeak);
  Threads = std::max(Threads, Other.Threads);
  WorkStealing = WorkStealing || Other.WorkStealing;
  StealChunk = std::max(StealChunk, Other.StealChunk);
  Steals += Other.Steals;
  Shards = std::max(Shards, Other.Shards);
  ShardOccupancy = std::max(ShardOccupancy, Other.ShardOccupancy);
  CompressedBytes = std::max(CompressedBytes, Other.CompressedBytes);
  SpillEnabled = SpillEnabled || Other.SpillEnabled;
  MemBudget = std::max(MemBudget, Other.MemBudget);
  BytesHot = std::max(BytesHot, Other.BytesHot);
  BytesCold = std::max(BytesCold, Other.BytesCold);
  BlocksEvicted += Other.BlocksEvicted;
  BlocksFaulted += Other.BlocksFaulted;
  FaultStallNanos += Other.FaultStallNanos;
  ExpandSeconds += Other.ExpandSeconds;
  MergeSeconds += Other.MergeSeconds;
  TotalSeconds += Other.TotalSeconds;
}

std::string EngineStats::str() const {
  std::string Out;
  Out += "configs=" + std::to_string(NumConfigurations);
  Out += " transitions=" + std::to_string(NumTransitions);
  if (Truncated)
    Out += " (truncated)";
  Out += " stores=" + std::to_string(InternedStores);
  Out += " pasets=" + std::to_string(InternedPaSets);
  Out += " hashcons-hit=" + percent(hashConsHitRate());
  Out += " transcache-hit=" + percent(transitionCacheHitRate());
  if (SymmetryReduced) {
    Out += " orbit-states=" + std::to_string(OrbitStatesRepresented);
    Out += " canon-hit=" + percent(canonHitRate());
  }
  Out += " frontier-peak=" + std::to_string(FrontierPeak);
  Out += " threads=" + std::to_string(Threads);
  if (WorkStealing) {
    Out += " steal-chunk=" + std::to_string(StealChunk);
    Out += " steals=" + std::to_string(Steals);
  }
  if (Shards) {
    Out += " shards=" + std::to_string(ShardOccupancy) + "/" +
           std::to_string(Shards);
  }
  if (CompressedBytes)
    Out += " compressed-bytes=" + std::to_string(CompressedBytes);
  Out += " expand=" + formatSeconds(ExpandSeconds) + "s";
  Out += " merge=" + formatSeconds(MergeSeconds) + "s";
  Out += " total=" + formatSeconds(TotalSeconds) + "s";
  return Out;
}

namespace {

/// One ordered successor candidate of a node: the PA executed and the
/// interned child, or Child == InvalidId for a failing step.
struct Item {
  PaId Via;
  ConfigId Child;
  /// Orbit size of Child under the active symmetry (1 when unreduced).
  uint32_t Orbit = 1;
};

/// Everything a worker produces for one frontier node. Candidates are in
/// the exact order the classical FIFO BFS would visit them, which is what
/// makes the serial merge deterministic.
struct NodeOut {
  std::vector<Item> Items;
  uint64_t Transitions = 0;
  bool AnyMove = false;
};

/// A contiguous run of node indices dispatched as one unit of work. The
/// ConfigIds are copied out of the merger-private node list at dispatch
/// time, so expansion never reads shared graph state; results travel back
/// inside the chunk, published by the Done flag (release) and consumed by
/// the merger (acquire).
struct Chunk {
  size_t Begin = 0;
  std::vector<ConfigId> Cids;
  std::vector<NodeOut> Outs;
  std::atomic<bool> Done{false};
};

/// Lazily-allocated atomic bitmap over ConfigIds: the work-stealing
/// engine's racy duplicate filter. Only the merger sets bits (after the
/// node is interned and appended); workers read without synchronization —
/// a stale read is a missed prune, never a wrong result.
class SeenBits {
  static constexpr size_t BlockLog = 16; // bits per block
  static constexpr size_t NumBlocks = size_t(1) << (32 - BlockLog);
  static constexpr size_t WordsPerBlock = (size_t(1) << BlockLog) / 64;

public:
  SeenBits() : Blocks(new std::atomic<std::atomic<uint64_t> *>[NumBlocks]) {
    for (size_t I = 0; I < NumBlocks; ++I)
      Blocks[I].store(nullptr, std::memory_order_relaxed);
  }
  ~SeenBits() {
    for (size_t I = 0; I < NumBlocks; ++I)
      delete[] Blocks[I].load(std::memory_order_relaxed);
  }

  bool test(uint32_t Id) const {
    const std::atomic<uint64_t> *Block =
        Blocks[Id >> BlockLog].load(std::memory_order_acquire);
    if (!Block)
      return false;
    uint64_t Word =
        Block[(Id & ((1u << BlockLog) - 1)) >> 6].load(
            std::memory_order_relaxed);
    return (Word >> (Id & 63)) & 1;
  }

  /// Merger-only.
  void set(uint32_t Id) {
    std::atomic<uint64_t> *Block =
        Blocks[Id >> BlockLog].load(std::memory_order_relaxed);
    if (!Block) {
      Block = new std::atomic<uint64_t>[WordsPerBlock]();
      Blocks[Id >> BlockLog].store(Block, std::memory_order_release);
    }
    Block[(Id & ((1u << BlockLog) - 1)) >> 6].fetch_or(
        uint64_t(1) << (Id & 63), std::memory_order_relaxed);
  }

private:
  std::unique_ptr<std::atomic<std::atomic<uint64_t> *>[]> Blocks;
};

/// The per-run exploration state behind exploreGraph().
struct Engine {
  const Program &P;
  const EngineOptions &Opts;
  StateArena &Arena;

  // Mutable views into the StateGraph under construction.
  std::vector<ConfigId> &Nodes;
  std::vector<StateGraph::Link> &Links;
  std::optional<std::pair<uint32_t, PaId>> &FailureAt;
  std::vector<StoreId> &Terminals;
  std::vector<uint32_t> &Deadlocks;
  std::vector<uint32_t> &OrbitSizes;
  EngineStats &Stats;

  InternedTransitionCache TransCache;
  GateCache Gates;
  /// Symbol → action resolution, hoisted out of the hot loop.
  std::unordered_map<Symbol, const Action *> Resolve;

  /// The active symmetry (null = unreduced run). Trivial groups (singleton
  /// domains) are treated as no symmetry.
  const SymmetrySpec *Sym = nullptr;
  /// Memoizes raw (StoreId, PaSetId) → (canonical ConfigId, orbit size)
  /// without interning the raw configuration, so InternedConfigs counts
  /// orbit representatives only. Sharded: expansion workers canonicalize
  /// concurrently. A racing double-compute is benign — canonicalization is
  /// deterministic, so both racers insert the same entry.
  struct CanonShard {
    std::mutex Mutex;
    std::unordered_map<uint64_t, std::pair<ConfigId, uint32_t>> Map;
  };
  static constexpr size_t NumCanonShards = 16;
  std::array<CanonShard, NumCanonShards> CanonShards;
  std::atomic<uint64_t> CanonCalls{0};
  std::atomic<uint64_t> CanonHits{0};

  /// Stage-1 memo for canonChild: raw StoreId → (canonical StoreId, the
  /// permutation indices that reach it). Configurations compare
  /// store-first, so a raw successor's canonicalization only permutes Ω
  /// under these (usually one) permutations instead of rebuilding |G|
  /// full configurations — and distinct raw stores are far rarer than
  /// distinct (store, Ω) pairs, so this table stays small and hot.
  struct StoreCanonEntry {
    StoreId Canon;
    std::shared_ptr<const std::vector<uint32_t>> MinPerms;
  };
  struct StoreCanonShard {
    std::mutex Mutex;
    std::unordered_map<StoreId, StoreCanonEntry> Map;
  };
  std::array<StoreCanonShard, NumCanonShards> StoreCanonShards;

  /// ConfigId → node index (InvalidId when unexplored). Written only by
  /// the serial merge; level-sync workers read it frozen between levels.
  std::vector<uint32_t> NodeOf;
  std::unordered_set<StoreId> TerminalSeen;
  std::vector<uint32_t> Frontier;
  std::vector<uint32_t> NextFrontier;
  bool Stop = false;

  // Work-stealing state (allocated only when the mode is active).
  bool Ws = false;
  std::unique_ptr<SeenBits> Seen;
  /// BFS depth per node index; derives the level widths (and hence
  /// FrontierPeak) the level-synchronous mode observes directly.
  std::vector<uint32_t> Depths;
  std::vector<size_t> LevelWidths;
  struct WorkerDeque {
    std::mutex M;
    std::deque<Chunk *> D;
  };
  std::vector<std::unique_ptr<WorkerDeque>> Deques;
  std::deque<std::unique_ptr<Chunk>> ChunkList;
  std::mutex IdleM;
  std::condition_variable IdleCv;
  std::atomic<size_t> PendingChunks{0};
  std::atomic<bool> WsStop{false};
  std::atomic<bool> WsError{false};
  std::exception_ptr WorkerError;
  std::mutex ErrorM;
  std::atomic<uint64_t> StealCount{0};
  std::atomic<uint64_t> ExpandNanos{0};

  Engine(const Program &P, const EngineOptions &Opts, StateArena &Arena,
         StateGraph &G)
      : P(P), Opts(Opts), Arena(Arena), Nodes(GraphAccess::nodes(G)),
        Links(GraphAccess::links(G)), FailureAt(GraphAccess::failureAt(G)),
        Terminals(GraphAccess::terminals(G)),
        Deadlocks(GraphAccess::deadlocks(G)),
        OrbitSizes(GraphAccess::orbitSizes(G)),
        Stats(GraphAccess::stats(G)), TransCache(Arena), Gates(Arena) {
    for (Symbol Name : P.actionNames())
      Resolve.emplace(Name, &P.action(Name));
    if (Opts.Config.Symmetry && P.symmetry() &&
        P.symmetry()->numPermutations() > 1)
      Sym = P.symmetry().get();
  }

  /// Canonicalizes the interned raw pair (G, Omega) through the sharded
  /// memo. Runs in worker threads.
  std::pair<ConfigId, uint32_t> canonChild(StoreId G, PaSetId Omega) {
    CanonCalls.fetch_add(1, std::memory_order_relaxed);
    uint64_t Key = (static_cast<uint64_t>(G) << 32) | Omega;
    CanonShard &Shard =
        CanonShards[(Key ^ (Key >> 17)) % NumCanonShards];
    {
      std::lock_guard<std::mutex> Lock(Shard.Mutex);
      auto It = Shard.Map.find(Key);
      if (It != Shard.Map.end()) {
        CanonHits.fetch_add(1, std::memory_order_relaxed);
        return It->second;
      }
    }
    // Compute outside the lock; the canonical image is a pure function of
    // the raw configuration. Stage 1 — the store — is memoized per raw
    // StoreId; stage 2 permutes Ω only under the store-minimizing
    // permutations. The number of Ω images tying for least is the
    // stabilizer order of the canonical configuration, so
    // orbit-stabilizer yields the orbit size as a byproduct.
    StoreCanonEntry SC = canonStore(G);
    const PaMultiset &Om = Arena.paSet(Omega);
    PaMultiset BestOmega;
    uint32_t Ties = 0;
    for (uint32_t I : *SC.MinPerms) {
      PaMultiset Img = I == 0 ? Om : Sym->permuteOmega(Om, Sym->perm(I));
      if (Ties == 0 || Img < BestOmega) {
        BestOmega = std::move(Img);
        Ties = 1;
      } else if (Img == BestOmega) {
        ++Ties;
      }
    }
    uint32_t Orbit =
        static_cast<uint32_t>(Sym->numPermutations()) / Ties;
    ConfigId Cid =
        Arena.internConfig(SC.Canon, Arena.internPaSet(BestOmega));
    std::pair<ConfigId, uint32_t> Entry{Cid, Orbit};
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    return Shard.Map.emplace(Key, Entry).first->second;
  }

  /// Stage-1 lookup for canonChild. Runs in worker threads; a racing
  /// double-compute is benign (canonicalization is deterministic).
  StoreCanonEntry canonStore(StoreId G) {
    StoreCanonShard &Shard = StoreCanonShards[G % NumCanonShards];
    {
      std::lock_guard<std::mutex> Lock(Shard.Mutex);
      auto It = Shard.Map.find(G);
      if (It != Shard.Map.end())
        return It->second;
    }
    auto MinPerms = std::make_shared<std::vector<uint32_t>>();
    Store Canon = Sym->canonicalStore(Arena.store(G), MinPerms.get());
    StoreCanonEntry Entry{Arena.internStore(Canon), std::move(MinPerms)};
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    return Shard.Map.emplace(G, Entry).first->second;
  }

  bool known(ConfigId Cid) const {
    return Cid < NodeOf.size() && NodeOf[Cid] != InvalidId;
  }

  /// Registers \p Cid if new; mirrors the classical BFS add() semantics
  /// (truncation flag set when the cap blocks an insertion). Merger-only.
  void add(ConfigId Cid, uint32_t Parent, PaId Via, uint32_t Orbit = 1) {
    if (known(Cid))
      return;
    if (Nodes.size() >= Opts.MaxConfigurations) {
      Stats.Truncated = true;
      return;
    }
    if (Cid >= NodeOf.size())
      NodeOf.resize(Cid + 1, InvalidId);
    uint32_t Index = static_cast<uint32_t>(Nodes.size());
    NodeOf[Cid] = Index;
    Nodes.push_back(Cid);
    if (Sym) {
      OrbitSizes.push_back(Orbit);
      Stats.OrbitStatesRepresented += Orbit;
    }
    if (Opts.RecordParents)
      Links.push_back({Parent, Via});
    auto [StoreIdOf, PaSetIdOf] = Arena.config(Cid);
    if (PaSetIdOf == Arena.emptyPaSet() &&
        TerminalSeen.insert(StoreIdOf).second)
      Terminals.push_back(StoreIdOf);
    if (Ws) {
      // Publish to the racy duplicate filter only after interning and
      // registration, so the node set stays schedule-independent.
      Seen->set(Cid);
      uint32_t Depth = Parent == UINT32_MAX ? 0 : Depths[Parent] + 1;
      Depths.push_back(Depth);
      if (Depth >= LevelWidths.size())
        LevelWidths.resize(Depth + 1, 0);
      Stats.FrontierPeak = std::max(Stats.FrontierPeak, ++LevelWidths[Depth]);
    } else {
      NextFrontier.push_back(Index);
    }
  }

  /// Expands one node into its ordered successor candidates. Runs in
  /// worker threads; touches only the sharded arena/caches and the racy
  /// (work-stealing) or frozen (level-sync) seen state.
  void expand(ConfigId Cid, NodeOut &Out) {
    auto [StoreIdOf, PaSetIdOf] = Arena.config(Cid);
    const PaCountVec &Entries = Arena.paVec(PaSetIdOf);
    if (Entries.empty())
      return; // terminating configuration
    const PaMultiset &OmegaVal = Arena.paSet(PaSetIdOf);
    const Store &Global = Arena.store(StoreIdOf);
    // Iterate PAs in canonical value order, not PaId order: PaIds depend
    // on interning order (racy under parallel interning), so value order
    // is what makes candidate order — and hence BFS discovery order —
    // identical for every thread count and equal to the classical BFS.
    for (PaId PaIdOf : Arena.paOrder(PaSetIdOf)) {
      const PendingAsync &PA = Arena.pa(PaIdOf);
      const Action &A = *Resolve.at(PA.Action);
      bool GateOk = A.gateReadsOmega()
                        ? A.evalGate(Global, PA.Args, OmegaVal)
                        : Gates.get(A, StoreIdOf, PaIdOf, OmegaVal);
      if (!GateOk) {
        ++Out.Transitions;
        Out.AnyMove = true;
        Out.Items.push_back({PaIdOf, InvalidId});
        continue;
      }
      const std::vector<InternedTransition> &Trans =
          TransCache.get(A, StoreIdOf, PaIdOf);
      if (Trans.empty())
        continue; // blocked
      PaCountVec Rest(Entries);
      paCountVecErase(Rest, PaIdOf);
      for (const InternedTransition &T : Trans) {
        ++Out.Transitions;
        Out.AnyMove = true;
        PaSetId SuccOmega =
            Arena.internPaVec(paCountVecUnion(Rest, T.Created));
        ConfigId Child;
        uint32_t Orbit = 1;
        if (Sym) {
          // Equivariance makes stepping the representative equivalent to
          // stepping any orbit member: intern the canonical image only.
          std::tie(Child, Orbit) = canonChild(T.Global, SuccOmega);
        } else {
          Child = Arena.internConfig(T.Global, SuccOmega);
        }
        // Duplicate pruning happens after interning, so the interned set
        // is identical whether or not the prune hits.
        if (Ws ? Seen->test(Child) : known(Child))
          continue;
        Out.Items.push_back({PaIdOf, Child, Orbit});
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Level-synchronous mode
  //===--------------------------------------------------------------------===//

  /// Expands the whole frontier into \p Outs using the thread budget.
  void expandLevel(std::vector<NodeOut> &Outs) {
    size_t Width = Frontier.size();
    unsigned Workers = static_cast<unsigned>(std::min<size_t>(
        Opts.Config.NumThreads ? Opts.Config.NumThreads : 1, Width));
    if (Workers <= 1) {
      for (size_t I = 0; I < Width; ++I)
        expand(Nodes[Frontier[I]], Outs[I]);
      return;
    }
    std::atomic<size_t> Next{0};
    std::exception_ptr Error;
    std::mutex ErrorMutex;
    auto Work = [&]() {
      try {
        for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
             I < Width; I = Next.fetch_add(1, std::memory_order_relaxed))
          expand(Nodes[Frontier[I]], Outs[I]);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMutex);
        if (!Error)
          Error = std::current_exception();
      }
    };
    std::vector<std::thread> Threads;
    Threads.reserve(Workers - 1);
    for (unsigned I = 0; I + 1 < Workers; ++I)
      Threads.emplace_back(Work);
    Work();
    for (std::thread &T : Threads)
      T.join();
    if (Error)
      std::rethrow_exception(Error);
  }

  /// Folds one node's candidates into the graph. Shared by both modes;
  /// the fold order over nodes — frontier order per level here, global
  /// node-index order under work stealing — is the same total order.
  void foldNode(uint32_t NodeIdx, const NodeOut &Out) {
    Stats.NumTransitions += Out.Transitions;
    for (const Item &It : Out.Items) {
      if (It.Child == InvalidId) { // failing step
        if (!FailureAt)
          FailureAt.emplace(NodeIdx, It.Via);
        if (Opts.StopAtFirstFailure) {
          Stop = true;
          return;
        }
        continue;
      }
      add(It.Child, NodeIdx, It.Via, It.Orbit);
    }
    if (!Out.AnyMove &&
        Arena.config(Nodes[NodeIdx]).second != Arena.emptyPaSet())
      Deadlocks.push_back(NodeIdx);
  }

  /// Serially folds a level's candidates into the graph in deterministic
  /// (frontier position, candidate) order.
  void merge(const std::vector<NodeOut> &Outs) {
    NextFrontier.clear();
    for (size_t I = 0; I < Outs.size(); ++I) {
      foldNode(Frontier[I], Outs[I]);
      if (Stop)
        return;
    }
  }

  void seed(const std::vector<Configuration> &Inits) {
    for (const Configuration &Init : Inits) {
      assert(!Init.isFailure() && "initial configuration cannot be failure");
      if (Sym) {
        uint64_t Orbit = 1;
        Configuration Canon = Sym->canonical(Init, &Orbit);
        CanonCalls.fetch_add(1, std::memory_order_relaxed);
        add(Arena.internConfig(Canon), UINT32_MAX, InvalidId,
            static_cast<uint32_t>(Orbit));
      } else {
        add(Arena.internConfig(Init), UINT32_MAX, InvalidId);
      }
    }
  }

  void runLevelSync(const std::vector<Configuration> &Inits) {
    seed(Inits);
    Frontier.swap(NextFrontier);
    std::vector<NodeOut> Outs;
    while (!Frontier.empty() && !Stop) {
      Stats.FrontierPeak =
          std::max(Stats.FrontierPeak, Frontier.size());
      Outs.assign(Frontier.size(), NodeOut());
      Timer ExpandT;
      expandLevel(Outs);
      Stats.ExpandSeconds += ExpandT.elapsed();
      Timer MergeT;
      merge(Outs);
      Stats.MergeSeconds += MergeT.elapsed();
      Frontier.swap(NextFrontier);
    }
  }

  //===--------------------------------------------------------------------===//
  // Work-stealing mode
  //===--------------------------------------------------------------------===//

  /// Enqueues \p C on the next deque round-robin and wakes a sleeper.
  void pushChunk(Chunk *C, size_t &RoundRobin) {
    WorkerDeque &Q = *Deques[RoundRobin];
    RoundRobin = (RoundRobin + 1) % Deques.size();
    {
      std::lock_guard<std::mutex> Lock(Q.M);
      Q.D.push_back(C);
    }
    PendingChunks.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(IdleM);
    }
    IdleCv.notify_all();
  }

  /// Takes a chunk: the owner pops its own deque's newest entry; anyone
  /// else (including the merger, Self == SIZE_MAX) steals the oldest
  /// entry of another deque. Returns null when every deque is empty.
  Chunk *takeChunk(size_t Self) {
    if (Self != SIZE_MAX) {
      WorkerDeque &Own = *Deques[Self];
      std::lock_guard<std::mutex> Lock(Own.M);
      if (!Own.D.empty()) {
        Chunk *C = Own.D.back();
        Own.D.pop_back();
        PendingChunks.fetch_sub(1, std::memory_order_relaxed);
        return C;
      }
    }
    size_t N = Deques.size();
    size_t Start = Self == SIZE_MAX ? 0 : (Self + 1) % N;
    for (size_t I = 0; I < N; ++I) {
      size_t Victim = (Start + I) % N;
      if (Victim == Self)
        continue;
      WorkerDeque &Q = *Deques[Victim];
      std::lock_guard<std::mutex> Lock(Q.M);
      if (Q.D.empty())
        continue;
      Chunk *C = Q.D.front();
      Q.D.pop_front();
      PendingChunks.fetch_sub(1, std::memory_order_relaxed);
      StealCount.fetch_add(1, std::memory_order_relaxed);
      return C;
    }
    return nullptr;
  }

  void expandChunk(Chunk &C) {
    Timer T;
    for (size_t I = 0; I < C.Cids.size(); ++I)
      expand(C.Cids[I], C.Outs[I]);
    ExpandNanos.fetch_add(static_cast<uint64_t>(T.elapsed() * 1e9),
                          std::memory_order_relaxed);
    C.Done.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> Lock(IdleM);
    }
    IdleCv.notify_all();
  }

  void workerLoop(size_t Self) {
    try {
      while (true) {
        if (Chunk *C = takeChunk(Self)) {
          expandChunk(*C);
          continue;
        }
        std::unique_lock<std::mutex> Lock(IdleM);
        IdleCv.wait(Lock, [&] {
          return WsStop.load(std::memory_order_relaxed) ||
                 PendingChunks.load(std::memory_order_relaxed) > 0;
        });
        if (WsStop.load(std::memory_order_relaxed))
          return;
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> Lock(ErrorM);
        if (!WorkerError)
          WorkerError = std::current_exception();
      }
      WsError.store(true, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> Lock(IdleM);
      }
      IdleCv.notify_all();
    }
  }

  /// Cuts [\p From, \p To) of the node list into one chunk.
  Chunk *makeChunk(size_t From, size_t To) {
    auto C = std::make_unique<Chunk>();
    C->Begin = From;
    C->Cids.assign(Nodes.begin() + From, Nodes.begin() + To);
    C->Outs.resize(To - From);
    ChunkList.push_back(std::move(C));
    return ChunkList.back().get();
  }

  void runWorkStealing(const std::vector<Configuration> &Inits) {
    Ws = true;
    Seen = std::make_unique<SeenBits>();
    unsigned T = Opts.Config.NumThreads ? Opts.Config.NumThreads : 1;
    size_t ChunkSize = Opts.Config.StealChunk ? Opts.Config.StealChunk : 1;
    Deques.resize(std::max(1u, T - 1));
    for (auto &Q : Deques)
      Q = std::make_unique<WorkerDeque>();

    seed(Inits);

    std::vector<std::thread> Pool;
    Pool.reserve(T - 1);
    for (unsigned I = 0; I + 1 < T; ++I)
      Pool.emplace_back([this, I] { workerLoop(I); });

    size_t NextMerge = 0;  // index into ChunkList
    size_t Dispatched = 0; // nodes cut into chunks so far
    size_t RoundRobin = 0;
    std::exception_ptr MergerError;
    try {
      while (!WsError.load(std::memory_order_relaxed)) {
        // Cut full chunks eagerly so workers run ahead of the merger.
        while (Nodes.size() - Dispatched >= ChunkSize) {
          pushChunk(makeChunk(Dispatched, Dispatched + ChunkSize),
                    RoundRobin);
          Dispatched += ChunkSize;
        }
        if (NextMerge == ChunkList.size()) {
          if (Dispatched == Nodes.size())
            break; // every node dispatched, expanded and merged
          // Nothing left to merge, so no more nodes can arrive: flush the
          // partial tail chunk (this is what makes the loop deadlock-free).
          pushChunk(makeChunk(Dispatched, Nodes.size()), RoundRobin);
          Dispatched = Nodes.size();
          continue;
        }
        Chunk &C = *ChunkList[NextMerge];
        if (!C.Done.load(std::memory_order_acquire)) {
          // Help while the next chunk in merge order is in flight.
          if (Chunk *H = takeChunk(SIZE_MAX)) {
            expandChunk(*H);
            continue;
          }
          std::unique_lock<std::mutex> Lock(IdleM);
          IdleCv.wait(Lock, [&] {
            return C.Done.load(std::memory_order_acquire) ||
                   WsError.load(std::memory_order_relaxed) ||
                   PendingChunks.load(std::memory_order_relaxed) > 0;
          });
          continue;
        }
        Timer MergeT;
        for (size_t I = 0; I < C.Cids.size(); ++I)
          foldNode(static_cast<uint32_t>(C.Begin + I), C.Outs[I]);
        Stats.MergeSeconds += MergeT.elapsed();
        // The chunk is folded; release its payload before the run ends.
        C.Cids = {};
        C.Outs = {};
        ++NextMerge;
      }
    } catch (...) {
      MergerError = std::current_exception();
    }

    {
      std::lock_guard<std::mutex> Lock(IdleM);
      WsStop.store(true, std::memory_order_relaxed);
    }
    IdleCv.notify_all();
    for (std::thread &W : Pool)
      W.join();
    if (MergerError)
      std::rethrow_exception(MergerError);
    {
      std::lock_guard<std::mutex> Lock(ErrorM);
      if (WorkerError)
        std::rethrow_exception(WorkerError);
    }
    Stats.ExpandSeconds +=
        static_cast<double>(ExpandNanos.load(std::memory_order_relaxed)) /
        1e9;
    Stats.Steals = StealCount.load(std::memory_order_relaxed);
  }

  void run(const std::vector<Configuration> &Inits) {
    // StopAtFirstFailure wants the earliest failure in BFS order and
    // nothing past it; the level-synchronous loop stops at level
    // granularity, so it is the mode for that (and the oracle for the
    // work-stealing default).
    bool UseWs = Opts.Config.WorkStealing && !Opts.StopAtFirstFailure;
    Stats.WorkStealing = UseWs;
    if (UseWs) {
      Stats.StealChunk = Opts.Config.StealChunk;
      runWorkStealing(Inits);
    } else {
      runLevelSync(Inits);
    }
  }
};

} // namespace

StateGraph engine::exploreGraph(const Program &P,
                                const std::vector<Configuration> &Inits,
                                std::shared_ptr<StateArena> Arena,
                                const EngineOptions &Opts) {
  if (!Arena) {
    StateArena::SpillOptions Spill;
    Spill.Enabled = Opts.Config.Spill;
    Spill.Dir = Opts.Config.SpillDir;
    Spill.MemBudget = Opts.Config.MemBudget;
    Arena = std::make_shared<StateArena>(Opts.Config.Shards,
                                         Opts.Config.Compress, Spill);
  }
  StateGraph G;
  GraphAccess::arena(G) = Arena;
  ArenaStats Before = Arena->stats();
  Timer Total;
  Engine E(P, Opts, *Arena, G);
  E.run(Inits);
  EngineStats &Stats = GraphAccess::stats(G);
  Stats.TotalSeconds = Total.elapsed();
  Stats.NumConfigurations = GraphAccess::nodes(G).size();
  Stats.Threads = Opts.Config.NumThreads ? Opts.Config.NumThreads : 1;
  ArenaStats After = Arena->stats();
  Stats.InternedStores = After.Stores;
  Stats.InternedPas = After.Pas;
  Stats.InternedPaSets = After.PaSets;
  Stats.InternedConfigs = After.Configs;
  Stats.HashConsLookups = After.Lookups - Before.Lookups;
  Stats.HashConsHits = After.Hits - Before.Hits;
  Stats.TransitionCacheLookups = E.TransCache.lookups();
  Stats.TransitionCacheHits = E.TransCache.hits();
  Stats.SymmetryReduced = E.Sym != nullptr;
  Stats.CanonCalls = E.CanonCalls.load();
  Stats.CanonCacheHits = E.CanonHits.load();
  Stats.Shards = After.Shards;
  Stats.ShardOccupancy = After.ShardOccupancy;
  Stats.CompressedBytes = After.CompressedBytes;
  Stats.SpillEnabled = After.SpillEnabled;
  Stats.MemBudget = After.MemBudget;
  Stats.BytesHot = After.BytesHot;
  Stats.BytesCold = After.BytesCold;
  Stats.BlocksEvicted = After.BlocksEvicted;
  Stats.BlocksFaulted = After.BlocksFaulted;
  Stats.FaultStallNanos = After.FaultStallNanos;
  if (!E.Sym)
    Stats.OrbitStatesRepresented = Stats.NumConfigurations;
  return G;
}
