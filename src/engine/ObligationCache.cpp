//===- engine/ObligationCache.cpp - Obligation verdict cache ------------------===//

#include "engine/ObligationCache.h"

#include "support/Version.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace isq;
using namespace isq::engine;

namespace {

// All on-disk integers are explicit little-endian, independent of host
// byte order (the file is a cache, but a portable one).

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Bounds-checked little-endian reader over a byte range. Every get sets
/// the latching Bad flag on underrun instead of reading past the end; a
/// parser checks ok() once at the end (and wherever it must branch on a
/// read value).
struct ByteReader {
  const char *P;
  size_t Left;
  bool Bad = false;

  ByteReader(const char *Data, size_t Size) : P(Data), Left(Size) {}

  uint32_t u32() { return static_cast<uint32_t>(fixed(4)); }
  uint64_t u64() { return fixed(8); }
  uint8_t u8() { return static_cast<uint8_t>(fixed(1)); }

  bool bytes(std::string &Out, size_t N) {
    if (Bad || Left < N) {
      Bad = true;
      return false;
    }
    Out.assign(P, N);
    P += N;
    Left -= N;
    return true;
  }

  bool skip(size_t N) {
    if (Bad || Left < N) {
      Bad = true;
      return false;
    }
    P += N;
    Left -= N;
    return true;
  }

  bool ok() const { return !Bad; }
  bool done() const { return !Bad && Left == 0; }

private:
  uint64_t fixed(unsigned N) {
    if (Bad || Left < N) {
      Bad = true;
      return 0;
    }
    uint64_t V = 0;
    for (unsigned I = 0; I < N; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(P[I])) << (8 * I);
    P += N;
    Left -= N;
    return V;
  }
};

constexpr char FileMagic[8] = {'I', 'S', 'Q', 'O', 'B', 'C', '0', '1'};
constexpr char JournalMagic[8] = {'I', 'S', 'Q', 'O', 'B', 'J', '0', '1'};

/// Header shared by the base image and the journal: magic, format
/// versions, builder git sha. Returns false if the bytes under \p R don't
/// carry a trustworthy header for this build.
bool readHeader(ByteReader &R, const char (&Magic)[8]) {
  std::string MagicBytes;
  if (!R.bytes(MagicBytes, sizeof(Magic)) ||
      std::memcmp(MagicBytes.data(), Magic, sizeof(Magic)) != 0)
    return false;
  if (R.u32() != ObligationCache::DiskFormatVersion ||
      R.u32() != FpFormatVersion)
    return false;
  uint32_t ShaLen = R.u32();
  std::string Sha;
  return R.ok() && ShaLen <= 128 && R.bytes(Sha, ShaLen) && Sha == gitSha();
}

void writeHeader(std::string &Out, const char (&Magic)[8]) {
  Out.append(Magic, sizeof(Magic));
  putU32(Out, ObligationCache::DiskFormatVersion);
  putU32(Out, FpFormatVersion);
  std::string Sha = gitSha();
  putU32(Out, static_cast<uint32_t>(Sha.size()));
  Out.append(Sha);
}

/// Payload integrity for disk records: framing (sizes, counts) alone
/// cannot catch interior corruption — garbage inside a blob whose record
/// header survived would decode into plausible-but-wrong units. Every
/// record carries this 64-bit checksum of its blob, verified before any
/// decode; a mismatch is a miss (the slice re-runs), never a wrong
/// answer. Bytes are absorbed little-endian so the file stays
/// endianness-portable.
uint64_t blobChecksum(const char *Data, size_t Size) {
  uint64_t H = 0x9e3779b97f4a7c15ULL ^ Size;
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t V = 0;
    for (unsigned B = 0; B < 8; ++B)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[I + B]))
           << (8 * B);
    H = (H ^ V) * 0xc6a4a7935bd1e995ULL;
    H ^= H >> 29;
  }
  uint64_t Tail = 0;
  for (unsigned B = 0; I < Size; ++I, B += 8)
    Tail |= static_cast<uint64_t>(static_cast<unsigned char>(Data[I])) << B;
  H = (H ^ Tail) * 0xc6a4a7935bd1e995ULL;
  H ^= H >> 32;
  return H;
}

bool writeAll(int Fd, const char *Data, size_t Size) {
  while (Size) {
    ssize_t W = ::write(Fd, Data, Size);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += W;
    Size -= static_cast<size_t>(W);
  }
  return true;
}

} // namespace

std::string engine::encodeObUnits(const std::vector<ObUnit> &Units) {
  std::string Out;
  putU32(Out, static_cast<uint32_t>(Units.size()));
  for (const ObUnit &U : Units) {
    putU32(Out, U.Key.Tag);
    if (!U.Key.keyless()) {
      putU64(Out, U.Key.A);
      putU64(Out, U.Key.B);
      putU64(Out, U.Key.C);
    }
    Out.push_back(static_cast<char>(U.Channel));
    putU32(Out, U.Obligations);
    putU32(Out, U.Failures);
    Out.push_back(static_cast<char>(U.Issues.size()));
    for (const std::string &Issue : U.Issues) {
      putU32(Out, static_cast<uint32_t>(Issue.size()));
      Out.append(Issue);
    }
  }
  return Out;
}

bool engine::decodeObUnits(const char *Data, size_t Size,
                           std::vector<ObUnit> &Units) {
  ByteReader R(Data, Size);
  uint32_t N = R.u32();
  if (!R.ok() || N > Size) // a unit takes >1 byte: cheap sanity bound
    return false;
  Units.clear();
  Units.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    ObUnit U;
    U.Key.Tag = R.u32();
    if (!U.Key.keyless()) {
      U.Key.A = R.u64();
      U.Key.B = R.u64();
      U.Key.C = R.u64();
    }
    U.Channel = R.u8();
    U.Obligations = R.u32();
    U.Failures = R.u32();
    uint8_t NumIssues = R.u8();
    if (!R.ok() || NumIssues > ObUnit::MaxIssues)
      return false;
    U.Issues.reserve(NumIssues);
    for (uint8_t J = 0; J < NumIssues; ++J) {
      uint32_t Len = R.u32();
      std::string Issue;
      if (!R.bytes(Issue, Len))
        return false;
      U.Issues.push_back(std::move(Issue));
    }
    Units.push_back(std::move(U));
  }
  return R.done();
}

ObligationCache::ObligationCache() = default;

ObligationCache::ObligationCache(Options O) : Opts(std::move(O)) {
  if (!Opts.Dir.empty()) {
    loadDisk();
    loadJournal();
  }
}

ObligationCache::~ObligationCache() {
  if (Mapping)
    ::munmap(const_cast<char *>(Mapping), MappingSize);
  if (JMapping)
    ::munmap(const_cast<char *>(JMapping), JMappingSize);
}

std::string ObligationCache::filePath() const {
  return Opts.Dir + "/obcache.bin";
}

std::string ObligationCache::journalPath() const {
  return Opts.Dir + "/obcache.jrnl";
}

void ObligationCache::loadDisk() {
  int Fd = ::open(filePath().c_str(), O_RDONLY);
  if (Fd < 0)
    return; // no cache file yet: cold, not corrupt
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size <= 0) {
    ::close(Fd);
    Stats.DiskRejected = true;
    return;
  }
  size_t Size = static_cast<size_t>(St.st_size);
  void *Map = ::mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd);
  if (Map == MAP_FAILED) {
    Stats.DiskRejected = true;
    return;
  }
  Mapping = static_cast<const char *>(Map);
  MappingSize = Size;

  auto Reject = [&] {
    ::munmap(const_cast<char *>(Mapping), MappingSize);
    Mapping = nullptr;
    MappingSize = 0;
    Disk.clear();
    Stats.DiskRejected = true;
    Stats.DiskEntries = 0;
  };

  ByteReader R(Mapping, MappingSize);
  // Git-sha provenance: verdict semantics may change without a format
  // bump, so a cache written by a different build is never trusted — the
  // run proceeds cold and overwrites on save.
  if (!readHeader(R, FileMagic))
    return Reject();

  uint64_t Count = R.u64();
  if (!R.ok() || Count > MappingSize) // each entry takes >1 byte
    return Reject();
  uint64_t MaxUse = 0;
  for (uint64_t I = 0; I < Count; ++I) {
    Fingerprint Key;
    Key.Hi = R.u64();
    Key.Lo = R.u64();
    uint64_t LastUse = R.u64();
    uint64_t BlobSize = R.u64();
    uint64_t Checksum = R.u64();
    if (!R.ok() || BlobSize > R.Left)
      return Reject();
    DiskEntry E;
    E.Offset = static_cast<size_t>(R.P - Mapping);
    E.Size = static_cast<size_t>(BlobSize);
    E.LastUse = LastUse;
    E.Checksum = Checksum;
    R.skip(E.Size);
    Disk[Key] = E;
    MaxUse = std::max(MaxUse, LastUse);
  }
  if (!R.done())
    return Reject();
  Clock = MaxUse;
  Stats.DiskEntries = Disk.size();
}

void ObligationCache::loadJournal() {
  int Fd = ::open(journalPath().c_str(), O_RDONLY);
  if (Fd < 0)
    return; // no journal: the base image is the whole disk tier
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size <= 0) {
    ::close(Fd);
    return; // empty or unreadable: ignored, recreated on next append
  }
  size_t Size = static_cast<size_t>(St.st_size);
  void *Map = ::mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd);
  if (Map == MAP_FAILED)
    return;
  JMapping = static_cast<const char *>(Map);
  JMappingSize = Size;

  ByteReader R(JMapping, JMappingSize);
  if (!readHeader(R, JournalMagic)) {
    // Untrusted header (other build, other format): drop the whole file.
    // JournalValidBytes stays 0, so the next append truncates it away.
    ::munmap(const_cast<char *>(JMapping), JMappingSize);
    JMapping = nullptr;
    JMappingSize = 0;
    return;
  }
  // Records are accepted up to the first malformed byte: a torn append
  // (crash mid-write) costs exactly the tail, and the next append
  // truncates back to this point before writing.
  JournalValidBytes = static_cast<size_t>(R.P - JMapping);
  while (R.Left > 0) {
    Fingerprint Key;
    Key.Hi = R.u64();
    Key.Lo = R.u64();
    uint64_t LastUse = R.u64();
    uint64_t BlobSize = R.u64();
    uint64_t Checksum = R.u64();
    if (!R.ok() || BlobSize > R.Left)
      break;
    DiskEntry E;
    E.Offset = static_cast<size_t>(R.P - JMapping);
    E.Size = static_cast<size_t>(BlobSize);
    E.LastUse = LastUse;
    E.Checksum = Checksum;
    E.Journal = true;
    R.skip(E.Size);
    Disk[Key] = E; // journal shadows base
    Clock = std::max(Clock, LastUse);
    JournalValidBytes = static_cast<size_t>(R.P - JMapping);
  }
  Stats.DiskEntries = Disk.size();
}

bool ObligationCache::lookup(const Fingerprint &Key,
                             std::vector<ObUnit> &Units, bool &FromDisk) {
  const char *Blob = nullptr;
  size_t BlobSize = 0;
  Fingerprint DiskKey;
  bool IsDisk = false;
  uint64_t WantSum = 0;
  {
    std::lock_guard<std::mutex> Lock(M);
    ++Stats.Lookups;
    if (auto It = Memory.find(Key); It != Memory.end()) {
      It->second.LastUse = ++Clock;
      Blob = It->second.Blob.data();
      BlobSize = It->second.Blob.size();
      FromDisk = false;
    } else if (auto DIt = Disk.find(Key); DIt != Disk.end()) {
      DIt->second.LastUse = ++Clock;
      FromDisk = !DIt->second.Touched;
      DIt->second.Touched = true;
      Blob = (DIt->second.Journal ? JMapping : Mapping) + DIt->second.Offset;
      BlobSize = DIt->second.Size;
      IsDisk = true;
      DiskKey = Key;
      WantSum = DIt->second.Checksum;
    } else {
      ++Stats.Misses;
      return false;
    }
  }
  // Verify and decode outside the lock: the bytes are stable (memory
  // blobs never shrink or vanish during a run; the mappings live until
  // destruction). Disk payloads are checksummed before decode — framing
  // alone can't catch interior corruption.
  if ((IsDisk && blobChecksum(Blob, BlobSize) != WantSum) ||
      !decodeObUnits(Blob, BlobSize, Units)) {
    // A corrupt or structurally invalid payload that passed the header
    // checks: forget the entry and report a miss — cold, never wrong.
    std::lock_guard<std::mutex> Lock(M);
    if (IsDisk)
      Disk.erase(DiskKey);
    else
      Memory.erase(Key);
    ++Stats.Misses;
    return false;
  }
  std::lock_guard<std::mutex> Lock(M);
  ++Stats.Hits;
  if (FromDisk)
    ++Stats.DiskHits;
  return true;
}

void ObligationCache::insert(const Fingerprint &Key,
                             const std::vector<ObUnit> &Units) {
  if (Key.isZero())
    return;
  std::string Blob = encodeObUnits(Units); // encode outside the lock
  std::lock_guard<std::mutex> Lock(M);
  ++Stats.Inserts;
  Memory[Key] = MemEntry{std::move(Blob), ++Clock};
}

bool ObligationCache::save(std::string &Error) {
  if (Opts.Dir.empty())
    return true;
  std::lock_guard<std::mutex> Lock(M);
  // An all-hit run has nothing to add: the disk tier already holds
  // exactly what a rewrite would produce (modulo LRU recency, which an
  // all-hit run touches uniformly anyway), so write nothing. A rejected
  // base still falls through — compacting it self-heals a corrupt or
  // stale-provenance file.
  if (Stats.Inserts == 0 && !Stats.DiskRejected)
    return true;
  // Few inserts over a healthy base: append them to the journal so the
  // writeback scales with the edit, not the image. Once the journal
  // would outgrow half the base (or the base is gone or untrusted),
  // compact everything into a fresh base instead.
  size_t AppendBytes = 0;
  for (const auto &[Key, E] : Memory)
    AppendBytes += 40 + E.Blob.size();
  if (Mapping && !Stats.DiskRejected &&
      JournalValidBytes + AppendBytes <=
          std::max(MappingSize / 2, size_t(1) << 20))
    return appendJournal(Error);
  return compact(Error);
}

bool ObligationCache::appendJournal(std::string &Error) {
  int Fd = ::open(journalPath().c_str(), O_WRONLY | O_CREAT, 0644);
  if (Fd < 0) {
    Error = "cannot open " + journalPath() + ": " + std::strerror(errno);
    return false;
  }
  std::string Buf;
  if (JournalValidBytes == 0)
    writeHeader(Buf, JournalMagic); // fresh (or untrusted) journal
  // Drop any torn tail before appending so the file stays prefix-valid:
  // a reader accepts records up to the first malformed byte.
  bool Ok = ::ftruncate(Fd, static_cast<off_t>(JournalValidBytes)) == 0 &&
            ::lseek(Fd, 0, SEEK_END) >= 0;
  for (const auto &[Key, E] : Memory) {
    putU64(Buf, Key.Hi);
    putU64(Buf, Key.Lo);
    putU64(Buf, E.LastUse);
    putU64(Buf, E.Blob.size());
    putU64(Buf, blobChecksum(E.Blob.data(), E.Blob.size()));
    Buf.append(E.Blob);
  }
  Ok = Ok && writeAll(Fd, Buf.data(), Buf.size());
  Ok = Ok && ::fsync(Fd) == 0;
  if (::close(Fd) != 0)
    Ok = false;
  if (!Ok) {
    Error = "append to " + journalPath() + " failed: " + std::strerror(errno);
    return false;
  }
  return true;
}

bool ObligationCache::compact(std::string &Error) {
  struct Row {
    Fingerprint Key;
    uint64_t LastUse;
    const char *Data;
    size_t Size;
    uint64_t Checksum;
  };
  std::vector<Row> Rows;
  Rows.reserve(Memory.size() + Disk.size());
  for (const auto &[Key, E] : Memory)
    Rows.push_back({Key, E.LastUse, E.Blob.data(), E.Blob.size(),
                    blobChecksum(E.Blob.data(), E.Blob.size())});
  for (const auto &[Key, E] : Disk)
    if (!Memory.count(Key)) // memory shadows disk
      Rows.push_back({Key, E.LastUse,
                      (E.Journal ? JMapping : Mapping) + E.Offset, E.Size,
                      E.Checksum});

  // LRU cap: newest-used first, keep while under budget. Sort ties (and
  // everything else) by key so the file is deterministic given usage.
  std::sort(Rows.begin(), Rows.end(), [](const Row &X, const Row &Y) {
    if (X.LastUse != Y.LastUse)
      return X.LastUse > Y.LastUse;
    return X.Key < Y.Key;
  });
  constexpr size_t RowOverhead = 8 + 8 + 8 + 8 + 8; // key, use, size, sum
  std::string Header;
  writeHeader(Header, FileMagic);
  size_t Budget = Opts.MaxBytes > Header.size() + 8
                      ? Opts.MaxBytes - Header.size() - 8
                      : 0;
  size_t Keep = 0, Bytes = 0;
  while (Keep < Rows.size() && Bytes + RowOverhead + Rows[Keep].Size <= Budget)
    Bytes += RowOverhead + Rows[Keep++].Size;
  putU64(Header, Keep);

  ::mkdir(Opts.Dir.c_str(), 0755); // EEXIST is fine
  std::string Tmp =
      Opts.Dir + "/obcache.tmp." + std::to_string(::getpid());
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Error = "cannot create " + Tmp + ": " + std::strerror(errno);
    return false;
  }
  // Batch rows into a few-megabyte buffer between write(2) calls: the
  // image runs to tens of megabytes across hundreds of thousands of
  // rows, and two syscalls per row dominates an otherwise sequential
  // dump.
  bool Ok = writeAll(Fd, Header.data(), Header.size());
  std::string Buf;
  Buf.reserve(4 << 20);
  auto Flush = [&] {
    if (Ok && !Buf.empty())
      Ok = writeAll(Fd, Buf.data(), Buf.size());
    Buf.clear();
  };
  for (size_t I = 0; Ok && I < Keep; ++I) {
    const Row &E = Rows[I];
    putU64(Buf, E.Key.Hi);
    putU64(Buf, E.Key.Lo);
    putU64(Buf, E.LastUse);
    putU64(Buf, E.Size);
    putU64(Buf, E.Checksum);
    Buf.append(E.Data, E.Size);
    if (Buf.size() >= (4 << 20))
      Flush();
  }
  Flush();
  Ok = Ok && ::fsync(Fd) == 0;
  if (::close(Fd) != 0)
    Ok = false;
  if (!Ok) {
    Error = "write failed for " + Tmp + ": " + std::strerror(errno);
    ::unlink(Tmp.c_str());
    return false;
  }
  // Crash-safe publish: readers see the old file or the new one, never a
  // torn mix.
  if (::rename(Tmp.c_str(), filePath().c_str()) != 0) {
    Error = "rename to " + filePath() + " failed: " + std::strerror(errno);
    ::unlink(Tmp.c_str());
    return false;
  }
  // The fresh base subsumes the journal. Unlink after the rename: a crash
  // in between leaves journal records that duplicate base entries with
  // identical content, which the next load shadows consistently.
  ::unlink(journalPath().c_str());
  return true;
}

ObligationCache::Counters ObligationCache::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stats;
}
