//===- engine/StateArena.h - Hash-consed state interning --------*- C++ -*-===//
///
/// \file
/// The interning substrate of the state-space engine. Stores, pending
/// asyncs, PA multisets and whole configurations are hash-consed into
/// arenas and addressed by dense 32-bit handles, so seen-set membership,
/// transition dedup and cache keys become integer compares instead of deep
/// structural hashing.
///
/// Sharding and lock-free reads. Every table is split into a runtime
/// number of shards (a power of two, at most 16) keyed by value hash;
/// interning appends under the shard mutex, but *reads never lock*: each
/// shard stores its items in exponentially-growing blocks published
/// through atomic pointers, so an item, once placed, never moves and can
/// be addressed from any thread. A handle obtained through any
/// release/acquire channel (a mutex, a chunk's done flag) is safe to
/// dereference — the placing thread's writes happen-before the handle's
/// publication.
///
/// Compact mode (--engine compress=true). Stores and PA-bags are kept as
/// canonical delta/varint byte encodings (engine/Encoding.h) instead of
/// expanded values; byte equality coincides with value equality, so
/// hash-consing runs over the encoded form directly. Accessors decode
/// through a per-thread FIFO cache (DecodeCacheCapacity entries per
/// kind), so the `const &` they return stays valid until that many other
/// distinct items are decoded on the same thread — callers hold these
/// references only across one node expansion or one obligation, far
/// below the horizon.
///
/// Handle layout: the low 4 bits hold the shard, the remaining 28 bits
/// index into the shard (≈268M entries per shard). The layout is fixed
/// regardless of the runtime shard count, so handles carry no
/// configuration dependence. Handles are only meaningful relative to the
/// arena that issued them.
///
/// Tiered store (--engine spill=true). In compact mode the encoded bytes
/// can additionally spill to an mmap-backed cold tier (engine/ColdStore.h)
/// under a global memory budget: consecutive runs of SpillBlockItems
/// local ids form an eviction block; once the block is full it is sealed,
/// and a clock sweep may write its bytes to a checksummed segment file
/// and free the hot copies. Handles, hashes, bucket chains and every
/// accessor's result are untouched — only where the bytes live changes,
/// so verdicts, counts, traces and frontier_peak stay bit-identical with
/// spilling on or off (see DESIGN.md "Tiered state store" for the
/// pin/evict publication argument).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_STATEARENA_H
#define ISQ_ENGINE_STATEARENA_H

#include "engine/ColdStore.h"
#include "semantics/Configuration.h"
#include "support/Hashing.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace isq {
namespace engine {

/// Handle of an interned global store.
using StoreId = uint32_t;
/// Handle of an interned pending async (action name + argument tuple).
using PaId = uint32_t;
/// Handle of an interned PA multiset Ω.
using PaSetId = uint32_t;
/// Handle of an interned (StoreId, PaSetId) configuration.
using ConfigId = uint32_t;

constexpr uint32_t InvalidId = UINT32_MAX;

/// The interned form of a PA multiset: (PaId, multiplicity) pairs sorted by
/// PaId with strictly positive multiplicities. Canonical within one arena.
using PaCountVec = std::vector<std::pair<PaId, uint64_t>>;

/// Removes one occurrence of \p Pa from sorted \p Vec (which must contain
/// it).
void paCountVecErase(PaCountVec &Vec, PaId Pa);

/// Merges two sorted (PaId, count) vectors, summing multiplicities (Ω ⊎).
PaCountVec paCountVecUnion(const PaCountVec &A, const PaCountVec &B);

/// Snapshot of arena occupancy and hash-consing effectiveness.
struct ArenaStats {
  size_t Stores = 0;
  size_t Pas = 0;
  size_t PaSets = 0;
  size_t Configs = 0;
  /// Total intern calls across all tables and the hits among them (an
  /// intern call that found an existing entry). Hits/Lookups is the
  /// hash-cons hit rate.
  size_t Lookups = 0;
  size_t Hits = 0;
  /// The arena's configured shard count and the number of configuration
  /// shards holding at least one entry. Configurations shard by *value*
  /// hash (not by handle, which depends on interning order), so the
  /// occupancy is identical for every thread count and engine mode.
  unsigned Shards = 0;
  unsigned ShardOccupancy = 0;
  /// Total bytes of encoded stores and PA-bags (0 unless compact mode).
  /// Telemetry: PA-bag encodings varint PaIds, whose width depends on
  /// interning order, so the byte total is not deterministic across
  /// thread counts.
  size_t CompressedBytes = 0;
  /// Tiered-store observability (all zero unless --engine spill=true).
  /// Every field below is telemetry — eviction and fault timing depend on
  /// scheduling, never on verdicts.
  bool SpillEnabled = false;
  uint64_t MemBudget = 0;
  /// Encoded bytes currently resident in the hot tier / written to the
  /// cold tier (record framing included).
  uint64_t BytesHot = 0;
  uint64_t BytesCold = 0;
  uint64_t BlocksEvicted = 0;
  /// Cold blocks touched after eviction (each counted once, at its
  /// checksum-verifying first fault) and the total wall time readers
  /// spent on the cold path.
  uint64_t BlocksFaulted = 0;
  uint64_t FaultStallNanos = 0;
};

/// Append-only item storage with lock-free indexing: items live in
/// exponentially-growing blocks (block k holds BaseSize<<k items)
/// published through atomic pointers, so a placed item never moves and
/// operator[] takes no lock. push_back must be externally serialized
/// (the owning shard's mutex).
template <typename Item> class BlockStore {
public:
  /// 18 blocks of 1024<<k items cover the 2^28 ids a shard can issue.
  static constexpr size_t BaseLog = 10;
  static constexpr size_t MaxBlocks = 18;

  BlockStore() = default;
  BlockStore(const BlockStore &) = delete;
  BlockStore &operator=(const BlockStore &) = delete;
  ~BlockStore() {
    for (size_t K = 0; K < MaxBlocks; ++K)
      delete[] Blocks[K].load(std::memory_order_relaxed);
  }

  size_t size() const { return Count; }

  /// Appends \p V and returns its index. Caller holds the shard mutex.
  size_t push_back(Item V) {
    size_t Index = Count;
    auto [K, Offset] = locate(Index);
    Item *Block = Blocks[K].load(std::memory_order_relaxed);
    if (!Block) {
      Block = new Item[BlockStore::blockSize(K)];
      // Release: a reader that acquires this pointer sees constructed
      // slots (the item itself is published by the id's own channel).
      Blocks[K].store(Block, std::memory_order_release);
    }
    Block[Offset] = std::move(V);
    ++Count;
    return Index;
  }

  const Item &operator[](size_t Index) const {
    auto [K, Offset] = locate(Index);
    return Blocks[K].load(std::memory_order_acquire)[Offset];
  }
  Item &operator[](size_t Index) {
    auto [K, Offset] = locate(Index);
    return Blocks[K].load(std::memory_order_acquire)[Offset];
  }

private:
  static size_t blockSize(size_t K) { return size_t(1) << (BaseLog + K); }
  static std::pair<size_t, size_t> locate(size_t Index) {
    // Blocks hold 2^10, 2^11, ... items; Index+2^10 falls in
    // [2^(10+k), 2^(11+k)) exactly for block k.
    size_t Pos = Index + (size_t(1) << BaseLog);
    size_t K = 63 - static_cast<size_t>(__builtin_clzll(Pos)) - BaseLog;
    assert(K < MaxBlocks && "index beyond shard capacity");
    return {K, Pos - (size_t(1) << (BaseLog + K))};
  }

  std::atomic<Item *> Blocks[MaxBlocks] = {};
  size_t Count = 0;
};

/// Thread-safe hash-consing arenas for stores, PAs, PA multisets and
/// configurations. Append-only: interned values are never moved or freed
/// before the arena dies, so references returned by the accessors remain
/// valid for the arena's lifetime (compact mode bounds them by the decode
/// cache horizon instead — see the file comment).
class StateArena {
public:
  static constexpr unsigned MaxShards = 16;
  /// Per-thread, per-kind decode cache capacity in compact mode.
  static constexpr size_t DecodeCacheCapacity = 8192;
  /// Consecutive local ids per eviction block in spill mode. A block
  /// seals when its last id is interned; only sealed, unpinned blocks
  /// spill to the cold tier. Small enough that a moderately occupied
  /// shard seals blocks (hash-consing keeps distinct stores per shard in
  /// the thousands even for 10^5-state explorations), large enough that
  /// a cold fault amortizes its record header and checksum over many
  /// items.
  static constexpr size_t SpillBlockItems = 512;

  /// Cold-tier settings (effective only together with compact mode; the
  /// config layer rejects spill without compress).
  struct SpillOptions {
    bool Enabled = false;
    /// Base spill directory; the arena creates an `arena-<serial>`
    /// subdirectory so concurrent arenas never share segment files.
    std::string Dir;
    /// Process-global hot-byte budget driving eviction.
    uint64_t MemBudget = 0;
  };

  /// \p Shards must be a power of two in [1, MaxShards]. \p Compress
  /// selects the compact (encoded) representation.
  explicit StateArena(unsigned Shards = MaxShards, bool Compress = false)
      : StateArena(Shards, Compress, SpillOptions()) {}
  StateArena(unsigned Shards, bool Compress, const SpillOptions &Spill);
  StateArena(const StateArena &) = delete;
  StateArena &operator=(const StateArena &) = delete;
  ~StateArena();

  unsigned shards() const { return NumShardsRt; }
  bool compressed() const { return Compress; }
  bool spilling() const { return SpillEnabled; }

  // Interning --------------------------------------------------------------

  StoreId internStore(const Store &S);
  PaId internPa(const PendingAsync &PA);
  /// Interns a value-level multiset (also records its materialized form).
  PaSetId internPaSet(const PaMultiset &Omega);
  /// Interns an engine-form multiset; \p Vec must be sorted by PaId.
  PaSetId internPaVec(PaCountVec Vec);
  ConfigId internConfig(StoreId G, PaSetId Omega);
  /// Interns a non-failure configuration.
  ConfigId internConfig(const Configuration &C);

  // Lookup -----------------------------------------------------------------

  const Store &store(StoreId Id) const;
  const PendingAsync &pa(PaId Id) const;
  const PaCountVec &paVec(PaSetId Id) const;
  /// The multiset as a value-level PaMultiset; materialized on first use
  /// and cached (for the arena's lifetime, or per thread in compact mode).
  const PaMultiset &paSet(PaSetId Id) const;
  /// The multiset's distinct PaIds in canonical value order (the order a
  /// value-level PaMultiset iterates its entries). This order is intrinsic
  /// to the PAs, unlike PaId order, which depends on interning order —
  /// iterating it keeps exploration deterministic regardless of which
  /// worker thread interned a PA first. Materialized on first use.
  const std::vector<PaId> &paOrder(PaSetId Id) const;
  std::pair<StoreId, PaSetId> config(ConfigId Id) const;
  /// Materializes the full (g, Ω) configuration (copies).
  Configuration configuration(ConfigId Id) const;

  /// The interned empty multiset (terminating configurations have this Ω).
  PaSetId emptyPaSet() const { return EmptyPaSet; }

  ArenaStats stats() const;

private:
  static constexpr uint32_t HandleShardBits = 4;
  static constexpr uint32_t HandleShardMask = MaxShards - 1;

  static uint32_t makeId(size_t Shard, size_t Local) {
    return static_cast<uint32_t>((Local << HandleShardBits) | Shard);
  }
  static size_t shardOf(uint32_t Id) { return Id & HandleShardMask; }
  static size_t localOf(uint32_t Id) { return Id >> HandleShardBits; }
  size_t shardFor(size_t Hash) const { return Hash & (NumShardsRt - 1); }

  struct StoreItem {
    Store Value;         ///< expanded form (plain mode)
    std::string Encoded; ///< canonical bytes (compact mode)
    size_t ValueHash = 0;
  };

  struct PaSetItem {
    PaCountVec Vec;      ///< plain mode
    std::string Encoded; ///< compact mode
    /// Order-insensitive hash of the multiset's *values* (independent of
    /// PaId assignment); feeds configuration sharding.
    size_t ValueHash = 0;
    /// Lazily materialized value form and value-ordered view, published
    /// by compare-and-swap (plain mode only; compact mode serves both
    /// from the per-thread decode cache).
    std::atomic<const PaMultiset *> Value{nullptr};
    std::atomic<const std::vector<PaId> *> Order{nullptr};

    PaSetItem() = default;
    PaSetItem(PaSetItem &&O) noexcept
        : Vec(std::move(O.Vec)), Encoded(std::move(O.Encoded)),
          ValueHash(O.ValueHash),
          Value(O.Value.load(std::memory_order_relaxed)),
          Order(O.Order.load(std::memory_order_relaxed)) {
      O.Value.store(nullptr, std::memory_order_relaxed);
      O.Order.store(nullptr, std::memory_order_relaxed);
    }
    PaSetItem &operator=(PaSetItem &&O) noexcept {
      Vec = std::move(O.Vec);
      Encoded = std::move(O.Encoded);
      ValueHash = O.ValueHash;
      Value.store(O.Value.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      Order.store(O.Order.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      O.Value.store(nullptr, std::memory_order_relaxed);
      O.Order.store(nullptr, std::memory_order_relaxed);
      return *this;
    }
    ~PaSetItem() {
      delete Value.load(std::memory_order_relaxed);
      delete Order.load(std::memory_order_relaxed);
    }
  };

  /// One shard of a hash-consing table: hash → candidate local indices
  /// (guarded by the shard mutex), plus lock-free-readable item storage.
  template <typename Item> struct Shard {
    mutable std::mutex M;
    std::unordered_map<size_t, std::vector<uint32_t>> Buckets;
    BlockStore<Item> Items;
  };

  /// Eviction bookkeeping for one block of SpillBlockItems consecutive
  /// local ids (spill mode only). The reader/evictor protocol:
  ///  - readers pin, then load State; Hot/Sealed reads the item's hot
  ///    string under the pin, Cold unpins and reads the immortal mmap;
  ///  - the evictor writes the record, publishes the ColdRef, flips
  ///    State to Cold, then spins until Pins drains before freeing the
  ///    hot strings. Pin increments and State transitions are seq_cst so
  ///    the store-buffering outcome (a reader holding a pin on freed
  ///    bytes while the evictor saw zero pins) is impossible.
  struct SpillMeta {
    static constexpr uint32_t Hot = 0, Sealed = 1, Evicted = 2;
    mutable std::atomic<uint32_t> State{Hot};
    mutable std::atomic<uint32_t> Pins{0};
    /// Clock second-chance bit, set on every read of the block.
    mutable std::atomic<bool> Referenced{false};
    /// Set once by the first faulting reader after checksum verification.
    mutable std::atomic<uint32_t> ColdVerified{0};
    /// Valid once State == Evicted (published by the State transition).
    ColdStore::BlockRef ColdRef;
    /// Hot payload bytes of the sealed block (for the accountant).
    uint64_t Bytes = 0;

    SpillMeta() = default;
    SpillMeta(SpillMeta &&O) noexcept
        : State(O.State.load(std::memory_order_relaxed)),
          Pins(O.Pins.load(std::memory_order_relaxed)),
          Referenced(O.Referenced.load(std::memory_order_relaxed)),
          ColdVerified(O.ColdVerified.load(std::memory_order_relaxed)),
          ColdRef(O.ColdRef), Bytes(O.Bytes) {}
    SpillMeta &operator=(SpillMeta &&O) noexcept {
      State.store(O.State.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      Pins.store(O.Pins.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
      Referenced.store(O.Referenced.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      ColdVerified.store(O.ColdVerified.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      ColdRef = O.ColdRef;
      Bytes = O.Bytes;
      return *this;
    }
  };

  /// Per-shard eviction metadata for one byte-holding table; entries are
  /// appended under the owning shard's mutex, read lock-free.
  struct SpillState {
    BlockStore<SpillMeta> Meta;
  };

  Shard<StoreItem> StoreShards[MaxShards];
  Shard<PendingAsync> PaShards[MaxShards];
  Shard<PaSetItem> PaSetShards[MaxShards];
  /// Config identity is the exact (StoreId, PaSetId) pair, so the bucket
  /// map is keyed directly by the packed pair (no collision chains). The
  /// shard, however, is chosen by the configuration's *value* hash so
  /// per-shard populations do not depend on interning order.
  struct ConfigShard {
    mutable std::mutex M;
    std::unordered_map<uint64_t, uint32_t> Index;
    BlockStore<std::pair<StoreId, PaSetId>> Items;
  };
  ConfigShard ConfigShards[MaxShards];

  SpillState StoreSpill[MaxShards];
  SpillState PaSetSpill[MaxShards];

  unsigned NumShardsRt;
  bool Compress;
  /// Distinguishes arenas in the per-thread decode caches.
  uint32_t Serial;

  PaSetId EmptyPaSet = InvalidId;

  mutable std::atomic<size_t> Lookups{0};
  mutable std::atomic<size_t> Hits{0};
  std::atomic<size_t> CompressedBytes{0};

  // Tiered store (spill mode only).
  bool SpillEnabled = false;
  uint64_t MemBudget = 0;
  std::unique_ptr<ColdStore> Cold;
  /// This arena's hot encoded bytes (the global accountant additionally
  /// sums across live arenas — see StateArena.cpp).
  std::atomic<uint64_t> HotBytes{0};
  std::atomic<uint64_t> BlocksEvictedCtr{0};
  mutable std::atomic<uint64_t> BlocksFaultedCtr{0};
  mutable std::atomic<uint64_t> FaultStallNanosCtr{0};
  /// One evictor at a time; interning threads try-lock and move on.
  std::mutex EvictMutex;
  /// Clock hands: [kind][shard] -> next block index to consider
  /// (kind 0 = stores, 1 = PA-bags).
  size_t ClockPos[2][MaxShards] = {};

  static size_t hashPaCountVec(const PaCountVec &Vec);
  size_t paValueHash(const PaCountVec &Vec) const;
  PaMultiset materialize(const PaCountVec &Vec) const;
  std::vector<PaId> orderOf(const PaCountVec &Vec) const;

  /// Appends spill metadata / seals the block after item \p Local landed
  /// in \p Items (caller holds the shard mutex).
  template <typename Item>
  void noteAppend(BlockStore<Item> &Items, SpillState &Sp, size_t Local);
  /// Invokes \p F(Begin, End) on the encoded bytes of item \p Local,
  /// transparently reading the hot string or the cold mmap.
  template <typename Item, typename Fn>
  auto withEncoded(const Shard<Item> &Sh, const SpillState &Sp, size_t Local,
                   Fn &&F) const;
  /// Evicts sealed blocks until the global accountant is under budget
  /// (best effort; called outside any shard mutex).
  void maybeSpill();
  template <typename Item>
  bool evictBlock(Shard<Item> &Sh, SpillState &Sp, size_t BlockIdx);
};

/// A set of explored configurations over a shared arena: the interned
/// universe handed to the mover / refinement / IS checkers.
struct StateSpace {
  std::shared_ptr<StateArena> Arena;
  std::vector<ConfigId> Configs;
};

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_STATEARENA_H
