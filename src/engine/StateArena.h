//===- engine/StateArena.h - Hash-consed state interning --------*- C++ -*-===//
///
/// \file
/// The interning substrate of the state-space engine. Stores, pending
/// asyncs, PA multisets and whole configurations are hash-consed into
/// arenas and addressed by dense 32-bit handles, so seen-set membership,
/// transition dedup and cache keys become integer compares instead of deep
/// structural hashing. The arenas are append-only and sharded: every table
/// is split into 16 shards keyed by canonical hash, each guarded by its own
/// mutex, which lets the parallel explorer intern from worker threads with
/// low contention while keeping references to interned values stable
/// (per-shard std::deque storage is never reallocated or erased).
///
/// Handle layout: the low 4 bits select the shard, the remaining 28 bits
/// index into the shard (≈268M entries per shard). Handles are only
/// meaningful relative to the arena that issued them.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_STATEARENA_H
#define ISQ_ENGINE_STATEARENA_H

#include "semantics/Configuration.h"
#include "support/Hashing.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace isq {
namespace engine {

/// Handle of an interned global store.
using StoreId = uint32_t;
/// Handle of an interned pending async (action name + argument tuple).
using PaId = uint32_t;
/// Handle of an interned PA multiset Ω.
using PaSetId = uint32_t;
/// Handle of an interned (StoreId, PaSetId) configuration.
using ConfigId = uint32_t;

constexpr uint32_t InvalidId = UINT32_MAX;

/// The interned form of a PA multiset: (PaId, multiplicity) pairs sorted by
/// PaId with strictly positive multiplicities. Canonical within one arena.
using PaCountVec = std::vector<std::pair<PaId, uint64_t>>;

/// Removes one occurrence of \p Pa from sorted \p Vec (which must contain
/// it).
void paCountVecErase(PaCountVec &Vec, PaId Pa);

/// Merges two sorted (PaId, count) vectors, summing multiplicities (Ω ⊎).
PaCountVec paCountVecUnion(const PaCountVec &A, const PaCountVec &B);

/// Snapshot of arena occupancy and hash-consing effectiveness.
struct ArenaStats {
  size_t Stores = 0;
  size_t Pas = 0;
  size_t PaSets = 0;
  size_t Configs = 0;
  /// Total intern calls across all tables and the hits among them (an
  /// intern call that found an existing entry). Hits/Lookups is the
  /// hash-cons hit rate.
  size_t Lookups = 0;
  size_t Hits = 0;
};

/// Thread-safe hash-consing arenas for stores, PAs, PA multisets and
/// configurations. Append-only: interned values are never moved or freed
/// before the arena dies, so references returned by the accessors remain
/// valid for the arena's lifetime.
class StateArena {
public:
  StateArena();
  StateArena(const StateArena &) = delete;
  StateArena &operator=(const StateArena &) = delete;

  // Interning --------------------------------------------------------------

  StoreId internStore(const Store &S);
  PaId internPa(const PendingAsync &PA);
  /// Interns a value-level multiset (also records its materialized form).
  PaSetId internPaSet(const PaMultiset &Omega);
  /// Interns an engine-form multiset; \p Vec must be sorted by PaId.
  PaSetId internPaVec(PaCountVec Vec);
  ConfigId internConfig(StoreId G, PaSetId Omega);
  /// Interns a non-failure configuration.
  ConfigId internConfig(const Configuration &C);

  // Lookup -----------------------------------------------------------------

  const Store &store(StoreId Id) const;
  const PendingAsync &pa(PaId Id) const;
  const PaCountVec &paVec(PaSetId Id) const;
  /// The multiset as a value-level PaMultiset; materialized on first use
  /// and cached for the arena's lifetime.
  const PaMultiset &paSet(PaSetId Id);
  /// The multiset's distinct PaIds in canonical value order (the order a
  /// value-level PaMultiset iterates its entries). This order is intrinsic
  /// to the PAs, unlike PaId order, which depends on interning order —
  /// iterating it keeps exploration deterministic regardless of which
  /// worker thread interned a PA first. Materialized on first use.
  const std::vector<PaId> &paOrder(PaSetId Id);
  std::pair<StoreId, PaSetId> config(ConfigId Id) const;
  /// Materializes the full (g, Ω) configuration (copies).
  Configuration configuration(ConfigId Id);

  /// The interned empty multiset (terminating configurations have this Ω).
  PaSetId emptyPaSet() const { return EmptyPaSet; }

  ArenaStats stats() const;

private:
  static constexpr size_t NumShards = 16;
  static constexpr uint32_t ShardMask = NumShards - 1;

  static uint32_t makeId(size_t Shard, size_t Local) {
    return static_cast<uint32_t>((Local << 4) | Shard);
  }
  static size_t shardOf(uint32_t Id) { return Id & ShardMask; }
  static size_t localOf(uint32_t Id) { return Id >> 4; }

  /// One shard of a hash-consing table: hash → candidate local indices,
  /// plus stable storage for the interned items.
  template <typename Item> struct Shard {
    mutable std::mutex M;
    std::unordered_map<size_t, std::vector<uint32_t>> Buckets;
    std::deque<Item> Items;
  };

  struct PaSetItem {
    PaCountVec Vec;
    /// Lazily materialized value form (guarded by the shard mutex until
    /// filled; immutable afterwards).
    std::optional<PaMultiset> Value;
    /// Lazily materialized value-ordered PaId view (same guarding).
    std::optional<std::vector<PaId>> Order;
  };

  Shard<Store> StoreShards[NumShards];
  Shard<PendingAsync> PaShards[NumShards];
  Shard<PaSetItem> PaSetShards[NumShards];
  /// Config identity is the exact (StoreId, PaSetId) pair, so the bucket
  /// map is keyed directly by the packed pair (no collision chains).
  struct ConfigShard {
    mutable std::mutex M;
    std::unordered_map<uint64_t, uint32_t> Index;
    std::deque<std::pair<StoreId, PaSetId>> Items;
  };
  ConfigShard ConfigShards[NumShards];

  PaSetId EmptyPaSet = InvalidId;

  mutable std::atomic<size_t> Lookups{0};
  mutable std::atomic<size_t> Hits{0};

  static size_t hashPaCountVec(const PaCountVec &Vec);
  PaMultiset materialize(const PaCountVec &Vec);
};

/// A set of explored configurations over a shared arena: the interned
/// universe handed to the mover / refinement / IS checkers.
struct StateSpace {
  std::shared_ptr<StateArena> Arena;
  std::vector<ConfigId> Configs;
};

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_STATEARENA_H
