//===- engine/StateGraph.h - Parallel frontier exploration -------*- C++ -*-===//
///
/// \file
/// The shared state-space core: a breadth-first expansion of a program's
/// configuration graph over interned ConfigIds. One engine serves every
/// enumeration-based check in the system (Explorer, mover checks, IS
/// conditions, refinement cross-checks).
///
/// The exploration is level-synchronous: each BFS level (frontier) is
/// expanded by N worker threads into per-node successor lists, then a
/// serial merge interns new nodes in (frontier position, successor
/// enumeration) order. Because that order is exactly the order the
/// classical FIFO BFS discovers nodes, the node list, failure verdict,
/// counterexample trace and truncation point are bit-identical for every
/// thread count — parallelism changes wall time, never answers.
///
/// Thread safety: workers intern through the sharded StateArena and the
/// interned caches; the seen-index is written only by the serial merge and
/// read (immutably) by workers for early duplicate pruning.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_STATEGRAPH_H
#define ISQ_ENGINE_STATEGRAPH_H

#include "engine/EngineConfig.h"
#include "engine/StateArena.h"
#include "semantics/Program.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace isq {
namespace engine {

/// Knobs for exploreGraph(). Mirrors ExploreOptions plus the engine
/// configuration.
struct EngineOptions {
  size_t MaxConfigurations = 2'000'000;
  bool StopAtFirstFailure = false;
  bool RecordParents = true;
  /// Threads, symmetry, work stealing, steal granularity, store shape.
  /// Results are identical for every setting (see engine/EngineConfig.h).
  EngineConfig Config;
};

/// Observability counters for one engine run (plus arena totals at the end
/// of the run when the arena is shared).
struct EngineStats {
  size_t NumConfigurations = 0;
  size_t NumTransitions = 0;
  bool Truncated = false;

  // Hash-consing (arena occupancy and hit rate at end of run).
  size_t InternedStores = 0;
  size_t InternedPas = 0;
  size_t InternedPaSets = 0;
  size_t InternedConfigs = 0;
  size_t HashConsLookups = 0;
  size_t HashConsHits = 0;

  // Transition memoization.
  size_t TransitionCacheLookups = 0;
  size_t TransitionCacheHits = 0;

  // Symmetry reduction. OrbitStatesRepresented is Σ orbit sizes over the
  // explored representatives — the number of unreduced configurations the
  // quotient graph stands for (equals NumConfigurations when reduction is
  // off or the program is asymmetric).
  bool SymmetryReduced = false;
  size_t CanonCalls = 0;
  size_t CanonCacheHits = 0;
  size_t OrbitStatesRepresented = 0;

  size_t FrontierPeak = 0;
  unsigned Threads = 1;

  // Work-stealing frontier. Steals counts chunks taken from another
  // worker's deque; it is scheduling telemetry (nondeterministic across
  // runs at > 1 thread), unlike every count above.
  bool WorkStealing = false;
  unsigned StealChunk = 0;
  size_t Steals = 0;

  // Compact state store. Shards is the configured arena shard count;
  // ShardOccupancy the number of non-empty configuration shards at end of
  // run; CompressedBytes the total encoded size of compressed stores and
  // PA-bags (0 when compression is off; telemetry — varint lengths of
  // PA handles depend on interning order).
  unsigned Shards = 0;
  unsigned ShardOccupancy = 0;
  size_t CompressedBytes = 0;

  // Tiered store (--engine spill=true). BytesHot/BytesCold are the hot
  // encoded bytes and cold segment bytes at end of run; the eviction and
  // fault counters are telemetry (eviction timing depends on allocation
  // order across threads), never inputs to a verdict.
  bool SpillEnabled = false;
  uint64_t MemBudget = 0;
  uint64_t BytesHot = 0;
  uint64_t BytesCold = 0;
  uint64_t BlocksEvicted = 0;
  uint64_t BlocksFaulted = 0;
  uint64_t FaultStallNanos = 0;

  // Per-phase wall time (support/Timer).
  double ExpandSeconds = 0;
  double MergeSeconds = 0;
  double TotalSeconds = 0;

  /// Fraction of intern calls that found an existing entry.
  double hashConsHitRate() const {
    return HashConsLookups ? static_cast<double>(HashConsHits) /
                                 static_cast<double>(HashConsLookups)
                           : 0.0;
  }
  /// Fraction of transition enumerations answered from cache.
  double transitionCacheHitRate() const {
    return TransitionCacheLookups
               ? static_cast<double>(TransitionCacheHits) /
                     static_cast<double>(TransitionCacheLookups)
               : 0.0;
  }
  /// Fraction of canonicalization requests answered from the orbit memo.
  double canonHitRate() const {
    return CanonCalls ? static_cast<double>(CanonCacheHits) /
                            static_cast<double>(CanonCalls)
                      : 0.0;
  }

  /// Merges \p Other into this (sums counters, maxes peaks, ors flags).
  void accumulate(const EngineStats &Other);

  /// One-line human-readable rendering for drivers and tools.
  std::string str() const;
};

/// The result of one exploration: reachable nodes in deterministic BFS
/// order plus parent links, failure, terminal and deadlock information,
/// all expressed over the shared arena.
class StateGraph {
public:
  /// Parent link of a node: the node index it was first discovered from
  /// and the PA whose execution discovered it. Parent == UINT32_MAX for
  /// roots. Populated only when EngineOptions::RecordParents.
  struct Link {
    uint32_t Parent = UINT32_MAX;
    PaId Via = InvalidId;
  };

  StateArena &arena() { return *Arena; }
  const StateArena &arena() const { return *Arena; }
  const std::shared_ptr<StateArena> &arenaPtr() const { return Arena; }

  /// Reachable non-failure configurations in BFS order.
  const std::vector<ConfigId> &nodes() const { return Nodes; }
  /// Parent links, index-aligned with nodes().
  const std::vector<Link> &links() const { return Links; }

  bool failureReachable() const { return FailureAt.has_value(); }
  /// The first failing step in BFS order: (node index, failing PA).
  const std::optional<std::pair<uint32_t, PaId>> &failureAt() const {
    return FailureAt;
  }

  /// Distinct final stores of terminating executions, in discovery order.
  const std::vector<StoreId> &terminalStores() const { return Terminals; }
  /// Node indices of reachable non-terminating dead ends.
  const std::vector<uint32_t> &deadlockNodes() const { return Deadlocks; }

  /// Orbit size of each node, index-aligned with nodes(). Empty when the
  /// run was unreduced (every orbit is then a singleton).
  const std::vector<uint32_t> &orbitSizes() const { return OrbitSizes; }

  const EngineStats &stats() const { return Stats; }

  /// The view of this graph's nodes as a checker universe.
  StateSpace space() const { return {Arena, Nodes}; }

private:
  /// Mutable access for the exploration engine (defined in StateGraph.cpp).
  friend struct GraphAccess;

  std::shared_ptr<StateArena> Arena;
  std::vector<ConfigId> Nodes;
  std::vector<Link> Links;
  std::optional<std::pair<uint32_t, PaId>> FailureAt;
  std::vector<StoreId> Terminals;
  std::vector<uint32_t> Deadlocks;
  std::vector<uint32_t> OrbitSizes;
  EngineStats Stats;
};

/// Explores all configurations reachable from \p Inits under \p P,
/// interning into \p Arena (a fresh arena is created when null). Passing
/// one arena to several explorations (e.g. P and P[M ↦ I]) shares every
/// interned store and multiset between them; ConfigIds then identify equal
/// configurations across the runs.
StateGraph exploreGraph(const Program &P,
                        const std::vector<Configuration> &Inits,
                        std::shared_ptr<StateArena> Arena = nullptr,
                        const EngineOptions &Opts = EngineOptions());

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_STATEGRAPH_H
