//===- engine/ColdStore.cpp - mmap-backed cold tier for spilled blocks --------===//

#include "engine/ColdStore.h"

#include <cerrno>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <memory>
#include <stdexcept>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace isq;
using namespace isq::engine;

namespace {

constexpr uint32_t RecordMagic = 0x42515349; // "ISQB"
constexpr char SegmentMagic[8] = {'I', 'S', 'Q', 'S', 'E', 'G', '0', '1'};
constexpr uint64_t SegmentHeaderSize = 16;
constexpr uint64_t RecordHeaderSize = 24;

/// Same mixing as the ObligationCache's record checksum: framing alone
/// cannot catch interior corruption, so every record carries a 64-bit
/// checksum over its ends table and payload, verified before the first
/// decode. Absorbed little-endian, so segments are endianness-portable.
uint64_t recordChecksum(const char *Data, size_t Size) {
  uint64_t H = 0x9e3779b97f4a7c15ULL ^ Size;
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t V = 0;
    for (unsigned B = 0; B < 8; ++B)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[I + B]))
           << (8 * B);
    H = (H ^ V) * 0xc6a4a7935bd1e995ULL;
    H ^= H >> 29;
  }
  uint64_t Tail = 0;
  for (unsigned B = 0; I < Size; ++I, B += 8)
    Tail |= static_cast<uint64_t>(static_cast<unsigned char>(Data[I])) << B;
  H = (H ^ Tail) * 0xc6a4a7935bd1e995ULL;
  H ^= H >> 32;
  return H;
}

void putU32(std::string &Out, uint32_t V) {
  for (unsigned B = 0; B < 4; ++B)
    Out.push_back(static_cast<char>((V >> (8 * B)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (unsigned B = 0; B < 8; ++B)
    Out.push_back(static_cast<char>((V >> (8 * B)) & 0xff));
}

uint32_t readU32(const char *P) {
  uint32_t V;
  std::memcpy(&V, P, sizeof(V));
  return V;
}

uint64_t readU64(const char *P) {
  uint64_t V;
  std::memcpy(&V, P, sizeof(V));
  return V;
}

bool pwriteAll(int Fd, const char *Data, size_t Size, uint64_t Offset) {
  while (Size) {
    ssize_t W = ::pwrite(Fd, Data, Size, static_cast<off_t>(Offset));
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += W;
    Size -= static_cast<size_t>(W);
    Offset += static_cast<uint64_t>(W);
  }
  return true;
}

bool makeDirs(const std::string &Path) {
  // mkdir -p: create every prefix, tolerating ones that already exist.
  for (size_t Pos = 1; Pos <= Path.size(); ++Pos) {
    if (Pos != Path.size() && Path[Pos] != '/')
      continue;
    std::string Prefix = Path.substr(0, Pos);
    if (::mkdir(Prefix.c_str(), 0755) != 0 && errno != EEXIST)
      return false;
  }
  return true;
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

} // namespace

ColdStore::ColdStore(std::string D) : Dir(std::move(D)) {
  if (!makeDirs(Dir))
    throw std::runtime_error("spill: cannot create directory '" + Dir +
                             "': " + std::strerror(errno));
  // Spill segments are per-run scratch: a leftover from an interrupted
  // run holds ids meaningless to this arena, so clean it up front.
  if (DIR *Handle = ::opendir(Dir.c_str())) {
    std::vector<std::string> Stale;
    while (struct dirent *Entry = ::readdir(Handle)) {
      std::string Name = Entry->d_name;
      if (endsWith(Name, ".isqseg"))
        Stale.push_back(Dir + "/" + Name);
    }
    ::closedir(Handle);
    for (const std::string &Path : Stale)
      ::unlink(Path.c_str());
  }
}

ColdStore::~ColdStore() {
  for (size_t I = 0; I < MaxSegments; ++I) {
    Segment *Seg = Segments[I].load(std::memory_order_relaxed);
    if (!Seg)
      continue;
    if (Seg->Map)
      ::munmap(const_cast<char *>(Seg->Map), SegmentCapacity);
    if (Seg->Fd >= 0)
      ::close(Seg->Fd);
    ::unlink(Seg->Path.c_str());
    delete Seg;
  }
  // Best-effort: leave no empty per-arena directory behind (fails
  // harmlessly when something else put files there).
  ::rmdir(Dir.c_str());
}

ColdStore::Segment *ColdStore::openSegment(size_t Index) {
  if (Index >= MaxSegments)
    throw std::runtime_error("spill: segment capacity exhausted in '" + Dir +
                             "'");
  auto Seg = std::make_unique<Segment>();
  Seg->Path = Dir + "/seg-" + std::to_string(Index) + ".isqseg";
  Seg->Fd = ::open(Seg->Path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (Seg->Fd < 0)
    throw std::runtime_error("spill: cannot create segment '" + Seg->Path +
                             "': " + std::strerror(errno));
  if (::ftruncate(Seg->Fd, static_cast<off_t>(SegmentCapacity)) != 0) {
    std::string Err = std::strerror(errno);
    ::close(Seg->Fd);
    ::unlink(Seg->Path.c_str());
    throw std::runtime_error("spill: cannot size segment '" + Seg->Path +
                             "': " + Err);
  }
  std::string Header(SegmentMagic, sizeof(SegmentMagic));
  putU32(Header, FormatVersion);
  putU32(Header, 0); // pad to 16 bytes so records start 8-aligned
  if (!pwriteAll(Seg->Fd, Header.data(), Header.size(), 0))
    throw std::runtime_error("spill: cannot write segment header to '" +
                             Seg->Path + "'");
  void *Map = ::mmap(nullptr, SegmentCapacity, PROT_READ, MAP_SHARED,
                     Seg->Fd, 0);
  if (Map == MAP_FAILED)
    throw std::runtime_error("spill: cannot map segment '" + Seg->Path +
                             "': " + std::strerror(errno));
  Seg->Map = static_cast<const char *>(Map);
  Segment *Raw = Seg.release();
  // Release: readers that acquire the pointer (via a BlockRef published
  // after this store) see the complete, mapped segment.
  Segments[Index].store(Raw, std::memory_order_release);
  return Raw;
}

ColdStore::BlockRef ColdStore::appendBlock(const std::vector<uint32_t> &Ends,
                                           const char *Payload,
                                           uint64_t PayloadLen) {
  std::string Record;
  Record.reserve(RecordHeaderSize + Ends.size() * 4 + PayloadLen);
  putU32(Record, RecordMagic);
  putU32(Record, static_cast<uint32_t>(Ends.size()));
  putU64(Record, PayloadLen);
  putU64(Record, 0); // checksum patched below
  for (uint32_t End : Ends)
    putU32(Record, End);
  Record.append(Payload, PayloadLen);
  uint64_t Sum = recordChecksum(Record.data() + RecordHeaderSize,
                                Record.size() - RecordHeaderSize);
  std::string SumBytes;
  putU64(SumBytes, Sum);
  Record.replace(16, 8, SumBytes);

  if (Record.size() > SegmentCapacity - SegmentHeaderSize)
    throw std::runtime_error("spill: block record of " +
                             std::to_string(Record.size()) +
                             " bytes exceeds the segment capacity");
  Segment *Seg = Segments[CurSegment].load(std::memory_order_relaxed);
  if (!Seg || CurOffset + Record.size() > SegmentCapacity) {
    if (Seg)
      ++CurSegment;
    Seg = openSegment(CurSegment);
    CurOffset = SegmentHeaderSize;
  }
  if (!pwriteAll(Seg->Fd, Record.data(), Record.size(), CurOffset))
    throw std::runtime_error("spill: write to segment '" + Seg->Path +
                             "' failed: " + std::strerror(errno));
  BlockRef Ref;
  Ref.Segment = static_cast<uint32_t>(CurSegment);
  Ref.Offset = CurOffset;
  Ref.Length = Record.size();
  // Keep records 8-aligned so the mapped ends table is directly
  // addressable as uint32_t[].
  CurOffset += (Record.size() + 7) & ~uint64_t(7);
  BytesWritten.fetch_add(Record.size(), std::memory_order_relaxed);
  return Ref;
}

ColdStore::MappedBlock ColdStore::map(const BlockRef &Ref, bool Verify) const {
  Segment *Seg = Ref.Segment < MaxSegments
                     ? Segments[Ref.Segment].load(std::memory_order_acquire)
                     : nullptr;
  if (!Seg || Ref.Offset < SegmentHeaderSize ||
      Ref.Offset + Ref.Length > SegmentCapacity ||
      Ref.Length < RecordHeaderSize)
    throw std::runtime_error("spill: block reference outside segment bounds");
  if (Verify) {
    // Check the on-disk size before touching the mapping: pages past a
    // truncated end would SIGBUS, so truncation must be caught here and
    // become a clean diagnostic.
    struct stat St;
    if (::fstat(Seg->Fd, &St) != 0 ||
        static_cast<uint64_t>(St.st_size) < Ref.Offset + Ref.Length)
      throw std::runtime_error("spill: segment '" + Seg->Path +
                               "' is truncated");
  }
  const char *Base = Seg->Map + Ref.Offset;
  uint32_t Count = readU32(Base + 4);
  uint64_t PayloadLen = readU64(Base + 8);
  if (Verify) {
    if (readU32(Base) != RecordMagic ||
        RecordHeaderSize + static_cast<uint64_t>(Count) * 4 + PayloadLen !=
            Ref.Length)
      throw std::runtime_error("spill: corrupt block header in segment '" +
                               Seg->Path + "'");
    uint64_t Sum = recordChecksum(Base + RecordHeaderSize,
                                  Ref.Length - RecordHeaderSize);
    if (Sum != readU64(Base + 16))
      throw std::runtime_error("spill: checksum mismatch in segment '" +
                               Seg->Path + "' (corrupted spill data)");
  }
  MappedBlock Out;
  Out.Count = Count;
  Out.Ends = reinterpret_cast<const uint32_t *>(Base + RecordHeaderSize);
  Out.Payload = Base + RecordHeaderSize + static_cast<uint64_t>(Count) * 4;
  Out.PayloadLen = PayloadLen;
  return Out;
}
