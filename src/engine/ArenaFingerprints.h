//===- engine/ArenaFingerprints.h - Memoized arena fingerprints --*- C++ -*-===//
///
/// \file
/// Content fingerprints for interned state, memoized per handle. The
/// obligation cache keys every scheduler slice by the *content* of the
/// interned stores/PAs/Ω-multisets the slice quantifies over
/// (semantics/Fingerprint.h explains why handles themselves are
/// unusable), and the same handle recurs across thousands of slices —
/// every co-pending pair in a configuration shares its store, every
/// context in a refinement universe shares most of its Ω's. This memo
/// computes each handle's fingerprint once and serves every later ask
/// with a lock-free probe.
///
/// Thread-safe under the same contract as the checker caches it sits
/// beside: fingerprinting is pure, so a racing double-compute produces
/// the identical value and FlatMemo keeps whichever insert wins.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_ARENAFINGERPRINTS_H
#define ISQ_ENGINE_ARENAFINGERPRINTS_H

#include "engine/ActionCaches.h"
#include "engine/StateArena.h"
#include "semantics/Fingerprint.h"

namespace isq {
namespace engine {

/// Handle → content fingerprint, memoized over one arena. The arena must
/// outlive the memo; entries are valid for the arena's lifetime (interned
/// state is immutable).
class ArenaFingerprints {
public:
  explicit ArenaFingerprints(StateArena &Arena) : Arena(Arena) {}

  Fingerprint store(StoreId Id) {
    if (const Fingerprint *F = Stores.find(Id, Id))
      return *F;
    return Stores.insertWith(Id, Id,
                             [&] { return fingerprintStore(Arena.store(Id)); });
  }

  Fingerprint pa(PaId Id) {
    if (const Fingerprint *F = Pas.find(Id, Id))
      return *F;
    return Pas.insertWith(
        Id, Id, [&] { return fingerprintPendingAsync(Arena.pa(Id)); });
  }

  Fingerprint paSet(PaSetId Id) {
    if (const Fingerprint *F = PaSets.find(Id, Id))
      return *F;
    return PaSets.insertWith(
        Id, Id, [&] { return fingerprintPaMultiset(Arena.paSet(Id)); });
  }

  /// Matches fingerprintConfiguration of the same (non-failure) content.
  Fingerprint config(ConfigId Id) {
    if (const Fingerprint *F = Configs.find(Id, Id))
      return *F;
    return Configs.insertWith(Id, Id, [&] {
      auto [G, Omega] = Arena.config(Id);
      FpHasher H("config/v1");
      H.boolean(false); // interned configurations are never failures
      H.fp(store(G));
      H.fp(paSet(Omega));
      return H.finish();
    });
  }

  StateArena &arena() { return Arena; }

private:
  StateArena &Arena;
  FlatMemo<StoreId, Fingerprint> Stores;
  FlatMemo<PaId, Fingerprint> Pas;
  FlatMemo<PaSetId, Fingerprint> PaSets;
  FlatMemo<ConfigId, Fingerprint> Configs;
};

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_ARENAFINGERPRINTS_H
