//===- engine/ActionCaches.h - Interned transition/gate caches ---*- C++ -*-===//
///
/// \file
/// Memoization layers over interned state, replacing the value-keyed
/// semantics/ActionCache.h in every engine consumer. Keys are (action
/// identity, StoreId, PaId-of-args) triples — three integer-width values —
/// so lookups cost a small hash of machine words instead of deep structural
/// hashing of stores and argument tuples. Cached transitions are interned:
/// the successor store and created-PA multiset are handles, which makes
/// transition-set membership (the inner loop of the mover and IS checks)
/// an integer compare.
///
/// Transition relations never observe Ω and are pure functions of
/// (g, args), which is what makes both caches sound (the same contract
/// semantics/ActionCache.h relies on). User-supplied transition enumerators
/// are not required to be thread-safe: cache misses serialize the
/// underlying calls behind a single compute mutex, unless the action
/// declares Action::transitionsThreadSafe().
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_ACTIONCACHES_H
#define ISQ_ENGINE_ACTIONCACHES_H

#include "engine/StateArena.h"
#include "semantics/Action.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <mutex>
#include <vector>

namespace isq {
namespace engine {

/// Insert-only open-addressing memo with lock-free reads.
///
/// The checker's shared caches are read tens of millions of times but
/// written once per distinct key (misses are ~10% of lookups and already
/// pay a full evaluation), so the read path must not take a lock or chase
/// unordered_map buckets. Each slot publishes a nonzero 64-bit tag with
/// release order after its key/value are written; readers probe with
/// acquire loads and never block. Inserts serialize behind a single
/// mutex. Growth copies live slots into a fresh table and swaps an atomic
/// table pointer; superseded tables are retired until destruction so
/// in-flight readers can finish probing them. A reader probing a stale
/// table at worst misses a freshly inserted entry, re-evaluates the pure
/// function, and finds the existing entry under the insert lock — the
/// same benign double-compute the locked design allowed.
template <typename KeyT, typename ValueT> class FlatMemo {
public:
  FlatMemo() : TableP(new Table(InitialCap)) {}
  ~FlatMemo() {
    delete TableP.load(std::memory_order_relaxed);
    for (Table *T : Retired)
      delete T;
  }
  FlatMemo(const FlatMemo &) = delete;
  FlatMemo &operator=(const FlatMemo &) = delete;

  /// Lock-free lookup; returns nullptr on miss.
  const ValueT *find(const KeyT &K, uint64_t Hash) const {
    Hash = mix(Hash);
    const Table *T = TableP.load(std::memory_order_acquire);
    uint64_t Tag = Hash | TopBit;
    for (size_t I = Hash & T->Mask;; I = (I + 1) & T->Mask) {
      const Slot &S = T->Slots[I];
      uint64_t Tg = S.Tag.load(std::memory_order_acquire);
      if (Tg == 0)
        return nullptr;
      if (Tg == Tag && S.K == K)
        return &S.V;
    }
  }

  /// Inserts Make() under the insert lock unless \p K raced in; returns
  /// the stored value either way. Make is only invoked on a genuine
  /// insert, while the lock is held.
  template <typename MakeV>
  const ValueT &insertWith(const KeyT &K, uint64_t Hash, MakeV Make) {
    Hash = mix(Hash);
    std::lock_guard<std::mutex> Lock(M);
    Table *T = TableP.load(std::memory_order_relaxed);
    if ((Size + 1) * 5 > T->Cap * 3) { // keep occupancy under 60%
      Table *N = new Table(T->Cap * 2);
      for (size_t I = 0; I < T->Cap; ++I) {
        Slot &S = T->Slots[I];
        if (uint64_t Tg = S.Tag.load(std::memory_order_relaxed))
          N->place(Tg, S.K, S.V);
      }
      Retired.push_back(T);
      // Publishes every (relaxed) write to N above: readers acquire the
      // table pointer before touching slots.
      TableP.store(N, std::memory_order_release);
      T = N;
    }
    uint64_t Tag = Hash | TopBit;
    for (size_t I = Hash & T->Mask;; I = (I + 1) & T->Mask) {
      Slot &S = T->Slots[I];
      uint64_t Tg = S.Tag.load(std::memory_order_relaxed);
      if (Tg == Tag && S.K == K)
        return S.V; // racing miss computed the same pure value
      if (Tg == 0) {
        S.K = K;
        S.V = Make();
        S.Tag.store(Tag, std::memory_order_release);
        ++Size;
        return S.V;
      }
    }
  }

  const ValueT &insert(const KeyT &K, uint64_t Hash, ValueT V) {
    return insertWith(K, Hash, [&]() { return V; });
  }

private:
  // The tag is the mixed hash with the top bit forced on: nonzero marks
  // the slot live, and the untouched low bits keep the probe start
  // aligned with the hash so growth can re-place slots from tags alone.
  static constexpr uint64_t TopBit = uint64_t(1) << 63;
  static constexpr size_t InitialCap = 1024;

  /// Murmur3 finalizer. Caller hashes combine structured, near-sequential
  /// ids whose low bits cluster badly under a power-of-two mask (a prime
  /// modulus map forgives that; open addressing does not), so the table
  /// avalanches every probe start itself.
  static uint64_t mix(uint64_t X) {
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdULL;
    X ^= X >> 33;
    X *= 0xc4ceb9fe1a85ec53ULL;
    X ^= X >> 33;
    return X;
  }

  struct Slot {
    std::atomic<uint64_t> Tag{0};
    KeyT K;
    ValueT V;
  };
  struct Table {
    explicit Table(size_t C) : Cap(C), Mask(C - 1), Slots(new Slot[C]) {}
    ~Table() { delete[] Slots; }
    /// Pre-publication placement during growth; the release store of the
    /// table pointer orders these writes for readers.
    void place(uint64_t Tg, const KeyT &K, const ValueT &V) {
      for (size_t I = Tg & Mask;; I = (I + 1) & Mask) {
        Slot &S = Slots[I];
        if (S.Tag.load(std::memory_order_relaxed) == 0) {
          S.K = K;
          S.V = V;
          S.Tag.store(Tg, std::memory_order_relaxed);
          return;
        }
      }
    }
    size_t Cap;
    size_t Mask;
    Slot *Slots;
  };

  std::atomic<Table *> TableP;
  std::mutex M;       // serializes inserts and growth
  size_t Size = 0;    // guarded by M
  std::vector<Table *> Retired; // guarded by M; freed at destruction
};

/// One interned element of a transition relation.
struct InternedTransition {
  /// Successor global store g'.
  StoreId Global;
  /// The created PAs as an interned multiset (for equality compares).
  PaSetId CreatedSet;
  /// The created PAs in engine form (for successor-Ω merging).
  PaCountVec Created;
};

/// Memoizes Action::transitions per (action instance, StoreId, args PaId)
/// in interned form. The referenced actions and arena must outlive the
/// cache. Thread-safe; concurrent misses for distinct keys serialize the
/// user-level enumerator calls.
class InternedTransitionCache {
public:
  explicit InternedTransitionCache(StateArena &Arena) : Arena(Arena) {}

  /// Returns (and memoizes) \p A's transitions from (\p G, args of
  /// \p ArgsPa). Only the argument tuple of \p ArgsPa is used; its action
  /// symbol need not match \p A (abstractions run under the subject's PA).
  const std::vector<InternedTransition> &get(const Action &A, StoreId G,
                                             PaId ArgsPa) {
    uint64_t Sub = (static_cast<uint64_t>(G) << 32) | ArgsPa;
    Key K{&A, Sub};
    uint64_t Hash = hashKey(K);
    Lookups.fetch_add(1, std::memory_order_relaxed);
    if (const auto *Found = Memo.find(K, Hash)) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return **Found;
    }
    // Miss: enumerate, intern, then publish. Enumerators that do not
    // declare themselves thread-safe may share internal memo state and are
    // serialized under the compute mutex; thread-safe ones (compiled ASL
    // actions, derived schedule invariants) enumerate concurrently.
    std::vector<InternedTransition> Interned;
    {
      std::unique_lock<std::mutex> Compute(ComputeMutex, std::defer_lock);
      if (!A.transitionsThreadSafe())
        Compute.lock();
      const Store &Global = Arena.store(G);
      const std::vector<Value> &Args = Arena.pa(ArgsPa).Args;
      for (const Transition &T : A.transitions(Global, Args)) {
        InternedTransition IT;
        IT.Global = Arena.internStore(T.Global);
        PaCountVec Created;
        Created.reserve(T.Created.size());
        for (const PendingAsync &New : T.Created) {
          PaId Id = Arena.internPa(New);
          bool Merged = false;
          for (auto &[Existing, Count] : Created)
            if (Existing == Id) {
              ++Count;
              Merged = true;
              break;
            }
          if (!Merged)
            Created.emplace_back(Id, 1);
        }
        std::sort(Created.begin(), Created.end());
        IT.CreatedSet = Arena.internPaVec(Created);
        IT.Created = std::move(Created);
        Interned.push_back(std::move(IT));
      }
    }
    // The deque is only mutated here, under the memo's insert lock, and
    // deque growth never moves settled elements, so published pointers
    // stay valid. A racing double-compute keeps the first entry.
    return *Memo.insertWith(K, Hash, [&]() {
      Storage.push_back(std::move(Interned));
      return &Storage.back();
    });
  }

  size_t lookups() const { return Lookups.load(std::memory_order_relaxed); }
  size_t hits() const { return Hits.load(std::memory_order_relaxed); }

private:
  struct Key {
    const void *Action;
    uint64_t Sub; // (StoreId << 32) | ArgsPa
    bool operator==(const Key &O) const {
      return Action == O.Action && Sub == O.Sub;
    }
  };
  static uint64_t hashKey(const Key &K) {
    size_t Seed = reinterpret_cast<size_t>(K.Action);
    hashCombine(Seed, static_cast<size_t>(K.Sub));
    return Seed;
  }

  StateArena &Arena;
  FlatMemo<Key, std::vector<InternedTransition> *> Memo;
  /// Backing storage for the interned transition vectors; mutated only
  /// under the memo's insert lock.
  std::deque<std::vector<InternedTransition>> Storage;
  /// Serializes calls into user transition enumerators.
  std::mutex ComputeMutex;
  std::atomic<size_t> Lookups{0};
  std::atomic<size_t> Hits{0};
};

/// Memoizes Ω-independent gate evaluations per (action instance, StoreId,
/// args PaId). Callers must only use this for actions with
/// gateReadsOmega() == false; Ω-observing gates must be evaluated
/// directly. Thread-safe; a racing double-compute is benign (gates are
/// pure functions of (g, args) under the contract).
class GateCache {
public:
  explicit GateCache(StateArena &Arena) : Arena(Arena) {}

  /// Evaluates (and memoizes) \p A's gate at (\p G, args of \p ArgsPa).
  /// \p OmegaForEval is passed through to the gate on a miss — the result
  /// must not depend on it (gateReadsOmega() == false).
  bool get(const Action &A, StoreId G, PaId ArgsPa,
           const PaMultiset &OmegaForEval) {
    assert(!A.gateReadsOmega() && "GateCache requires an Ω-independent gate");
    uint64_t Sub = (static_cast<uint64_t>(G) << 32) | ArgsPa;
    Key K{&A, Sub};
    uint64_t Hash = hashKey(K);
    if (const bool *Found = Memo.find(K, Hash))
      return *Found;
    bool Result =
        A.evalGate(Arena.store(G), Arena.pa(ArgsPa).Args, OmegaForEval);
    return Memo.insert(K, Hash, Result);
  }

private:
  struct Key {
    const void *Action;
    uint64_t Sub;
    bool operator==(const Key &O) const {
      return Action == O.Action && Sub == O.Sub;
    }
  };
  static uint64_t hashKey(const Key &K) {
    size_t Seed = reinterpret_cast<size_t>(K.Action);
    hashCombine(Seed, static_cast<size_t>(K.Sub));
    return Seed;
  }

  StateArena &Arena;
  FlatMemo<Key, bool> Memo;
};

/// Memoizes Ω-observing gate evaluations per (action instance, StoreId,
/// args PaId, PaSetId of Ω). Gates are pure functions of (g, args, Ω) under
/// the action contract, so keying on the interned Ω extends GateCache to
/// exactly the gates it must refuse. The checker evaluates the same
/// (gate, configuration) point once per mover pair and once per condition;
/// this cache collapses those repeats into a single interpreter run.
/// Thread-safe; a racing double-compute is benign (purity).
class OmegaGateCache {
public:
  explicit OmegaGateCache(StateArena &Arena) : Arena(Arena) {}

  /// Evaluates (and memoizes) \p A's gate at (\p G, args of \p ArgsPa,
  /// multiset of \p Omega).
  bool get(const Action &A, StoreId G, PaId ArgsPa, PaSetId Omega) {
    Key K{&A, (static_cast<uint64_t>(G) << 32) | ArgsPa, Omega};
    uint64_t Hash = hashKey(K);
    Lookups.fetch_add(1, std::memory_order_relaxed);
    if (const bool *Found = Memo.find(K, Hash)) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return *Found;
    }
    bool Result =
        A.evalGate(Arena.store(G), Arena.pa(ArgsPa).Args, Arena.paSet(Omega));
    return Memo.insert(K, Hash, Result);
  }

  size_t lookups() const { return Lookups.load(std::memory_order_relaxed); }
  size_t hits() const { return Hits.load(std::memory_order_relaxed); }

private:
  struct Key {
    const void *Action;
    uint64_t Sub; // (StoreId << 32) | ArgsPa
    PaSetId Omega;
    bool operator==(const Key &O) const {
      return Action == O.Action && Sub == O.Sub && Omega == O.Omega;
    }
  };
  static uint64_t hashKey(const Key &K) {
    size_t Seed = reinterpret_cast<size_t>(K.Action);
    hashCombine(Seed, static_cast<size_t>(K.Sub));
    hashCombine(Seed, static_cast<size_t>(K.Omega));
    return Seed;
  }

  StateArena &Arena;
  FlatMemo<Key, bool> Memo;
  std::atomic<size_t> Lookups{0};
  std::atomic<size_t> Hits{0};
};

/// Memoizes interned successor multisets Ω − executed ⊎ created, keyed on
/// the interned triple (Ω, executed PA, created multiset). Every mover
/// pair and every cooperation obligation re-derives the Ω that holds
/// after a step; distinct Ω's are far fewer than configurations, so the
/// multiset arithmetic and the arena intern amortize across every
/// configuration sharing an Ω. Thread-safe; a racing double-compute
/// interns the same id (interning is idempotent).
class SuccessorOmegaCache {
public:
  explicit SuccessorOmegaCache(StateArena &Arena) : Arena(Arena) {}

  /// Returns the interned multiset of \p Omega with one \p Executed
  /// removed and \p T's created PAs added.
  PaSetId get(PaSetId Omega, PaId Executed, const InternedTransition &T) {
    Key K{(static_cast<uint64_t>(Omega) << 32) | Executed, T.CreatedSet};
    uint64_t Hash = hashKey(K);
    if (const PaSetId *Found = Memo.find(K, Hash))
      return *Found;
    PaCountVec Rest(Arena.paVec(Omega));
    paCountVecErase(Rest, Executed);
    return Memo.insert(K, Hash,
                       Arena.internPaVec(paCountVecUnion(Rest, T.Created)));
  }

private:
  struct Key {
    uint64_t OmegaExec; // (Omega << 32) | Executed
    PaSetId Created;
    bool operator==(const Key &O) const {
      return OmegaExec == O.OmegaExec && Created == O.Created;
    }
  };
  static uint64_t hashKey(const Key &K) {
    size_t Seed = static_cast<size_t>(K.OmegaExec);
    hashCombine(Seed, static_cast<size_t>(K.Created));
    return Seed;
  }

  StateArena &Arena;
  FlatMemo<Key, PaSetId> Memo;
};

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_ACTIONCACHES_H
