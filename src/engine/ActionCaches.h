//===- engine/ActionCaches.h - Interned transition/gate caches ---*- C++ -*-===//
///
/// \file
/// Memoization layers over interned state, replacing the value-keyed
/// semantics/ActionCache.h in every engine consumer. Keys are (action
/// identity, StoreId, PaId-of-args) triples — three integer-width values —
/// so lookups cost a small hash of machine words instead of deep structural
/// hashing of stores and argument tuples. Cached transitions are interned:
/// the successor store and created-PA multiset are handles, which makes
/// transition-set membership (the inner loop of the mover and IS checks)
/// an integer compare.
///
/// Transition relations never observe Ω and are pure functions of
/// (g, args), which is what makes both caches sound (the same contract
/// semantics/ActionCache.h relies on). User-supplied transition enumerators
/// are not required to be thread-safe: cache misses serialize the
/// underlying calls behind a single compute mutex, unless the action
/// declares Action::transitionsThreadSafe().
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_ACTIONCACHES_H
#define ISQ_ENGINE_ACTIONCACHES_H

#include "engine/StateArena.h"
#include "semantics/Action.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace isq {
namespace engine {

/// One interned element of a transition relation.
struct InternedTransition {
  /// Successor global store g'.
  StoreId Global;
  /// The created PAs as an interned multiset (for equality compares).
  PaSetId CreatedSet;
  /// The created PAs in engine form (for successor-Ω merging).
  PaCountVec Created;
};

/// Memoizes Action::transitions per (action instance, StoreId, args PaId)
/// in interned form. The referenced actions and arena must outlive the
/// cache. Thread-safe; concurrent misses for distinct keys serialize the
/// user-level enumerator calls.
class InternedTransitionCache {
public:
  explicit InternedTransitionCache(StateArena &Arena) : Arena(Arena) {}

  /// Returns (and memoizes) \p A's transitions from (\p G, args of
  /// \p ArgsPa). Only the argument tuple of \p ArgsPa is used; its action
  /// symbol need not match \p A (abstractions run under the subject's PA).
  const std::vector<InternedTransition> &get(const Action &A, StoreId G,
                                             PaId ArgsPa) {
    uint64_t Sub = (static_cast<uint64_t>(G) << 32) | ArgsPa;
    Key K{&A, Sub};
    size_t Hash = hashKey(K);
    auto &S = Shards[Hash % NumShards];
    Lookups.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Map.find(K);
      if (It != S.Map.end()) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        return *It->second;
      }
    }
    // Miss: enumerate, intern, then publish. Enumerators that do not
    // declare themselves thread-safe may share internal memo state and are
    // serialized under the compute mutex; thread-safe ones (compiled ASL
    // actions, derived schedule invariants) enumerate concurrently.
    std::vector<InternedTransition> Interned;
    {
      std::unique_lock<std::mutex> Compute(ComputeMutex, std::defer_lock);
      if (!A.transitionsThreadSafe())
        Compute.lock();
      const Store &Global = Arena.store(G);
      const std::vector<Value> &Args = Arena.pa(ArgsPa).Args;
      for (const Transition &T : A.transitions(Global, Args)) {
        InternedTransition IT;
        IT.Global = Arena.internStore(T.Global);
        PaCountVec Created;
        Created.reserve(T.Created.size());
        for (const PendingAsync &New : T.Created) {
          PaId Id = Arena.internPa(New);
          bool Merged = false;
          for (auto &[Existing, Count] : Created)
            if (Existing == Id) {
              ++Count;
              Merged = true;
              break;
            }
          if (!Merged)
            Created.emplace_back(Id, 1);
        }
        std::sort(Created.begin(), Created.end());
        IT.CreatedSet = Arena.internPaVec(Created);
        IT.Created = std::move(Created);
        Interned.push_back(std::move(IT));
      }
    }
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(K);
    if (It != S.Map.end()) // raced with another thread; keep the first
      return *It->second;
    S.Storage.push_back(std::move(Interned));
    S.Map.emplace(K, &S.Storage.back());
    return S.Storage.back();
  }

  size_t lookups() const { return Lookups.load(std::memory_order_relaxed); }
  size_t hits() const { return Hits.load(std::memory_order_relaxed); }

private:
  struct Key {
    const void *Action;
    uint64_t Sub; // (StoreId << 32) | ArgsPa
    bool operator==(const Key &O) const {
      return Action == O.Action && Sub == O.Sub;
    }
  };
  static size_t hashKey(const Key &K) {
    size_t Seed = reinterpret_cast<size_t>(K.Action);
    hashCombine(Seed, static_cast<size_t>(K.Sub));
    return Seed;
  }
  struct KeyHash {
    size_t operator()(const Key &K) const { return hashKey(K); }
  };

  static constexpr size_t NumShards = 16;
  struct Shard {
    std::mutex M;
    std::unordered_map<Key, std::vector<InternedTransition> *, KeyHash> Map;
    std::deque<std::vector<InternedTransition>> Storage;
  };

  StateArena &Arena;
  Shard Shards[NumShards];
  /// Serializes calls into user transition enumerators.
  std::mutex ComputeMutex;
  std::atomic<size_t> Lookups{0};
  std::atomic<size_t> Hits{0};
};

/// Memoizes Ω-independent gate evaluations per (action instance, StoreId,
/// args PaId). Callers must only use this for actions with
/// gateReadsOmega() == false; Ω-observing gates must be evaluated
/// directly. Thread-safe; a racing double-compute is benign (gates are
/// pure functions of (g, args) under the contract).
class GateCache {
public:
  explicit GateCache(StateArena &Arena) : Arena(Arena) {}

  /// Evaluates (and memoizes) \p A's gate at (\p G, args of \p ArgsPa).
  /// \p OmegaForEval is passed through to the gate on a miss — the result
  /// must not depend on it (gateReadsOmega() == false).
  bool get(const Action &A, StoreId G, PaId ArgsPa,
           const PaMultiset &OmegaForEval) {
    assert(!A.gateReadsOmega() && "GateCache requires an Ω-independent gate");
    uint64_t Sub = (static_cast<uint64_t>(G) << 32) | ArgsPa;
    Key K{&A, Sub};
    size_t Hash = hashKey(K);
    auto &S = Shards[Hash % NumShards];
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Map.find(K);
      if (It != S.Map.end())
        return It->second;
    }
    bool Result =
        A.evalGate(Arena.store(G), Arena.pa(ArgsPa).Args, OmegaForEval);
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.emplace(K, Result);
    return Result;
  }

private:
  struct Key {
    const void *Action;
    uint64_t Sub;
    bool operator==(const Key &O) const {
      return Action == O.Action && Sub == O.Sub;
    }
  };
  static size_t hashKey(const Key &K) {
    size_t Seed = reinterpret_cast<size_t>(K.Action);
    hashCombine(Seed, static_cast<size_t>(K.Sub));
    return Seed;
  }
  struct KeyHash {
    size_t operator()(const Key &K) const { return hashKey(K); }
  };

  static constexpr size_t NumShards = 16;
  struct Shard {
    std::mutex M;
    std::unordered_map<Key, bool, KeyHash> Map;
  };

  StateArena &Arena;
  Shard Shards[NumShards];
};

/// Memoizes Ω-observing gate evaluations per (action instance, StoreId,
/// args PaId, PaSetId of Ω). Gates are pure functions of (g, args, Ω) under
/// the action contract, so keying on the interned Ω extends GateCache to
/// exactly the gates it must refuse. The checker evaluates the same
/// (gate, configuration) point once per mover pair and once per condition;
/// this cache collapses those repeats into a single interpreter run.
/// Thread-safe; a racing double-compute is benign (purity).
class OmegaGateCache {
public:
  explicit OmegaGateCache(StateArena &Arena) : Arena(Arena) {}

  /// Evaluates (and memoizes) \p A's gate at (\p G, args of \p ArgsPa,
  /// multiset of \p Omega).
  bool get(const Action &A, StoreId G, PaId ArgsPa, PaSetId Omega) {
    Key K{&A, (static_cast<uint64_t>(G) << 32) | ArgsPa, Omega};
    size_t Hash = hashKey(K);
    auto &S = Shards[Hash % NumShards];
    Lookups.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Map.find(K);
      if (It != S.Map.end()) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        return It->second;
      }
    }
    bool Result =
        A.evalGate(Arena.store(G), Arena.pa(ArgsPa).Args, Arena.paSet(Omega));
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.emplace(K, Result);
    return Result;
  }

  size_t lookups() const { return Lookups.load(std::memory_order_relaxed); }
  size_t hits() const { return Hits.load(std::memory_order_relaxed); }

private:
  struct Key {
    const void *Action;
    uint64_t Sub; // (StoreId << 32) | ArgsPa
    PaSetId Omega;
    bool operator==(const Key &O) const {
      return Action == O.Action && Sub == O.Sub && Omega == O.Omega;
    }
  };
  static size_t hashKey(const Key &K) {
    size_t Seed = reinterpret_cast<size_t>(K.Action);
    hashCombine(Seed, static_cast<size_t>(K.Sub));
    hashCombine(Seed, static_cast<size_t>(K.Omega));
    return Seed;
  }
  struct KeyHash {
    size_t operator()(const Key &K) const { return hashKey(K); }
  };

  static constexpr size_t NumShards = 16;
  struct Shard {
    std::mutex M;
    std::unordered_map<Key, bool, KeyHash> Map;
  };

  StateArena &Arena;
  Shard Shards[NumShards];
  std::atomic<size_t> Lookups{0};
  std::atomic<size_t> Hits{0};
};

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_ACTIONCACHES_H
