//===- engine/ColdStore.h - mmap-backed cold tier for spilled blocks -*- C++ -*-===//
///
/// \file
/// The cold tier of the two-tier state store (--engine spill=true). When
/// the hot-byte accountant crosses the memory budget, the StateArena
/// evicts sealed blocks of compact encodings here: each block becomes one
/// checksummed record inside a fixed-capacity segment file under the
/// spill directory, written with pwrite and read back through an eager
/// PROT_READ MAP_SHARED mapping (Linux's unified page cache makes the
/// write visible through the mapping immediately, and the clean read-only
/// pages are kernel-reclaimable — the whole point of spilling).
///
/// Contents are per-run scratch, unlike the ObligationCache's persistent
/// tier: segment records embed ids that are only meaningful to the arena
/// that wrote them, so stale `*.isqseg` files found at startup are
/// deleted, and the destructor unlinks everything it created. What the
/// tier shares with the ObligationCache is the integrity posture: every
/// record carries a magic, framing fields, and a 64-bit checksum over its
/// payload, verified before the first decode. Truncation or interior
/// corruption produces a clean std::runtime_error diagnostic — never a
/// wrong verdict.
///
/// Concurrency: appendBlock is called by one evictor at a time (the
/// arena's eviction mutex); map() is lock-free and called concurrently by
/// any number of readers. Segment mappings are created before the segment
/// pointer is published and stay mapped for the ColdStore's lifetime, so
/// a BlockRef obtained through any release/acquire channel is always
/// dereferenceable.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_COLDSTORE_H
#define ISQ_ENGINE_COLDSTORE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace isq {
namespace engine {

class ColdStore {
public:
  /// Segment files are ftruncated to this capacity up front; a record
  /// never spans segments. 64 MiB keeps the segment count (and the
  /// mapping count) small without reserving silly amounts per run.
  static constexpr uint64_t SegmentCapacity = 64ull << 20;
  /// Hard cap on segments (64 MiB each -> 256 GiB of cold state).
  static constexpr size_t MaxSegments = 4096;

  static constexpr uint32_t FormatVersion = 1;

  /// Creates (or reuses) \p Dir and deletes any stale `*.isqseg` files in
  /// it — spill segments are scratch, so a leftover directory from an
  /// interrupted run is simply cleaned. Throws std::runtime_error when
  /// the directory cannot be created.
  explicit ColdStore(std::string Dir);
  ~ColdStore();
  ColdStore(const ColdStore &) = delete;
  ColdStore &operator=(const ColdStore &) = delete;

  /// Address of one spilled block record.
  struct BlockRef {
    uint32_t Segment = UINT32_MAX;
    uint64_t Offset = 0;
    /// Total record length (header + ends table + payload).
    uint64_t Length = 0;
  };

  /// The mapped view of a record: per-item end offsets into the payload
  /// (item i spans [i ? Ends[i-1] : 0, Ends[i])) and the payload bytes.
  struct MappedBlock {
    const uint32_t *Ends = nullptr;
    uint32_t Count = 0;
    const char *Payload = nullptr;
    uint64_t PayloadLen = 0;
  };

  /// Writes one block record (single evictor at a time). \p Ends are the
  /// cumulative per-item end offsets, \p Payload the concatenated item
  /// bytes. Throws std::runtime_error on I/O failure or capacity
  /// exhaustion.
  BlockRef appendBlock(const std::vector<uint32_t> &Ends, const char *Payload,
                       uint64_t PayloadLen);

  /// Maps a record for reading. When \p Verify is set the record's
  /// framing and checksum are validated first (the arena does this once
  /// per block, on its first fault); a truncated or corrupted record
  /// throws std::runtime_error with a diagnostic naming the segment.
  MappedBlock map(const BlockRef &Ref, bool Verify) const;

  /// Total bytes of record data written so far.
  uint64_t bytesWritten() const {
    return BytesWritten.load(std::memory_order_relaxed);
  }

  const std::string &dir() const { return Dir; }

private:
  struct Segment {
    int Fd = -1;
    const char *Map = nullptr;
    std::string Path;
  };

  Segment *openSegment(size_t Index);

  std::string Dir;
  std::atomic<Segment *> Segments[MaxSegments] = {};
  /// Evictor-only append cursor.
  size_t CurSegment = 0;
  uint64_t CurOffset = SegmentCapacity; // forces a segment on first append
  std::atomic<uint64_t> BytesWritten{0};
};

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_COLDSTORE_H
