//===- engine/EngineConfig.h - Unified engine configuration ------*- C++ -*-===//
///
/// \file
/// The single configuration surface for every engine knob: thread budget,
/// checker parallelism, symmetry reduction, the work-stealing frontier
/// (on/off, steal granularity), and the compact state store (shard count,
/// compressed encodings). One EngineConfig is threaded from the CLI (or
/// the serve wire protocol) through driver::VerifyOptions into the
/// explorer, the frontier engine, the obligation scheduler, and the IS
/// checker — no component reads thread/symmetry/steal settings from
/// anywhere else.
///
/// The textual form is a comma-separated key=value list (the `--engine`
/// flag): `threads=4,steal-chunk=64,shards=8,compress=true`. The same
/// key/value pairs travel the serve wire protocol as an explicit-keys-only
/// map, so a request's verdict-cache key covers exactly the settings the
/// client set. Unknown keys and malformed values are parse errors with a
/// targeted message, never silently ignored.
///
/// Every knob preserves the engine's determinism contract: verdicts,
/// counts, and diagnostics are bit-identical for every value of every
/// knob (timing fields and the steal/telemetry counters excepted); the
/// level-synchronous path (`work-stealing=false`) and the serial checker
/// loops (`parallel-check=false`) stay alive as differential oracles.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_ENGINECONFIG_H
#define ISQ_ENGINE_ENGINECONFIG_H

#include <cstdint>
#include <map>
#include <string>

namespace isq {
namespace engine {

/// All engine tuning knobs, with their defaults.
struct EngineConfig {
  /// Worker threads for exploration and obligation checking. Results are
  /// identical for any value.
  unsigned NumThreads = 1;
  /// Discharge obligations on the scheduler (true) or with the serial
  /// reference loops (false; the differential oracle).
  bool ParallelCheck = true;
  /// Orbit-canonical symmetry reduction when the module declares a
  /// symmetric sort. False explores the full state space (differential
  /// oracle; same verdicts).
  bool Symmetry = true;
  /// Explore with the work-stealing frontier (true) or the
  /// level-synchronous barrier path (false; the differential oracle).
  bool WorkStealing = true;
  /// Nodes per work-stealing chunk (the steal granularity).
  unsigned StealChunk = 64;
  /// Interning-arena shards. Must be a power of two in [1, 16] (the
  /// handle layout reserves four shard bits).
  unsigned Shards = 16;
  /// Store interned stores and PA-bags as delta/varint-compressed byte
  /// encodings instead of materialized values (the compact state store).
  bool Compress = false;
  /// Consult the content-addressed obligation verdict cache before
  /// discharging scheduler slices. False keeps the uncached path alive as
  /// the differential oracle (same verdicts, recomputed).
  bool Incremental = true;
  /// Directory of the persistent obligation-cache tier; empty keeps the
  /// cache in-memory only (still useful under isq-serve, where one
  /// process serves many requests).
  std::string CacheDir;
  /// Spill sealed compact-store blocks to an mmap-backed cold tier when
  /// hot encoded bytes exceed the memory budget. Requires compress=true,
  /// spill-dir and mem-budget (see validate()). Verdicts, counts and
  /// diagnostics are bit-identical with spilling on or off.
  bool Spill = false;
  /// Directory for cold-tier segment files (per-run scratch; stale
  /// segments are deleted at startup, live ones on exit).
  std::string SpillDir;
  /// Hot-tier byte budget across all spilling arenas in the process;
  /// eviction starts once hot encoded bytes exceed it. Accepts K/M/G
  /// suffixes in the textual form. 0 means no budget.
  uint64_t MemBudget = 0;

  /// Maximum supported shard count (the handle layout's shard bits).
  static constexpr unsigned MaxShards = 16;

  bool operator==(const EngineConfig &O) const {
    return NumThreads == O.NumThreads && ParallelCheck == O.ParallelCheck &&
           Symmetry == O.Symmetry && WorkStealing == O.WorkStealing &&
           StealChunk == O.StealChunk && Shards == O.Shards &&
           Compress == O.Compress && Incremental == O.Incremental &&
           CacheDir == O.CacheDir && Spill == O.Spill &&
           SpillDir == O.SpillDir && MemBudget == O.MemBudget;
  }
  bool operator!=(const EngineConfig &O) const { return !(*this == O); }

  /// Applies one `key=value` setting. Returns false with \p Error set on
  /// an unknown key or malformed value. Valid keys: threads,
  /// parallel-check, symmetry, work-stealing, steal-chunk, shards,
  /// compress, incremental, cache-dir, spill, spill-dir, mem-budget.
  /// Booleans accept true/false/on/off/1/0; mem-budget accepts a byte
  /// count with an optional K/M/G suffix.
  bool set(const std::string &Key, const std::string &Value,
           std::string &Error);

  /// Cross-knob coherence checks that set() cannot make (it sees one key
  /// at a time): spill=true requires compress=true, spill-dir and
  /// mem-budget; spill-dir/mem-budget require spill=true; cache-dir and
  /// spill-dir must differ. Returns false with \p Error set on the first
  /// conflict. Called after the whole --engine list (or server flag set)
  /// is parsed.
  bool validate(std::string &Error) const;

  /// Applies a comma-separated `key=value[,key=value...]` list (the
  /// `--engine` argument). Empty items between commas are errors.
  bool setList(const std::string &Spec, std::string &Error);

  /// The settings that differ from the defaults, as a sorted key→value
  /// map (the wire/cache-key form). `threads`, `incremental`,
  /// `cache-dir`, `spill`, `spill-dir` and `mem-budget` are deliberately
  /// excluded: verdicts are independent of all of them (caching and
  /// spilling are bit-identical to the plain paths), so they are local
  /// tuning knobs, never request inputs — including them would fragment
  /// the serve-side verdict cache for no semantic difference.
  std::map<std::string, std::string> toKeyValues() const;

  /// Applies a wire key→value map on top of this config. Rejects unknown
  /// keys and malformed values like set(); additionally rejects the
  /// server-side knobs `threads`, `incremental`, `cache-dir`, `spill`,
  /// `spill-dir` and `mem-budget` (see toKeyValues()).
  bool applyKeyValues(const std::map<std::string, std::string> &KeyValues,
                      std::string &Error);

  /// Human-readable one-line rendering of the non-default settings
  /// ("defaults" when none).
  std::string str() const;
};

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_ENGINECONFIG_H
