//===- engine/Encoding.h - Compact state encodings --------------*- C++ -*-===//
///
/// \file
/// Canonical delta/varint byte encodings for the compact state store
/// (--engine compress=true). A value, store or PA-bag has exactly one
/// encoding — values are canonical (sorted sets/bags/maps), stores are
/// sorted by symbol, PA-bags by PaId — so byte equality coincides with
/// value equality and the arena can hash-cons over the encoded form
/// directly. Integers are zigzag varints; sorted key sequences (symbol
/// indices, PaIds) are delta-encoded, which keeps dense id ranges at one
/// byte per key.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_ENCODING_H
#define ISQ_ENGINE_ENCODING_H

#include "semantics/Configuration.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace isq {
namespace engine {

void putVarint(std::string &Out, uint64_t V);
/// Reads one varint, advancing \p P. Asserts on truncation.
uint64_t getVarint(const char *&P, const char *End);

void encodeValue(std::string &Out, const Value &V);
Value decodeValue(const char *&P, const char *End);

/// Encodes a store: entry count, then per entry a delta-encoded symbol
/// index and the value.
std::string encodeStore(const Store &S);
Store decodeStore(const std::string &Bytes);
/// Span form: decodes [P, End) directly — the cold-tier fault path reads
/// encodings out of an mmap'd segment without copying them into a string.
Store decodeStore(const char *P, const char *End);

/// Encodes a canonical (PaId, count) vector: entry count, then per entry
/// a delta-encoded PaId and the multiplicity.
std::string encodePaVec(const std::vector<std::pair<uint32_t, uint64_t>> &Vec);
std::vector<std::pair<uint32_t, uint64_t>>
decodePaVec(const std::string &Bytes);
std::vector<std::pair<uint32_t, uint64_t>> decodePaVec(const char *P,
                                                       const char *End);

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_ENCODING_H
