//===- engine/ObligationCache.h - Obligation verdict cache -------*- C++ -*-===//
///
/// \file
/// The content-addressed obligation verdict cache: the memoization layer
/// that turns re-verification into an incremental build. Each scheduler
/// job (one contiguous slice of a quantifier universe) is keyed by a
/// stable 128-bit fingerprint of *exactly* the inputs its obligations
/// depend on — the semantic content of the slice's configurations and the
/// bodies of every action the slice executes (see semantics/Fingerprint.h
/// and the key builders in is/ISCheck.cpp) — and its recorded value is the
/// exact unit sequence the job emitted: obligation counts, failures, and
/// diagnostics. Replaying cached units through the scheduler's ordered
/// reconciliation is bit-identical to re-running the job, for every
/// thread count, because unit dedup keys are themselves content
/// fingerprints (run-independent).
///
/// Two tiers share one mutex:
///
///  - the in-memory tier: units inserted by this process, stored as
///    serialized blobs (compact, and ready to persist);
///  - the on-disk tier: a compacted base image (`<dir>/obcache.bin`) plus
///    an append journal (`<dir>/obcache.jrnl`), both mmap'd, each with a
///    versioned header carrying the serialization format version, the
///    fingerprint format version, and the builder's git sha. Entries
///    decode lazily out of the mappings on first lookup (a *disk hit*);
///    journal records shadow base entries. Any validation failure in the
///    base — bad magic, short file, version or sha mismatch,
///    out-of-bounds entry — discards it and the run proceeds cold; the
///    journal is prefix-valid: records are accepted up to the first
///    malformed byte, so a torn append costs only the tail. Every record
///    carries a checksum of its payload, verified before decode, so
///    interior corruption that spares the framing degrades to a re-run
///    of the affected slices. A corrupted cache can cost time, never
///    correctness.
///
/// save() is incremental: a run that inserted nothing writes nothing; a
/// run with few inserts appends just those records to the journal
/// (truncating any torn tail first); only when the journal would outgrow
/// half the base — or the base itself was rejected — does save() compact
/// both tiers into a fresh base with crash-safe write-to-temporary +
/// atomic rename, evicting least-recently-used entries beyond the size
/// cap. A warm re-verification after a small edit therefore pays I/O
/// proportional to the edit, not to the image.
///
/// One process-wide instance may serve concurrent verifications (isq-serve
/// shares one below its whole-request VerdictCache); all operations are
/// thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_ENGINE_OBLIGATIONCACHE_H
#define ISQ_ENGINE_OBLIGATIONCACHE_H

#include "engine/ObligationScheduler.h"
#include "semantics/Fingerprint.h"

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace isq {
namespace engine {

class ObligationCache {
public:
  struct Options {
    /// Directory of the persistent tier; empty for a memory-only cache.
    std::string Dir;
    /// On-disk size cap, enforced at compaction: save() evicts
    /// least-recently-used entries until the serialized payload fits.
    /// Between compactions the journal may overshoot by up to half the
    /// base image.
    size_t MaxBytes = 512u << 20;
  };

  struct Counters {
    uint64_t Lookups = 0;
    uint64_t Hits = 0;     ///< including disk hits
    uint64_t DiskHits = 0; ///< first-touch decodes out of the mapping
    uint64_t Misses = 0;
    uint64_t Inserts = 0;
    uint64_t DiskEntries = 0; ///< entries indexed from a valid disk image
    /// True when a disk image was present but failed validation (the run
    /// proceeded cold).
    bool DiskRejected = false;
  };

  /// Loads the disk tier eagerly when \p O.Dir names an existing cache
  /// file. Never throws on bad images (see Counters::DiskRejected).
  ObligationCache(); // memory-only
  explicit ObligationCache(Options O);
  ~ObligationCache();
  ObligationCache(const ObligationCache &) = delete;
  ObligationCache &operator=(const ObligationCache &) = delete;

  /// Probes both tiers. On a hit, decodes the recorded unit sequence into
  /// \p Units and sets \p FromDisk when the entry had not been touched
  /// since the disk image was mapped.
  bool lookup(const Fingerprint &Key, std::vector<ObUnit> &Units,
              bool &FromDisk);

  /// Records a job's emitted unit sequence under \p Key.
  void insert(const Fingerprint &Key, const std::vector<ObUnit> &Units);

  /// Persists this run's inserts: nothing when there were none, a journal
  /// append while the journal stays small, a full compaction otherwise
  /// (see the file comment). Returns false with \p Error set on I/O
  /// failure; always a no-op success when the cache has no directory.
  bool save(std::string &Error);

  Counters counters() const;
  bool persistent() const { return !Opts.Dir.empty(); }

  /// Serialization format of entry payloads and of the disk file. Bump on
  /// any layout change; old files are then treated as cold.
  static constexpr uint32_t DiskFormatVersion = 1;

private:
  struct MemEntry {
    std::string Blob; ///< serialized unit sequence
    uint64_t LastUse = 0;
  };
  struct DiskEntry {
    size_t Offset = 0; ///< blob offset into the owning mapping
    size_t Size = 0;
    uint64_t LastUse = 0;
    uint64_t Checksum = 0; ///< of the blob; verified before every decode
    bool Journal = false;  ///< blob lives in the journal mapping
    bool Touched = false;  ///< already served once (later hits aren't
                           ///< "disk hits")
  };
  struct FpHash {
    size_t operator()(const Fingerprint &F) const {
      return static_cast<size_t>(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL));
    }
  };

  void loadDisk();
  void loadJournal();
  bool appendJournal(std::string &Error);
  bool compact(std::string &Error);
  std::string filePath() const;
  std::string journalPath() const;

  Options Opts;
  mutable std::mutex M;
  std::unordered_map<Fingerprint, MemEntry, FpHash> Memory;
  std::unordered_map<Fingerprint, DiskEntry, FpHash> Disk;
  const char *Mapping = nullptr;
  size_t MappingSize = 0;
  const char *JMapping = nullptr;
  size_t JMappingSize = 0;
  /// Length of the journal's valid prefix (header plus whole records);
  /// appends truncate to here first so a torn tail never precedes new
  /// records.
  size_t JournalValidBytes = 0;
  uint64_t Clock = 0;
  Counters Stats;
};

/// Serializes a unit sequence into the cache's blob form (exposed for the
/// round-trip tests).
std::string encodeObUnits(const std::vector<ObUnit> &Units);
/// Decodes a blob; returns false (leaving \p Units unspecified) on any
/// malformed byte. Bounds-checked throughout — never reads past \p Size.
bool decodeObUnits(const char *Data, size_t Size, std::vector<ObUnit> &Units);

} // namespace engine
} // namespace isq

#endif // ISQ_ENGINE_OBLIGATIONCACHE_H
