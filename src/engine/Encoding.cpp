//===- engine/Encoding.cpp - Compact state encodings -------------------------===//

#include "engine/Encoding.h"

#include <cassert>

using namespace isq;
using namespace isq::engine;

void engine::putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

uint64_t engine::getVarint(const char *&P, const char *End) {
  uint64_t V = 0;
  unsigned Shift = 0;
  while (true) {
    assert(P != End && "truncated varint");
    uint8_t B = static_cast<uint8_t>(*P++);
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80))
      return V;
    Shift += 7;
    assert(Shift < 64 && "oversized varint");
  }
}

static uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

static int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

void engine::encodeValue(std::string &Out, const Value &V) {
  Out.push_back(static_cast<char>(V.kind()));
  switch (V.kind()) {
  case ValueKind::Unit:
    return;
  case ValueKind::Bool:
    Out.push_back(V.getBool() ? 1 : 0);
    return;
  case ValueKind::Int:
    putVarint(Out, zigzag(V.getInt()));
    return;
  case ValueKind::Tuple:
  case ValueKind::Set:
  case ValueKind::Seq: {
    const std::vector<Value> &Elems = V.elems();
    putVarint(Out, Elems.size());
    for (const Value &E : Elems)
      encodeValue(Out, E);
    return;
  }
  case ValueKind::Option:
    if (V.isNone()) {
      Out.push_back(0);
    } else {
      Out.push_back(1);
      encodeValue(Out, V.getSome());
    }
    return;
  case ValueKind::Bag: {
    const auto &Entries = V.bagEntries();
    putVarint(Out, Entries.size());
    for (const auto &[Elem, Count] : Entries) {
      encodeValue(Out, Elem);
      putVarint(Out, static_cast<uint64_t>(Count.getInt()));
    }
    return;
  }
  case ValueKind::Map: {
    const auto &Entries = V.mapEntries();
    putVarint(Out, Entries.size());
    for (const auto &[K, Val] : Entries) {
      encodeValue(Out, K);
      encodeValue(Out, Val);
    }
    return;
  }
  }
  assert(false && "unhandled value kind");
}

Value engine::decodeValue(const char *&P, const char *End) {
  assert(P != End && "truncated value");
  ValueKind Kind = static_cast<ValueKind>(static_cast<uint8_t>(*P++));
  switch (Kind) {
  case ValueKind::Unit:
    return Value::unit();
  case ValueKind::Bool: {
    assert(P != End && "truncated bool");
    return Value::boolean(*P++ != 0);
  }
  case ValueKind::Int:
    return Value::integer(unzigzag(getVarint(P, End)));
  case ValueKind::Tuple:
  case ValueKind::Set:
  case ValueKind::Seq: {
    uint64_t N = getVarint(P, End);
    std::vector<Value> Elems;
    Elems.reserve(N);
    for (uint64_t I = 0; I < N; ++I)
      Elems.push_back(decodeValue(P, End));
    if (Kind == ValueKind::Tuple)
      return Value::tuple(std::move(Elems));
    if (Kind == ValueKind::Set)
      return Value::set(std::move(Elems));
    return Value::seq(std::move(Elems));
  }
  case ValueKind::Option: {
    assert(P != End && "truncated option");
    if (*P++ == 0)
      return Value::none();
    return Value::some(decodeValue(P, End));
  }
  case ValueKind::Bag: {
    uint64_t N = getVarint(P, End);
    Value Out = Value::bag({});
    for (uint64_t I = 0; I < N; ++I) {
      Value Elem = decodeValue(P, End);
      uint64_t Count = getVarint(P, End);
      Out = Out.bagInsert(Elem, Count);
    }
    return Out;
  }
  case ValueKind::Map: {
    uint64_t N = getVarint(P, End);
    std::vector<std::pair<Value, Value>> Pairs;
    Pairs.reserve(N);
    for (uint64_t I = 0; I < N; ++I) {
      Value K = decodeValue(P, End);
      Value V = decodeValue(P, End);
      Pairs.emplace_back(std::move(K), std::move(V));
    }
    return Value::map(std::move(Pairs));
  }
  }
  assert(false && "unhandled value kind");
  return Value::unit();
}

std::string engine::encodeStore(const Store &S) {
  std::string Out;
  putVarint(Out, S.size());
  uint32_t Prev = 0;
  for (const auto &[Sym, Val] : S.entries()) {
    putVarint(Out, Sym.index() - Prev);
    Prev = Sym.index();
    encodeValue(Out, Val);
  }
  return Out;
}

Store engine::decodeStore(const std::string &Bytes) {
  return decodeStore(Bytes.data(), Bytes.data() + Bytes.size());
}

Store engine::decodeStore(const char *P, const char *End) {
  uint64_t N = getVarint(P, End);
  std::vector<std::pair<Symbol, Value>> Vars;
  Vars.reserve(N);
  uint32_t Prev = 0;
  for (uint64_t I = 0; I < N; ++I) {
    Prev += static_cast<uint32_t>(getVarint(P, End));
    Value V = decodeValue(P, End);
    Vars.emplace_back(Symbol::fromIndex(Prev), std::move(V));
  }
  assert(P == End && "trailing bytes in store encoding");
  return Store::make(std::move(Vars));
}

std::string
engine::encodePaVec(const std::vector<std::pair<uint32_t, uint64_t>> &Vec) {
  std::string Out;
  putVarint(Out, Vec.size());
  uint32_t Prev = 0;
  for (const auto &[Id, Count] : Vec) {
    putVarint(Out, Id - Prev);
    Prev = Id;
    putVarint(Out, Count);
  }
  return Out;
}

std::vector<std::pair<uint32_t, uint64_t>>
engine::decodePaVec(const std::string &Bytes) {
  return decodePaVec(Bytes.data(), Bytes.data() + Bytes.size());
}

std::vector<std::pair<uint32_t, uint64_t>>
engine::decodePaVec(const char *P, const char *End) {
  uint64_t N = getVarint(P, End);
  std::vector<std::pair<uint32_t, uint64_t>> Vec;
  Vec.reserve(N);
  uint32_t Prev = 0;
  for (uint64_t I = 0; I < N; ++I) {
    Prev += static_cast<uint32_t>(getVarint(P, End));
    Vec.emplace_back(Prev, getVarint(P, End));
  }
  assert(P == End && "trailing bytes in PA-bag encoding");
  return Vec;
}
