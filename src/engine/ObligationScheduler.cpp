//===- engine/ObligationScheduler.cpp - Parallel obligation checking ----------===//

#include "engine/ObligationScheduler.h"

#include "engine/ObligationCache.h"
#include "refine/Refinement.h"
#include "support/Format.h"
#include "support/Hashing.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_set>

using namespace isq;
using namespace isq::engine;

static_assert(ObUnit::MaxIssues == CheckResult::MaxIssues,
              "unit diagnostic cap must match CheckResult's");

const char *engine::obConditionName(ObCondition C) {
  switch (C) {
  case ObCondition::SideConditions:
    return "side_conditions";
  case ObCondition::AbstractionRefinement:
    return "abstraction_refinement";
  case ObCondition::BaseCase:
    return "base_case";
  case ObCondition::Conclusion:
    return "conclusion";
  case ObCondition::InductiveStep:
    return "inductive_step";
  case ObCondition::LeftMovers:
    return "left_movers";
  case ObCondition::Cooperation:
    return "cooperation";
  case ObCondition::CrossCheck:
    return "cross_check";
  }
  return "<invalid>";
}

const char *engine::obConditionLabel(ObCondition C) {
  switch (C) {
  case ObCondition::SideConditions:
    return "side conditions";
  case ObCondition::AbstractionRefinement:
    return "P(A) ≼ α(A)";
  case ObCondition::BaseCase:
    return "(I1) base case";
  case ObCondition::Conclusion:
    return "(I2) conclusion";
  case ObCondition::InductiveStep:
    return "(I3) induction";
  case ObCondition::LeftMovers:
    return "(LM) left mover";
  case ObCondition::Cooperation:
    return "(CO) cooperation";
  case ObCondition::CrossCheck:
    return "P ≼ P' (empirical)";
  }
  return "<invalid>";
}

ObligationStats::Bucket ObligationStats::totals() const {
  Bucket T;
  for (const Bucket &B : PerCondition) {
    T.Jobs += B.Jobs;
    T.Units += B.Units;
    T.UnitsDeduped += B.UnitsDeduped;
    T.Obligations += B.Obligations;
    T.Failures += B.Failures;
    T.OrbitConfigs += B.OrbitConfigs;
    T.OrbitStates += B.OrbitStates;
    T.JobSeconds += B.JobSeconds;
  }
  return T;
}

void ObligationStats::accumulate(const ObligationStats &Other) {
  for (size_t I = 0; I < NumObConditions; ++I) {
    PerCondition[I].Jobs += Other.PerCondition[I].Jobs;
    PerCondition[I].Units += Other.PerCondition[I].Units;
    PerCondition[I].UnitsDeduped += Other.PerCondition[I].UnitsDeduped;
    PerCondition[I].Obligations += Other.PerCondition[I].Obligations;
    PerCondition[I].Failures += Other.PerCondition[I].Failures;
    PerCondition[I].OrbitConfigs += Other.PerCondition[I].OrbitConfigs;
    PerCondition[I].OrbitStates += Other.PerCondition[I].OrbitStates;
    PerCondition[I].JobSeconds += Other.PerCondition[I].JobSeconds;
  }
  Cache.Hits += Other.Cache.Hits;
  Cache.Misses += Other.Cache.Misses;
  Cache.DiskHits += Other.Cache.DiskHits;
  Cache.Enabled = Cache.Enabled || Other.Cache.Enabled;
  WallSeconds += Other.WallSeconds;
  Threads = std::max(Threads, Other.Threads);
}

std::string ObligationStats::str() const {
  Bucket T = totals();
  std::string Out;
  Out += "obligations=" + std::to_string(T.Obligations);
  Out += " failures=" + std::to_string(T.Failures);
  Out += " jobs=" + std::to_string(T.Jobs);
  Out += " dedup-discarded=" + std::to_string(T.UnitsDeduped);
  if (T.OrbitStates > T.OrbitConfigs) {
    Out += " orbit-configs=" + std::to_string(T.OrbitConfigs);
    Out += " orbit-states=" + std::to_string(T.OrbitStates);
  }
  if (Cache.Enabled) {
    Out += " cache-hits=" + std::to_string(Cache.Hits);
    Out += " cache-misses=" + std::to_string(Cache.Misses);
    if (Cache.DiskHits)
      Out += " disk-hits=" + std::to_string(Cache.DiskHits);
  }
  Out += " threads=" + std::to_string(Threads);
  Out += " cpu=" + formatSeconds(T.JobSeconds) + "s";
  Out += " wall=" + formatSeconds(WallSeconds) + "s";
  return Out;
}

namespace {

struct ObKeyHash {
  size_t operator()(const ObKey &K) const {
    size_t Seed = K.Tag;
    hashCombine(Seed, K.A);
    hashCombine(Seed, K.B);
    hashCombine(Seed, K.C);
    return Seed;
  }
};

} // namespace

/// An ordered group of jobs sharing one dedup namespace. Channel I folds
/// under Conditions[I].
class ObligationScheduler::Group {
public:
  explicit Group(std::vector<ObCondition> Conditions)
      : Conditions(std::move(Conditions)) {
    Results.resize(this->Conditions.size());
  }

  std::vector<ObCondition> Conditions;
  /// Global indices into the scheduler's job list, in submission order.
  std::vector<size_t> JobIndices;
  std::vector<CheckResult> Results;
};

struct ObligationScheduler::JobSlot {
  std::function<void(ObSink &)> Fn;
  /// Content fingerprint of the job's inputs; evaluated on the worker
  /// when a cache is attached. Null for uncacheable jobs.
  std::function<Fingerprint()> KeyFn;
  ObCondition Cond; // condition of channel 0, for timing attribution
  ObSink Sink;
  double Seconds = 0;
  bool CacheHit = false;
  bool FromDisk = false;
};

ObligationScheduler::ObligationScheduler(const EngineConfig &Config)
    : Threads(Config.NumThreads ? Config.NumThreads : 1) {
  Stats.Threads = Threads;
}

ObligationScheduler::~ObligationScheduler() = default;

ObligationScheduler::Group *
ObligationScheduler::group(std::vector<ObCondition> Conditions) {
  assert(!Ran && "cannot create groups after run()");
  assert(!Conditions.empty() && "a group needs at least one channel");
  Groups.emplace_back(std::move(Conditions));
  return &Groups.back();
}

void ObligationScheduler::add(Group *G,
                              std::function<void(ObSink &)> Job) {
  add(G, nullptr, std::move(Job));
}

void ObligationScheduler::add(Group *G, std::function<Fingerprint()> KeyFn,
                              std::function<void(ObSink &)> Job) {
  assert(!Ran && "cannot submit jobs after run()");
  G->JobIndices.push_back(Jobs.size());
  Jobs.push_back(JobSlot{std::move(Job), std::move(KeyFn), G->Conditions[0],
                         ObSink(), 0, false, false});
}

void ObligationScheduler::run() {
  assert(!Ran && "run() may be called once");
  Ran = true;
  Timer Wall;

  size_t NumJobs = Jobs.size();
  unsigned Workers =
      static_cast<unsigned>(std::min<size_t>(Threads, NumJobs));
  // One job, cache-aware: probe before running, record after. Both the
  // fingerprinting (KeyFn) and the blob encode/decode happen here on the
  // worker, so cache overhead parallelizes with the checking itself.
  auto RunOne = [this](JobSlot &J) {
    Timer T;
    if (Cache && J.KeyFn) {
      Fingerprint Key = J.KeyFn();
      bool FromDisk = false;
      if (Cache->lookup(Key, J.Sink.Units, FromDisk)) {
        // Replay: the recorded units flow through reconciliation exactly
        // as freshly emitted ones would — bit-identical fold.
        J.CacheHit = true;
        J.FromDisk = FromDisk;
        J.Seconds = T.elapsed();
        return;
      }
      J.Fn(J.Sink);
      Cache->insert(Key, J.Sink.Units);
      J.Seconds = T.elapsed();
      return;
    }
    J.Fn(J.Sink);
    J.Seconds = T.elapsed();
  };
  if (Workers <= 1) {
    for (JobSlot &J : Jobs)
      RunOne(J);
  } else {
    std::atomic<size_t> Next{0};
    std::exception_ptr Error;
    std::mutex ErrorMutex;
    auto Work = [&]() {
      try {
        for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
             I < NumJobs; I = Next.fetch_add(1, std::memory_order_relaxed))
          RunOne(Jobs[I]);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMutex);
        if (!Error)
          Error = std::current_exception();
      }
    };
    std::vector<std::thread> Pool;
    Pool.reserve(Workers - 1);
    for (unsigned I = 0; I + 1 < Workers; ++I)
      Pool.emplace_back(Work);
    Work();
    for (std::thread &T : Pool)
      T.join();
    if (Error)
      std::rethrow_exception(Error);
  }

  Stats.Cache.Enabled = Cache != nullptr;
  for (JobSlot &J : Jobs) {
    size_t CI = static_cast<size_t>(J.Cond);
    ++Stats.PerCondition[CI].Jobs;
    Stats.PerCondition[CI].JobSeconds += J.Seconds;
    if (Cache && J.KeyFn) {
      // Obligation-weighted cache accounting, before reconciliation
      // (the sinks still hold every unit here; reconcile() drains them).
      uint64_t Obs = 0;
      for (const ObUnit &U : J.Sink.Units)
        Obs += U.Obligations;
      if (J.CacheHit) {
        Stats.Cache.Hits += Obs;
        if (J.FromDisk)
          Stats.Cache.DiskHits += Obs;
      } else {
        Stats.Cache.Misses += Obs;
      }
    }
  }
  for (Group &G : Groups)
    reconcile(G);
  Stats.WallSeconds = Wall.elapsed();
}

void ObligationScheduler::reconcile(Group &G) {
  // Replay every unit in (job submission, within-job emission) order
  // against the group-wide dedup set: the surviving unit per key is
  // exactly the serial loop's. See the header's determinism argument.
  std::unordered_set<ObKey, ObKeyHash> Consumed;
  for (size_t JobIdx : G.JobIndices) {
    JobSlot &J = Jobs[JobIdx];
    for (ObUnit &U : J.Sink.Units) {
      assert(U.Channel < G.Results.size() && "unit channel out of range");
      size_t CI = static_cast<size_t>(G.Conditions[U.Channel]);
      ++Stats.PerCondition[CI].Units;
      if (!U.Key.keyless() && !Consumed.insert(U.Key).second) {
        ++Stats.PerCondition[CI].UnitsDeduped;
        continue;
      }
      CheckResult &R = G.Results[U.Channel];
      R.addObligations(U.Obligations);
      uint32_t Reported = 0;
      for (std::string &Issue : U.Issues) {
        R.fail(std::move(Issue));
        ++Reported;
      }
      // Failures beyond the retained diagnostics still count.
      for (uint32_t I = Reported; I < U.Failures; ++I)
        R.fail(std::string());
      Stats.PerCondition[CI].Obligations += U.Obligations;
      Stats.PerCondition[CI].Failures += U.Failures;
    }
    // Units are folded; release the memory before later groups reconcile.
    J.Sink.Units.clear();
    J.Sink.Units.shrink_to_fit();
  }
}

void ObligationScheduler::noteOrbits(ObCondition Condition, uint64_t Reps,
                                     uint64_t States) {
  ObligationStats::Bucket &B =
      Stats.PerCondition[static_cast<size_t>(Condition)];
  B.OrbitConfigs += Reps;
  B.OrbitStates += States;
}

const CheckResult &ObligationScheduler::result(const Group *G,
                                               uint8_t Channel) const {
  assert(Ran && "result() requires run()");
  assert(Channel < G->Results.size() && "channel out of range");
  return G->Results[Channel];
}
