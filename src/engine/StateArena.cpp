//===- engine/StateArena.cpp - Hash-consed state interning -------------------===//

#include "engine/StateArena.h"

#include "engine/Encoding.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

using namespace isq;
using namespace isq::engine;

void engine::paCountVecErase(PaCountVec &Vec, PaId Pa) {
  auto It = std::lower_bound(
      Vec.begin(), Vec.end(), Pa,
      [](const std::pair<PaId, uint64_t> &E, PaId Id) { return E.first < Id; });
  assert(It != Vec.end() && It->first == Pa && "erasing absent PA");
  if (--It->second == 0)
    Vec.erase(It);
}

PaCountVec engine::paCountVecUnion(const PaCountVec &A, const PaCountVec &B) {
  PaCountVec Out;
  Out.reserve(A.size() + B.size());
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I].first < B[J].first)
      Out.push_back(A[I++]);
    else if (B[J].first < A[I].first)
      Out.push_back(B[J++]);
    else {
      Out.emplace_back(A[I].first, A[I].second + B[J].second);
      ++I, ++J;
    }
  }
  for (; I < A.size(); ++I)
    Out.push_back(A[I]);
  for (; J < B.size(); ++J)
    Out.push_back(B[J]);
  return Out;
}

size_t StateArena::hashPaCountVec(const PaCountVec &Vec) {
  size_t Seed = 0x811c9dc5;
  for (const auto &[Id, Count] : Vec) {
    hashCombine(Seed, Id);
    hashCombine(Seed, static_cast<size_t>(Count));
  }
  return Seed;
}

size_t StateArena::paValueHash(const PaCountVec &Vec) const {
  // Summed per-entry mix: insensitive to entry order and to the PaId
  // assignment (which depends on interning order), so the hash is a pure
  // function of the multiset value.
  size_t Sum = 0;
  for (const auto &[Id, Count] : Vec) {
    size_t Entry = pa(Id).hash();
    hashCombine(Entry, static_cast<size_t>(Count));
    Sum += Entry;
  }
  return Sum;
}

//===----------------------------------------------------------------------===//
// Per-thread decode caches (compact mode)
//===----------------------------------------------------------------------===//

namespace {

/// FIFO-evicting map from (arena serial, id) to a decoded item. FIFO (not
/// LRU) keeps hits allocation-free; the validity horizon is the same for
/// the arena's access pattern — an entry lives for at least
/// DecodeCacheCapacity subsequent distinct decodes.
template <typename T> struct TlCache {
  std::unordered_map<uint64_t, std::unique_ptr<T>> Map;
  std::deque<uint64_t> Fifo;

  const T *find(uint64_t Key) const {
    auto It = Map.find(Key);
    return It == Map.end() ? nullptr : It->second.get();
  }
  const T &insert(uint64_t Key, T V) {
    if (Fifo.size() >= StateArena::DecodeCacheCapacity) {
      Map.erase(Fifo.front());
      Fifo.pop_front();
    }
    Fifo.push_back(Key);
    return *(Map[Key] = std::make_unique<T>(std::move(V)));
  }
};

struct DecodeCaches {
  TlCache<Store> Stores;
  TlCache<PaCountVec> Vecs;
  TlCache<PaMultiset> Sets;
  TlCache<std::vector<PaId>> Orders;
};

DecodeCaches &decodeCaches() {
  thread_local DecodeCaches Caches;
  return Caches;
}

uint64_t cacheKey(uint32_t Serial, uint32_t Id) {
  return (static_cast<uint64_t>(Serial) << 32) | Id;
}

std::atomic<uint32_t> NextArenaSerial{1};

/// The spill accountant is process-global: one verify run builds several
/// arenas (the IS universe, two cross-check explorations, refinement),
/// and the memory budget caps their *combined* hot encoded bytes, not
/// each arena's. Every spilling arena adds on intern, subtracts on evict
/// and settles its remainder at destruction.
std::atomic<uint64_t> GlobalHotBytes{0};

} // namespace

//===----------------------------------------------------------------------===//
// StateArena
//===----------------------------------------------------------------------===//

StateArena::StateArena(unsigned Shards, bool Compress,
                       const SpillOptions &Spill)
    : NumShardsRt(Shards), Compress(Compress),
      Serial(NextArenaSerial.fetch_add(1, std::memory_order_relaxed)) {
  assert(Shards >= 1 && Shards <= MaxShards &&
         (Shards & (Shards - 1)) == 0 && "shard count must be a power of "
                                         "two in [1, 16]");
  // Only the compact store holds encoded bytes to spill; the config
  // layer rejects spill without compress, so silently staying hot here
  // only affects direct construction in tests.
  if (Spill.Enabled && Compress) {
    SpillEnabled = true;
    MemBudget = Spill.MemBudget;
    Cold = std::make_unique<ColdStore>(Spill.Dir + "/arena-" +
                                       std::to_string(Serial));
  }
  EmptyPaSet = internPaVec({});
}

StateArena::~StateArena() {
  if (SpillEnabled)
    GlobalHotBytes.fetch_sub(HotBytes.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Tiered store: append bookkeeping, pinned reads, clock eviction
//===----------------------------------------------------------------------===//

template <typename Item>
void StateArena::noteAppend(BlockStore<Item> &Items, SpillState &Sp,
                            size_t Local) {
  if (!SpillEnabled)
    return;
  if (Local % SpillBlockItems == 0)
    Sp.Meta.push_back(SpillMeta());
  if (Local % SpillBlockItems == SpillBlockItems - 1) {
    // The block is full: record its payload size and seal it. Sealing
    // happens under the shard mutex, so Bytes is published to the
    // evictor by the Sealed transition below.
    size_t BlockIdx = Local / SpillBlockItems;
    SpillMeta &M = Sp.Meta[BlockIdx];
    uint64_t Bytes = 0;
    for (size_t I = BlockIdx * SpillBlockItems; I <= Local; ++I)
      Bytes += Items[I].Encoded.size();
    M.Bytes = Bytes;
    M.State.store(SpillMeta::Sealed, std::memory_order_release);
  }
}

template <typename Item, typename Fn>
auto StateArena::withEncoded(const Shard<Item> &Sh, const SpillState &Sp,
                             size_t Local, Fn &&F) const {
  if (!SpillEnabled) {
    const std::string &E = Sh.Items[Local].Encoded;
    return F(E.data(), E.data() + E.size());
  }
  const SpillMeta &M = Sp.Meta[Local / SpillBlockItems];
  M.Referenced.store(true, std::memory_order_relaxed);
  // seq_cst pin/state pairing against the evictor's state/pin pairing:
  // either the evictor sees our pin and waits, or we see Evicted and
  // take the cold path — never both misses (the store-buffering outcome
  // is forbidden under seq_cst).
  M.Pins.fetch_add(1, std::memory_order_seq_cst);
  if (M.State.load(std::memory_order_seq_cst) != SpillMeta::Evicted) {
    struct Unpin {
      const SpillMeta &M;
      ~Unpin() { M.Pins.fetch_sub(1, std::memory_order_release); }
    } Guard{M};
    const std::string &E = Sh.Items[Local].Encoded;
    return F(E.data(), E.data() + E.size());
  }
  M.Pins.fetch_sub(1, std::memory_order_release);
  // Cold fault: the mapping is immortal for the arena's lifetime, so no
  // pin is needed. The first fault of a block verifies its checksum.
  auto Start = std::chrono::steady_clock::now();
  bool FirstFault = M.ColdVerified.load(std::memory_order_acquire) == 0;
  ColdStore::MappedBlock B = Cold->map(M.ColdRef, FirstFault);
  if (FirstFault) {
    M.ColdVerified.store(1, std::memory_order_release);
    BlocksFaultedCtr.fetch_add(1, std::memory_order_relaxed);
  }
  size_t Slot = Local % SpillBlockItems;
  const char *Begin = B.Payload + (Slot ? B.Ends[Slot - 1] : 0);
  const char *End = B.Payload + B.Ends[Slot];
  FaultStallNanosCtr.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()),
      std::memory_order_relaxed);
  return F(Begin, End);
}

template <typename Item>
bool StateArena::evictBlock(Shard<Item> &Sh, SpillState &Sp,
                            size_t BlockIdx) {
  SpillMeta &M = Sp.Meta[BlockIdx];
  size_t First = BlockIdx * SpillBlockItems;
  std::vector<uint32_t> Ends;
  Ends.reserve(SpillBlockItems);
  std::string Payload;
  Payload.reserve(M.Bytes);
  for (size_t I = 0; I < SpillBlockItems; ++I) {
    Payload.append(Sh.Items[First + I].Encoded);
    Ends.push_back(static_cast<uint32_t>(Payload.size()));
  }
  // A pathological block bigger than a segment stays hot (best effort)
  // rather than aborting the run.
  if (Payload.size() + 4 * SpillBlockItems + 64 > ColdStore::SegmentCapacity)
    return false;
  M.ColdRef = Cold->appendBlock(Ends, Payload.data(), Payload.size());
  M.State.store(SpillMeta::Evicted, std::memory_order_seq_cst);
  // Readers that pinned before the flip may still be on the hot strings;
  // drain them before freeing. New readers see Evicted and go cold.
  while (M.Pins.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  for (size_t I = 0; I < SpillBlockItems; ++I)
    std::string().swap(Sh.Items[First + I].Encoded);
  HotBytes.fetch_sub(M.Bytes, std::memory_order_relaxed);
  GlobalHotBytes.fetch_sub(M.Bytes, std::memory_order_relaxed);
  BlocksEvictedCtr.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void StateArena::maybeSpill() {
  if (!SpillEnabled ||
      GlobalHotBytes.load(std::memory_order_relaxed) <= MemBudget)
    return;
  std::unique_lock<std::mutex> Lock(EvictMutex, std::try_to_lock);
  if (!Lock.owns_lock())
    return; // someone else is evicting
  // Clock sweep with second chance: the first pass over a referenced
  // block clears the bit, the second pass evicts it. Two full sweeps
  // without reaching the budget mean nothing more is evictable (tail
  // blocks are unsealed, the rest already cold) — the budget is best
  // effort, never a livelock.
  for (unsigned Sweep = 0; Sweep < 2; ++Sweep) {
    for (unsigned Kind = 0; Kind < 2; ++Kind) {
      for (unsigned S = 0; S < NumShardsRt; ++S) {
        if (GlobalHotBytes.load(std::memory_order_relaxed) <= MemBudget)
          return;
        size_t Blocks;
        {
          std::mutex &ShardM =
              Kind == 0 ? StoreShards[S].M : PaSetShards[S].M;
          std::lock_guard<std::mutex> G(ShardM);
          Blocks = (Kind == 0 ? StoreSpill[S] : PaSetSpill[S]).Meta.size();
        }
        SpillState &Sp = Kind == 0 ? StoreSpill[S] : PaSetSpill[S];
        size_t &Hand = ClockPos[Kind][S];
        for (size_t N = 0; N < Blocks; ++N) {
          if (GlobalHotBytes.load(std::memory_order_relaxed) <= MemBudget)
            return;
          size_t B = Hand++ % Blocks;
          SpillMeta &M = Sp.Meta[B];
          if (M.State.load(std::memory_order_acquire) != SpillMeta::Sealed)
            continue;
          if (M.Pins.load(std::memory_order_acquire) != 0)
            continue;
          if (M.Referenced.exchange(false, std::memory_order_relaxed))
            continue; // second chance
          if (Kind == 0)
            evictBlock(StoreShards[S], Sp, B);
          else
            evictBlock(PaSetShards[S], Sp, B);
        }
      }
    }
  }
}

StoreId StateArena::internStore(const Store &S) {
  size_t Hash = S.hash(); // memoized inside Store
  Lookups.fetch_add(1, std::memory_order_relaxed);
  std::string Encoded;
  if (Compress)
    Encoded = encodeStore(S); // encode outside the lock
  size_t SIdx = shardFor(Hash);
  auto &Shard = StoreShards[SIdx];
  StoreId Result;
  {
    std::lock_guard<std::mutex> Lock(Shard.M);
    std::vector<uint32_t> &Bucket = Shard.Buckets[Hash];
    for (uint32_t Local : Bucket) {
      const StoreItem &Item = Shard.Items[Local];
      // Canonical encodings make byte equality value equality. In spill
      // mode the candidate's bytes may live in the cold tier.
      bool Equal =
          Compress
              ? withEncoded(Shard, StoreSpill[SIdx], Local,
                            [&](const char *B, const char *E) {
                              return static_cast<size_t>(E - B) ==
                                         Encoded.size() &&
                                     std::memcmp(B, Encoded.data(),
                                                 Encoded.size()) == 0;
                            })
              : Item.Value == S;
      if (Equal) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        return makeId(SIdx, Local);
      }
    }
    StoreItem Item;
    Item.ValueHash = Hash;
    if (Compress) {
      CompressedBytes.fetch_add(Encoded.size(), std::memory_order_relaxed);
      if (SpillEnabled) {
        HotBytes.fetch_add(Encoded.size(), std::memory_order_relaxed);
        GlobalHotBytes.fetch_add(Encoded.size(), std::memory_order_relaxed);
      }
      Item.Encoded = std::move(Encoded);
    } else {
      Item.Value = S;
    }
    size_t Local = Shard.Items.push_back(std::move(Item));
    if (!Compress)
      Shard.Items[Local].Value.hash(); // memoize before sharing
    else
      noteAppend(Shard.Items, StoreSpill[SIdx], Local);
    Bucket.push_back(static_cast<uint32_t>(Local));
    Result = makeId(SIdx, Local);
  }
  maybeSpill(); // outside the shard mutex
  return Result;
}

PaId StateArena::internPa(const PendingAsync &PA) {
  size_t Hash = PA.hash();
  Lookups.fetch_add(1, std::memory_order_relaxed);
  auto &Shard = PaShards[shardFor(Hash)];
  std::lock_guard<std::mutex> Lock(Shard.M);
  std::vector<uint32_t> &Bucket = Shard.Buckets[Hash];
  for (uint32_t Local : Bucket)
    if (Shard.Items[Local] == PA) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return makeId(shardFor(Hash), Local);
    }
  size_t Local = Shard.Items.push_back(PA);
  // Memoize the argument-value hashes on the stored copy before any other
  // thread can reach it, so later concurrent hash() calls are pure reads.
  Shard.Items[Local].hash();
  Bucket.push_back(static_cast<uint32_t>(Local));
  return makeId(shardFor(Hash), Local);
}

PaSetId StateArena::internPaSet(const PaMultiset &Omega) {
  PaCountVec Vec;
  Vec.reserve(Omega.entries().size());
  for (const auto &[PA, Count] : Omega.entries())
    Vec.emplace_back(internPa(PA), Count);
  std::sort(Vec.begin(), Vec.end());
  PaSetId Id = internPaVec(std::move(Vec));
  if (!Compress) {
    // We already hold the value form: record it so paSet() never has to
    // materialize this entry.
    PaSetItem &Item = PaSetShards[shardOf(Id)].Items[localOf(Id)];
    if (!Item.Value.load(std::memory_order_acquire)) {
      const PaMultiset *Fresh = new PaMultiset(Omega);
      const PaMultiset *Expected = nullptr;
      if (!Item.Value.compare_exchange_strong(Expected, Fresh,
                                              std::memory_order_release,
                                              std::memory_order_acquire))
        delete Fresh;
    }
  }
  return Id;
}

PaSetId StateArena::internPaVec(PaCountVec Vec) {
  assert(std::is_sorted(Vec.begin(), Vec.end()) && "PaCountVec not canonical");
  size_t Hash = hashPaCountVec(Vec);
  Lookups.fetch_add(1, std::memory_order_relaxed);
  std::string Encoded;
  if (Compress)
    Encoded = encodePaVec(Vec);
  size_t SIdx = shardFor(Hash);
  auto &Shard = PaSetShards[SIdx];
  PaSetId Result;
  {
    std::lock_guard<std::mutex> Lock(Shard.M);
    std::vector<uint32_t> &Bucket = Shard.Buckets[Hash];
    for (uint32_t Local : Bucket) {
      const PaSetItem &Item = Shard.Items[Local];
      bool Equal =
          Compress
              ? withEncoded(Shard, PaSetSpill[SIdx], Local,
                            [&](const char *B, const char *E) {
                              return static_cast<size_t>(E - B) ==
                                         Encoded.size() &&
                                     std::memcmp(B, Encoded.data(),
                                                 Encoded.size()) == 0;
                            })
              : Item.Vec == Vec;
      if (Equal) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        return makeId(SIdx, Local);
      }
    }
    PaSetItem Item;
    // pa() reads are lock-free, so computing the value hash under this
    // shard's mutex cannot deadlock.
    Item.ValueHash = paValueHash(Vec);
    if (Compress) {
      CompressedBytes.fetch_add(Encoded.size(), std::memory_order_relaxed);
      if (SpillEnabled) {
        HotBytes.fetch_add(Encoded.size(), std::memory_order_relaxed);
        GlobalHotBytes.fetch_add(Encoded.size(), std::memory_order_relaxed);
      }
      Item.Encoded = std::move(Encoded);
    } else {
      Item.Vec = std::move(Vec);
    }
    size_t Local = Shard.Items.push_back(std::move(Item));
    if (Compress)
      noteAppend(Shard.Items, PaSetSpill[SIdx], Local);
    Bucket.push_back(static_cast<uint32_t>(Local));
    Result = makeId(SIdx, Local);
  }
  maybeSpill();
  return Result;
}

ConfigId StateArena::internConfig(StoreId G, PaSetId Omega) {
  // Shard by the configuration's value hash — ids depend on interning
  // order (racy under parallel interning), values do not, so per-shard
  // populations (and the shard-occupancy stat) stay deterministic.
  size_t Hash = StoreShards[shardOf(G)].Items[localOf(G)].ValueHash;
  hashCombine(Hash, PaSetShards[shardOf(Omega)].Items[localOf(Omega)].ValueHash);
  uint64_t Key = (static_cast<uint64_t>(G) << 32) | Omega;
  Lookups.fetch_add(1, std::memory_order_relaxed);
  auto &Shard = ConfigShards[shardFor(Hash)];
  std::lock_guard<std::mutex> Lock(Shard.M);
  auto It = Shard.Index.find(Key);
  if (It != Shard.Index.end()) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    return makeId(shardFor(Hash), It->second);
  }
  size_t Local = Shard.Items.push_back({G, Omega});
  Shard.Index.emplace(Key, static_cast<uint32_t>(Local));
  return makeId(shardFor(Hash), Local);
}

ConfigId StateArena::internConfig(const Configuration &C) {
  assert(!C.isFailure() && "cannot intern the failure configuration");
  return internConfig(internStore(C.global()), internPaSet(C.pendingAsyncs()));
}

const Store &StateArena::store(StoreId Id) const {
  const StoreItem &Item = StoreShards[shardOf(Id)].Items[localOf(Id)];
  if (!Compress)
    return Item.Value;
  TlCache<Store> &Cache = decodeCaches().Stores;
  uint64_t Key = cacheKey(Serial, Id);
  if (const Store *Hit = Cache.find(Key))
    return *Hit;
  return Cache.insert(
      Key, withEncoded(StoreShards[shardOf(Id)], StoreSpill[shardOf(Id)],
                       localOf(Id), [](const char *B, const char *E) {
                         return decodeStore(B, E);
                       }));
}

const PendingAsync &StateArena::pa(PaId Id) const {
  return PaShards[shardOf(Id)].Items[localOf(Id)];
}

const PaCountVec &StateArena::paVec(PaSetId Id) const {
  const PaSetItem &Item = PaSetShards[shardOf(Id)].Items[localOf(Id)];
  if (!Compress)
    return Item.Vec;
  TlCache<PaCountVec> &Cache = decodeCaches().Vecs;
  uint64_t Key = cacheKey(Serial, Id);
  if (const PaCountVec *Hit = Cache.find(Key))
    return *Hit;
  return Cache.insert(
      Key, withEncoded(PaSetShards[shardOf(Id)], PaSetSpill[shardOf(Id)],
                       localOf(Id), [](const char *B, const char *E) {
                         return decodePaVec(B, E);
                       }));
}

PaMultiset StateArena::materialize(const PaCountVec &Vec) const {
  PaMultiset Omega;
  for (const auto &[Id, Count] : Vec)
    Omega.insert(pa(Id), Count);
  return Omega;
}

const PaMultiset &StateArena::paSet(PaSetId Id) const {
  const PaSetItem &Item = PaSetShards[shardOf(Id)].Items[localOf(Id)];
  if (Compress) {
    TlCache<PaMultiset> &Cache = decodeCaches().Sets;
    uint64_t Key = cacheKey(Serial, Id);
    if (const PaMultiset *Hit = Cache.find(Key))
      return *Hit;
    return Cache.insert(Key, materialize(paVec(Id)));
  }
  if (const PaMultiset *Hit = Item.Value.load(std::memory_order_acquire))
    return *Hit;
  const PaMultiset *Fresh = new PaMultiset(materialize(Item.Vec));
  const PaMultiset *Expected = nullptr;
  // Racing materializations build identical values; the loser's copy dies.
  if (!const_cast<PaSetItem &>(Item).Value.compare_exchange_strong(
          Expected, Fresh, std::memory_order_release,
          std::memory_order_acquire)) {
    delete Fresh;
    return *Expected;
  }
  return *Fresh;
}

std::vector<PaId> StateArena::orderOf(const PaCountVec &Vec) const {
  std::vector<PaId> Order;
  Order.reserve(Vec.size());
  for (const auto &[PaIdOf, Count] : Vec) {
    (void)Count;
    Order.push_back(PaIdOf);
  }
  std::sort(Order.begin(), Order.end(),
            [this](PaId A, PaId B) { return pa(A) < pa(B); });
  return Order;
}

const std::vector<PaId> &StateArena::paOrder(PaSetId Id) const {
  const PaSetItem &Item = PaSetShards[shardOf(Id)].Items[localOf(Id)];
  if (Compress) {
    TlCache<std::vector<PaId>> &Cache = decodeCaches().Orders;
    uint64_t Key = cacheKey(Serial, Id);
    if (const std::vector<PaId> *Hit = Cache.find(Key))
      return *Hit;
    return Cache.insert(Key, orderOf(paVec(Id)));
  }
  if (const std::vector<PaId> *Hit =
          Item.Order.load(std::memory_order_acquire))
    return *Hit;
  const std::vector<PaId> *Fresh =
      new std::vector<PaId>(orderOf(Item.Vec));
  const std::vector<PaId> *Expected = nullptr;
  if (!const_cast<PaSetItem &>(Item).Order.compare_exchange_strong(
          Expected, Fresh, std::memory_order_release,
          std::memory_order_acquire)) {
    delete Fresh;
    return *Expected;
  }
  return *Fresh;
}

std::pair<StoreId, PaSetId> StateArena::config(ConfigId Id) const {
  return ConfigShards[shardOf(Id)].Items[localOf(Id)];
}

Configuration StateArena::configuration(ConfigId Id) const {
  auto [G, Omega] = config(Id);
  return Configuration(store(G), paSet(Omega));
}

ArenaStats StateArena::stats() const {
  ArenaStats S;
  S.Shards = NumShardsRt;
  for (size_t I = 0; I < NumShardsRt; ++I) {
    std::lock_guard<std::mutex> LS(StoreShards[I].M);
    S.Stores += StoreShards[I].Items.size();
  }
  for (size_t I = 0; I < NumShardsRt; ++I) {
    std::lock_guard<std::mutex> LP(PaShards[I].M);
    S.Pas += PaShards[I].Items.size();
  }
  for (size_t I = 0; I < NumShardsRt; ++I) {
    std::lock_guard<std::mutex> LO(PaSetShards[I].M);
    S.PaSets += PaSetShards[I].Items.size();
  }
  for (size_t I = 0; I < NumShardsRt; ++I) {
    std::lock_guard<std::mutex> LC(ConfigShards[I].M);
    S.Configs += ConfigShards[I].Items.size();
    if (ConfigShards[I].Items.size() > 0)
      ++S.ShardOccupancy;
  }
  S.Lookups = Lookups.load(std::memory_order_relaxed);
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.CompressedBytes = CompressedBytes.load(std::memory_order_relaxed);
  S.SpillEnabled = SpillEnabled;
  S.MemBudget = MemBudget;
  S.BytesHot = SpillEnabled ? HotBytes.load(std::memory_order_relaxed) : 0;
  S.BytesCold = Cold ? Cold->bytesWritten() : 0;
  S.BlocksEvicted = BlocksEvictedCtr.load(std::memory_order_relaxed);
  S.BlocksFaulted = BlocksFaultedCtr.load(std::memory_order_relaxed);
  S.FaultStallNanos = FaultStallNanosCtr.load(std::memory_order_relaxed);
  return S;
}
