//===- engine/StateArena.cpp - Hash-consed state interning -------------------===//

#include "engine/StateArena.h"

#include <algorithm>
#include <cassert>

using namespace isq;
using namespace isq::engine;

void engine::paCountVecErase(PaCountVec &Vec, PaId Pa) {
  auto It = std::lower_bound(
      Vec.begin(), Vec.end(), Pa,
      [](const std::pair<PaId, uint64_t> &E, PaId Id) { return E.first < Id; });
  assert(It != Vec.end() && It->first == Pa && "erasing absent PA");
  if (--It->second == 0)
    Vec.erase(It);
}

PaCountVec engine::paCountVecUnion(const PaCountVec &A, const PaCountVec &B) {
  PaCountVec Out;
  Out.reserve(A.size() + B.size());
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I].first < B[J].first)
      Out.push_back(A[I++]);
    else if (B[J].first < A[I].first)
      Out.push_back(B[J++]);
    else {
      Out.emplace_back(A[I].first, A[I].second + B[J].second);
      ++I, ++J;
    }
  }
  for (; I < A.size(); ++I)
    Out.push_back(A[I]);
  for (; J < B.size(); ++J)
    Out.push_back(B[J]);
  return Out;
}

size_t StateArena::hashPaCountVec(const PaCountVec &Vec) {
  size_t Seed = 0x811c9dc5;
  for (const auto &[Id, Count] : Vec) {
    hashCombine(Seed, Id);
    hashCombine(Seed, static_cast<size_t>(Count));
  }
  return Seed;
}

StateArena::StateArena() { EmptyPaSet = internPaVec({}); }

StoreId StateArena::internStore(const Store &S) {
  size_t Hash = S.hash(); // memoized inside Store
  Lookups.fetch_add(1, std::memory_order_relaxed);
  auto &Shard = StoreShards[Hash % NumShards];
  std::lock_guard<std::mutex> Lock(Shard.M);
  std::vector<uint32_t> &Bucket = Shard.Buckets[Hash];
  for (uint32_t Local : Bucket)
    if (Shard.Items[Local] == S) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return makeId(Hash % NumShards, Local);
    }
  uint32_t Local = static_cast<uint32_t>(Shard.Items.size());
  Shard.Items.push_back(S);
  Shard.Items.back().hash(); // memoize on the stored copy before sharing
  Bucket.push_back(Local);
  return makeId(Hash % NumShards, Local);
}

PaId StateArena::internPa(const PendingAsync &PA) {
  size_t Hash = PA.hash();
  Lookups.fetch_add(1, std::memory_order_relaxed);
  auto &Shard = PaShards[Hash % NumShards];
  std::lock_guard<std::mutex> Lock(Shard.M);
  std::vector<uint32_t> &Bucket = Shard.Buckets[Hash];
  for (uint32_t Local : Bucket)
    if (Shard.Items[Local] == PA) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return makeId(Hash % NumShards, Local);
    }
  uint32_t Local = static_cast<uint32_t>(Shard.Items.size());
  Shard.Items.push_back(PA);
  Bucket.push_back(Local);
  return makeId(Hash % NumShards, Local);
}

PaSetId StateArena::internPaSet(const PaMultiset &Omega) {
  PaCountVec Vec;
  Vec.reserve(Omega.entries().size());
  for (const auto &[PA, Count] : Omega.entries())
    Vec.emplace_back(internPa(PA), Count);
  std::sort(Vec.begin(), Vec.end());
  PaSetId Id = internPaVec(std::move(Vec));
  // We already hold the value form: record it so paSet() never has to
  // materialize this entry.
  auto &Shard = PaSetShards[shardOf(Id)];
  std::lock_guard<std::mutex> Lock(Shard.M);
  PaSetItem &Item = Shard.Items[localOf(Id)];
  if (!Item.Value)
    Item.Value = Omega;
  return Id;
}

PaSetId StateArena::internPaVec(PaCountVec Vec) {
  assert(std::is_sorted(Vec.begin(), Vec.end()) && "PaCountVec not canonical");
  size_t Hash = hashPaCountVec(Vec);
  Lookups.fetch_add(1, std::memory_order_relaxed);
  auto &Shard = PaSetShards[Hash % NumShards];
  std::lock_guard<std::mutex> Lock(Shard.M);
  std::vector<uint32_t> &Bucket = Shard.Buckets[Hash];
  for (uint32_t Local : Bucket)
    if (Shard.Items[Local].Vec == Vec) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return makeId(Hash % NumShards, Local);
    }
  uint32_t Local = static_cast<uint32_t>(Shard.Items.size());
  Shard.Items.push_back(PaSetItem{std::move(Vec), std::nullopt});
  Bucket.push_back(Local);
  return makeId(Hash % NumShards, Local);
}

ConfigId StateArena::internConfig(StoreId G, PaSetId Omega) {
  uint64_t Key = (static_cast<uint64_t>(G) << 32) | Omega;
  size_t Hash = std::hash<uint64_t>{}(Key);
  Lookups.fetch_add(1, std::memory_order_relaxed);
  auto &Shard = ConfigShards[Hash % NumShards];
  std::lock_guard<std::mutex> Lock(Shard.M);
  auto It = Shard.Index.find(Key);
  if (It != Shard.Index.end()) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    return makeId(Hash % NumShards, It->second);
  }
  uint32_t Local = static_cast<uint32_t>(Shard.Items.size());
  Shard.Items.emplace_back(G, Omega);
  Shard.Index.emplace(Key, Local);
  return makeId(Hash % NumShards, Local);
}

ConfigId StateArena::internConfig(const Configuration &C) {
  assert(!C.isFailure() && "cannot intern the failure configuration");
  return internConfig(internStore(C.global()), internPaSet(C.pendingAsyncs()));
}

const Store &StateArena::store(StoreId Id) const {
  auto &Shard = StoreShards[shardOf(Id)];
  std::lock_guard<std::mutex> Lock(Shard.M);
  return Shard.Items[localOf(Id)];
}

const PendingAsync &StateArena::pa(PaId Id) const {
  auto &Shard = PaShards[shardOf(Id)];
  std::lock_guard<std::mutex> Lock(Shard.M);
  return Shard.Items[localOf(Id)];
}

const PaCountVec &StateArena::paVec(PaSetId Id) const {
  auto &Shard = PaSetShards[shardOf(Id)];
  std::lock_guard<std::mutex> Lock(Shard.M);
  return Shard.Items[localOf(Id)].Vec;
}

PaMultiset StateArena::materialize(const PaCountVec &Vec) {
  PaMultiset Omega;
  for (const auto &[Id, Count] : Vec)
    Omega.insert(pa(Id), Count);
  return Omega;
}

const PaMultiset &StateArena::paSet(PaSetId Id) {
  auto &Shard = PaSetShards[shardOf(Id)];
  {
    std::lock_guard<std::mutex> Lock(Shard.M);
    PaSetItem &Item = Shard.Items[localOf(Id)];
    if (Item.Value)
      return *Item.Value;
  }
  // Materialize outside the shard lock: pa() takes other shard locks and
  // the conversion is the slow path anyway. Double-checked on re-entry.
  PaMultiset Omega = materialize(paVec(Id));
  std::lock_guard<std::mutex> Lock(Shard.M);
  PaSetItem &Item = Shard.Items[localOf(Id)];
  if (!Item.Value)
    Item.Value = std::move(Omega);
  return *Item.Value;
}

const std::vector<PaId> &StateArena::paOrder(PaSetId Id) {
  auto &Shard = PaSetShards[shardOf(Id)];
  {
    std::lock_guard<std::mutex> Lock(Shard.M);
    PaSetItem &Item = Shard.Items[localOf(Id)];
    if (Item.Order)
      return *Item.Order;
  }
  // Sort outside the shard lock (pa() takes other shard locks).
  std::vector<PaId> Order;
  for (const auto &[PaIdOf, Count] : paVec(Id)) {
    (void)Count;
    Order.push_back(PaIdOf);
  }
  std::sort(Order.begin(), Order.end(),
            [this](PaId A, PaId B) { return pa(A) < pa(B); });
  std::lock_guard<std::mutex> Lock(Shard.M);
  PaSetItem &Item = Shard.Items[localOf(Id)];
  if (!Item.Order)
    Item.Order = std::move(Order);
  return *Item.Order;
}

std::pair<StoreId, PaSetId> StateArena::config(ConfigId Id) const {
  auto &Shard = ConfigShards[shardOf(Id)];
  std::lock_guard<std::mutex> Lock(Shard.M);
  return Shard.Items[localOf(Id)];
}

Configuration StateArena::configuration(ConfigId Id) {
  auto [G, Omega] = config(Id);
  return Configuration(store(G), paSet(Omega));
}

ArenaStats StateArena::stats() const {
  ArenaStats S;
  for (size_t I = 0; I < NumShards; ++I) {
    std::lock_guard<std::mutex> LS(StoreShards[I].M);
    S.Stores += StoreShards[I].Items.size();
  }
  for (size_t I = 0; I < NumShards; ++I) {
    std::lock_guard<std::mutex> LP(PaShards[I].M);
    S.Pas += PaShards[I].Items.size();
  }
  for (size_t I = 0; I < NumShards; ++I) {
    std::lock_guard<std::mutex> LO(PaSetShards[I].M);
    S.PaSets += PaSetShards[I].Items.size();
  }
  for (size_t I = 0; I < NumShards; ++I) {
    std::lock_guard<std::mutex> LC(ConfigShards[I].M);
    S.Configs += ConfigShards[I].Items.size();
  }
  S.Lookups = Lookups.load(std::memory_order_relaxed);
  S.Hits = Hits.load(std::memory_order_relaxed);
  return S;
}
