//===- is/Sequentialize.cpp - Deriving and applying M' -------------------------===//

#include "is/Sequentialize.h"

using namespace isq;

Action isq::restrictInvariant(const ISApplication &App) {
  // Capture only what is needed: the invariant and the set E.
  Action Invariant = App.Invariant;
  std::vector<Symbol> E = App.E;
  auto IsToE = [E](const PendingAsync &PA) {
    for (Symbol Name : E)
      if (PA.Action == Name)
        return true;
    return false;
  };
  Action::GateFn Gate = [Invariant](const GateContext &Ctx) {
    return Invariant.evalGate(Ctx.Global, Ctx.Args, Ctx.Omega);
  };
  Action::TransitionsFn Transitions =
      [Invariant, IsToE](const Store &G, const std::vector<Value> &Args) {
        std::vector<Transition> Out;
        for (Transition &T : Invariant.transitions(G, Args)) {
          bool HasE = false;
          for (const PendingAsync &PA : T.Created)
            if (IsToE(PA)) {
              HasE = true;
              break;
            }
          if (!HasE)
            Out.push_back(std::move(T));
        }
        return Out;
      };
  // Filtering is pure, so the restriction is concurrently enumerable
  // exactly when the invariant is.
  return Action(App.M.str(), App.Invariant.arity(), std::move(Gate),
                std::move(Transitions), App.Invariant.gateReadsOmega(),
                App.Invariant.transitionsThreadSafe());
}

Action isq::sequentializedAction(const ISApplication &App) {
  if (App.SeqAction)
    return App.SeqAction->withName(App.M.str());
  return restrictInvariant(App);
}

Program isq::applyIS(const ISApplication &App) {
  return App.P.withAction(sequentializedAction(App));
}
