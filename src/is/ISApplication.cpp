//===- is/ISApplication.cpp - IS proof-rule instances --------------------------===//

#include "is/ISApplication.h"

#include <algorithm>

using namespace isq;

bool ISApplication::eliminates(Symbol Name) const {
  return std::find(E.begin(), E.end(), Name) != E.end();
}

const Action &ISApplication::abstraction(Symbol Name) const {
  assert(eliminates(Name) && "abstraction queried for non-eliminated action");
  auto It = Abstractions.find(Name);
  if (It != Abstractions.end())
    return It->second;
  return P.action(Name);
}

PaMultiset ISApplication::pasToE(const Transition &T) const {
  PaMultiset Result;
  for (const PendingAsync &PA : T.Created)
    if (eliminates(PA.Action))
      Result.insert(PA);
  return Result;
}

ChoiceFn ISApplication::chooseInOrder(std::vector<Symbol> Order) {
  return [Order = std::move(Order)](const Store &, const std::vector<Value> &,
                                    const Transition &T) {
    const PendingAsync *Best = nullptr;
    size_t BestRank = SIZE_MAX;
    for (const PendingAsync &PA : T.Created) {
      auto It = std::find(Order.begin(), Order.end(), PA.Action);
      if (It == Order.end())
        continue;
      size_t Rank = static_cast<size_t>(It - Order.begin());
      if (Rank < BestRank ||
          (Rank == BestRank && Best && PA.Args < Best->Args))
        Best = &PA, BestRank = Rank;
    }
    assert(Best && "choice function called on transition without PAs to E");
    return *Best;
  };
}
