//===- is/Measure.h - Well-founded measures ----------------------*- C++ -*-===//
///
/// \file
/// Well-founded orders over configurations for the cooperation condition
/// (CO) of the IS rule. We implement the paper's "checking cooperation is
/// easy" pattern (§4): a measure maps a configuration to a tuple of
/// natural numbers — channel sizes and PA counts — compared
/// lexicographically. Such measures are well-founded and monotonic under
/// multiset union by construction.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_IS_MEASURE_H
#define ISQ_IS_MEASURE_H

#include "semantics/Configuration.h"
#include "semantics/Fingerprint.h"

#include <functional>
#include <string>
#include <vector>

namespace isq {

/// A lexicographic measure over configurations. decreases(A, B) is the
/// well-founded order A ≫ B.
class Measure {
public:
  using Fn = std::function<std::vector<uint64_t>(const Configuration &)>;

  Measure() = default;
  Measure(std::string Name, Fn Eval)
      : Name(std::move(Name)), Eval(std::move(Eval)) {}

  bool isValid() const { return static_cast<bool>(Eval); }
  const std::string &name() const { return Name; }

  std::vector<uint64_t> eval(const Configuration &C) const {
    assert(Eval && "evaluating invalid measure");
    return Eval(C);
  }

  /// True iff eval(A) > eval(B) lexicographically (A ≫ B).
  bool decreases(const Configuration &A, const Configuration &B) const;

  /// The paper's generic pattern instantiated with the total PA count:
  /// c ≫ c' iff c has more pending asyncs than c'. Sufficient whenever
  /// eliminated actions do not create new PAs to E.
  static Measure pendingAsyncCount();

  /// A measure that sums the sizes of all bag/seq-valued variables in
  /// \p ChannelVars and then counts PAs (lexicographic).
  static Measure channelsThenPas(std::vector<Symbol> ChannelVars);

  /// Content fingerprint of what Eval computes, when known (the frontend
  /// stamps it from the declaration the measure was built from). Zero
  /// means "unknown" and makes cooperation obligations ineligible for the
  /// verdict cache.
  const Fingerprint &fp() const { return Fp; }
  void setFp(const Fingerprint &F) { Fp = F; }

private:
  std::string Name;
  Fn Eval;
  Fingerprint Fp;
};

} // namespace isq

#endif // ISQ_IS_MEASURE_H
