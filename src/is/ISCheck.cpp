//===- is/ISCheck.cpp - IS verification conditions ------------------------------===//

#include "is/ISCheck.h"

#include "is/Sequentialize.h"
#include "movers/MoverCheck.h"
#include "semantics/ActionCache.h"

#include <unordered_set>

using namespace isq;

ISUniverse ISUniverse::build(const ISApplication &App,
                             const std::vector<InitialCondition> &Inits,
                             const ExploreOptions &Opts) {
  ISUniverse U;
  std::unordered_set<Configuration> Seen;
  auto Absorb = [&](const Program &P) {
    for (const InitialCondition &Init : Inits) {
      ExploreResult R =
          explore(P, initialConfiguration(Init.Global, Init.MainArgs), Opts);
      for (Configuration &C : R.Reachable)
        if (Seen.insert(C).second)
          U.Configs.push_back(std::move(C));
    }
  };
  Absorb(App.P);
  // The partial sequentializations: P with M replaced by the invariant.
  Absorb(App.P.withAction(App.Invariant.withName(App.M.str())));
  U.MCalls = collectContexts(U.Configs, App.M);
  return U;
}

namespace {

std::string describeCall(const ActionContext &Ctx) {
  std::string Out = "store=" + Ctx.Global.str() + " args=(";
  for (size_t I = 0; I < Ctx.Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Ctx.Args[I].str();
  }
  return Out + ")";
}

/// Constant-time membership tests for a transition set: indexes the
/// invariant's transitions by (global store, created multiset).
class TransitionSet {
public:
  explicit TransitionSet(const std::vector<Transition> &Transitions) {
    for (const Transition &T : Transitions)
      Index.insert(keyOf(T.Global, T.createdMultiset()));
  }

  bool contains(const Store &Global, const PaMultiset &Created) const {
    return Index.count(keyOf(Global, Created)) > 0;
  }

private:
  struct Key {
    Store Global;
    PaMultiset Created;
    bool operator==(const Key &O) const {
      return Global == O.Global && Created == O.Created;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t Seed = K.Global.hash();
      hashCombine(Seed, K.Created.hash());
      return Seed;
    }
  };
  static Key keyOf(const Store &Global, const PaMultiset &Created) {
    return Key{Global, Created};
  }

  std::unordered_set<Key, KeyHash> Index;
};

} // namespace

ISCheckReport isq::checkIS(const ISApplication &App,
                           const ISUniverse &Universe) {
  ISCheckReport Report;
  const Program &P = App.P;

  // --- Side conditions --------------------------------------------------
  Report.SideConditions.countObligation();
  if (!P.hasAction(App.M))
    Report.SideConditions.fail("M = " + App.M.str() + " not in dom(P)");
  for (Symbol A : App.E) {
    Report.SideConditions.countObligation();
    if (!P.hasAction(A))
      Report.SideConditions.fail("E member " + A.str() + " not in dom(P)");
  }
  Report.SideConditions.countObligation();
  if (P.hasAction(App.M) &&
      App.Invariant.arity() != P.action(App.M).arity())
    Report.SideConditions.fail("invariant arity differs from M's arity");
  for (const auto &[Name, Abs] : App.Abstractions) {
    Report.SideConditions.countObligation();
    if (!App.eliminates(Name))
      Report.SideConditions.fail("abstraction for " + Name.str() +
                                 " which is not in E");
    else if (Abs.arity() != P.action(Name).arity())
      Report.SideConditions.fail("abstraction arity mismatch for " +
                                 Name.str());
  }
  Report.SideConditions.countObligation();
  if (!App.WfMeasure.isValid())
    Report.SideConditions.fail("no well-founded measure supplied");
  Report.SideConditions.countObligation();
  if (!App.Choice)
    Report.SideConditions.fail("no choice function supplied");
  if (!Report.SideConditions.ok())
    return Report;

  // --- P(A) ≼ α(A) for A ∈ E ---------------------------------------------
  for (Symbol A : App.E) {
    if (!App.Abstractions.count(A))
      continue; // α(A) = P(A): refinement is reflexive
    ContextUniverse Ctxs = collectContexts(Universe.Configs, A);
    CheckResult R =
        checkActionRefinement(P.action(A), App.abstraction(A), Ctxs);
    if (!R.ok())
      Report.AbstractionRefinement.fail("P(" + A.str() + ") ⋠ α(" +
                                        A.str() + ")");
    Report.AbstractionRefinement.merge(R);
  }

  // --- (I1) base case: P(M) ≼ I --------------------------------------------
  Report.BaseCase =
      checkActionRefinement(P.action(App.M), App.Invariant, Universe.MCalls);

  // --- (I2) conclusion: (ρI, {t ∈ τI | PAE(t) = ∅}) ≼ M' --------------------
  {
    Action Restricted = restrictInvariant(App);
    Action SeqM = sequentializedAction(App);
    Report.Conclusion =
        checkActionRefinement(Restricted, SeqM, Universe.MCalls);
  }

  // --- (I3) inductive step ---------------------------------------------------
  for (const ActionContext &Call : Universe.MCalls) {
    if (!App.Invariant.evalGate(Call.Global, Call.Args, Call.Omega))
      continue; // t ∈ ρI ∘ τI only constrains gate-satisfying stores
    // Ω after I's step: the executing M PA is consumed.
    PendingAsync MPa(App.M, Call.Args);
    std::vector<Transition> InvTransitions =
        App.Invariant.transitions(Call.Global, Call.Args);
    TransitionSet InvSet(InvTransitions);
    TransitionCache AbsCache;
    for (const Transition &T : InvTransitions) {
      PaMultiset ToE = App.pasToE(T);
      if (ToE.empty())
        continue;
      PendingAsync Chosen = App.Choice(Call.Global, Call.Args, T);
      Report.SideConditions.countObligation();
      if (!ToE.contains(Chosen)) {
        Report.SideConditions.fail(
            "choice function selected " + Chosen.str() +
            " which is not a created PA to E at " + describeCall(Call));
        continue;
      }
      const Action &Abs = App.abstraction(Chosen.Action);

      PaMultiset OmegaAfter = Call.Omega;
      OmegaAfter.erase(MPa);
      for (const PendingAsync &New : T.Created)
        OmegaAfter.insert(New);

      // Gate of the abstraction must hold right after I's transition.
      Report.InductiveStep.countObligation();
      if (!Abs.evalGate(T.Global, Chosen.Args, OmegaAfter)) {
        Report.InductiveStep.fail("gate of α(" + Chosen.Action.str() +
                                  ") fails after invariant transition at " +
                                  describeCall(Call) + " transition " +
                                  T.str());
        continue;
      }
      // Composing I's transition with the abstraction's transition must
      // again be a transition of I.
      PaMultiset Remaining = T.createdMultiset();
      Remaining.erase(Chosen);
      for (const Transition &TA : AbsCache.get(Abs, T.Global, Chosen.Args)) {
        Report.InductiveStep.countObligation();
        PaMultiset Composed = Remaining;
        for (const PendingAsync &New : TA.Created)
          Composed.insert(New);
        if (!InvSet.contains(TA.Global, Composed))
          Report.InductiveStep.fail(
              "invariant not inductive: composing with α(" +
              Chosen.Action.str() + ") leaves τI at " + describeCall(Call));
      }
    }
  }

  // --- (LM) left movers --------------------------------------------------------
  for (Symbol A : App.E) {
    CheckResult R =
        checkLeftMover(A, App.abstraction(A), P, Universe.Configs);
    if (!R.ok())
      Report.LeftMovers.fail("α(" + A.str() + ") is not a left mover");
    Report.LeftMovers.merge(R);
  }

  // --- (CO) cooperation ----------------------------------------------------------
  TransitionCache CoCache;
  for (Symbol A : App.E) {
    const Action &Abs = App.abstraction(A);
    for (const Configuration &C : Universe.Configs) {
      if (C.isFailure())
        continue;
      for (const auto &[PA, Count] : C.pendingAsyncs().entries()) {
        (void)Count;
        if (PA.Action != A)
          continue;
        if (!Abs.evalGate(C.global(), PA.Args, C.pendingAsyncs()))
          continue;
        Report.Cooperation.countObligation();
        bool Decreases = false;
        PaMultiset Rest = C.pendingAsyncs();
        Rest.erase(PA);
        for (const Transition &TA :
             CoCache.get(Abs, C.global(), PA.Args)) {
          PaMultiset Omega = Rest;
          for (const PendingAsync &New : TA.Created)
            Omega.insert(New);
          Configuration Next(TA.Global, std::move(Omega));
          if (App.WfMeasure.decreases(C, Next)) {
            Decreases = true;
            break;
          }
        }
        if (!Decreases)
          Report.Cooperation.fail("no measure-decreasing transition of α(" +
                                  A.str() + ") for " + PA.str() + " in " +
                                  C.str());
      }
    }
  }

  return Report;
}

ISCheckReport isq::checkIS(const ISApplication &App,
                           const std::vector<InitialCondition> &Inits,
                           const ExploreOptions &Opts) {
  return checkIS(App, ISUniverse::build(App, Inits, Opts));
}

std::string ISCheckReport::str() const {
  auto Line = [](const char *Name, const CheckResult &R) {
    return std::string("  ") + Name + ": " + R.str() + "\n";
  };
  std::string Out = "IS check report:\n";
  Out += Line("side conditions", SideConditions);
  Out += Line("P(A) ≼ α(A)   ", AbstractionRefinement);
  Out += Line("(I1) base case ", BaseCase);
  Out += Line("(I2) conclusion", Conclusion);
  Out += Line("(I3) induction ", InductiveStep);
  Out += Line("(LM) left mover", LeftMovers);
  Out += Line("(CO) cooperation", Cooperation);
  Out += ok() ? "  => ACCEPTED\n" : "  => REJECTED\n";
  return Out;
}
