//===- is/ISCheck.cpp - IS verification conditions ------------------------------===//

#include "is/ISCheck.h"

#include "engine/ActionCaches.h"
#include "engine/ArenaFingerprints.h"
#include "engine/ObligationCache.h"
#include "engine/StateGraph.h"
#include "is/Sequentialize.h"
#include "movers/MoverCheck.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

using namespace isq;
using namespace isq::engine;

ISUniverse ISUniverse::build(const ISApplication &App,
                             const std::vector<InitialCondition> &Inits,
                             const ExploreOptions &Opts) {
  ISUniverse U;
  StateArena::SpillOptions Spill;
  Spill.Enabled = Opts.Config.Spill;
  Spill.Dir = Opts.Config.SpillDir;
  Spill.MemBudget = Opts.Config.MemBudget;
  U.Space.Arena = std::make_shared<StateArena>(Opts.Config.Shards,
                                               Opts.Config.Compress, Spill);
  EngineOptions EO;
  EO.MaxConfigurations = Opts.MaxConfigurations;
  EO.StopAtFirstFailure = Opts.StopAtFirstFailure;
  EO.RecordParents = false; // parents are never consulted for universes
  EO.Config = Opts.Config;
  // Both explorations intern into the one arena, so the union dedups by
  // ConfigId and the configurations are shared with every later check.
  // Note the asymmetry between the two explorations: P may run
  // symmetry-reduced, while P[M ↦ I] always runs unreduced (withAction
  // drops the symmetry spec — the schedule invariant ranks by node ID and
  // is not equivariant). A configuration first seen reduced keeps its
  // orbit size; one first seen unreduced counts as a singleton.
  std::unordered_set<ConfigId> Seen;
  auto Absorb = [&](const Program &P) {
    for (const InitialCondition &Init : Inits) {
      StateGraph G = exploreGraph(
          P, {initialConfiguration(Init.Global, Init.MainArgs)}, U.Space.Arena,
          EO);
      U.Stats.accumulate(G.stats());
      const std::vector<uint32_t> &Orbits = G.orbitSizes();
      for (size_t I = 0; I < G.nodes().size(); ++I) {
        ConfigId Cid = G.nodes()[I];
        if (Seen.insert(Cid).second) {
          U.Space.Configs.push_back(Cid);
          U.OrbitSizes.push_back(Orbits.empty() ? 1 : Orbits[I]);
        }
      }
    }
  };
  Absorb(App.P);
  // The partial sequentializations: P with M replaced by the invariant.
  Absorb(App.P.withAction(App.Invariant.withName(App.M.str())));
  // M-call contexts straight off the interned space: materializing a
  // value mirror of a few hundred thousand configurations just to find
  // the handful of M contexts costs a measurable slice of every run.
  // Configs stays empty for built universes — the checkers run over
  // Space (see the field comments); hand-built universes populate the
  // value fields instead and have no Arena.
  InternedContextUniverse Interned = collectContexts(U.Space, App.M);
  StateArena &Arena = *U.Space.Arena;
  U.MCalls.reserve(Interned.Items.size());
  for (const InternedActionContext &Ctx : Interned.Items)
    U.MCalls.push_back({Arena.store(Ctx.Global), Arena.pa(Ctx.ArgsPa).Args,
                        Arena.paSet(Ctx.Omega)});
  return U;
}

namespace {

std::string describeCall(const Store &Global, const std::vector<Value> &Args) {
  std::string Out = "store=" + Global.str() + " args=(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Args[I].str();
  }
  return Out + ")";
}

/// The invariant's transition relation at one (store, args) point, with
/// value-level transitions (preserving the user's created-PA enumeration
/// order for the choice function) alongside their interned images and an
/// integer-keyed membership index. Shared across every Ω-variant of the
/// same call point.
struct InvPoint {
  std::vector<Transition> Trans;
  std::vector<StoreId> TGlobal;
  std::vector<PaCountVec> TCreated;
  /// (Global << 32) | CreatedSet per transition of I.
  std::unordered_set<uint64_t> Index;
};

uint64_t packIds(uint32_t Hi, uint32_t Lo) {
  return (static_cast<uint64_t>(Hi) << 32) | Lo;
}

/// The structural side conditions on the application itself (everything
/// checked before any universe-quantified obligation). Shared between the
/// serial and scheduled checkers — these are O(|E|) bookkeeping checks,
/// not obligation loops.
CheckResult staticSideConditions(const ISApplication &App) {
  const Program &P = App.P;
  CheckResult R;
  R.countObligation();
  if (!P.hasAction(App.M))
    R.fail("M = " + App.M.str() + " not in dom(P)");
  for (Symbol A : App.E) {
    R.countObligation();
    if (!P.hasAction(A))
      R.fail("E member " + A.str() + " not in dom(P)");
  }
  R.countObligation();
  if (P.hasAction(App.M) && App.Invariant.arity() != P.action(App.M).arity())
    R.fail("invariant arity differs from M's arity");
  for (const auto &[Name, Abs] : App.Abstractions) {
    R.countObligation();
    if (!App.eliminates(Name))
      R.fail("abstraction for " + Name.str() + " which is not in E");
    else if (Abs.arity() != P.action(Name).arity())
      R.fail("abstraction arity mismatch for " + Name.str());
  }
  R.countObligation();
  if (!App.WfMeasure.isValid())
    R.fail("no well-founded measure supplied");
  R.countObligation();
  if (!App.Choice)
    R.fail("no choice function supplied");
  return R;
}

/// Thread-safe memo of τI per (store, args) call point, for the scheduled
/// (I3). Enumerations of invariants that do not declare thread-safe
/// transitions are serialized behind a compute mutex; a racing
/// double-compute of the same key is benign (first insert wins).
class InvPointMemo {
public:
  InvPointMemo(const Action &Inv, StateArena &Arena)
      : Inv(Inv), Arena(Arena) {}

  const InvPoint &get(StoreId G, PaId ArgsPa) {
    uint64_t K = packIds(G, ArgsPa);
    {
      std::lock_guard<std::mutex> Lock(MapMutex);
      auto It = Points.find(K);
      if (It != Points.end())
        return It->second;
    }
    InvPoint P;
    {
      std::unique_lock<std::mutex> Compute(ComputeMutex, std::defer_lock);
      if (!Inv.transitionsThreadSafe())
        Compute.lock();
      P.Trans = Inv.transitions(Arena.store(G), Arena.pa(ArgsPa).Args);
    }
    P.TGlobal.reserve(P.Trans.size());
    P.TCreated.reserve(P.Trans.size());
    for (const Transition &T : P.Trans) {
      StoreId TG = Arena.internStore(T.Global);
      PaSetId TC = Arena.internPaSet(T.createdMultiset());
      P.TGlobal.push_back(TG);
      P.TCreated.push_back(Arena.paVec(TC));
      P.Index.insert(packIds(TG, TC));
    }
    std::lock_guard<std::mutex> Lock(MapMutex);
    return Points.try_emplace(K, std::move(P)).first->second;
  }

private:
  const Action &Inv;
  StateArena &Arena;
  std::mutex MapMutex;
  std::mutex ComputeMutex;
  std::unordered_map<uint64_t, InvPoint> Points;
};

/// Thread-safe memo of measure tuples per interned (store, Ω) pair for the
/// scheduled (CO). The measure is a pure function of the configuration,
/// and cooperation consults the same configuration once per (eliminated
/// action, PA occurrence, transition); sharing one evaluation per distinct
/// configuration keeps the value-level Configuration construction off the
/// obligation hot path. A racing double-compute is benign (first insert
/// wins).
class MeasureMemo {
public:
  MeasureMemo(const Measure &M, StateArena &Arena) : M(M), Arena(Arena) {}

  const std::vector<uint64_t> &get(StoreId G, PaSetId Omega) {
    uint64_t K = packIds(G, Omega);
    if (const auto *Found = Memo.find(K, K))
      return **Found;
    std::vector<uint64_t> V =
        M.eval(Configuration(Arena.store(G), Arena.paSet(Omega)));
    return *Memo.insertWith(K, K, [&]() {
      Storage.push_back(std::move(V));
      return &Storage.back();
    });
  }

  /// Measure::decreases on memoized tuples (lexicographic, zero-padded).
  static bool decreases(const std::vector<uint64_t> &MA,
                        const std::vector<uint64_t> &MB) {
    size_t N = std::max(MA.size(), MB.size());
    for (size_t I = 0; I < N; ++I) {
      uint64_t VA = I < MA.size() ? MA[I] : 0;
      uint64_t VB = I < MB.size() ? MB[I] : 0;
      if (VA != VB)
        return VA > VB;
    }
    return false;
  }

private:
  const Measure &M;
  StateArena &Arena;
  engine::FlatMemo<uint64_t, const std::vector<uint64_t> *> Memo;
  /// Backing storage for the tuples; mutated only under the memo lock.
  std::deque<std::vector<uint64_t>> Storage;
};

/// Thread-safe memo of the distinct PAs in an interned Ω whose action is a
/// given symbol, in paOrder() order. The scheduled (CO) scans every
/// (configuration, PA) pair once per eliminated action; configurations
/// share few distinct Ω's, so the scan-and-filter amortizes to one pass
/// per (Ω, action). A racing double-compute is benign (first insert wins).
class ActionPaCache {
public:
  explicit ActionPaCache(StateArena &Arena) : Arena(Arena) {}

  const std::vector<PaId> &get(PaSetId Omega, Symbol A) {
    uint64_t K = (static_cast<uint64_t>(Omega) << 32) | A.index();
    if (const auto *Found = Memo.find(K, K))
      return **Found;
    std::vector<PaId> V;
    for (PaId Pa : Arena.paOrder(Omega))
      if (Arena.pa(Pa).Action == A)
        V.push_back(Pa);
    return *Memo.insertWith(K, K, [&]() {
      Storage.push_back(std::move(V));
      return &Storage.back();
    });
  }

private:
  StateArena &Arena;
  engine::FlatMemo<uint64_t, const std::vector<PaId> *> Memo;
  /// Backing storage for the lists; mutated only under the memo lock.
  std::deque<std::vector<PaId>> Storage;
};

} // namespace

ISCheckReport isq::checkIS(const ISApplication &App,
                           const ISUniverse &Universe) {
  ISCheckReport Report;
  const Program &P = App.P;

  // The interned universe: shared with build(), or interned on the fly for
  // hand-built universes.
  StateSpace Space = Universe.Space;
  if (!Space.Arena) {
    Space.Arena = std::make_shared<StateArena>();
    Space.Configs.reserve(Universe.Configs.size());
    for (const Configuration &C : Universe.Configs)
      if (!C.isFailure())
        Space.Configs.push_back(Space.Arena->internConfig(C));
  }
  StateArena &Arena = *Space.Arena;

  // --- Side conditions --------------------------------------------------
  Report.SideConditions = staticSideConditions(App);
  if (!Report.SideConditions.ok())
    return Report;

  // The interned M-call contexts. Derived from the value-level MCalls (not
  // from Space) so hand-built universes behave identically; for built
  // universes the two coincide.
  InternedContextUniverse MCalls;
  MCalls.Arena = Space.Arena;
  MCalls.Items.reserve(Universe.MCalls.size());
  for (const ActionContext &Ctx : Universe.MCalls)
    MCalls.Items.push_back({Arena.internStore(Ctx.Global),
                            Arena.internPa(PendingAsync(App.M, Ctx.Args)),
                            Arena.internPaSet(Ctx.Omega)});

  // --- P(A) ≼ α(A) for A ∈ E ---------------------------------------------
  for (Symbol A : App.E) {
    if (!App.Abstractions.count(A))
      continue; // α(A) = P(A): refinement is reflexive
    InternedContextUniverse Ctxs = collectContexts(Space, A);
    CheckResult R =
        checkActionRefinement(P.action(A), App.abstraction(A), Ctxs);
    if (!R.ok())
      Report.AbstractionRefinement.fail("P(" + A.str() + ") ⋠ α(" +
                                        A.str() + ")");
    Report.AbstractionRefinement.merge(R);
  }

  // --- (I1) base case: P(M) ≼ I --------------------------------------------
  Report.BaseCase =
      checkActionRefinement(P.action(App.M), App.Invariant, MCalls);

  // --- (I2) conclusion: (ρI, {t ∈ τI | PAE(t) = ∅}) ≼ M' --------------------
  {
    Action Restricted = restrictInvariant(App);
    Action SeqM = sequentializedAction(App);
    Report.Conclusion = checkActionRefinement(Restricted, SeqM, MCalls);
  }

  // --- (I3) inductive step ---------------------------------------------------
  {
    // τI and its interned image, memoized per call point: Ω-variants of
    // one (store, args) point share the enumeration and the index.
    std::unordered_map<uint64_t, InvPoint> InvPoints;
    InternedTransitionCache AbsCache(Arena);
    for (const InternedActionContext &Call : MCalls.Items) {
      const Store &CallStore = Arena.store(Call.Global);
      const std::vector<Value> &CallArgs = Arena.pa(Call.ArgsPa).Args;
      const PaMultiset &CallOmega = Arena.paSet(Call.Omega);
      if (!App.Invariant.evalGate(CallStore, CallArgs, CallOmega))
        continue; // t ∈ ρI ∘ τI only constrains gate-satisfying stores

      auto [PointIt, New] =
          InvPoints.try_emplace(packIds(Call.Global, Call.ArgsPa));
      InvPoint &Point = PointIt->second;
      if (New) {
        Point.Trans = App.Invariant.transitions(CallStore, CallArgs);
        Point.TGlobal.reserve(Point.Trans.size());
        Point.TCreated.reserve(Point.Trans.size());
        for (const Transition &T : Point.Trans) {
          StoreId TG = Arena.internStore(T.Global);
          PaSetId TC = Arena.internPaSet(T.createdMultiset());
          Point.TGlobal.push_back(TG);
          Point.TCreated.push_back(Arena.paVec(TC));
          Point.Index.insert(packIds(TG, TC));
        }
      }

      for (size_t TI = 0; TI < Point.Trans.size(); ++TI) {
        const Transition &T = Point.Trans[TI];
        PaMultiset ToE = App.pasToE(T);
        if (ToE.empty())
          continue;
        PendingAsync Chosen = App.Choice(CallStore, CallArgs, T);
        Report.SideConditions.countObligation();
        if (!ToE.contains(Chosen)) {
          Report.SideConditions.fail(
              "choice function selected " + Chosen.str() +
              " which is not a created PA to E at " +
              describeCall(CallStore, CallArgs));
          continue;
        }
        const Action &Abs = App.abstraction(Chosen.Action);
        PaId ChosenPa = Arena.internPa(Chosen);

        // Ω after I's step: the executing M PA is consumed and T's created
        // PAs appear.
        PaCountVec Rest(Arena.paVec(Call.Omega));
        paCountVecErase(Rest, Call.ArgsPa);
        const PaMultiset &OmegaAfter =
            Arena.paSet(Arena.internPaVec(paCountVecUnion(
                Rest, Point.TCreated[TI])));

        // Gate of the abstraction must hold right after I's transition.
        Report.InductiveStep.countObligation();
        if (!Abs.evalGate(Arena.store(Point.TGlobal[TI]), Chosen.Args,
                          OmegaAfter)) {
          Report.InductiveStep.fail("gate of α(" + Chosen.Action.str() +
                                    ") fails after invariant transition at " +
                                    describeCall(CallStore, CallArgs) +
                                    " transition " + T.str());
          continue;
        }
        // Composing I's transition with the abstraction's transition must
        // again be a transition of I.
        PaCountVec Remaining(Point.TCreated[TI]);
        paCountVecErase(Remaining, ChosenPa);
        for (const InternedTransition &TA :
             AbsCache.get(Abs, Point.TGlobal[TI], ChosenPa)) {
          Report.InductiveStep.countObligation();
          PaSetId Composed =
              Arena.internPaVec(paCountVecUnion(Remaining, TA.Created));
          if (!Point.Index.count(packIds(TA.Global, Composed)))
            Report.InductiveStep.fail(
                "invariant not inductive: composing with α(" +
                Chosen.Action.str() + ") leaves τI at " +
                describeCall(CallStore, CallArgs));
        }
      }
    }
  }

  // --- (LM) left movers --------------------------------------------------------
  for (Symbol A : App.E) {
    CheckResult R = checkLeftMover(A, App.abstraction(A), P, Space);
    if (!R.ok())
      Report.LeftMovers.fail("α(" + A.str() + ") is not a left mover");
    Report.LeftMovers.merge(R);
  }

  // --- (CO) cooperation ----------------------------------------------------------
  {
    InternedTransitionCache CoCache(Arena);
    GateCache Gates(Arena);
    for (Symbol A : App.E) {
      const Action &Abs = App.abstraction(A);
      for (ConfigId Cid : Space.Configs) {
        auto [G, OmegaId] = Arena.config(Cid);
        const PaCountVec &Entries = Arena.paVec(OmegaId);
        // Materialized lazily: only configurations holding a PA to A (and
        // the measure comparison) need value-level views. Value order for
        // deterministic diagnostics under parallel universe builds.
        for (PaId Pa : Arena.paOrder(OmegaId)) {
          const PendingAsync &PA = Arena.pa(Pa);
          if (PA.Action != A)
            continue;
          const PaMultiset &Omega = Arena.paSet(OmegaId);
          bool GateOk = Abs.gateReadsOmega()
                            ? Abs.evalGate(Arena.store(G), PA.Args, Omega)
                            : Gates.get(Abs, G, Pa, Omega);
          if (!GateOk)
            continue;
          Report.Cooperation.countObligation();
          Configuration C(Arena.store(G), Omega);
          bool Decreases = false;
          PaCountVec Rest(Entries);
          paCountVecErase(Rest, Pa);
          for (const InternedTransition &TA : CoCache.get(Abs, G, Pa)) {
            PaSetId NextOmega =
                Arena.internPaVec(paCountVecUnion(Rest, TA.Created));
            Configuration Next(Arena.store(TA.Global),
                               Arena.paSet(NextOmega));
            if (App.WfMeasure.decreases(C, Next)) {
              Decreases = true;
              break;
            }
          }
          if (!Decreases)
            Report.Cooperation.fail(
                "no measure-decreasing transition of α(" + A.str() +
                ") for " + PA.str() + " in " + C.str());
        }
      }
    }
  }

  return Report;
}

namespace {

/// Whether every behavior the IS obligations depend on carries a content
/// fingerprint — the all-or-nothing gate for the obligation verdict
/// cache. A single unknown (zero) fingerprint disables caching for the
/// whole application: a partially keyed run would mix handle-based and
/// content-based dedup keys, which must never coexist in one group.
bool cacheEligible(const ISApplication &App) {
  for (Symbol Name : App.P.actionNames())
    if (App.P.action(Name).fp().isZero())
      return false;
  if (App.Invariant.fp().isZero() || App.ChoiceFp.isZero() ||
      App.WfMeasure.fp().isZero())
    return false;
  for (const auto &[Name, Abs] : App.Abstractions)
    if (Abs.fp().isZero())
      return false;
  if (App.SeqAction && App.SeqAction->fp().isZero())
    return false;
  return true;
}

/// The scheduled checker: submits every universe-quantified obligation of
/// the IS rule into one ObligationScheduler and assembles the report from
/// the reconciled group results. Deliberately separate from the serial
/// loops above, which survive as the --no-parallel-check differential
/// oracle. Transition caches are shared across all conditions; that only
/// changes who computes an entry, never any obligation outcome.
ISCheckReport checkISScheduled(const ISApplication &App,
                               const ISUniverse &Universe,
                               const EngineConfig &Config,
                               ObligationCache *VCache) {
  ISCheckReport Report;
  const Program &P = App.P;

  StateSpace Space = Universe.Space;
  if (!Space.Arena) {
    StateArena::SpillOptions Spill;
    Spill.Enabled = Config.Spill;
    Spill.Dir = Config.SpillDir;
    Spill.MemBudget = Config.MemBudget;
    Space.Arena = std::make_shared<StateArena>(Config.Shards,
                                               Config.Compress, Spill);
    Space.Configs.reserve(Universe.Configs.size());
    for (const Configuration &C : Universe.Configs)
      if (!C.isFailure())
        Space.Configs.push_back(Space.Arena->internConfig(C));
  }
  StateArena &Arena = *Space.Arena;

  Report.SideConditions = staticSideConditions(App);
  if (!Report.SideConditions.ok())
    return Report;

  InternedContextUniverse MCalls;
  MCalls.Arena = Space.Arena;
  MCalls.Items.reserve(Universe.MCalls.size());
  for (const ActionContext &Ctx : Universe.MCalls)
    MCalls.Items.push_back({Arena.internStore(Ctx.Global),
                            Arena.internPa(PendingAsync(App.M, Ctx.Args)),
                            Arena.internPaSet(Ctx.Omega)});

  ObligationScheduler Sched(Config);
  InternedTransitionCache Cache(Arena);
  GateCache Gates(Arena);
  OmegaGateCache OmegaGates(Arena);
  SuccessorOmegaCache SuccOmega(Arena);
  MeasureMemo Measures(App.WfMeasure, Arena);
  ActionPaCache ActionPas(Arena);

  // The verdict cache attaches only when every dependent behavior is
  // fingerprinted; a null Fps leaves every schedule call on the legacy
  // handle-keyed, uncacheable path.
  std::optional<ArenaFingerprints> FpsStore;
  ArenaFingerprints *Fps = nullptr;
  if (VCache && cacheEligible(App)) {
    FpsStore.emplace(Arena);
    Fps = &*FpsStore;
    Sched.setCache(VCache);
  }
  // E's names in sorted order: a stable ingredient for the fingerprints
  // of the invariant-derived actions below.
  std::vector<std::string> SortedE;
  if (Fps) {
    for (Symbol A : App.E)
      SortedE.push_back(A.str());
    std::sort(SortedE.begin(), SortedE.end());
  }

  // --- P(A) ≼ α(A) for A ∈ E ---------------------------------------------
  // Context universes live in a deque: jobs hold pointers into them.
  std::deque<InternedContextUniverse> AbsCtxs;
  std::vector<std::pair<Symbol, ObligationScheduler::Group *>> AbsGroups;
  for (Symbol A : App.E) {
    if (!App.Abstractions.count(A))
      continue; // α(A) = P(A): refinement is reflexive
    AbsCtxs.push_back(collectContexts(Space, A));
    AbsGroups.emplace_back(
        A, scheduleActionRefinement(Sched,
                                    ObCondition::AbstractionRefinement,
                                    P.action(A), App.abstraction(A),
                                    AbsCtxs.back(), Cache, Gates, OmegaGates,
                                    Fps));
  }

  // --- (I1) base case: P(M) ≼ I --------------------------------------------
  ObligationScheduler::Group *BaseGroup = scheduleActionRefinement(
      Sched, ObCondition::BaseCase, P.action(App.M), App.Invariant, MCalls,
      Cache, Gates, OmegaGates, Fps);

  // --- (I2) conclusion: (ρI, {t ∈ τI | PAE(t) = ∅}) ≼ M' --------------------
  Action Restricted = restrictInvariant(App);
  Action SeqM = sequentializedAction(App);
  if (Fps) {
    // Both are pure derivations of (I, E): restrictInvariant erases the
    // E-creating transitions; the derived M' (when the user supplied
    // none) is the same construction under another name. Domain tags
    // keep the two distinct.
    FpHasher HR("restricted/v1");
    HR.fp(App.Invariant.fp());
    for (const std::string &Name : SortedE)
      HR.str(Name);
    Restricted.setFp(HR.finish());
    if (SeqM.fp().isZero()) {
      FpHasher HS("seqm/v1");
      HS.fp(App.Invariant.fp());
      for (const std::string &Name : SortedE)
        HS.str(Name);
      SeqM.setFp(HS.finish());
    }
  }
  ObligationScheduler::Group *ConclGroup = scheduleActionRefinement(
      Sched, ObCondition::Conclusion, Restricted, SeqM, MCalls, Cache, Gates,
      OmegaGates, Fps);

  // --- (I3) inductive step ---------------------------------------------------
  // Channel 0 folds under (I3); channel 1 carries the choice-function
  // obligations the serial loop reports as side conditions.
  constexpr uint8_t ChanStep = 0;
  constexpr uint8_t ChanChoice = 1;
  ObligationScheduler::Group *StepGroup = Sched.group(
      {ObCondition::InductiveStep, ObCondition::SideConditions});
  InvPointMemo InvPoints(App.Invariant, Arena);
  {
    const ISApplication *AppP = &App;
    const InternedContextUniverse *MCallsP = &MCalls;
    InvPointMemo *MemoP = &InvPoints;
    InternedTransitionCache *CacheP = &Cache;
    GateCache *GatesP = &Gates;
    OmegaGateCache *OmegaGatesP = &OmegaGates;
    StateArena *ArenaP = &Arena;
    // The (I3) behavior dependencies are identical for every slice:
    // invariant and choice function (executed directly), and the
    // abstraction of every A ∈ E (gate and transitions compose with τI).
    // E's declaration order is input-derived, hence stable.
    Fingerprint I3Deps;
    if (Fps) {
      FpHasher HT("i3-deps/v1");
      HT.fp(App.Invariant.fp());
      HT.fp(App.ChoiceFp);
      for (Symbol A : App.E) {
        HT.str(A.str());
        HT.fp(App.abstraction(A).fp());
      }
      I3Deps = HT.finish();
    }
    // Thread-count independent slice; sized so dispatch overhead stays
    // negligible against the per-context transition work.
    constexpr size_t ChunkSize = 4096;
    size_t N = MCalls.Items.size();
    for (size_t Begin = 0; Begin < N; Begin += ChunkSize) {
      size_t End = std::min(N, Begin + ChunkSize);
      std::function<Fingerprint()> KeyFn;
      if (Fps) {
        ArenaFingerprints *FpsP = Fps;
        KeyFn = [=]() {
          FpHasher H("i3-slice/v1");
          H.fp(I3Deps).u64(End - Begin);
          for (size_t I = Begin; I < End; ++I) {
            const InternedActionContext &Call = MCallsP->Items[I];
            H.fp(FpsP->store(Call.Global));
            H.fp(FpsP->pa(Call.ArgsPa));
            H.fp(FpsP->paSet(Call.Omega));
          }
          return H.finish();
        };
      }
      Sched.add(StepGroup, std::move(KeyFn), [=](ObSink &Sink) {
        StateArena &Arena = *ArenaP;
        for (size_t I = Begin; I < End; ++I) {
          const InternedActionContext &Call = MCallsP->Items[I];
          const Store &CallStore = Arena.store(Call.Global);
          const std::vector<Value> &CallArgs = Arena.pa(Call.ArgsPa).Args;
          const PaMultiset &CallOmega = Arena.paSet(Call.Omega);
          if (!AppP->Invariant.evalGate(CallStore, CallArgs, CallOmega))
            continue; // t ∈ ρI ∘ τI only constrains gate-satisfying stores
          const InvPoint &Point = MemoP->get(Call.Global, Call.ArgsPa);

          for (size_t TI = 0; TI < Point.Trans.size(); ++TI) {
            const Transition &T = Point.Trans[TI];
            PaMultiset ToE = AppP->pasToE(T);
            if (ToE.empty())
              continue;
            PendingAsync Chosen = AppP->Choice(CallStore, CallArgs, T);
            Sink.begin(ObKey(), ChanChoice);
            Sink.countObligation();
            if (!ToE.contains(Chosen)) {
              Sink.fail("choice function selected " + Chosen.str() +
                        " which is not a created PA to E at " +
                        describeCall(CallStore, CallArgs));
              continue;
            }
            const Action &Abs = AppP->abstraction(Chosen.Action);
            PaId ChosenPa = Arena.internPa(Chosen);

            // Ω after I's step: the executing M PA is consumed and T's
            // created PAs appear.
            PaCountVec Rest(Arena.paVec(Call.Omega));
            paCountVecErase(Rest, Call.ArgsPa);
            PaSetId OmegaAfter = Arena.internPaVec(
                paCountVecUnion(Rest, Point.TCreated[TI]));

            // Gate of the abstraction must hold right after I's
            // transition. Gates are pure, so the evaluation goes through
            // the shared caches keyed on the interned point.
            Sink.begin(ObKey(), ChanStep);
            Sink.countObligation();
            bool AbsGateOk =
                Abs.gateReadsOmega()
                    ? OmegaGatesP->get(Abs, Point.TGlobal[TI], ChosenPa,
                                       OmegaAfter)
                    : GatesP->get(Abs, Point.TGlobal[TI], ChosenPa,
                                  Arena.paSet(OmegaAfter));
            if (!AbsGateOk) {
              Sink.fail("gate of α(" + Chosen.Action.str() +
                        ") fails after invariant transition at " +
                        describeCall(CallStore, CallArgs) + " transition " +
                        T.str());
              continue;
            }
            // Composing I's transition with the abstraction's transition
            // must again be a transition of I.
            PaCountVec Remaining(Point.TCreated[TI]);
            paCountVecErase(Remaining, ChosenPa);
            for (const InternedTransition &TA :
                 CacheP->get(Abs, Point.TGlobal[TI], ChosenPa)) {
              Sink.countObligation();
              PaSetId Composed =
                  Arena.internPaVec(paCountVecUnion(Remaining, TA.Created));
              if (!Point.Index.count(packIds(TA.Global, Composed)))
                Sink.fail("invariant not inductive: composing with α(" +
                          Chosen.Action.str() + ") leaves τI at " +
                          describeCall(CallStore, CallArgs));
            }
          }
        }
      });
    }
  }

  // --- (LM) left movers --------------------------------------------------------
  std::vector<std::pair<Symbol, ObligationScheduler::Group *>> LMGroups;
  for (Symbol A : App.E)
    LMGroups.emplace_back(
        A, scheduleLeftMover(Sched, ObCondition::LeftMovers, A,
                             App.abstraction(A), P, Space, Cache, Gates,
                             OmegaGates, SuccOmega, Fps));

  // --- (CO) cooperation ----------------------------------------------------------
  ObligationScheduler::Group *CoGroup =
      Sched.group(ObCondition::Cooperation);
  {
    const StateSpace *SpaceP = &Space;
    InternedTransitionCache *CacheP = &Cache;
    GateCache *GatesP = &Gates;
    OmegaGateCache *OmegaGatesP = &OmegaGates;
    SuccessorOmegaCache *SuccOmegaP = &SuccOmega;
    StateArena *ArenaP = &Arena;
    MeasureMemo *MeasuresP = &Measures;
    ActionPaCache *ActionPasP = &ActionPas;
    // Thread-count independent slice over the reachable configurations.
    constexpr size_t ChunkSize = 2048;
    size_t N = Space.Configs.size();
    for (Symbol A : App.E) {
      const Action *AbsP = &App.abstraction(A);
      // A cooperation slice executes only α(A) and the measure over its
      // configurations — concrete-body edits never touch it.
      Fingerprint CoDeps;
      if (Fps) {
        FpHasher HD("co-deps/v1");
        HD.str(A.str());
        HD.fp(App.abstraction(A).fp());
        HD.fp(App.WfMeasure.fp());
        CoDeps = HD.finish();
      }
      for (size_t Begin = 0; Begin < N; Begin += ChunkSize) {
        size_t End = std::min(N, Begin + ChunkSize);
        std::function<Fingerprint()> KeyFn;
        if (Fps) {
          ArenaFingerprints *FpsP = Fps;
          KeyFn = [=]() {
            FpHasher H("co-slice/v1");
            H.fp(CoDeps).u64(End - Begin);
            for (size_t CI = Begin; CI < End; ++CI)
              H.fp(FpsP->config(SpaceP->Configs[CI]));
            return H.finish();
          };
        }
        Sched.add(CoGroup, std::move(KeyFn), [=](ObSink &Sink) {
          StateArena &Arena = *ArenaP;
          const Action &Abs = *AbsP;
          for (size_t CI = Begin; CI < End; ++CI) {
            ConfigId Cid = SpaceP->Configs[CI];
            auto [G, OmegaId] = Arena.config(Cid);
            for (PaId Pa : ActionPasP->get(OmegaId, A)) {
              bool GateOk =
                  Abs.gateReadsOmega()
                      ? OmegaGatesP->get(Abs, G, Pa, OmegaId)
                      : GatesP->get(Abs, G, Pa, Arena.paSet(OmegaId));
              if (!GateOk)
                continue;
              Sink.begin();
              Sink.countObligation();
              const std::vector<uint64_t> &MC = MeasuresP->get(G, OmegaId);
              bool Decreases = false;
              for (const InternedTransition &TA : CacheP->get(Abs, G, Pa)) {
                PaSetId NextOmega = SuccOmegaP->get(OmegaId, Pa, TA);
                if (MeasureMemo::decreases(
                        MC, MeasuresP->get(TA.Global, NextOmega))) {
                  Decreases = true;
                  break;
                }
              }
              if (!Decreases)
                Sink.fail("no measure-decreasing transition of α(" +
                          A.str() + ") for " + Arena.pa(Pa).str() + " in " +
                          Arena.configuration(Cid).str());
            }
          }
        });
      }
    }
  }

  Sched.run();

  // Orbit accounting per condition: the store-universe conditions range
  // over Space.Configs (orbit representatives under a reduced build); the
  // M-call conditions range over MCalls, which arise at the π-invariant
  // initial configurations and are singleton orbits either way.
  {
    uint64_t Reps = Space.Configs.size();
    uint64_t States = Reps;
    if (Universe.OrbitSizes.size() == Space.Configs.size()) {
      States = 0;
      for (uint64_t S : Universe.OrbitSizes)
        States += S;
    }
    Sched.noteOrbits(ObCondition::AbstractionRefinement, Reps, States);
    Sched.noteOrbits(ObCondition::LeftMovers, Reps, States);
    Sched.noteOrbits(ObCondition::Cooperation, Reps, States);
    uint64_t MC = MCalls.Items.size();
    Sched.noteOrbits(ObCondition::BaseCase, MC, MC);
    Sched.noteOrbits(ObCondition::Conclusion, MC, MC);
    Sched.noteOrbits(ObCondition::InductiveStep, MC, MC);
  }

  for (auto &[A, Group] : AbsGroups) {
    const CheckResult &R = Sched.result(Group);
    if (!R.ok())
      Report.AbstractionRefinement.fail("P(" + A.str() + ") ⋠ α(" +
                                        A.str() + ")");
    Report.AbstractionRefinement.merge(R);
  }
  Report.BaseCase = Sched.result(BaseGroup);
  Report.Conclusion = Sched.result(ConclGroup);
  Report.InductiveStep = Sched.result(StepGroup, ChanStep);
  Report.SideConditions.merge(Sched.result(StepGroup, ChanChoice));
  for (auto &[A, Group] : LMGroups) {
    const CheckResult &R = Sched.result(Group);
    if (!R.ok())
      Report.LeftMovers.fail("α(" + A.str() + ") is not a left mover");
    Report.LeftMovers.merge(R);
  }
  Report.Cooperation = Sched.result(CoGroup);
  Report.Scheduler = Sched.stats();
  return Report;
}

} // namespace

ISCheckReport isq::checkIS(const ISApplication &App,
                           const ISUniverse &Universe,
                           const ISCheckOptions &Opts) {
  if (!Opts.Config.ParallelCheck)
    return checkIS(App, Universe);
  return checkISScheduled(App, Universe, Opts.Config, Opts.Cache);
}

ISCheckReport isq::checkIS(const ISApplication &App,
                           const std::vector<InitialCondition> &Inits,
                           const ExploreOptions &Opts) {
  return checkIS(App, ISUniverse::build(App, Inits, Opts));
}

std::string ISCheckReport::str() const {
  auto Line = [](const char *Name, const CheckResult &R) {
    return std::string("  ") + Name + ": " + R.str() + "\n";
  };
  std::string Out = "IS check report:\n";
  Out += Line("side conditions", SideConditions);
  Out += Line("P(A) ≼ α(A)   ", AbstractionRefinement);
  Out += Line("(I1) base case ", BaseCase);
  Out += Line("(I2) conclusion", Conclusion);
  Out += Line("(I3) induction ", InductiveStep);
  Out += Line("(LM) left mover", LeftMovers);
  Out += Line("(CO) cooperation", Cooperation);
  Out += ok() ? "  => ACCEPTED\n" : "  => REJECTED\n";
  return Out;
}
