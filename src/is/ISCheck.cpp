//===- is/ISCheck.cpp - IS verification conditions ------------------------------===//

#include "is/ISCheck.h"

#include "engine/ActionCaches.h"
#include "engine/StateGraph.h"
#include "is/Sequentialize.h"
#include "movers/MoverCheck.h"

#include <unordered_map>
#include <unordered_set>

using namespace isq;
using namespace isq::engine;

ISUniverse ISUniverse::build(const ISApplication &App,
                             const std::vector<InitialCondition> &Inits,
                             const ExploreOptions &Opts) {
  ISUniverse U;
  U.Space.Arena = std::make_shared<StateArena>();
  EngineOptions EO;
  EO.MaxConfigurations = Opts.MaxConfigurations;
  EO.StopAtFirstFailure = Opts.StopAtFirstFailure;
  EO.RecordParents = false; // parents are never consulted for universes
  EO.NumThreads = Opts.NumThreads;
  // Both explorations intern into the one arena, so the union dedups by
  // ConfigId and the configurations are shared with every later check.
  std::unordered_set<ConfigId> Seen;
  auto Absorb = [&](const Program &P) {
    for (const InitialCondition &Init : Inits) {
      StateGraph G = exploreGraph(
          P, {initialConfiguration(Init.Global, Init.MainArgs)}, U.Space.Arena,
          EO);
      U.Stats.accumulate(G.stats());
      for (ConfigId Cid : G.nodes())
        if (Seen.insert(Cid).second)
          U.Space.Configs.push_back(Cid);
    }
  };
  Absorb(App.P);
  // The partial sequentializations: P with M replaced by the invariant.
  Absorb(App.P.withAction(App.Invariant.withName(App.M.str())));
  U.Configs.reserve(U.Space.Configs.size());
  for (ConfigId Cid : U.Space.Configs)
    U.Configs.push_back(U.Space.Arena->configuration(Cid));
  U.MCalls = collectContexts(U.Configs, App.M);
  return U;
}

namespace {

std::string describeCall(const Store &Global, const std::vector<Value> &Args) {
  std::string Out = "store=" + Global.str() + " args=(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Args[I].str();
  }
  return Out + ")";
}

/// The invariant's transition relation at one (store, args) point, with
/// value-level transitions (preserving the user's created-PA enumeration
/// order for the choice function) alongside their interned images and an
/// integer-keyed membership index. Shared across every Ω-variant of the
/// same call point.
struct InvPoint {
  std::vector<Transition> Trans;
  std::vector<StoreId> TGlobal;
  std::vector<PaCountVec> TCreated;
  /// (Global << 32) | CreatedSet per transition of I.
  std::unordered_set<uint64_t> Index;
};

uint64_t packIds(uint32_t Hi, uint32_t Lo) {
  return (static_cast<uint64_t>(Hi) << 32) | Lo;
}

} // namespace

ISCheckReport isq::checkIS(const ISApplication &App,
                           const ISUniverse &Universe) {
  ISCheckReport Report;
  const Program &P = App.P;

  // The interned universe: shared with build(), or interned on the fly for
  // hand-built universes.
  StateSpace Space = Universe.Space;
  if (!Space.Arena) {
    Space.Arena = std::make_shared<StateArena>();
    Space.Configs.reserve(Universe.Configs.size());
    for (const Configuration &C : Universe.Configs)
      if (!C.isFailure())
        Space.Configs.push_back(Space.Arena->internConfig(C));
  }
  StateArena &Arena = *Space.Arena;

  // --- Side conditions --------------------------------------------------
  Report.SideConditions.countObligation();
  if (!P.hasAction(App.M))
    Report.SideConditions.fail("M = " + App.M.str() + " not in dom(P)");
  for (Symbol A : App.E) {
    Report.SideConditions.countObligation();
    if (!P.hasAction(A))
      Report.SideConditions.fail("E member " + A.str() + " not in dom(P)");
  }
  Report.SideConditions.countObligation();
  if (P.hasAction(App.M) &&
      App.Invariant.arity() != P.action(App.M).arity())
    Report.SideConditions.fail("invariant arity differs from M's arity");
  for (const auto &[Name, Abs] : App.Abstractions) {
    Report.SideConditions.countObligation();
    if (!App.eliminates(Name))
      Report.SideConditions.fail("abstraction for " + Name.str() +
                                 " which is not in E");
    else if (Abs.arity() != P.action(Name).arity())
      Report.SideConditions.fail("abstraction arity mismatch for " +
                                 Name.str());
  }
  Report.SideConditions.countObligation();
  if (!App.WfMeasure.isValid())
    Report.SideConditions.fail("no well-founded measure supplied");
  Report.SideConditions.countObligation();
  if (!App.Choice)
    Report.SideConditions.fail("no choice function supplied");
  if (!Report.SideConditions.ok())
    return Report;

  // The interned M-call contexts. Derived from the value-level MCalls (not
  // from Space) so hand-built universes behave identically; for built
  // universes the two coincide.
  InternedContextUniverse MCalls;
  MCalls.Arena = Space.Arena;
  MCalls.Items.reserve(Universe.MCalls.size());
  for (const ActionContext &Ctx : Universe.MCalls)
    MCalls.Items.push_back({Arena.internStore(Ctx.Global),
                            Arena.internPa(PendingAsync(App.M, Ctx.Args)),
                            Arena.internPaSet(Ctx.Omega)});

  // --- P(A) ≼ α(A) for A ∈ E ---------------------------------------------
  for (Symbol A : App.E) {
    if (!App.Abstractions.count(A))
      continue; // α(A) = P(A): refinement is reflexive
    InternedContextUniverse Ctxs = collectContexts(Space, A);
    CheckResult R =
        checkActionRefinement(P.action(A), App.abstraction(A), Ctxs);
    if (!R.ok())
      Report.AbstractionRefinement.fail("P(" + A.str() + ") ⋠ α(" +
                                        A.str() + ")");
    Report.AbstractionRefinement.merge(R);
  }

  // --- (I1) base case: P(M) ≼ I --------------------------------------------
  Report.BaseCase =
      checkActionRefinement(P.action(App.M), App.Invariant, MCalls);

  // --- (I2) conclusion: (ρI, {t ∈ τI | PAE(t) = ∅}) ≼ M' --------------------
  {
    Action Restricted = restrictInvariant(App);
    Action SeqM = sequentializedAction(App);
    Report.Conclusion = checkActionRefinement(Restricted, SeqM, MCalls);
  }

  // --- (I3) inductive step ---------------------------------------------------
  {
    // τI and its interned image, memoized per call point: Ω-variants of
    // one (store, args) point share the enumeration and the index.
    std::unordered_map<uint64_t, InvPoint> InvPoints;
    InternedTransitionCache AbsCache(Arena);
    for (const InternedActionContext &Call : MCalls.Items) {
      const Store &CallStore = Arena.store(Call.Global);
      const std::vector<Value> &CallArgs = Arena.pa(Call.ArgsPa).Args;
      const PaMultiset &CallOmega = Arena.paSet(Call.Omega);
      if (!App.Invariant.evalGate(CallStore, CallArgs, CallOmega))
        continue; // t ∈ ρI ∘ τI only constrains gate-satisfying stores

      auto [PointIt, New] =
          InvPoints.try_emplace(packIds(Call.Global, Call.ArgsPa));
      InvPoint &Point = PointIt->second;
      if (New) {
        Point.Trans = App.Invariant.transitions(CallStore, CallArgs);
        Point.TGlobal.reserve(Point.Trans.size());
        Point.TCreated.reserve(Point.Trans.size());
        for (const Transition &T : Point.Trans) {
          StoreId TG = Arena.internStore(T.Global);
          PaSetId TC = Arena.internPaSet(T.createdMultiset());
          Point.TGlobal.push_back(TG);
          Point.TCreated.push_back(Arena.paVec(TC));
          Point.Index.insert(packIds(TG, TC));
        }
      }

      for (size_t TI = 0; TI < Point.Trans.size(); ++TI) {
        const Transition &T = Point.Trans[TI];
        PaMultiset ToE = App.pasToE(T);
        if (ToE.empty())
          continue;
        PendingAsync Chosen = App.Choice(CallStore, CallArgs, T);
        Report.SideConditions.countObligation();
        if (!ToE.contains(Chosen)) {
          Report.SideConditions.fail(
              "choice function selected " + Chosen.str() +
              " which is not a created PA to E at " +
              describeCall(CallStore, CallArgs));
          continue;
        }
        const Action &Abs = App.abstraction(Chosen.Action);
        PaId ChosenPa = Arena.internPa(Chosen);

        // Ω after I's step: the executing M PA is consumed and T's created
        // PAs appear.
        PaCountVec Rest(Arena.paVec(Call.Omega));
        paCountVecErase(Rest, Call.ArgsPa);
        const PaMultiset &OmegaAfter =
            Arena.paSet(Arena.internPaVec(paCountVecUnion(
                Rest, Point.TCreated[TI])));

        // Gate of the abstraction must hold right after I's transition.
        Report.InductiveStep.countObligation();
        if (!Abs.evalGate(Arena.store(Point.TGlobal[TI]), Chosen.Args,
                          OmegaAfter)) {
          Report.InductiveStep.fail("gate of α(" + Chosen.Action.str() +
                                    ") fails after invariant transition at " +
                                    describeCall(CallStore, CallArgs) +
                                    " transition " + T.str());
          continue;
        }
        // Composing I's transition with the abstraction's transition must
        // again be a transition of I.
        PaCountVec Remaining(Point.TCreated[TI]);
        paCountVecErase(Remaining, ChosenPa);
        for (const InternedTransition &TA :
             AbsCache.get(Abs, Point.TGlobal[TI], ChosenPa)) {
          Report.InductiveStep.countObligation();
          PaSetId Composed =
              Arena.internPaVec(paCountVecUnion(Remaining, TA.Created));
          if (!Point.Index.count(packIds(TA.Global, Composed)))
            Report.InductiveStep.fail(
                "invariant not inductive: composing with α(" +
                Chosen.Action.str() + ") leaves τI at " +
                describeCall(CallStore, CallArgs));
        }
      }
    }
  }

  // --- (LM) left movers --------------------------------------------------------
  for (Symbol A : App.E) {
    CheckResult R = checkLeftMover(A, App.abstraction(A), P, Space);
    if (!R.ok())
      Report.LeftMovers.fail("α(" + A.str() + ") is not a left mover");
    Report.LeftMovers.merge(R);
  }

  // --- (CO) cooperation ----------------------------------------------------------
  {
    InternedTransitionCache CoCache(Arena);
    GateCache Gates(Arena);
    for (Symbol A : App.E) {
      const Action &Abs = App.abstraction(A);
      for (ConfigId Cid : Space.Configs) {
        auto [G, OmegaId] = Arena.config(Cid);
        const PaCountVec &Entries = Arena.paVec(OmegaId);
        // Materialized lazily: only configurations holding a PA to A (and
        // the measure comparison) need value-level views. Value order for
        // deterministic diagnostics under parallel universe builds.
        for (PaId Pa : Arena.paOrder(OmegaId)) {
          const PendingAsync &PA = Arena.pa(Pa);
          if (PA.Action != A)
            continue;
          const PaMultiset &Omega = Arena.paSet(OmegaId);
          bool GateOk = Abs.gateReadsOmega()
                            ? Abs.evalGate(Arena.store(G), PA.Args, Omega)
                            : Gates.get(Abs, G, Pa, Omega);
          if (!GateOk)
            continue;
          Report.Cooperation.countObligation();
          Configuration C(Arena.store(G), Omega);
          bool Decreases = false;
          PaCountVec Rest(Entries);
          paCountVecErase(Rest, Pa);
          for (const InternedTransition &TA : CoCache.get(Abs, G, Pa)) {
            PaSetId NextOmega =
                Arena.internPaVec(paCountVecUnion(Rest, TA.Created));
            Configuration Next(Arena.store(TA.Global),
                               Arena.paSet(NextOmega));
            if (App.WfMeasure.decreases(C, Next)) {
              Decreases = true;
              break;
            }
          }
          if (!Decreases)
            Report.Cooperation.fail(
                "no measure-decreasing transition of α(" + A.str() +
                ") for " + PA.str() + " in " + C.str());
        }
      }
    }
  }

  return Report;
}

ISCheckReport isq::checkIS(const ISApplication &App,
                           const std::vector<InitialCondition> &Inits,
                           const ExploreOptions &Opts) {
  return checkIS(App, ISUniverse::build(App, Inits, Opts));
}

std::string ISCheckReport::str() const {
  auto Line = [](const char *Name, const CheckResult &R) {
    return std::string("  ") + Name + ": " + R.str() + "\n";
  };
  std::string Out = "IS check report:\n";
  Out += Line("side conditions", SideConditions);
  Out += Line("P(A) ≼ α(A)   ", AbstractionRefinement);
  Out += Line("(I1) base case ", BaseCase);
  Out += Line("(I2) conclusion", Conclusion);
  Out += Line("(I3) induction ", InductiveStep);
  Out += Line("(LM) left mover", LeftMovers);
  Out += Line("(CO) cooperation", Cooperation);
  Out += ok() ? "  => ACCEPTED\n" : "  => REJECTED\n";
  return Out;
}
