//===- is/ISCheck.h - IS verification conditions ------------------*- C++ -*-===//
///
/// \file
/// The verification conditions of the Inductive Sequentialization rule
/// (Fig. 3): the side conditions on f and α, the abstraction refinements
/// P(A) ≼ α(A), the base case (I1), the conclusion (I2), the inductive
/// step (I3), the left-mover condition (LM), and the cooperation condition
/// (CO). Mirroring CIVL's fine-grained decomposition (§5.1), every
/// condition is checked separately and reports targeted diagnostics.
///
/// Quantifier domains: conditions are universally quantified over stores;
/// we evaluate them over the *IS universe* — the configurations reachable
/// in P and in P[M ↦ I] (the partial sequentializations), which covers
/// every configuration manipulated by the soundness construction of §4.1
/// for the explored instances (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_IS_ISCHECK_H
#define ISQ_IS_ISCHECK_H

#include "engine/EngineConfig.h"
#include "is/ISApplication.h"
#include "refine/Refinement.h"

#include <string>

namespace isq {

namespace engine {
class ObligationCache; // engine/ObligationCache.h
}

/// The quantifier domain for the IS conditions.
struct ISUniverse {
  /// Configurations of P ∪ configurations of P[M ↦ I]. Populated by
  /// hand-built universes only: build() leaves it empty and the checkers
  /// run over Space (a value mirror of a large interned space costs real
  /// time on every run).
  std::vector<Configuration> Configs;
  /// Contexts in which an M pending async executes (inputs to I).
  ContextUniverse MCalls;
  /// The interned view of the universe over the shared arena both
  /// explorations interned into. Checkers run over this when Arena is
  /// set; Arena is null for hand-built universes (checkIS interns
  /// Configs on the fly in that case).
  engine::StateSpace Space;
  /// Orbit size per configuration, index-aligned with Space.Configs when
  /// the explorations ran symmetry-reduced; empty otherwise (every orbit a
  /// singleton). Observational only: the checks themselves quantify over
  /// the representatives.
  std::vector<uint64_t> OrbitSizes;
  /// Accumulated engine statistics of the universe explorations.
  engine::EngineStats Stats;

  /// Builds the universe by exploring P and P[M ↦ I] from \p Inits.
  static ISUniverse build(const ISApplication &App,
                          const std::vector<InitialCondition> &Inits,
                          const ExploreOptions &Opts = ExploreOptions());
};

/// Options for checkIS.
struct ISCheckOptions {
  /// The unified engine configuration. Config.NumThreads drives the
  /// obligation scheduler (0 treated as 1); Config.ParallelCheck selects
  /// the scheduler (true) or the serial reference checker loops (false;
  /// the --engine parallel-check=false differential oracle). Results are
  /// bit-identical either way; only ObligationStats differ.
  engine::EngineConfig Config;
  /// Content-addressed obligation verdict cache consulted by the
  /// scheduled checker; null (or the serial path) checks everything.
  /// Caching requires every behavior the obligations depend on to carry a
  /// content fingerprint (actions, invariant, choice function, measure,
  /// abstractions); applications with any unknown fingerprint silently
  /// run uncached — correctness never depends on the fingerprints'
  /// availability, only hit rates do. Verdicts, counts and diagnostics
  /// are bit-identical with and without a cache.
  engine::ObligationCache *Cache = nullptr;
};

/// Per-condition results of one IS application.
struct ISCheckReport {
  CheckResult SideConditions;
  CheckResult AbstractionRefinement; ///< P(A) ≼ α(A) for A ∈ E
  CheckResult BaseCase;              ///< (I1)
  CheckResult Conclusion;            ///< (I2)
  CheckResult InductiveStep;         ///< (I3)
  CheckResult LeftMovers;            ///< (LM)
  CheckResult Cooperation;           ///< (CO)

  /// Obligation-scheduler observability of the run (zeroed for the serial
  /// reference path, which does not run the scheduler).
  engine::ObligationStats Scheduler;

  bool ok() const {
    return SideConditions.ok() && AbstractionRefinement.ok() &&
           BaseCase.ok() && Conclusion.ok() && InductiveStep.ok() &&
           LeftMovers.ok() && Cooperation.ok();
  }

  size_t totalObligations() const {
    return SideConditions.obligations() +
           AbstractionRefinement.obligations() + BaseCase.obligations() +
           Conclusion.obligations() + InductiveStep.obligations() +
           LeftMovers.obligations() + Cooperation.obligations();
  }

  /// Renders a per-condition summary.
  std::string str() const;
};

/// Checks every condition of the IS rule for \p App over \p Universe using
/// the serial reference loops.
ISCheckReport checkIS(const ISApplication &App, const ISUniverse &Universe);

/// Checks every condition of the IS rule for \p App over \p Universe.
/// With Opts.Config.ParallelCheck, obligations run on the obligation
/// scheduler across Opts.Config.NumThreads workers; verdicts, counts and
/// diagnostics are
/// bit-identical to the serial loops for any thread count. Requires the
/// application's choice function and measure to be pure (they are invoked
/// concurrently), which every protocol in this repo satisfies.
ISCheckReport checkIS(const ISApplication &App, const ISUniverse &Universe,
                      const ISCheckOptions &Opts);

/// Convenience: builds the universe from \p Inits and checks.
ISCheckReport checkIS(const ISApplication &App,
                      const std::vector<InitialCondition> &Inits,
                      const ExploreOptions &Opts = ExploreOptions());

} // namespace isq

#endif // ISQ_IS_ISCHECK_H
