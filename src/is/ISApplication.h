//===- is/ISApplication.h - IS proof-rule instances --------------*- C++ -*-===//
///
/// \file
/// An instance of the Inductive Sequentialization proof rule (Fig. 3 of the
/// paper): the given context (program P, action name M, eliminated action
/// names E) together with the artifacts the user invents — the invariant
/// action I, the choice function f, the abstraction function α, and the
/// well-founded order ≫.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_IS_ISAPPLICATION_H
#define ISQ_IS_ISAPPLICATION_H

#include "is/Measure.h"
#include "semantics/Program.h"

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace isq {

/// The choice function f: maps a transition t of the invariant action with
/// PAE(t) ≠ ∅ to the pending async to E to eliminate next. Receives the
/// pre-store and invariant arguments for context. The returned PA must be
/// one of t's created PAs to E (checked as a side condition).
using ChoiceFn = std::function<PendingAsync(
    const Store &Pre, const std::vector<Value> &Args, const Transition &T)>;

/// One application of the IS rule.
struct ISApplication {
  /// The program under transformation.
  Program P;
  /// The action name to rewrite (often, but not necessarily, Main).
  Symbol M;
  /// The action names whose PAs are eliminated.
  std::vector<Symbol> E;
  /// The invariant action I (same arity as M), summarizing all prefixes of
  /// the sequentialization.
  Action Invariant;
  /// The choice function f.
  ChoiceFn Choice;
  /// Abstractions α(A) for A ∈ E. Absent entries default to P(A) itself
  /// (the paper's α(A) = P(A) case).
  std::unordered_map<Symbol, Action> Abstractions;
  /// The well-founded order ≫ for the cooperation condition.
  Measure WfMeasure;
  /// Optional user-supplied M'. When absent, M' is derived from I by
  /// erasing every transition that creates PAs to E (the construction used
  /// in the paper's condition (I2)).
  std::optional<Action> SeqAction;
  /// Content fingerprint of what Choice computes, when known (the frontend
  /// stamps it from the elimination-order/rank table it built the function
  /// from). Zero means "unknown" and makes (I3) obligations ineligible for
  /// the verdict cache.
  Fingerprint ChoiceFp;

  /// True if \p Name is in E.
  bool eliminates(Symbol Name) const;

  /// The abstraction α(A): the registered abstraction or P(A).
  const Action &abstraction(Symbol Name) const;

  /// The PAs to E among \p T's created PAs: PAE(t) of §3.
  PaMultiset pasToE(const Transition &T) const;

  /// A choice function selecting, among the created PAs to E, the one with
  /// the smallest action name in \p Order, breaking ties by smallest
  /// argument tuple. This realizes the "smallest parameter first" choice
  /// functions of the paper's examples.
  static ChoiceFn chooseInOrder(std::vector<Symbol> Order);
};

} // namespace isq

#endif // ISQ_IS_ISAPPLICATION_H
