//===- is/Rewriter.cpp - Executable soundness construction ----------------------===//

#include "is/Rewriter.h"

#include "is/Sequentialize.h"

using namespace isq;

namespace {

/// The PA multiset created by the step Pre --[PA]--> Post.
PaMultiset createdOf(const Configuration &Pre, const PendingAsync &PA,
                     const Configuration &Post) {
  PaMultiset Rest = Pre.pendingAsyncs();
  Rest.erase(PA);
  return Post.pendingAsyncs().differenceWith(Rest);
}

/// Renders the schedule "I; X(1); B*(2); ..." of the working state.
std::string renderStage(const char *Tag, const PendingAsync &First,
                        const std::vector<ExecStep> &Tail,
                        const ISApplication &App) {
  std::string Out = std::string(Tag) + ": " + First.str();
  for (const ExecStep &Step : Tail) {
    Out += "; " + Step.Executed.str();
    if (App.eliminates(Step.Executed.Action))
      Out += "*";
  }
  return Out;
}

} // namespace

RewriteResult isq::rewriteExecution(const ISApplication &App,
                                    const Execution &Pi, bool LogStages) {
  RewriteResult Result;
  if (Pi.Steps.empty() || Pi.Steps.front().Executed.Action != App.M) {
    Result.Error = "execution does not start with a transition of M";
    return Result;
  }
  if (!Pi.isTerminating()) {
    Result.Error = "rewriter expects a terminating execution (Lemma 4.3)";
    return Result;
  }

  const Configuration &C0 = Pi.Initial;
  PendingAsync MPa = Pi.Steps.front().Executed;

  // The invariant transition accumulated so far (starts as M's transition,
  // which is a transition of I by (I1)).
  Configuration AfterInv = Pi.Steps.front().Successor;
  Transition InvTrans(AfterInv.global());
  InvTrans.Created = createdOf(C0, MPa, AfterInv).flatten();

  // The remainder of the execution after the invariant transition.
  std::vector<ExecStep> Tail(Pi.Steps.begin() + 1, Pi.Steps.end());

  if (LogStages)
    Result.Stages.push_back(renderStage("start", MPa, Tail, App));

  // Eliminate PAs to E one at a time, following the choice function.
  while (true) {
    PaMultiset ToE = App.pasToE(InvTrans);
    if (ToE.empty())
      break;
    PendingAsync Chosen = App.Choice(C0.global(), MPa.Args, InvTrans);
    if (!ToE.contains(Chosen)) {
      Result.Error = "choice function selected a PA outside PAE(t)";
      return Result;
    }
    const Action &Abs = App.abstraction(Chosen.Action);

    // Locate the (first) step of the tail executing the chosen PA. In a
    // terminating execution every created PA eventually executes.
    size_t Index = SIZE_MAX;
    for (size_t I = 0; I < Tail.size(); ++I)
      if (Tail[I].Executed == Chosen) {
        Index = I;
        break;
      }
    if (Index == SIZE_MAX) {
      Result.Error = "chosen PA " + Chosen.str() +
                     " never executes in the terminating execution";
      return Result;
    }

    // Commute the chosen step to the front of the tail. Each swap replays
    // the two adjacent steps in the other order, which must be possible
    // because α(Chosen) is a left mover.
    for (size_t K = Index; K > 0; --K) {
      const Configuration &Prev =
          K >= 2 ? Tail[K - 2].Successor : AfterInv;
      ExecStep &OtherStep = Tail[K - 1];
      ExecStep &ChosenStep = Tail[K];
      PaMultiset OtherCreated =
          createdOf(Prev, OtherStep.Executed, OtherStep.Successor);
      PaMultiset ChosenCreated = createdOf(
          OtherStep.Successor, ChosenStep.Executed, ChosenStep.Successor);

      // Find a transition of the abstraction from Prev matching the
      // chosen step's created PAs, from which the other step can replay to
      // the known post-pair configuration.
      bool Swapped = false;
      const Action &Other = App.P.action(OtherStep.Executed.Action);
      for (const Transition &TS :
           Abs.transitions(Prev.global(), Chosen.Args)) {
        if (TS.createdMultiset() != ChosenCreated)
          continue;
        for (const Transition &TO :
             Other.transitions(TS.Global, OtherStep.Executed.Args)) {
          if (TO.Global != ChosenStep.Successor.global() ||
              TO.createdMultiset() != OtherCreated)
            continue;
          // Build the new intermediate configuration.
          PaMultiset Mid = Prev.pendingAsyncs();
          Mid.erase(Chosen);
          Mid = Mid.unionWith(ChosenCreated);
          ExecStep NewChosen{Chosen, Configuration(TS.Global, Mid)};
          ExecStep NewOther{OtherStep.Executed, ChosenStep.Successor};
          Tail[K - 1] = NewChosen;
          Tail[K] = NewOther;
          Swapped = true;
          break;
        }
        if (Swapped)
          break;
      }
      if (!Swapped) {
        Result.Error = "cannot commute " + Chosen.str() + " left of " +
                       OtherStep.Executed.str() +
                       " (left-mover condition violated?)";
        return Result;
      }
      Result.NumCommutes++;
    }
    if (LogStages)
      Result.Stages.push_back(renderStage("commuted", MPa, Tail, App));

    // Absorb the front step into the invariant transition (the (I3)
    // composition).
    const ExecStep &Front = Tail.front();
    PaMultiset FrontCreated = createdOf(AfterInv, Chosen, Front.Successor);
    PaMultiset NewCreated = PaMultiset::fromSequence(InvTrans.Created);
    NewCreated.erase(Chosen);
    NewCreated = NewCreated.unionWith(FrontCreated);
    InvTrans.Global = Front.Successor.global();
    InvTrans.Created = NewCreated.flatten();
    AfterInv = Front.Successor;
    Tail.erase(Tail.begin());
    Result.NumAbsorptions++;
    if (LogStages)
      Result.Stages.push_back(renderStage("absorbed", MPa, Tail, App));
  }

  // The accumulated transition has no PAs to E, hence is a transition of
  // M'. Assemble the P'-execution and validate it.
  Result.Rewritten.Initial = C0;
  Result.Rewritten.Steps.push_back({MPa, AfterInv});
  for (ExecStep &Step : Tail)
    Result.Rewritten.Steps.push_back(std::move(Step));

  Program PPrime = applyIS(App);
  if (!Result.Rewritten.isValid(PPrime)) {
    Result.Error = "rewritten execution is not a valid P' execution";
    return Result;
  }
  if (Result.Rewritten.finalConfiguration() != Pi.finalConfiguration()) {
    Result.Error = "rewritten execution changed the final configuration";
    return Result;
  }
  Result.Ok = true;
  return Result;
}
