//===- is/Rewriter.h - Executable soundness construction ----------*- C++ -*-===//
///
/// \file
/// The execution-rewriting procedure underlying the soundness proof of the
/// IS rule (Lemmas 4.2/4.3, illustrated in Fig. 2): given a terminating
/// P-execution whose first step executes M, mechanically rewrite it into a
/// P'-execution with the same final configuration by (a) re-attributing
/// the first step to the invariant action, (b) repeatedly locating the PA
/// selected by the choice function, replacing it by its abstraction,
/// commuting it stepwise to the front (left-moverness), and (c) absorbing
/// it into the invariant's transition (inductive step), until no PAs to E
/// remain and the accumulated transition is one of M'.
///
/// This makes Theorem 4.4 *executable*: property tests rewrite sampled
/// executions and assert final-configuration preservation.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_IS_REWRITER_H
#define ISQ_IS_REWRITER_H

#include "explorer/Trace.h"
#include "is/ISApplication.h"

#include <string>
#include <vector>

namespace isq {

/// Result of rewriting one execution.
struct RewriteResult {
  bool Ok = false;
  /// Diagnostic when !Ok.
  std::string Error;
  /// The rewritten execution: first step executes M (now bound to M' in
  /// P'), followed by the untouched non-E steps.
  Execution Rewritten;
  /// Number of adjacent-step commutes performed (the ②→③ moves of Fig. 2).
  size_t NumCommutes = 0;
  /// Number of PAs absorbed into the invariant (the ③→④ moves of Fig. 2).
  size_t NumAbsorptions = 0;
  /// Optional ①-⑥ style textual stage log.
  std::vector<std::string> Stages;
};

/// Rewrites the terminating P-execution \p Pi (whose first step must
/// execute App.M) into an execution of P' = applyIS(App). When
/// \p LogStages is set, records a Fig.-2 style log of every intermediate
/// schedule.
RewriteResult rewriteExecution(const ISApplication &App, const Execution &Pi,
                               bool LogStages = false);

} // namespace isq

#endif // ISQ_IS_REWRITER_H
