//===- is/Sequentialize.h - Deriving and applying M' --------------*- C++ -*-===//
///
/// \file
/// Construction of the sequentialized action M' and of the transformed
/// program P' = P[M ↦ M'] (the conclusion of the IS rule). M' is derived
/// from the invariant action by erasing every transition that still
/// creates pending asyncs to E — exactly the construction appearing in
/// condition (I2) of Fig. 3 — unless the application supplies its own M'.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_IS_SEQUENTIALIZE_H
#define ISQ_IS_SEQUENTIALIZE_H

#include "is/ISApplication.h"

namespace isq {

/// The action (ρI, {t ∈ τI | PAE(t) = ∅}) of condition (I2), named M.
Action restrictInvariant(const ISApplication &App);

/// The action M' substituted for M: App.SeqAction if supplied (renamed to
/// M), otherwise restrictInvariant(App).
Action sequentializedAction(const ISApplication &App);

/// The transformed program P' = P[M ↦ M'].
Program applyIS(const ISApplication &App);

} // namespace isq

#endif // ISQ_IS_SEQUENTIALIZE_H
