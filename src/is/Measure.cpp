//===- is/Measure.cpp - Well-founded measures ---------------------------------===//

#include "is/Measure.h"

using namespace isq;

bool Measure::decreases(const Configuration &A, const Configuration &B) const {
  std::vector<uint64_t> MA = eval(A);
  std::vector<uint64_t> MB = eval(B);
  // Lexicographic comparison; shorter tuples are padded with zeros.
  size_t N = std::max(MA.size(), MB.size());
  for (size_t I = 0; I < N; ++I) {
    uint64_t VA = I < MA.size() ? MA[I] : 0;
    uint64_t VB = I < MB.size() ? MB[I] : 0;
    if (VA != VB)
      return VA > VB;
  }
  return false;
}

Measure Measure::pendingAsyncCount() {
  return Measure("|Ω|", [](const Configuration &C) {
    return std::vector<uint64_t>{C.isFailure() ? 0 : C.pendingAsyncs().size()};
  });
}

Measure Measure::channelsThenPas(std::vector<Symbol> ChannelVars) {
  return Measure(
      "(Σ|CH|, |Ω|)", [Vars = std::move(ChannelVars)](const Configuration &C) {
        if (C.isFailure())
          return std::vector<uint64_t>{0, 0};
        uint64_t Msgs = 0;
        for (Symbol Var : Vars) {
          if (!C.global().contains(Var))
            continue;
          const Value &V = C.global().get(Var);
          if (V.kind() == ValueKind::Bag)
            Msgs += V.bagSize();
          else if (V.kind() == ValueKind::Seq)
            Msgs += V.seqSize();
          else if (V.kind() == ValueKind::Map) {
            // A map of channels: sum the per-key channel sizes.
            for (const auto &[Key, Chan] : V.mapEntries()) {
              (void)Key;
              if (Chan.kind() == ValueKind::Bag)
                Msgs += Chan.bagSize();
              else if (Chan.kind() == ValueKind::Seq)
                Msgs += Chan.seqSize();
            }
          }
        }
        return std::vector<uint64_t>{Msgs, C.pendingAsyncs().size()};
      });
}
