//===- reduction/Reduction.cpp - Lipton reduction --------------------------------===//

#include "reduction/Reduction.h"

using namespace isq;

CheckResult isq::checkAtomicPattern(const std::vector<MoverType> &Movers) {
  CheckResult Result;
  // Phase 0: right movers (Right/Both); phase 1: after the single
  // non-mover; left movers (Left/Both) only.
  int Phase = 0;
  for (size_t I = 0; I < Movers.size(); ++I) {
    Result.countObligation();
    MoverType M = Movers[I];
    if (Phase == 0) {
      if (M == MoverType::Right || M == MoverType::Both)
        continue;
      // A non-mover or a pure left mover ends the right-mover phase.
      Phase = 1;
      if (M == MoverType::None)
        continue; // the (single) non-mover itself
      // Left movers fall through to phase-1 checking below.
    }
    if (M != MoverType::Left && M != MoverType::Both)
      Result.fail("operation " + std::to_string(I) +
                  " has mover type '" + moverTypeName(M) +
                  "' after the non-mover position");
  }
  return Result;
}

CheckResult
isq::verifyMoverAnnotations(const std::vector<PrimitiveOp> &Ops,
                            const Program &P,
                            const std::vector<Configuration> &Universe) {
  CheckResult Result;
  for (const PrimitiveOp &Op : Ops) {
    Symbol Name = Op.Act.name();
    if (Op.Mover == MoverType::Left || Op.Mover == MoverType::Both) {
      CheckResult R = checkLeftMover(Name, Op.Act, P, Universe);
      if (!R.ok())
        Result.fail(Name.str() + " annotated left mover but is not");
      Result.merge(R);
    }
    if (Op.Mover == MoverType::Right || Op.Mover == MoverType::Both) {
      CheckResult R = checkRightMover(Name, Op.Act, P, Universe);
      if (!R.ok())
        Result.fail(Name.str() + " annotated right mover but is not");
      Result.merge(R);
    }
  }
  return Result;
}

namespace {

/// A partially executed path through the operation sequence.
struct PathState {
  Store Global;
  std::vector<PendingAsync> Created;
};

} // namespace

Action isq::fuseSequence(const std::string &Name, size_t Arity,
                         const std::vector<PrimitiveOp> &Ops) {
  std::vector<Action> Acts;
  Acts.reserve(Ops.size());
  for (const PrimitiveOp &Op : Ops)
    Acts.push_back(Op.Act);

  // Simulates all paths; returns false via CanFail if some path reaches a
  // false gate. Out collects terminal path states when non-null.
  auto Simulate = [Acts](const Store &G, const std::vector<Value> &Args,
                         const PaMultiset &AmbientOmega, bool &CanFail,
                         std::vector<PathState> *Out) {
    CanFail = false;
    std::vector<PathState> Frontier{{G, {}}};
    for (const Action &A : Acts) {
      std::vector<PathState> Next;
      for (PathState &S : Frontier) {
        PaMultiset Omega = AmbientOmega;
        for (const PendingAsync &PA : S.Created)
          Omega.insert(PA);
        if (!A.evalGate(S.Global, Args, Omega)) {
          CanFail = true;
          continue;
        }
        for (const Transition &T : A.transitions(S.Global, Args)) {
          PathState NS{T.Global, S.Created};
          NS.Created.insert(NS.Created.end(), T.Created.begin(),
                            T.Created.end());
          Next.push_back(std::move(NS));
        }
      }
      Frontier = std::move(Next);
    }
    if (Out)
      *Out = std::move(Frontier);
  };

  Action::GateFn Gate = [Simulate](const GateContext &Ctx) {
    bool CanFail = false;
    Simulate(Ctx.Global, Ctx.Args, Ctx.Omega, CanFail, nullptr);
    return !CanFail;
  };
  Action::TransitionsFn Transitions =
      [Simulate](const Store &G, const std::vector<Value> &Args) {
        bool CanFail = false;
        std::vector<PathState> Paths;
        // Transition enumeration does not observe Ω; intermediate gates are
        // evaluated with only the block's own created PAs visible.
        Simulate(G, Args, PaMultiset(), CanFail, &Paths);
        std::vector<Transition> Out;
        Out.reserve(Paths.size());
        for (PathState &S : Paths)
          Out.emplace_back(std::move(S.Global), std::move(S.Created));
        return Out;
      };
  return Action(Name, Arity, std::move(Gate), std::move(Transitions));
}
