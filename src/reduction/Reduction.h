//===- reduction/Reduction.h - Lipton reduction -------------------*- C++ -*-===//
///
/// \file
/// The classic reduction step used *before* IS (§2 "Atomic actions, mover
/// types, and reduction", and the P1 ≼ P2 step of §5.2): a sequence of
/// primitive operations whose mover types match Lipton's pattern
///
///     right-movers*  (non-mover)?  left-movers*
///
/// can be fused into a single atomic action. Fusion composes the
/// operations' transition relations sequentially; the fused action fails
/// whenever some path through the sequence reaches an operation whose gate
/// is false, which preserves failures (Definition 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_REDUCTION_REDUCTION_H
#define ISQ_REDUCTION_REDUCTION_H

#include "movers/MoverCheck.h"
#include "semantics/Action.h"

#include <string>
#include <vector>

namespace isq {

/// One primitive operation of an atomic block. All operations of a block
/// share the enclosing procedure's parameters.
struct PrimitiveOp {
  Action Act;
  MoverType Mover;
};

/// Checks Lipton's atomicity pattern over the annotated mover types.
CheckResult checkAtomicPattern(const std::vector<MoverType> &Movers);

/// Verifies the mover annotations of \p Ops against \p P over \p Universe
/// (each op must already be registered in \p P under its own name so that
/// commutativity against the environment can be checked).
CheckResult verifyMoverAnnotations(const std::vector<PrimitiveOp> &Ops,
                                   const Program &P,
                                   const std::vector<Configuration> &Universe);

/// Fuses \p Ops into one atomic action named \p Name with \p Arity
/// parameters. The fused transition relation enumerates every maximal
/// sequential path through the operations; the fused gate is false iff
/// some path can reach an operation with a false gate.
Action fuseSequence(const std::string &Name, size_t Arity,
                    const std::vector<PrimitiveOp> &Ops);

} // namespace isq

#endif // ISQ_REDUCTION_REDUCTION_H
