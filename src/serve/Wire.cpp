//===- serve/Wire.cpp - isq-serve wire protocol ----------------------------===//

#include "serve/Wire.h"

#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace isq;
using namespace isq::serve;

bool serve::isKnownMsgType(uint8_t Type) {
  switch (static_cast<MsgType>(Type)) {
  case MsgType::SubmitRequest:
  case MsgType::StatsRequest:
  case MsgType::VerdictResponse:
  case MsgType::StatsResponse:
  case MsgType::BusyResponse:
  case MsgType::ErrorResponse:
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Marshall
//===----------------------------------------------------------------------===//

Marshall &Marshall::operator<<(uint8_t V) {
  Buf.push_back(static_cast<char>(V));
  return *this;
}

Marshall &Marshall::operator<<(uint32_t V) {
  for (int Shift = 24; Shift >= 0; Shift -= 8)
    Buf.push_back(static_cast<char>((V >> Shift) & 0xff));
  return *this;
}

Marshall &Marshall::operator<<(uint64_t V) {
  for (int Shift = 56; Shift >= 0; Shift -= 8)
    Buf.push_back(static_cast<char>((V >> Shift) & 0xff));
  return *this;
}

Marshall &Marshall::operator<<(int64_t V) {
  return *this << static_cast<uint64_t>(V);
}

Marshall &Marshall::operator<<(bool V) {
  return *this << static_cast<uint8_t>(V ? 1 : 0);
}

Marshall &Marshall::operator<<(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  return *this << Bits;
}

Marshall &Marshall::operator<<(const std::string &S) {
  *this << static_cast<uint32_t>(S.size());
  Buf.append(S);
  return *this;
}

//===----------------------------------------------------------------------===//
// Unmarshall
//===----------------------------------------------------------------------===//

bool Unmarshall::take(size_t N, const char *&Out) {
  if (!Ok || Buf.size() - Pos < N) {
    Ok = false;
    return false;
  }
  Out = Buf.data() + Pos;
  Pos += N;
  return true;
}

Unmarshall &Unmarshall::operator>>(uint8_t &V) {
  V = 0;
  const char *P;
  if (take(1, P))
    V = static_cast<uint8_t>(*P);
  return *this;
}

Unmarshall &Unmarshall::operator>>(uint32_t &V) {
  V = 0;
  const char *P;
  if (take(4, P))
    for (int I = 0; I < 4; ++I)
      V = (V << 8) | static_cast<uint8_t>(P[I]);
  return *this;
}

Unmarshall &Unmarshall::operator>>(uint64_t &V) {
  V = 0;
  const char *P;
  if (take(8, P))
    for (int I = 0; I < 8; ++I)
      V = (V << 8) | static_cast<uint8_t>(P[I]);
  return *this;
}

Unmarshall &Unmarshall::operator>>(int64_t &V) {
  uint64_t U = 0;
  *this >> U;
  V = static_cast<int64_t>(U);
  return *this;
}

Unmarshall &Unmarshall::operator>>(bool &V) {
  uint8_t B = 0;
  *this >> B;
  // Anything but 0/1 is a malformation, not a truthy value.
  if (B > 1)
    Ok = false;
  V = B == 1;
  return *this;
}

Unmarshall &Unmarshall::operator>>(double &V) {
  uint64_t Bits = 0;
  *this >> Bits;
  std::memcpy(&V, &Bits, sizeof(V));
  return *this;
}

Unmarshall &Unmarshall::operator>>(std::string &S) {
  S.clear();
  uint32_t Len = 0;
  *this >> Len;
  // The length is bounded by the remaining payload, so a garbage length
  // fails cleanly instead of allocating gigabytes.
  if (Len > remaining()) {
    Ok = false;
    return *this;
  }
  const char *P;
  if (take(Len, P))
    S.assign(P, Len);
  return *this;
}

//===----------------------------------------------------------------------===//
// Typed messages
//===----------------------------------------------------------------------===//

namespace isq {
namespace serve {

Marshall &operator<<(Marshall &M, const SubmitRequest &R) {
  M << R.RequestId << R.Source << R.Consts << R.RewriteAction << R.Eliminate
    << R.ArgMajor << R.Abstractions << R.Weights << R.CrossCheck << R.Engine;
  return M;
}

Unmarshall &operator>>(Unmarshall &U, SubmitRequest &R) {
  U >> R.RequestId >> R.Source >> R.Consts >> R.RewriteAction >>
      R.Eliminate >> R.ArgMajor >> R.Abstractions >> R.Weights >>
      R.CrossCheck >> R.Engine;
  return U;
}

Marshall &operator<<(Marshall &M, const VerdictResponse &R) {
  M << R.RequestId << R.ExitCode << R.CacheHit << R.ReportJson;
  return M;
}

Unmarshall &operator>>(Unmarshall &U, VerdictResponse &R) {
  U >> R.RequestId >> R.ExitCode >> R.CacheHit >> R.ReportJson;
  return U;
}

Marshall &operator<<(Marshall &M, const BusyResponse &R) {
  M << R.RequestId << R.QueueDepth << R.Message;
  return M;
}

Unmarshall &operator>>(Unmarshall &U, BusyResponse &R) {
  U >> R.RequestId >> R.QueueDepth >> R.Message;
  return U;
}

Marshall &operator<<(Marshall &M, const ErrorResponse &R) {
  M << R.RequestId << R.Message;
  return M;
}

Unmarshall &operator>>(Unmarshall &U, ErrorResponse &R) {
  U >> R.RequestId >> R.Message;
  return U;
}

Marshall &operator<<(Marshall &M, const StatsRequest &R) {
  M << R.RequestId;
  return M;
}

Unmarshall &operator>>(Unmarshall &U, StatsRequest &R) {
  U >> R.RequestId;
  return U;
}

Marshall &operator<<(Marshall &M, const ServeStats &S) {
  M << S.JobsAccepted << S.JobsRejected << S.JobsCompleted
    << S.JobsCoalesced << S.CacheHits
    << S.CacheMisses << S.CacheEvictions << S.FramesRejected << S.QueueDepth
    << S.ActiveConnections << S.TotalJobSeconds << S.MaxJobSeconds;
  return M;
}

Unmarshall &operator>>(Unmarshall &U, ServeStats &S) {
  U >> S.JobsAccepted >> S.JobsRejected >> S.JobsCompleted >>
      S.JobsCoalesced >> S.CacheHits >>
      S.CacheMisses >> S.CacheEvictions >> S.FramesRejected >> S.QueueDepth >>
      S.ActiveConnections >> S.TotalJobSeconds >> S.MaxJobSeconds;
  return U;
}

Marshall &operator<<(Marshall &M, const StatsResponse &R) {
  M << R.RequestId << R.Stats;
  return M;
}

Unmarshall &operator>>(Unmarshall &U, StatsResponse &R) {
  U >> R.RequestId >> R.Stats;
  return U;
}

} // namespace serve
} // namespace isq

driver::VerifyOptions serve::toVerifyOptions(const SubmitRequest &R,
                                             unsigned NumThreads) {
  driver::VerifyOptions O;
  O.Source = R.Source;
  O.Consts = R.Consts;
  O.RewriteAction = R.RewriteAction;
  O.Eliminate = R.Eliminate;
  O.Order = R.ArgMajor ? driver::VerifyOptions::RankOrder::ArgMajor
                       : driver::VerifyOptions::RankOrder::ActionMajor;
  O.Abstractions = R.Abstractions;
  O.Weights = R.Weights;
  O.CrossCheck = R.CrossCheck;
  std::string Ignored;
  O.Engine.applyKeyValues(R.Engine, Ignored);
  // The per-job thread budget is the server's, regardless of what the
  // client sent (applyKeyValues rejects "threads" anyway).
  O.Engine.NumThreads = NumThreads;
  return O;
}

bool serve::validateEngine(const SubmitRequest &R, std::string &Error) {
  engine::EngineConfig Probe;
  return Probe.applyKeyValues(R.Engine, Error);
}

SubmitRequest serve::fromVerifyOptions(const driver::VerifyOptions &O) {
  SubmitRequest R;
  R.Source = O.Source;
  R.Consts = O.Consts;
  R.RewriteAction = O.RewriteAction;
  R.Eliminate = O.Eliminate;
  R.ArgMajor = O.Order == driver::VerifyOptions::RankOrder::ArgMajor;
  R.Abstractions = O.Abstractions;
  R.Weights = O.Weights;
  R.CrossCheck = O.CrossCheck;
  // Only non-default keys travel; "threads" never does (toKeyValues
  // omits it — the server assigns the job's thread budget).
  R.Engine = O.Engine.toKeyValues();
  return R;
}

//===----------------------------------------------------------------------===//
// Frame layer
//===----------------------------------------------------------------------===//

std::string serve::encodeFrame(MsgType Type, const std::string &Body) {
  Marshall M;
  uint32_t Len = static_cast<uint32_t>(Body.size()) + 2;
  M << Len << WireVersion << static_cast<uint8_t>(Type);
  std::string Out = M.take();
  Out.append(Body);
  return Out;
}

namespace {

/// Reads exactly \p N bytes. Returns the byte count actually read: N on
/// success, less on EOF, -1 on error.
ssize_t readAll(int Fd, char *Buf, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (R == 0)
      break;
    Got += static_cast<size_t>(R);
  }
  return static_cast<ssize_t>(Got);
}

} // namespace

FrameResult serve::readFrame(int Fd) {
  FrameResult Out;
  char Header[4];
  ssize_t Got = readAll(Fd, Header, 4);
  if (Got == 0) {
    Out.St = FrameResult::Status::Eof;
    return Out;
  }
  if (Got != 4) {
    Out.St = FrameResult::Status::Malformed;
    Out.Error = "truncated length prefix";
    return Out;
  }
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len = (Len << 8) | static_cast<uint8_t>(Header[I]);
  if (Len < 2 || Len > MaxPayloadBytes) {
    Out.St = FrameResult::Status::Malformed;
    Out.Error = "invalid payload length " + std::to_string(Len);
    return Out;
  }
  std::string Payload(Len, '\0');
  if (readAll(Fd, Payload.data(), Len) != static_cast<ssize_t>(Len)) {
    Out.St = FrameResult::Status::Malformed;
    Out.Error = "truncated frame payload";
    return Out;
  }
  Out.St = FrameResult::Status::Ok;
  Out.Version = static_cast<uint8_t>(Payload[0]);
  Out.Type = static_cast<MsgType>(static_cast<uint8_t>(Payload[1]));
  Out.Body = Payload.substr(2);
  return Out;
}

bool serve::writeFrame(int Fd, MsgType Type, const std::string &Body) {
  if (Body.size() > MaxPayloadBytes - 2)
    return false;
  std::string Frame = encodeFrame(Type, Body);
  size_t Sent = 0;
  while (Sent < Frame.size()) {
    // MSG_NOSIGNAL: a vanished peer yields EPIPE instead of killing the
    // process with SIGPIPE.
    ssize_t W = ::send(Fd, Frame.data() + Sent, Frame.size() - Sent,
                       MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}
