//===- serve/Wire.h - isq-serve wire protocol -------------------*- C++ -*-===//
///
/// \file
/// The binary wire protocol of the verification service (isq-serve /
/// isq-loadgen): a length-prefixed frame layer plus typed request and
/// response structs marshalled in the classic RPC `Marshall`/`Unmarshall`
/// style (operator<< writes a struct field by field, operator>> reads it
/// back; see the protocol table in README.md).
///
/// Framing. Every message is one frame:
///
///   uint32  payload length (big-endian, bounded by MaxPayloadBytes)
///   uint8   protocol version (WireVersion)
///   uint8   message type (MsgType)
///   ...     message body (typed struct, marshalled field by field)
///
/// The length prefix counts the payload (version byte onward). A frame
/// whose length prefix exceeds MaxPayloadBytes, whose version byte is not
/// WireVersion, or whose body does not unmarshall cleanly is *malformed*:
/// the server answers with an ErrorResponse where the framing allows it
/// and closes the connection where it does not (an oversized or truncated
/// length prefix leaves no way to resynchronize the stream). Malformed
/// input never crashes or hangs either endpoint — every read is
/// bounds-checked and every allocation is capped by the frame length.
///
/// Integers are big-endian on the wire. Strings are a uint32 length
/// followed by the bytes; the unmarshaller rejects lengths exceeding the
/// remaining payload, so garbage frames cannot trigger huge allocations.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SERVE_WIRE_H
#define ISQ_SERVE_WIRE_H

#include "driver/VerifyDriver.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace isq {
namespace serve {

/// The protocol version this build speaks. Bumped on any incompatible
/// change to the framing or the message bodies.
///
/// History:
///   1  initial protocol
///   2  SubmitRequest carries an engine-configuration map (KEY=VALUE
///      pairs with the --engine key set) instead of the fixed
///      ParallelCheck/Symmetry booleans
constexpr uint8_t WireVersion = 2;

/// Upper bound on one frame's payload. Large enough for any realistic
/// ASL module plus report; small enough that a garbage length prefix is
/// rejected instead of allocated.
constexpr uint32_t MaxPayloadBytes = 16u << 20;

/// Message types. Requests have the high bit clear, responses set.
enum class MsgType : uint8_t {
  SubmitRequest = 0x01, ///< run (or cache-serve) one verification job
  StatsRequest = 0x02,  ///< snapshot the server counters
  VerdictResponse = 0x81,
  StatsResponse = 0x82,
  BusyResponse = 0x83, ///< admission control rejected the job
  ErrorResponse = 0x7f,
};

/// Returns true when \p Type is a known message type.
bool isKnownMsgType(uint8_t Type);

//===----------------------------------------------------------------------===//
// Marshall / Unmarshall
//===----------------------------------------------------------------------===//

/// Serializes values into a byte buffer (big-endian integers,
/// length-prefixed strings and containers).
class Marshall {
public:
  Marshall &operator<<(uint8_t V);
  Marshall &operator<<(uint32_t V);
  Marshall &operator<<(uint64_t V);
  Marshall &operator<<(int64_t V);
  Marshall &operator<<(bool V);
  Marshall &operator<<(double V); ///< IEEE-754 bits as uint64
  Marshall &operator<<(const std::string &S);

  template <typename T> Marshall &operator<<(const std::vector<T> &V) {
    *this << static_cast<uint32_t>(V.size());
    for (const T &E : V)
      *this << E;
    return *this;
  }
  template <typename K, typename V>
  Marshall &operator<<(const std::map<K, V> &M) {
    *this << static_cast<uint32_t>(M.size());
    for (const auto &[Key, Val] : M) {
      *this << Key;
      *this << Val;
    }
    return *this;
  }

  const std::string &buffer() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Deserializes values from a byte buffer. Every read is bounds-checked:
/// on underflow (or any other malformation) the ok() flag latches false
/// and all subsequent reads yield zero values, so decoders can read a
/// whole struct and test ok() once at the end.
class Unmarshall {
public:
  explicit Unmarshall(std::string Bytes) : Buf(std::move(Bytes)) {}

  Unmarshall &operator>>(uint8_t &V);
  Unmarshall &operator>>(uint32_t &V);
  Unmarshall &operator>>(uint64_t &V);
  Unmarshall &operator>>(int64_t &V);
  Unmarshall &operator>>(bool &V);
  Unmarshall &operator>>(double &V);
  Unmarshall &operator>>(std::string &S);

  template <typename T> Unmarshall &operator>>(std::vector<T> &V) {
    V.clear();
    uint32_t Count = 0;
    *this >> Count;
    // Every element costs at least one payload byte, so a count beyond
    // the remaining bytes is garbage — reject before allocating.
    if (Count > remaining()) {
      Ok = false;
      return *this;
    }
    V.reserve(Count);
    for (uint32_t I = 0; I < Count && Ok; ++I) {
      T E{};
      *this >> E;
      V.push_back(std::move(E));
    }
    return *this;
  }
  template <typename K, typename V>
  Unmarshall &operator>>(std::map<K, V> &M) {
    M.clear();
    uint32_t Count = 0;
    *this >> Count;
    if (Count > remaining()) {
      Ok = false;
      return *this;
    }
    for (uint32_t I = 0; I < Count && Ok; ++I) {
      K Key{};
      V Val{};
      *this >> Key;
      *this >> Val;
      if (Ok)
        M.emplace(std::move(Key), std::move(Val));
    }
    return *this;
  }

  bool ok() const { return Ok; }
  /// True when every payload byte was consumed (trailing garbage in a
  /// frame body is a malformation).
  bool atEnd() const { return Pos == Buf.size(); }
  size_t remaining() const { return Buf.size() - Pos; }

private:
  bool take(size_t N, const char *&Out);

  std::string Buf;
  size_t Pos = 0;
  bool Ok = true;
};

//===----------------------------------------------------------------------===//
// Typed messages
//===----------------------------------------------------------------------===//

/// One verification job: the wire form of driver::VerifyOptions plus a
/// client-chosen request id echoed in the response (so clients may
/// pipeline submissions over one connection).
struct SubmitRequest {
  uint64_t RequestId = 0;
  std::string Source;
  std::map<std::string, int64_t> Consts;
  std::string RewriteAction = "Main";
  std::vector<std::string> Eliminate;
  bool ArgMajor = false;
  std::map<std::string, std::string> Abstractions;
  std::map<std::string, uint64_t> Weights;
  bool CrossCheck = true;
  /// Engine configuration as KEY=VALUE pairs over --engine's key set
  /// (engine/EngineConfig.h), carrying only the keys the client set
  /// explicitly. The server validates with EngineConfig::applyKeyValues
  /// and answers an unknown key with an ErrorResponse diagnostic, never
  /// a crash. "threads" is rejected: the per-job thread budget is a
  /// server tuning knob (--job-threads), not a client choice — every
  /// knob here changes only performance/observability, never verdicts,
  /// so caching across clients stays sound.
  std::map<std::string, std::string> Engine;
};

/// The verdict for one submission. ReportJson is the schema-versioned
/// report of `isq-verify --format json` (driver/ReportRender.h); ExitCode
/// follows the documented isq-verify exit codes (0 accepted, 1 rejected,
/// 2 compile/input error).
struct VerdictResponse {
  uint64_t RequestId = 0;
  uint8_t ExitCode = 0;
  bool CacheHit = false;
  std::string ReportJson;
};

/// Admission-control rejection: the job queue was full when the request
/// arrived. The client may retry later; nothing was enqueued.
struct BusyResponse {
  uint64_t RequestId = 0;
  uint32_t QueueDepth = 0;
  std::string Message;
};

/// Protocol-level failure (unknown message type, body that does not
/// unmarshall, unsupported version). RequestId is 0 when the request id
/// could not be recovered from the malformed input.
struct ErrorResponse {
  uint64_t RequestId = 0;
  std::string Message;
};

struct StatsRequest {
  uint64_t RequestId = 0;
};

/// Server counters, all monotonic since server start except QueueDepth
/// and ActiveConnections (instantaneous).
struct ServeStats {
  uint64_t JobsAccepted = 0;
  uint64_t JobsRejected = 0; ///< admission-control rejections
  uint64_t JobsCompleted = 0;
  /// Submissions that attached to an identical in-flight job
  /// (single-flight coalescing) instead of running the pipeline again.
  uint64_t JobsCoalesced = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t FramesRejected = 0; ///< malformed frames / bodies seen
  uint64_t QueueDepth = 0;
  uint64_t ActiveConnections = 0;
  double TotalJobSeconds = 0; ///< summed per-job wall time (cache misses)
  double MaxJobSeconds = 0;   ///< slowest single job
};

struct StatsResponse {
  uint64_t RequestId = 0;
  ServeStats Stats;
};

Marshall &operator<<(Marshall &M, const SubmitRequest &R);
Unmarshall &operator>>(Unmarshall &U, SubmitRequest &R);
Marshall &operator<<(Marshall &M, const VerdictResponse &R);
Unmarshall &operator>>(Unmarshall &U, VerdictResponse &R);
Marshall &operator<<(Marshall &M, const BusyResponse &R);
Unmarshall &operator>>(Unmarshall &U, BusyResponse &R);
Marshall &operator<<(Marshall &M, const ErrorResponse &R);
Unmarshall &operator>>(Unmarshall &U, ErrorResponse &R);
Marshall &operator<<(Marshall &M, const StatsRequest &R);
Unmarshall &operator>>(Unmarshall &U, StatsRequest &R);
Marshall &operator<<(Marshall &M, const ServeStats &S);
Unmarshall &operator>>(Unmarshall &U, ServeStats &S);
Marshall &operator<<(Marshall &M, const StatsResponse &R);
Unmarshall &operator>>(Unmarshall &U, StatsResponse &R);

/// Converts a submission into driver options. \p NumThreads is the
/// server-side worker-thread budget per job (results are bit-identical
/// for any value, so it is a server tuning knob, not a client choice).
/// Assumes R.Engine was already validated (see validateEngine);
/// unparseable entries are ignored here.
driver::VerifyOptions toVerifyOptions(const SubmitRequest &R,
                                      unsigned NumThreads);

/// Validates \p R.Engine against the engine key set ("threads" is
/// additionally rejected as server-controlled). Returns false and sets
/// \p Error on the first bad entry.
bool validateEngine(const SubmitRequest &R, std::string &Error);

/// Builds a submission from driver options (client side).
SubmitRequest fromVerifyOptions(const driver::VerifyOptions &O);

//===----------------------------------------------------------------------===//
// Frame layer
//===----------------------------------------------------------------------===//

/// Encodes a complete frame (length prefix + version + type + body).
std::string encodeFrame(MsgType Type, const std::string &Body);

/// Result of reading one frame from a stream.
struct FrameResult {
  enum class Status {
    Ok,        ///< Type/Body are valid
    Eof,       ///< clean end of stream before a frame started
    Malformed, ///< framing violation — the stream cannot be resynced
  };
  Status St = Status::Eof;
  uint8_t Version = 0;
  MsgType Type = MsgType::ErrorResponse;
  std::string Body;
  std::string Error; ///< diagnostic when St == Malformed
};

/// Reads one frame from \p Fd (blocking; loops over short reads). A
/// truncated frame (EOF mid-frame) and an oversized length prefix are
/// both Malformed. Version and type bytes are returned raw — callers
/// decide how to answer an unsupported version or unknown type; bodies
/// are not decoded here.
FrameResult readFrame(int Fd);

/// Writes one complete frame to \p Fd (blocking; loops over short
/// writes, EPIPE-safe). Returns false when the peer is gone.
bool writeFrame(int Fd, MsgType Type, const std::string &Body);

/// Marshalls \p Message and writes it as one frame.
template <typename T> bool writeMessage(int Fd, MsgType Type, const T &Message) {
  Marshall M;
  M << Message;
  return writeFrame(Fd, Type, M.buffer());
}

} // namespace serve
} // namespace isq

#endif // ISQ_SERVE_WIRE_H
