//===- serve/JobQueue.h - Bounded fair job queue -----------------*- C++ -*-===//
///
/// \file
/// The admission-controlled job queue between isq-serve's connection
/// handlers and its worker pool.
///
/// Admission control: the queue is bounded. tryPush refuses (returns
/// false) when the total depth is at capacity, and the server answers the
/// client with an explicit BusyResponse — overload is surfaced, never
/// absorbed into an unbounded queue.
///
/// Fairness: jobs are tagged with a client id (one per connection) and
/// dequeued round-robin across clients with pending work, so a client
/// that floods the queue cannot starve the others: with clients A and B
/// pending, pops alternate A, B, A, B regardless of how many jobs A
/// enqueued first.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SERVE_JOBQUEUE_H
#define ISQ_SERVE_JOBQUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>

namespace isq {
namespace serve {

/// One unit of server work (a closure the worker runs).
struct Job {
  uint64_t ClientId = 0;
  std::function<void()> Work;
};

/// Bounded multi-producer multi-consumer queue with per-client
/// round-robin dequeue order.
class JobQueue {
public:
  /// \p Capacity: maximum total queued jobs (≥ 1).
  explicit JobQueue(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

  /// Enqueues \p J unless the queue is full or closed. Never blocks.
  bool tryPush(Job J);

  /// Dequeues the next job in round-robin client order; blocks until a
  /// job arrives or the queue is closed. Returns nullopt only after
  /// close() with the queue drained.
  std::optional<Job> pop();

  /// Wakes all blocked poppers; subsequent tryPush fails. Queued jobs
  /// are still handed out (drain semantics).
  void close();

  size_t depth() const;

private:
  size_t Capacity;
  mutable std::mutex M;
  std::condition_variable NotEmpty;
  /// Pending jobs per client, FIFO within a client.
  std::map<uint64_t, std::deque<Job>> PerClient;
  /// Clients with pending jobs, in round-robin order: pop serves the
  /// front client and, if it still has work, rotates it to the back.
  std::deque<uint64_t> Rotation;
  size_t Depth = 0;
  bool Closed = false;
};

} // namespace serve
} // namespace isq

#endif // ISQ_SERVE_JOBQUEUE_H
