//===- serve/Server.cpp - Verification-as-a-service daemon -----------------===//

#include "serve/Server.h"

#include "driver/ReportRender.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace isq;
using namespace isq::serve;

/// One accepted client connection. The handler thread owns the read side
/// and is the only closer of the fd; writes (handler responses and worker
/// verdicts) serialize on WriteMutex and check Open first, so a verdict
/// for a vanished client is dropped instead of racing the close.
struct Server::Connection {
  int Fd = -1;
  uint64_t ClientId = 0;
  std::mutex WriteMutex;
  /// Atomic so stats() can count open connections without taking every
  /// connection's write mutex; transitions still happen under WriteMutex.
  std::atomic<bool> Open{true};

  template <typename T> bool send(MsgType Type, const T &Message) {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    if (!Open)
      return false;
    return writeMessage(Fd, Type, Message);
  }

  /// Unblocks a reader stuck in readFrame (fd stays valid for writers).
  void shutdownBoth() {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    if (Open)
      ::shutdown(Fd, SHUT_RDWR);
  }

  /// Called by the handler thread once its read loop ends.
  void close() {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    if (!Open)
      return;
    Open = false;
    ::close(Fd);
  }
};

Server::Server(ServerOptions Opts)
    : Opts(Opts), Queue(Opts.QueueCapacity), Cache(Opts.CacheCapacity) {}

Server::~Server() { stop(); }

bool Server::start(std::string &Error) {
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = "socket: " + std::string(strerror(errno));
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Opts.Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = "bind 127.0.0.1:" + std::to_string(Opts.Port) + ": " +
            strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 64) < 0) {
    Error = "listen: " + std::string(strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  socklen_t Len = sizeof(Addr);
  ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  BoundPort = ntohs(Addr.sin_port);

  Running = true;
  unsigned NumWorkers = Opts.Workers ? Opts.Workers : 1;
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::stop() {
  if (!Running.exchange(false)) {
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return;
  }
  // Unblock the acceptor, then the workers, then every connection reader.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (AcceptThread.joinable())
    AcceptThread.join();
  ::close(ListenFd);
  ListenFd = -1;

  Queue.close();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();

  std::vector<std::shared_ptr<Connection>> Conns;
  std::vector<std::thread> Handlers;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Conns = Connections;
    Handlers.swap(HandlerThreads);
  }
  for (const auto &Conn : Conns)
    Conn->shutdownBoth();
  for (std::thread &H : Handlers)
    if (H.joinable())
      H.join();
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Connections.clear();
  }
}

void Server::acceptLoop() {
  while (Running) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listener shut down (or fatal error): stop accepting
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      if (!Running) {
        ::close(Fd);
        break;
      }
      Conn->ClientId = NextClientId++;
      Connections.push_back(Conn);
      HandlerThreads.emplace_back(
          [this, Conn] { handleConnection(Conn); });
    }
  }
}

void Server::handleConnection(std::shared_ptr<Connection> Conn) {
  while (Running) {
    FrameResult Frame = readFrame(Conn->Fd);
    if (Frame.St == FrameResult::Status::Eof)
      break;
    if (Frame.St == FrameResult::Status::Malformed) {
      // The stream cannot be resynchronized after a framing violation:
      // answer best-effort and drop the connection.
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Counters.FramesRejected;
      }
      Conn->send(MsgType::ErrorResponse,
                 ErrorResponse{0, "malformed frame: " + Frame.Error});
      break;
    }
    if (Frame.Version != WireVersion) {
      // Well-framed, wrong dialect: reject the message, keep the stream.
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Counters.FramesRejected;
      }
      Conn->send(MsgType::ErrorResponse,
                 ErrorResponse{0, "unsupported protocol version " +
                                      std::to_string(Frame.Version) +
                                      " (want " +
                                      std::to_string(WireVersion) + ")"});
      continue;
    }
    switch (Frame.Type) {
    case MsgType::SubmitRequest: {
      SubmitRequest Request;
      Unmarshall U(std::move(Frame.Body));
      U >> Request;
      if (!U.ok() || !U.atEnd()) {
        {
          std::lock_guard<std::mutex> Lock(StatsMutex);
          ++Counters.FramesRejected;
        }
        Conn->send(MsgType::ErrorResponse,
                   ErrorResponse{Request.RequestId,
                                 "malformed SubmitRequest body"});
        continue;
      }
      handleSubmit(Conn, std::move(Request));
      continue;
    }
    case MsgType::StatsRequest: {
      StatsRequest Request;
      Unmarshall U(std::move(Frame.Body));
      U >> Request;
      if (!U.ok() || !U.atEnd()) {
        {
          std::lock_guard<std::mutex> Lock(StatsMutex);
          ++Counters.FramesRejected;
        }
        Conn->send(MsgType::ErrorResponse,
                   ErrorResponse{0, "malformed StatsRequest body"});
        continue;
      }
      Conn->send(MsgType::StatsResponse,
                 StatsResponse{Request.RequestId, stats()});
      continue;
    }
    default:
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Counters.FramesRejected;
      }
      Conn->send(MsgType::ErrorResponse,
                 ErrorResponse{0, "unexpected message type " +
                                      std::to_string(static_cast<unsigned>(
                                          Frame.Type))});
      continue;
    }
  }
  Conn->close();
}

void Server::handleSubmit(const std::shared_ptr<Connection> &Conn,
                          SubmitRequest Request) {
  // Validate the engine map up front: a bad key/value is a client error
  // answered with a diagnostic, and it must never reach the cache or the
  // pipeline (an unvalidated map would poison the verdict cache key).
  std::string EngineError;
  if (!validateEngine(Request, EngineError)) {
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Counters.FramesRejected;
    }
    Conn->send(MsgType::ErrorResponse,
               ErrorResponse{Request.RequestId,
                             "bad engine config: " + EngineError});
    return;
  }
  std::string Key = verdictCacheKey(Request);
  if (std::optional<VerdictCache::Entry> Hit = Cache.lookup(Key)) {
    VerdictResponse Response;
    Response.RequestId = Request.RequestId;
    Response.ExitCode = static_cast<uint8_t>(Hit->Result.exitCode());
    Response.CacheHit = true;
    Response.ReportJson = std::move(Hit->ReportJson);
    Conn->send(MsgType::VerdictResponse, Response);
    return;
  }
  // Single-flight: attach to an identical job already queued or running
  // instead of enqueueing a duplicate. Waiters bypass admission control —
  // they add no work, only a delivery.
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    auto It = InFlight.find(Key);
    if (It != InFlight.end()) {
      It->second.push_back({Conn, Request.RequestId});
      std::lock_guard<std::mutex> StatsLock(StatsMutex);
      ++Counters.JobsCoalesced;
      return;
    }
    InFlight.emplace(Key, std::vector<Waiter>{});
  }
  uint64_t RequestId = Request.RequestId;
  Job J;
  J.ClientId = Conn->ClientId;
  J.Work = [this, Conn, Request = std::move(Request), Key]() mutable {
    runJob(Conn, std::move(Request), std::move(Key));
  };
  if (!Queue.tryPush(std::move(J))) {
    // The job never ran: release the single-flight slot and answer any
    // waiter that managed to attach meanwhile with the same rejection.
    std::vector<Waiter> Waiters;
    {
      std::lock_guard<std::mutex> Lock(InFlightMutex);
      auto It = InFlight.find(Key);
      if (It != InFlight.end()) {
        Waiters = std::move(It->second);
        InFlight.erase(It);
      }
    }
    uint32_t Depth = static_cast<uint32_t>(Queue.depth());
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      Counters.JobsRejected += 1 + Waiters.size();
      Counters.JobsCoalesced -= Waiters.size();
    }
    BusyResponse Busy{RequestId, Depth,
                      "queue full (" + std::to_string(Depth) +
                          " jobs pending); retry later"};
    Conn->send(MsgType::BusyResponse, Busy);
    for (const Waiter &W : Waiters) {
      Busy.RequestId = W.RequestId;
      W.Conn->send(MsgType::BusyResponse, Busy);
    }
    return;
  }
  std::lock_guard<std::mutex> Lock(StatsMutex);
  ++Counters.JobsAccepted;
}

void Server::workerLoop() {
  while (std::optional<Job> J = Queue.pop())
    J->Work();
}

void Server::runJob(const std::shared_ptr<Connection> &Conn,
                    SubmitRequest Request, std::string CacheKey) {
  Timer JobTimer;
  driver::VerifyOptions Options = toVerifyOptions(Request, Opts.JobThreads);
  Options.SharedCache = &ObligationVerdicts;
  // Server-side spilling: compact-mode jobs get a private scratch
  // subdirectory (arenas clean their own segment files; the job dir is
  // removed below). Non-compact jobs have nothing to spill.
  std::string JobSpillDir;
  if (!Opts.SpillDir.empty() && Options.Engine.Compress) {
    JobSpillDir = Opts.SpillDir + "/job-" +
                  std::to_string(NextJobSeq.fetch_add(1));
    Options.Engine.Spill = true;
    Options.Engine.SpillDir = JobSpillDir;
    Options.Engine.MemBudget = Opts.SpillMemBudget;
  }
  driver::VerifyResult Result = driver::verifyModule(Options);
  if (!JobSpillDir.empty())
    ::rmdir(JobSpillDir.c_str()); // arenas already emptied it
  std::string Json = driver::renderJson(Result);
  double Seconds = JobTimer.elapsed();

  VerdictResponse Response;
  Response.RequestId = Request.RequestId;
  Response.ExitCode = static_cast<uint8_t>(Result.exitCode());
  Response.CacheHit = false;
  Response.ReportJson = Json;
  Cache.insert(CacheKey, {std::move(Result), std::move(Json)});
  // Close the single-flight window after the cache insert: a submission
  // arriving in between hits the cache, one arriving before it attached
  // as a waiter — either way nothing recomputes.
  std::vector<Waiter> Waiters;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    auto It = InFlight.find(CacheKey);
    if (It != InFlight.end()) {
      Waiters = std::move(It->second);
      InFlight.erase(It);
    }
  }
  // Count completion before answering, so a stats request a client sends
  // right after its verdict never observes the job as still pending.
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.JobsCompleted;
    Counters.TotalJobSeconds += Seconds;
    Counters.MaxJobSeconds = std::max(Counters.MaxJobSeconds, Seconds);
  }
  Conn->send(MsgType::VerdictResponse, Response);
  // Waiters get the same verdict bytes; CacheHit marks that their
  // submission did not run the pipeline.
  Response.CacheHit = true;
  for (const Waiter &W : Waiters) {
    Response.RequestId = W.RequestId;
    W.Conn->send(MsgType::VerdictResponse, Response);
  }
}

ServeStats Server::stats() const {
  ServeStats Out;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Out = Counters;
  }
  VerdictCache::Counters C = Cache.counters();
  Out.CacheHits = C.Hits;
  Out.CacheMisses = C.Misses;
  Out.CacheEvictions = C.Evictions;
  Out.QueueDepth = Queue.depth();
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    size_t Open = 0;
    for (const auto &Conn : Connections)
      if (Conn->Open)
        ++Open;
    Out.ActiveConnections = Open;
  }
  return Out;
}
