//===- serve/VerdictCache.cpp - Cross-request verdict cache ----------------===//

#include "serve/VerdictCache.h"

using namespace isq;
using namespace isq::serve;

std::string serve::verdictCacheKey(const SubmitRequest &R) {
  // The request's own marshalled form is already canonical except for the
  // request id, so serialize a copy with the id zeroed. std::map fields
  // marshall sorted by name, which gives the order-insensitivity for
  // consts/abstractions/weights; Eliminate is a vector and stays
  // order-sensitive.
  SubmitRequest Canon = R;
  Canon.RequestId = 0;
  Marshall M;
  M << Canon;
  return M.take();
}

std::optional<VerdictCache::Entry>
VerdictCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Hits;
  Lru.splice(Lru.begin(), Lru, It->second);
  return It->second->Value;
}

void VerdictCache::insert(const std::string &Key, Entry Value) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // Refresh: identical key means identical verdict (the pipeline is
    // deterministic), but a concurrent duplicate job may insert twice.
    It->second->Value = std::move(Value);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  if (Lru.size() == Capacity) {
    Index.erase(Lru.back().Key);
    Lru.pop_back();
    ++Stats.Evictions;
  }
  Lru.push_front({Key, std::move(Value)});
  Index.emplace(Lru.front().Key, Lru.begin());
  Stats.Entries = Lru.size();
}

VerdictCache::Counters VerdictCache::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  Counters Out = Stats;
  Out.Entries = Lru.size();
  return Out;
}
