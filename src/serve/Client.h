//===- serve/Client.h - isq-serve client ------------------------*- C++ -*-===//
///
/// \file
/// A blocking client for the isq-serve wire protocol, shared by the
/// isq-loadgen tool and the serve tests. One connection per client;
/// submissions carry client-chosen request ids, so callers may pipeline
/// (submit several, then read replies in order). Raw frame access is
/// exposed for protocol negative tests.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SERVE_CLIENT_H
#define ISQ_SERVE_CLIENT_H

#include "serve/Wire.h"

#include <string>

namespace isq {
namespace serve {

/// What the server answered to one request.
struct ServeReply {
  enum class Kind {
    Verdict,      ///< VerdictResponse in Verdict
    Busy,         ///< admission control rejected; Busy is valid
    ServerError,  ///< ErrorResponse in Error
    Stats,        ///< StatsResponse in Stats
    Disconnected, ///< stream ended or local IO error; Error has detail
  };
  Kind K = Kind::Disconnected;
  VerdictResponse Verdict;
  BusyResponse Busy;
  StatsResponse Stats;
  std::string Error;
};

class ServeClient {
public:
  ServeClient() = default;
  ~ServeClient() { close(); }
  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Connects to \p Host:\p Port. Returns false with \p Error set on
  /// failure.
  bool connect(const std::string &Host, uint16_t Port, std::string &Error);
  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends one submission (fire-and-forget half of a pipelined call).
  bool send(const SubmitRequest &Request);
  /// Sends one stats request.
  bool sendStats(const StatsRequest &Request);
  /// Reads the next reply frame.
  ServeReply receive();

  /// Sends a submission and waits for its reply.
  ServeReply submit(const SubmitRequest &Request) {
    if (!send(Request))
      return disconnected("send failed");
    return receive();
  }
  /// Fetches the server counters.
  ServeReply stats(uint64_t RequestId = 0) {
    if (!sendStats(StatsRequest{RequestId}))
      return disconnected("send failed");
    return receive();
  }

  /// Raw bytes access for protocol negative tests.
  bool sendRaw(const std::string &Bytes);
  int fd() const { return Fd; }

private:
  static ServeReply disconnected(std::string Why) {
    ServeReply R;
    R.K = ServeReply::Kind::Disconnected;
    R.Error = std::move(Why);
    return R;
  }

  int Fd = -1;
};

} // namespace serve
} // namespace isq

#endif // ISQ_SERVE_CLIENT_H
