//===- serve/Server.h - Verification-as-a-service daemon ---------*- C++ -*-===//
///
/// \file
/// The isq-serve daemon core: a loopback TCP server that accepts
/// verification jobs over the wire protocol (serve/Wire.h), runs them
/// through driver::verifyModule on a bounded worker pool, and streams
/// schema-versioned JSON verdicts back.
///
/// Shape:
///  - one accept thread; one handler thread per connection (connections
///    are few — clients multiplex jobs over one connection by pipelining
///    request ids);
///  - a bounded JobQueue between handlers and a fixed worker pool (the
///    same threads-plus-condvar model as engine/ObligationScheduler, made
///    long-lived); overload answers BusyResponse — admission control,
///    never an unbounded queue;
///  - per-client (= per-connection) round-robin dequeue fairness;
///  - an LRU VerdictCache consulted by the handler before enqueueing, so
///    repeated submissions short-circuit without occupying a worker;
///  - single-flight coalescing: a submission identical to a job already
///    queued or running attaches to it as a waiter instead of enqueueing
///    a duplicate — when the leader finishes, every waiter gets the same
///    verdict bytes (a thundering herd of identical cold submissions
///    costs one pipeline run);
///  - a STATS RPC served inline by the handler thread.
///
/// Re-entrancy: workers run driver::verifyModule concurrently in one
/// process. Each run builds its own arenas and caches; the only
/// process-global mutable state any run touches is the interned Symbol
/// table, which is mutex-protected with append-only storage (see
/// DESIGN.md "Serve subsystem" for the audited contract). The decision
/// surface of every verdict — accepted/rejected, conditions,
/// obligations, interned-state counts, diagnostics — is bit-identical
/// to a one-shot run of the same job; timing fields and the
/// exploration-telemetry counters may differ, because symmetry
/// canonicalization breaks ties by symbol-interning order, which
/// depends on which modules the process compiled earlier (DESIGN.md
/// "Determinism contract" has the exact field list).
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SERVE_SERVER_H
#define ISQ_SERVE_SERVER_H

#include "engine/ObligationCache.h"
#include "serve/JobQueue.h"
#include "serve/VerdictCache.h"
#include "serve/Wire.h"

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

namespace isq {
namespace serve {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (query it
  /// with Server::port()).
  uint16_t Port = 0;
  /// Worker threads running verification jobs.
  unsigned Workers = 2;
  /// JobQueue capacity (admission-control bound).
  size_t QueueCapacity = 64;
  /// VerdictCache capacity in entries (0 disables caching).
  size_t CacheCapacity = 128;
  /// Engine/scheduler threads per job (verdicts are identical for any
  /// value; this only trades per-job latency against throughput).
  unsigned JobThreads = 1;
  /// Non-empty enables the tiered state store for compact-mode jobs:
  /// each job spills into its own `job-<seq>` subdirectory (removed when
  /// the job finishes) under a hot-tier budget of SpillMemBudget bytes.
  /// Spilling is a server resource knob — requests cannot ask for it
  /// over the wire, and verdicts are bit-identical either way.
  std::string SpillDir;
  uint64_t SpillMemBudget = 0;
};

/// The daemon. start() binds and spawns threads; stop() tears everything
/// down (drains nothing: queued jobs whose connection is gone are
/// dropped, running jobs finish). Destruction implies stop().
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and spawns the accept and worker threads. Returns
  /// false with \p Error set when the socket cannot be bound.
  bool start(std::string &Error);

  /// The actually bound port (after start()).
  uint16_t port() const { return BoundPort; }

  /// Stops accepting, closes every connection, joins all threads.
  void stop();

  /// Counter snapshot (the same numbers the STATS RPC reports).
  ServeStats stats() const;

private:
  struct Connection;

  void acceptLoop();
  void handleConnection(std::shared_ptr<Connection> Conn);
  void workerLoop();
  void handleSubmit(const std::shared_ptr<Connection> &Conn,
                    SubmitRequest Request);
  void runJob(const std::shared_ptr<Connection> &Conn, SubmitRequest Request,
              std::string CacheKey);

  ServerOptions Opts;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> Running{false};

  JobQueue Queue;
  VerdictCache Cache;
  /// Process-wide obligation verdict cache, one tier below the
  /// whole-request VerdictCache: a request that misses the request cache
  /// (any edit, any flag change) still reuses every slice verdict whose
  /// dependencies are untouched. Shared by all workers (thread-safe);
  /// memory-only — the daemon outlives requests, so persistence buys
  /// nothing a restart-to-upgrade wouldn't invalidate anyway.
  engine::ObligationCache ObligationVerdicts;

  std::thread AcceptThread;
  std::vector<std::thread> Workers;

  mutable std::mutex ConnMutex;
  std::vector<std::shared_ptr<Connection>> Connections;
  std::vector<std::thread> HandlerThreads;
  uint64_t NextClientId = 1;
  /// Sequence for per-job spill subdirectories (workers run jobs
  /// concurrently; each needs its own scratch dir).
  std::atomic<uint64_t> NextJobSeq{1};

  /// Single-flight registry: cache key → waiters for the in-flight job
  /// with that key. The leader (the submission that enqueued the job)
  /// is not in the list; it is answered directly by runJob.
  struct Waiter {
    std::shared_ptr<Connection> Conn;
    uint64_t RequestId = 0;
  };
  std::mutex InFlightMutex;
  std::unordered_map<std::string, std::vector<Waiter>> InFlight;

  mutable std::mutex StatsMutex;
  ServeStats Counters;
};

} // namespace serve
} // namespace isq

#endif // ISQ_SERVE_SERVER_H
