//===- serve/JobQueue.cpp - Bounded fair job queue -------------------------===//

#include "serve/JobQueue.h"

using namespace isq;
using namespace isq::serve;

bool JobQueue::tryPush(Job J) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Closed || Depth >= Capacity)
      return false;
    auto [It, New] = PerClient.try_emplace(J.ClientId);
    if (New || It->second.empty())
      Rotation.push_back(J.ClientId);
    It->second.push_back(std::move(J));
    ++Depth;
  }
  NotEmpty.notify_one();
  return true;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> Lock(M);
  NotEmpty.wait(Lock, [&] { return Depth > 0 || Closed; });
  if (Depth == 0)
    return std::nullopt;
  uint64_t Client = Rotation.front();
  Rotation.pop_front();
  auto It = PerClient.find(Client);
  Job J = std::move(It->second.front());
  It->second.pop_front();
  --Depth;
  if (!It->second.empty())
    Rotation.push_back(Client);
  else
    PerClient.erase(It);
  return J;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Closed = true;
  }
  NotEmpty.notify_all();
}

size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> Lock(M);
  return Depth;
}
