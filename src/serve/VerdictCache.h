//===- serve/VerdictCache.h - Cross-request verdict cache --------*- C++ -*-===//
///
/// \file
/// The LRU verdict cache behind isq-serve: repeated submissions of the
/// same verification job short-circuit to the stored verdict instead of
/// re-running the pipeline.
///
/// Cache key. The key is the *canonical byte serialization* of everything
/// the verdict depends on: program text, constant bindings, rewrite
/// action, elimination order, rank order, abstractions, cooperation
/// weights, and the cross-check/parallel-check/symmetry flags. Fields
/// whose order is semantically irrelevant (consts, abstractions, weights)
/// are std::maps, so their serialization is sorted by name and two
/// requests binding the same values in different order share one key;
/// fields whose order matters (the elimination sequence) serialize in
/// request order and keep distinct keys. The request id and any transport
/// detail are excluded. Using the full serialized request as the key —
/// rather than a hash of it — makes collisions impossible; the map hashes
/// the key bytes internally. NumThreads is deliberately absent: verdicts
/// are bit-identical for every thread count (the engine's determinism
/// contract), so thread budget is a server tuning knob, not an input.
///
/// A hit returns a deep copy of the cached VerifyResult (all-value
/// struct) plus the exact rendered JSON report, so a warm response is
/// byte-identical to the response of the run that populated the entry.
///
/// Thread safety: all operations take one internal mutex; the cache is
/// shared by every connection handler and worker in the server.
///
//===----------------------------------------------------------------------===//

#ifndef ISQ_SERVE_VERDICTCACHE_H
#define ISQ_SERVE_VERDICTCACHE_H

#include "serve/Wire.h"

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace isq {
namespace serve {

/// Derives the canonical cache key for \p R. Pure function of the
/// verdict-relevant request fields (see the file comment).
std::string verdictCacheKey(const SubmitRequest &R);

/// An LRU map from canonical request bytes to verdicts.
class VerdictCache {
public:
  struct Entry {
    driver::VerifyResult Result;
    /// renderJson(Result), captured when the entry was stored, so warm
    /// responses are byte-identical to the populating run's response.
    std::string ReportJson;
  };

  struct Counters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t Entries = 0;
  };

  /// \p Capacity in entries; 0 disables caching (every lookup misses).
  explicit VerdictCache(size_t Capacity) : Capacity(Capacity) {}

  /// Looks up \p Key, refreshing its LRU position. Counts a hit or miss.
  std::optional<Entry> lookup(const std::string &Key);

  /// Inserts (or refreshes) \p Key, evicting the least recently used
  /// entry when at capacity.
  void insert(const std::string &Key, Entry Value);

  Counters counters() const;

private:
  struct Node {
    std::string Key;
    Entry Value;
  };

  size_t Capacity;
  mutable std::mutex M;
  /// Most recently used at the front.
  std::list<Node> Lru;
  std::unordered_map<std::string, std::list<Node>::iterator> Index;
  Counters Stats;
};

} // namespace serve
} // namespace isq

#endif // ISQ_SERVE_VERDICTCACHE_H
