//===- serve/Client.cpp - isq-serve client ---------------------------------===//

#include "serve/Client.h"

#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace isq;
using namespace isq::serve;

bool ServeClient::connect(const std::string &Host, uint16_t Port,
                          std::string &Error) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = "socket: " + std::string(strerror(errno));
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Error = "invalid host address '" + Host + "'";
    close();
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "connect " + Host + ":" + std::to_string(Port) + ": " +
            strerror(errno);
    close();
    return false;
  }
  return true;
}

void ServeClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool ServeClient::send(const SubmitRequest &Request) {
  return Fd >= 0 && writeMessage(Fd, MsgType::SubmitRequest, Request);
}

bool ServeClient::sendStats(const StatsRequest &Request) {
  return Fd >= 0 && writeMessage(Fd, MsgType::StatsRequest, Request);
}

bool ServeClient::sendRaw(const std::string &Bytes) {
  if (Fd < 0)
    return false;
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    ssize_t W =
        ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}

ServeReply ServeClient::receive() {
  ServeReply Reply;
  if (Fd < 0)
    return disconnected("not connected");
  FrameResult Frame = readFrame(Fd);
  if (Frame.St != FrameResult::Status::Ok)
    return disconnected(Frame.St == FrameResult::Status::Eof
                            ? "connection closed"
                            : "malformed reply: " + Frame.Error);
  if (Frame.Version != WireVersion)
    return disconnected("unsupported reply version " +
                        std::to_string(Frame.Version));
  Unmarshall U(std::move(Frame.Body));
  switch (Frame.Type) {
  case MsgType::VerdictResponse:
    U >> Reply.Verdict;
    Reply.K = ServeReply::Kind::Verdict;
    break;
  case MsgType::BusyResponse:
    U >> Reply.Busy;
    Reply.K = ServeReply::Kind::Busy;
    break;
  case MsgType::StatsResponse:
    U >> Reply.Stats;
    Reply.K = ServeReply::Kind::Stats;
    break;
  case MsgType::ErrorResponse: {
    ErrorResponse E;
    U >> E;
    Reply.K = ServeReply::Kind::ServerError;
    Reply.Error = E.Message;
    break;
  }
  default:
    return disconnected("unexpected reply type " +
                        std::to_string(static_cast<unsigned>(Frame.Type)));
  }
  if (!U.ok() || !U.atEnd())
    return disconnected("malformed reply body");
  return Reply;
}
