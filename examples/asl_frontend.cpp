//===- examples/asl_frontend.cpp - The ASL frontend tour -----------------------------===//
///
/// \file
/// Shows the textual frontend end to end: an ASL protocol (producer/
/// consumer over a FIFO queue) with its proof artifacts declared in the
/// same module, compiled to gated atomic actions and verified with the
/// IS rule through the same driver the `isq-verify` tool uses.
///
/// Run: ./asl_frontend [items]
///
//===----------------------------------------------------------------------===//

#include "driver/VerifyDriver.h"
#include "explorer/Explorer.h"

#include <cstdio>
#include <cstdlib>

using namespace isq;
using namespace isq::driver;

namespace {

const char *ProducerConsumerAsl = R"(
// Producer-Consumer over a FIFO queue (§5.3 of the paper): the producer
// may run arbitrarily ahead; the sequentialization alternates the two so
// the queue never holds more than one element.
const T: int;

var queue: seq<int> := [];
var produced: int := 0;
var consumed: int := 0;

action Main() {
  async Producer(1);
  async Consumer(1);
}

action Producer(k: int) {
  queue := push_back(queue, k);
  produced := k;
  if k < T {
    async Producer(k + 1);
  }
}

action Consumer(k: int) {
  assert size(queue) == 0 || front(queue) == k;  // FIFO order spec
  await size(queue) >= 1;
  queue := pop_front(queue);
  consumed := k;
  if k < T {
    async Consumer(k + 1);
  }
}

// The left-mover abstraction: in the sequential context the queue holds
// exactly the next item.
action ConsumerAbs(k: int) {
  assert size(queue) >= 1;
  assert front(queue) == k;
  await size(queue) >= 1;
  queue := pop_front(queue);
  consumed := k;
  if k < T {
    async Consumer(k + 1);
  }
}
)";

} // namespace

int main(int argc, char **argv) {
  int64_t T = argc > 1 ? std::atoll(argv[1]) : 4;
  if (T < 1 || T > 8) {
    std::fprintf(stderr, "usage: asl_frontend [items 1-8]\n");
    return 1;
  }
  std::printf("== ASL frontend: producer-consumer, %lld items ==\n\n",
              static_cast<long long>(T));
  std::printf("%s\n", ProducerConsumerAsl);

  VerifyOptions Options;
  Options.Source = ProducerConsumerAsl;
  Options.Consts = {{"T", T}};
  Options.Eliminate = {"Producer", "Consumer"};
  Options.Order = VerifyOptions::RankOrder::ArgMajor;
  Options.Abstractions = {{"Consumer", "ConsumerAbs"}};

  VerifyResult Result = verifyModule(Options);
  std::printf("%s", Result.Summary.c_str());
  if (!Result.Accepted)
    return 1;

  std::printf("\nThe FIFO-order assertion and the final counters were "
              "verified by sequential reasoning over the alternating "
              "schedule Producer(1); Consumer(1); ...; Producer(%lld); "
              "Consumer(%lld).\n",
              static_cast<long long>(T), static_cast<long long>(T));
  return 0;
}
