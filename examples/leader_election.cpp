//===- examples/leader_election.cpp - Chang-Roberts on a ring ------------------------===//
///
/// \file
/// Verifies the Chang-Roberts leader election protocol for every ID
/// placement on the ring: builds the protocol with messages as pending
/// asyncs, derives the sequentialization in which nodes run to completion
/// starting from the successor of the maximum-ID node (§5.3), applies IS
/// twice (Init, then Handle), and checks the unique-leader property on
/// every resulting schedule.
///
/// Run: ./leader_election [nodes]
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/ChangRoberts.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

using namespace isq;
using namespace isq::protocols;

int main(int argc, char **argv) {
  int64_t N = argc > 1 ? std::atoll(argv[1]) : 3;
  if (N < 2 || N > 5) {
    std::fprintf(stderr, "usage: leader_election [nodes 2-5]\n");
    return 1;
  }
  std::printf("== Chang-Roberts leader election, ring of %lld nodes ==\n\n",
              static_cast<long long>(N));

  std::vector<int64_t> Ids(static_cast<size_t>(N));
  std::iota(Ids.begin(), Ids.end(), 1);

  size_t Checked = 0, Accepted = 0;
  Timer T;
  do {
    ChangRobertsParams Params{N, Ids};
    Store Init = makeChangRobertsInitialStore(Params);
    ++Checked;

    // Two IS applications: eliminate the Init fan-out, then the handlers.
    ISApplication Stage1 = makeChangRobertsStage1IS(Params);
    ISCheckReport R1 = checkIS(Stage1, {{Init, {}}});
    ISApplication Stage2 =
        makeChangRobertsStage2IS(Params, applyIS(Stage1));
    ISCheckReport R2 = checkIS(Stage2, {{Init, {}}});

    ExploreResult R =
        explore(applyIS(Stage2), initialConfiguration(Init));
    bool UniqueLeader = !R.TerminalStores.empty();
    for (const Store &Final : R.TerminalStores)
      UniqueLeader =
          UniqueLeader && checkChangRobertsSpec(Final, Params);

    bool Ok = R1.ok() && R2.ok() && UniqueLeader;
    Accepted += Ok;
    std::printf("ids [");
    for (size_t I = 0; I < Ids.size(); ++I)
      std::printf("%s%lld", I ? " " : "",
                  static_cast<long long>(Ids[I]));
    std::printf("]: IS %s/%s, leader = node %lld (max ID) %s\n",
                R1.ok() ? "ok" : "REJ", R2.ok() ? "ok" : "REJ",
                static_cast<long long>(Params.maxNode()),
                UniqueLeader ? "unique" : "NOT UNIQUE");
  } while (std::next_permutation(Ids.begin(), Ids.end()));

  std::printf("\n%zu/%zu ID placements verified (%.2fs)\n", Accepted,
              Checked, T.elapsed());
  return Accepted == Checked ? 0 : 1;
}
