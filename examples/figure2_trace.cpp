//===- examples/figure2_trace.cpp - The Fig. 2 induction argument, live -------------===//
///
/// \file
/// Replays the paper's Fig. 2 mechanically. We build a five-action program
/// shaped like the figure — M creates PAs to A and B while X and Y are
/// also pending — run a concurrent execution M; X; B; Y; A, and ask the
/// execution rewriter (the Lemma 4.2/4.3 soundness construction) to turn
/// it into a sequential M'-execution, printing every intermediate stage:
/// the commutes of the chosen PA to the front and its absorption into the
/// invariant.
///
/// Run: ./figure2_trace
///
//===----------------------------------------------------------------------===//

#include "explorer/Trace.h"
#include "is/ISCheck.h"
#include "is/Rewriter.h"
#include "is/Sequentialize.h"
#include "protocols/ScheduleInvariant.h"

#include <cstdio>

using namespace isq;

namespace {

Value iv(int64_t N) { return Value::integer(N); }

/// A counter-increment action named \p Name that bumps variable \p Var and
/// creates \p Created.
Action bump(const std::string &Name, const std::string &Var,
            std::vector<PendingAsync> Created = {}) {
  return Action(Name, 0, Action::alwaysEnabled(),
                [Var, Created](const Store &G, const std::vector<Value> &) {
                  Store NG =
                      G.set(Var, iv(G.get(Var).getInt() + 1));
                  return std::vector<Transition>{
                      Transition(std::move(NG), Created)};
                });
}

} // namespace

int main() {
  // The Fig. 2 cast: M creates A and B; X and Y are independent bystander
  // tasks spawned by Main alongside M. Every action bumps its own counter
  // so each schedule's effect is visible in the store.
  Program P;
  P.addAction(Action("Main", 0, Action::alwaysEnabled(),
                     [](const Store &G, const std::vector<Value> &) {
                       Transition T(G);
                       T.Created.emplace_back("M", std::vector<Value>{});
                       T.Created.emplace_back("X", std::vector<Value>{});
                       T.Created.emplace_back("Y", std::vector<Value>{});
                       return std::vector<Transition>{std::move(T)};
                     }));
  P.addAction(bump("M", "m",
                   {PendingAsync("A", {}), PendingAsync("B", {})}));
  P.addAction(bump("A", "a"));
  P.addAction(bump("B", "b"));
  P.addAction(bump("X", "x"));
  P.addAction(bump("Y", "y"));

  Store Init = Store::make({{Symbol::get("m"), iv(0)},
                            {Symbol::get("a"), iv(0)},
                            {Symbol::get("b"), iv(0)},
                            {Symbol::get("x"), iv(0)},
                            {Symbol::get("y"), iv(0)}});

  // IS context: rewrite M, eliminating E = {A, B} with A before B — the
  // order Fig. 2 uses.
  protocols::RankFn Rank =
      [](const PendingAsync &PA) -> std::optional<std::vector<int64_t>> {
    if (PA.Action == Symbol::get("A"))
      return std::vector<int64_t>{0};
    if (PA.Action == Symbol::get("B"))
      return std::vector<int64_t>{1};
    return std::nullopt;
  };
  ISApplication App;
  App.P = P;
  App.M = Symbol::get("M");
  App.E = {Symbol::get("A"), Symbol::get("B")};
  App.Invariant =
      protocols::makeScheduleInvariant("Fig2Inv", P, App.M, Rank);
  App.Choice = protocols::chooseMinRank(Rank);
  App.WfMeasure = Measure::pendingAsyncCount();

  ISCheckReport Report = checkIS(App, {{Init, {}}});
  std::printf("IS conditions for M with E = {A, B}:\n%s\n",
              Report.str().c_str());
  if (!Report.ok())
    return 1;

  // The concurrent execution of Fig. 2-①: M; X; B; Y; A, starting from
  // the configuration Main left behind (M, X, Y pending).
  Configuration C = initialConfiguration(Init);
  C = stepPendingAsync(P, C, PendingAsync("Main", {})).at(0);
  Execution Pi;
  Pi.Initial = C;
  for (const char *Name : {"M", "X", "B", "Y", "A"}) {
    PendingAsync PA(Name, {});
    Configuration Next = stepPendingAsync(P, C, PA).at(0);
    Pi.Steps.push_back({PA, Next});
    C = Next;
  }

  std::printf("concurrent execution (Fig. 2-①):  %s\n",
              Pi.scheduleStr().c_str());

  RewriteResult R = rewriteExecution(App, Pi, /*LogStages=*/true);
  if (!R.Ok) {
    std::printf("rewrite failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("\nrewriting stages (② through ⑤ of Fig. 2):\n");
  for (const std::string &Stage : R.Stages)
    std::printf("  %s\n", Stage.c_str());
  std::printf("\nsequential execution (Fig. 2-⑥): %s\n",
              R.Rewritten.scheduleStr().c_str());
  std::printf("commutes: %zu, absorptions: %zu\n", R.NumCommutes,
              R.NumAbsorptions);
  std::printf("final configuration preserved: %s\n",
              R.Rewritten.finalConfiguration() == Pi.finalConfiguration()
                  ? "yes"
                  : "NO");
  return 0;
}
