//===- examples/quickstart.cpp - Library tour on the Fig. 1 protocol -------------===//
///
/// \file
/// A guided tour of the library on the paper's running example (Fig. 1):
/// build the broadcast consensus protocol, watch its interleaving
/// explosion, apply the Inductive Sequentialization proof rule, and check
/// the agreement property on the sequential reduction.
///
/// Run: ./quickstart [num_nodes]
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/Broadcast.h"
#include "refine/Refinement.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace isq;
using namespace isq::protocols;

int main(int argc, char **argv) {
  int64_t N = argc > 1 ? std::atoll(argv[1]) : 3;
  if (N < 1 || N > 6) {
    std::fprintf(stderr, "num_nodes must be in [1, 6]\n");
    return 1;
  }
  BroadcastParams Params{N, {}};

  std::printf("== Broadcast consensus (Fig. 1), n = %lld ==\n\n",
              static_cast<long long>(N));

  // 1. The asynchronous program P: Main spawns n Broadcast and n Collect
  //    tasks communicating over bag channels.
  Program P = makeBroadcastProgram(Params);
  Store Init = makeBroadcastInitialStore(Params);
  Timer T1;
  ExploreResult Concurrent = explore(P, initialConfiguration(Init));
  std::printf("P  (asynchronous): %zu reachable configurations, "
              "%zu transitions (%.3fs)\n",
              Concurrent.Stats.NumConfigurations,
              Concurrent.Stats.NumTransitions, T1.elapsed());

  // 2. The IS application of Example 4.1: invariant Inv (Fig. 1-⑤),
  //    abstraction CollectAbs (Fig. 1-④), smallest-index choice function,
  //    |Ω| measure.
  ISApplication App = makeBroadcastIS(Params);
  Timer T2;
  ISCheckReport Report = checkIS(App, {{Init, {}}});
  std::printf("\nIS proof rule: %zu verification obligations (%.3fs)\n",
              Report.totalObligations(), T2.elapsed());
  std::printf("%s\n", Report.str().c_str());
  if (!Report.ok())
    return 1;

  // 3. The sequential reduction P' = P[Main -> Main'].
  Program PPrime = applyIS(App);
  Timer T3;
  ExploreResult Sequential = explore(PPrime, initialConfiguration(Init));
  std::printf("P' (sequentialized): %zu reachable configurations (%.3fs)\n",
              Sequential.Stats.NumConfigurations, T3.elapsed());

  // 4. The agreement property (1) now needs only sequential reasoning.
  bool Agreement = true;
  for (const Store &Final : Sequential.TerminalStores)
    Agreement = Agreement && checkBroadcastSpec(Final, Params);
  std::printf("\nagreement on P': %s\n", Agreement ? "HOLDS" : "VIOLATED");

  // 5. Cross-check the rule's formal guarantee P ≼ P' on this instance.
  CheckResult Refines = checkProgramRefinement(P, PPrime, {{Init, {}}});
  std::printf("P ≼ P' (empirical): %s\n", Refines.str().c_str());

  return Agreement && Refines.ok() ? 0 : 1;
}
