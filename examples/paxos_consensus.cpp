//===- examples/paxos_consensus.cpp - Verifying Paxos with IS ------------------------===//
///
/// \file
/// The paper's flagship case study (§5.2) as a library walk-through: build
/// single-decree Paxos over unreliable rounds, show that overlapping
/// rounds really interleave (and that later rounds adopt earlier
/// decisions), run the single IS application of Fig. 4(c), and check the
/// consensus specification Paxos' on the sequential reduction.
///
/// Run: ./paxos_consensus [rounds] [nodes]
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/Paxos.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace isq;
using namespace isq::protocols;

int main(int argc, char **argv) {
  PaxosParams Params;
  Params.NumRounds = argc > 1 ? std::atoll(argv[1]) : 2;
  Params.NumNodes = argc > 2 ? std::atoll(argv[2]) : 3;
  if (Params.NumRounds < 1 || Params.NumRounds > 3 ||
      Params.NumNodes < 2 || Params.NumNodes > 5) {
    std::fprintf(stderr, "usage: paxos_consensus [rounds 1-3] [nodes 2-5]\n");
    return 1;
  }
  std::printf("== Single-decree Paxos: %lld rounds, %lld acceptors ==\n\n",
              static_cast<long long>(Params.NumRounds),
              static_cast<long long>(Params.NumNodes));

  Program P = makePaxosProgram(Params);
  Store Init = makePaxosInitialStore(Params);

  // 1. The asynchronous protocol: rounds overlap, messages drop.
  Timer T1;
  ExploreResult R = explore(P, initialConfiguration(Init));
  std::printf("P: %zu configurations, %zu outcomes (%.2fs)\n",
              R.Stats.NumConfigurations, R.TerminalStores.size(),
              T1.elapsed());
  size_t Decided = 0, AgreementViolations = 0;
  for (const Store &Final : R.TerminalStores) {
    if (paxosDecided(Final))
      ++Decided;
    if (!checkPaxosSpec(Final, Params))
      ++AgreementViolations;
  }
  std::printf("   outcomes with a decision: %zu, agreement violations: "
              "%zu\n\n",
              Decided, AgreementViolations);

  // 2. The IS application of Fig. 4(c): round-by-round sequentialization
  //    with the lower-round-quiescence abstractions.
  ISApplication App = makePaxosIS(Params);
  Timer T2;
  ISCheckReport Report = checkIS(App, {{Init, {}}});
  std::printf("IS proof rule (%zu obligations, %.2fs):\n%s\n",
              Report.totalObligations(), T2.elapsed(),
              Report.str().c_str());
  if (!Report.ok())
    return 1;

  // 3. Paxos' — one atomic action; consensus now follows by sequential
  //    reasoning over one round at a time.
  Program PPrime = applyIS(App);
  ExploreResult RS = explore(PPrime, initialConfiguration(Init));
  bool Safe = true;
  for (const Store &Final : RS.TerminalStores)
    Safe = Safe && checkPaxosSpec(Final, Params);
  std::printf("Paxos': %zu configurations, %zu outcomes — consensus %s\n",
              RS.Stats.NumConfigurations, RS.TerminalStores.size(),
              Safe ? "HOLDS" : "VIOLATED");
  return Safe ? 0 : 1;
}
