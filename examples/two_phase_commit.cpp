//===- examples/two_phase_commit.cpp - Iterated IS on optimized 2PC ------------------===//
///
/// \file
/// Derives the sequential reduction of the optimized two-phase commit
/// protocol (early abort; decisions that overtake vote requests) through
/// the paper's chain of four IS applications, printing what each stage
/// eliminates and how the pool of concurrent actions shrinks. Finishes by
/// checking agreement and commit-validity on the fully sequentialized
/// program and cross-checking the refinement guarantee.
///
/// Run: ./two_phase_commit [participants]
///
//===----------------------------------------------------------------------===//

#include "explorer/Explorer.h"
#include "is/ISCheck.h"
#include "is/Sequentialize.h"
#include "protocols/TwoPhaseCommit.h"
#include "refine/Refinement.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace isq;
using namespace isq::protocols;

int main(int argc, char **argv) {
  TwoPhaseCommitParams Params;
  Params.NumParticipants = argc > 1 ? std::atoll(argv[1]) : 3;
  if (Params.NumParticipants < 1 || Params.NumParticipants > 4) {
    std::fprintf(stderr, "usage: two_phase_commit [participants 1-4]\n");
    return 1;
  }
  std::printf("== Two-phase commit with early abort, %lld participants ==\n\n",
              static_cast<long long>(Params.NumParticipants));

  Store Init = makeTwoPhaseCommitInitialStore(Params);
  Program Original = makeTwoPhaseCommitProgram(Params);

  ExploreResult R0 = explore(Original, initialConfiguration(Init));
  std::printf("asynchronous P: %zu configurations, %zu outcomes\n\n",
              R0.Stats.NumConfigurations, R0.TerminalStores.size());

  static const char *StageNames[kTwoPhaseCommitStages] = {
      "RequestVotes", "Vote", "Decide", "Finalize"};
  Program Current = Original;
  for (size_t Stage = 0; Stage < kTwoPhaseCommitStages; ++Stage) {
    ISApplication App = makeTwoPhaseCommitStageIS(Params, Stage, Current);
    Timer T;
    ISCheckReport Report = checkIS(App, {{Init, {}}});
    std::printf("IS stage %zu: eliminate %-12s %s (%zu obligations, "
                "%.3fs)\n",
                Stage + 1, StageNames[Stage],
                Report.ok() ? "ACCEPTED" : "REJECTED",
                Report.totalObligations(), T.elapsed());
    if (!Report.ok()) {
      std::printf("%s\n", Report.str().c_str());
      return 1;
    }
    Current = applyIS(App);
    ExploreResult RS = explore(Current, initialConfiguration(Init));
    std::printf("           remaining configurations: %zu\n",
                RS.Stats.NumConfigurations);
  }

  ExploreResult RFinal = explore(Current, initialConfiguration(Init));
  bool Ok = true;
  for (const Store &Final : RFinal.TerminalStores)
    Ok = Ok && checkTwoPhaseCommitSpec(Final, Params);
  std::printf("\nagreement + commit-validity on the sequential reduction: "
              "%s\n",
              Ok ? "HOLD" : "VIOLATED");

  CheckResult Refines =
      checkProgramRefinement(Original, Current, {{Init, {}}});
  std::printf("P ≼ P'''' (empirical): %s\n", Refines.str().c_str());
  return Ok && Refines.ok() ? 0 : 1;
}
