// Chang-Roberts leader election on a unidirectional ring (§5.3 of
// "Inductive Sequentialization of Asynchronous Programs", PLDI 2020).
// Every node sends its ID to its successor; a node forwards IDs greater
// than its own, declares itself leader when its own ID comes back, and
// drops the rest. With the identity assignment id[i] = i (imported from
// lib/ring.asl) the unique winner is node n — asserted in place where
// the leader flag is set.
//
// ASL port of src/protocols/ChangRoberts.cpp (the one-shot IS that
// eliminates Init and Handle together), and the shipped example of the
// module system: the ring declarations are imported, not inlined.
//
// `--weight Init=2` makes the cooperation measure strict: Init(n) spawns
// Handle(1, n), which runs *earlier* in the schedule rank, so only the
// weighted-count component can decrease there (2 consumed, 1 created).
// Every Handle either forwards strictly up-ring (i < n, since node n
// never forwards an ID greater than its own maximal one) or spawns
// nothing.
//
// Verify with:
//   isq-verify chang_roberts.asl --param n=3 --eliminate Init,Handle \
//              --weight Init=2 --arg-major

import "lib/ring.asl";

action Main() {
  for i in 1 .. n {
    async Init(i);
  }
}

// Init(i): node i starts the election by sending its ID to its successor.
action Init(i: int) {
  async Handle(i % n + 1, id[i]);
}

// Handle(i, v): node i processes ID v — forward if greater than its own,
// declare leadership if equal, drop otherwise.
action Handle(i: int, v: int) {
  if v > id[i] {
    async Handle(i % n + 1, v);
  } else {
    if v == id[i] {
      leader[i] := true;
      // Identity IDs: only the maximum node may win the election.
      assert i == n;
    }
  }
}
