// Broadcast consensus (Fig. 1 of "Inductive Sequentialization of
// Asynchronous Programs", PLDI 2020), with its proof artifacts.
//
// Verify with:
//   isq-verify broadcast.asl --const n=3 --eliminate Broadcast,Collect \
//              --abstract Collect=CollectAbs

const n: int;

// No `symmetric` declaration: the initializer value[i] = i pins node
// identities (permuting nodes changes the store), so the initial store is
// not permutation-invariant and symmetry reduction would be unsound here.
// The compiler rejects a declaration whose initial store breaks it.
var value: map<int, int> := map i in 1 .. n : i;
var decision: map<int, option<int>> := map i in 1 .. n : none;
var CH: map<int, bag<int>> := map i in 1 .. n : {};

action Main() {
  for i in 1 .. n {
    async Broadcast(i);
    async Collect(i);
  }
}

// Atomically send value[i] to every node.
action Broadcast(i: int) {
  for j in 1 .. n {
    CH[j] := insert(CH[j], value[i]);
  }
}

// Atomically receive n values and decide their maximum.
action Collect(i: int) {
  await size(CH[i]) >= n;
  choose vs in sub_bags(CH[i], n);
  CH[i] := diff(CH[i], vs);
  decision[i] := some(max(vs));
}

// Fig. 1-4: the left-mover abstraction. Its gate asserts the facts that
// hold in the sequential context — no Broadcast still pending and a full
// channel — which makes it non-blocking and a left mover.
action CollectAbs(i: int) {
  assert pending(Broadcast) == 0;
  assert size(CH[i]) >= n;
  await size(CH[i]) >= n;
  choose vs in sub_bags(CH[i], n);
  CH[i] := diff(CH[i], vs);
  decision[i] := some(max(vs));
}
