// Single-decree Paxos (§5.2, Fig. 4 of "Inductive Sequentialization of
// Asynchronous Programs", PLDI 2020), in ASL, with the Fig. 4(c)-style
// abstractions whose gates assert lower-round quiescence through the
// pending-async mirror.
//
// R rounds over N acceptors; round r proposes its own value r unless a
// quorum reveals an earlier vote. Message loss and lateness are modeled
// by nondeterministic drops (the `if (*)` of Fig. 4(b)). Safety: no two
// rounds decide different values.
//
// Verify with:
//   isq-verify paxos.asl --param R=2 --param N=2 --arg-major \
//       --eliminate StartRound,Join,Propose,Vote,Conclude \
//       --abstract Join=JoinAbs --abstract Propose=ProposeAbs \
//       --abstract Vote=VoteAbs --abstract Conclude=ConcludeAbs \
//       --weight StartRound=9 --weight Propose=5 --weight Conclude=2
//
// Cooperation weights must dominate the fan-out: Propose > N + Conclude
// and StartRound > N + Propose (for N=3 use StartRound=11, Propose=6).
// The (CO) condition rejects inconsistent weights with a concrete
// counterexample.

// R and N are parameters with defaults: one paxos.asl serves every
// instance size; `--param R=.. --param N=..` overrides at the CLI or in
// a serve manifest.
param R: int := 2;
param N: int := 2;

// Acceptors are interchangeable: every action treats node IDs uniformly
// (quorums are counted, never picked by identity), so the engine explores
// the quotient under node permutations. Rounds and values stay concrete
// (round r proposes its own value r).
symmetric node: 1 .. N;

var coin: set<bool> := insert(insert({}, true), false);
var lastJoined: map<node, int> := map nd in 1 .. N : 0;
var joinedNodes: map<int, set<node>> := map r in 1 .. R : {};
var voteValue: map<int, option<int>> := map r in 1 .. R : none;
var voteNodes: map<int, set<node>> := map r in 1 .. R : {};
var decision: map<int, option<int>> := map r in 1 .. R : none;
var propv: int := 0;   // proposer scratch; reset before Propose completes

action Main() {
  for r in 1 .. R {
    async StartRound(r);
  }
}

action StartRound(r: int) {
  for nd in 1 .. N {
    async Join(r, nd);
  }
  async Propose(r);
}

// Acceptor nd promises round r unless it already heard a higher one; the
// message may be dropped.
action Join(r: int, nd: node) {
  choose deliver in coin;
  if deliver && lastJoined[nd] < r {
    lastJoined[nd] := r;
    joinedNodes[r] := insert(joinedNodes[r], nd);
  }
}

// With a join quorum, propose the value of the highest earlier round some
// quorum member voted in (or the round's own value); the round may fail.
action Propose(r: int) {
  assert !is_some(voteValue[r]);
  choose act in coin;
  if act {
    choose quorum in subsets(joinedNodes[r]);
    if 2 * size(quorum) > N {
      propv := r;
      for p in 1 .. r - 1 {
        if is_some(voteValue[p]) {
          for u in 1 .. N {
            if contains(quorum, u) && contains(voteNodes[p], u) {
              propv := the(voteValue[p]);
            }
          }
        }
      }
      voteValue[r] := some(propv);
      for nd in 1 .. N {
        async Vote(r, nd, propv);
      }
      async Conclude(r, propv);
      propv := 0;
    }
  }
}

// Acceptor nd accepts the proposal unless it promised a higher round.
action Vote(r: int, nd: node, v: int) {
  choose deliver in coin;
  if deliver && lastJoined[nd] <= r && is_some(voteValue[r]) {
    lastJoined[nd] := r;
    voteNodes[r] := insert(voteNodes[r], nd);
  }
}

// Decide v once a vote quorum materialized; may also fail.
action Conclude(r: int, v: int) {
  choose deliver in coin;
  if deliver && is_some(voteValue[r]) && the(voteValue[r]) == v {
    if 2 * size(voteNodes[r]) > N {
      decision[r] := some(v);
    }
  }
}

// --- Fig. 4(c): left-mover abstractions. Gates assert that nothing at
// lower rounds (and nothing same-round that this action races with) is
// still pending — facts that hold along the round-by-round schedule.

action JoinAbs(r: int, nd: node) {
  assert pending_le(StartRound, r - 1) == 0;
  assert pending_le(Propose, r - 1) == 0;
  assert pending_le_at(Join, r - 1, nd) == 0;
  assert pending_le_at(Vote, r - 1, nd) == 0;
  choose deliver in coin;
  if deliver && lastJoined[nd] < r {
    lastJoined[nd] := r;
    joinedNodes[r] := insert(joinedNodes[r], nd);
  }
}

action ProposeAbs(r: int) {
  assert pending_le(StartRound, r) == 0;
  assert pending_le(Join, r) == 0;
  assert !is_some(voteValue[r]);
  choose act in coin;
  if act {
    choose quorum in subsets(joinedNodes[r]);
    if 2 * size(quorum) > N {
      propv := r;
      for p in 1 .. r - 1 {
        if is_some(voteValue[p]) {
          for u in 1 .. N {
            if contains(quorum, u) && contains(voteNodes[p], u) {
              propv := the(voteValue[p]);
            }
          }
        }
      }
      voteValue[r] := some(propv);
      for nd in 1 .. N {
        async Vote(r, nd, propv);
      }
      async Conclude(r, propv);
      propv := 0;
    }
  }
}

action VoteAbs(r: int, nd: node, v: int) {
  assert pending_le(StartRound, r) == 0;
  assert pending_le(Propose, r - 1) == 0;
  assert pending_le_at(Join, r, nd) == 0;
  assert pending_le_at(Vote, r - 1, nd) == 0;
  choose deliver in coin;
  if deliver && lastJoined[nd] <= r && is_some(voteValue[r]) {
    lastJoined[nd] := r;
    voteNodes[r] := insert(voteNodes[r], nd);
  }
}

action ConcludeAbs(r: int, v: int) {
  assert pending_le(Vote, r) == pending_le(Vote, r - 1);
  choose deliver in coin;
  if deliver && is_some(voteValue[r]) && the(voteValue[r]) == v {
    if 2 * size(voteNodes[r]) > N {
      decision[r] := some(v);
    }
  }
}
