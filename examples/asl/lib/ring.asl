// Shared ring-network declarations: the ring size, the fixed ID
// assignment (identity: id[i] = i, so node n holds the maximum ID), and
// the per-node leader flag. Imported by chang_roberts.asl — declarations
// here precede the importer's, which may reference them freely.
//
// Not a standalone protocol: there is no Main action, so this file only
// makes sense as an import (which is why it lives under lib/, outside the
// examples/asl/*.asl globs that verify each shipped example).

// Ring size; `--param n=..` overrides the default per instance.
param n: int := 3;

var id: map<int, int> := map i in 1 .. n : i;
var leader: map<int, bool> := map i in 1 .. n : false;
