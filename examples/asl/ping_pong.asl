// Ping-Pong (§5.3 of "Inductive Sequentialization of Asynchronous
// Programs", PLDI 2020): Ping sends increasing numbers, Pong acknowledges
// each one. Assertions check that Pong sees increasing numbers and Ping
// sees correct acknowledgments.
//
// Verify with:
//   isq-verify ping_pong.asl --const T=3 --eliminate Ping,Pong \
//              --abstract Ping=PingAbs --abstract Pong=PongAbs --arg-major

const T: int;

var chPing: bag<int> := {};   // acknowledgments, Pong -> Ping
var chPong: bag<int> := {};   // numbers, Ping -> Pong
var done: int := 0;

action Main() {
  async Ping(1);
  async Pong(1);
}

action Ping(k: int) {
  if k > 1 {
    await size(chPing) >= 1;
    choose a in chPing;
    chPing := erase(chPing, a);
    assert a == k - 1;          // correct acknowledgment
  }
  if k <= T {
    chPong := insert(chPong, k);
    async Ping(k + 1);
  } else {
    done := done + 1;
  }
}

action Pong(k: int) {
  await size(chPong) >= 1;
  choose v in chPong;
  chPong := erase(chPong, v);
  assert v == k;                // increasing numbers
  chPing := insert(chPing, k);
  if k < T {
    async Pong(k + 1);
  }
}

// Left-mover abstractions: gates assert message availability, which holds
// in the alternating sequential schedule.
action PingAbs(k: int) {
  assert k == 1 || size(chPing) >= 1;
  if k > 1 {
    await size(chPing) >= 1;
    choose a in chPing;
    chPing := erase(chPing, a);
    assert a == k - 1;
  }
  if k <= T {
    chPong := insert(chPong, k);
    async Ping(k + 1);
  } else {
    done := done + 1;
  }
}

action PongAbs(k: int) {
  assert size(chPong) >= 1;
  await size(chPong) >= 1;
  choose v in chPong;
  chPong := erase(chPong, v);
  assert v == k;
  chPing := insert(chPing, k);
  if k < T {
    async Pong(k + 1);
  }
}
