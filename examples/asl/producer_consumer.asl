// Producer-Consumer (§5.3 of "Inductive Sequentialization of Asynchronous
// Programs", PLDI 2020): the producer enqueues items 1..T and never
// blocks, so it can run arbitrarily far ahead; the consumer dequeues in
// FIFO order, blocking on an empty queue. The consumer's gate asserts the
// FIFO discipline: whenever the queue is non-empty, its front is exactly
// the item the consumer expects next.
//
// ASL port of src/protocols/ProducerConsumer.cpp; the differential test
// in tests/frontend_v2_test.cpp keeps the two in lockstep.
//
// Verify with:
//   isq-verify producer_consumer.asl --param T=3 \
//              --eliminate Producer,Consumer \
//              --abstract Consumer=ConsumerAbs --arg-major

// Number of items; `--param T=..` overrides the default per instance.
param T: int := 3;

var queue: seq<int> := [];
var produced: int := 0;
var consumed: int := 0;

action Main() {
  async Producer(1);
  async Consumer(1);
}

// Producer(k): enqueue k; continue while k < T. Never blocks — this is
// what lets the producer run arbitrarily far ahead of the consumer.
action Producer(k: int) {
  queue := push_back(queue, k);
  produced := k;
  if k < T {
    async Producer(k + 1);
  }
}

// Consumer(k): the gate asserts the FIFO order (front element, when
// present, is exactly k); the transitions block on an empty queue.
action Consumer(k: int) {
  assert size(queue) == 0 || front(queue) == k;
  await size(queue) >= 1;
  queue := pop_front(queue);
  consumed := k;
  if k < T {
    async Consumer(k + 1);
  }
}

// Producer is a left mover as-is: push-back commutes to the left of
// pop-front on the queues reachable here. Only Consumer needs an
// abstraction (non-blocking: the queue is non-empty with k in front in
// the sequential context).
action ConsumerAbs(k: int) {
  assert size(queue) >= 1 && front(queue) == k;
  await size(queue) >= 1;
  queue := pop_front(queue);
  consumed := k;
  if k < T {
    async Consumer(k + 1);
  }
}
