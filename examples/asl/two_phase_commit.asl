// Two-phase commit with early abort (§5.3 of "Inductive Sequentialization
// of Asynchronous Programs", PLDI 2020), in ASL.
//
// The coordinator broadcasts vote requests; participants vote yes or no;
// the coordinator commits on unanimous yes, or aborts as soon as ONE
// negative vote arrives — without waiting for the rest, whose votes stay
// in flight forever. Participants may finalize the decision before
// processing their own request.
//
// Verify with:
//   isq-verify two_phase_commit.asl --param n=3 \
//       --eliminate RequestVotes,Vote,Decide,Finalize \
//       --abstract Decide=DecideAbs \
//       --weight RequestVotes=8 --weight Decide=4

// The participant count is a parameter with a default; `--param n=..`
// overrides it per instance.
param n: int := 2;

// Participants are interchangeable: channels are addressed only by the
// participant's own ID and votes are counted, never inspected by
// identity, so the engine explores the quotient under permutations.
symmetric participant: 1 .. n;

var coin: set<bool> := insert(insert({}, true), false);
var reqCh: map<participant, bag<int>> := map i in 1 .. n : {};
var yesVotes: bag<participant> := {};
var noVotes: bag<participant> := {};
var decCh: map<participant, bag<bool>> := map i in 1 .. n : {};
var voted: map<participant, option<bool>> := map i in 1 .. n : none;
var decision: option<bool> := none;
var finalized: map<participant, option<bool>> := map i in 1 .. n : none;

action Main() {
  async RequestVotes();
}

action RequestVotes() {
  for i in 1 .. n {
    reqCh[i] := insert(reqCh[i], 1);
    async Vote(i);
  }
  async Decide();
}

action Vote(i: participant) {
  await size(reqCh[i]) >= 1;
  reqCh[i] := erase(reqCh[i], 1);
  choose v in coin;
  voted[i] := some(v);
  if v {
    yesVotes := insert(yesVotes, i);
  } else {
    noVotes := insert(noVotes, i);
  }
}

action Decide() {
  if size(noVotes) >= 1 {
    // Early abort: consume one negative vote and decide immediately; the
    // remaining votes are never read.
    choose p in noVotes;
    noVotes := erase(noVotes, p);
    decision := some(false);
    for i in 1 .. n {
      decCh[i] := insert(decCh[i], false);
      async Finalize(i);
    }
  } else {
    await size(yesVotes) == n;
    assert size(noVotes) == 0;
    decision := some(true);
    for i in 1 .. n {
      decCh[i] := insert(decCh[i], true);
      async Finalize(i);
    }
  }
}

action Finalize(i: participant) {
  await size(decCh[i]) >= 1;
  choose d in decCh[i];
  decCh[i] := erase(decCh[i], d);
  finalized[i] := some(d);
  // Agreement, checked in place: the finalized value is the decision.
  assert is_some(decision) && the(decision) == d;
}

// The left-mover abstraction for the coordinator's decision: in the
// sequential context all n votes have arrived, which removes both the
// blocking and the read-write conflict with in-flight votes.
action DecideAbs() {
  assert size(yesVotes) + size(noVotes) == n;
  if size(noVotes) >= 1 {
    choose p in noVotes;
    noVotes := erase(noVotes, p);
    decision := some(false);
    for i in 1 .. n {
      decCh[i] := insert(decCh[i], false);
      async Finalize(i);
    }
  } else {
    await size(yesVotes) == n;
    assert size(noVotes) == 0;
    decision := some(true);
    for i in 1 .. n {
      decCh[i] := insert(decCh[i], true);
      async Finalize(i);
    }
  }
}
