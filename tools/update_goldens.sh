#!/usr/bin/env bash
# Regenerates tests/golden/*.json from the current renderer output.
#
# The golden files pin the versioned JSON report schema (see
# src/driver/ReportRender.h). After an intentional schema change — bumping
# JsonSchemaVersion, adding fields — run this script, eyeball the diff, and
# commit the refreshed goldens together with the renderer change. Timing
# fields are scrubbed to 0 by the test harness, so the files are
# deterministic.
#
# Usage: tools/update_goldens.sh [BUILD_DIR]

set -euo pipefail

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake --build "$BUILD" -j --target cli_test

ISQ_UPDATE_GOLDEN=1 "$BUILD/tests/cli_test" \
  --gtest_filter='CliTest.Golden*'

# Show what changed; a clean tree means the goldens were already current.
git --no-pager diff --stat -- tests/golden || true
echo "goldens regenerated under tests/golden/"
