#!/usr/bin/env bash
# CI entry point: build and test the normal configuration, then the
# sanitized (address + undefined) configuration; verify every shipped
# example end-to-end in both report formats (with a JSON schema sanity
# check); smoke-run the benchmark binaries for one tiny iteration;
# smoke-test the verification service (isq-serve + isq-loadgen: verdict
# cache hit, schema sanity, bit-identity against one-shot isq-verify);
# finally run the threaded engine + obligation-scheduler + symmetry +
# serve + driver-re-entrancy tests under ThreadSanitizer, including the
# --no-symmetry differential. All stages must pass.
#
# Usage: tools/ci.sh [JOBS]

set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run_config() {
  local dir="$1"; shift
  echo "==== configure $dir ($*) ===="
  cmake -B "$dir" -S . "$@"
  echo "==== build $dir ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== test $dir ===="
  (cd "$dir" && ctest -j "$JOBS" --output-on-failure)
}

# Runs isq-verify over one example in text and JSON format; the example
# header documents its own invocation ("Verify with:"), so CI follows the
# same command users see, plus --threads 2 to exercise the parallel
# scheduler. The JSON report must parse and match the v1 schema.
verify_example() {
  local bin="$1" file="$2" flags
  flags=$(awk '
    /isq-verify/ { on = 1 }
    on {
      line = $0
      sub(/^\/\/ */, "", line); sub(/\\$/, "", line)
      printf "%s ", line
      if ($0 !~ /\\$/) exit
    }' "$file" | sed 's/^isq-verify  *[^ ]*\.asl //')
  echo "==== isq-verify $file ===="
  # shellcheck disable=SC2086
  "$bin" "$file" $flags --threads 2 >/dev/null
  # shellcheck disable=SC2086
  "$bin" "$file" $flags --threads 2 --format json |
    python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["schema_version"] == 2, doc["schema_version"]
assert doc["tool"] == "isq-verify"
assert doc["exit_code"] == 0 and doc["accepted"] is True
names = [c["name"] for c in doc["conditions"]]
assert names == ["side_conditions", "abstraction_refinement", "base_case",
                 "conclusion", "inductive_step", "left_movers",
                 "cooperation"], names
assert all(c["ok"] and c["failures"] == 0 for c in doc["conditions"])
assert all(c["obligations"] > 0 for c in doc["conditions"])
assert all("orbit_configs" in c and "orbit_states" in c
           for c in doc["conditions"])
assert doc["cross_check"]["ran"] and doc["cross_check"]["ok"]
assert doc["scheduler"]["threads"] == 2 and doc["scheduler"]["jobs"] > 0
for key in ("symmetry_reduced", "canon_calls", "canon_cache_hits",
            "orbit_states_represented"):
    assert key in doc["engine"], key
for key in ("engine", "diagnostics", "total_seconds"):
    assert key in doc, key
print("  json ok")
'
}

run_config build
run_config build-asan -DISQ_SANITIZE=ON

echo "==== verify shipped examples (text + json) ===="
for f in examples/asl/*.asl; do
  verify_example build/tools/isq-verify "$f"
done

echo "==== bench smoke: one tiny iteration per benchmark binary ===="
# Catches bit-rot in the benchmark code without paying for real timing
# runs: smallest instances only, with a near-zero minimum measuring time.
cmake --build build -j "$JOBS" --target bench_statespace bench_verify
build/bench/bench_statespace \
  --benchmark_filter='BM_Broadcast/2|BM_EngineTwoPhaseCommit/4/1|BM_SymmetryTwoPhaseCommit/4/1' \
  --benchmark_min_time=0.01 >/dev/null
build/bench/bench_verify \
  --benchmark_filter='BM_CheckerPaxos/2/1|BM_VerifySymmetryTwoPhaseCommit/3/1' \
  --benchmark_min_time=0.01 >/dev/null

echo "==== serve smoke: daemon + verdict cache + schema sanity ===="
cmake --build build -j "$JOBS" --target isq-serve isq-loadgen isq-verify
SERVE_TMP=$(mktemp -d)
SERVE_PID=""
cleanup_serve() {
  if [ -n "$SERVE_PID" ]; then kill "$SERVE_PID" 2>/dev/null || true; fi
  rm -rf "$SERVE_TMP"
}
trap cleanup_serve EXIT
build/tools/isq-serve --port-file "$SERVE_TMP/port" --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 50); do
  [ -s "$SERVE_TMP/port" ] && break
  sleep 0.1
done
[ -s "$SERVE_TMP/port" ] || { echo "isq-serve did not come up"; exit 1; }

# Submit the paxos example twice over one connection: the second pass
# must be served from the verdict cache, and all verdicts must agree
# after timing fields are scrubbed.
paxos_line=$(grep '^paxos' examples/asl/serve_manifest.txt)
echo "$ROOT/examples/asl/${paxos_line}" > "$SERVE_TMP/manifest.txt"
build/tools/isq-loadgen --port-file "$SERVE_TMP/port" \
  --manifest "$SERVE_TMP/manifest.txt" --clients 1 --repeats 2 \
  --check-identical --dump-dir "$SERVE_TMP" \
  --json-out "$SERVE_TMP/loadgen.json"

# The served verdict must be bit-identical (modulo timings) to a one-shot
# isq-verify run of the same job, and pass the schema sanity checks.
paxos_flags=${paxos_line#paxos.asl }
# shellcheck disable=SC2086
build/tools/isq-verify examples/asl/paxos.asl $paxos_flags \
  --format json > "$SERVE_TMP/oneshot.json"
python3 - "$SERVE_TMP" <<'EOF'
import json, re, sys
tmp = sys.argv[1]
report = json.load(open(tmp + "/loadgen.json"))
assert report["failures"] == 0, report
assert report["submissions"] == 2, report
assert report["cache_hits"] == 1 and report["cache_hit_rate"] == 0.5, report
assert report["non_zero_exits"] == 0, report
served = open(tmp + "/entry0.json").read()
oneshot = open(tmp + "/oneshot.json").read()
scrub = lambda s: re.sub(r'("[a-z_]*seconds":)[0-9.]+', r'\g<1>0', s)
assert scrub(served) == scrub(oneshot), "served verdict != one-shot isq-verify"
doc = json.loads(served)
assert doc["schema_version"] == 2 and doc["tool"] == "isq-verify"
assert doc["exit_code"] == 0 and doc["accepted"] is True
assert all(c["ok"] for c in doc["conditions"])
assert doc["cross_check"]["ran"] and doc["cross_check"]["ok"]
print("  serve smoke ok")
EOF

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

echo "==== TSan: threaded engine + scheduler + symmetry + serve ===="
cmake -B build-tsan -S . -DISQ_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target engine_test scheduler_test \
  symmetry_test cli_test serve_test reentrancy_test isq-verify
(cd build-tsan && ctest -j "$JOBS" --output-on-failure \
  -R 'Engine|Scheduler|Symmetry|Cli|Serve|VerdictCache|JobQueue|Reentrancy')
build-tsan/tools/isq-verify examples/asl/broadcast.asl --const n=3 \
  --eliminate Broadcast,Collect --abstract Collect=CollectAbs \
  --threads 4 >/dev/null
# Symmetry differential under TSan: the reduced and unreduced paths must
# both accept the symmetric module with the racy-memo canonicalizer active.
for sym_flag in "" "--no-symmetry"; do
  # shellcheck disable=SC2086
  build-tsan/tools/isq-verify examples/asl/two_phase_commit.asl \
    --const n=2 --eliminate RequestVotes,Vote,Decide,Finalize \
    --abstract Decide=DecideAbs --weight RequestVotes=8 --weight Decide=4 \
    --threads 4 $sym_flag >/dev/null
done

echo "==== CI OK ===="
