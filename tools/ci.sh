#!/usr/bin/env bash
# CI entry point: build and test the normal configuration, then the
# sanitized (address + undefined) configuration; verify every shipped
# example end-to-end in both report formats (with a JSON schema sanity
# check); finally run the threaded engine + obligation-scheduler tests
# under ThreadSanitizer. All stages must pass.
#
# Usage: tools/ci.sh [JOBS]

set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run_config() {
  local dir="$1"; shift
  echo "==== configure $dir ($*) ===="
  cmake -B "$dir" -S . "$@"
  echo "==== build $dir ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== test $dir ===="
  (cd "$dir" && ctest -j "$JOBS" --output-on-failure)
}

# Runs isq-verify over one example in text and JSON format; the example
# header documents its own invocation ("Verify with:"), so CI follows the
# same command users see, plus --threads 2 to exercise the parallel
# scheduler. The JSON report must parse and match the v1 schema.
verify_example() {
  local bin="$1" file="$2" flags
  flags=$(awk '
    /isq-verify/ { on = 1 }
    on {
      line = $0
      sub(/^\/\/ */, "", line); sub(/\\$/, "", line)
      printf "%s ", line
      if ($0 !~ /\\$/) exit
    }' "$file" | sed 's/^isq-verify  *[^ ]*\.asl //')
  echo "==== isq-verify $file ===="
  # shellcheck disable=SC2086
  "$bin" "$file" $flags --threads 2 >/dev/null
  # shellcheck disable=SC2086
  "$bin" "$file" $flags --threads 2 --format json |
    python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["schema_version"] == 1, doc["schema_version"]
assert doc["tool"] == "isq-verify"
assert doc["exit_code"] == 0 and doc["accepted"] is True
names = [c["name"] for c in doc["conditions"]]
assert names == ["side_conditions", "abstraction_refinement", "base_case",
                 "conclusion", "inductive_step", "left_movers",
                 "cooperation"], names
assert all(c["ok"] and c["failures"] == 0 for c in doc["conditions"])
assert all(c["obligations"] > 0 for c in doc["conditions"])
assert doc["cross_check"]["ran"] and doc["cross_check"]["ok"]
assert doc["scheduler"]["threads"] == 2 and doc["scheduler"]["jobs"] > 0
for key in ("engine", "diagnostics", "total_seconds"):
    assert key in doc, key
print("  json ok")
'
}

run_config build
run_config build-asan -DISQ_SANITIZE=ON

echo "==== verify shipped examples (text + json) ===="
for f in examples/asl/*.asl; do
  verify_example build/tools/isq-verify "$f"
done

echo "==== TSan: threaded engine + obligation scheduler ===="
cmake -B build-tsan -S . -DISQ_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target engine_test scheduler_test \
  cli_test isq-verify
(cd build-tsan && ctest -j "$JOBS" --output-on-failure \
  -R 'Engine|Scheduler|Cli')
build-tsan/tools/isq-verify examples/asl/broadcast.asl --const n=3 \
  --eliminate Broadcast,Collect --abstract Collect=CollectAbs \
  --threads 4 >/dev/null

echo "==== CI OK ===="
