#!/usr/bin/env bash
# CI entry point: build and test the normal configuration, then the
# sanitized (address + undefined) configuration; verify every shipped
# example end-to-end in both report formats (with a JSON schema sanity
# check); smoke-run the benchmark binaries for one tiny iteration;
# smoke-test the verification service (isq-serve + isq-loadgen: verdict
# cache hits across both manifest paxos instances, schema sanity,
# per-entry bit-identity against one-shot isq-verify); exercise the
# staged frontend under AddressSanitizer (golden diagnostics plus the
# v1/v2 differential over the whole example corpus); run the
# work-stealing vs level-sync engine differential over the same corpus
# (verdicts must be bit-identical after timing/steal-count scrubbing);
# run the incremental re-verification stage (cold run populating an
# on-disk obligation verdict cache, a one-action edit whose warm run
# must be bit-identical to the --engine incremental=false oracle with a
# nonzero hit rate, and a corrupted cache that must degrade to a cold
# run, never to different answers); run the tiered state-store spill
# stage (paxos under a deliberately tiny memory budget must spill to
# the cold tier and stay bit-identical to the unspilled oracle across
# thread counts, and a rerun over a stale spill directory from an
# "interrupted" run must succeed); finally run the threaded engine +
# obligation-scheduler + symmetry + serve + spill + driver-re-entrancy
# tests under ThreadSanitizer, including the --no-symmetry
# differential, a tiny-steal-chunk run that forces cross-worker
# stealing, a threaded warm run over a shared verdict cache, and a
# threaded spilling run. All stages must pass.
#
# Usage: tools/ci.sh [JOBS]

set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run_config() {
  local dir="$1"; shift
  echo "==== configure $dir ($*) ===="
  cmake -B "$dir" -S . "$@"
  echo "==== build $dir ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== test $dir ===="
  (cd "$dir" && ctest -j "$JOBS" --output-on-failure)
}

# Extracts the flags of an example's documented invocation (the
# multi-line "Verify with:" header), without the leading tool/file words.
example_flags() {
  awk '
    /isq-verify/ { on = 1 }
    on {
      line = $0
      sub(/^\/\/ */, "", line); sub(/\\$/, "", line)
      printf "%s ", line
      if ($0 !~ /\\$/) exit
    }' "$1" | sed 's/^isq-verify  *[^ ]*\.asl //'
}

# Runs isq-verify over one example in text and JSON format; the example
# header documents its own invocation ("Verify with:"), so CI follows the
# same command users see, plus --threads 2 to exercise the parallel
# scheduler. The JSON report must parse and match the versioned schema
# (v6: tiered state-store / spill observability).
verify_example() {
  local bin="$1" file="$2" flags
  flags=$(example_flags "$file")
  echo "==== isq-verify $file ===="
  # shellcheck disable=SC2086
  "$bin" "$file" $flags --threads 2 >/dev/null
  # shellcheck disable=SC2086
  "$bin" "$file" $flags --threads 2 --format json |
    python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["schema_version"] == 6, doc["schema_version"]
assert doc["tool"] == "isq-verify"
assert doc["exit_code"] == 0 and doc["accepted"] is True
assert doc["diagnostics"] == []
names = [c["name"] for c in doc["conditions"]]
assert names == ["side_conditions", "abstraction_refinement", "base_case",
                 "conclusion", "inductive_step", "left_movers",
                 "cooperation"], names
assert all(c["ok"] and c["failures"] == 0 for c in doc["conditions"])
assert all(c["obligations"] > 0 for c in doc["conditions"])
assert all("orbit_configs" in c and "orbit_states" in c
           for c in doc["conditions"])
assert doc["cross_check"]["ran"] and doc["cross_check"]["ok"]
assert doc["scheduler"]["threads"] == 2 and doc["scheduler"]["jobs"] > 0
for key in ("symmetry_reduced", "canon_calls", "canon_cache_hits",
            "orbit_states_represented", "work_stealing", "steal_chunk",
            "steals", "shards", "shard_occupancy", "compressed_bytes",
            "spill_enabled", "mem_budget", "bytes_hot", "bytes_cold",
            "blocks_evicted", "blocks_faulted", "fault_stall_ns"):
    assert key in doc["engine"], key
assert doc["engine"]["work_stealing"] is True
assert doc["engine"]["steal_chunk"] > 0
assert doc["engine"]["shards"] >= 1
assert doc["engine"]["spill_enabled"] is False  # spilling is opt-in
assert 1 <= doc["engine"]["shard_occupancy"] <= doc["engine"]["shards"]
ob = doc["obligations"]
for key in ("total", "cache_enabled", "cache_hits", "cache_misses",
            "disk_hits"):
    assert key in ob, key
assert ob["total"] > 0
assert ob["cache_enabled"] is True  # v2 frontend stamps fingerprints
assert ob["cache_hits"] + ob["cache_misses"] > 0
for key in ("engine", "diagnostics", "total_seconds"):
    assert key in doc, key
print("  json ok")
'
}

run_config build
run_config build-asan -DISQ_SANITIZE=ON

echo "==== verify shipped examples (text + json) ===="
for f in examples/asl/*.asl; do
  verify_example build/tools/isq-verify "$f"
done

echo "==== bench smoke: one tiny iteration per benchmark binary ===="
# Catches bit-rot in the benchmark code without paying for real timing
# runs: smallest instances only, with a near-zero minimum measuring time.
cmake --build build -j "$JOBS" --target bench_statespace bench_verify
build/bench/bench_statespace \
  --benchmark_filter='BM_Broadcast/2|BM_EngineTwoPhaseCommit/4/1|BM_SymmetryTwoPhaseCommit/4/1' \
  --benchmark_min_time=0.01 >/dev/null
build/bench/bench_verify \
  --benchmark_filter='BM_CheckerPaxos/2/1|BM_VerifySymmetryTwoPhaseCommit/3/1' \
  --benchmark_min_time=0.01 >/dev/null

echo "==== serve smoke: daemon + verdict cache + schema sanity ===="
cmake --build build -j "$JOBS" --target isq-serve isq-loadgen isq-verify
SERVE_TMP=$(mktemp -d)
SERVE_PID=""
cleanup_serve() {
  if [ -n "$SERVE_PID" ]; then kill "$SERVE_PID" 2>/dev/null || true; fi
  rm -rf "$SERVE_TMP"
}
trap cleanup_serve EXIT
build/tools/isq-serve --port-file "$SERVE_TMP/port" --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 50); do
  [ -s "$SERVE_TMP/port" ] && break
  sleep 0.1
done
[ -s "$SERVE_TMP/port" ] || { echo "isq-serve did not come up"; exit 1; }

# Submit both paxos instances from the manifest (the parametric
# paxos.asl at --param N=2 and N=3) twice each over one connection: the
# second pass of each must be served from the verdict cache, and every
# served verdict must agree with itself across repeats after timing
# fields are scrubbed.
grep '^paxos' examples/asl/serve_manifest.txt |
  sed "s|^|$ROOT/examples/asl/|" > "$SERVE_TMP/manifest.txt"
[ "$(wc -l < "$SERVE_TMP/manifest.txt")" -eq 2 ] ||
  { echo "expected two paxos manifest lines"; exit 1; }
build/tools/isq-loadgen --port-file "$SERVE_TMP/port" \
  --manifest "$SERVE_TMP/manifest.txt" --clients 1 --repeats 2 \
  --check-identical --dump-dir "$SERVE_TMP" \
  --json-out "$SERVE_TMP/loadgen.json"

# Each entry's served verdict must be bit-identical (modulo timings) to a
# one-shot isq-verify run of the same job, and pass the schema sanity
# checks.
entry=0
grep '^paxos' examples/asl/serve_manifest.txt | while IFS= read -r line; do
  flags=${line#paxos.asl }
  # shellcheck disable=SC2086
  build/tools/isq-verify examples/asl/paxos.asl $flags \
    --format json > "$SERVE_TMP/oneshot$entry.json"
  entry=$((entry + 1))
done
python3 - "$SERVE_TMP" <<'EOF'
import json, re, sys
tmp = sys.argv[1]
report = json.load(open(tmp + "/loadgen.json"))
assert report["failures"] == 0, report
assert report["submissions"] == 4, report
assert report["cache_hits"] == 2 and report["cache_hit_rate"] == 0.5, report
assert report["non_zero_exits"] == 0, report
# The summary must echo the resolved engine map (empty here: the
# manifest sets no --engine), or knob-sweep rows are indistinguishable.
assert "engine" in report, sorted(report)
# Obligation-cache telemetry is stats, not verdict: the daemon shares one
# process-wide obligation cache across requests, so its hit counters
# differ from a one-shot run's. Everything else must match exactly.
def scrub(s):
    s = re.sub(r'("[a-z_]*seconds":)[0-9.]+', r'\g<1>0', s)
    return re.sub(r'("(?:cache_hits|cache_misses|disk_hits)":)[0-9]+',
                  r'\g<1>0', s)
for entry in (0, 1):
    served = open(tmp + "/entry%d.json" % entry).read()
    oneshot = open(tmp + "/oneshot%d.json" % entry).read()
    assert scrub(served) == scrub(oneshot), \
        "entry %d: served verdict != one-shot isq-verify" % entry
    doc = json.loads(served)
    assert doc["schema_version"] == 6 and doc["tool"] == "isq-verify"
    assert doc["engine"]["work_stealing"] is True
    assert "shard_occupancy" in doc["engine"]
    assert doc["exit_code"] == 0 and doc["accepted"] is True
    assert doc["diagnostics"] == []
    assert all(c["ok"] for c in doc["conditions"])
    assert doc["cross_check"]["ran"] and doc["cross_check"]["ok"]
print("  serve smoke ok")
EOF

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

echo "==== frontend: golden diagnostics + v1/v2 differential (ASan) ===="
# The error corpus (tests/asl_errors/) through the sanitized binary's
# test runner: every diagnostic must carry a source location and match
# its golden rendering.
build-asan/tests/cli_test --gtest_filter='CliTest.GoldenDiag*'
# Differential oracle under ASan: every shipped example, with its
# documented flags, must produce bit-identical verdict JSON under the
# legacy v1 pipeline and the staged v2 pipeline (single-threaded, so all
# engine counters are deterministic).
for f in examples/asl/*.asl; do
  flags=$(example_flags "$f")
  for fe in v1 v2; do
    # shellcheck disable=SC2086
    build-asan/tools/isq-verify "$f" $flags --frontend "$fe" \
      --format json > "$SERVE_TMP/frontend-$fe.json"
  done
  scrub_json() { sed -E 's/("[a-z_]*seconds":)[0-9.]+/\10/g' "$1"; }
  if ! diff <(scrub_json "$SERVE_TMP/frontend-v1.json") \
            <(scrub_json "$SERVE_TMP/frontend-v2.json") >/dev/null; then
    echo "frontend differential mismatch: $f"; exit 1
  fi
  echo "  $f: v1 == v2"
done

echo "==== engine differential: work-stealing vs level-sync ===="
# The level-sync frontier is kept as a differential oracle for the
# work-stealing engine: over the whole example corpus, with each
# example's documented flags, the two modes must produce bit-identical
# verdict JSON once we scrub (a) timing fields, (b) the steal count
# (schedule-dependent when threaded), and (c) the engine-config echoes
# that legitimately differ between modes (work_stealing, steal_chunk).
# Everything else -- verdicts, obligation counts, interned stores/configs,
# frontier peak, shard occupancy -- must agree exactly.
scrub_engine() {
  sed -E -e 's/("[a-z_]*seconds":)[0-9.]+/\10/g' \
         -e 's/("steals":)[0-9]+/\10/g' \
         -e 's/("work_stealing":)(true|false)/\1X/g' \
         -e 's/("steal_chunk":)[0-9]+/\10/g' "$1"
}
for f in examples/asl/*.asl; do
  flags=$(example_flags "$f")
  for mode in "work-stealing=true,steal-chunk=8" "work-stealing=false"; do
    # shellcheck disable=SC2086
    build/tools/isq-verify "$f" $flags --threads 4 --engine "$mode" \
      --format json > "$SERVE_TMP/engine-${mode%%,*}.json"
  done
  if ! diff <(scrub_engine "$SERVE_TMP/engine-work-stealing=true.json") \
            <(scrub_engine "$SERVE_TMP/engine-work-stealing=false.json") \
            >/dev/null; then
    echo "engine differential mismatch: $f"; exit 1
  fi
  echo "  $f: work-stealing == level-sync"
done

echo "==== incremental re-verification: cache vs oracle ===="
# Cold run populating an on-disk obligation verdict cache, then a
# one-action edit (peeling the first iteration of Main's loop — a
# behavioral no-op the optimizer does NOT fold, so the action's
# fingerprint moves): the warm run must be bit-identical to the
# uncached --engine incremental=false oracle on the edited module, with
# a nonzero obligation hit rate. Then a deliberately corrupted cache
# must degrade to a cold run with the same verdict — a bad cache may
# cost time, never answers.
INC_TMP="$SERVE_TMP/incremental"
mkdir -p "$INC_TMP"
cp examples/asl/paxos.asl "$INC_TMP/paxos.asl"
paxos_flags=$(example_flags examples/asl/paxos.asl)
# shellcheck disable=SC2086
build/tools/isq-verify "$INC_TMP/paxos.asl" $paxos_flags \
  --engine cache-dir="$INC_TMP/cache" --format json \
  > "$INC_TMP/cold.json"
python3 - "$INC_TMP/paxos.asl" <<'EOF'
import sys
path = sys.argv[1]
src = open(path).read()
old = """action Main() {
  for r in 1 .. R {
    async StartRound(r);
  }
}"""
new = """action Main() {
  async StartRound(1);
  for r in 2 .. R {
    async StartRound(r);
  }
}"""
assert old in src
open(path, "w").write(src.replace(old, new, 1))
EOF
# shellcheck disable=SC2086
build/tools/isq-verify "$INC_TMP/paxos.asl" $paxos_flags \
  --engine cache-dir="$INC_TMP/cache" --format json \
  > "$INC_TMP/warm.json"
# shellcheck disable=SC2086
build/tools/isq-verify "$INC_TMP/paxos.asl" $paxos_flags \
  --engine incremental=false --format json > "$INC_TMP/oracle.json"
# Corrupt the cache image in place: flip bytes in the middle of the base.
python3 - "$INC_TMP/cache/obcache.bin" <<'EOF'
import os, sys
path = sys.argv[1]
size = os.path.getsize(path)
with open(path, "r+b") as f:
    f.seek(size // 2)
    f.write(bytes(0xA5 ^ (i & 0xFF) for i in range(256)))
    f.seek(0)
    f.write(b"XXXXXXXX")  # and the magic, so the whole base is rejected
EOF
# shellcheck disable=SC2086
build/tools/isq-verify "$INC_TMP/paxos.asl" $paxos_flags \
  --engine cache-dir="$INC_TMP/cache" --format json \
  > "$INC_TMP/corrupt.json"
python3 - "$INC_TMP" <<'EOF'
import json, re, sys
tmp = sys.argv[1]
# Cache telemetry and timings are stats, not verdict; everything else in
# the warm report must be byte-for-byte the uncached oracle's.
def scrub(s):
    s = re.sub(r'("[a-z_]*seconds":)[0-9.]+', r'\g<1>0', s)
    s = re.sub(r'("(?:cache_hits|cache_misses|disk_hits)":)[0-9]+',
               r'\g<1>0', s)
    return re.sub(r'("cache_enabled":)(?:true|false)', r'\g<1>X', s)
cold = open(tmp + "/cold.json").read()
warm = open(tmp + "/warm.json").read()
oracle = open(tmp + "/oracle.json").read()
corrupt = open(tmp + "/corrupt.json").read()
assert scrub(warm) == scrub(oracle), "warm run != incremental=false oracle"
assert scrub(corrupt) == scrub(oracle), "corrupted cache changed answers"
for name, doc in (("cold", json.loads(cold)), ("warm", json.loads(warm))):
    ob = doc["obligations"]
    assert doc["accepted"] is True, name
    assert ob["cache_enabled"] is True, name
warm_ob = json.loads(warm)["obligations"]
assert warm_ob["cache_hits"] > 0, warm_ob
assert warm_ob["disk_hits"] > 0, warm_ob
# The edit touched one action: the warm run must re-discharge a small
# fraction, not the universe (<30% is the acceptance bound; in practice
# the Main peel re-checks well under 1%).
miss_rate = warm_ob["cache_misses"] / (warm_ob["cache_hits"] +
                                       warm_ob["cache_misses"])
assert miss_rate < 0.30, miss_rate
# The corrupted base is rejected, so the run is (mostly) cold: the tiny
# journal from the warm run survives independently — by design, a valid
# journal outlives a dead base — but nearly everything re-discharges.
corrupt_ob = json.loads(corrupt)["obligations"]
assert corrupt_ob["cache_misses"] > corrupt_ob["cache_hits"], corrupt_ob
print("  incremental ok (warm miss rate %.4f)" % miss_rate)
EOF
# The corrupted-cache run must have healed the image: one more warm run
# should now hit the rewritten base.
# shellcheck disable=SC2086
build/tools/isq-verify "$INC_TMP/paxos.asl" $paxos_flags \
  --engine cache-dir="$INC_TMP/cache" --format json |
  python3 -c '
import json, sys
ob = json.load(sys.stdin)["obligations"]
assert ob["disk_hits"] > 0 and ob["cache_misses"] == 0, ob
print("  self-heal ok")
'

echo "==== tiered state store: spill vs hot-only oracle ===="
# The hot-only compact store is the differential oracle for the tiered
# store: paxos under a 64K memory budget (a small fraction of its
# ~400K compact footprint) must evict blocks to the mmap'd cold tier
# and still produce bit-identical verdict JSON, for every thread
# count, once we scrub (a) timing fields, (b) schedule-dependent
# telemetry (steals and the hit counters of the racy canonicalizer /
# hash-cons / transition memos, which vary run-to-run when threaded
# even without spilling), and (c) the engine-config echoes and spill
# counters that legitimately differ between the two modes. Verdicts,
# obligation counts, interned stores/configs/pa-sets, configurations,
# transitions, and frontier peak must agree exactly.
SPILL_TMP="$SERVE_TMP/spill"
mkdir -p "$SPILL_TMP"
# The N=2 instance from the example header is too small to seal
# eviction blocks; the manifest's N=3 instance interns thousands of
# stores/pa-sets per shard, so a 64K budget forces real spilling.
spill_flags=$(grep '^paxos.*N=3' examples/asl/serve_manifest.txt |
  sed 's/^paxos\.asl //')
scrub_spill() {
  sed -E -e 's/("[a-z_]*seconds":)[0-9.]+/\10/g' \
         -e 's/("(steals|canon_cache_hits)":)[0-9]+/\10/g' \
         -e 's/("(hash_cons_lookups|hash_cons_hits)":)[0-9]+/\10/g' \
         -e 's/("(transition_cache_lookups|transition_cache_hits)":)[0-9]+/\10/g' \
         -e 's/("spill_enabled":)(true|false)/\1X/g' \
         -e 's/("(mem_budget|bytes_hot|bytes_cold|blocks_evicted)":)[0-9]+/\10/g' \
         -e 's/("(blocks_faulted|fault_stall_ns)":)[0-9]+/\10/g' "$1"
}
for t in 1 4; do
  # shellcheck disable=SC2086
  build/tools/isq-verify examples/asl/paxos.asl $spill_flags \
    --threads "$t" --engine compress=true,shards=1 \
    --format json > "$SPILL_TMP/oracle$t.json"
  # shellcheck disable=SC2086
  build/tools/isq-verify examples/asl/paxos.asl $spill_flags \
    --threads "$t" --engine \
    "compress=true,shards=1,spill=true,spill-dir=$SPILL_TMP/run$t,mem-budget=64K" \
    --format json > "$SPILL_TMP/spill$t.json"
  if ! diff <(scrub_spill "$SPILL_TMP/oracle$t.json") \
            <(scrub_spill "$SPILL_TMP/spill$t.json") >/dev/null; then
    echo "spill differential mismatch at --threads $t"; exit 1
  fi
  python3 - "$SPILL_TMP/spill$t.json" <<'EOF'
import json, sys
eng = json.load(open(sys.argv[1]))["engine"]
# The budget is far below the compact footprint, so this run must have
# actually exercised the cold tier: real evictions, the hot tier held
# at (or under) the budget, and cold bytes carrying the spilled blocks.
assert eng["spill_enabled"] is True
assert eng["blocks_evicted"] > 0, eng
assert eng["bytes_cold"] > 0, eng
assert eng["bytes_hot"] <= eng["mem_budget"], eng
EOF
  echo "  paxos --threads $t: spill == hot-only oracle"
done
# Interrupted-run hygiene: a rerun pointed at a spill directory still
# holding segment files from a previous (killed) run must clean the
# stale segments at startup and succeed with the same answers.
mkdir -p "$SPILL_TMP/stale/arena-0" "$SPILL_TMP/stale/arena-3"
head -c 4096 /dev/zero > "$SPILL_TMP/stale/arena-0/seg-0.isqseg"
printf 'truncated-garbage' > "$SPILL_TMP/stale/arena-3/seg-7.isqseg"
# shellcheck disable=SC2086
build/tools/isq-verify examples/asl/paxos.asl $spill_flags \
  --threads 4 --engine \
  "compress=true,shards=1,spill=true,spill-dir=$SPILL_TMP/stale,mem-budget=64K" \
  --format json > "$SPILL_TMP/stale.json"
if ! diff <(scrub_spill "$SPILL_TMP/oracle4.json") \
          <(scrub_spill "$SPILL_TMP/stale.json") >/dev/null; then
  echo "spill rerun over stale directory changed answers"; exit 1
fi
echo "  stale spill-dir rerun ok"

echo "==== TSan: threaded engine + scheduler + symmetry + serve ===="
cmake -B build-tsan -S . -DISQ_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target engine_test scheduler_test \
  symmetry_test cli_test serve_test reentrancy_test spill_test isq-verify
(cd build-tsan && ctest -j "$JOBS" --output-on-failure \
  -R 'Engine|Scheduler|Symmetry|Cli|Serve|VerdictCache|JobQueue|Reentrancy|Spill|ColdStore')
build-tsan/tools/isq-verify examples/asl/broadcast.asl --const n=3 \
  --eliminate Broadcast,Collect --abstract Collect=CollectAbs \
  --threads 4 >/dev/null
# Force heavy cross-worker stealing under TSan: a tiny steal chunk makes
# every worker contend on every deque, so the work-stealing engine's
# synchronization (deque locks, chunk Done flags, seen-bit publication)
# is exercised far beyond what default chunking produces.
build-tsan/tools/isq-verify examples/asl/broadcast.asl --const n=3 \
  --eliminate Broadcast,Collect --abstract Collect=CollectAbs \
  --threads 4 --engine steal-chunk=4,shards=8 >/dev/null
# Obligation verdict cache under TSan: a cold threaded run racing
# inserts into the shared cache, then a warm threaded run racing lazy
# decodes out of the mmap'd image (serve_test separately covers many
# concurrent verifications over one process-wide cache).
for _ in 1 2; do
  build-tsan/tools/isq-verify examples/asl/broadcast.asl --const n=3 \
    --eliminate Broadcast,Collect --abstract Collect=CollectAbs \
    --threads 4 --engine cache-dir="$SERVE_TMP/tsan-cache" >/dev/null
done
# Tiered store under TSan: a threaded spilling run races readers
# pinning sealed blocks against the evictor draining them to the cold
# tier, and races decode-cache fills against cold-tier faults. The
# tiny budget forces continual eviction for the whole exploration.
# shellcheck disable=SC2086
build-tsan/tools/isq-verify examples/asl/paxos.asl $spill_flags \
  --threads 4 --engine \
  "compress=true,shards=1,spill=true,spill-dir=$SERVE_TMP/tsan-spill,mem-budget=64K" \
  >/dev/null
# Symmetry differential under TSan: the reduced and unreduced paths must
# both accept the symmetric module with the racy-memo canonicalizer active.
for sym_flag in "" "--no-symmetry"; do
  # shellcheck disable=SC2086
  build-tsan/tools/isq-verify examples/asl/two_phase_commit.asl \
    --const n=2 --eliminate RequestVotes,Vote,Decide,Finalize \
    --abstract Decide=DecideAbs --weight RequestVotes=8 --weight Decide=4 \
    --threads 4 $sym_flag >/dev/null
done

echo "==== CI OK ===="
