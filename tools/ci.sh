#!/usr/bin/env bash
# CI entry point: build and test the normal configuration, then the
# sanitized (address + undefined) configuration. Both must pass.
#
# Usage: tools/ci.sh [JOBS]
#
# A thread-sanitized configuration for the parallel explorer is available
# separately via -DISQ_SANITIZE=thread (slow; run locally when touching
# the engine):
#   cmake -B build-tsan -S . -DISQ_SANITIZE=thread
#   cmake --build build-tsan -j && (cd build-tsan && ctest -R Engine)

set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run_config() {
  local dir="$1"; shift
  echo "==== configure $dir ($*) ===="
  cmake -B "$dir" -S . "$@"
  echo "==== build $dir ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== test $dir ===="
  (cd "$dir" && ctest -j "$JOBS" --output-on-failure)
}

run_config build
run_config build-asan -DISQ_SANITIZE=ON

echo "==== CI OK ===="
