//===- tools/isq-serve.cpp - Verification-as-a-service daemon ------------------------===//
///
/// \file
/// The long-lived verification daemon: binds a loopback TCP port, accepts
/// verification jobs over the binary wire protocol (src/serve/Wire.h),
/// runs them through the VerifyDriver pipeline on a bounded worker pool
/// with an LRU verdict cache, and streams schema-versioned JSON verdicts
/// back. See README.md "Running as a service" for the protocol reference
/// and isq-loadgen for the matching client.
///
/// The daemon serves until SIGINT/SIGTERM, then shuts down gracefully
/// (running jobs finish, connections close). Exit codes: 0 clean
/// shutdown, 2 usage or bind error.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "engine/EngineConfig.h"

#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace isq;
using namespace isq::serve;

namespace {

std::atomic<bool> StopRequested{false};

void onSignal(int) { StopRequested = true; }

const char *usageText() {
  return "usage: isq-serve [options]\n"
         "\n"
         "Runs the verification service on 127.0.0.1 until SIGINT or\n"
         "SIGTERM. Clients submit ASL verification jobs over the binary\n"
         "wire protocol (see README.md) and receive schema-versioned\n"
         "JSON verdicts; repeated submissions are served from the\n"
         "verdict cache.\n"
         "\n"
         "options:\n"
         "  --port N        TCP port (default 0: pick an ephemeral port)\n"
         "  --port-file F   write the bound port number to file F\n"
         "  --workers N     verification worker threads (default 2)\n"
         "  --queue-cap N   job-queue capacity; submissions beyond it\n"
         "                  are answered REJECTED_BUSY (default 64)\n"
         "  --cache-cap N   verdict-cache entries, 0 disables (default 128)\n"
         "  --job-threads N engine/scheduler threads per job (default 1;\n"
         "                  verdicts are identical for any value)\n"
         "  --spill-dir D   enable the tiered state store for compact-mode\n"
         "                  jobs: each job spills into its own scratch\n"
         "                  subdirectory of D (removed when the job ends);\n"
         "                  requires --mem-budget\n"
         "  --mem-budget B  hot-tier byte budget per process; accepts K/M/G\n"
         "                  suffixes (e.g. 256M); requires --spill-dir\n"
         "  --help, -h      show this help\n"
         "\n"
         "exit codes:\n"
         "  0  clean shutdown on SIGINT/SIGTERM\n"
         "  2  usage or bind error\n";
}

template <typename T> bool parseNumber(const std::string &S, T &Out) {
  const char *First = S.data();
  const char *Last = S.data() + S.size();
  auto [Ptr, Ec] = std::from_chars(First, Last, Out);
  return Ec == std::errc() && Ptr == Last && !S.empty();
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  ServerOptions Opts;
  std::string PortFile;

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "--help" || Arg == "-h") {
      std::printf("%s", usageText());
      return 0;
    }
    auto NeedValue = [&](std::string &Out) -> bool {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n%s", Arg.c_str(),
                     usageText());
        return false;
      }
      Out = Args[++I];
      return true;
    };
    std::string Value;
    if (Arg == "--port-file") {
      if (!NeedValue(PortFile))
        return 2;
      continue;
    }
    if (Arg == "--spill-dir") {
      if (!NeedValue(Value))
        return 2;
      if (Value.empty()) {
        std::fprintf(stderr, "error: --spill-dir expects a directory path\n");
        return 2;
      }
      Opts.SpillDir = Value;
      continue;
    }
    if (Arg == "--mem-budget") {
      if (!NeedValue(Value))
        return 2;
      // Reuse the engine's parser so "64M" means the same thing here and
      // in --engine mem-budget=64M.
      engine::EngineConfig Probe;
      std::string ParseError;
      if (!Probe.set("mem-budget", Value, ParseError)) {
        std::fprintf(stderr, "error: %s\n", ParseError.c_str());
        return 2;
      }
      Opts.SpillMemBudget = Probe.MemBudget;
      continue;
    }
    if (Arg == "--port" || Arg == "--workers" || Arg == "--queue-cap" ||
        Arg == "--cache-cap" || Arg == "--job-threads") {
      if (!NeedValue(Value))
        return 2;
      uint64_t N = 0;
      if (!parseNumber(Value, N)) {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got '%s'\n",
                     Arg.c_str(), Value.c_str());
        return 2;
      }
      if (Arg == "--port") {
        if (N > 65535) {
          std::fprintf(stderr, "error: --port out of range: %s\n",
                       Value.c_str());
          return 2;
        }
        Opts.Port = static_cast<uint16_t>(N);
      } else if (Arg == "--workers") {
        if (N < 1) {
          std::fprintf(stderr, "error: --workers must be positive\n");
          return 2;
        }
        Opts.Workers = static_cast<unsigned>(N);
      } else if (Arg == "--queue-cap") {
        if (N < 1) {
          std::fprintf(stderr, "error: --queue-cap must be positive\n");
          return 2;
        }
        Opts.QueueCapacity = N;
      } else if (Arg == "--cache-cap") {
        Opts.CacheCapacity = N;
      } else {
        if (N < 1) {
          std::fprintf(stderr, "error: --job-threads must be positive\n");
          return 2;
        }
        Opts.JobThreads = static_cast<unsigned>(N);
      }
      continue;
    }
    std::fprintf(stderr, "error: unknown option '%s'\n%s", Arg.c_str(),
                 usageText());
    return 2;
  }

  if (Opts.SpillDir.empty() != (Opts.SpillMemBudget == 0)) {
    std::fprintf(stderr, "error: --spill-dir and --mem-budget must be "
                         "given together (spilling needs both a scratch "
                         "directory and a hot-tier budget)\n");
    return 2;
  }

  Server Daemon(Opts);
  std::string Error;
  if (!Daemon.start(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  if (!PortFile.empty()) {
    std::ofstream Out(PortFile);
    Out << Daemon.port() << "\n";
    if (!Out) {
      std::fprintf(stderr, "error: cannot write port file '%s'\n",
                   PortFile.c_str());
      return 2;
    }
  }
  std::printf("isq-serve listening on 127.0.0.1:%u (workers %u, queue %zu, "
              "cache %zu, job-threads %u)\n",
              Daemon.port(), Opts.Workers, Opts.QueueCapacity,
              Opts.CacheCapacity, Opts.JobThreads);
  std::fflush(stdout);

  struct sigaction Sa {};
  Sa.sa_handler = onSignal;
  sigaction(SIGINT, &Sa, nullptr);
  sigaction(SIGTERM, &Sa, nullptr);

  while (!StopRequested)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::printf("isq-serve: shutting down\n");
  Daemon.stop();
  ServeStats Stats = Daemon.stats();
  std::printf("isq-serve: served %llu jobs (%llu cache hits, %llu rejected)\n",
              static_cast<unsigned long long>(Stats.JobsCompleted),
              static_cast<unsigned long long>(Stats.CacheHits),
              static_cast<unsigned long long>(Stats.JobsRejected));
  return 0;
}
