//===- tools/isq-verify.cpp - Command-line IS verifier -------------------------------===//
///
/// \file
/// The push-button command-line verifier: compile an ASL protocol, derive
/// the IS artifacts from a declared sequentialization order, and report
/// the per-condition verdict.
///
/// Usage:
///   isq-verify FILE.asl --eliminate A,B,C [options]
///
/// Options:
///   --const NAME=VALUE        bind a module constant (repeatable)
///   --eliminate A,B,C         eliminated actions in schedule order
///   --rewrite NAME            the action to rewrite (default: Main)
///   --abstract ACTION=ABS     use module action ABS as α(ACTION)
///   --weight ACTION=K         cooperation weight (default 1)
///   --threads N               explorer worker threads (default 1);
///                             verdicts are identical for any N
///   --no-cross-check          skip exploring P' / empirical refinement
///
//===----------------------------------------------------------------------===//

#include "driver/VerifyDriver.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace isq;
using namespace isq::driver;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: isq-verify FILE.asl --eliminate A,B,C [--const n=3]\n"
      "                  [--rewrite Main] [--abstract Action=Abs]\n"
      "                  [--weight Action=2] [--arg-major]\n"
      "                  [--threads N] [--no-cross-check]\n");
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::stringstream Stream(S);
  std::string Item;
  while (std::getline(Stream, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

bool splitKeyValue(const std::string &S, std::string &Key,
                   std::string &Value) {
  size_t Eq = S.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 == S.size())
    return false;
  Key = S.substr(0, Eq);
  Value = S.substr(Eq + 1);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  VerifyOptions Options;
  std::string Path;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NeedValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    }
    if (Arg == "--no-cross-check") {
      Options.CrossCheck = false;
      continue;
    }
    if (Arg == "--arg-major") {
      Options.Order = VerifyOptions::RankOrder::ArgMajor;
      continue;
    }
    if (Arg == "--eliminate") {
      const char *V = NeedValue();
      if (!V)
        return 2;
      Options.Eliminate = splitList(V);
      continue;
    }
    if (Arg == "--rewrite") {
      const char *V = NeedValue();
      if (!V)
        return 2;
      Options.RewriteAction = V;
      continue;
    }
    if (Arg == "--threads") {
      const char *V = NeedValue();
      if (!V)
        return 2;
      long N = std::atol(V);
      if (N < 1) {
        std::fprintf(stderr, "error: --threads expects a positive count\n");
        return 2;
      }
      Options.NumThreads = static_cast<unsigned>(N);
      continue;
    }
    if (Arg == "--const" || Arg == "--abstract" || Arg == "--weight") {
      const char *V = NeedValue();
      if (!V)
        return 2;
      std::string Key, Value;
      if (!splitKeyValue(V, Key, Value)) {
        std::fprintf(stderr, "error: %s expects NAME=VALUE, got '%s'\n",
                     Arg.c_str(), V);
        return 2;
      }
      if (Arg == "--const")
        Options.Consts[Key] = std::atoll(Value.c_str());
      else if (Arg == "--abstract")
        Options.Abstractions[Key] = Value;
      else
        Options.Weights[Key] =
            static_cast<uint64_t>(std::atoll(Value.c_str()));
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    }
    if (!Path.empty()) {
      std::fprintf(stderr, "error: multiple input files\n");
      return 2;
    }
    Path = Arg;
  }

  if (Path.empty()) {
    printUsage();
    return 2;
  }
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Options.Source = Buffer.str();

  VerifyResult Result = verifyModule(Options);
  std::printf("%s", Result.Summary.c_str());
  if (!Result.CompileOk)
    return 2;
  return Result.Accepted ? 0 : 1;
}
