//===- tools/isq-verify.cpp - Command-line IS verifier -------------------------------===//
///
/// \file
/// The push-button command-line verifier: compile an ASL protocol, derive
/// the IS artifacts from a declared sequentialization order, discharge
/// the IS conditions (on the obligation scheduler by default), and
/// report the per-condition verdict as text or schema-versioned JSON.
///
/// This file is glue only: argument parsing lives in driver/CliOptions.h
/// and report rendering in driver/ReportRender.h, both unit-tested in
/// the library. See `isq-verify --help` for the option reference and the
/// documented exit codes (0 accepted, 1 rejected, 2 usage/compile/input
/// error).
///
//===----------------------------------------------------------------------===//

#include "driver/CliOptions.h"
#include "driver/ReportRender.h"
#include "support/Version.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace isq;
using namespace isq::driver;

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  CliParse Parse = parseCommandLine(Args);
  if (!Parse.Ok) {
    std::fprintf(stderr, "error: %s\n%s", Parse.Error.c_str(), usageText());
    return 2;
  }
  if (Parse.Options.ShowHelp) {
    std::fprintf(stdout, "%s", usageText());
    return 0;
  }
  if (Parse.Options.ShowVersion) {
    std::fprintf(stdout, "%s\n", versionLine().c_str());
    return 0;
  }
  // Deprecation warnings go to stderr so they never contaminate a piped
  // JSON report; the parser deduplicated repeats.
  for (const std::string &Warning : Parse.Warnings)
    std::fprintf(stderr, "warning: %s\n", Warning.c_str());

  std::ifstream In(Parse.Options.InputPath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 Parse.Options.InputPath.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Parse.Options.Verify.Source = Buffer.str();
  // Imports resolve relative to the input file; diagnostics name it.
  Parse.Options.Verify.SourcePath = Parse.Options.InputPath;

  VerifyResult Result = verifyModule(Parse.Options.Verify);
  std::string Report = Parse.Options.Format == OutputFormat::Json
                           ? renderJson(Result)
                           : renderText(Result);
  std::printf("%s", Report.c_str());
  return Result.exitCode();
}
