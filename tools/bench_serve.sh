#!/usr/bin/env bash
# Load-benchmarks the verification service: starts isq-serve from a
# Release build, replays the shipped manifest (examples/asl/
# serve_manifest.txt) with isq-loadgen at 1, 4, and 16 concurrent
# clients — each concurrency first against a cold verdict cache (fresh
# daemon) and then against the warm cache — and merges the per-run
# reports into BENCH_serve.json: one row per (clients, cache) cell with
# p50/p95/p99 latency, throughput, and cache-hit rate.
#
# Numbers are recorded from a dedicated Release build directory
# (build-bench, configured here on first use): recording from a
# RelWithDebInfo or Debug tree is refused, and the merged JSON embeds the
# build type and git revision so a committed BENCH_serve.json is
# self-describing.
#
# Usage: tools/bench_serve.sh [BUILD_DIR] [OUT_JSON]

set -euo pipefail

BUILD="${1:-build-bench}"
OUT="${2:-BENCH_serve.json}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
fi

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")"
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "error: $BUILD is a '$BUILD_TYPE' tree; benchmarks must be recorded" >&2
  echo "from a Release build (rerun without arguments, or point BUILD_DIR" >&2
  echo "at a -DCMAKE_BUILD_TYPE=Release configuration)." >&2
  exit 1
fi

GIT_SHA="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"

cmake --build "$BUILD" -j --target isq-serve isq-loadgen

MANIFEST="examples/asl/serve_manifest.txt"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ]; then kill "$SERVE_PID" 2>/dev/null || true; fi
  rm -rf "$TMP"
}
trap cleanup EXIT

start_server() {
  rm -f "$TMP/port"
  "$BUILD/tools/isq-serve" --port-file "$TMP/port" --workers 4 \
    --queue-cap 256 >/dev/null &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$TMP/port" ] && return 0
    sleep 0.1
  done
  echo "error: isq-serve did not come up" >&2
  exit 1
}

stop_server() {
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  SERVE_PID=""
}

# One row per (clients, cache) cell. Cold measures first-submission
# latency (every job runs the pipeline): a fresh daemon per concurrency,
# one pass over the manifest. Warm measures cache-served latency against
# the daemon the cold pass just populated: three passes, all hits.
ROWS=()
for clients in 1 4 16; do
  start_server
  echo "==== clients=$clients cache=cold ===="
  "$BUILD/tools/isq-loadgen" --port-file "$TMP/port" \
    --manifest "$MANIFEST" --clients "$clients" --repeats 1 \
    --check-identical --json-out "$TMP/cold_$clients.json"
  ROWS+=("cold $clients $TMP/cold_$clients.json")
  echo "==== clients=$clients cache=warm ===="
  "$BUILD/tools/isq-loadgen" --port-file "$TMP/port" \
    --manifest "$MANIFEST" --clients "$clients" --repeats 3 \
    --check-identical --json-out "$TMP/warm_$clients.json"
  ROWS+=("warm $clients $TMP/warm_$clients.json")
  stop_server
done

python3 - "$OUT" "$BUILD_TYPE" "$GIT_SHA" "${ROWS[@]}" <<'EOF'
import json, sys

out, build_type, git_sha, *rows = sys.argv[1:]
doc = {"context": {"isq_build_type": build_type, "isq_git_sha": git_sha},
       "rows": []}
for row in rows:
    cache, clients, path = row.split()
    with open(path) as f:
        report = json.load(f)
    # Rows from different --engine sweeps are indistinguishable without
    # the config echo; refuse to record a report that omits it.
    if "engine" not in report:
        sys.exit(f"error: {path} has no engine config echo; isq-loadgen "
                 "--json-out must include the resolved engine{} map")
    doc["rows"].append({"cache": cache, "clients": int(clients), **report})
# A warm pass that misses its own cache is a caching regression, not a
# slow run — fail the recording instead of committing misleading numbers.
for r in doc["rows"]:
    if r["cache"] == "warm" and r.get("cache_hit_rate", 0) <= 0:
        sys.exit(f"error: warm pass at {r['clients']} client(s) recorded "
                 f"hit rate {r.get('cache_hit_rate', 0)}; the verdict "
                 "cache is not being hit")
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")

print()
print(f"{'cache':<6} {'clients':>7} {'subs':>6} {'p50_ms':>9} {'p95_ms':>9} "
      f"{'p99_ms':>9} {'jobs/s':>8} {'hit_rate':>8}")
for r in doc["rows"]:
    print(f"{r['cache']:<6} {r['clients']:>7} {r['submissions']:>6} "
          f"{r['p50_ms']:>9.2f} {r['p95_ms']:>9.2f} {r['p99_ms']:>9.2f} "
          f"{r['throughput_rps']:>8.2f} {r['cache_hit_rate']:>8.2f}")
print()
EOF

echo "wrote $OUT (build type $BUILD_TYPE, git $GIT_SHA)"
